/**
 * @file
 * gshare predictor (McFarling): 2-bit counters indexed by
 * PC XOR global-history.
 */

#ifndef PERCON_BPRED_GSHARE_HH
#define PERCON_BPRED_GSHARE_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace percon {

class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param entries table size (power of two)
     * @param history_bits history bits XOR'd into the index
     */
    explicit GsharePredictor(std::size_t entries = 64 * 1024,
                             unsigned history_bits = 16);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "gshare"; }
    std::size_t storageBits() const override;

    /** 'PGST01' wire format: counter values as one byte each. */
    bool saveState(std::ostream &os) const override;
    bool loadState(std::istream &is) override;

    unsigned historyBits() const { return historyBits_; }

  private:
    std::size_t indexFor(Addr pc, std::uint64_t ghr) const;

    std::vector<SatCounter> table_;
    unsigned historyBits_;
};

} // namespace percon

#endif // PERCON_BPRED_GSHARE_HH
