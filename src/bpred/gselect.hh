/**
 * @file
 * gselect predictor (McFarling): 2-bit counters indexed by the
 * concatenation of low PC bits and global history bits — the
 * alternative to gshare's XOR studied in TN-36.
 */

#ifndef PERCON_BPRED_GSELECT_HH
#define PERCON_BPRED_GSELECT_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace percon {

class GselectPredictor : public BranchPredictor
{
  public:
    /**
     * @param entries table size (power of two)
     * @param history_bits history bits in the index; the remaining
     *        index bits come from the PC
     */
    explicit GselectPredictor(std::size_t entries = 64 * 1024,
                              unsigned history_bits = 8);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "gselect"; }
    std::size_t storageBits() const override;

  private:
    std::size_t indexFor(Addr pc, std::uint64_t ghr) const;

    std::vector<SatCounter> table_;
    unsigned historyBits_;
    unsigned pcBits_;
};

} // namespace percon

#endif // PERCON_BPRED_GSELECT_HH
