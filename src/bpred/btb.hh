/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets.
 *
 * The direction predictor can say "taken" but fetch can only be
 * redirected if the target is known; a BTB miss on a predicted-taken
 * branch costs a fetch bubble while decode produces the target. With
 * conditional direct branches (this model's population) the BTB
 * mostly pays cold and capacity misses, as in real front ends.
 */

#ifndef PERCON_BPRED_BTB_HH
#define PERCON_BPRED_BTB_HH

#include <iosfwd>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace percon {

class Btb
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param ways set associativity (power of two, <= entries)
     */
    explicit Btb(std::size_t entries = 4096, unsigned ways = 4);

    /** Look up the target for a branch PC. Inline: one lookup runs
     *  per predicted-taken branch in the simulated fetch stream. */
    std::optional<Addr>
    lookup(Addr pc)
    {
        Entry *base = &entries_[setFor(pc) * ways_];
        ++useClock_;
        for (unsigned w = 0; w < ways_; ++w) {
            if (base[w].valid && base[w].tag == pc) {
                base[w].lastUse = useClock_;
                ++hits_;
                return base[w].target;
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /** Install or refresh a (pc, target) pair. */
    void update(Addr pc, Addr target);

    Count hits() const { return hits_; }
    Count misses() const { return misses_; }
    std::size_t storageBits() const;

    /**
     * 'PBTB01' wire format: geometry, every entry (tag, target,
     * lastUse, valid), the LRU use clock and the hit/miss counters —
     * everything that influences or reports future behaviour, so a
     * restored BTB is indistinguishable from the one serialized.
     * @return false on magic/geometry/stream mismatch (load leaves
     *         the live table unchanged)
     */
    bool saveState(std::ostream &os) const;
    bool loadState(std::istream &is);

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t setFor(Addr pc) const { return (pc >> 2) & (sets_ - 1); }

    std::vector<Entry> entries_;
    std::size_t sets_;
    unsigned ways_;
    std::uint64_t useClock_ = 0;
    Count hits_ = 0;
    Count misses_ = 0;
};

} // namespace percon

#endif // PERCON_BPRED_BTB_HH
