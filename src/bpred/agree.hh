/**
 * @file
 * Agree predictor (Sprangle et al., ISCA'97): the pattern table
 * predicts *agreement with a per-branch bias bit* rather than a
 * direction. Destructive aliasing between counters becomes mostly
 * harmless because two branches sharing a counter usually both agree
 * with their own biases.
 *
 * Included both as a baseline predictor and because "predicting
 * agreement" is the direction-prediction cousin of confidence
 * estimation: the agree table learns the same correct/deviate
 * structure the paper's estimator keys on.
 */

#ifndef PERCON_BPRED_AGREE_HH
#define PERCON_BPRED_AGREE_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace percon {

class AgreePredictor : public BranchPredictor
{
  public:
    /**
     * @param entries agree-counter table size (power of two)
     * @param history_bits history bits XOR'd into the index
     * @param bias_entries per-branch bias-bit table (power of two)
     */
    explicit AgreePredictor(std::size_t entries = 64 * 1024,
                            unsigned history_bits = 16,
                            std::size_t bias_entries = 16 * 1024);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "agree"; }
    std::size_t storageBits() const override;

    /** The bias bit currently stored for a PC (for tests). */
    bool biasFor(Addr pc) const;

  private:
    std::size_t agreeIndex(Addr pc, std::uint64_t ghr) const;
    std::size_t biasIndex(Addr pc) const;

    std::vector<SatCounter> agree_;
    /** Bias bits with a set-once valid flag: first outcome wins. */
    std::vector<std::uint8_t> bias_;
    std::vector<bool> biasValid_;
    unsigned historyBits_;
};

} // namespace percon

#endif // PERCON_BPRED_AGREE_HH
