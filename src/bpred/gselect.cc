#include "gselect.hh"

#include <bit>

#include "common/logging.hh"

namespace percon {

GselectPredictor::GselectPredictor(std::size_t entries,
                                   unsigned history_bits)
    : historyBits_(history_bits)
{
    PERCON_ASSERT(entries >= 2 && std::has_single_bit(entries),
                  "gselect entries must be a power of two");
    unsigned index_bits =
        static_cast<unsigned>(std::countr_zero(entries));
    PERCON_ASSERT(history_bits < index_bits,
                  "history must leave room for PC bits");
    pcBits_ = index_bits - history_bits;
    table_.assign(entries, SatCounter(2, 2));
}

std::size_t
GselectPredictor::indexFor(Addr pc, std::uint64_t ghr) const
{
    std::uint64_t pc_part = (pc >> 2) & ((1ULL << pcBits_) - 1);
    std::uint64_t hist_part = ghr & ((1ULL << historyBits_) - 1);
    return (pc_part << historyBits_) | hist_part;
}

bool
GselectPredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    bool taken = table_[indexFor(pc, ghr)].msb();
    meta.taken = taken;
    return taken;
}

void
GselectPredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                         const PredMeta &)
{
    SatCounter &ctr = table_[indexFor(pc, ghr)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

std::size_t
GselectPredictor::storageBits() const
{
    return table_.size() * 2;
}

} // namespace percon
