#include "hybrid.hh"

#include "bpred/bimodal.hh"
#include "bpred/gshare.hh"
#include "bpred/perceptron_pred.hh"
#include "common/logging.hh"
#include "common/state_io.hh"

namespace percon {

namespace {
constexpr char kStateMagic[8] = {'P', 'H', 'Y', 'T', '0', '1', 0, 0};
} // namespace

HybridPredictor::HybridPredictor(std::unique_ptr<BranchPredictor> first,
                                 std::unique_ptr<BranchPredictor> second,
                                 std::size_t meta_entries,
                                 std::string name)
    : first_(std::move(first)), second_(std::move(second)),
      name_(std::move(name))
{
    PERCON_ASSERT(meta_entries >= 2 &&
                      (meta_entries & (meta_entries - 1)) == 0,
                  "meta entries must be a power of two");
    meta_.assign(meta_entries, SatCounter(2, 2));
}

std::size_t
HybridPredictor::metaIndex(Addr pc) const
{
    return (pc >> 2) & (meta_.size() - 1);
}

bool
HybridPredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    PredMeta m1, m2;
    bool p1 = first_->predict(pc, ghr, m1);
    bool p2 = second_->predict(pc, ghr, m2);

    // Preserve component payloads for update().
    meta.bimodalPred = m1.bimodalPred || m2.bimodalPred;
    meta.gsharePred = m1.gsharePred || m2.gsharePred;
    meta.perceptronPred = m1.perceptronPred || m2.perceptronPred;
    meta.perceptronOut = m1.perceptronOut + m2.perceptronOut;

    bool use_second = meta_[metaIndex(pc)].msb();
    bool taken = use_second ? p2 : p1;
    meta.taken = taken;

    // Stash component directions where update() can recover them even
    // for components that do not tag PredMeta themselves (e.g. PAs).
    meta.bimodalPred = p1;
    meta.gsharePred = p2;
    return taken;
}

void
HybridPredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                        const PredMeta &meta)
{
    bool p1 = meta.bimodalPred;
    bool p2 = meta.gsharePred;

    // Train the chooser only when the components disagree.
    if (p1 != p2) {
        SatCounter &ctr = meta_[metaIndex(pc)];
        if (p2 == taken)
            ctr.increment();
        else
            ctr.decrement();
    }

    first_->update(pc, ghr, taken, meta);
    second_->update(pc, ghr, taken, meta);
}

std::size_t
HybridPredictor::storageBits() const
{
    return first_->storageBits() + second_->storageBits() +
           meta_.size() * 2;
}

bool
HybridPredictor::saveState(std::ostream &os) const
{
    stateio::writeMagic(os, kStateMagic);
    stateio::writeU64(os, meta_.size());
    for (const SatCounter &ctr : meta_) {
        char v = static_cast<char>(ctr.value());
        os.write(&v, 1);
    }
    return first_->saveState(os) && second_->saveState(os) &&
           static_cast<bool>(os);
}

bool
HybridPredictor::loadState(std::istream &is)
{
    std::uint64_t entries = 0;
    if (!stateio::readMagic(is, kStateMagic) ||
        !stateio::readU64(is, entries))
        return false;
    if (entries != meta_.size())
        return false;
    std::vector<unsigned char> raw(meta_.size());
    is.read(reinterpret_cast<char *>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    if (!is)
        return false;
    for (unsigned char v : raw)
        if (v > 3)
            return false;
    // Components validate their own sections; on a component failure
    // the chooser (and possibly the first component) have already
    // been restored — callers must re-warm on any false return.
    if (!first_->loadState(is) || !second_->loadState(is))
        return false;
    for (std::size_t i = 0; i < meta_.size(); ++i)
        meta_[i].setValue(raw[i]);
    return true;
}

std::unique_ptr<BranchPredictor>
makeBaselineHybrid()
{
    return std::make_unique<HybridPredictor>(
        std::make_unique<BimodalPredictor>(16 * 1024),
        std::make_unique<GsharePredictor>(64 * 1024, 16),
        64 * 1024, "bimodal-gshare");
}

std::unique_ptr<BranchPredictor>
makeGsharePerceptronHybrid()
{
    return std::make_unique<HybridPredictor>(
        std::make_unique<GsharePredictor>(64 * 1024, 16),
        std::make_unique<PerceptronPredictor>(1024, 32, 8),
        64 * 1024, "gshare-perceptron");
}

} // namespace percon
