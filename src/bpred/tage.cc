#include "tage.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace percon {

namespace {

/// Fold a value down to n bits by XOR-ing n-bit chunks.
std::uint64_t
fold(std::uint64_t v, unsigned bits)
{
    std::uint64_t out = 0;
    while (v) {
        out ^= v & ((1ULL << bits) - 1);
        v >>= bits;
    }
    return out;
}

} // namespace

TagePredictor::TagePredictor(std::size_t base_entries,
                             std::size_t table_entries,
                             unsigned num_tables, unsigned min_history,
                             unsigned max_history)
{
    PERCON_ASSERT(base_entries >= 2 && std::has_single_bit(base_entries),
                  "TAGE base entries must be a power of two");
    PERCON_ASSERT(table_entries >= 2 &&
                      std::has_single_bit(table_entries),
                  "TAGE table entries must be a power of two");
    PERCON_ASSERT(num_tables >= 2 && num_tables <= 8,
                  "TAGE table count out of range");
    PERCON_ASSERT(min_history >= 1 && max_history <= 64 &&
                      min_history < max_history,
                  "bad TAGE history range");

    base_.assign(base_entries, SatCounter(2, 2));
    tables_.assign(num_tables, std::vector<Entry>(table_entries));

    // Geometric history series from min to max.
    histLen_.resize(num_tables);
    double ratio = std::pow(
        static_cast<double>(max_history) / min_history,
        1.0 / static_cast<double>(num_tables - 1));
    double h = min_history;
    for (unsigned t = 0; t < num_tables; ++t) {
        histLen_[t] = static_cast<unsigned>(std::lround(h));
        h *= ratio;
    }
    histLen_.back() = max_history;
}

std::size_t
TagePredictor::baseIndex(Addr pc) const
{
    return (pc >> 2) & (base_.size() - 1);
}

std::size_t
TagePredictor::tableIndex(unsigned t, Addr pc, std::uint64_t ghr) const
{
    unsigned bits = static_cast<unsigned>(
        std::countr_zero(tables_[t].size()));
    std::uint64_t hist =
        histLen_[t] >= 64 ? ghr : ghr & ((1ULL << histLen_[t]) - 1);
    std::uint64_t folded = fold(hist, bits);
    return ((pc >> 2) ^ folded ^ (t * 0x9e37ULL)) &
           (tables_[t].size() - 1);
}

std::uint16_t
TagePredictor::tagFor(unsigned t, Addr pc, std::uint64_t ghr) const
{
    std::uint64_t hist =
        histLen_[t] >= 64 ? ghr : ghr & ((1ULL << histLen_[t]) - 1);
    return static_cast<std::uint16_t>(
        (fold(hist, 9) ^ (pc >> 2) ^ ((pc >> 11) * (t + 1))) & 0x1ff);
}

int
TagePredictor::findProvider(Addr pc, std::uint64_t ghr)
{
    for (int t = static_cast<int>(tables_.size()) - 1; t >= 0; --t) {
        const Entry &e =
            tables_[static_cast<unsigned>(t)]
                   [tableIndex(static_cast<unsigned>(t), pc, ghr)];
        if (e.valid && e.tag == tagFor(static_cast<unsigned>(t), pc,
                                       ghr))
            return t;
    }
    return -1;
}

bool
TagePredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    int provider = findProvider(pc, ghr);
    bool taken;
    if (provider >= 0) {
        const Entry &e =
            tables_[static_cast<unsigned>(provider)]
                   [tableIndex(static_cast<unsigned>(provider), pc,
                               ghr)];
        taken = e.ctr.msb();
    } else {
        taken = base_[baseIndex(pc)].msb();
    }
    meta.taken = taken;
    return taken;
}

void
TagePredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                      const PredMeta &)
{
    int provider = findProvider(pc, ghr);
    bool base_pred = base_[baseIndex(pc)].msb();

    if (provider >= 0) {
        Entry &e = tables_[static_cast<unsigned>(provider)]
                          [tableIndex(static_cast<unsigned>(provider),
                                      pc, ghr)];
        bool provider_pred = e.ctr.msb();
        if (taken)
            e.ctr.increment();
        else
            e.ctr.decrement();
        // Usefulness: the provider differed from the base and was
        // right (or wrong).
        if (provider_pred != base_pred) {
            if (provider_pred == taken)
                e.useful.increment();
            else
                e.useful.decrement();
        }
        // Allocate on a miss by the provider, into a longer table.
        if (provider_pred != taken &&
            provider + 1 < static_cast<int>(tables_.size())) {
            unsigned t = static_cast<unsigned>(provider + 1) +
                         static_cast<unsigned>(
                             mix64(allocSeed_++) %
                             (tables_.size() - provider - 1));
            Entry &n = tables_[t][tableIndex(t, pc, ghr)];
            if (!n.valid || n.useful.value() == 0) {
                n.valid = true;
                n.tag = tagFor(t, pc, ghr);
                n.ctr = SatCounter(3, taken ? 4 : 3);
                n.useful = SatCounter(2, 0);
            } else {
                n.useful.decrement();
            }
        }
    } else {
        // Base mispredicted: allocate in the shortest table.
        if (base_pred != taken) {
            Entry &n = tables_[0][tableIndex(0, pc, ghr)];
            if (!n.valid || n.useful.value() == 0) {
                n.valid = true;
                n.tag = tagFor(0, pc, ghr);
                n.ctr = SatCounter(3, taken ? 4 : 3);
                n.useful = SatCounter(2, 0);
            } else {
                n.useful.decrement();
            }
        }
    }

    SatCounter &b = base_[baseIndex(pc)];
    if (taken)
        b.increment();
    else
        b.decrement();
}

std::size_t
TagePredictor::storageBits() const
{
    std::size_t bits = base_.size() * 2;
    for (const auto &t : tables_)
        bits += t.size() * (9 + 3 + 2 + 1);
    return bits;
}

} // namespace percon
