#include "pas.hh"

#include "common/logging.hh"

namespace percon {

PAsPredictor::PAsPredictor(std::size_t bht_entries, unsigned local_bits,
                           std::size_t pht_sets)
    : localBits_(local_bits), phtSets_(pht_sets)
{
    PERCON_ASSERT(bht_entries >= 2 &&
                      (bht_entries & (bht_entries - 1)) == 0,
                  "PAs BHT entries must be a power of two");
    PERCON_ASSERT(local_bits >= 1 && local_bits <= 16,
                  "bad local history length %u", local_bits);
    PERCON_ASSERT(pht_sets >= 1 && (pht_sets & (pht_sets - 1)) == 0,
                  "PAs PHT sets must be a power of two");
    bht_.assign(bht_entries, 0);
    phtEntriesPerSet_ = 1ULL << localBits_;
    pht_.assign(phtSets_ * phtEntriesPerSet_, SatCounter(2, 2));
}

std::size_t
PAsPredictor::bhtIndex(Addr pc) const
{
    return (pc >> 2) & (bht_.size() - 1);
}

std::uint32_t
PAsPredictor::patternFor(Addr pc) const
{
    return bht_[bhtIndex(pc)];
}

std::size_t
PAsPredictor::phtIndex(Addr pc, std::uint32_t pattern) const
{
    std::size_t set = (pc >> 2) & (phtSets_ - 1);
    return set * phtEntriesPerSet_ + pattern;
}

bool
PAsPredictor::predict(Addr pc, std::uint64_t, PredMeta &meta)
{
    std::uint32_t pattern = patternFor(pc);
    bool taken = pht_[phtIndex(pc, pattern)].msb();
    meta.taken = taken;
    return taken;
}

void
PAsPredictor::update(Addr pc, std::uint64_t, bool taken,
                     const PredMeta &)
{
    std::size_t bi = bhtIndex(pc);
    std::uint32_t pattern = bht_[bi];
    SatCounter &ctr = pht_[phtIndex(pc, pattern)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    std::uint32_t mask = (1u << localBits_) - 1;
    bht_[bi] = ((pattern << 1) | (taken ? 1u : 0u)) & mask;
}

std::size_t
PAsPredictor::storageBits() const
{
    return bht_.size() * localBits_ + pht_.size() * 2;
}

} // namespace percon
