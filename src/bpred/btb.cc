#include "btb.hh"

#include <bit>

#include "common/logging.hh"

namespace percon {

Btb::Btb(std::size_t entries, unsigned ways) : ways_(ways)
{
    PERCON_ASSERT(entries >= 2 && std::has_single_bit(entries),
                  "BTB entries must be a power of two");
    PERCON_ASSERT(ways >= 1 && entries % ways == 0,
                  "BTB ways must divide entries");
    sets_ = entries / ways;
    PERCON_ASSERT(std::has_single_bit(sets_),
                  "BTB set count must be a power of two");
    entries_.assign(entries, Entry{});
}

void
Btb::update(Addr pc, Addr target)
{
    Entry *base = &entries_[setFor(pc) * ways_];
    ++useClock_;
    unsigned victim = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            victim = w;
            break;
        }
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    }
    base[victim].valid = true;
    base[victim].tag = pc;
    base[victim].target = target;
    base[victim].lastUse = useClock_;
}

std::size_t
Btb::storageBits() const
{
    // tag + target (approx. 32b each) + valid per entry.
    return entries_.size() * (32 + 32 + 1);
}

} // namespace percon
