#include "btb.hh"

#include <bit>

#include "common/logging.hh"
#include "common/state_io.hh"

namespace percon {

namespace {
constexpr char kStateMagic[8] = {'P', 'B', 'T', 'B', '0', '1', 0, 0};
} // namespace

Btb::Btb(std::size_t entries, unsigned ways) : ways_(ways)
{
    PERCON_ASSERT(entries >= 2 && std::has_single_bit(entries),
                  "BTB entries must be a power of two");
    PERCON_ASSERT(ways >= 1 && entries % ways == 0,
                  "BTB ways must divide entries");
    sets_ = entries / ways;
    PERCON_ASSERT(std::has_single_bit(sets_),
                  "BTB set count must be a power of two");
    entries_.assign(entries, Entry{});
}

void
Btb::update(Addr pc, Addr target)
{
    Entry *base = &entries_[setFor(pc) * ways_];
    ++useClock_;
    unsigned victim = 0;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            victim = w;
            break;
        }
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    }
    base[victim].valid = true;
    base[victim].tag = pc;
    base[victim].target = target;
    base[victim].lastUse = useClock_;
}

std::size_t
Btb::storageBits() const
{
    // tag + target (approx. 32b each) + valid per entry.
    return entries_.size() * (32 + 32 + 1);
}

bool
Btb::saveState(std::ostream &os) const
{
    stateio::writeMagic(os, kStateMagic);
    stateio::writeU64(os, entries_.size());
    stateio::writeU64(os, ways_);
    for (const Entry &e : entries_) {
        stateio::writeU64(os, e.tag);
        stateio::writeU64(os, e.target);
        stateio::writeU64(os, e.lastUse);
        char valid = e.valid ? 1 : 0;
        os.write(&valid, 1);
    }
    stateio::writeU64(os, useClock_);
    stateio::writeU64(os, hits_);
    stateio::writeU64(os, misses_);
    return static_cast<bool>(os);
}

bool
Btb::loadState(std::istream &is)
{
    std::uint64_t entries = 0, ways = 0;
    if (!stateio::readMagic(is, kStateMagic) ||
        !stateio::readU64(is, entries) || !stateio::readU64(is, ways))
        return false;
    if (entries != entries_.size() || ways != ways_)
        return false;
    std::vector<Entry> incoming(entries_.size());
    for (Entry &e : incoming) {
        char valid = 0;
        if (!stateio::readU64(is, e.tag) ||
            !stateio::readU64(is, e.target) ||
            !stateio::readU64(is, e.lastUse))
            return false;
        is.read(&valid, 1);
        if (!is || (valid != 0 && valid != 1))
            return false;
        e.valid = valid != 0;
    }
    std::uint64_t use_clock = 0, hits = 0, misses = 0;
    if (!stateio::readU64(is, use_clock) ||
        !stateio::readU64(is, hits) || !stateio::readU64(is, misses))
        return false;
    entries_ = std::move(incoming);
    useClock_ = use_clock;
    hits_ = hits;
    misses_ = misses;
    return true;
}

} // namespace percon
