#include "yags.hh"

#include <bit>

#include "common/logging.hh"

namespace percon {

YagsPredictor::YagsPredictor(std::size_t choice_entries,
                             std::size_t cache_entries,
                             unsigned tag_bits, unsigned history_bits)
    : tagBits_(tag_bits), historyBits_(history_bits)
{
    PERCON_ASSERT(choice_entries >= 2 &&
                      std::has_single_bit(choice_entries),
                  "YAGS choice entries must be a power of two");
    PERCON_ASSERT(cache_entries >= 2 &&
                      std::has_single_bit(cache_entries),
                  "YAGS cache entries must be a power of two");
    PERCON_ASSERT(tag_bits >= 1 && tag_bits <= 16, "bad tag width");
    choice_.assign(choice_entries, SatCounter(2, 2));
    takenCache_.assign(cache_entries, CacheEntry{});
    notTakenCache_.assign(cache_entries, CacheEntry{});
}

std::size_t
YagsPredictor::choiceIndex(Addr pc) const
{
    return (pc >> 2) & (choice_.size() - 1);
}

std::size_t
YagsPredictor::cacheIndex(Addr pc, std::uint64_t ghr) const
{
    std::uint64_t mask = (1ULL << historyBits_) - 1;
    return ((pc >> 2) ^ (ghr & mask)) & (takenCache_.size() - 1);
}

std::uint16_t
YagsPredictor::tagFor(Addr pc) const
{
    return static_cast<std::uint16_t>((pc >> 2) &
                                      ((1u << tagBits_) - 1));
}

bool
YagsPredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    bool bias = choice_[choiceIndex(pc)].msb();
    auto &cache = bias ? notTakenCache_ : takenCache_;
    const CacheEntry &e = cache[cacheIndex(pc, ghr)];
    bool taken = bias;
    if (e.valid && e.tag == tagFor(pc))
        taken = e.counter.msb();
    meta.taken = taken;
    return taken;
}

void
YagsPredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                      const PredMeta &)
{
    std::size_t ci = choiceIndex(pc);
    bool bias = choice_[ci].msb();

    auto &cache = bias ? notTakenCache_ : takenCache_;
    CacheEntry &e = cache[cacheIndex(pc, ghr)];
    bool hit = e.valid && e.tag == tagFor(pc);

    // The exception cache is updated on hits and allocated when the
    // outcome disagrees with the bias.
    if (hit) {
        if (taken)
            e.counter.increment();
        else
            e.counter.decrement();
    } else if (taken != bias) {
        e.valid = true;
        e.tag = tagFor(pc);
        e.counter = SatCounter(2, taken ? 2 : 1);
    }

    // The choice table trains like bimodal, except it is not updated
    // when the exception cache both provided the prediction and the
    // bias would have been wrong (keeping the bias stable).
    bool exception_correct = hit && (e.counter.msb() == taken);
    if (!(exception_correct && bias != taken)) {
        if (taken)
            choice_[ci].increment();
        else
            choice_[ci].decrement();
    }
}

std::size_t
YagsPredictor::storageBits() const
{
    std::size_t cache_bits =
        takenCache_.size() * (tagBits_ + 2 + 1) * 2;
    return choice_.size() * 2 + cache_bits;
}

} // namespace percon
