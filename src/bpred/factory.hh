/**
 * @file
 * String-keyed predictor factory used by examples and benches.
 */

#ifndef PERCON_BPRED_FACTORY_HH
#define PERCON_BPRED_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "bpred/branch_predictor.hh"

namespace percon {

/** Known predictor configuration names. */
const std::vector<std::string> &predictorNames();

/**
 * Build a predictor by name: "bimodal", "gshare", "pas",
 * "perceptron", "bimodal-gshare" (paper baseline),
 * "gshare-perceptron" (§5.2). fatal() on unknown names.
 */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &name);

} // namespace percon

#endif // PERCON_BPRED_FACTORY_HH
