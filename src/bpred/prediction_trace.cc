#include "prediction_trace.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace percon {

bool
predSnapshotDefault()
{
    const char *v = std::getenv("PERCON_PRED_SNAPSHOT");
    if (!v || !*v)
        return false;
    std::string s(v);
    if (s == "on" || s == "1" || s == "true")
        return true;
    if (s == "off" || s == "0" || s == "false")
        return false;
    warn("PERCON_PRED_SNAPSHOT='%s' not understood "
         "(want on|off); keeping the default (off)", v);
    return false;
}

std::shared_ptr<const PredictionTrace>
PredictionTraceBuilder::finish(std::string key)
{
    auto trace = std::shared_ptr<PredictionTrace>(new PredictionTrace);
    trace->key_ = std::move(key);
    trace->numPred_ = numPred_;
    trace->numBtb_ = numBtb_;
    trace->predWords_ = std::move(predWords_);
    trace->btbWords_ = std::move(btbWords_);
    trace->laneBytes_ = (trace->predWords_.size() +
                         trace->btbWords_.size()) *
                        sizeof(std::uint64_t);
    trace->predBits_ = trace->predWords_.data();
    trace->btbBits_ = trace->btbWords_.data();

    predWords_.clear();
    btbWords_.clear();
    numPred_ = 0;
    numBtb_ = 0;
    return trace;
}

} // namespace percon
