#include "gshare.hh"

#include "common/logging.hh"
#include "common/state_io.hh"

namespace percon {

namespace {
constexpr char kStateMagic[8] = {'P', 'G', 'S', 'T', '0', '1', 0, 0};
} // namespace

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits)
    : historyBits_(history_bits)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "gshare entries must be a power of two");
    PERCON_ASSERT(history_bits >= 1 && history_bits <= 32,
                  "bad gshare history length %u", history_bits);
    table_.assign(entries, SatCounter(2, 2));
}

std::size_t
GsharePredictor::indexFor(Addr pc, std::uint64_t ghr) const
{
    std::uint64_t hist_mask = historyBits_ >= 64
                                  ? ~0ULL
                                  : ((1ULL << historyBits_) - 1);
    return ((pc >> 2) ^ (ghr & hist_mask)) & (table_.size() - 1);
}

bool
GsharePredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    bool taken = table_[indexFor(pc, ghr)].msb();
    meta.taken = taken;
    meta.gsharePred = taken;
    return taken;
}

void
GsharePredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                        const PredMeta &)
{
    SatCounter &ctr = table_[indexFor(pc, ghr)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

std::size_t
GsharePredictor::storageBits() const
{
    return table_.size() * 2;
}

bool
GsharePredictor::saveState(std::ostream &os) const
{
    stateio::writeMagic(os, kStateMagic);
    stateio::writeU64(os, table_.size());
    stateio::writeU64(os, historyBits_);
    for (const SatCounter &ctr : table_) {
        char v = static_cast<char>(ctr.value());
        os.write(&v, 1);
    }
    return static_cast<bool>(os);
}

bool
GsharePredictor::loadState(std::istream &is)
{
    std::uint64_t entries = 0, hist = 0;
    if (!stateio::readMagic(is, kStateMagic) ||
        !stateio::readU64(is, entries) || !stateio::readU64(is, hist))
        return false;
    if (entries != table_.size() || hist != historyBits_)
        return false;
    std::vector<unsigned char> raw(table_.size());
    is.read(reinterpret_cast<char *>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    if (!is)
        return false;
    for (unsigned char v : raw)
        if (v > 3)
            return false;
    for (std::size_t i = 0; i < table_.size(); ++i)
        table_[i].setValue(raw[i]);
    return true;
}

} // namespace percon
