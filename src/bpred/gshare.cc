#include "gshare.hh"

#include "common/logging.hh"

namespace percon {

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits)
    : historyBits_(history_bits)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "gshare entries must be a power of two");
    PERCON_ASSERT(history_bits >= 1 && history_bits <= 32,
                  "bad gshare history length %u", history_bits);
    table_.assign(entries, SatCounter(2, 2));
}

std::size_t
GsharePredictor::indexFor(Addr pc, std::uint64_t ghr) const
{
    std::uint64_t hist_mask = historyBits_ >= 64
                                  ? ~0ULL
                                  : ((1ULL << historyBits_) - 1);
    return ((pc >> 2) ^ (ghr & hist_mask)) & (table_.size() - 1);
}

bool
GsharePredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    bool taken = table_[indexFor(pc, ghr)].msb();
    meta.taken = taken;
    meta.gsharePred = taken;
    return taken;
}

void
GsharePredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                        const PredMeta &)
{
    SatCounter &ctr = table_[indexFor(pc, ghr)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

std::size_t
GsharePredictor::storageBits() const
{
    return table_.size() * 2;
}

} // namespace percon
