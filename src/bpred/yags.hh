/**
 * @file
 * YAGS predictor (Eden & Mudge, MICRO-31): a bimodal choice table
 * plus two small tagged "exception caches" that record only the
 * cases where the outcome disagrees with the bimodal direction —
 * taken-exceptions and not-taken-exceptions.
 */

#ifndef PERCON_BPRED_YAGS_HH
#define PERCON_BPRED_YAGS_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace percon {

class YagsPredictor : public BranchPredictor
{
  public:
    /**
     * @param choice_entries bimodal choice table (power of two)
     * @param cache_entries per-direction exception cache (power of
     *        two)
     * @param tag_bits partial tag width
     * @param history_bits history bits in the cache index
     */
    explicit YagsPredictor(std::size_t choice_entries = 16 * 1024,
                           std::size_t cache_entries = 8 * 1024,
                           unsigned tag_bits = 8,
                           unsigned history_bits = 12);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "yags"; }
    std::size_t storageBits() const override;

  private:
    struct CacheEntry
    {
        std::uint16_t tag = 0;
        SatCounter counter{2, 2};
        bool valid = false;
    };

    std::size_t choiceIndex(Addr pc) const;
    std::size_t cacheIndex(Addr pc, std::uint64_t ghr) const;
    std::uint16_t tagFor(Addr pc) const;

    std::vector<SatCounter> choice_;
    std::vector<CacheEntry> takenCache_;     ///< exceptions when bias=NT
    std::vector<CacheEntry> notTakenCache_;  ///< exceptions when bias=T
    unsigned tagBits_;
    unsigned historyBits_;
};

} // namespace percon

#endif // PERCON_BPRED_YAGS_HH
