#include "agree.hh"

#include <bit>

#include "common/logging.hh"

namespace percon {

AgreePredictor::AgreePredictor(std::size_t entries,
                               unsigned history_bits,
                               std::size_t bias_entries)
    : historyBits_(history_bits)
{
    PERCON_ASSERT(entries >= 2 && std::has_single_bit(entries),
                  "agree entries must be a power of two");
    PERCON_ASSERT(bias_entries >= 2 && std::has_single_bit(bias_entries),
                  "bias entries must be a power of two");
    agree_.assign(entries, SatCounter(2, 2));  // weakly agree
    bias_.assign(bias_entries, 1);
    biasValid_.assign(bias_entries, false);
}

std::size_t
AgreePredictor::agreeIndex(Addr pc, std::uint64_t ghr) const
{
    std::uint64_t mask = (1ULL << historyBits_) - 1;
    return ((pc >> 2) ^ (ghr & mask)) & (agree_.size() - 1);
}

std::size_t
AgreePredictor::biasIndex(Addr pc) const
{
    return (pc >> 2) & (bias_.size() - 1);
}

bool
AgreePredictor::biasFor(Addr pc) const
{
    return bias_[biasIndex(pc)] != 0;
}

bool
AgreePredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    bool agree = agree_[agreeIndex(pc, ghr)].msb();
    bool bias = biasFor(pc);
    bool taken = agree ? bias : !bias;
    meta.taken = taken;
    return taken;
}

void
AgreePredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                       const PredMeta &)
{
    std::size_t bi = biasIndex(pc);
    if (!biasValid_[bi]) {
        // First-time bias: the branch's first outcome (the common
        // heuristic from the original paper).
        bias_[bi] = taken ? 1 : 0;
        biasValid_[bi] = true;
    }
    bool agreed = taken == (bias_[bi] != 0);
    SatCounter &ctr = agree_[agreeIndex(pc, ghr)];
    if (agreed)
        ctr.increment();
    else
        ctr.decrement();
}

std::size_t
AgreePredictor::storageBits() const
{
    return agree_.size() * 2 + bias_.size() * 1;
}

} // namespace percon
