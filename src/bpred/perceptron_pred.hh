/**
 * @file
 * Jimenez-Lin perceptron branch *direction* predictor (HPCA 2001).
 *
 * Trained with taken/not-taken outcomes; output magnitude doubles as
 * the confidence signal evaluated (and found lacking) by the paper's
 * perceptron_tnt scheme.
 */

#ifndef PERCON_BPRED_PERCEPTRON_PRED_HH
#define PERCON_BPRED_PERCEPTRON_PRED_HH

#include <vector>

#include "bpred/branch_predictor.hh"

namespace percon {

class PerceptronPredictor : public BranchPredictor
{
  public:
    /**
     * @param entries number of perceptrons (power of two)
     * @param history_bits inputs per perceptron (1..63)
     * @param weight_bits signed weight width (2..16)
     * @param theta training threshold; <=0 selects the Jimenez-Lin
     *              recommendation floor(1.93 * h + 14)
     */
    explicit PerceptronPredictor(std::size_t entries = 1024,
                                 unsigned history_bits = 32,
                                 unsigned weight_bits = 8,
                                 int theta = 0);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "perceptron"; }
    std::size_t storageBits() const override;

    /** Dot product of weights and (bias, history) for inspection. */
    std::int32_t output(Addr pc, std::uint64_t ghr) const;

    unsigned historyBits() const { return historyBits_; }
    int theta() const { return theta_; }

  private:
    std::size_t indexFor(Addr pc) const;

    std::vector<std::int16_t> weights_;  ///< entries x (history+1)
    std::size_t entries_;
    unsigned historyBits_;
    int weightMax_;
    int weightMin_;
    int theta_;
};

} // namespace percon

#endif // PERCON_BPRED_PERCEPTRON_PRED_HH
