/**
 * @file
 * Jimenez-Lin perceptron branch *direction* predictor (HPCA 2001).
 *
 * Trained with taken/not-taken outcomes; output magnitude doubles as
 * the confidence signal evaluated (and found lacking) by the paper's
 * perceptron_tnt scheme.
 *
 * The dot product and the clamped weight bump run on the shared
 * vectorized kernels (common/perceptron_kernel.hh): weight rows are
 * padded to the kernel's lane-aligned stride and the row index
 * resolved at predict() time is carried to update() in PredMeta so
 * the table is hashed once per branch.
 */

#ifndef PERCON_BPRED_PERCEPTRON_PRED_HH
#define PERCON_BPRED_PERCEPTRON_PRED_HH

#include <iosfwd>
#include <vector>

#include "bpred/branch_predictor.hh"

namespace percon {

class PerceptronPredictor : public BranchPredictor
{
  public:
    /**
     * @param entries number of perceptrons (power of two)
     * @param history_bits inputs per perceptron (1..63)
     * @param weight_bits signed weight width (2..16)
     * @param theta training threshold; <=0 selects the Jimenez-Lin
     *              recommendation floor(1.93 * h + 14)
     */
    explicit PerceptronPredictor(std::size_t entries = 1024,
                                 unsigned history_bits = 32,
                                 unsigned weight_bits = 8,
                                 int theta = 0);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "perceptron"; }
    std::size_t storageBits() const override;

    /** Dot product of weights and (bias, history) for inspection. */
    std::int32_t output(Addr pc, std::uint64_t ghr) const;

    /** Table row selected for @p pc (for embedding estimators). */
    std::size_t rowFor(Addr pc) const
    {
        return (pc >> 2) & (entries_ - 1);
    }

    /** Dot product against an already-resolved table row. */
    std::int32_t outputAt(std::size_t row, std::uint64_t ghr) const;

    unsigned historyBits() const { return historyBits_; }
    unsigned weightBits() const { return weightBits_; }
    int theta() const { return theta_; }

    /**
     * Serialize / restore the trained weight array (same magic-header
     * format as PerceptronConfidence, predictor-specific magic), so
     * warmed predictor state can be cached like estimator state.
     * @return false on format/geometry mismatch (state unchanged)
     */
    void saveWeights(std::ostream &os) const;
    bool loadWeights(std::istream &is);

    /** Checkpoint interface: delegates to the 'PPWT01' format. */
    bool saveState(std::ostream &os) const override;
    bool loadState(std::istream &is) override;

  private:
    std::vector<std::int16_t> weights_;  ///< entries x stride_ (padded)
    std::size_t entries_;
    std::size_t stride_;                 ///< kernel::rowStride(history)
    unsigned historyBits_;
    unsigned weightBits_;
    int weightMax_;
    int weightMin_;
    int theta_;
};

} // namespace percon

#endif // PERCON_BPRED_PERCEPTRON_PRED_HH
