/**
 * @file
 * Bimodal (Smith) predictor: PC-indexed 2-bit saturating counters.
 */

#ifndef PERCON_BPRED_BIMODAL_HH
#define PERCON_BPRED_BIMODAL_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace percon {

class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param entries table size, must be a power of two. */
    explicit BimodalPredictor(std::size_t entries = 16 * 1024,
                              unsigned counter_bits = 2);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "bimodal"; }
    std::size_t storageBits() const override;

    /** 'PBMT01' wire format: counter values as one byte each. */
    bool saveState(std::ostream &os) const override;
    bool loadState(std::istream &is) override;

    /** Direct counter access for the Smith confidence estimator. */
    const SatCounter &counterFor(Addr pc) const;

  private:
    std::size_t indexFor(Addr pc) const;

    std::vector<SatCounter> table_;
    unsigned counterBits_;
};

} // namespace percon

#endif // PERCON_BPRED_BIMODAL_HH
