#include "bimodal.hh"

#include "common/logging.hh"
#include "common/state_io.hh"

namespace percon {

namespace {
constexpr char kStateMagic[8] = {'P', 'B', 'M', 'T', '0', '1', 0, 0};
} // namespace

BimodalPredictor::BimodalPredictor(std::size_t entries,
                                   unsigned counter_bits)
    : counterBits_(counter_bits)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "bimodal entries must be a power of two");
    table_.assign(entries, SatCounter(counter_bits,
                                      (1u << counter_bits) / 2));
}

std::size_t
BimodalPredictor::indexFor(Addr pc) const
{
    // Drop the byte-offset bits; conditional branches are 4B apart.
    return (pc >> 2) & (table_.size() - 1);
}

const SatCounter &
BimodalPredictor::counterFor(Addr pc) const
{
    return table_[indexFor(pc)];
}

bool
BimodalPredictor::predict(Addr pc, std::uint64_t, PredMeta &meta)
{
    bool taken = table_[indexFor(pc)].msb();
    meta.taken = taken;
    meta.bimodalPred = taken;
    return taken;
}

void
BimodalPredictor::update(Addr pc, std::uint64_t, bool taken,
                         const PredMeta &)
{
    SatCounter &ctr = table_[indexFor(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

std::size_t
BimodalPredictor::storageBits() const
{
    return table_.size() * counterBits_;
}

bool
BimodalPredictor::saveState(std::ostream &os) const
{
    stateio::writeMagic(os, kStateMagic);
    stateio::writeU64(os, table_.size());
    stateio::writeU64(os, counterBits_);
    for (const SatCounter &ctr : table_) {
        char v = static_cast<char>(ctr.value());
        os.write(&v, 1);
    }
    return static_cast<bool>(os);
}

bool
BimodalPredictor::loadState(std::istream &is)
{
    std::uint64_t entries = 0, bits = 0;
    if (!stateio::readMagic(is, kStateMagic) ||
        !stateio::readU64(is, entries) || !stateio::readU64(is, bits))
        return false;
    if (entries != table_.size() || bits != counterBits_)
        return false;
    std::vector<unsigned char> raw(table_.size());
    is.read(reinterpret_cast<char *>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    if (!is)
        return false;
    unsigned max = (1u << counterBits_) - 1;
    for (unsigned char v : raw)
        if (v > max)
            return false;
    for (std::size_t i = 0; i < table_.size(); ++i)
        table_[i].setValue(raw[i]);
    return true;
}

} // namespace percon
