#include "bimodal.hh"

#include "common/logging.hh"

namespace percon {

BimodalPredictor::BimodalPredictor(std::size_t entries,
                                   unsigned counter_bits)
    : counterBits_(counter_bits)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "bimodal entries must be a power of two");
    table_.assign(entries, SatCounter(counter_bits,
                                      (1u << counter_bits) / 2));
}

std::size_t
BimodalPredictor::indexFor(Addr pc) const
{
    // Drop the byte-offset bits; conditional branches are 4B apart.
    return (pc >> 2) & (table_.size() - 1);
}

const SatCounter &
BimodalPredictor::counterFor(Addr pc) const
{
    return table_[indexFor(pc)];
}

bool
BimodalPredictor::predict(Addr pc, std::uint64_t, PredMeta &meta)
{
    bool taken = table_[indexFor(pc)].msb();
    meta.taken = taken;
    meta.bimodalPred = taken;
    return taken;
}

void
BimodalPredictor::update(Addr pc, std::uint64_t, bool taken,
                         const PredMeta &)
{
    SatCounter &ctr = table_[indexFor(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

std::size_t
BimodalPredictor::storageBits() const
{
    return table_.size() * counterBits_;
}

} // namespace percon
