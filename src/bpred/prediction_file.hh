/**
 * @file
 * Persistent, versioned on-disk format for PredictionTrace.
 *
 * "PCPRED01" is an instance of the generic lane-directory container
 * (common/lane_file.hh) with two geometry words {predict-call count,
 * BTB-probe count} and two bitvector lanes (predicted directions,
 * BTB hits), each ceil(n/64) u64 words:
 *
 *   offset  field
 *   ------  ---------------------------------------------------------
 *        0  magic "PCPRED01" (the two digits are the format version)
 *        8  endian tag 0x0102030405060708
 *       16  total file bytes / 24 FNV-1a hash of the prediction key
 *       32  predict-call count / 40 BTB-probe count
 *       48  payload offset / 56 payload bytes / 64 payload hash
 *       72  key length / 80 lane count (= 2)
 *       88  2 x { u64 offset, u64 bytes } lane directory
 *      120  prediction key string (not NUL-terminated)
 *           ... zero padding ...
 *  payload  pred lane, then BTB lane, each 64-byte aligned
 *
 * The stored key is the *full* canonical prediction key
 * (core/prediction_key.hh) — workload, machine, predictor, run
 * shape, policy segment — and is authoritative: a file recorded
 * under different predictor or BTB parameters fails the key check
 * and the caller regenerates ("refuse and regenerate", same contract
 * as PCSNAP01). Nothing in the header derives from the producing
 * build, host, or time.
 */

#ifndef PERCON_BPRED_PREDICTION_FILE_HH
#define PERCON_BPRED_PREDICTION_FILE_HH

#include <memory>
#include <string>

#include "bpred/prediction_trace.hh"

namespace percon {

/** Format magic, version included. */
inline constexpr char kPredictionFileMagic[8] = {'P', 'C', 'P', 'R',
                                                 'E', 'D', '0', '1'};

/** Serialize @p trace into the on-disk image described above. */
std::string serializePredictionTrace(const PredictionTrace &trace);

/**
 * Map @p path read-only and validate it against @p key (the exact
 * canonical prediction key of the wanted stream). @return a
 * borrowed-lane trace on success; null (with *why describing the
 * first failed check when non-null) on any validation failure —
 * never crashes; callers fall back to re-recording.
 */
std::shared_ptr<const PredictionTrace>
openPredictionFile(const std::string &path, const std::string &key,
                   std::string *why = nullptr);

/**
 * Header-only plausibility probe: magic, endianness, declared file
 * size, and key — no payload scan, no mapping kept. Used to derive
 * deterministic "pred_snapshot" hit/miss row labels before a sweep
 * starts; the authoritative check remains openPredictionFile.
 */
bool probePredictionFile(const std::string &path,
                         const std::string &key);

} // namespace percon

#endif // PERCON_BPRED_PREDICTION_FILE_HH
