/**
 * @file
 * Immutable recorded prediction streams.
 *
 * The paper's sweeps hold the baseline branch predictor fixed while
 * varying confidence estimators and gating policies, so the
 * predictor's per-branch work — perceptron dot products over 32–63
 * history bits, table training, BTB probe/fill — is recomputed
 * identically at every sweep point. A PredictionTrace freezes one
 * run's architectural prediction stream into two bitvector lanes:
 *
 *   pred lane  1 bit per predictor_.predict() call — the predicted
 *              direction, in engine call order (correct path and
 *              wrong path interleaved exactly as the run made them;
 *              an SMT engine's shared predictor serializes both
 *              threads into the same stream);
 *   BTB lane   1 bit per BTB probe — hit or miss, in probe order
 *              (probes are a subset of predict calls: at most one
 *              per predicted-taken branch).
 *
 * Contract: replay is bit-identical to live prediction. Recording
 * observes a fully live run (the recording run IS a live run), and a
 * replay run substitutes the recorded bits for predict()/update()
 * and BTB probe/fill while keeping speculative history and the
 * confidence estimator — the swept component — fully live.
 * Bit-identity is locked by the golden matrices and the 200-point
 * oracle differential with replay on.
 *
 * The stream is only valid for the exact run shape it was recorded
 * under; see core/prediction_key.hh for the keying rule and the
 * purity argument that lets ungated sweep points share one
 * recording.
 */

#ifndef PERCON_BPRED_PREDICTION_TRACE_HH
#define PERCON_BPRED_PREDICTION_TRACE_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace percon {

/**
 * One run's frozen prediction stream. Immutable after finish(), so
 * any number of replay runs (sweep jobs on different threads) can
 * read it concurrently without synchronization.
 */
class PredictionTrace
{
  public:
    /** The full canonical prediction key this stream was recorded
     *  under (see predictionKey()). */
    const std::string &key() const { return key_; }

    /** Number of recorded predictor_.predict() calls. */
    Count numPredCalls() const { return numPred_; }

    /** Number of recorded BTB probes. */
    Count numBtbProbes() const { return numBtb_; }

    /** Predicted direction of predict call @p i. */
    bool
    predTaken(Count i) const
    {
        return (predBits_[i >> 6] >> (i & 63)) & 1;
    }

    /** Hit/miss outcome of BTB probe @p i. */
    bool
    btbHit(Count i) const
    {
        return (btbBits_[i >> 6] >> (i & 63)) & 1;
    }

    /** Lane footprint in bytes (owned vectors or borrowed mapping). */
    std::size_t memoryBytes() const { return laneBytes_; }

    /** True when the lanes alias an mmap'd store file instead of
     *  owned vectors (zero-copy replay; file kept alive by the
     *  trace). */
    bool borrowed() const { return backing_ != nullptr; }

  private:
    friend class PredictionTraceBuilder;
    friend struct PredictionFileAccess;

    PredictionTrace() = default;

    std::string key_;
    Count numPred_ = 0;
    Count numBtb_ = 0;
    std::size_t laneBytes_ = 0;

    /** Owned lane storage; empty in borrowed mode. */
    std::vector<std::uint64_t> predWords_;
    std::vector<std::uint64_t> btbWords_;

    /** Keep-alive for borrowed lanes (the mmap'd store file). */
    std::shared_ptr<const void> backing_;

    const std::uint64_t *predBits_ = nullptr;
    const std::uint64_t *btbBits_ = nullptr;
};

/**
 * Accumulates a prediction stream while a live run executes. The
 * engine calls record{Pred,Btb}() from the shared architectural
 * helper — one call site for the timed fetch path and
 * functionalWarm() — and the owner freezes the stream with finish()
 * after the run completes.
 */
class PredictionTraceBuilder
{
  public:
    void
    recordPred(bool taken)
    {
        if ((numPred_ & 63) == 0)
            predWords_.push_back(0);
        predWords_.back() |= std::uint64_t(taken) << (numPred_ & 63);
        ++numPred_;
    }

    void
    recordBtb(bool hit)
    {
        if ((numBtb_ & 63) == 0)
            btbWords_.push_back(0);
        btbWords_.back() |= std::uint64_t(hit) << (numBtb_ & 63);
        ++numBtb_;
    }

    Count numPredCalls() const { return numPred_; }
    Count numBtbProbes() const { return numBtb_; }

    /** Freeze the recorded stream under @p key. The builder is left
     *  empty and reusable. */
    std::shared_ptr<const PredictionTrace> finish(std::string key);

  private:
    std::vector<std::uint64_t> predWords_;
    std::vector<std::uint64_t> btbWords_;
    Count numPred_ = 0;
    Count numBtb_ = 0;
};

/**
 * Process-wide default for prediction-stream replay: false unless
 * the PERCON_PRED_SNAPSHOT environment variable says on/1/true.
 * Unrecognized values warn and keep the default.
 */
bool predSnapshotDefault();

} // namespace percon

#endif // PERCON_BPRED_PREDICTION_TRACE_HH
