/**
 * @file
 * PAs two-level local-history predictor (Yeh & Patt taxonomy):
 * per-address branch history table feeding a set of pattern tables.
 * Used as the substrate of the Tyson pattern-based confidence
 * estimator and as an additional baseline.
 */

#ifndef PERCON_BPRED_PAS_HH
#define PERCON_BPRED_PAS_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace percon {

class PAsPredictor : public BranchPredictor
{
  public:
    /**
     * @param bht_entries per-branch history registers (power of two)
     * @param local_bits local history length (pattern width)
     * @param pht_sets number of pattern tables (power of two)
     */
    explicit PAsPredictor(std::size_t bht_entries = 4096,
                          unsigned local_bits = 10,
                          std::size_t pht_sets = 16);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "pas"; }
    std::size_t storageBits() const override;

    /** Local history pattern currently recorded for a PC. */
    std::uint32_t patternFor(Addr pc) const;

    unsigned localBits() const { return localBits_; }

  private:
    std::size_t bhtIndex(Addr pc) const;
    std::size_t phtIndex(Addr pc, std::uint32_t pattern) const;

    std::vector<std::uint32_t> bht_;
    std::vector<SatCounter> pht_;
    unsigned localBits_;
    std::size_t phtSets_;
    std::size_t phtEntriesPerSet_;
};

} // namespace percon

#endif // PERCON_BPRED_PAS_HH
