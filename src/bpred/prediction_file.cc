#include "prediction_file.hh"

#include "common/file_util.hh"
#include "common/lane_file.hh"

namespace percon {

/** Private-access shim: the file layer is the one component allowed
 *  to construct borrowed-lane prediction traces. */
struct PredictionFileAccess
{
    /** The two bitvector lanes, in directory order. */
    static const std::uint64_t *
    predWords(const PredictionTrace &t)
    {
        return t.predBits_;
    }

    static const std::uint64_t *
    btbWords(const PredictionTrace &t)
    {
        return t.btbBits_;
    }

    static std::shared_ptr<const PredictionTrace>
    makeBorrowed(std::string key, Count num_pred, Count num_btb,
                 const std::byte *base, const std::uint64_t (*dir)[2],
                 std::size_t lane_bytes,
                 std::shared_ptr<const void> keep)
    {
        auto trace =
            std::shared_ptr<PredictionTrace>(new PredictionTrace);
        trace->key_ = std::move(key);
        trace->numPred_ = num_pred;
        trace->numBtb_ = num_btb;
        trace->laneBytes_ = lane_bytes;
        trace->backing_ = std::move(keep);
        trace->predBits_ =
            reinterpret_cast<const std::uint64_t *>(base + dir[0][0]);
        trace->btbBits_ =
            reinterpret_cast<const std::uint64_t *>(base + dir[1][0]);
        return trace;
    }
};

namespace {

constexpr std::size_t kLaneCount = 2;

const LaneFileLayout &
predictionLayout()
{
    static const LaneFileLayout layout = {kPredictionFileMagic,
                                          kLaneCount, 2};
    return layout;
}

std::size_t
bitLaneBytes(std::uint64_t n)
{
    return static_cast<std::size_t>((n + 63) / 64) *
           sizeof(std::uint64_t);
}

/** Geometry semantics for PCPRED01: every BTB probe follows one
 *  predict call, so the probe count can never exceed the call
 *  count; the lanes are bitvectors of the two counts. */
const char *
predictionGeometryCheck(const std::uint64_t *geometry,
                        std::size_t *expect)
{
    if (geometry[1] > geometry[0])
        return "implausible ordinal counts";
    expect[0] = bitLaneBytes(geometry[0]);
    expect[1] = bitLaneBytes(geometry[1]);
    return nullptr;
}

} // namespace

std::string
serializePredictionTrace(const PredictionTrace &trace)
{
    std::uint64_t geometry[2] = {trace.numPredCalls(),
                                 trace.numBtbProbes()};
    LaneView views[kLaneCount] = {
        {PredictionFileAccess::predWords(trace),
         bitLaneBytes(trace.numPredCalls())},
        {PredictionFileAccess::btbWords(trace),
         bitLaneBytes(trace.numBtbProbes())},
    };
    return serializeLaneFile(predictionLayout(), trace.key(), geometry,
                             views);
}

std::shared_ptr<const PredictionTrace>
openPredictionFile(const std::string &path, const std::string &key,
                   std::string *why)
{
    auto map = std::make_shared<MappedFile>();
    if (!map->open(path, why))
        return nullptr;

    std::uint64_t dir[kLaneCount][2];
    std::uint64_t geometry[2] = {};
    std::size_t lane_bytes = 0;
    if (!validateLaneImage(map->data(), map->size(),
                           predictionLayout(), key,
                           predictionGeometryCheck,
                           /*check_payload=*/true, dir, geometry,
                           &lane_bytes, why))
        return nullptr;

    const std::byte *base = map->data();
    return PredictionFileAccess::makeBorrowed(
        key, geometry[0], geometry[1], base, dir, lane_bytes,
        std::shared_ptr<const void>(map, map->data()));
}

bool
probePredictionFile(const std::string &path, const std::string &key)
{
    MappedFile map;
    if (!map.open(path))
        return false;
    std::uint64_t dir[kLaneCount][2];
    std::uint64_t geometry[2] = {};
    std::size_t lane_bytes = 0;
    return validateLaneImage(map.data(), map.size(),
                             predictionLayout(), key,
                             predictionGeometryCheck,
                             /*check_payload=*/false, dir, geometry,
                             &lane_bytes, nullptr);
}

} // namespace percon
