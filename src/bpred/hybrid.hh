/**
 * @file
 * McFarling-style combined predictors.
 *
 * HybridPredictor composes any two component predictors with a
 * 2-bit-chooser meta table. The paper's baseline is bimodal+gshare
 * ("Combined: 16K bimodal, 64K gshare, 64K Meta"); §5.2 swaps in a
 * gshare-perceptron hybrid. Both are provided by factory helpers.
 */

#ifndef PERCON_BPRED_HYBRID_HH
#define PERCON_BPRED_HYBRID_HH

#include <memory>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace percon {

class HybridPredictor : public BranchPredictor
{
  public:
    /**
     * @param first chosen when the meta counter is low
     * @param second chosen when the meta counter is high
     * @param meta_entries chooser table size (power of two)
     * @param name display name
     */
    HybridPredictor(std::unique_ptr<BranchPredictor> first,
                    std::unique_ptr<BranchPredictor> second,
                    std::size_t meta_entries, std::string name);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return name_.c_str(); }
    std::size_t storageBits() const override;

    /**
     * 'PHYT01' wire format: chooser bytes followed by both component
     * sections. Save fails when either component does not serialize.
     * A failed load after the chooser section validated may leave
     * the components partially restored — callers treat any false
     * return as "re-warm from scratch".
     */
    bool saveState(std::ostream &os) const override;
    bool loadState(std::istream &is) override;

    BranchPredictor &first() { return *first_; }
    BranchPredictor &second() { return *second_; }

  private:
    std::size_t metaIndex(Addr pc) const;

    std::unique_ptr<BranchPredictor> first_;
    std::unique_ptr<BranchPredictor> second_;
    std::vector<SatCounter> meta_;
    std::string name_;
};

/** Paper baseline: 16K bimodal + 64K gshare + 64K meta. */
std::unique_ptr<BranchPredictor> makeBaselineHybrid();

/** §5.2 predictor: 64K gshare + perceptron + 64K meta. */
std::unique_ptr<BranchPredictor> makeGsharePerceptronHybrid();

} // namespace percon

#endif // PERCON_BPRED_HYBRID_HH
