/**
 * @file
 * TAGE-lite branch predictor (Seznec & Michaud, JILP 2006),
 * simplified: a bimodal base predictor plus N partially-tagged
 * tables indexed with geometrically increasing history lengths.
 * Prediction comes from the longest-history hit; allocation on
 * mispredictions steals an entry from a longer table.
 *
 * Post-dates the paper (2004) — included as the "future" reference
 * point in the predictor-comparison bench and for exploring how the
 * confidence estimator behaves under a stronger baseline, the
 * natural extension of the paper's §5.2.
 */

#ifndef PERCON_BPRED_TAGE_HH
#define PERCON_BPRED_TAGE_HH

#include <vector>

#include "bpred/branch_predictor.hh"
#include "common/sat_counter.hh"

namespace percon {

class TagePredictor : public BranchPredictor
{
  public:
    /**
     * @param base_entries bimodal base table (power of two)
     * @param table_entries entries per tagged table (power of two)
     * @param num_tables tagged components (2..8)
     * @param min_history shortest tagged history length
     * @param max_history longest tagged history length
     */
    explicit TagePredictor(std::size_t base_entries = 8 * 1024,
                           std::size_t table_entries = 1024,
                           unsigned num_tables = 4,
                           unsigned min_history = 4,
                           unsigned max_history = 64);

    bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) override;
    void update(Addr pc, std::uint64_t ghr, bool taken,
                const PredMeta &meta) override;

    const char *name() const override { return "tage"; }
    std::size_t storageBits() const override;

    unsigned historyLength(unsigned table) const
    {
        return histLen_[table];
    }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        SatCounter ctr{3, 4};     // 3-bit prediction counter
        SatCounter useful{2, 0};  // usefulness for replacement
        bool valid = false;
    };

    std::size_t baseIndex(Addr pc) const;
    std::size_t tableIndex(unsigned t, Addr pc,
                           std::uint64_t ghr) const;
    std::uint16_t tagFor(unsigned t, Addr pc, std::uint64_t ghr) const;

    /** Longest-history table hitting for (pc, ghr); -1 = none. */
    int findProvider(Addr pc, std::uint64_t ghr);

    std::vector<SatCounter> base_;
    std::vector<std::vector<Entry>> tables_;
    std::vector<unsigned> histLen_;
    std::uint64_t allocSeed_ = 0x1234'5678;
};

} // namespace percon

#endif // PERCON_BPRED_TAGE_HH
