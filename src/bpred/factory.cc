#include "factory.hh"

#include <cstdlib>

#include "bpred/agree.hh"
#include "bpred/bimodal.hh"
#include "bpred/gselect.hh"
#include "bpred/gshare.hh"
#include "bpred/hybrid.hh"
#include "bpred/pas.hh"
#include "bpred/perceptron_pred.hh"
#include "bpred/tage.hh"
#include "bpred/yags.hh"
#include "common/logging.hh"

namespace percon {

const std::vector<std::string> &
predictorNames()
{
    static const std::vector<std::string> names = {
        "bimodal", "gshare", "gselect", "agree", "yags", "pas",
        "perceptron", "tage", "bimodal-gshare", "gshare-perceptron",
    };
    return names;
}

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &name)
{
    if (name == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (name == "gshare")
        return std::make_unique<GsharePredictor>();
    if (name == "gselect")
        return std::make_unique<GselectPredictor>();
    if (name == "agree")
        return std::make_unique<AgreePredictor>();
    if (name == "yags")
        return std::make_unique<YagsPredictor>();
    if (name == "pas")
        return std::make_unique<PAsPredictor>();
    if (name == "perceptron")
        return std::make_unique<PerceptronPredictor>();
    if (name.rfind("perceptron-h", 0) == 0) {
        // "perceptron-hN": explicit history length (1..63) for
        // history-length studies and warm-cost-sensitive sweeps;
        // plain "perceptron" is the paper's h=32.
        char *end = nullptr;
        long h = std::strtol(name.c_str() + 12, &end, 10);
        if (end != nullptr && *end == '\0' && h >= 1 && h <= 63)
            return std::make_unique<PerceptronPredictor>(
                1024, static_cast<unsigned>(h));
    }
    if (name == "tage")
        return std::make_unique<TagePredictor>();
    if (name == "bimodal-gshare")
        return makeBaselineHybrid();
    if (name == "gshare-perceptron")
        return makeGsharePerceptronHybrid();
    fatal("unknown predictor '%s'", name.c_str());
}

} // namespace percon
