/**
 * @file
 * Branch predictor interface.
 *
 * Predictors are pure table machines: predict() and update() take the
 * global history bits explicitly, so one speculative-history manager
 * (SpecHistory) can serve the predictor and the confidence estimator
 * and handle checkpoint/restore on misprediction recovery in a single
 * place, exactly as the front end of a real machine would.
 */

#ifndef PERCON_BPRED_BRANCH_PREDICTOR_HH
#define PERCON_BPRED_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/types.hh"

namespace percon {

/**
 * Per-prediction metadata threaded from predict() to update().
 *
 * Real hardware carries this in the branch's pipeline payload; we
 * carry it in the in-flight branch record.
 */
struct PredMeta
{
    /** Sentinel for perceptronRow: no row cached at predict time. */
    static constexpr std::uint32_t kNoRow = 0xffffffffu;

    bool taken = false;            ///< final prediction
    bool bimodalPred = false;      ///< hybrid: bimodal component
    bool gsharePred = false;       ///< hybrid: gshare component
    bool perceptronPred = false;   ///< hybrid: perceptron component
    std::int32_t perceptronOut = 0;///< perceptron dot-product output

    /** Perceptron table row resolved at predict time, so update()
     *  does not recompute the index (kNoRow when not applicable). */
    std::uint32_t perceptronRow = kNoRow;
};

/** Abstract conditional branch direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the branch at @p pc given speculative global history
     * @p ghr (most recent branch in bit 0). Fills @p meta.
     * @return predicted direction (true = taken)
     */
    virtual bool predict(Addr pc, std::uint64_t ghr, PredMeta &meta) = 0;

    /**
     * Retire-time training with the architectural outcome.
     * @param ghr the history bits that were used at predict time
     */
    virtual void update(Addr pc, std::uint64_t ghr, bool taken,
                        const PredMeta &meta) = 0;

    /** Predictor family name for reports. */
    virtual const char *name() const = 0;

    /** Total table storage in bits (for cost accounting). */
    virtual std::size_t storageBits() const = 0;

    /**
     * Serialize the trained table state into the predictor's
     * magic-header wire format (see common/state_io.hh), so warmed
     * state can be checkpointed and restored across runs.
     * @return false when this predictor does not support state
     *         serialization (the default) or the stream failed
     */
    virtual bool
    saveState(std::ostream &os) const
    {
        (void)os;
        return false;
    }

    /**
     * Restore state written by saveState() on an identically
     * configured predictor.
     * @return false on magic/geometry/stream mismatch or when
     *         serialization is unsupported; simple predictors leave
     *         their state unchanged on failure (composites document
     *         partial-restore caveats)
     */
    virtual bool
    loadState(std::istream &is)
    {
        (void)is;
        return false;
    }
};

/**
 * Speculative global history with recovery.
 *
 * The front end pushes each *predicted* outcome at fetch; when a
 * branch resolves mispredicted, restore() rewinds to the checkpoint
 * taken at that branch's prediction and pushes the actual outcome,
 * discarding the history contributed by the squashed wrong path.
 */
class SpecHistory
{
  public:
    /** Current speculative history bits. */
    std::uint64_t bits() const { return bits_; }

    /** Checkpoint for an about-to-be-predicted branch. */
    std::uint64_t checkpoint() const { return bits_; }

    /** Speculatively shift in a predicted outcome. */
    void push(bool taken) { bits_ = (bits_ << 1) | (taken ? 1u : 0u); }

    /** Recover after a mispredict: rewind and apply the truth. */
    void
    recover(std::uint64_t snapshot, bool actual_taken)
    {
        bits_ = (snapshot << 1) | (actual_taken ? 1u : 0u);
    }

    void clear() { bits_ = 0; }

    /** Restore checkpointed history bits (warmed-state restore). */
    void setBits(std::uint64_t bits) { bits_ = bits; }

  private:
    std::uint64_t bits_ = 0;
};

} // namespace percon

#endif // PERCON_BPRED_BRANCH_PREDICTOR_HH
