#include "perceptron_pred.hh"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/logging.hh"
#include "common/perceptron_kernel.hh"

namespace percon {

PerceptronPredictor::PerceptronPredictor(std::size_t entries,
                                         unsigned history_bits,
                                         unsigned weight_bits, int theta)
    : entries_(entries), stride_(kernel::rowStride(history_bits)),
      historyBits_(history_bits), weightBits_(weight_bits)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "perceptron entries must be a power of two");
    PERCON_ASSERT(history_bits >= 1 && history_bits <= 63,
                  "bad history length %u", history_bits);
    PERCON_ASSERT(weight_bits >= 2 && weight_bits <= 16,
                  "bad weight width %u", weight_bits);
    weightMax_ = (1 << (weight_bits - 1)) - 1;
    weightMin_ = -(1 << (weight_bits - 1));
    theta_ = theta > 0
                 ? theta
                 : static_cast<int>(1.93 * history_bits + 14.0);
    weights_.assign(entries_ * stride_, 0);
}

std::int32_t
PerceptronPredictor::outputAt(std::size_t row, std::uint64_t ghr) const
{
    return kernel::dotProduct(&weights_[row * stride_], ghr,
                              historyBits_);
}

std::int32_t
PerceptronPredictor::output(Addr pc, std::uint64_t ghr) const
{
    return outputAt(rowFor(pc), ghr);
}

bool
PerceptronPredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    std::size_t row = rowFor(pc);
    std::int32_t y = outputAt(row, ghr);
    bool taken = y >= 0;
    meta.taken = taken;
    meta.perceptronPred = taken;
    meta.perceptronOut = y;
    meta.perceptronRow = static_cast<std::uint32_t>(row);
    return taken;
}

void
PerceptronPredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                            const PredMeta &meta)
{
    // Jimenez-Lin rule: train when the prediction was wrong or the
    // output magnitude is at or below theta.
    std::int32_t y = meta.perceptronOut;
    bool predicted = y >= 0;
    std::int32_t mag = y < 0 ? -y : y;
    if (predicted == taken && mag > theta_)
        return;

    std::size_t row = meta.perceptronRow == PredMeta::kNoRow
                          ? rowFor(pc)
                          : meta.perceptronRow;
    PERCON_ASSERT(row < entries_, "stale perceptron row %zu", row);
    kernel::trainRow(&weights_[row * stride_], ghr, historyBits_,
                     taken ? 1 : -1, weightMin_, weightMax_);
}

namespace {

constexpr char kPredWeightMagic[8] = {'P', 'P', 'W', 'T', '0', '1', 0, 0};

} // namespace

void
PerceptronPredictor::saveWeights(std::ostream &os) const
{
    os.write(kPredWeightMagic, sizeof(kPredWeightMagic));
    std::uint64_t geom[3] = {entries_, historyBits_, weightBits_};
    os.write(reinterpret_cast<const char *>(geom), sizeof(geom));
    // Serialize logical rows only: the lane padding is an in-memory
    // layout detail, not part of the wire format.
    for (std::size_t e = 0; e < entries_; ++e) {
        os.write(reinterpret_cast<const char *>(&weights_[e * stride_]),
                 static_cast<std::streamsize>((historyBits_ + 1) *
                                              sizeof(weights_[0])));
    }
}

bool
PerceptronPredictor::loadWeights(std::istream &is)
{
    char magic[8] = {};
    std::uint64_t geom[3] = {};
    is.read(magic, sizeof(magic));
    is.read(reinterpret_cast<char *>(geom), sizeof(geom));
    if (!is || std::memcmp(magic, kPredWeightMagic, sizeof(magic)) != 0)
        return false;
    if (geom[0] != entries_ || geom[1] != historyBits_ ||
        geom[2] != weightBits_)
        return false;
    std::vector<std::int16_t> incoming(weights_.size(), 0);
    for (std::size_t e = 0; e < entries_; ++e) {
        is.read(reinterpret_cast<char *>(&incoming[e * stride_]),
                static_cast<std::streamsize>((historyBits_ + 1) *
                                             sizeof(incoming[0])));
    }
    if (!is)
        return false;
    weights_ = std::move(incoming);
    return true;
}

std::size_t
PerceptronPredictor::storageBits() const
{
    // Hardware cost is the configured weight width over the logical
    // (unpadded) table, matching PerceptronConfidence::storageBits().
    return entries_ * (historyBits_ + 1) * weightBits_;
}

bool
PerceptronPredictor::saveState(std::ostream &os) const
{
    saveWeights(os);
    return static_cast<bool>(os);
}

bool
PerceptronPredictor::loadState(std::istream &is)
{
    return loadWeights(is);
}

} // namespace percon
