#include "perceptron_pred.hh"

#include "common/logging.hh"

namespace percon {

PerceptronPredictor::PerceptronPredictor(std::size_t entries,
                                         unsigned history_bits,
                                         unsigned weight_bits, int theta)
    : entries_(entries), historyBits_(history_bits)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "perceptron entries must be a power of two");
    PERCON_ASSERT(history_bits >= 1 && history_bits <= 63,
                  "bad history length %u", history_bits);
    PERCON_ASSERT(weight_bits >= 2 && weight_bits <= 16,
                  "bad weight width %u", weight_bits);
    weightMax_ = (1 << (weight_bits - 1)) - 1;
    weightMin_ = -(1 << (weight_bits - 1));
    theta_ = theta > 0
                 ? theta
                 : static_cast<int>(1.93 * history_bits + 14.0);
    weights_.assign(entries_ * (historyBits_ + 1), 0);
}

std::size_t
PerceptronPredictor::indexFor(Addr pc) const
{
    return (pc >> 2) & (entries_ - 1);
}

std::int32_t
PerceptronPredictor::output(Addr pc, std::uint64_t ghr) const
{
    const std::int16_t *w = &weights_[indexFor(pc) * (historyBits_ + 1)];
    std::int32_t y = w[0];  // bias weight, input fixed at +1
    for (unsigned i = 0; i < historyBits_; ++i) {
        bool taken = (ghr >> i) & 1ULL;
        y += taken ? w[i + 1] : -w[i + 1];
    }
    return y;
}

bool
PerceptronPredictor::predict(Addr pc, std::uint64_t ghr, PredMeta &meta)
{
    std::int32_t y = output(pc, ghr);
    bool taken = y >= 0;
    meta.taken = taken;
    meta.perceptronPred = taken;
    meta.perceptronOut = y;
    return taken;
}

void
PerceptronPredictor::update(Addr pc, std::uint64_t ghr, bool taken,
                            const PredMeta &meta)
{
    // Jimenez-Lin rule: train when the prediction was wrong or the
    // output magnitude is at or below theta.
    std::int32_t y = meta.perceptronOut;
    bool predicted = y >= 0;
    std::int32_t mag = y < 0 ? -y : y;
    if (predicted == taken && mag > theta_)
        return;

    std::int16_t *w = &weights_[indexFor(pc) * (historyBits_ + 1)];
    int t = taken ? 1 : -1;

    auto bump = [&](std::int16_t &weight, int direction) {
        int next = weight + direction;
        if (next > weightMax_)
            next = weightMax_;
        if (next < weightMin_)
            next = weightMin_;
        weight = static_cast<std::int16_t>(next);
    };

    bump(w[0], t);
    for (unsigned i = 0; i < historyBits_; ++i) {
        int x = ((ghr >> i) & 1ULL) ? 1 : -1;
        bump(w[i + 1], t * x);
    }
}

std::size_t
PerceptronPredictor::storageBits() const
{
    unsigned weight_bits = 0;
    for (int v = weightMax_ + 1; v > 0; v >>= 1)
        ++weight_bits;
    return entries_ * (historyBits_ + 1) * (weight_bits + 1);
}

} // namespace percon
