/**
 * @file
 * The out-of-order core model.
 *
 * A cycle-stepped loop over fetch, dispatch, branch resolution and
 * retirement, with execution times computed analytically by the
 * ExecModel (see exec_model.hh). The model executes the full wrong
 * path: after a (post-reversal) mispredicted branch is fetched, the
 * front end streams uops from the WrongPathSynthesizer; they occupy
 * real resources, execute, pollute/prefetch the caches, and die when
 * the branch resolves, at which point the speculative history is
 * recovered from the branch's checkpoint and the correct path
 * resumes after the front-end refill delay.
 *
 * Pipeline gating (Figure 1): every fetched conditional branch is
 * classified by the confidence estimator; low-confidence branches
 * increment a counter (optionally confidenceLatency cycles after
 * fetch, §5.4.2) and decrement it when they resolve or are flushed.
 * Fetch stalls while the counter is at or above the gate threshold.
 *
 * Branch reversal (§5.5): StrongLow-band branches have their
 * predicted direction inverted at fetch.
 *
 * Simulator throughput: run() is event-driven. After each simulated
 * cycle the core computes the earliest cycle at which any stage
 * could make progress or any timed event (branch resolution, delayed
 * confidence mark, scheduler-window release, retire eligibility,
 * fetch-stall expiry) fires, and fast-forwards over the idle gap in
 * O(1) while replaying the per-cycle stall accounting in bulk. The
 * reported CoreStats are bit-identical to the cycle-stepped run —
 * see tests/uarch/core_golden_stats_test.cc, which pins every
 * counter against the pre-optimization implementation.
 */

#ifndef PERCON_UARCH_CORE_HH
#define PERCON_UARCH_CORE_HH

#include <memory>
#include <queue>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "bpred/btb.hh"
#include "confidence/confidence_estimator.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "trace/uop.hh"
#include "trace/wrongpath.hh"
#include "uarch/audit_hook.hh"
#include "uarch/core_stats.hh"
#include "uarch/exec_model.hh"
#include "uarch/inflight_window.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

class SnapshotCursor;

/** A timed resolve / delayed-confidence event on an in-flight uop.
 *  Ordered by (when, seq) so same-cycle events process in fetch
 *  order, exactly like the original seq-keyed queues. */
struct UopEvent
{
    Cycle when;
    SeqNum seq;
    UopHandle h;
};

struct UopEventLater
{
    bool
    operator()(const UopEvent &a, const UopEvent &b) const
    {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
};

using UopEventQueue =
    std::priority_queue<UopEvent, std::vector<UopEvent>, UopEventLater>;

class Core
{
  public:
    /**
     * @param config machine geometry
     * @param workload correct-path uop source (not owned)
     * @param wrong_path wrong-path synthesizer (not owned)
     * @param predictor branch predictor (not owned)
     * @param estimator confidence estimator; may be nullptr when
     *                  neither gating nor reversal is used
     * @param spec speculation-control policy
     */
    Core(const PipelineConfig &config, WorkloadSource &workload,
         WrongPathSynthesizer &wrong_path, BranchPredictor &predictor,
         ConfidenceEstimator *estimator, const SpeculationControl &spec);

    /** Advance until @p target_retired more uops have retired. */
    void run(Count target_retired);

    /** Run @p uops and then clear the statistics (cache/predictor
     *  state is kept): the paper's 10M-uop warmup. */
    void warmup(Count uops);

    /**
     * Enable/disable event-driven idle-cycle skipping (default on).
     * Skipping never changes CoreStats — the equivalence tests run
     * both modes and require byte-identical results — so this exists
     * only for those tests and for debugging.
     */
    void setCycleSkipping(bool enabled) { skipIdleCycles_ = enabled; }

    const CoreStats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_ = CoreStats{};
        if (auditor_)
            auditor_->onStatsReset(auditContext());
    }

    MemoryHierarchy &memory() { return mem_; }

    /**
     * Attach a runtime auditor (see audit_hook.hh); null detaches.
     * The auditor observes fetch/retire/squash events, receives an
     * end-of-cycle consistency checkpoint, and becomes the checked-
     * error sink of the ExecModel. Attaching one never changes
     * CoreStats.
     */
    void
    setAuditor(AuditHook *auditor)
    {
        auditor_ = auditor;
        exec_.setAuditSink(auditor);
    }

    /**
     * Test-only fault injection: deliberately corrupt the bulk stall
     * replay of fastForward() (the dispatch-stall counters drop one
     * cycle per skip) to prove the differential harness catches a
     * broken event-skipping optimization. Never set outside tests.
     */
    void setTestFastForwardDefect(bool on) { testFfDefect_ = on; }

  private:
    void cycleOnce();
    void applyPendingConfidence();
    void resolveBranches();
    void retire();
    void dispatch();
    void fetch();
    void flushAfter(const InflightUop &branch);
    Cycle sourceReady(const InflightUop &uop) const;

    /** Earliest cycle > now_ at which any stage can make progress or
     *  any timed event fires; kNoEvent when the machine is dead. */
    Cycle nextEventCycle() const;

    /** Advance @p skipped guaranteed-idle cycles at once, replaying
     *  their per-cycle stall accounting in bulk. */
    void fastForward(Cycle skipped);

    AuditContext auditContext() const;

    /** Fetch one uop; returns false when fetch must stop for this
     *  cycle (trace-cache miss). */
    bool fetchOne();

    static constexpr Cycle kNoEvent = ~Cycle(0);

    // configuration ------------------------------------------------
    PipelineConfig config_;
    SpeculationControl spec_;
    WorkloadSource &workload_;

    /** Non-null when workload_ is a SnapshotCursor: fetch then calls
     *  the devirtualized nextFast() replay path. */
    SnapshotCursor *snapCursor_ = nullptr;

    WrongPathSynthesizer &wrongPath_;
    BranchPredictor &predictor_;
    ConfidenceEstimator *estimator_;

    // machine state ------------------------------------------------
    MemoryHierarchy mem_;
    ExecModel exec_;
    SpecHistory history_;
    Cache traceCache_;
    Btb btb_;

    /** Fetch-stall deadlines by cause; fetch resumes at the max. */
    Cycle tcStallUntil_ = 0;
    Cycle btbStallUntil_ = 0;

    /** Fetch pipe + ROB (see inflight_window.hh). */
    InflightWindow window_;

    /** Unresolved in-flight branches, keyed by resolution cycle. */
    UopEventQueue resolveQueue_;

    /** Delayed low-confidence marks, keyed by apply cycle. */
    UopEventQueue confQueue_;

    Cycle now_ = 0;
    SeqNum nextSeq_ = 1;
    unsigned gateCount_ = 0;
    bool onWrongPath_ = false;
    bool skipIdleCycles_ = true;
    bool testFfDefect_ = false;

    AuditHook *auditor_ = nullptr;

    unsigned loadsInFlight_ = 0;
    unsigned storesInFlight_ = 0;

    /** Producer completion times by stream index, per path. */
    static constexpr std::size_t kDepRing = 256;
    Cycle corrReady_[kDepRing] = {};
    Cycle wpReady_[kDepRing] = {};
    std::uint64_t corrIdx_ = 0;
    std::uint64_t wpIdx_ = 0;

    CoreStats stats_;
};

} // namespace percon

#endif // PERCON_UARCH_CORE_HH
