/**
 * @file
 * The single-thread out-of-order core model.
 *
 * Core is a one-thread configuration shell over the unified
 * PipelineEngine (pipeline_engine.hh), which owns the machine model:
 * the fetch/dispatch/resolve/retire loop, full wrong-path execution,
 * pipeline gating (Figure 1), branch reversal (§5.5), and the
 * event-driven cycle skipping whose CoreStats are bit-identical to
 * the cycle-stepped run — see tests/uarch/core_golden_stats_test.cc,
 * which pins every counter against the pre-optimization
 * implementation.
 *
 * This shell keeps the historical single-thread API surface
 * (stats(), setAuditor(hook)) used throughout the tools and tests;
 * with one thread the engine's partitioning, fetch arbitration and
 * dispatch-budget split all degenerate to the classic Core machine.
 */

#ifndef PERCON_UARCH_CORE_HH
#define PERCON_UARCH_CORE_HH

#include "uarch/pipeline_engine.hh"

namespace percon {

class Core : public PipelineEngine
{
  public:
    /**
     * @param config machine geometry
     * @param workload correct-path uop source (not owned)
     * @param wrong_path wrong-path synthesizer (not owned)
     * @param predictor branch predictor (not owned)
     * @param estimator confidence estimator; may be nullptr when
     *                  neither gating nor reversal is used
     * @param spec speculation-control policy
     */
    Core(const PipelineConfig &config, WorkloadSource &workload,
         WrongPathSynthesizer &wrong_path, BranchPredictor &predictor,
         ConfidenceEstimator *estimator, const SpeculationControl &spec);

    const CoreStats &stats() const { return PipelineEngine::stats(0); }

    /**
     * Attach a runtime auditor (see audit_hook.hh); null detaches.
     * The auditor observes fetch/retire/squash events, receives an
     * end-of-cycle consistency checkpoint, and becomes the checked-
     * error sink of the ExecModel. Attaching one never changes
     * CoreStats.
     */
    void
    setAuditor(AuditHook *auditor)
    {
        PipelineEngine::setAuditor(0, auditor);
    }
};

} // namespace percon

#endif // PERCON_UARCH_CORE_HH
