/**
 * @file
 * The out-of-order core model.
 *
 * A cycle-stepped loop over fetch, dispatch, branch resolution and
 * retirement, with execution times computed analytically by the
 * ExecModel (see exec_model.hh). The model executes the full wrong
 * path: after a (post-reversal) mispredicted branch is fetched, the
 * front end streams uops from the WrongPathSynthesizer; they occupy
 * real resources, execute, pollute/prefetch the caches, and die when
 * the branch resolves, at which point the speculative history is
 * recovered from the branch's checkpoint and the correct path
 * resumes after the front-end refill delay.
 *
 * Pipeline gating (Figure 1): every fetched conditional branch is
 * classified by the confidence estimator; low-confidence branches
 * increment a counter (optionally confidenceLatency cycles after
 * fetch, §5.4.2) and decrement it when they resolve or are flushed.
 * Fetch stalls while the counter is at or above the gate threshold.
 *
 * Branch reversal (§5.5): StrongLow-band branches have their
 * predicted direction inverted at fetch.
 */

#ifndef PERCON_UARCH_CORE_HH
#define PERCON_UARCH_CORE_HH

#include <deque>
#include <memory>
#include <queue>

#include "bpred/branch_predictor.hh"
#include "bpred/btb.hh"
#include "confidence/confidence_estimator.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "trace/uop.hh"
#include "trace/wrongpath.hh"
#include "uarch/core_stats.hh"
#include "uarch/exec_model.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

class Core
{
  public:
    /**
     * @param config machine geometry
     * @param workload correct-path uop source (not owned)
     * @param wrong_path wrong-path synthesizer (not owned)
     * @param predictor branch predictor (not owned)
     * @param estimator confidence estimator; may be nullptr when
     *                  neither gating nor reversal is used
     * @param spec speculation-control policy
     */
    Core(const PipelineConfig &config, WorkloadSource &workload,
         WrongPathSynthesizer &wrong_path, BranchPredictor &predictor,
         ConfidenceEstimator *estimator, const SpeculationControl &spec);

    /** Advance until @p target_retired more uops have retired. */
    void run(Count target_retired);

    /** Run @p uops and then clear the statistics (cache/predictor
     *  state is kept): the paper's 10M-uop warmup. */
    void warmup(Count uops);

    const CoreStats &stats() const { return stats_; }
    void resetStats() { stats_ = CoreStats{}; }

    MemoryHierarchy &memory() { return mem_; }

  private:
    void cycleOnce();
    void applyPendingConfidence();
    void resolveBranches();
    void retire();
    void dispatch();
    void fetch();
    void flushAfter(const InflightUop &branch);
    InflightUop *findBySeq(SeqNum seq);
    Cycle sourceReady(const InflightUop &uop) const;

    /** Fetch one uop; returns false when fetch must stop for this
     *  cycle (trace-cache miss). */
    bool fetchOne();

    // configuration ------------------------------------------------
    PipelineConfig config_;
    SpeculationControl spec_;
    WorkloadSource &workload_;
    WrongPathSynthesizer &wrongPath_;
    BranchPredictor &predictor_;
    ConfidenceEstimator *estimator_;

    // machine state ------------------------------------------------
    MemoryHierarchy mem_;
    ExecModel exec_;
    SpecHistory history_;
    Cache traceCache_;
    Btb btb_;
    Cycle fetchStallUntil_ = 0;

    std::deque<InflightUop> fetchPipe_;
    std::deque<InflightUop> rob_;

    /** (completeAt, seq) of unresolved in-flight branches. */
    std::priority_queue<std::pair<Cycle, SeqNum>,
                        std::vector<std::pair<Cycle, SeqNum>>,
                        std::greater<>>
        resolveQueue_;

    /** (applyAt, seq) of delayed low-confidence marks. */
    std::priority_queue<std::pair<Cycle, SeqNum>,
                        std::vector<std::pair<Cycle, SeqNum>>,
                        std::greater<>>
        confQueue_;

    Cycle now_ = 0;
    SeqNum nextSeq_ = 1;
    unsigned gateCount_ = 0;
    bool onWrongPath_ = false;

    unsigned loadsInFlight_ = 0;
    unsigned storesInFlight_ = 0;

    /** Producer completion times by stream index, per path. */
    static constexpr std::size_t kDepRing = 256;
    Cycle corrReady_[kDepRing] = {};
    Cycle wpReady_[kDepRing] = {};
    std::uint64_t corrIdx_ = 0;
    std::uint64_t wpIdx_ = 0;

    CoreStats stats_;
};

} // namespace percon

#endif // PERCON_UARCH_CORE_HH
