#include "smt_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/trace_snapshot.hh"

namespace percon {

SmtCore::SmtCore(const PipelineConfig &config,
                 const std::array<SmtThreadConfig, kThreads> &threads,
                 BranchPredictor &predictor,
                 ConfidenceEstimator *estimator,
                 const SpeculationControl &spec,
                 SmtFetchPolicy fetch_policy, bool shared_structures)
    : config_(config), spec_(spec), predictor_(predictor),
      estimator_(estimator), mem_(config.mem), exec_(config_, mem_),
      traceCache_(config.traceCache),
      btb_(config.btbEntries, config.btbWays),
      fetchPolicy_(fetch_policy), sharedStructures_(shared_structures)
{
    if ((spec_.gateThreshold > 0 && !spec_.oracleGating) ||
        spec_.reversalEnabled) {
        PERCON_ASSERT(estimator_ != nullptr,
                      "gating/reversal require a confidence estimator");
    }
    for (unsigned t = 0; t < kThreads; ++t) {
        PERCON_ASSERT(threads[t].workload && threads[t].wrongPath,
                      "thread %u is missing a workload binding", t);
        threads_[t].cfg = threads[t];
        threads_[t].snapCursor =
            dynamic_cast<SnapshotCursor *>(threads[t].workload);
    }
    robPerThread_ = std::max(8u, config.robSize / kThreads);
    loadBufsPerThread_ = std::max(4u, config.loadBuffers / kThreads);
    storeBufsPerThread_ = std::max(4u, config.storeBuffers / kThreads);
    // Each thread's window is sized for the worst case (the whole
    // ROB in shared-pool mode); dispatch() enforces the actual
    // shared/partitioned occupancy limits.
    std::size_t rob_cap =
        std::max<std::size_t>(config.robSize, robPerThread_);
    std::size_t pipe_cap =
        static_cast<std::size_t>(config.frontEndDepth) * config.width;
    for (auto &t : threads_)
        t.window.reset(rob_cap, pipe_cap);
}

void
SmtCore::resolveBranches()
{
    while (!resolveQueue_.empty() && resolveQueue_.top().when <= now_) {
        SmtUopEvent ev = resolveQueue_.top();
        resolveQueue_.pop();
        Thread &t = threads_[ev.tid];
        InflightUop *u = t.window.lookup(ev.h);
        if (!u || u->resolvedForGate)
            continue;
        PERCON_ASSERT(u->seq == ev.seq, "stale resolve handle");
        u->resolvedForGate = true;
        if (u->lowConfCounted) {
            PERCON_ASSERT(t.gateCount > 0, "gate counter underflow");
            --t.gateCount;
            u->lowConfCounted = false;
        }
        if (u->causesRedirect)
            flushAfter(ev.tid, *u);
    }
}

void
SmtCore::flushAfter(unsigned tid, const InflightUop &branch)
{
    Thread &t = threads_[tid];
    ++stats_[tid].flushes;

    t.window.flushYoungerThan(branch.seq, [&](InflightUop &u) {
        if (u.dispatched) {
            if (u.issueAt <= now_) {
                ++stats_[tid].executedUops;
                ++stats_[tid].wrongPathExecuted;
            }
            if (u.cls == UopClass::Load)
                --t.loadsInFlight;
            else if (u.cls == UopClass::Store)
                --t.storesInFlight;
        }
        if (u.lowConfCounted) {
            PERCON_ASSERT(t.gateCount > 0, "gate counter underflow");
            --t.gateCount;
        }
        if (auditors_[tid])
            auditors_[tid]->onSquash(u);
    });
    t.history.recover(branch.ghrSnapshot, branch.actualTaken);
    t.onWrongPath = false;
}

void
SmtCore::retire(unsigned tid)
{
    Thread &t = threads_[tid];
    // Retire bandwidth is shared naively: each thread may retire up
    // to the machine width (commit is rarely the SMT bottleneck).
    for (unsigned n = 0; n < config_.width; ++n) {
        if (t.window.robEmpty())
            return;
        InflightUop &u = t.window.robFront();
        if (!u.dispatched || u.completeAt + config_.backEndDepth > now_)
            return;
        PERCON_ASSERT(!u.wrongPath,
                      "wrong-path uop reached the ROB head");

        CoreStats &s = stats_[tid];
        ++s.retiredUops;
        ++s.executedUops;
        switch (u.cls) {
          case UopClass::Load:
            --t.loadsInFlight;
            break;
          case UopClass::Store:
            --t.storesInFlight;
            mem_.access(u.memAddr, now_, true);
            break;
          case UopClass::Branch: {
            ++s.retiredBranches;
            bool misp_orig = u.predTaken != u.actualTaken;
            bool misp_final = u.finalPred != u.actualTaken;
            if (misp_orig)
                ++s.mispredictsOriginal;
            if (misp_final)
                ++s.mispredictsFinal;
            if (u.reversed) {
                ++s.reversals;
                if (misp_orig)
                    ++s.reversalsGood;
                else
                    ++s.reversalsBad;
            }
            predictor_.update(u.pc, u.ghrSnapshot, u.actualTaken,
                              u.meta);
            if (estimator_) {
                s.confidence.record(misp_orig, u.conf.low);
                estimator_->train(u.pc, u.ghrSnapshot, u.predTaken,
                                  misp_orig, u.conf);
            }
            break;
          }
          default:
            break;
        }
        if (auditors_[tid])
            auditors_[tid]->onRetire(u);
        t.window.popRetired();
    }
}

Cycle
SmtCore::sourceReady(const Thread &t, const InflightUop &uop) const
{
    const auto &ring = uop.wrongPath ? t.wpReady : t.corrReady;
    Cycle ready = 0;
    for (unsigned s = 0; s < 2; ++s) {
        std::uint16_t d = uop.srcDist[s];
        if (d == 0 || d > uop.streamIdx || d >= Thread::kDepRing)
            continue;
        Cycle r = ring[(uop.streamIdx - d) % Thread::kDepRing];
        if (r > ready)
            ready = r;
    }
    return ready;
}

void
SmtCore::dispatch(unsigned tid)
{
    Thread &t = threads_[tid];
    // Dispatch bandwidth is split evenly between active threads.
    unsigned budget = std::max(1u, config_.width / kThreads);
    for (unsigned n = 0; n < budget; ++n) {
        if (t.window.pipeEmpty() ||
            t.window.pipeFront().dispatchReadyAt > now_)
            return;
        InflightUop &front = t.window.pipeFront();
        if (sharedStructures_) {
            std::size_t rob_total = threads_[0].window.robSize() +
                                    threads_[1].window.robSize();
            unsigned loads_total = threads_[0].loadsInFlight +
                                   threads_[1].loadsInFlight;
            unsigned stores_total = threads_[0].storesInFlight +
                                    threads_[1].storesInFlight;
            if (rob_total >= config_.robSize)
                return;
            if ((front.cls == UopClass::Load &&
                 loads_total >= config_.loadBuffers) ||
                (front.cls == UopClass::Store &&
                 stores_total >= config_.storeBuffers))
                return;
        } else {
            if (t.window.robSize() >= robPerThread_)
                return;
            if ((front.cls == UopClass::Load &&
                 t.loadsInFlight >= loadBufsPerThread_) ||
                (front.cls == UopClass::Store &&
                 t.storesInFlight >= storeBufsPerThread_))
                return;
        }
        if (!exec_.windowAvailable(schedClassFor(front.cls)))
            return;

        UopHandle h = t.window.pipeFrontHandle();
        InflightUop &u = t.window.dispatchPipeFront();
        exec_.dispatch(u, now_, sourceReady(t, u));

        auto &ring = u.wrongPath ? t.wpReady : t.corrReady;
        ring[u.streamIdx % Thread::kDepRing] = u.completeAt;

        if (u.cls == UopClass::Load)
            ++t.loadsInFlight;
        else if (u.cls == UopClass::Store)
            ++t.storesInFlight;
        if (u.isBranch() && !u.resolvedForGate) {
            resolveQueue_.push(
                {u.completeAt + config_.backEndDepth, tid, u.seq, h});
        }
    }
}

bool
SmtCore::fetchOne(unsigned tid)
{
    Thread &t = threads_[tid];
    MicroOp mu;
    if (t.onWrongPath)
        mu = t.cfg.wrongPath->next();
    else if (t.snapCursor)
        mu = t.snapCursor->nextFast();
    else
        mu = t.cfg.workload->next();

    bool stall_after = false;
    if (config_.traceCacheEnabled && !traceCache_.access(mu.pc)) {
        ++stats_[tid].traceCacheMisses;
        t.tcStallUntil = now_ + config_.traceCacheMissPenalty;
        stall_after = true;
    }

    InflightUop &u = t.window.emplaceFetched().u;
    u.seq = nextSeq_++;
    u.pc = mu.pc;
    u.cls = mu.cls;
    u.srcDist[0] = mu.srcDist[0];
    u.srcDist[1] = mu.srcDist[1];
    u.memAddr = mu.memAddr;
    u.wrongPath = t.onWrongPath;
    u.dispatchReadyAt = now_ + config_.frontEndDepth;
    u.streamIdx = t.onWrongPath ? t.wpIdx++ : t.corrIdx++;

    ++stats_[tid].fetchedUops;
    if (u.wrongPath)
        ++stats_[tid].wrongPathFetched;

    if (u.isBranch()) {
        u.ghrSnapshot = t.history.bits();
        u.predTaken = predictor_.predict(u.pc, u.ghrSnapshot, u.meta);
        if (estimator_)
            u.conf = estimator_->estimate(u.pc, u.ghrSnapshot,
                                          u.predTaken);
        u.finalPred = u.predTaken;
        if (spec_.reversalEnabled &&
            u.conf.band == ConfidenceBand::StrongLow) {
            u.finalPred = !u.predTaken;
            u.reversed = true;
        }
        t.history.push(u.finalPred);

        if (config_.btbEnabled && u.finalPred) {
            if (!btb_.lookup(u.pc)) {
                ++stats_[tid].btbMisses;
                Cycle until = now_ + config_.btbMissPenalty;
                if (until > t.btbStallUntil)
                    t.btbStallUntil = until;
                stall_after = true;
                btb_.update(u.pc, mu.target);
            }
        }

        if (!u.wrongPath) {
            u.actualTaken = mu.taken;
            u.causesRedirect = u.finalPred != u.actualTaken;
            if (u.causesRedirect) {
                t.onWrongPath = true;
                t.wpIdx = 0;
                t.cfg.wrongPath->redirect(u.finalPred ? mu.target
                                                      : mu.pc + 4);
            }
        } else {
            u.actualTaken = u.finalPred;
            u.causesRedirect = false;
        }

        bool gate_mark;
        if (spec_.oracleGating) {
            gate_mark = spec_.gateThreshold > 0 && u.causesRedirect;
        } else {
            gate_mark = estimator_ && spec_.gateThreshold > 0 &&
                        (spec_.reversalEnabled
                             ? u.conf.band == ConfidenceBand::WeakLow
                             : u.conf.low);
        }
        if (gate_mark) {
            // SMT model keeps the confidence latency simple: marks
            // apply immediately.
            u.lowConfCounted = true;
            ++t.gateCount;
        }
    }

    if (auditors_[tid])
        auditors_[tid]->onFetch(u);
    return !stall_after;
}

void
SmtCore::fetch()
{
    auto eligible = [&](unsigned tid) {
        Thread &t = threads_[tid];
        if (now_ < std::max(t.tcStallUntil, t.btbStallUntil)) {
            // Attribute the stalled cycle to its cause; an
            // overlapping trace-cache fill takes priority.
            if (now_ < t.tcStallUntil)
                ++stats_[tid].traceCacheStallCycles;
            else
                ++stats_[tid].btbStallCycles;
            return false;
        }
        if (t.window.pipeFull())
            return false;
        if (spec_.gateThreshold > 0 &&
            t.gateCount >= spec_.gateThreshold) {
            ++stats_[tid].gatedCycles;
            return false;
        }
        return true;
    };

    int pick = -1;
    if (fetchPolicy_ == SmtFetchPolicy::RoundRobin) {
        for (unsigned k = 0; k < kThreads; ++k) {
            unsigned tid = (rrNext_ + k) % kThreads;
            if (eligible(tid)) {
                pick = static_cast<int>(tid);
                rrNext_ = (tid + 1) % kThreads;
                break;
            }
        }
    } else {
        // ICOUNT-lite: give the full fetch width to the eligible
        // thread with the fewest in-flight uops.
        std::size_t best_load = ~std::size_t{0};
        for (unsigned tid = 0; tid < kThreads; ++tid) {
            if (!eligible(tid))
                continue;
            Thread &t = threads_[tid];
            std::size_t load = t.window.size();
            if (load < best_load) {
                best_load = load;
                pick = static_cast<int>(tid);
            }
        }
    }
    if (pick < 0)
        return;

    Thread &t = threads_[static_cast<unsigned>(pick)];
    for (unsigned n = 0; n < config_.width && !t.window.pipeFull();
         ++n) {
        if (!fetchOne(static_cast<unsigned>(pick)))
            break;
    }
}

AuditContext
SmtCore::auditContext(unsigned tid) const
{
    AuditContext ctx{&stats_[tid],
                     &threads_[tid].window,
                     threads_[tid].gateCount,
                     now_,
                     spec_.gateThreshold,
                     estimator_ != nullptr};
    if (threads_[tid].snapCursor) {
        ctx.workloadReplay = true;
        ctx.workloadConsumed = threads_[tid].snapCursor->consumed();
    }
    return ctx;
}

void
SmtCore::cycleOnce()
{
    ++now_;
    for (auto &s : stats_)
        ++s.cycles;
    exec_.tick(now_);
    resolveBranches();
    for (unsigned tid = 0; tid < kThreads; ++tid)
        retire(tid);
    for (unsigned tid = 0; tid < kThreads; ++tid)
        dispatch(tid);
    fetch();
    for (unsigned tid = 0; tid < kThreads; ++tid) {
        if (auditors_[tid])
            auditors_[tid]->onCheck(auditContext(tid));
    }
}

void
SmtCore::run(Count per_thread)
{
    std::array<Count, kThreads> goal;
    for (unsigned t = 0; t < kThreads; ++t)
        goal[t] = stats_[t].retiredUops + per_thread;

    Cycle last_progress = now_;
    Count last_total = 0;
    for (;;) {
        bool done = true;
        for (unsigned t = 0; t < kThreads; ++t)
            done = done && stats_[t].retiredUops >= goal[t];
        if (done)
            break;
        cycleOnce();
        Count total = stats_[0].retiredUops + stats_[1].retiredUops;
        if (total != last_total) {
            last_total = total;
            last_progress = now_;
        } else if (now_ - last_progress > 500000) {
            panic("SMT core deadlock: no retirement in 500k cycles");
        }
    }
}

void
SmtCore::warmup(Count per_thread)
{
    run(per_thread);
    for (auto &s : stats_)
        s = CoreStats{};
    for (unsigned tid = 0; tid < kThreads; ++tid) {
        if (auditors_[tid])
            auditors_[tid]->onStatsReset(auditContext(tid));
    }
}

double
SmtCore::combinedIpc() const
{
    // stats_ cycles reset at warmup; now_ does not.
    if (stats_[0].cycles == 0)
        return 0.0;
    double retired = 0;
    for (const auto &s : stats_)
        retired += static_cast<double>(s.retiredUops);
    return retired / static_cast<double>(stats_[0].cycles);
}

} // namespace percon
