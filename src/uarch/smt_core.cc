#include "smt_core.hh"

namespace percon {

SmtCore::SmtCore(const PipelineConfig &config,
                 const std::array<SmtThreadConfig, kThreads> &threads,
                 BranchPredictor &predictor,
                 ConfidenceEstimator *estimator,
                 const SpeculationControl &spec,
                 SmtFetchPolicy fetch_policy, bool shared_structures)
    : PipelineEngine(config,
                     std::vector<ThreadBinding>(threads.begin(),
                                                threads.end()),
                     predictor, estimator, spec, fetch_policy,
                     shared_structures)
{
}

} // namespace percon
