/**
 * @file
 * Activity-based energy proxy.
 *
 * Pipeline gating was proposed for *energy* reduction (Manne et al.,
 * the paper's reference [10]): wrong-path uops burn fetch, rename,
 * scheduling and execution energy that gating avoids. This model
 * turns CoreStats activity counts into an energy figure using
 * per-event weights (normalized to an IntAlu execution = 1.0) plus a
 * static/clock component per cycle, and derives the metrics the
 * speculation-control literature reports: energy, EPI, and
 * energy-delay product.
 *
 * The weights are deliberately coarse — relative, not absolute — so
 * conclusions should only ever be drawn from ratios between runs on
 * the same machine, which is how the bench harness uses them.
 */

#ifndef PERCON_UARCH_ENERGY_HH
#define PERCON_UARCH_ENERGY_HH

#include "uarch/core_stats.hh"

namespace percon {

/** Per-event energy weights (IntAlu execution = 1.0). */
struct EnergyParams
{
    double fetchPerUop = 0.4;     ///< fetch + decode + rename
    double executePerUop = 1.0;   ///< scheduling + execution + bypass
    double retirePerUop = 0.2;    ///< commit bookkeeping
    double flushFixed = 8.0;      ///< per-flush recovery activity
    double staticPerCycle = 0.6;  ///< leakage + clock tree per cycle

    /** Extra energy per gated cycle (the gating logic itself). */
    double gatePerCycle = 0.02;
};

/** Energy accounting derived from one run's statistics. */
struct EnergyReport
{
    double total = 0.0;        ///< total energy (arbitrary units)
    double dynamicPart = 0.0;  ///< activity-proportional share
    double staticPart = 0.0;   ///< cycle-proportional share

    /** Energy per retired uop. */
    double epi = 0.0;

    /** Energy-delay product (total * cycles), for "did gating pay
     *  for its slowdown" comparisons. */
    double edp = 0.0;
};

/** Compute the energy report for a finished run. */
EnergyReport computeEnergy(const CoreStats &stats,
                           const EnergyParams &params = {});

} // namespace percon

#endif // PERCON_UARCH_ENERGY_HH
