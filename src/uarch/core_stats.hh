/**
 * @file
 * Statistics collected by one Core run. All the paper's metrics
 * derive from these counters.
 */

#ifndef PERCON_UARCH_CORE_STATS_HH
#define PERCON_UARCH_CORE_STATS_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace percon {

struct CoreStats
{
    Cycle cycles = 0;

    Count fetchedUops = 0;
    Count executedUops = 0;   ///< issued to a unit (incl. wrong path)
    Count retiredUops = 0;    ///< architecturally committed

    Count wrongPathFetched = 0;
    Count wrongPathExecuted = 0;

    Count retiredBranches = 0;
    Count mispredictsOriginal = 0;  ///< predictor direction was wrong
    Count mispredictsFinal = 0;     ///< post-reversal direction wrong

    Count reversals = 0;
    Count reversalsGood = 0;  ///< reversal fixed a misprediction
    Count reversalsBad = 0;   ///< reversal broke a correct prediction

    Count gatedCycles = 0;    ///< fetch cycles suppressed by gating
    Count flushes = 0;

    Count traceCacheMisses = 0;
    Count traceCacheStallCycles = 0;  ///< fetch stalled on a TC fill
    Count btbMisses = 0;
    Count btbStallCycles = 0;         ///< fetch stalled on a BTB bubble

    // Bottleneck accounting (one count per stalled cycle/uop).
    Count fetchStallPipeFull = 0;
    Count dispatchStallRob = 0;
    Count dispatchStallWindow = 0;
    Count dispatchStallBuffers = 0;
    Count dispatchStallEmpty = 0;   ///< fetch pipe had nothing ready
    Cycle issueWaitSum = 0;         ///< sum of (issueAt - dispatch)
    Cycle loadLatencySum = 0;
    Count loadCount = 0;

    /** (original mispredicted?, estimated low confidence?) tallies. */
    ConfidenceMatrix confidence;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(retiredUops) /
                                 static_cast<double>(cycles);
    }

    /** Paper Table 2: branch mispredicts per 1000 retired uops. */
    double
    mispredictsPerKuop() const
    {
        return retiredUops == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(mispredictsFinal) /
                         static_cast<double>(retiredUops);
    }

    /** Paper Table 2: % increase in uops executed over useful work. */
    double
    executionIncreasePct() const
    {
        return retiredUops == 0
                   ? 0.0
                   : pct(static_cast<double>(executedUops) -
                             static_cast<double>(retiredUops),
                         static_cast<double>(retiredUops));
    }

    double
    mispredictRate() const
    {
        return retiredBranches == 0
                   ? 0.0
                   : static_cast<double>(mispredictsFinal) /
                         static_cast<double>(retiredBranches);
    }
};

} // namespace percon

#endif // PERCON_UARCH_CORE_STATS_HH
