/**
 * @file
 * The unified out-of-order pipeline engine.
 *
 * One cycle-stepped machine model parameterized over hardware thread
 * count and fetch-arbitration policy. The single-thread Core and the
 * two-thread SmtCore (core.hh, smt_core.hh) are thin configuration
 * shells over this class; every shared mechanism — the event-driven
 * cycle skipping, the generation-checked InflightWindow, the
 * calendar-wheel ExecModel release, audit hooks, and the
 * devirtualized SnapshotCursor::nextFast() fetch path — is
 * implemented exactly once here.
 *
 * Model summary (see core.hh's original description): a loop over
 * fetch, dispatch, branch resolution and retirement, with execution
 * times computed analytically by the ExecModel. The model executes
 * the full wrong path: after a (post-reversal) mispredicted branch
 * is fetched, the front end streams uops from that thread's
 * WrongPathSynthesizer; they occupy real resources, execute,
 * pollute/prefetch the caches, and die when the branch resolves.
 *
 * Pipeline gating (Figure 1): every fetched conditional branch is
 * classified by the confidence estimator; low-confidence branches
 * increment a per-thread counter (optionally confidenceLatency
 * cycles after fetch, §5.4.2) and decrement it when they resolve or
 * are flushed. A thread's fetch stalls while its counter is at or
 * above the gate threshold. Branch reversal (§5.5) inverts
 * StrongLow-band predictions at fetch.
 *
 * Threading model:
 *  - each hardware thread owns its front-end state (speculative
 *    history, fetch pipe + ROB window, wrong-path synthesizer,
 *    gating counter, stall deadlines, dependence rings) and its own
 *    CoreStats — every counter updates identically regardless of
 *    thread count;
 *  - the branch predictor, confidence estimator, trace cache, BTB,
 *    caches and execution bandwidth are shared;
 *  - with more than one thread the ROB and load/store buffers are
 *    either static per-thread partitions (Pentium-4 HT style, the
 *    default) or a shared pool (Tullsen style); dispatch bandwidth
 *    is split evenly;
 *  - fetch arbitration is pluggable: strict round-robin, or
 *    ICOUNT-lite (the eligible thread with the fewest in-flight
 *    uops wins the cycle).
 *
 * Simulator throughput: with a single thread run() is event-driven —
 * after each simulated cycle the engine computes the earliest cycle
 * at which any stage could make progress or any timed event fires,
 * and fast-forwards over the idle gap in O(1) while replaying the
 * per-cycle stall accounting in bulk. The reported CoreStats are
 * bit-identical to the cycle-stepped run — see
 * tests/uarch/core_golden_stats_test.cc. Multi-thread runs are
 * always cycle-stepped (bulk-replaying fetch arbitration side
 * effects is exactly the kind of shortcut the golden locks exist to
 * prevent); tests/uarch/smt_core_golden_stats_test.cc pins that
 * path.
 */

#ifndef PERCON_UARCH_PIPELINE_ENGINE_HH
#define PERCON_UARCH_PIPELINE_ENGINE_HH

#include <array>
#include <queue>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "bpred/btb.hh"
#include "bpred/prediction_trace.hh"
#include "common/logging.hh"
#include "confidence/confidence_estimator.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "trace/uop.hh"
#include "trace/wrongpath.hh"
#include "uarch/audit_hook.hh"
#include "uarch/core_stats.hh"
#include "uarch/exec_model.hh"
#include "uarch/inflight_window.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

class SnapshotCursor;

/** One hardware thread's workload binding. */
struct ThreadBinding
{
    WorkloadSource *workload = nullptr;
    WrongPathSynthesizer *wrongPath = nullptr;
};

/** Fetch arbitration policy (irrelevant with one thread). */
enum class FetchPolicy
{
    /** Alternate threads cycle by cycle regardless of occupancy. */
    RoundRobin,
    /** Give the cycle to the eligible thread with the fewest
     *  in-flight uops (Tullsen's ICOUNT, simplified). ICOUNT already
     *  penalizes threads bloated with wrong-path work, which is why
     *  the SMT bench contrasts it with RoundRobin. */
    Icount,
};

/** A timed resolve / delayed-confidence event on an in-flight uop.
 *  Ordered by (when, tid, seq) so same-cycle events process in
 *  thread-then-fetch order; with one thread this degenerates to the
 *  original (when, seq) order. */
struct UopEvent
{
    Cycle when;
    unsigned tid;
    SeqNum seq;
    UopHandle h;
};

struct UopEventLater
{
    bool
    operator()(const UopEvent &a, const UopEvent &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.tid != b.tid)
            return a.tid > b.tid;
        return a.seq > b.seq;
    }
};

using UopEventQueue =
    std::priority_queue<UopEvent, std::vector<UopEvent>, UopEventLater>;

class PipelineEngine
{
  public:
    /**
     * @param config machine geometry (with more than one thread the
     *               ROB/buffers are partitioned or pooled)
     * @param threads per-thread workload bindings (not owned); the
     *                vector length fixes the hardware thread count
     * @param predictor shared branch predictor (not owned)
     * @param estimator shared confidence estimator; may be nullptr
     *                  when neither gating nor reversal is used
     * @param spec speculation-control policy (applies per thread)
     * @param fetch_policy fetch arbitration between threads
     * @param shared_structures ROB/load/store buffers as a shared
     *                          pool (Tullsen) instead of static
     *                          partitions (Pentium-4 HT)
     */
    PipelineEngine(const PipelineConfig &config,
                   std::vector<ThreadBinding> threads,
                   BranchPredictor &predictor,
                   ConfidenceEstimator *estimator,
                   const SpeculationControl &spec,
                   FetchPolicy fetch_policy = FetchPolicy::Icount,
                   bool shared_structures = false);

    unsigned
    numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Advance until every thread retired @p per_thread more uops. */
    void run(Count per_thread);

    /** Run @p per_thread uops per thread and then clear the
     *  statistics (cache/predictor state is kept): the paper's
     *  10M-uop warmup. */
    void warmup(Count per_thread);

    /**
     * Functional-warm fast-forward: consume @p uops workload uops at
     * near-replay speed, updating only architectural predictor state
     * — branch predictor tables, global history, confidence
     * estimator weights and the BTB — with no inflight window, no
     * execution model and no timing events. CoreStats, the caches
     * and the cycle counter are untouched.
     *
     * Semantics: branches are predicted with the current tables
     * (filling PredMeta exactly as fetch would), the estimator is
     * consulted, the BTB is probed/filled for predicted-taken
     * branches, and predictor + estimator train immediately with the
     * architectural outcome — the retire-order training stream of a
     * detailed run, minus the fetch/retire overlap. The history
     * shifts in actual outcomes, which is exactly the history every
     * correct-path branch of a detailed run observes at predict
     * time. Speculation-control policy (gating, reversal, latency)
     * is deliberately NOT applied, so warmed state is shareable
     * across policy sweep points.
     *
     * Single-thread only; requires an empty pipeline (construction,
     * or after drain()).
     */
    void functionalWarm(Count uops);

    /**
     * Stop fetching and run the machine until the inflight window is
     * empty: every correct-path uop retires (training normally) and
     * wrong-path work dies with its branch. Cycles and retirements
     * accrue to CoreStats as usual. This is the boundary between a
     * detailed measurement window and the next functional warm.
     */
    void drain();

    /** Uops consumed by functionalWarm() on thread @p tid (incl.
     *  counts carried in by restoreFunctionalWarm). */
    Count
    functionallyWarmed(unsigned tid) const
    {
        return threads_[tid].functionallyWarmed;
    }

    /**
     * Adopt warmed front-end state restored from a checkpoint: set
     * the global history register and credit @p warmed_uops consumed
     * workload uops to thread @p tid (the workload cursor must have
     * been seek()ed to the matching position by the caller). The
     * predictor/estimator/BTB tables are restored through their own
     * loadState() interfaces.
     */
    void
    restoreFunctionalWarm(unsigned tid, std::uint64_t ghr,
                          Count warmed_uops)
    {
        threads_[tid].history.setBits(ghr);
        threads_[tid].functionallyWarmed += warmed_uops;
    }

    /** Global history bits of thread @p tid (checkpoint capture). */
    std::uint64_t
    historyBits(unsigned tid) const
    {
        return threads_[tid].history.bits();
    }

    /** The shared BTB (checkpoint capture/restore). */
    Btb &btbState() { return btb_; }

    /**
     * Enable/disable event-driven idle-cycle skipping (default on;
     * effective only with a single thread — multi-thread runs are
     * always cycle-stepped). Skipping never changes CoreStats — the
     * equivalence tests run both modes and require byte-identical
     * results — so this exists only for those tests and debugging.
     */
    void setCycleSkipping(bool enabled) { skipIdleCycles_ = enabled; }

    const CoreStats &
    stats(unsigned tid) const
    {
        return threads_[tid].stats;
    }

    void resetStats();

    MemoryHierarchy &memory() { return mem_; }

    /**
     * Attach a per-thread runtime auditor (see audit_hook.hh); null
     * detaches. Thread 0's auditor doubles as the ExecModel's
     * checked-error sink (the execution model is shared). Attaching
     * auditors never changes simulation results.
     */
    void
    setAuditor(unsigned tid, AuditHook *auditor)
    {
        threads_[tid].auditor = auditor;
        if (tid == 0)
            exec_.setAuditSink(auditor);
    }

    /**
     * Re-attach thread @p tid to a different workload source
     * mid-run (e.g. a rewound SnapshotCursor), re-running cursor
     * detection so replay sources keep the devirtualized nextFast()
     * fetch path instead of silently falling back to the virtual
     * one. Passing null for @p wrong_path keeps the current
     * synthesizer.
     */
    void rebindWorkload(unsigned tid, WorkloadSource &workload,
                        WrongPathSynthesizer *wrong_path = nullptr);

    /** True when thread @p tid fetches through the devirtualized
     *  SnapshotCursor replay path. */
    bool
    usesSnapshotReplay(unsigned tid) const
    {
        return threads_[tid].snapCursor != nullptr;
    }

    /**
     * Attach a prediction-stream recorder (null detaches). The run
     * stays fully live — the recorder only observes: every
     * predictor_.predict() outcome and BTB probe result is appended
     * to @p recorder in engine call order (correct path and wrong
     * path interleaved; an SMT engine's shared predictor serializes
     * all threads into one stream). Attaching a recorder never
     * changes simulation results. Mutually exclusive with replay.
     */
    void
    setPredictionRecorder(PredictionTraceBuilder *recorder)
    {
        PERCON_ASSERT(!recorder || !predReplay_,
                      "cannot record and replay predictions at once");
        predRecord_ = recorder;
    }

    /**
     * Attach a recorded prediction stream for replay (null
     * detaches); resets the replay cursors to the stream start. A
     * replaying engine substitutes the recorded direction bit for
     * predictor_.predict() at fetch, the recorded hit bit for the
     * BTB probe/fill, and skips predictor_.update() at retire — the
     * speculative history and the confidence estimator (the swept
     * component) stay fully live, which is what makes replay
     * bit-identical to the recording run. The stream must have been
     * recorded under the exact same run shape (see
     * core/prediction_key.hh); running past its end is a checked
     * panic, not silent misprediction.
     */
    void
    setPredictionReplay(std::shared_ptr<const PredictionTrace> trace)
    {
        PERCON_ASSERT(!trace || !predRecord_,
                      "cannot record and replay predictions at once");
        predReplay_ = std::move(trace);
        predPos_ = 0;
        btbPos_ = 0;
    }

    /** True when the engine substitutes recorded prediction bits for
     *  live predictor work. */
    bool usesPredictionReplay() const { return predReplay_ != nullptr; }

    /** True when ROB/load/store buffers are a shared pool
     *  (Tullsen-style SMT) rather than static per-thread partitions
     *  (Pentium-4 HT style). Shared pools let one thread's
     *  wrong-path work starve the other — which is exactly what
     *  pipeline gating prevents. */
    bool sharedStructures() const { return sharedStructures_; }

    /** Aggregate throughput: total retired uops / cycles. */
    double combinedIpc() const;

    Cycle cycles() const { return now_; }

    /**
     * Test-only fault injection: deliberately corrupt the bulk stall
     * replay of fastForward() (the dispatch-stall counters drop one
     * cycle per skip) to prove the differential harness catches a
     * broken event-skipping optimization. Never set outside tests.
     */
    void setTestFastForwardDefect(bool on) { testFfDefect_ = on; }

    /**
     * Test-only fault injection: functionalWarm() under-credits the
     * per-thread warmed-uop count by one, so the auditor's
     * replay-conservation law (which excludes functionally-warmed
     * uops from the fetched/consumed balance) must fire. Never set
     * outside tests.
     */
    void setTestWarmAccountingDefect(bool on) { testWarmDefect_ = on; }

  protected:
    struct ThreadContext
    {
        ThreadBinding binding;
        /** Non-null when binding.workload is a SnapshotCursor: fetch
         *  uses the devirtualized replay path. Maintained by bind()
         *  so re-attachment keeps the detection current. */
        SnapshotCursor *snapCursor = nullptr;
        SpecHistory history;
        /** Fetch pipe + per-thread ROB view (shared-pool and
         *  partition limits are enforced by dispatch()). */
        InflightWindow window;
        bool onWrongPath = false;
        unsigned gateCount = 0;
        unsigned loadsInFlight = 0;
        unsigned storesInFlight = 0;
        /** Fetch-stall deadlines by cause; fetch resumes at the max. */
        Cycle tcStallUntil = 0;
        Cycle btbStallUntil = 0;
        /** Producer completion times by stream index, per path. */
        std::uint64_t corrIdx = 0;
        std::uint64_t wpIdx = 0;
        static constexpr std::size_t kDepRing = 256;
        std::array<Cycle, kDepRing> corrReady{};
        std::array<Cycle, kDepRing> wpReady{};
        CoreStats stats;
        AuditHook *auditor = nullptr;

        /** Workload uops consumed by functionalWarm() (cumulative,
         *  like the cursor's consumed count — the auditor subtracts
         *  it from consumed when balancing against fetches). */
        Count functionallyWarmed = 0;

        /** Attach a workload binding, (re-)running SnapshotCursor
         *  detection. */
        void bind(const ThreadBinding &b);
    };

  private:
    void cycleOnce();
    void applyPendingConfidence();
    void resolveBranches();
    void retire(unsigned tid);
    void dispatch(unsigned tid);
    void fetch();
    bool fetchOne(unsigned tid);
    void flushAfter(unsigned tid, const InflightUop &branch);
    Cycle sourceReady(const ThreadContext &t,
                      const InflightUop &uop) const;

    // The architectural predict / probe-BTB / train cycle, written
    // exactly once. The timed fetch path (fetchOne) and the
    // functional-warm fast-forward both go through these helpers, so
    // the two paths can no longer drift and the prediction-stream
    // record/replay tier has a single interposition point.

    /** Predict a branch: recorded replay bit, or live
     *  predictor_.predict() (observed by the recorder when one is
     *  attached). */
    bool
    archPredict(Addr pc, std::uint64_t ghr, PredMeta &meta)
    {
        if (predReplay_) {
            PERCON_ASSERT(predPos_ < predReplay_->numPredCalls(),
                          "prediction replay overrun at call %llu "
                          "(stream recorded under a different run "
                          "shape?)",
                          static_cast<unsigned long long>(predPos_));
            return predReplay_->predTaken(predPos_++);
        }
        bool taken = predictor_.predict(pc, ghr, meta);
        if (predRecord_)
            predRecord_->recordPred(taken);
        return taken;
    }

    /** Probe the BTB for a predicted-taken branch, filling the entry
     *  on a miss; @return the hit/miss outcome (replayed from the
     *  recorded stream when one is attached). */
    bool
    archBtbProbeFill(Addr pc, Addr target)
    {
        if (predReplay_) {
            PERCON_ASSERT(btbPos_ < predReplay_->numBtbProbes(),
                          "BTB replay overrun at probe %llu",
                          static_cast<unsigned long long>(btbPos_));
            return predReplay_->btbHit(btbPos_++);
        }
        bool hit = btb_.lookup(pc).has_value();
        if (!hit)
            btb_.update(pc, target);
        if (predRecord_)
            predRecord_->recordBtb(hit);
        return hit;
    }

    /** Train the predictor with the architectural outcome; a no-op
     *  under replay (the recorded stream already reflects every
     *  training update the live run made). */
    void
    archTrain(Addr pc, std::uint64_t ghr, bool taken,
              const PredMeta &meta)
    {
        if (!predReplay_)
            predictor_.update(pc, ghr, taken, meta);
    }

    /** Fetch-eligibility check with Core's attribution order
     *  (pipe-full, then stall deadlines with trace-cache priority,
     *  then gating): returns the thread's effective fetch width for
     *  this cycle, 0 when ineligible. */
    unsigned eligibleFetchWidth(unsigned tid);

    /** Earliest cycle > now_ at which any stage can make progress or
     *  any timed event fires; kNoEvent when the machine is dead.
     *  Single-thread only. */
    Cycle nextEventCycle() const;

    /** Advance @p skipped guaranteed-idle cycles at once, replaying
     *  their per-cycle stall accounting in bulk. Single-thread
     *  only. */
    void fastForward(Cycle skipped);

    AuditContext auditContext(unsigned tid) const;

    static constexpr Cycle kNoEvent = ~Cycle(0);

    // configuration ------------------------------------------------
    PipelineConfig config_;
    SpeculationControl spec_;
    BranchPredictor &predictor_;
    ConfidenceEstimator *estimator_;

    // machine state ------------------------------------------------
    MemoryHierarchy mem_;
    ExecModel exec_;
    Cache traceCache_;
    Btb btb_;

    std::vector<ThreadContext> threads_;

    /** Unresolved in-flight branches, keyed by resolution cycle. */
    UopEventQueue resolveQueue_;

    /** Delayed low-confidence marks, keyed by apply cycle. */
    UopEventQueue confQueue_;

    Cycle now_ = 0;
    SeqNum nextSeq_ = 1;
    FetchPolicy fetchPolicy_;
    bool sharedStructures_;
    unsigned rrNext_ = 0;
    unsigned robLimitPerThread_;
    unsigned loadBufLimitPerThread_;
    unsigned storeBufLimitPerThread_;
    unsigned dispatchBudget_;
    // prediction-stream snapshot tier --------------------------------
    /** Observer appending the live prediction stream; never alters
     *  the run. Null when not recording. */
    PredictionTraceBuilder *predRecord_ = nullptr;
    /** Recorded stream substituted for live predictor/BTB work; null
     *  when running live. */
    std::shared_ptr<const PredictionTrace> predReplay_;
    /** Replay cursors (predict calls and BTB probes advance on
     *  separate ordinals). */
    Count predPos_ = 0;
    Count btbPos_ = 0;

    bool skipIdleCycles_ = true;
    /** False only inside drain(): cycleOnce() skips fetch. */
    bool fetchEnabled_ = true;
    bool testFfDefect_ = false;
    bool testWarmDefect_ = false;
};

} // namespace percon

#endif // PERCON_UARCH_PIPELINE_ENGINE_HH
