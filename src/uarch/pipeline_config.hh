/**
 * @file
 * Pipeline configuration and the paper's three machine presets.
 *
 * "Pipeline depth" is the fetch-to-execute distance: the number of
 * cycles a uop spends in the in-order front end before it can be
 * scheduled, which is also the minimum branch misprediction penalty.
 * The paper's machines: 20-cycle 4-wide, 20-cycle 8-wide and the
 * baseline aggressive 40-cycle 4-wide (Table 1).
 */

#ifndef PERCON_UARCH_PIPELINE_CONFIG_HH
#define PERCON_UARCH_PIPELINE_CONFIG_HH

#include "common/types.hh"
#include "memory/hierarchy.hh"

namespace percon {

/** Machine geometry (paper Table 1). */
struct PipelineConfig
{
    unsigned width = 4;            ///< fetch/issue/retire width

    /** Fetch-to-dispatch stages of the in-order front end. */
    unsigned frontEndDepth = 15;

    /** Schedule-to-execute stages: a branch's resolution (and any
     *  uop's architectural completion) lags its issue by this many
     *  cycles. frontEndDepth + backEndDepth is the paper's
     *  "pipeline length" — the minimum misprediction penalty. The
     *  back-end share is what makes deeper pipes waste more: every
     *  wrong-path uop issued while a mispredicted branch traverses
     *  these stages still executes. */
    unsigned backEndDepth = 25;

    unsigned robSize = 128;
    unsigned loadBuffers = 48;
    unsigned storeBuffers = 32;

    unsigned schedInt = 48;        ///< int scheduling window entries
    unsigned schedMem = 24;
    unsigned schedFp = 56;

    unsigned unitsInt = 3;         ///< execution units per class
    unsigned unitsMem = 2;
    unsigned unitsFp = 1;

    /** Trace cache (Table 1: 12K uops, 8-way). Modelled as an
     *  instruction cache over fetch PCs: a miss stalls fetch for
     *  traceCacheMissPenalty cycles while the line is built. */
    /** Branch target buffer: predicted-taken branches that miss it
     *  stall fetch while decode produces the target. */
    bool btbEnabled = true;
    std::size_t btbEntries = 4096;
    unsigned btbWays = 4;
    Cycle btbMissPenalty = 3;

    bool traceCacheEnabled = true;
    CacheParams traceCache{"tc", 48 * 1024, 12, 64};  // 12K uops x 4B
    Cycle traceCacheMissPenalty = 8;

    Cycle intAluLatency = 1;
    Cycle intMulLatency = 8;
    Cycle fpAluLatency = 4;
    Cycle branchLatency = 1;

    HierarchyParams mem;

    /** Total pipeline length (minimum misprediction penalty). */
    unsigned pipelineLength() const { return frontEndDepth + backEndDepth; }

    /** Paper baseline: aggressive deep pipeline, 40-cycle 4-wide. */
    static PipelineConfig
    deep40x4()
    {
        PipelineConfig c;
        c.width = 4;
        c.frontEndDepth = 15;
        c.backEndDepth = 25;
        return c;
    }

    /** 20-cycle 4-wide machine (Table 2 column 1). */
    static PipelineConfig
    base20x4()
    {
        PipelineConfig c;
        c.width = 4;
        c.frontEndDepth = 10;
        c.backEndDepth = 10;
        return c;
    }

    /** Futuristic wide machine: 20-cycle 8-wide (§5.5, Figure 9). */
    static PipelineConfig
    wide20x8()
    {
        PipelineConfig c;
        c.width = 8;
        c.frontEndDepth = 10;
        c.backEndDepth = 10;
        // Table 1 window/buffer resources are kept; only the fetch
        // width and execution bandwidth scale, as the paper names
        // the machine purely "8-wide 20-cycle".
        c.unitsInt = 6;
        c.unitsMem = 4;
        c.unitsFp = 2;
        return c;
    }
};

/**
 * Speculation-control policy: pipeline gating (Figure 1) and branch
 * reversal (§5.5) driven by the confidence estimator.
 */
struct SpeculationControl
{
    /** Stall fetch while the count of unresolved low-confidence
     *  branches is at or above this threshold; 0 disables gating. */
    unsigned gateThreshold = 0;

    /** Reverse predictions of StrongLow-band branches. */
    bool reversalEnabled = false;

    /** Cycles after fetch before a low-confidence mark can gate
     *  (the perceptron adder-tree latency of §5.4.2). Reversal is
     *  not delayed: the paper evaluates latency for gating only, and
     *  a real design would bypass the strong-low comparison early or
     *  re-steer at decode. */
    unsigned confidenceLatency = 0;

    /** Perfect-confidence bound: gate on exactly the branches whose
     *  (post-reversal) prediction is wrong, ignoring the estimator.
     *  Gives the maximum uop reduction achievable by gating at zero
     *  false positives; used by the bounds ablation bench. */
    bool oracleGating = false;

    /** Fetch throttling (Manne et al.'s low-power alternative to a
     *  full stall): when the gate trips, fetch continues at this
     *  width instead of stopping. 0 = full stall (the paper's
     *  mechanism). */
    unsigned throttleWidth = 0;
};

} // namespace percon

#endif // PERCON_UARCH_PIPELINE_CONFIG_HH
