/**
 * @file
 * Execution-resource model: per-class scheduling windows, limited
 * issue bandwidth, and latency computation.
 *
 * Instead of cycle-stepping wakeup/select, the model computes each
 * uop's issue and completion time analytically at dispatch from
 * (a) operand readiness (producer completion times looked up by
 * dependency distance), (b) per-class issue bandwidth (the number of
 * execution units of that class that can start a uop each cycle),
 * and (c) its latency (memory latency comes from the cache
 * hierarchy, including bus contention). Units are pipelined: they
 * are issue bandwidth, not reservations, so a uop waiting on a
 * long-latency producer does not block its class.
 *
 * Scheduling-window occupancy is tracked exactly: a dispatched uop
 * holds a window entry until it issues, and dispatch stalls while
 * the window is full.
 */

#ifndef PERCON_UARCH_EXEC_MODEL_HH
#define PERCON_UARCH_EXEC_MODEL_HH

#include <queue>
#include <vector>

#include "common/logging.hh"
#include "memory/hierarchy.hh"
#include "uarch/inflight.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

class AuditHook;

/** Scheduler class: which window and unit pool a uop uses. */
enum class SchedClass : unsigned { Int = 0, Mem = 1, Fp = 2 };

inline SchedClass
schedClassFor(UopClass cls)
{
    switch (cls) {
      case UopClass::Load:
      case UopClass::Store:
        return SchedClass::Mem;
      case UopClass::FpAlu:
        return SchedClass::Fp;
      default:
        return SchedClass::Int;
    }
}

/**
 * Per-class issue-slot ledger: counts issues booked per future
 * cycle, so a uop issues at the first cycle at or after its ready
 * time with a free slot of its class.
 */
class IssueSlots
{
  public:
    explicit IssueSlots(unsigned units);

    /** Book the earliest free slot at or after @p ready. */
    Cycle book(Cycle ready);

  private:
    static constexpr std::size_t kHorizon = 16384;
    /** Cycle tag + booked count in one record, so the common case
     *  (first probe succeeds) touches a single cache line. */
    struct Slot
    {
        Cycle cycle;
        std::uint16_t count;
    };
    std::vector<Slot> slots_;
    unsigned units_;
};

class ExecModel
{
  public:
    ExecModel(const PipelineConfig &config, MemoryHierarchy &mem);

    /** Free scheduler entries whose uops have issued by @p now. */
    void
    tick(Cycle now)
    {
        // Walk the calendar wheel over the cycles since the last
        // tick. Each slot packs the per-class release counts for one
        // cycle, so the common case is one load per simulated cycle
        // instead of a heap pop per dispatched uop.
        while (ticked_ < now) {
            ++ticked_;
            std::uint64_t v = wheel_[ticked_ & (kWheelSlots - 1)];
            if (v) {
                wheel_[ticked_ & (kWheelSlots - 1)] = 0;
                std::uint64_t c0 = v & kLaneMask;
                std::uint64_t c1 = (v >> 21) & kLaneMask;
                std::uint64_t c2 = v >> 42;
                // Always-on checked error: underflow means the
                // release ledger and occupancy disagree, which
                // invalidates every dispatch-stall statistic after
                // it. The cold path reports through the audit sink
                // (and clamps) or panics when none is attached.
                if (occupancy_[0] < c0 || occupancy_[1] < c1 ||
                    occupancy_[2] < c2) {
                    releaseUnderflow(c0, c1, c2);
                } else {
                    occupancy_[0] -= static_cast<unsigned>(c0);
                    occupancy_[1] -= static_cast<unsigned>(c1);
                    occupancy_[2] -= static_cast<unsigned>(c2);
                }
                pendingWheel_ -=
                    static_cast<unsigned>(c0 + c1 + c2);
            }
        }
        while (!farReleases_.empty() &&
               (farReleases_.top() >> 2) <= now) {
            unsigned cls = farReleases_.top() & 3u;
            farReleases_.pop();
            if (occupancy_[cls] == 0) {
                releaseUnderflow(cls == 0, cls == 1, cls == 2);
                continue;
            }
            --occupancy_[cls];
        }
    }

    /**
     * Attach a checked-error sink (see audit_hook.hh). Null detaches;
     * with no sink, checked errors panic exactly as before.
     */
    void setAuditSink(AuditHook *sink) { auditSink_ = sink; }

    /** True if the window for @p cls has a free entry. */
    bool
    windowAvailable(SchedClass cls) const
    {
        unsigned c = static_cast<unsigned>(cls);
        return occupancy_[c] < capacity_[c];
    }

    /**
     * Cycle of the next window-entry release (any class), or
     * ~Cycle(0) when nothing is pending. Used by the core's
     * event-driven loop to know when a full window can clear.
     */
    Cycle
    nextWindowRelease() const
    {
        Cycle best = ~Cycle(0);
        if (pendingWheel_ > 0) {
            // All wheel entries lie within kWheelSlots of ticked_,
            // so this scan terminates; it only runs when a core is
            // stalled on a full window, which is rare.
            for (Cycle t = ticked_ + 1;; ++t) {
                if (wheel_[t & (kWheelSlots - 1)]) {
                    best = t;
                    break;
                }
            }
        }
        if (!farReleases_.empty() && (farReleases_.top() >> 2) < best)
            best = farReleases_.top() >> 2;
        return best;
    }

    /**
     * Dispatch @p uop at cycle @p now: computes issueAt/completeAt,
     * occupies a window entry and an issue slot.
     *
     * completeAt is the *wakeup* time (dependents may issue then,
     * modelling a bypass network); architectural completion — branch
     * resolution, retirement eligibility — additionally waits the
     * machine's backEndDepth (see pipeline_config.hh).
     *
     * @param src_ready max completion cycle of the producers
     */
    void dispatch(InflightUop &uop, Cycle now, Cycle src_ready);

    /** Execution latency for a uop issuing at @p issue_at. */
    Cycle latencyFor(const InflightUop &uop, Cycle issue_at);

  private:
    /** Cold path for a window-occupancy underflow during release
     *  processing: report-and-clamp via the audit sink, or panic. */
    void releaseUnderflow(std::uint64_t c0, std::uint64_t c1,
                          std::uint64_t c2);

    const PipelineConfig &config_;
    MemoryHierarchy &mem_;

    AuditHook *auditSink_ = nullptr;

    std::vector<IssueSlots> slots_;  ///< one per SchedClass

    /** Current window occupancy per class. */
    unsigned occupancy_[3] = {0, 0, 0};
    unsigned capacity_[3];

    /**
     * Window-entry release ledger. tick() only needs "how many
     * entries of each class free at cycle t", never a sorted order,
     * so releases live in a calendar wheel indexed by issue cycle:
     * each slot packs three 21-bit per-class counts (far above any
     * scheduler capacity) into one word. Releases booked beyond the
     * wheel's reach — pathological dependence chains only — spill to
     * a small heap of (issueAt << 2) | class words.
     */
    static constexpr std::size_t kWheelSlots = 16384;
    static constexpr std::uint64_t kLaneMask = (1ULL << 21) - 1;

    std::vector<std::uint64_t> wheel_ =
        std::vector<std::uint64_t>(kWheelSlots, 0);
    Cycle ticked_ = 0;        ///< all cycles <= this are processed
    unsigned pendingWheel_ = 0;  ///< total entries in the wheel

    using Release = std::uint64_t;
    std::priority_queue<Release, std::vector<Release>,
                        std::greater<Release>>
        farReleases_;
};

} // namespace percon

#endif // PERCON_UARCH_EXEC_MODEL_HH
