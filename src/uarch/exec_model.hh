/**
 * @file
 * Execution-resource model: per-class scheduling windows, limited
 * issue bandwidth, and latency computation.
 *
 * Instead of cycle-stepping wakeup/select, the model computes each
 * uop's issue and completion time analytically at dispatch from
 * (a) operand readiness (producer completion times looked up by
 * dependency distance), (b) per-class issue bandwidth (the number of
 * execution units of that class that can start a uop each cycle),
 * and (c) its latency (memory latency comes from the cache
 * hierarchy, including bus contention). Units are pipelined: they
 * are issue bandwidth, not reservations, so a uop waiting on a
 * long-latency producer does not block its class.
 *
 * Scheduling-window occupancy is tracked exactly: a dispatched uop
 * holds a window entry until it issues, and dispatch stalls while
 * the window is full.
 */

#ifndef PERCON_UARCH_EXEC_MODEL_HH
#define PERCON_UARCH_EXEC_MODEL_HH

#include <queue>
#include <vector>

#include "memory/hierarchy.hh"
#include "uarch/inflight.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

/** Scheduler class: which window and unit pool a uop uses. */
enum class SchedClass : unsigned { Int = 0, Mem = 1, Fp = 2 };

SchedClass schedClassFor(UopClass cls);

/**
 * Per-class issue-slot ledger: counts issues booked per future
 * cycle, so a uop issues at the first cycle at or after its ready
 * time with a free slot of its class.
 */
class IssueSlots
{
  public:
    explicit IssueSlots(unsigned units);

    /** Book the earliest free slot at or after @p ready. */
    Cycle book(Cycle ready);

  private:
    static constexpr std::size_t kHorizon = 16384;
    std::vector<Cycle> slotCycle_;
    std::vector<std::uint16_t> slotCount_;
    unsigned units_;
};

class ExecModel
{
  public:
    ExecModel(const PipelineConfig &config, MemoryHierarchy &mem);

    /** Free scheduler entries whose uops have issued by @p now. */
    void tick(Cycle now);

    /** True if the window for @p cls has a free entry. */
    bool windowAvailable(SchedClass cls) const;

    /**
     * Dispatch @p uop at cycle @p now: computes issueAt/completeAt,
     * occupies a window entry and an issue slot.
     *
     * completeAt is the *wakeup* time (dependents may issue then,
     * modelling a bypass network); architectural completion — branch
     * resolution, retirement eligibility — additionally waits the
     * machine's backEndDepth (see pipeline_config.hh).
     *
     * @param src_ready max completion cycle of the producers
     */
    void dispatch(InflightUop &uop, Cycle now, Cycle src_ready);

    /** Execution latency for a uop issuing at @p issue_at. */
    Cycle latencyFor(const InflightUop &uop, Cycle issue_at);

  private:
    const PipelineConfig &config_;
    MemoryHierarchy &mem_;

    std::vector<IssueSlots> slots_;  ///< one per SchedClass

    /** Current window occupancy per class. */
    unsigned occupancy_[3] = {0, 0, 0};
    unsigned capacity_[3];

    /** (issueAt, class) release queue for window entries. */
    using Release = std::pair<Cycle, unsigned>;
    std::priority_queue<Release, std::vector<Release>,
                        std::greater<Release>>
        releases_;
};

} // namespace percon

#endif // PERCON_UARCH_EXEC_MODEL_HH
