#include "pipeline_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/trace_snapshot.hh"

namespace percon {

void
PipelineEngine::ThreadContext::bind(const ThreadBinding &b)
{
    PERCON_ASSERT(b.workload != nullptr && b.wrongPath != nullptr,
                  "thread is missing a workload binding");
    binding = b;
    snapCursor = dynamic_cast<SnapshotCursor *>(b.workload);
}

PipelineEngine::PipelineEngine(const PipelineConfig &config,
                               std::vector<ThreadBinding> threads,
                               BranchPredictor &predictor,
                               ConfidenceEstimator *estimator,
                               const SpeculationControl &spec,
                               FetchPolicy fetch_policy,
                               bool shared_structures)
    : config_(config), spec_(spec), predictor_(predictor),
      estimator_(estimator), mem_(config.mem), exec_(config_, mem_),
      traceCache_(config.traceCache),
      btb_(config.btbEntries, config.btbWays),
      fetchPolicy_(fetch_policy), sharedStructures_(shared_structures)
{
    if ((spec_.gateThreshold > 0 && !spec_.oracleGating) ||
        spec_.reversalEnabled) {
        PERCON_ASSERT(estimator_ != nullptr,
                      "gating/reversal require a confidence estimator");
    }
    PERCON_ASSERT(!threads.empty(), "engine needs at least one thread");

    unsigned nt = static_cast<unsigned>(threads.size());
    // A single thread owns the full machine (the classic Core);
    // multiple threads get an even split with the same floors the
    // SMT model always used.
    robLimitPerThread_ =
        nt == 1 ? config.robSize : std::max(8u, config.robSize / nt);
    loadBufLimitPerThread_ =
        nt == 1 ? config.loadBuffers
                : std::max(4u, config.loadBuffers / nt);
    storeBufLimitPerThread_ =
        nt == 1 ? config.storeBuffers
                : std::max(4u, config.storeBuffers / nt);
    dispatchBudget_ = std::max(1u, config.width / nt);

    // Each thread's window is sized for the worst case (the whole
    // ROB in shared-pool mode); dispatch() enforces the actual
    // shared/partitioned occupancy limits.
    std::size_t rob_cap =
        std::max<std::size_t>(config.robSize, robLimitPerThread_);
    std::size_t pipe_cap =
        static_cast<std::size_t>(config.frontEndDepth) * config.width;
    threads_.resize(nt);
    for (unsigned t = 0; t < nt; ++t) {
        threads_[t].bind(threads[t]);
        threads_[t].window.reset(rob_cap, pipe_cap);
    }
}

void
PipelineEngine::rebindWorkload(unsigned tid, WorkloadSource &workload,
                               WrongPathSynthesizer *wrong_path)
{
    ThreadContext &t = threads_[tid];
    ThreadBinding b = t.binding;
    b.workload = &workload;
    if (wrong_path)
        b.wrongPath = wrong_path;
    t.bind(b);
}

AuditContext
PipelineEngine::auditContext(unsigned tid) const
{
    const ThreadContext &t = threads_[tid];
    AuditContext ctx{&t.stats,
                     &t.window,
                     t.gateCount,
                     now_,
                     spec_.gateThreshold,
                     estimator_ != nullptr};
    ctx.tcStallUntil = t.tcStallUntil;
    ctx.btbStallUntil = t.btbStallUntil;
    ctx.functionallyWarmed = t.functionallyWarmed;
    if (t.snapCursor) {
        ctx.workloadReplay = true;
        ctx.workloadConsumed = t.snapCursor->consumed();
    }
    return ctx;
}

void
PipelineEngine::resetStats()
{
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        threads_[tid].stats = CoreStats{};
        if (threads_[tid].auditor)
            threads_[tid].auditor->onStatsReset(auditContext(tid));
    }
}

void
PipelineEngine::applyPendingConfidence()
{
    while (!confQueue_.empty() && confQueue_.top().when <= now_) {
        UopEvent ev = confQueue_.top();
        confQueue_.pop();
        ThreadContext &t = threads_[ev.tid];
        InflightUop *u = t.window.lookup(ev.h);
        if (!u)
            continue;  // flushed before the estimate arrived
        PERCON_ASSERT(u->seq == ev.seq, "stale confidence handle");
        if (!u->lowConfPending || u->resolvedForGate)
            continue;  // resolved before the estimate arrived
        u->lowConfPending = false;
        u->lowConfCounted = true;
        ++t.gateCount;
    }
}

void
PipelineEngine::resolveBranches()
{
    while (!resolveQueue_.empty() && resolveQueue_.top().when <= now_) {
        UopEvent ev = resolveQueue_.top();
        resolveQueue_.pop();
        ThreadContext &t = threads_[ev.tid];
        InflightUop *u = t.window.lookup(ev.h);
        if (!u)
            continue;  // branch was flushed
        PERCON_ASSERT(u->seq == ev.seq, "stale resolve handle");
        PERCON_ASSERT(u->isBranch(), "non-branch in resolve queue");
        if (u->resolvedForGate)
            continue;
        u->resolvedForGate = true;
        if (u->lowConfCounted) {
            PERCON_ASSERT(t.gateCount > 0, "gate counter underflow");
            --t.gateCount;
            u->lowConfCounted = false;
        }
        u->lowConfPending = false;

        if (u->causesRedirect)
            flushAfter(ev.tid, *u);
    }
}

void
PipelineEngine::flushAfter(unsigned tid, const InflightUop &branch)
{
    ThreadContext &t = threads_[tid];
    ++t.stats.flushes;

    // Everything younger than the branch is wrong-path by
    // construction; account its execution and unwind resources.
    t.window.flushYoungerThan(branch.seq, [&](InflightUop &u) {
        if (u.dispatched) {
            PERCON_ASSERT(u.wrongPath, "flushing a correct-path uop");
            if (u.issueAt <= now_) {
                ++t.stats.executedUops;
                ++t.stats.wrongPathExecuted;
            }
            if (u.cls == UopClass::Load) {
                PERCON_ASSERT(t.loadsInFlight > 0,
                              "load buffer underflow");
                --t.loadsInFlight;
            } else if (u.cls == UopClass::Store) {
                PERCON_ASSERT(t.storesInFlight > 0,
                              "store buffer underflow");
                --t.storesInFlight;
            }
        }
        if (u.lowConfCounted) {
            PERCON_ASSERT(t.gateCount > 0, "gate counter underflow");
            --t.gateCount;
        }
        if (t.auditor)
            t.auditor->onSquash(u);
    });

    t.history.recover(branch.ghrSnapshot, branch.actualTaken);
    t.onWrongPath = false;
}

void
PipelineEngine::retire(unsigned tid)
{
    ThreadContext &t = threads_[tid];
    CoreStats &s = t.stats;
    // Retire bandwidth is per thread: each thread may commit up to
    // the machine width (commit is rarely the bottleneck, and the
    // single-thread machine retires at full width by definition).
    for (unsigned n = 0; n < config_.width; ++n) {
        if (t.window.robEmpty())
            return;
        InflightUop &u = t.window.robFront();
        if (!u.dispatched ||
            u.completeAt + config_.backEndDepth > now_)
            return;
        PERCON_ASSERT(!u.wrongPath,
                      "wrong-path uop reached the ROB head");

        ++s.retiredUops;
        ++s.executedUops;

        switch (u.cls) {
          case UopClass::Load:
            PERCON_ASSERT(t.loadsInFlight > 0, "load buffer underflow");
            --t.loadsInFlight;
            break;
          case UopClass::Store:
            PERCON_ASSERT(t.storesInFlight > 0,
                          "store buffer underflow");
            --t.storesInFlight;
            // The write accesses the hierarchy at commit.
            mem_.access(u.memAddr, now_, true);
            break;
          case UopClass::Branch: {
            ++s.retiredBranches;
            bool misp_orig = u.predTaken != u.actualTaken;
            bool misp_final = u.finalPred != u.actualTaken;
            if (misp_orig)
                ++s.mispredictsOriginal;
            if (misp_final)
                ++s.mispredictsFinal;
            if (u.reversed) {
                ++s.reversals;
                if (misp_orig)
                    ++s.reversalsGood;
                else
                    ++s.reversalsBad;
            }
            archTrain(u.pc, u.ghrSnapshot, u.actualTaken, u.meta);
            if (estimator_) {
                s.confidence.record(misp_orig, u.conf.low);
                estimator_->train(u.pc, u.ghrSnapshot, u.predTaken,
                                  misp_orig, u.conf);
            }
            break;
          }
          default:
            break;
        }
        if (t.auditor)
            t.auditor->onRetire(u);
        t.window.popRetired();
    }
}

Cycle
PipelineEngine::sourceReady(const ThreadContext &t,
                            const InflightUop &uop) const
{
    const auto &ring = uop.wrongPath ? t.wpReady : t.corrReady;
    Cycle ready = 0;
    for (unsigned s = 0; s < 2; ++s) {
        std::uint16_t d = uop.srcDist[s];
        if (d == 0 || d > uop.streamIdx || d >= ThreadContext::kDepRing)
            continue;
        Cycle r = ring[(uop.streamIdx - d) % ThreadContext::kDepRing];
        if (r > ready)
            ready = r;
    }
    return ready;
}

void
PipelineEngine::dispatch(unsigned tid)
{
    ThreadContext &t = threads_[tid];
    CoreStats &s = t.stats;
    for (unsigned n = 0; n < dispatchBudget_; ++n) {
        if (t.window.pipeEmpty() ||
            t.window.pipeFront().dispatchReadyAt > now_) {
            ++s.dispatchStallEmpty;
            return;
        }
        InflightUop &front = t.window.pipeFront();
        if (sharedStructures_) {
            std::size_t rob_total = 0;
            unsigned loads_total = 0;
            unsigned stores_total = 0;
            for (const ThreadContext &o : threads_) {
                rob_total += o.window.robSize();
                loads_total += o.loadsInFlight;
                stores_total += o.storesInFlight;
            }
            if (rob_total >= config_.robSize) {
                ++s.dispatchStallRob;
                return;
            }
            if (!exec_.windowAvailable(schedClassFor(front.cls))) {
                ++s.dispatchStallWindow;
                return;
            }
            if ((front.cls == UopClass::Load &&
                 loads_total >= config_.loadBuffers) ||
                (front.cls == UopClass::Store &&
                 stores_total >= config_.storeBuffers)) {
                ++s.dispatchStallBuffers;
                return;
            }
        } else {
            if (t.window.robSize() >= robLimitPerThread_) {
                ++s.dispatchStallRob;
                return;
            }
            if (!exec_.windowAvailable(schedClassFor(front.cls))) {
                ++s.dispatchStallWindow;
                return;
            }
            if ((front.cls == UopClass::Load &&
                 t.loadsInFlight >= loadBufLimitPerThread_) ||
                (front.cls == UopClass::Store &&
                 t.storesInFlight >= storeBufLimitPerThread_)) {
                ++s.dispatchStallBuffers;
                return;
            }
        }

        UopHandle h = t.window.pipeFrontHandle();
        InflightUop &u = t.window.dispatchPipeFront();

        exec_.dispatch(u, now_, sourceReady(t, u));
        s.issueWaitSum += u.issueAt - now_;
        if (u.cls == UopClass::Load) {
            s.loadLatencySum += u.completeAt - u.issueAt;
            ++s.loadCount;
        }

        auto &ring = u.wrongPath ? t.wpReady : t.corrReady;
        ring[u.streamIdx % ThreadContext::kDepRing] = u.completeAt;

        if (u.cls == UopClass::Load)
            ++t.loadsInFlight;
        else if (u.cls == UopClass::Store)
            ++t.storesInFlight;

        // Branch resolution lags execution by the back-end depth:
        // the redirect has to travel from the execute stage back to
        // fetch, which is the deep-pipe waste multiplier.
        if (u.isBranch() && !u.resolvedForGate)
            resolveQueue_.push({u.completeAt + config_.backEndDepth,
                                tid, u.seq, h});
    }
}

bool
PipelineEngine::fetchOne(unsigned tid)
{
    ThreadContext &t = threads_[tid];
    MicroOp mu;
    if (t.onWrongPath)
        mu = t.binding.wrongPath->next();
    else if (t.snapCursor)
        mu = t.snapCursor->nextFast();
    else
        mu = t.binding.workload->next();

    bool stall_after = false;
    if (config_.traceCacheEnabled && !traceCache_.access(mu.pc)) {
        // Build the missing line: fetch delivers this uop but stalls
        // while the fill completes. (Fetch only runs once both stall
        // deadlines have passed, so assignment is equivalent to max.)
        ++t.stats.traceCacheMisses;
        t.tcStallUntil = now_ + config_.traceCacheMissPenalty;
        stall_after = true;
    }

    auto [u, h] = t.window.emplaceFetched();
    u.seq = nextSeq_++;
    u.pc = mu.pc;
    u.cls = mu.cls;
    u.srcDist[0] = mu.srcDist[0];
    u.srcDist[1] = mu.srcDist[1];
    u.memAddr = mu.memAddr;
    u.wrongPath = t.onWrongPath;
    u.dispatchReadyAt = now_ + config_.frontEndDepth;
    u.streamIdx = t.onWrongPath ? t.wpIdx++ : t.corrIdx++;

    ++t.stats.fetchedUops;
    if (u.wrongPath)
        ++t.stats.wrongPathFetched;

    bool conf_pending = false;
    if (u.isBranch()) {
        u.ghrSnapshot = t.history.bits();
        u.predTaken = archPredict(u.pc, u.ghrSnapshot, u.meta);
        if (estimator_)
            u.conf = estimator_->estimate(u.pc, u.ghrSnapshot,
                                          u.predTaken);

        u.finalPred = u.predTaken;
        if (spec_.reversalEnabled &&
            u.conf.band == ConfidenceBand::StrongLow) {
            u.finalPred = !u.predTaken;
            u.reversed = true;
        }

        t.history.push(u.finalPred);

        // Redirecting fetch to the taken target needs the target:
        // a BTB miss costs a decode bubble and fills the entry.
        if (config_.btbEnabled && u.finalPred) {
            if (!archBtbProbeFill(u.pc, mu.target)) {
                ++t.stats.btbMisses;
                Cycle until = now_ + config_.btbMissPenalty;
                if (until > t.btbStallUntil)
                    t.btbStallUntil = until;
                stall_after = true;
            }
        }

        if (!u.wrongPath) {
            u.actualTaken = mu.taken;
            u.causesRedirect = u.finalPred != u.actualTaken;
            if (u.causesRedirect) {
                t.onWrongPath = true;
                t.wpIdx = 0;
                // The machine follows finalPred; the stream it
                // wrongly fetches starts at the not-actually-taken
                // target or fall-through.
                t.binding.wrongPath->redirect(u.finalPred ? mu.target
                                                          : mu.pc + 4);
            }
        } else {
            u.actualTaken = u.finalPred;
            u.causesRedirect = false;
        }

        bool gate_mark;
        if (spec_.oracleGating) {
            // Perfect confidence: flag exactly the redirect-causing
            // branches (wrong-path branches are unknowable and never
            // redirect, so they are never flagged).
            gate_mark = spec_.gateThreshold > 0 && u.causesRedirect;
        } else {
            gate_mark = estimator_ && spec_.gateThreshold > 0 &&
                        (spec_.reversalEnabled
                             ? u.conf.band == ConfidenceBand::WeakLow
                             : u.conf.low);
        }
        if (gate_mark) {
            if (spec_.confidenceLatency == 0) {
                u.lowConfCounted = true;
                ++t.gateCount;
            } else {
                u.lowConfPending = true;
                u.confAppliesAt = now_ + spec_.confidenceLatency;
                conf_pending = true;
            }
        }
    }

    if (conf_pending)
        confQueue_.push({u.confAppliesAt, tid, u.seq, h});
    if (t.auditor)
        t.auditor->onFetch(u);
    return !stall_after;
}

unsigned
PipelineEngine::eligibleFetchWidth(unsigned tid)
{
    ThreadContext &t = threads_[tid];
    CoreStats &s = t.stats;

    if (t.window.pipeFull()) {
        ++s.fetchStallPipeFull;
        return 0;
    }

    Cycle stall_until = std::max(t.tcStallUntil, t.btbStallUntil);
    if (now_ < stall_until) {
        // Attribute the stalled cycle to its cause; when a
        // trace-cache fill and a BTB bubble overlap, the trace cache
        // (the longer deadline still pending) takes priority.
        if (now_ < t.tcStallUntil)
            ++s.traceCacheStallCycles;
        else
            ++s.btbStallCycles;
        return 0;
    }

    unsigned width = config_.width;
    if (spec_.gateThreshold > 0 && t.gateCount >= spec_.gateThreshold) {
        ++s.gatedCycles;
        if (spec_.throttleWidth == 0)
            return 0;
        width = std::min(width, spec_.throttleWidth);
    }
    return width;
}

void
PipelineEngine::fetch()
{
    int pick = -1;
    unsigned width = 0;
    if (fetchPolicy_ == FetchPolicy::RoundRobin) {
        // Threads after the first eligible one are not examined, so
        // their stall causes are not charged this cycle — the slot
        // was never theirs to lose.
        unsigned nt = numThreads();
        for (unsigned k = 0; k < nt; ++k) {
            unsigned tid = rrNext_ + k;
            if (tid >= nt)
                tid -= nt;
            if (unsigned w = eligibleFetchWidth(tid)) {
                pick = static_cast<int>(tid);
                width = w;
                rrNext_ = tid + 1 == nt ? 0 : tid + 1;
                break;
            }
        }
    } else {
        // ICOUNT-lite: give the fetch width to the eligible thread
        // with the fewest in-flight uops (ties go to the lower tid).
        std::size_t best_load = ~std::size_t{0};
        for (unsigned tid = 0; tid < numThreads(); ++tid) {
            unsigned w = eligibleFetchWidth(tid);
            if (!w)
                continue;
            std::size_t load = threads_[tid].window.size();
            if (load < best_load) {
                best_load = load;
                pick = static_cast<int>(tid);
                width = w;
            }
        }
    }
    if (pick < 0)
        return;

    ThreadContext &t = threads_[static_cast<unsigned>(pick)];
    for (unsigned n = 0; n < width && !t.window.pipeFull(); ++n) {
        if (!fetchOne(static_cast<unsigned>(pick)))
            break;
    }
}

void
PipelineEngine::cycleOnce()
{
    ++now_;
    for (ThreadContext &t : threads_)
        ++t.stats.cycles;
    exec_.tick(now_);
    applyPendingConfidence();
    resolveBranches();
    for (unsigned tid = 0; tid < numThreads(); ++tid)
        retire(tid);
    for (unsigned tid = 0; tid < numThreads(); ++tid)
        dispatch(tid);
    if (fetchEnabled_)
        fetch();
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        if (threads_[tid].auditor)
            threads_[tid].auditor->onCheck(auditContext(tid));
    }
}

Cycle
PipelineEngine::nextEventCycle() const
{
    const ThreadContext &t = threads_[0];
    Cycle stall_until = std::max(t.tcStallUntil, t.btbStallUntil);
    bool pipe_full = t.window.pipeFull();
    bool gated_stall = spec_.gateThreshold > 0 &&
                       t.gateCount >= spec_.gateThreshold &&
                       spec_.throttleWidth == 0;

    // Fast path: fetch can deliver uops next cycle, so there is
    // nothing to skip. This is the common case in busy phases.
    if (!pipe_full && now_ + 1 >= stall_until && !gated_stall)
        return now_ + 1;

    Cycle next = kNoEvent;
    auto consider = [&](Cycle c) {
        c = std::max(c, now_ + 1);
        if (c < next)
            next = c;
    };

    // Timed queue events must land exactly: they mutate uop state
    // (resolution, flushes, delayed gate marks).
    if (!resolveQueue_.empty())
        consider(resolveQueue_.top().when);
    if (!confQueue_.empty())
        consider(confQueue_.top().when);

    // Retire eligibility of the ROB head.
    if (!t.window.robEmpty()) {
        const InflightUop &head = t.window.robFront();
        if (head.dispatched)
            consider(head.completeAt + config_.backEndDepth);
    }

    // Dispatch progress. ROB and load/store-buffer pressure can only
    // clear at a retire or flush, which the candidates above already
    // cover; a full scheduler window clears at the next entry
    // release, and an idle front end at the head's ready cycle.
    if (!t.window.pipeEmpty()) {
        const InflightUop &front = t.window.pipeFront();
        bool rob_full = t.window.robSize() >= robLimitPerThread_;
        bool buffers_full =
            (front.cls == UopClass::Load &&
             t.loadsInFlight >= loadBufLimitPerThread_) ||
            (front.cls == UopClass::Store &&
             t.storesInFlight >= storeBufLimitPerThread_);
        if (!rob_full) {
            if (!exec_.windowAvailable(schedClassFor(front.cls)))
                consider(exec_.nextWindowRelease());
            else if (!buffers_full)
                consider(front.dispatchReadyAt);
        }
    }

    // Fetch-stall expiry (a full pipe or a gated front end clears
    // only at the events already considered above).
    if (!pipe_full && now_ + 1 < stall_until)
        consider(stall_until);

    return next;
}

void
PipelineEngine::fastForward(Cycle skipped)
{
    ThreadContext &t = threads_[0];
    CoreStats &s = t.stats;
    Cycle begin = now_ + 1;  // first skipped cycle

    // Deliberate off-by-one in the bulk stall replay, enabled only by
    // the differential harness's negative test: one skipped cycle
    // loses its dispatch-stall attribution, exactly the class of bug
    // an event-skipping refactor could introduce silently.
    Cycle replay_skipped = testFfDefect_ && skipped > 0
                               ? skipped - 1
                               : skipped;

    // Every skipped cycle would have run the no-progress paths of
    // dispatch() and fetch(); replay their per-cycle stall
    // accounting in bulk so CoreStats stay bit-identical to the
    // cycle-stepped run. All machine state is constant over the
    // span by construction, so only the time comparisons vary.
    if (t.window.pipeEmpty()) {
        s.dispatchStallEmpty += replay_skipped;
    } else {
        const InflightUop &front = t.window.pipeFront();
        Cycle not_ready =
            front.dispatchReadyAt > begin
                ? std::min<Cycle>(replay_skipped,
                                  front.dispatchReadyAt - begin)
                : 0;
        s.dispatchStallEmpty += not_ready;
        Cycle blocked = replay_skipped - not_ready;
        if (blocked > 0) {
            if (t.window.robSize() >= robLimitPerThread_)
                s.dispatchStallRob += blocked;
            else if (!exec_.windowAvailable(
                         schedClassFor(front.cls)))
                s.dispatchStallWindow += blocked;
            else
                s.dispatchStallBuffers += blocked;
        }
    }

    if (t.window.pipeFull()) {
        s.fetchStallPipeFull += skipped;
    } else if (begin < std::max(t.tcStallUntil, t.btbStallUntil)) {
        Cycle tc = t.tcStallUntil > begin
                       ? std::min<Cycle>(skipped,
                                         t.tcStallUntil - begin)
                       : 0;
        s.traceCacheStallCycles += tc;
        s.btbStallCycles += skipped - tc;
    } else {
        PERCON_ASSERT(spec_.gateThreshold > 0 &&
                          t.gateCount >= spec_.gateThreshold &&
                          spec_.throttleWidth == 0,
                      "fast-forward with an unblocked front end");
        s.gatedCycles += skipped;
    }

    now_ += skipped;
    s.cycles += skipped;
}

void
PipelineEngine::run(Count per_thread)
{
    unsigned nt = numThreads();
    std::vector<Count> goal(nt);
    Count total = 0;
    for (unsigned tid = 0; tid < nt; ++tid) {
        goal[tid] = threads_[tid].stats.retiredUops + per_thread;
        total += threads_[tid].stats.retiredUops;
    }

    // Event skipping is single-thread only: a multi-thread skip
    // would have to bulk-replay fetch-arbitration side effects,
    // which is exactly the shortcut the golden locks forbid.
    bool skip = skipIdleCycles_ && nt == 1;

    Count last_total = total;
    Count idle_iters = 0;
    for (;;) {
        bool done = true;
        for (unsigned tid = 0; tid < nt; ++tid)
            done = done && threads_[tid].stats.retiredUops >= goal[tid];
        if (done)
            break;
        cycleOnce();
        total = 0;
        for (unsigned tid = 0; tid < nt; ++tid)
            total += threads_[tid].stats.retiredUops;
        if (total != last_total) {
            last_total = total;
            idle_iters = 0;
        } else if (++idle_iters > 500000) {
            // Counts event-loop iterations (= active, non-skipped
            // cycles), not raw now_ delta: a legitimate fast-forward
            // through a long memory stall must not trip this.
            panic("core deadlock: no retirement in 500k active cycles "
                  "(threads=%u gate=%u rob=%zu pipe=%zu)",
                  nt, threads_[0].gateCount, threads_[0].window.robSize(),
                  threads_[0].window.pipeSize());
        }
        if (skip && threads_[0].stats.retiredUops < goal[0]) {
            Cycle next = nextEventCycle();
            if (next == kNoEvent) {
                panic("core deadlock: no schedulable event "
                      "(gate=%u rob=%zu pipe=%zu)",
                      threads_[0].gateCount,
                      threads_[0].window.robSize(),
                      threads_[0].window.pipeSize());
            }
            if (next > now_ + 1)
                fastForward(next - now_ - 1);
        }
    }
}

void
PipelineEngine::warmup(Count per_thread)
{
    run(per_thread);
    resetStats();
}

void
PipelineEngine::functionalWarm(Count uops)
{
    PERCON_ASSERT(numThreads() == 1,
                  "functional warm is single-thread only");
    ThreadContext &t = threads_[0];
    PERCON_ASSERT(t.window.size() == 0 && !t.onWrongPath,
                  "functional warm needs an empty pipeline "
                  "(drain() first)");

    // The architectural prediction/training cycle, compressed:
    // predict with the prediction-time history, probe/fill the BTB
    // for the predicted direction, train predictor and estimator
    // immediately with the actual outcome, shift the outcome into
    // the history. No reversal and no gating — policy must not leak
    // into state shared across policy points (see the header
    // comment).
    auto warm_branch = [&](Addr pc, bool taken, Addr target) {
        std::uint64_t ghr = t.history.bits();
        PredMeta meta;
        bool pred = archPredict(pc, ghr, meta);
        ConfidenceInfo conf;
        if (estimator_)
            conf = estimator_->estimate(pc, ghr, pred);

        if (config_.btbEnabled && pred)
            archBtbProbeFill(pc, target);

        bool misp = pred != taken;
        archTrain(pc, ghr, taken, meta);
        if (estimator_) {
            estimator_->train(pc, ghr, pred, misp, conf);
        }
        t.history.push(taken);
    };

    // Only branch uops carry architectural warm state, so a snapshot
    // cursor serves the covered extent branch-directed — O(branches)
    // instead of O(uops) — and only the rare live-generated tail
    // walks uop by uop.
    Count remaining = uops;
    if (t.snapCursor) {
        Count bulk = std::min(remaining,
                              t.snapCursor->snapshotRemaining());
        if (bulk > 0) {
            t.snapCursor->warmBranches(bulk, warm_branch);
            remaining -= bulk;
        }
    }
    for (Count n = 0; n < remaining; ++n) {
        MicroOp mu = t.snapCursor ? t.snapCursor->nextFast()
                                  : t.binding.workload->next();
        if (mu.cls != UopClass::Branch)
            continue;
        warm_branch(mu.pc, mu.taken, mu.target);
    }

    Count credited = uops;
    if (testWarmDefect_ && uops > 0)
        --credited;  // see setTestWarmAccountingDefect()
    t.functionallyWarmed += credited;
}

void
PipelineEngine::drain()
{
    fetchEnabled_ = false;
    Count idle_iters = 0;
    std::size_t last_size = ~std::size_t{0};
    for (;;) {
        std::size_t inflight = 0;
        for (const ThreadContext &t : threads_)
            inflight += t.window.size();
        if (inflight == 0)
            break;
        if (inflight != last_size) {
            last_size = inflight;
            idle_iters = 0;
        } else if (++idle_iters > 500000) {
            panic("core deadlock: drain made no progress in 500k "
                  "cycles (inflight=%zu)",
                  inflight);
        }
        cycleOnce();
    }
    fetchEnabled_ = true;
}

double
PipelineEngine::combinedIpc() const
{
    // stats cycles reset at warmup; now_ does not.
    if (threads_[0].stats.cycles == 0)
        return 0.0;
    double retired = 0;
    for (const ThreadContext &t : threads_)
        retired += static_cast<double>(t.stats.retiredUops);
    return retired / static_cast<double>(threads_[0].stats.cycles);
}

} // namespace percon
