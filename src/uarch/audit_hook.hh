/**
 * @file
 * Observer interface for runtime core auditing.
 *
 * The cores (Core, SmtCore) and the ExecModel accept an optional
 * AuditHook and report lifecycle events through it: every fetched,
 * retired and squashed uop, an end-of-cycle consistency checkpoint,
 * statistics resets, and checked-error conditions that would
 * otherwise panic. The hook is a pure observer — attaching one never
 * changes simulation results — and the pointer defaults to null, so
 * release runs pay a single predictable branch per call site.
 *
 * The concrete auditor (verify/invariant_auditor.hh) lives a layer
 * above; this header keeps the uarch layer free of any dependency on
 * the verification subsystem.
 */

#ifndef PERCON_UARCH_AUDIT_HOOK_HH
#define PERCON_UARCH_AUDIT_HOOK_HH

#include "uarch/core_stats.hh"
#include "uarch/inflight_window.hh"

namespace percon {

/** Machine snapshot handed to AuditHook::onCheck / onStatsReset. */
struct AuditContext
{
    const CoreStats *stats = nullptr;
    const InflightWindow *window = nullptr;
    unsigned gateCount = 0;
    Cycle now = 0;
    unsigned gateThreshold = 0;
    bool hasEstimator = false;

    /** This thread's fetch-stall deadlines by cause (trace-cache
     *  fill, BTB bubble); fetch resumes at the max of the two. */
    Cycle tcStallUntil = 0;
    Cycle btbStallUntil = 0;

    /** True when the correct path replays from a trace snapshot
     *  (workload is a SnapshotCursor). */
    bool workloadReplay = false;

    /** Cursor-consumed uop count (snapshot + live tail) when
     *  workloadReplay is set; 0 otherwise. */
    Count workloadConsumed = 0;

    /** Workload uops consumed by functional warming rather than by
     *  fetch (cumulative, monotonic like workloadConsumed). The
     *  replay-conservation law excludes these from the fetched
     *  balance: consumed - functionallyWarmed == correct-path
     *  fetched. */
    Count functionallyWarmed = 0;
};

class AuditHook
{
  public:
    virtual ~AuditHook() = default;

    /** A uop was fetched (called after its record is complete). */
    virtual void onFetch(const InflightUop &u) = 0;

    /** A uop is about to retire from the ROB head. */
    virtual void onRetire(const InflightUop &u) = 0;

    /** A uop is being dropped by a pipeline flush. */
    virtual void onSquash(const InflightUop &u) = 0;

    /** End-of-cycle consistency checkpoint. */
    virtual void onCheck(const AuditContext &ctx) = 0;

    /** Statistics were reset (end of warmup). */
    virtual void onStatsReset(const AuditContext &ctx) = 0;

    /**
     * A checked internal-error condition fired (e.g. a scheduler
     * window-occupancy underflow in the ExecModel). With no hook
     * attached these conditions still panic; with one attached they
     * are recorded and the model clamps to a safe state so the
     * violation reaches the report instead of aborting the process.
     */
    virtual void onCheckedError(const char *what, Cycle cycle) = 0;
};

} // namespace percon

#endif // PERCON_UARCH_AUDIT_HOOK_HH
