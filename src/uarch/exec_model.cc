#include "exec_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "uarch/audit_hook.hh"

namespace percon {

IssueSlots::IssueSlots(unsigned units)
    : slots_(kHorizon, Slot{~Cycle(0), 0}), units_(units)
{
    PERCON_ASSERT(units >= 1, "need at least one unit");
}

Cycle
IssueSlots::book(Cycle ready)
{
    Cycle c = ready;
    for (;;) {
        Slot &s = slots_[c % kHorizon];
        if (s.cycle != c) {
            s.cycle = c;
            s.count = 0;
        }
        if (s.count < units_) {
            ++s.count;
            return c;
        }
        ++c;
        // Far beyond the horizon the ledger would wrap onto nearer
        // cycles; at that distance contention accounting no longer
        // matters, so just take the slot.
        if (c - ready > kHorizon / 2)
            return c;
    }
}

ExecModel::ExecModel(const PipelineConfig &config, MemoryHierarchy &mem)
    : config_(config), mem_(mem)
{
    slots_.emplace_back(config.unitsInt);
    slots_.emplace_back(config.unitsMem);
    slots_.emplace_back(config.unitsFp);
    capacity_[0] = config.schedInt;
    capacity_[1] = config.schedMem;
    capacity_[2] = config.schedFp;
}

void
ExecModel::releaseUnderflow(std::uint64_t c0, std::uint64_t c1,
                            std::uint64_t c2)
{
    if (!auditSink_)
        panic("scheduler window underflow at cycle %llu "
              "(release %llu/%llu/%llu vs occupancy %u/%u/%u)",
              static_cast<unsigned long long>(ticked_),
              static_cast<unsigned long long>(c0),
              static_cast<unsigned long long>(c1),
              static_cast<unsigned long long>(c2), occupancy_[0],
              occupancy_[1], occupancy_[2]);
    auditSink_->onCheckedError("scheduler window underflow", ticked_);
    // Clamp each class so occupancy can never wrap; the run keeps
    // going and the violation surfaces in the audit report.
    occupancy_[0] -= std::min<std::uint64_t>(occupancy_[0], c0);
    occupancy_[1] -= std::min<std::uint64_t>(occupancy_[1], c1);
    occupancy_[2] -= std::min<std::uint64_t>(occupancy_[2], c2);
}

Cycle
ExecModel::latencyFor(const InflightUop &uop, Cycle issue_at)
{
    switch (uop.cls) {
      case UopClass::IntAlu:
        return config_.intAluLatency;
      case UopClass::IntMul:
        return config_.intMulLatency;
      case UopClass::FpAlu:
        return config_.fpAluLatency;
      case UopClass::Branch:
        return config_.branchLatency;
      case UopClass::Load:
        return mem_.access(uop.memAddr, issue_at, false).latency;
      case UopClass::Store:
        // Stores compute their address at issue; the cache write
        // happens at retirement and is modelled there.
        return 1;
    }
    panic("bad uop class");
}

void
ExecModel::dispatch(InflightUop &uop, Cycle now, Cycle src_ready)
{
    unsigned cls = static_cast<unsigned>(schedClassFor(uop.cls));
    PERCON_ASSERT(occupancy_[cls] < capacity_[cls],
                  "dispatch into full window");

    Cycle ready = src_ready > now + 1 ? src_ready : now + 1;
    Cycle issue = slots_[cls].book(ready);

    uop.issueAt = issue;
    uop.completeAt = issue + latencyFor(uop, issue);
    uop.dispatched = true;

    ++occupancy_[cls];
    if (issue - ticked_ < kWheelSlots) {
        wheel_[issue & (kWheelSlots - 1)] += 1ULL << (21 * cls);
        ++pendingWheel_;
    } else {
        farReleases_.push((issue << 2) | cls);
    }
}

} // namespace percon
