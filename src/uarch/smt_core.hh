/**
 * @file
 * Two-thread SMT core model.
 *
 * The paper's introduction motivates pipeline gating partly through
 * simultaneous multithreading (its reference [9], Luo et al.):
 * wrong-path work does not just burn energy, it steals fetch slots,
 * issue bandwidth and window entries from the other thread. SmtCore
 * makes that concrete as a two-thread configuration shell over the
 * unified PipelineEngine (pipeline_engine.hh):
 *
 *  - each hardware thread has its own front end state (speculative
 *    history, fetch pipe, wrong-path synthesizer, gating counter)
 *    and an equal static partition of the ROB and load/store
 *    buffers, in the Pentium-4 HT style (or a Tullsen-style shared
 *    pool with shared_structures);
 *  - the branch predictor, confidence estimator, trace cache, BTB,
 *    caches and execution bandwidth are shared;
 *  - fetch picks the ungated thread with the fewest in-flight uops
 *    each cycle (ICOUNT-lite), so gating one thread's low-confidence
 *    stretch automatically hands the front end to the other.
 *
 * Because the engine is shared, every CoreStats counter — including
 * the issue-wait, load-latency and dispatch-stall families — updates
 * identically here and in the single-thread Core, and confidence
 * latency (§5.4.2) is honored per thread. The golden lock in
 * tests/uarch/smt_core_golden_stats_test.cc pins the per-thread
 * counters across the policy matrix.
 */

#ifndef PERCON_UARCH_SMT_CORE_HH
#define PERCON_UARCH_SMT_CORE_HH

#include <array>

#include "uarch/pipeline_engine.hh"

namespace percon {

/** One hardware thread's workload binding (engine vocabulary). */
using SmtThreadConfig = ThreadBinding;

/** SMT fetch arbitration policy (engine vocabulary). */
using SmtFetchPolicy = FetchPolicy;

class SmtCore : public PipelineEngine
{
  public:
    static constexpr unsigned kThreads = 2;

    /**
     * @param config machine geometry (ROB/buffers are split evenly)
     * @param threads per-thread workload bindings (not owned)
     * @param predictor shared branch predictor (not owned)
     * @param estimator shared confidence estimator; may be nullptr
     * @param spec speculation-control policy (applies per thread)
     */
    SmtCore(const PipelineConfig &config,
            const std::array<SmtThreadConfig, kThreads> &threads,
            BranchPredictor &predictor, ConfidenceEstimator *estimator,
            const SpeculationControl &spec,
            SmtFetchPolicy fetch_policy = SmtFetchPolicy::Icount,
            bool shared_structures = false);
};

} // namespace percon

#endif // PERCON_UARCH_SMT_CORE_HH
