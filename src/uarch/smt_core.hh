/**
 * @file
 * Two-thread SMT core model.
 *
 * The paper's introduction motivates pipeline gating partly through
 * simultaneous multithreading (its reference [9], Luo et al.):
 * wrong-path work does not just burn energy, it steals fetch slots,
 * issue bandwidth and window entries from the other thread. This
 * model makes that concrete:
 *
 *  - each hardware thread has its own front end state (speculative
 *    history, fetch pipe, wrong-path synthesizer, gating counter)
 *    and an equal static partition of the ROB and load/store
 *    buffers, in the Pentium-4 HT style;
 *  - the branch predictor, confidence estimator, trace cache, BTB,
 *    caches and execution bandwidth are shared;
 *  - fetch picks the ungated thread with the fewest in-flight uops
 *    each cycle (ICOUNT-lite), so gating one thread's low-confidence
 *    stretch automatically hands the front end to the other.
 *
 * The single-thread Core (core.hh) remains the reference model for
 * the paper's own experiments; this class serves the SMT bench and
 * extension studies.
 */

#ifndef PERCON_UARCH_SMT_CORE_HH
#define PERCON_UARCH_SMT_CORE_HH

#include <array>
#include <queue>

#include "bpred/branch_predictor.hh"
#include "bpred/btb.hh"
#include "confidence/confidence_estimator.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "trace/uop.hh"
#include "trace/wrongpath.hh"
#include "uarch/audit_hook.hh"
#include "uarch/core_stats.hh"
#include "uarch/exec_model.hh"
#include "uarch/inflight_window.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

class SnapshotCursor;

/** A pending branch resolution, ordered by (when, tid, seq) like the
 *  original (Cycle, tid, seq) tuple queue. */
struct SmtUopEvent
{
    Cycle when;
    unsigned tid;
    SeqNum seq;
    UopHandle h;
};

struct SmtUopEventLater
{
    bool
    operator()(const SmtUopEvent &a, const SmtUopEvent &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.tid != b.tid)
            return a.tid > b.tid;
        return a.seq > b.seq;
    }
};

/** One hardware thread's workload binding. */
struct SmtThreadConfig
{
    WorkloadSource *workload = nullptr;
    WrongPathSynthesizer *wrongPath = nullptr;
};

/** SMT fetch arbitration policy. */
enum class SmtFetchPolicy
{
    /** Alternate threads cycle by cycle regardless of occupancy. */
    RoundRobin,
    /** Give the cycle to the eligible thread with the fewest
     *  in-flight uops (Tullsen's ICOUNT, simplified). ICOUNT already
     *  penalizes threads bloated with wrong-path work, which is why
     *  the SMT bench contrasts it with RoundRobin. */
    Icount,
};

class SmtCore
{
  public:
    static constexpr unsigned kThreads = 2;

    /**
     * @param config machine geometry (ROB/buffers are split evenly)
     * @param threads per-thread workload bindings (not owned)
     * @param predictor shared branch predictor (not owned)
     * @param estimator shared confidence estimator; may be nullptr
     * @param spec speculation-control policy (applies per thread)
     */
    SmtCore(const PipelineConfig &config,
            const std::array<SmtThreadConfig, kThreads> &threads,
            BranchPredictor &predictor, ConfidenceEstimator *estimator,
            const SpeculationControl &spec,
            SmtFetchPolicy fetch_policy = SmtFetchPolicy::Icount,
            bool shared_structures = false);

    /** True when ROB/load/store buffers are a shared pool
     *  (Tullsen-style SMT) rather than static per-thread partitions
     *  (Pentium-4 HT style). Shared pools let one thread's
     *  wrong-path work starve the other — which is exactly what
     *  pipeline gating prevents. */
    bool sharedStructures() const { return sharedStructures_; }

    /** Advance until every thread retired @p per_thread more uops. */
    void run(Count per_thread);

    /** Run then reset statistics (caches/predictors keep state). */
    void warmup(Count per_thread);

    const CoreStats &stats(unsigned tid) const { return stats_[tid]; }

    /**
     * Attach a per-thread runtime auditor (see audit_hook.hh); null
     * detaches. Thread 0's auditor doubles as the ExecModel's
     * checked-error sink (the execution model is shared). Attaching
     * auditors never changes statistics.
     */
    void
    setAuditor(unsigned tid, AuditHook *auditor)
    {
        auditors_[tid] = auditor;
        if (tid == 0)
            exec_.setAuditSink(auditor);
    }

    /** Aggregate throughput: total retired uops / cycles. */
    double combinedIpc() const;

    Cycle cycles() const { return now_; }

  private:
    struct Thread
    {
        SmtThreadConfig cfg;
        /** Non-null when cfg.workload is a SnapshotCursor: fetch
         *  uses the devirtualized replay path. */
        SnapshotCursor *snapCursor = nullptr;
        SpecHistory history;
        /** Fetch pipe + per-thread ROB view (shared-pool and
         *  partition limits are enforced by dispatch()). */
        InflightWindow window;
        bool onWrongPath = false;
        unsigned gateCount = 0;
        unsigned loadsInFlight = 0;
        unsigned storesInFlight = 0;
        /** Fetch-stall deadlines by cause; fetch resumes at the max. */
        Cycle tcStallUntil = 0;
        Cycle btbStallUntil = 0;
        std::uint64_t corrIdx = 0;
        std::uint64_t wpIdx = 0;
        static constexpr std::size_t kDepRing = 256;
        std::array<Cycle, kDepRing> corrReady{};
        std::array<Cycle, kDepRing> wpReady{};
    };

    void cycleOnce();
    AuditContext auditContext(unsigned tid) const;
    void resolveBranches();
    void retire(unsigned tid);
    void dispatch(unsigned tid);
    void fetch();
    bool fetchOne(unsigned tid);
    void flushAfter(unsigned tid, const InflightUop &branch);
    Cycle sourceReady(const Thread &t, const InflightUop &uop) const;

    PipelineConfig config_;
    SpeculationControl spec_;
    BranchPredictor &predictor_;
    ConfidenceEstimator *estimator_;

    MemoryHierarchy mem_;
    ExecModel exec_;
    Cache traceCache_;
    Btb btb_;

    std::array<Thread, kThreads> threads_;
    std::array<CoreStats, kThreads> stats_;
    std::array<AuditHook *, kThreads> auditors_{};

    /** Unresolved in-flight branches, keyed by resolution cycle. */
    std::priority_queue<SmtUopEvent, std::vector<SmtUopEvent>,
                        SmtUopEventLater>
        resolveQueue_;

    Cycle now_ = 0;
    SeqNum nextSeq_ = 1;
    SmtFetchPolicy fetchPolicy_;
    bool sharedStructures_;
    unsigned rrNext_ = 0;
    unsigned robPerThread_;
    unsigned loadBufsPerThread_;
    unsigned storeBufsPerThread_;
};

} // namespace percon

#endif // PERCON_UARCH_SMT_CORE_HH
