/**
 * @file
 * The in-flight uop record carried from fetch to retire, including
 * the branch payload (prediction metadata, confidence estimate,
 * history checkpoint) that real hardware keeps in the branch
 * information queue.
 */

#ifndef PERCON_UARCH_INFLIGHT_HH
#define PERCON_UARCH_INFLIGHT_HH

#include "bpred/branch_predictor.hh"
#include "confidence/confidence_estimator.hh"
#include "trace/uop.hh"

namespace percon {

/** One uop in the fetch pipe, ROB, or both. */
struct InflightUop
{
    SeqNum seq = 0;
    Addr pc = 0;
    UopClass cls = UopClass::IntAlu;
    bool wrongPath = false;

    std::uint16_t srcDist[2] = {0, 0};
    Addr memAddr = 0;

    /** Cycle this uop exits the in-order front end. */
    Cycle dispatchReadyAt = 0;

    /** Filled at dispatch by the execution model. */
    Cycle issueAt = 0;
    Cycle completeAt = 0;
    bool dispatched = false;

    /** Index of this uop within its dependency stream (correct path
     *  or current wrong-path episode). */
    std::uint64_t streamIdx = 0;

    // ------------------------ branch payload ----------------------
    bool actualTaken = false;   ///< architectural outcome (correct path)
    bool predTaken = false;     ///< predictor's original direction
    bool finalPred = false;     ///< after any reversal
    bool reversed = false;
    bool causesRedirect = false;///< final prediction wrong (correct path)

    PredMeta meta;
    ConfidenceInfo conf;
    std::uint64_t ghrSnapshot = 0;  ///< spec history before prediction

    /** Gating bookkeeping. */
    Cycle confAppliesAt = 0;    ///< when the low-conf mark can gate
    bool lowConfPending = false;///< marked low, not yet counted
    bool lowConfCounted = false;///< currently counted in the gate
    bool resolvedForGate = false;

    bool isBranch() const { return cls == UopClass::Branch; }
};

} // namespace percon

#endif // PERCON_UARCH_INFLIGHT_HH
