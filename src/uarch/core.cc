#include "core.hh"

namespace percon {

Core::Core(const PipelineConfig &config, WorkloadSource &workload,
           WrongPathSynthesizer &wrong_path, BranchPredictor &predictor,
           ConfidenceEstimator *estimator, const SpeculationControl &spec)
    : PipelineEngine(config, {{&workload, &wrong_path}}, predictor,
                     estimator, spec, FetchPolicy::RoundRobin,
                     /*shared_structures=*/false)
{
}

} // namespace percon
