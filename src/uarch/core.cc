#include "core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace percon {

Core::Core(const PipelineConfig &config, WorkloadSource &workload,
           WrongPathSynthesizer &wrong_path, BranchPredictor &predictor,
           ConfidenceEstimator *estimator, const SpeculationControl &spec)
    : config_(config), spec_(spec), workload_(workload),
      wrongPath_(wrong_path), predictor_(predictor),
      estimator_(estimator), mem_(config.mem), exec_(config_, mem_),
      traceCache_(config.traceCache),
      btb_(config.btbEntries, config.btbWays)
{
    if ((spec_.gateThreshold > 0 && !spec_.oracleGating) ||
        spec_.reversalEnabled) {
        PERCON_ASSERT(estimator_ != nullptr,
                      "gating/reversal require a confidence estimator");
    }
}

InflightUop *
Core::findBySeq(SeqNum seq)
{
    // Both structures are seq-sorted but may contain gaps where
    // flushed wrong-path uops used to be, so binary-search by seq.
    auto search = [seq](std::deque<InflightUop> &q) -> InflightUop * {
        if (q.empty() || seq < q.front().seq || seq > q.back().seq)
            return nullptr;
        auto it = std::lower_bound(
            q.begin(), q.end(), seq,
            [](const InflightUop &u, SeqNum s) { return u.seq < s; });
        return (it != q.end() && it->seq == seq) ? &*it : nullptr;
    };
    if (InflightUop *u = search(rob_))
        return u;
    return search(fetchPipe_);
}

void
Core::applyPendingConfidence()
{
    while (!confQueue_.empty() && confQueue_.top().first <= now_) {
        SeqNum seq = confQueue_.top().second;
        confQueue_.pop();
        InflightUop *u = findBySeq(seq);
        if (!u)
            continue;  // flushed before the estimate arrived
        if (!u->lowConfPending || u->resolvedForGate)
            continue;  // resolved before the estimate arrived
        u->lowConfPending = false;
        u->lowConfCounted = true;
        ++gateCount_;
    }
}

void
Core::resolveBranches()
{
    while (!resolveQueue_.empty() && resolveQueue_.top().first <= now_) {
        SeqNum seq = resolveQueue_.top().second;
        resolveQueue_.pop();
        InflightUop *u = findBySeq(seq);
        if (!u)
            continue;  // branch was flushed
        PERCON_ASSERT(u->isBranch(), "non-branch in resolve queue");
        if (u->resolvedForGate)
            continue;
        u->resolvedForGate = true;
        if (u->lowConfCounted) {
            PERCON_ASSERT(gateCount_ > 0, "gate counter underflow");
            --gateCount_;
            u->lowConfCounted = false;
        }
        u->lowConfPending = false;

        if (u->causesRedirect)
            flushAfter(*u);
    }
}

void
Core::flushAfter(const InflightUop &branch)
{
    ++stats_.flushes;

    // Everything younger than the branch is wrong-path by
    // construction; account its execution and unwind resources.
    while (!rob_.empty() && rob_.back().seq > branch.seq) {
        InflightUop &u = rob_.back();
        PERCON_ASSERT(u.wrongPath, "flushing a correct-path uop");
        if (u.issueAt <= now_) {
            ++stats_.executedUops;
            ++stats_.wrongPathExecuted;
        }
        if (u.lowConfCounted) {
            PERCON_ASSERT(gateCount_ > 0, "gate counter underflow");
            --gateCount_;
        }
        if (u.cls == UopClass::Load) {
            PERCON_ASSERT(loadsInFlight_ > 0, "load buffer underflow");
            --loadsInFlight_;
        } else if (u.cls == UopClass::Store) {
            PERCON_ASSERT(storesInFlight_ > 0, "store buffer underflow");
            --storesInFlight_;
        }
        rob_.pop_back();
    }

    for (InflightUop &u : fetchPipe_) {
        if (u.lowConfCounted) {
            PERCON_ASSERT(gateCount_ > 0, "gate counter underflow");
            --gateCount_;
        }
    }
    fetchPipe_.clear();

    history_.recover(branch.ghrSnapshot, branch.actualTaken);
    onWrongPath_ = false;
}

void
Core::retire()
{
    for (unsigned n = 0; n < config_.width; ++n) {
        if (rob_.empty())
            return;
        InflightUop &u = rob_.front();
        if (!u.dispatched ||
            u.completeAt + config_.backEndDepth > now_)
            return;
        PERCON_ASSERT(!u.wrongPath,
                      "wrong-path uop reached the ROB head");

        ++stats_.retiredUops;
        ++stats_.executedUops;

        switch (u.cls) {
          case UopClass::Load:
            PERCON_ASSERT(loadsInFlight_ > 0, "load buffer underflow");
            --loadsInFlight_;
            break;
          case UopClass::Store:
            PERCON_ASSERT(storesInFlight_ > 0, "store buffer underflow");
            --storesInFlight_;
            // The write accesses the hierarchy at commit.
            mem_.access(u.memAddr, now_, true);
            break;
          case UopClass::Branch: {
            ++stats_.retiredBranches;
            bool misp_orig = u.predTaken != u.actualTaken;
            bool misp_final = u.finalPred != u.actualTaken;
            if (misp_orig)
                ++stats_.mispredictsOriginal;
            if (misp_final)
                ++stats_.mispredictsFinal;
            if (u.reversed) {
                ++stats_.reversals;
                if (misp_orig)
                    ++stats_.reversalsGood;
                else
                    ++stats_.reversalsBad;
            }
            predictor_.update(u.pc, u.ghrSnapshot, u.actualTaken,
                              u.meta);
            if (estimator_) {
                stats_.confidence.record(misp_orig, u.conf.low);
                estimator_->train(u.pc, u.ghrSnapshot, u.predTaken,
                                  misp_orig, u.conf);
            }
            break;
          }
          default:
            break;
        }
        rob_.pop_front();
    }
}

Cycle
Core::sourceReady(const InflightUop &uop) const
{
    const Cycle *ring = uop.wrongPath ? wpReady_ : corrReady_;
    Cycle ready = 0;
    for (unsigned s = 0; s < 2; ++s) {
        std::uint16_t d = uop.srcDist[s];
        if (d == 0 || d > uop.streamIdx || d >= kDepRing)
            continue;
        Cycle r = ring[(uop.streamIdx - d) % kDepRing];
        if (r > ready)
            ready = r;
    }
    return ready;
}

void
Core::dispatch()
{
    for (unsigned n = 0; n < config_.width; ++n) {
        if (fetchPipe_.empty() ||
            fetchPipe_.front().dispatchReadyAt > now_) {
            ++stats_.dispatchStallEmpty;
            return;
        }
        InflightUop &front = fetchPipe_.front();
        if (rob_.size() >= config_.robSize) {
            ++stats_.dispatchStallRob;
            return;
        }
        if (!exec_.windowAvailable(schedClassFor(front.cls))) {
            ++stats_.dispatchStallWindow;
            return;
        }
        if ((front.cls == UopClass::Load &&
             loadsInFlight_ >= config_.loadBuffers) ||
            (front.cls == UopClass::Store &&
             storesInFlight_ >= config_.storeBuffers)) {
            ++stats_.dispatchStallBuffers;
            return;
        }

        InflightUop u = front;
        fetchPipe_.pop_front();

        exec_.dispatch(u, now_, sourceReady(u));
        stats_.issueWaitSum += u.issueAt - now_;
        if (u.cls == UopClass::Load) {
            stats_.loadLatencySum += u.completeAt - u.issueAt;
            ++stats_.loadCount;
        }

        Cycle *ring = u.wrongPath ? wpReady_ : corrReady_;
        ring[u.streamIdx % kDepRing] = u.completeAt;

        if (u.cls == UopClass::Load)
            ++loadsInFlight_;
        else if (u.cls == UopClass::Store)
            ++storesInFlight_;

        // Branch resolution lags execution by the back-end depth:
        // the redirect has to travel from the execute stage back to
        // fetch, which is the deep-pipe waste multiplier.
        if (u.isBranch() && !u.resolvedForGate)
            resolveQueue_.push({u.completeAt + config_.backEndDepth,
                                u.seq});

        rob_.push_back(u);
    }
}

bool
Core::fetchOne()
{
    MicroOp mu = onWrongPath_ ? wrongPath_.next() : workload_.next();

    bool stall_after = false;
    if (config_.traceCacheEnabled && !traceCache_.access(mu.pc)) {
        // Build the missing line: fetch delivers this uop but stalls
        // while the fill completes.
        ++stats_.traceCacheMisses;
        fetchStallUntil_ = now_ + config_.traceCacheMissPenalty;
        stall_after = true;
    }

    InflightUop u;
    u.seq = nextSeq_++;
    u.pc = mu.pc;
    u.cls = mu.cls;
    u.srcDist[0] = mu.srcDist[0];
    u.srcDist[1] = mu.srcDist[1];
    u.memAddr = mu.memAddr;
    u.wrongPath = onWrongPath_;
    u.dispatchReadyAt = now_ + config_.frontEndDepth;
    u.streamIdx = onWrongPath_ ? wpIdx_++ : corrIdx_++;

    ++stats_.fetchedUops;
    if (u.wrongPath)
        ++stats_.wrongPathFetched;

    if (u.isBranch()) {
        u.ghrSnapshot = history_.bits();
        u.predTaken = predictor_.predict(u.pc, u.ghrSnapshot, u.meta);
        if (estimator_)
            u.conf = estimator_->estimate(u.pc, u.ghrSnapshot,
                                          u.predTaken);

        u.finalPred = u.predTaken;
        if (spec_.reversalEnabled &&
            u.conf.band == ConfidenceBand::StrongLow) {
            u.finalPred = !u.predTaken;
            u.reversed = true;
        }

        history_.push(u.finalPred);

        // Redirecting fetch to the taken target needs the target:
        // a BTB miss costs a decode bubble and fills the entry.
        if (config_.btbEnabled && u.finalPred) {
            if (!btb_.lookup(u.pc)) {
                ++stats_.btbMisses;
                Cycle until = now_ + config_.btbMissPenalty;
                if (until > fetchStallUntil_)
                    fetchStallUntil_ = until;
                stall_after = true;
                btb_.update(u.pc, mu.target);
            }
        }

        if (!u.wrongPath) {
            u.actualTaken = mu.taken;
            u.causesRedirect = u.finalPred != u.actualTaken;
            if (u.causesRedirect) {
                onWrongPath_ = true;
                wpIdx_ = 0;
                // The machine follows finalPred; the stream it
                // wrongly fetches starts at the not-actually-taken
                // target or fall-through.
                wrongPath_.redirect(u.finalPred ? mu.target
                                                : mu.pc + 4);
            }
        } else {
            u.actualTaken = u.finalPred;
            u.causesRedirect = false;
        }

        bool gate_mark;
        if (spec_.oracleGating) {
            // Perfect confidence: flag exactly the redirect-causing
            // branches (wrong-path branches are unknowable and never
            // redirect, so they are never flagged).
            gate_mark = spec_.gateThreshold > 0 && u.causesRedirect;
        } else {
            gate_mark = estimator_ && spec_.gateThreshold > 0 &&
                        (spec_.reversalEnabled
                             ? u.conf.band == ConfidenceBand::WeakLow
                             : u.conf.low);
        }
        if (gate_mark) {
            if (spec_.confidenceLatency == 0) {
                u.lowConfCounted = true;
                ++gateCount_;
            } else {
                u.lowConfPending = true;
                u.confAppliesAt = now_ + spec_.confidenceLatency;
                confQueue_.push({u.confAppliesAt, u.seq});
            }
        }
    }

    fetchPipe_.push_back(u);
    return !stall_after;
}

void
Core::fetch()
{
    std::size_t capacity =
        static_cast<std::size_t>(config_.frontEndDepth) * config_.width;
    if (fetchPipe_.size() >= capacity) {
        ++stats_.fetchStallPipeFull;
        return;
    }

    if (now_ < fetchStallUntil_) {
        ++stats_.traceCacheStallCycles;
        return;
    }

    unsigned width = config_.width;
    if (spec_.gateThreshold > 0 && gateCount_ >= spec_.gateThreshold) {
        ++stats_.gatedCycles;
        if (spec_.throttleWidth == 0)
            return;
        width = std::min(width, spec_.throttleWidth);
    }

    for (unsigned n = 0; n < width && fetchPipe_.size() < capacity;
         ++n) {
        if (!fetchOne())
            break;
    }
}

void
Core::cycleOnce()
{
    ++now_;
    ++stats_.cycles;
    exec_.tick(now_);
    applyPendingConfidence();
    resolveBranches();
    retire();
    dispatch();
    fetch();
}

void
Core::run(Count target_retired)
{
    Count goal = stats_.retiredUops + target_retired;
    Cycle last_progress = now_;
    Count last_retired = stats_.retiredUops;
    while (stats_.retiredUops < goal) {
        cycleOnce();
        if (stats_.retiredUops != last_retired) {
            last_retired = stats_.retiredUops;
            last_progress = now_;
        } else if (now_ - last_progress > 500000) {
            panic("core deadlock: no retirement in 500k cycles "
                  "(gate=%u rob=%zu pipe=%zu)",
                  gateCount_, rob_.size(), fetchPipe_.size());
        }
    }
}

void
Core::warmup(Count uops)
{
    run(uops);
    resetStats();
}

} // namespace percon
