#include "core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/trace_snapshot.hh"

namespace percon {

AuditContext
Core::auditContext() const
{
    AuditContext ctx{&stats_,
                     &window_,
                     gateCount_,
                     now_,
                     spec_.gateThreshold,
                     estimator_ != nullptr};
    if (snapCursor_) {
        ctx.workloadReplay = true;
        ctx.workloadConsumed = snapCursor_->consumed();
    }
    return ctx;
}

Core::Core(const PipelineConfig &config, WorkloadSource &workload,
           WrongPathSynthesizer &wrong_path, BranchPredictor &predictor,
           ConfidenceEstimator *estimator, const SpeculationControl &spec)
    : config_(config), spec_(spec), workload_(workload),
      snapCursor_(dynamic_cast<SnapshotCursor *>(&workload)),
      wrongPath_(wrong_path), predictor_(predictor),
      estimator_(estimator), mem_(config.mem), exec_(config_, mem_),
      traceCache_(config.traceCache),
      btb_(config.btbEntries, config.btbWays),
      window_(config.robSize,
              static_cast<std::size_t>(config.frontEndDepth) *
                  config.width)
{
    if ((spec_.gateThreshold > 0 && !spec_.oracleGating) ||
        spec_.reversalEnabled) {
        PERCON_ASSERT(estimator_ != nullptr,
                      "gating/reversal require a confidence estimator");
    }
}

void
Core::applyPendingConfidence()
{
    while (!confQueue_.empty() && confQueue_.top().when <= now_) {
        UopEvent ev = confQueue_.top();
        confQueue_.pop();
        InflightUop *u = window_.lookup(ev.h);
        if (!u)
            continue;  // flushed before the estimate arrived
        PERCON_ASSERT(u->seq == ev.seq, "stale confidence handle");
        if (!u->lowConfPending || u->resolvedForGate)
            continue;  // resolved before the estimate arrived
        u->lowConfPending = false;
        u->lowConfCounted = true;
        ++gateCount_;
    }
}

void
Core::resolveBranches()
{
    while (!resolveQueue_.empty() && resolveQueue_.top().when <= now_) {
        UopEvent ev = resolveQueue_.top();
        resolveQueue_.pop();
        InflightUop *u = window_.lookup(ev.h);
        if (!u)
            continue;  // branch was flushed
        PERCON_ASSERT(u->seq == ev.seq, "stale resolve handle");
        PERCON_ASSERT(u->isBranch(), "non-branch in resolve queue");
        if (u->resolvedForGate)
            continue;
        u->resolvedForGate = true;
        if (u->lowConfCounted) {
            PERCON_ASSERT(gateCount_ > 0, "gate counter underflow");
            --gateCount_;
            u->lowConfCounted = false;
        }
        u->lowConfPending = false;

        if (u->causesRedirect)
            flushAfter(*u);
    }
}

void
Core::flushAfter(const InflightUop &branch)
{
    ++stats_.flushes;

    // Everything younger than the branch is wrong-path by
    // construction; account its execution and unwind resources.
    window_.flushYoungerThan(branch.seq, [this](InflightUop &u) {
        if (u.dispatched) {
            PERCON_ASSERT(u.wrongPath, "flushing a correct-path uop");
            if (u.issueAt <= now_) {
                ++stats_.executedUops;
                ++stats_.wrongPathExecuted;
            }
            if (u.cls == UopClass::Load) {
                PERCON_ASSERT(loadsInFlight_ > 0,
                              "load buffer underflow");
                --loadsInFlight_;
            } else if (u.cls == UopClass::Store) {
                PERCON_ASSERT(storesInFlight_ > 0,
                              "store buffer underflow");
                --storesInFlight_;
            }
        }
        if (u.lowConfCounted) {
            PERCON_ASSERT(gateCount_ > 0, "gate counter underflow");
            --gateCount_;
        }
        if (auditor_)
            auditor_->onSquash(u);
    });

    history_.recover(branch.ghrSnapshot, branch.actualTaken);
    onWrongPath_ = false;
}

void
Core::retire()
{
    for (unsigned n = 0; n < config_.width; ++n) {
        if (window_.robEmpty())
            return;
        InflightUop &u = window_.robFront();
        if (!u.dispatched ||
            u.completeAt + config_.backEndDepth > now_)
            return;
        PERCON_ASSERT(!u.wrongPath,
                      "wrong-path uop reached the ROB head");

        ++stats_.retiredUops;
        ++stats_.executedUops;

        switch (u.cls) {
          case UopClass::Load:
            PERCON_ASSERT(loadsInFlight_ > 0, "load buffer underflow");
            --loadsInFlight_;
            break;
          case UopClass::Store:
            PERCON_ASSERT(storesInFlight_ > 0, "store buffer underflow");
            --storesInFlight_;
            // The write accesses the hierarchy at commit.
            mem_.access(u.memAddr, now_, true);
            break;
          case UopClass::Branch: {
            ++stats_.retiredBranches;
            bool misp_orig = u.predTaken != u.actualTaken;
            bool misp_final = u.finalPred != u.actualTaken;
            if (misp_orig)
                ++stats_.mispredictsOriginal;
            if (misp_final)
                ++stats_.mispredictsFinal;
            if (u.reversed) {
                ++stats_.reversals;
                if (misp_orig)
                    ++stats_.reversalsGood;
                else
                    ++stats_.reversalsBad;
            }
            predictor_.update(u.pc, u.ghrSnapshot, u.actualTaken,
                              u.meta);
            if (estimator_) {
                stats_.confidence.record(misp_orig, u.conf.low);
                estimator_->train(u.pc, u.ghrSnapshot, u.predTaken,
                                  misp_orig, u.conf);
            }
            break;
          }
          default:
            break;
        }
        if (auditor_)
            auditor_->onRetire(u);
        window_.popRetired();
    }
}

Cycle
Core::sourceReady(const InflightUop &uop) const
{
    const Cycle *ring = uop.wrongPath ? wpReady_ : corrReady_;
    Cycle ready = 0;
    for (unsigned s = 0; s < 2; ++s) {
        std::uint16_t d = uop.srcDist[s];
        if (d == 0 || d > uop.streamIdx || d >= kDepRing)
            continue;
        Cycle r = ring[(uop.streamIdx - d) % kDepRing];
        if (r > ready)
            ready = r;
    }
    return ready;
}

void
Core::dispatch()
{
    for (unsigned n = 0; n < config_.width; ++n) {
        if (window_.pipeEmpty() ||
            window_.pipeFront().dispatchReadyAt > now_) {
            ++stats_.dispatchStallEmpty;
            return;
        }
        InflightUop &front = window_.pipeFront();
        if (window_.robSize() >= config_.robSize) {
            ++stats_.dispatchStallRob;
            return;
        }
        if (!exec_.windowAvailable(schedClassFor(front.cls))) {
            ++stats_.dispatchStallWindow;
            return;
        }
        if ((front.cls == UopClass::Load &&
             loadsInFlight_ >= config_.loadBuffers) ||
            (front.cls == UopClass::Store &&
             storesInFlight_ >= config_.storeBuffers)) {
            ++stats_.dispatchStallBuffers;
            return;
        }

        UopHandle h = window_.pipeFrontHandle();
        InflightUop &u = window_.dispatchPipeFront();

        exec_.dispatch(u, now_, sourceReady(u));
        stats_.issueWaitSum += u.issueAt - now_;
        if (u.cls == UopClass::Load) {
            stats_.loadLatencySum += u.completeAt - u.issueAt;
            ++stats_.loadCount;
        }

        Cycle *ring = u.wrongPath ? wpReady_ : corrReady_;
        ring[u.streamIdx % kDepRing] = u.completeAt;

        if (u.cls == UopClass::Load)
            ++loadsInFlight_;
        else if (u.cls == UopClass::Store)
            ++storesInFlight_;

        // Branch resolution lags execution by the back-end depth:
        // the redirect has to travel from the execute stage back to
        // fetch, which is the deep-pipe waste multiplier.
        if (u.isBranch() && !u.resolvedForGate)
            resolveQueue_.push({u.completeAt + config_.backEndDepth,
                                u.seq, h});
    }
}

bool
Core::fetchOne()
{
    MicroOp mu;
    if (onWrongPath_)
        mu = wrongPath_.next();
    else if (snapCursor_)
        mu = snapCursor_->nextFast();
    else
        mu = workload_.next();

    bool stall_after = false;
    if (config_.traceCacheEnabled && !traceCache_.access(mu.pc)) {
        // Build the missing line: fetch delivers this uop but stalls
        // while the fill completes. (Fetch only runs once both stall
        // deadlines have passed, so assignment is equivalent to max.)
        ++stats_.traceCacheMisses;
        tcStallUntil_ = now_ + config_.traceCacheMissPenalty;
        stall_after = true;
    }

    auto [u, h] = window_.emplaceFetched();
    u.seq = nextSeq_++;
    u.pc = mu.pc;
    u.cls = mu.cls;
    u.srcDist[0] = mu.srcDist[0];
    u.srcDist[1] = mu.srcDist[1];
    u.memAddr = mu.memAddr;
    u.wrongPath = onWrongPath_;
    u.dispatchReadyAt = now_ + config_.frontEndDepth;
    u.streamIdx = onWrongPath_ ? wpIdx_++ : corrIdx_++;

    ++stats_.fetchedUops;
    if (u.wrongPath)
        ++stats_.wrongPathFetched;

    bool conf_pending = false;
    if (u.isBranch()) {
        u.ghrSnapshot = history_.bits();
        u.predTaken = predictor_.predict(u.pc, u.ghrSnapshot, u.meta);
        if (estimator_)
            u.conf = estimator_->estimate(u.pc, u.ghrSnapshot,
                                          u.predTaken);

        u.finalPred = u.predTaken;
        if (spec_.reversalEnabled &&
            u.conf.band == ConfidenceBand::StrongLow) {
            u.finalPred = !u.predTaken;
            u.reversed = true;
        }

        history_.push(u.finalPred);

        // Redirecting fetch to the taken target needs the target:
        // a BTB miss costs a decode bubble and fills the entry.
        if (config_.btbEnabled && u.finalPred) {
            if (!btb_.lookup(u.pc)) {
                ++stats_.btbMisses;
                Cycle until = now_ + config_.btbMissPenalty;
                if (until > btbStallUntil_)
                    btbStallUntil_ = until;
                stall_after = true;
                btb_.update(u.pc, mu.target);
            }
        }

        if (!u.wrongPath) {
            u.actualTaken = mu.taken;
            u.causesRedirect = u.finalPred != u.actualTaken;
            if (u.causesRedirect) {
                onWrongPath_ = true;
                wpIdx_ = 0;
                // The machine follows finalPred; the stream it
                // wrongly fetches starts at the not-actually-taken
                // target or fall-through.
                wrongPath_.redirect(u.finalPred ? mu.target
                                                : mu.pc + 4);
            }
        } else {
            u.actualTaken = u.finalPred;
            u.causesRedirect = false;
        }

        bool gate_mark;
        if (spec_.oracleGating) {
            // Perfect confidence: flag exactly the redirect-causing
            // branches (wrong-path branches are unknowable and never
            // redirect, so they are never flagged).
            gate_mark = spec_.gateThreshold > 0 && u.causesRedirect;
        } else {
            gate_mark = estimator_ && spec_.gateThreshold > 0 &&
                        (spec_.reversalEnabled
                             ? u.conf.band == ConfidenceBand::WeakLow
                             : u.conf.low);
        }
        if (gate_mark) {
            if (spec_.confidenceLatency == 0) {
                u.lowConfCounted = true;
                ++gateCount_;
            } else {
                u.lowConfPending = true;
                u.confAppliesAt = now_ + spec_.confidenceLatency;
                conf_pending = true;
            }
        }
    }

    if (conf_pending)
        confQueue_.push({u.confAppliesAt, u.seq, h});
    if (auditor_)
        auditor_->onFetch(u);
    return !stall_after;
}

void
Core::fetch()
{
    if (window_.pipeFull()) {
        ++stats_.fetchStallPipeFull;
        return;
    }

    Cycle stall_until = std::max(tcStallUntil_, btbStallUntil_);
    if (now_ < stall_until) {
        // Attribute the stalled cycle to its cause; when a
        // trace-cache fill and a BTB bubble overlap, the trace cache
        // (the longer deadline still pending) takes priority.
        if (now_ < tcStallUntil_)
            ++stats_.traceCacheStallCycles;
        else
            ++stats_.btbStallCycles;
        return;
    }

    unsigned width = config_.width;
    if (spec_.gateThreshold > 0 && gateCount_ >= spec_.gateThreshold) {
        ++stats_.gatedCycles;
        if (spec_.throttleWidth == 0)
            return;
        width = std::min(width, spec_.throttleWidth);
    }

    for (unsigned n = 0; n < width && !window_.pipeFull(); ++n) {
        if (!fetchOne())
            break;
    }
}

void
Core::cycleOnce()
{
    ++now_;
    ++stats_.cycles;
    exec_.tick(now_);
    applyPendingConfidence();
    resolveBranches();
    retire();
    dispatch();
    fetch();
    if (auditor_)
        auditor_->onCheck(auditContext());
}

Cycle
Core::nextEventCycle() const
{
    Cycle stall_until = std::max(tcStallUntil_, btbStallUntil_);
    bool pipe_full = window_.pipeFull();
    bool gated_stall = spec_.gateThreshold > 0 &&
                       gateCount_ >= spec_.gateThreshold &&
                       spec_.throttleWidth == 0;

    // Fast path: fetch can deliver uops next cycle, so there is
    // nothing to skip. This is the common case in busy phases.
    if (!pipe_full && now_ + 1 >= stall_until && !gated_stall)
        return now_ + 1;

    Cycle next = kNoEvent;
    auto consider = [&](Cycle c) {
        c = std::max(c, now_ + 1);
        if (c < next)
            next = c;
    };

    // Timed queue events must land exactly: they mutate uop state
    // (resolution, flushes, delayed gate marks).
    if (!resolveQueue_.empty())
        consider(resolveQueue_.top().when);
    if (!confQueue_.empty())
        consider(confQueue_.top().when);

    // Retire eligibility of the ROB head.
    if (!window_.robEmpty()) {
        const InflightUop &head = window_.robFront();
        if (head.dispatched)
            consider(head.completeAt + config_.backEndDepth);
    }

    // Dispatch progress. ROB and load/store-buffer pressure can only
    // clear at a retire or flush, which the candidates above already
    // cover; a full scheduler window clears at the next entry
    // release, and an idle front end at the head's ready cycle.
    if (!window_.pipeEmpty()) {
        const InflightUop &front = window_.pipeFront();
        bool rob_full = window_.robSize() >= config_.robSize;
        bool buffers_full =
            (front.cls == UopClass::Load &&
             loadsInFlight_ >= config_.loadBuffers) ||
            (front.cls == UopClass::Store &&
             storesInFlight_ >= config_.storeBuffers);
        if (!rob_full) {
            if (!exec_.windowAvailable(schedClassFor(front.cls)))
                consider(exec_.nextWindowRelease());
            else if (!buffers_full)
                consider(front.dispatchReadyAt);
        }
    }

    // Fetch-stall expiry (a full pipe or a gated front end clears
    // only at the events already considered above).
    if (!pipe_full && now_ + 1 < stall_until)
        consider(stall_until);

    return next;
}

void
Core::fastForward(Cycle skipped)
{
    Cycle begin = now_ + 1;  // first skipped cycle

    // Deliberate off-by-one in the bulk stall replay, enabled only by
    // the differential harness's negative test: one skipped cycle
    // loses its dispatch-stall attribution, exactly the class of bug
    // an event-skipping refactor could introduce silently.
    Cycle replay_skipped = testFfDefect_ && skipped > 0
                               ? skipped - 1
                               : skipped;

    // Every skipped cycle would have run the no-progress paths of
    // dispatch() and fetch(); replay their per-cycle stall
    // accounting in bulk so CoreStats stay bit-identical to the
    // cycle-stepped run. All machine state is constant over the
    // span by construction, so only the time comparisons vary.
    if (window_.pipeEmpty()) {
        stats_.dispatchStallEmpty += replay_skipped;
    } else {
        const InflightUop &front = window_.pipeFront();
        Cycle not_ready =
            front.dispatchReadyAt > begin
                ? std::min<Cycle>(replay_skipped,
                                  front.dispatchReadyAt - begin)
                : 0;
        stats_.dispatchStallEmpty += not_ready;
        Cycle blocked = replay_skipped - not_ready;
        if (blocked > 0) {
            if (window_.robSize() >= config_.robSize)
                stats_.dispatchStallRob += blocked;
            else if (!exec_.windowAvailable(
                         schedClassFor(front.cls)))
                stats_.dispatchStallWindow += blocked;
            else
                stats_.dispatchStallBuffers += blocked;
        }
    }

    if (window_.pipeFull()) {
        stats_.fetchStallPipeFull += skipped;
    } else if (begin < std::max(tcStallUntil_, btbStallUntil_)) {
        Cycle tc = tcStallUntil_ > begin
                       ? std::min<Cycle>(skipped, tcStallUntil_ - begin)
                       : 0;
        stats_.traceCacheStallCycles += tc;
        stats_.btbStallCycles += skipped - tc;
    } else {
        PERCON_ASSERT(spec_.gateThreshold > 0 &&
                          gateCount_ >= spec_.gateThreshold &&
                          spec_.throttleWidth == 0,
                      "fast-forward with an unblocked front end");
        stats_.gatedCycles += skipped;
    }

    now_ += skipped;
    stats_.cycles += skipped;
}

void
Core::run(Count target_retired)
{
    Count goal = stats_.retiredUops + target_retired;
    Count last_retired = stats_.retiredUops;
    Count idle_iters = 0;
    while (stats_.retiredUops < goal) {
        cycleOnce();
        if (stats_.retiredUops != last_retired) {
            last_retired = stats_.retiredUops;
            idle_iters = 0;
        } else if (++idle_iters > 500000) {
            // Counts event-loop iterations (= active, non-skipped
            // cycles), not raw now_ delta: a legitimate fast-forward
            // through a long memory stall must not trip this.
            panic("core deadlock: no retirement in 500k active cycles "
                  "(gate=%u rob=%zu pipe=%zu)",
                  gateCount_, window_.robSize(), window_.pipeSize());
        }
        if (skipIdleCycles_ && stats_.retiredUops < goal) {
            Cycle next = nextEventCycle();
            if (next == kNoEvent) {
                panic("core deadlock: no schedulable event "
                      "(gate=%u rob=%zu pipe=%zu)",
                      gateCount_, window_.robSize(),
                      window_.pipeSize());
            }
            if (next > now_ + 1)
                fastForward(next - now_ - 1);
        }
    }
}

void
Core::warmup(Count uops)
{
    run(uops);
    resetStats();
}

} // namespace percon
