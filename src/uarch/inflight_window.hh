/**
 * @file
 * The in-flight uop window shared by Core and SmtCore: fetch pipe
 * and ROB in one ring buffer.
 *
 * Fetch order is seq order, and the ROB is always the older prefix
 * of the fetch stream: dispatch moves the pipe/ROB boundary instead
 * of copying the uop, retire pops the front, and a flush truncates
 * the young end (everything fetched after the mispredicted branch,
 * which is the whole fetch pipe plus the wrong-path ROB suffix).
 * The original implementation kept two deques and binary-searched
 * them by seq on every resolve/confidence event; here events carry a
 * generation-checked slot handle instead, making the lookup O(1) and
 * flush-safe: once a slot is vacated its generation advances, so a
 * stale handle can never alias the slot's next occupant.
 */

#ifndef PERCON_UARCH_INFLIGHT_WINDOW_HH
#define PERCON_UARCH_INFLIGHT_WINDOW_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/ring_buffer.hh"
#include "uarch/inflight.hh"

namespace percon {

/**
 * Generation-checked reference to an in-flight uop. Taken at fetch
 * and valid until the uop retires or is flushed; lookups after that
 * return null instead of the slot's next occupant.
 */
struct UopHandle
{
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
};

class InflightWindow
{
  public:
    /** An unusable empty window; reset() before use. */
    InflightWindow() = default;

    InflightWindow(std::size_t rob_capacity, std::size_t pipe_capacity)
    {
        reset(rob_capacity, pipe_capacity);
    }

    /** Size for @p rob_capacity ROB entries plus @p pipe_capacity
     *  front-end entries and drop any contents. */
    void
    reset(std::size_t rob_capacity, std::size_t pipe_capacity)
    {
        ring_.reset(rob_capacity + pipe_capacity);
        gen_.assign(ring_.capacity(), 0);
        robCap_ = rob_capacity;
        pipeCap_ = pipe_capacity;
        robCount_ = 0;
    }

    // ------------------------ fetch pipe view ---------------------
    std::size_t pipeSize() const { return ring_.size() - robCount_; }
    bool pipeEmpty() const { return ring_.size() == robCount_; }
    bool pipeFull() const { return pipeSize() >= pipeCap_; }
    InflightUop &pipeFront() { return ring_.at(robCount_); }
    const InflightUop &pipeFront() const { return ring_.at(robCount_); }

    /** Append a fetched uop; returns its lifetime handle. */
    UopHandle
    pushFetched(const InflightUop &u)
    {
        PERCON_ASSERT(!pipeFull(), "fetch into a full pipe");
        std::size_t slot = ring_.pushBack(u);
        return {static_cast<std::uint32_t>(slot), gen_[slot]};
    }

    /** Append a fresh (default-initialized) fetched uop and hand the
     *  caller the slot to fill in place — fetch is the hottest path,
     *  and this avoids copying the whole InflightUop once per uop. */
    struct Fetched
    {
        InflightUop &u;
        UopHandle h;
    };

    Fetched
    emplaceFetched()
    {
        PERCON_ASSERT(!pipeFull(), "fetch into a full pipe");
        std::size_t slot = ring_.emplaceBack();
        return {ring_.atSlot(slot),
                {static_cast<std::uint32_t>(slot), gen_[slot]}};
    }

    /** Handle of the pipe front (taken just before dispatch). */
    UopHandle
    pipeFrontHandle() const
    {
        std::size_t slot = ring_.slotOf(robCount_);
        return {static_cast<std::uint32_t>(slot), gen_[slot]};
    }

    /** Move the pipe front into the ROB (boundary shift, no copy). */
    InflightUop &
    dispatchPipeFront()
    {
        PERCON_ASSERT(!pipeEmpty(), "dispatch from an empty pipe");
        PERCON_ASSERT(robCount_ < robCap_, "dispatch into a full ROB");
        return ring_.at(robCount_++);
    }

    // ------------------------ ROB view ----------------------------
    std::size_t robSize() const { return robCount_; }
    bool robEmpty() const { return robCount_ == 0; }
    bool robFull() const { return robCount_ >= robCap_; }
    InflightUop &robFront() { return ring_.front(); }
    const InflightUop &robFront() const { return ring_.front(); }

    /** Retire the ROB head. */
    void
    popRetired()
    {
        PERCON_ASSERT(robCount_ > 0, "retire from an empty ROB");
        ++gen_[ring_.slotOf(0)];
        ring_.popFront();
        --robCount_;
    }

    // ------------------------ event lookup ------------------------
    /** Null once the uop has retired or been flushed. */
    InflightUop *
    lookup(UopHandle h)
    {
        return gen_[h.slot] == h.gen ? &ring_.atSlot(h.slot) : nullptr;
    }

    // ------------------------ flush -------------------------------
    /**
     * Drop every uop younger than @p seq, youngest first: the whole
     * fetch pipe and the ROB suffix behind the mispredicted branch.
     * @p on_drop sees each dropped uop for stats/resource unwinding;
     * distinguish ROB from pipe entries via InflightUop::dispatched.
     */
    template <typename Fn>
    void
    flushYoungerThan(SeqNum seq, Fn &&on_drop)
    {
        while (!ring_.empty() && ring_.back().seq > seq) {
            on_drop(ring_.back());
            ++gen_[ring_.slotOf(ring_.size() - 1)];
            ring_.popBack();
        }
        if (robCount_ > ring_.size())
            robCount_ = ring_.size();
    }

    std::size_t size() const { return ring_.size(); }

    /** Read-only positional access (0 = oldest), for auditors: the
     *  first robSize() entries are the ROB, the rest the fetch pipe. */
    const InflightUop &entry(std::size_t i) const { return ring_.at(i); }

  private:
    RingBuffer<InflightUop> ring_;
    std::vector<std::uint32_t> gen_;
    std::size_t robCap_ = 0;
    std::size_t pipeCap_ = 0;
    std::size_t robCount_ = 0;
};

} // namespace percon

#endif // PERCON_UARCH_INFLIGHT_WINDOW_HH
