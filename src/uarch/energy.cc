#include "energy.hh"

namespace percon {

EnergyReport
computeEnergy(const CoreStats &stats, const EnergyParams &params)
{
    EnergyReport r;

    double fetch = params.fetchPerUop *
                   static_cast<double>(stats.fetchedUops);
    double execute = params.executePerUop *
                     static_cast<double>(stats.executedUops);
    double retire = params.retirePerUop *
                    static_cast<double>(stats.retiredUops);
    double flush =
        params.flushFixed * static_cast<double>(stats.flushes);
    double gate =
        params.gatePerCycle * static_cast<double>(stats.gatedCycles);

    r.dynamicPart = fetch + execute + retire + flush + gate;
    r.staticPart =
        params.staticPerCycle * static_cast<double>(stats.cycles);
    r.total = r.dynamicPart + r.staticPart;

    if (stats.retiredUops > 0)
        r.epi = r.total / static_cast<double>(stats.retiredUops);
    r.edp = r.total * static_cast<double>(stats.cycles);
    return r;
}

} // namespace percon
