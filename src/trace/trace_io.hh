/**
 * @file
 * Binary trace file format ("PCTR"): a fixed header followed by
 * packed MicroOp records. Lets users capture a synthetic workload
 * once and replay it, or import their own uop streams.
 */

#ifndef PERCON_TRACE_TRACE_IO_HH
#define PERCON_TRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>

#include "trace/uop.hh"

namespace percon {

/** On-disk per-uop record (packed, little-endian host assumed). */
struct TraceRecord
{
    std::uint64_t pc;
    std::uint64_t memAddr;
    std::uint64_t target;
    std::uint16_t srcDist0;
    std::uint16_t srcDist1;
    std::uint8_t cls;
    std::uint8_t taken;
    std::uint8_t pad[2];
};
static_assert(sizeof(TraceRecord) == 32, "trace record must pack to 32B");

/** Writes uops to a PCTR trace file. */
class TraceWriter
{
  public:
    /** Open for writing; fatal() if the file cannot be created. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one uop. */
    void write(const MicroOp &uop);

    /** Flush and finalize the header. */
    void close();

    Count written() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    Count count_ = 0;
};

/** Reads a PCTR trace file; implements WorkloadSource by replay. */
class TraceReader : public WorkloadSource
{
  public:
    /** Open for reading; fatal() on missing/corrupt files. */
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Total uops in the file. */
    Count size() const { return size_; }

    /** True when all uops have been consumed. */
    bool exhausted() const { return position_ >= size_; }

    /** Next uop; the trace wraps around at the end so streaming
     *  consumers (the pipeline model) never starve. */
    MicroOp next() override;

    const char *name() const override { return name_.c_str(); }

  private:
    std::FILE *file_ = nullptr;
    std::string name_;
    Count size_ = 0;
    Count position_ = 0;
};

} // namespace percon

#endif // PERCON_TRACE_TRACE_IO_HH
