#include "benchmarks.hh"

#include <map>

#include "common/logging.hh"

namespace percon {

namespace {

/**
 * Shorthand builder. The category shares below are initial analytic
 * estimates refined against the calibration test
 * (tests/trace/calibration_test.cc): per-branch misprediction under
 * the baseline hybrid is roughly
 *     easy*(1-bias) + loop/trip + corr*noise + hard*0.42 + ...
 * and mispredicts/Kuop = per-branch rate * 1000 / uopsPerBranch.
 */
BenchmarkSpec
make(const std::string &name, double paper_mpk,
     const BranchMix &mix, double easy_bias, unsigned trip_lo,
     unsigned trip_hi, double corr_noise, double noisy_corr_noise,
     double hard_lo, double hard_hi, std::uint64_t ws_kb,
     double frac_stream, double frac_chase)
{
    BenchmarkSpec spec;
    ProgramParams &p = spec.program;
    p.name = name;
    p.seed = 0x5eedULL ^ mix64(std::hash<std::string>{}(name));
    p.numStaticBranches = 768;
    p.zipfAlpha = 1.05;
    p.mix = mix;
    p.uopsPerBranch = 7.0;
    p.easyBiasMin = easy_bias;
    p.easyBiasMax = std::min(0.9995, easy_bias + 0.01);
    p.loopTripMin = trip_lo;
    p.loopTripMax = trip_hi;
    p.corrNoise = corr_noise;
    p.noisyCorrNoise = noisy_corr_noise;
    p.hardBiasMin = hard_lo;
    p.hardBiasMax = hard_hi;
    p.addr.workingSetKB = ws_kb;
    p.addr.fracStream = frac_stream;
    p.addr.fracChase = frac_chase;
    spec.paperMispredictsPerKuop = paper_mpk;
    return spec;
}

std::vector<BenchmarkSpec>
buildAll()
{
    std::vector<BenchmarkSpec> v;

    // name          paper  {easy   loop  corr   par    locl   ncorr  hard   phas}
    v.push_back(make("gzip", 5.2,
        {0.805, 0.080, 0.040, 0.002, 0.006, 0.000, 0.025, 0.001, 0.049},
        0.990, 6, 20, 0.02, 0.15, 0.55, 0.68, 256, 0.75, 0.0));
    v.push_back(make("vpr", 6.6,
        {0.765, 0.060, 0.050, 0.002, 0.008, 0.003, 0.042, 0.002, 0.066},
        0.990, 6, 24, 0.02, 0.16, 0.55, 0.66, 2048, 0.30, 0.10));
    v.push_back(make("gcc", 2.3,
        {0.889, 0.060, 0.025, 0.001, 0.003, 0.000, 0.004, 0.001, 0.016},
        0.994, 6, 24, 0.02, 0.12, 0.56, 0.70, 1024, 0.40, 0.05));
    v.push_back(make("mcf", 16.0,
        {0.577, 0.050, 0.060, 0.002, 0.010, 0.020, 0.135, 0.005, 0.163},
        0.985, 6, 20, 0.03, 0.18, 0.52, 0.62, 8192, 0.10, 0.30));
    v.push_back(make("crafty", 3.4,
        {0.845, 0.060, 0.030, 0.002, 0.005, 0.000, 0.019, 0.001, 0.028},
        0.992, 6, 24, 0.02, 0.14, 0.55, 0.68, 512, 0.45, 0.05));
    v.push_back(make("link", 4.6,
        {0.834, 0.070, 0.040, 0.002, 0.005, 0.000, 0.011, 0.001, 0.035},
        0.990, 6, 24, 0.02, 0.15, 0.55, 0.68, 1024, 0.35, 0.15));
    v.push_back(make("eon", 0.5,
        {0.950, 0.040, 0.010, 0.000, 0.000, 0.000, 0.000, 0.000, 0.002},
        0.9988, 8, 24, 0.01, 0.05, 0.58, 0.70, 256, 0.55, 0.0));
    v.push_back(make("perlbmk", 0.7,
        {0.930, 0.040, 0.025, 0.000, 0.000, 0.000, 0.000, 0.000, 0.004},
        0.9975, 8, 24, 0.012, 0.06, 0.58, 0.70, 512, 0.45, 0.05));
    v.push_back(make("gap", 1.7,
        {0.909, 0.050, 0.020, 0.000, 0.002, 0.000, 0.008, 0.000, 0.010},
        0.995, 8, 24, 0.015, 0.08, 0.57, 0.70, 1024, 0.45, 0.05));
    v.push_back(make("vortex", 0.2,
        {0.975, 0.020, 0.005, 0.000, 0.000, 0.000, 0.000, 0.000, 0.001},
        0.9993, 8, 16, 0.005, 0.02, 0.60, 0.70, 1024, 0.50, 0.05));
    v.push_back(make("bzip", 1.1,
        {0.928, 0.050, 0.015, 0.000, 0.001, 0.000, 0.001, 0.000, 0.006},
        0.996, 8, 24, 0.012, 0.07, 0.57, 0.70, 512, 0.80, 0.0));
    v.push_back(make("twolf", 6.3,
        {0.800, 0.060, 0.050, 0.002, 0.008, 0.002, 0.022, 0.004, 0.055},
        0.990, 6, 24, 0.02, 0.16, 0.55, 0.66, 1024, 0.30, 0.10));

    return v;
}

} // namespace

const std::vector<BenchmarkSpec> &
allBenchmarks()
{
    static const std::vector<BenchmarkSpec> all = buildAll();
    return all;
}

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (const auto &spec : allBenchmarks())
            n.push_back(spec.program.name);
        return n;
    }();
    return names;
}

const BenchmarkSpec &
benchmarkSpec(const std::string &name)
{
    for (const auto &spec : allBenchmarks()) {
        if (spec.program.name == name)
            return spec;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace percon
