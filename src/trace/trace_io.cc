#include "trace_io.hh"

#include <cstring>

#include "common/logging.hh"

namespace percon {

namespace {

constexpr char kMagic[4] = {'P', 'C', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

struct TraceHeader
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};

TraceRecord
pack(const MicroOp &u)
{
    TraceRecord r{};
    r.pc = u.pc;
    r.memAddr = u.memAddr;
    r.target = u.target;
    r.srcDist0 = u.srcDist[0];
    r.srcDist1 = u.srcDist[1];
    r.cls = static_cast<std::uint8_t>(u.cls);
    r.taken = u.taken ? 1 : 0;
    return r;
}

MicroOp
unpack(const TraceRecord &r)
{
    MicroOp u;
    u.pc = r.pc;
    u.memAddr = r.memAddr;
    u.target = r.target;
    u.srcDist[0] = r.srcDist0;
    u.srcDist[1] = r.srcDist1;
    u.cls = static_cast<UopClass>(r.cls);
    u.taken = r.taken != 0;
    return u;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("cannot create trace file '%s'", path.c_str());
    TraceHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kVersion;
    hdr.count = 0;
    if (std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    if (file_)
        close();
}

void
TraceWriter::write(const MicroOp &uop)
{
    PERCON_ASSERT(file_, "write after close");
    TraceRecord r = pack(uop);
    if (std::fwrite(&r, sizeof(r), 1, file_) != 1)
        fatal("trace write failed (disk full?)");
    ++count_;
}

void
TraceWriter::close()
{
    PERCON_ASSERT(file_, "double close");
    TraceHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kVersion;
    hdr.count = count_;
    std::fseek(file_, 0, SEEK_SET);
    if (std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("cannot finalize trace header");
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path) : name_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
    TraceHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("'%s' is too short to be a trace", path.c_str());
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'%s' is not a PCTR trace", path.c_str());
    if (hdr.version != kVersion)
        fatal("'%s': unsupported trace version %u", path.c_str(),
              hdr.version);
    if (hdr.count == 0)
        fatal("'%s' contains no uops", path.c_str());
    size_ = hdr.count;
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

MicroOp
TraceReader::next()
{
    if (position_ >= size_) {
        std::fseek(file_, sizeof(TraceHeader), SEEK_SET);
        position_ = 0;
    }
    TraceRecord r{};
    if (std::fread(&r, sizeof(r), 1, file_) != 1)
        fatal("truncated trace '%s' at uop %llu", name_.c_str(),
              static_cast<unsigned long long>(position_));
    ++position_;
    return unpack(r);
}

} // namespace percon
