/**
 * @file
 * Calibrated SPECint-2000 workload profiles.
 *
 * The paper evaluates two 30M-instruction LIT traces per SPECint 2000
 * benchmark on an Intel-internal simulator. We cannot redistribute
 * those, so each benchmark is modelled as a ProgramParams profile
 * whose static-branch population is calibrated so the baseline
 * bimodal-gshare hybrid predictor reproduces the per-benchmark
 * mispredicts/1000-uops column of the paper's Table 2 (ordering and
 * approximate magnitude). See DESIGN.md §2 for the substitution
 * argument.
 */

#ifndef PERCON_TRACE_BENCHMARKS_HH
#define PERCON_TRACE_BENCHMARKS_HH

#include <string>
#include <vector>

#include "trace/program_model.hh"

namespace percon {

/** One benchmark entry: profile + the paper's reference numbers. */
struct BenchmarkSpec
{
    ProgramParams program;

    /** Paper Table 2: branch mispredicts per 1000 uops. */
    double paperMispredictsPerKuop;
};

/** Names of the twelve SPECint 2000 benchmarks, paper order. */
const std::vector<std::string> &benchmarkNames();

/** Look up a benchmark spec by name; fatal() on unknown names. */
const BenchmarkSpec &benchmarkSpec(const std::string &name);

/** All twelve specs in paper order. */
const std::vector<BenchmarkSpec> &allBenchmarks();

} // namespace percon

#endif // PERCON_TRACE_BENCHMARKS_HH
