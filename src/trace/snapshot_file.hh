/**
 * @file
 * Persistent, versioned on-disk format for TraceSnapshot.
 *
 * A snapshot file is a flat image of the packed SoA lanes plus a
 * self-describing header, designed to be mmap'd read-only and
 * replayed in place:
 *
 *   offset  field
 *   ------  ---------------------------------------------------------
 *        0  magic "PCSNAP01" (8 bytes; the two digits are the format
 *           version — any change to the layout bumps them)
 *        8  endian tag 0x0102030405060708 (a foreign-endian producer
 *           shows the byte-reversed value and is rejected)
 *       16  total file bytes (truncation check)
 *       24  FNV-1a hash of programKey(params) (fast mismatch check;
 *           the full key string below is authoritative)
 *       32  uop count / 40 mem-op count / 48 branch count
 *       56  payload offset (64-byte aligned) / 64 payload bytes
 *       72  FNV-1a hash of the payload bytes (corruption check)
 *       80  programKey length / 88 lane count (= 7)
 *       96  7 x { u64 file offset, u64 bytes } lane directory
 *      208  programKey(params) string (not NUL-terminated)
 *           ... zero padding to the payload offset ...
 *  payload  lanes in directory order — pc, memAddr, target,
 *           takenBits, srcDist0, srcDist1, cls — each starting on a
 *           64-byte-aligned file offset (mmap bases are page-aligned,
 *           so every lane is naturally aligned and cache-line clean
 *           in memory too)
 *
 * Everything in the header derives from the generating ProgramParams
 * content and the uop count — never from the producing build, git
 * state, host, or time — so a file written by one build is
 * byte-identical to and readable by any other.
 *
 * openSnapshotFile validates the whole chain (magic, version,
 * endianness, sizes, key, lane directory, payload hash) and returns
 * null — never crashes — on any mismatch; callers fall back to
 * regeneration. On success the returned TraceSnapshot borrows its
 * lanes from the mapping (TraceSnapshot::borrowed()): zero-copy, no
 * arena allocation, file kept alive by the snapshot.
 */

#ifndef PERCON_TRACE_SNAPSHOT_FILE_HH
#define PERCON_TRACE_SNAPSHOT_FILE_HH

#include <memory>
#include <string>

#include "trace/trace_snapshot.hh"

namespace percon {

/** Format magic, version included. */
inline constexpr char kSnapshotFileMagic[8] = {'P', 'C', 'S', 'N',
                                               'A', 'P', '0', '1'};

/** Native byte-order tag (reads back reversed on a foreign-endian
 *  host). */
inline constexpr std::uint64_t kSnapshotEndianTag =
    0x0102030405060708ULL;

/** Serialize @p snap into the on-disk image described above. */
std::string serializeSnapshot(const TraceSnapshot &snap);

/**
 * Map @p path read-only and validate it against the expected
 * workload identity. @return a borrowed-lane snapshot on success;
 * null (with *why describing the first failed check when non-null)
 * on any validation failure. @p params must be the exact generating
 * parameters (the stored programKey is compared against
 * programKey(params)) and @p uops the exact requested length.
 */
std::shared_ptr<const TraceSnapshot>
openSnapshotFile(const std::string &path, const ProgramParams &params,
                 Count uops, std::string *why = nullptr);

/**
 * Header-only plausibility probe: magic, endianness, declared file
 * size, and key hash — no payload scan, no mapping kept. Used to
 * derive deterministic "snapshot_store" hit/miss row labels before a
 * sweep starts; the authoritative check remains openSnapshotFile.
 */
bool probeSnapshotFile(const std::string &path,
                       const ProgramParams &params, Count uops);

} // namespace percon

#endif // PERCON_TRACE_SNAPSHOT_FILE_HH
