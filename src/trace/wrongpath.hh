/**
 * @file
 * Wrong-path uop synthesis.
 *
 * When the pipeline model fetches past a mispredicted branch, the
 * real machine executes instructions from the wrong target. Our
 * correct-path trace has no record of them, so we synthesize a
 * plausible stream: same uop class mix, same dependency shaping, and
 * addresses drawn from a separate working-set so wrong-path loads
 * perturb the caches (the paper's "mostly wasted" footnote: some
 * prefetch benefit remains).
 *
 * Wrong-path branches are predicted by the real predictor so they
 * consume history/table state realistically, but they never redirect
 * fetch: the whole path dies when the triggering branch resolves.
 */

#ifndef PERCON_TRACE_WRONGPATH_HH
#define PERCON_TRACE_WRONGPATH_HH

#include "common/rng.hh"
#include "trace/address_model.hh"
#include "trace/program_model.hh"
#include "trace/uop.hh"

namespace percon {

/** Generator for wrong-path uops, seeded per diverted branch. */
class WrongPathSynthesizer
{
  public:
    /**
     * @param params the program the wrong path imitates
     * @param seed determinism root, distinct from the program's
     */
    WrongPathSynthesizer(const ProgramParams &params, std::uint64_t seed);

    /** Begin a wrong path at the given (wrong) fetch target. */
    void redirect(Addr wrong_target);

    /** Produce the next wrong-path uop. */
    MicroOp next();

  private:
    ProgramParams params_;
    Rng rng_;
    AddressModel addrModel_;
    Rng addrRng_;
    Addr pc_ = 0;
    unsigned sinceBranch_ = 0;
};

} // namespace percon

#endif // PERCON_TRACE_WRONGPATH_HH
