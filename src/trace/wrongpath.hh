/**
 * @file
 * Wrong-path uop synthesis.
 *
 * When the pipeline model fetches past a mispredicted branch, the
 * real machine executes instructions from the wrong target. Our
 * correct-path trace has no record of them, so we synthesize a
 * plausible stream: same uop class mix, same dependency shaping, and
 * addresses drawn from a separate working-set so wrong-path loads
 * perturb the caches (the paper's "mostly wasted" footnote: some
 * prefetch benefit remains).
 *
 * Wrong-path branches are predicted by the real predictor so they
 * consume history/table state realistically, but they never redirect
 * fetch: the whole path dies when the triggering branch resolves.
 *
 * Synthesis runs in blocks: the RNG-derived recipe of the next
 * kBlock uops is generated in one tight loop into a per-core scratch
 * arena that lives for the synthesizer's lifetime and is reused
 * across squashes. next() then only stamps the consumption-time
 * parts (pc, memory addresses — whose model state must advance in
 * exact consumption order). Each slot also records the generator
 * state *before* it was produced, so redirect() rewinds the RNG to
 * precisely where consumption stopped in O(1): the emitted stream is
 * bit-identical to per-uop synthesis.
 */

#ifndef PERCON_TRACE_WRONGPATH_HH
#define PERCON_TRACE_WRONGPATH_HH

#include <array>
#include <cstdint>

#include "common/rng.hh"
#include "trace/address_model.hh"
#include "trace/program_model.hh"
#include "trace/uop.hh"

namespace percon {

/** Generator for wrong-path uops, seeded per diverted branch. */
class WrongPathSynthesizer
{
  public:
    /**
     * @param params the program the wrong path imitates
     * @param seed determinism root, distinct from the program's
     */
    WrongPathSynthesizer(const ProgramParams &params, std::uint64_t seed);

    /** Begin a wrong path at the given (wrong) fetch target. */
    void redirect(Addr wrong_target);

    /** Produce the next wrong-path uop. */
    MicroOp
    next()
    {
        if (cursor_ == filled_)
            refill();
        const Slot &s = scratch_[cursor_++];
        MicroOp u;
        u.pc = pc_;
        pc_ += 4;
        u.cls = s.cls;
        if (s.cls == UopClass::Branch) {
            u.taken = s.taken;
            u.target = u.pc + 64 +
                       (static_cast<Addr>(s.targetSel) << 6);
            return u;
        }
        u.srcDist[0] = s.srcDist0;
        u.srcDist[1] = s.srcDist1;
        if (s.cls == UopClass::Load || s.cls == UopClass::Store)
            u.memAddr = addrModel_.next(addrRng_);
        return u;
    }

  private:
    /** One pre-generated uop recipe plus the generator state it was
     *  produced from (for exact rewind on redirect). */
    struct Slot
    {
        Rng rngBefore;
        unsigned sinceBranchBefore;
        UopClass cls;
        bool taken;
        std::uint8_t targetSel;
        std::uint16_t srcDist0, srcDist1;
    };

    void refill();
    void generate(Slot &s);

    ProgramParams params_;
    Rng rng_;
    AddressModel addrModel_;
    Rng addrRng_;
    Addr pc_ = 0;
    unsigned sinceBranch_ = 0;  ///< generation-side block position

    /** The scratch arena: sized once, reused for every block and
     *  every squash; no per-squash allocation. */
    static constexpr unsigned kBlock = 32;
    std::array<Slot, kBlock> scratch_;
    unsigned cursor_ = 0;   ///< next slot to consume
    unsigned filled_ = 0;   ///< slots generated in the current block
};

} // namespace percon

#endif // PERCON_TRACE_WRONGPATH_HH
