#include "branch_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace percon {

BiasedBranch::BiasedBranch(double p_taken, const char *kind_label,
                           double burst_mean)
    : pTaken_(p_taken), kind_(kind_label), burstMean_(burst_mean),
      majority_(p_taken >= 0.5),
      deviationRate_(p_taken >= 0.5 ? 1.0 - p_taken : p_taken)
{
}

bool
BiasedBranch::nextOutcome(const HistoryRegister &, Rng &rng)
{
    if (burstMean_ <= 1.0)
        return rng.nextBernoulli(pTaken_);

    if (deviantLeft_ > 0) {
        --deviantLeft_;
        return !majority_;
    }
    // Enter a deviation burst at a rate that keeps the long-run
    // deviation fraction equal to min(p, 1-p).
    double entry = deviationRate_ / burstMean_;
    if (rng.nextBernoulli(entry / (1.0 - deviationRate_))) {
        deviantLeft_ = static_cast<unsigned>(
            rng.nextGeometric(1.0 / burstMean_));
        return !majority_;
    }
    return majority_;
}

LoopBranch::LoopBranch(unsigned mean_trip, bool variable_trip)
    : meanTrip_(mean_trip), variableTrip_(variable_trip)
{
    PERCON_ASSERT(mean_trip >= 2, "loop trip count must be >= 2");
}

unsigned
LoopBranch::drawTrip(Rng &rng)
{
    if (!variableTrip_)
        return meanTrip_;
    // Geometric-ish spread with mean ~= meanTrip_, min 2.
    double p = 1.0 / static_cast<double>(meanTrip_ - 1);
    return 2 + static_cast<unsigned>(rng.nextGeometric(p));
}

bool
LoopBranch::nextOutcome(const HistoryRegister &, Rng &rng)
{
    if (!primed_) {
        remaining_ = drawTrip(rng);
        primed_ = true;
    }
    if (remaining_ > 1) {
        --remaining_;
        return true;  // back-edge taken
    }
    remaining_ = drawTrip(rng);  // loop exit: fall through once
    return false;
}

CorrelatedBranch::CorrelatedBranch(unsigned depth, double noise,
                                   std::uint64_t shape_seed,
                                   unsigned tap_offset,
                                   const char *kind_label)
    : noise_(noise), tapOffset_(tap_offset), kind_(kind_label)
{
    PERCON_ASSERT(depth >= 1 && depth + tap_offset <= 32,
                  "correlation window [%u, %u) out of range",
                  tap_offset, tap_offset + depth);
    Rng shape(shape_seed, "corr-shape");
    weights_.resize(depth);
    for (auto &w : weights_)
        w = static_cast<int>(shape.nextRange(-4, 4));
    // Guarantee at least one live tap so the function is not constant.
    if (std::all_of(weights_.begin(), weights_.end(),
                    [](int w) { return w == 0; })) {
        weights_[shape.nextBelow(depth)] = 1;
    }
    bias_ = static_cast<int>(shape.nextRange(-2, 2));
}

bool
CorrelatedBranch::nextOutcome(const HistoryRegister &ghr, Rng &rng)
{
    int sum = bias_;
    unsigned depth = static_cast<unsigned>(weights_.size());
    for (unsigned i = 0; i < depth; ++i) {
        unsigned tap = tapOffset_ + i;
        if (tap < ghr.length())
            sum += weights_[i] * ghr.signedBit(tap);
    }
    bool outcome = sum >= 0;
    if (rng.nextBernoulli(noise_))
        outcome = !outcome;
    return outcome;
}

ParityBranch::ParityBranch(unsigned k, double noise,
                           std::uint64_t shape_seed)
    : noise_(noise)
{
    PERCON_ASSERT(k >= 1 && k <= 8, "parity width %u out of range", k);
    Rng shape(shape_seed, "parity-shape");
    taps_.resize(k);
    for (auto &t : taps_)
        t = static_cast<unsigned>(shape.nextBelow(10));
}

bool
ParityBranch::nextOutcome(const HistoryRegister &ghr, Rng &rng)
{
    bool outcome = false;
    for (unsigned tap : taps_) {
        if (tap < ghr.length())
            outcome ^= ghr.bit(tap);
    }
    if (rng.nextBernoulli(noise_))
        outcome = !outcome;
    return outcome;
}

DeepPatternBranch::DeepPatternBranch(std::vector<unsigned> taps,
                                     std::vector<bool> triggers,
                                     double noise,
                                     std::uint64_t shape_seed)
    : taps_(std::move(taps)), trigger_(std::move(triggers)),
      noise_(noise)
{
    PERCON_ASSERT(!taps_.empty() && taps_.size() <= 4,
                  "bad tap count %zu", taps_.size());
    PERCON_ASSERT(trigger_.size() == taps_.size(),
                  "trigger/tap size mismatch");
    for (unsigned tap : taps_)
        PERCON_ASSERT(tap < 32, "tap %u out of range", tap);
    Rng shape(shape_seed, "deep-shape");
    majority_ = shape.nextBernoulli(0.5);
}

DeepPatternBranch::DeepPatternBranch(unsigned num_taps, unsigned tap_min,
                                     unsigned tap_max, double noise,
                                     std::uint64_t shape_seed)
    : noise_(noise)
{
    PERCON_ASSERT(num_taps >= 1 && num_taps <= 4,
                  "bad tap count %u", num_taps);
    PERCON_ASSERT(tap_min <= tap_max && tap_max < 32,
                  "bad tap range [%u, %u]", tap_min, tap_max);
    Rng shape(shape_seed, "deep-shape");
    taps_.resize(num_taps);
    trigger_.resize(num_taps);
    for (unsigned t = 0; t < num_taps; ++t) {
        taps_[t] = static_cast<unsigned>(
            shape.nextRange(tap_min, tap_max));
        trigger_[t] = shape.nextBernoulli(0.5);
    }
    majority_ = shape.nextBernoulli(0.5);
}

bool
DeepPatternBranch::nextOutcome(const HistoryRegister &ghr, Rng &rng)
{
    bool triggered = true;
    for (std::size_t t = 0; t < taps_.size(); ++t) {
        if (taps_[t] >= ghr.length() ||
            ghr.bit(taps_[t]) != trigger_[t]) {
            triggered = false;
            break;
        }
    }
    bool outcome = triggered ? !majority_ : majority_;
    if (rng.nextBernoulli(noise_))
        outcome = !outcome;
    return outcome;
}

LocalPatternBranch::LocalPatternBranch(unsigned period, double noise,
                                       std::uint64_t shape_seed)
    : noise_(noise)
{
    PERCON_ASSERT(period >= 2 && period <= 16,
                  "pattern period %u out of range", period);
    Rng shape(shape_seed, "local-shape");
    pattern_.resize(period);
    bool any_taken = false;
    for (std::size_t i = 0; i < pattern_.size(); ++i) {
        pattern_[i] = shape.nextBernoulli(0.6);
        any_taken = any_taken || pattern_[i];
    }
    if (!any_taken)
        pattern_[0] = true;
}

bool
LocalPatternBranch::nextOutcome(const HistoryRegister &, Rng &rng)
{
    bool outcome = pattern_[pos_];
    pos_ = (pos_ + 1) % pattern_.size();
    if (rng.nextBernoulli(noise_))
        outcome = !outcome;
    return outcome;
}

PhasedBranch::PhasedBranch(double p_a, double p_b, double switch_prob)
    : pA_(p_a), pB_(p_b), switchProb_(switch_prob)
{
}

bool
PhasedBranch::nextOutcome(const HistoryRegister &, Rng &rng)
{
    if (rng.nextBernoulli(switchProb_))
        inA_ = !inA_;
    return rng.nextBernoulli(inA_ ? pA_ : pB_);
}

} // namespace percon
