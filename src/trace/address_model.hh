/**
 * @file
 * Synthetic memory-address generation.
 *
 * Each benchmark profile owns an AddressModel that mixes streaming
 * (prefetch-friendly), working-set random (cache-capacity bound), and
 * pointer-chase (latency bound) access patterns. The mix determines
 * how memory-bound the pipeline model is, which in turn scales how
 * much wrong-path work fits under an unresolved branch.
 */

#ifndef PERCON_TRACE_ADDRESS_MODEL_HH
#define PERCON_TRACE_ADDRESS_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace percon {

/** Parameters for an AddressModel. */
struct AddressModelParams
{
    /** Data working-set size in KiB (random component). */
    std::uint64_t workingSetKB = 256;

    /** Fraction of accesses that follow sequential streams. */
    double fracStream = 0.5;

    /** Fraction of accesses that pointer-chase (serially dependent). */
    double fracChase = 0.0;

    /** Number of concurrent sequential streams. */
    unsigned numStreams = 8;

    /** Stride in bytes for the streaming component. */
    unsigned streamStride = 8;

    /** Temporal locality of the random component: fraction of
     *  random accesses that hit a small hot subset (stack, hot
     *  globals) rather than the whole working set. */
    double hotFraction = 0.85;
    std::uint64_t hotSetKB = 16;
};

/** Deterministic generator of load/store effective addresses. */
class AddressModel
{
  public:
    AddressModel(const AddressModelParams &params, std::uint64_t seed);

    /** Next data address (loads and stores share the model). */
    Addr next(Rng &rng);

    const AddressModelParams &params() const { return params_; }

  private:
    Addr nextStream(Rng &rng);
    Addr nextRandom(Rng &rng);
    Addr nextChase();

    AddressModelParams params_;
    std::vector<Addr> streamHeads_;
    std::vector<Addr> chaseRing_;
    std::size_t chasePos_ = 0;
    Addr wsBase_;
    Addr wsBytes_;
};

} // namespace percon

#endif // PERCON_TRACE_ADDRESS_MODEL_HH
