#include "program_model.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string_view>

#include "common/logging.hh"

namespace percon {

namespace {

constexpr Addr kCodeBase = 0x0040'0000ULL;
constexpr Addr kBlockBytes = 256;

/// Category ids used during stratified population assignment.
enum Category : unsigned {
    CatEasy, CatLoop, CatCorr, CatParity, CatLocal,
    CatNoisyCorr, CatHard, CatPhased, CatDeepCorr, kNumCategories,
};

} // namespace

ProgramModel::ProgramModel(const ProgramParams &params)
    : params_(params),
      walkRng_(params.seed, "walk"),
      fillRng_(params.seed, "fill"),
      addrRng_(params.seed, "addr"),
      addrModel_(params.addr, params.seed)
{
    PERCON_ASSERT(params_.numStaticBranches >= 8,
                  "population too small (%u)", params_.numStaticBranches);
    buildPopulation();
    currentBranch_ = popSchedule();
    fillerRemaining_ = drawBlockLen();
    fillerPc_ = branches_[currentBranch_].pc - fillerRemaining_ * 4;
}

ProgramModel::~ProgramModel() = default;

std::size_t
ProgramModel::indexForPc(Addr pc) const
{
    PERCON_ASSERT(pc >= kCodeBase, "pc below code base");
    std::size_t i =
        static_cast<std::size_t>((pc - kCodeBase) / kBlockBytes);
    PERCON_ASSERT(i < branches_.size() && branches_[i].pc == pc,
                  "pc %llx is not a static branch",
                  static_cast<unsigned long long>(pc));
    return i;
}

const StaticBranch &
ProgramModel::staticBranch(std::size_t i) const
{
    PERCON_ASSERT(i < branches_.size(), "static branch %zu out of range", i);
    return branches_[i];
}

void
ProgramModel::buildPopulation()
{
    const unsigned n = params_.numStaticBranches;
    branches_.resize(n);

    // Zipf hotness weights over ranks.
    for (unsigned i = 0; i < n; ++i) {
        branches_[i].weight =
            1.0 / std::pow(static_cast<double>(i + 1), params_.zipfAlpha);
    }

    // Stratified category assignment, done in dynamic-share space:
    // the Zipf weight of a rank is treated as its dynamic execution
    // share, and ranks are handed (hottest first) to the category
    // with the largest absolute share deficit, skipping categories
    // this rank would overshoot. Loop branches re-execute once per
    // iteration, so after assignment their *entry* weight (used by
    // the control-flow walk) is divided by the trip count, making
    // their dynamic share match the assigned weight.
    const double targets[kNumCategories] = {
        params_.mix.easyBiased, params_.mix.loop, params_.mix.correlated,
        params_.mix.parity, params_.mix.local, params_.mix.noisyCorrelated,
        params_.mix.hardBiased, params_.mix.phased,
        params_.mix.deepCorrelated,
    };
    double target_sum = 0.0;
    for (double t : targets)
        target_sum += t;
    PERCON_ASSERT(target_sum > 0.0, "branch mix is all zero");

    double assigned[kNumCategories] = {};
    double cum_assigned = 0.0;

    Rng shape(params_.seed, "population-shape");

    for (unsigned i = 0; i < n; ++i) {
        StaticBranch &b = branches_[i];
        // One 256B block per static branch, with the branch placed at
        // a per-branch offset so predictor index bits see irregular
        // PCs, as real code layouts do (a fixed stride would alias
        // whole columns of every PC-indexed table).
        Addr offset = (mix64(params_.seed ^ (i * 2654435761ULL)) %
                       (kBlockBytes / 4)) *
                      4;
        b.pc = kCodeBase + static_cast<Addr>(i) * kBlockBytes + offset;
        b.noise = Rng(params_.seed ^ (0xb5ad'cb01ULL * (i + 1)), "noise");

        double w = b.weight;
        unsigned best = kNumCategories;
        double best_deficit = -1e300;
        unsigned fallback = 0;
        double fallback_overshoot = 1e300;
        for (unsigned c = 0; c < kNumCategories; ++c) {
            double want = targets[c] / target_sum;
            if (want <= 0.0)
                continue;
            double cum_after = cum_assigned + w;
            double share_after = (assigned[c] + w) / cum_after;
            double overshoot = share_after / want;
            double deficit = want * cum_after - assigned[c];
            if (overshoot <= 1.25 && deficit > best_deficit) {
                best_deficit = deficit;
                best = c;
            }
            if (overshoot < fallback_overshoot) {
                fallback_overshoot = overshoot;
                fallback = c;
            }
        }
        if (best == kNumCategories)
            best = fallback;
        assigned[best] += w;
        cum_assigned += w;
        b.isLoop = best == CatLoop;

        std::uint64_t bseed = params_.seed ^ mix64(i + 0x5151);
        switch (best) {
          case CatEasy: {
            double p = params_.easyBiasMin +
                       shape.nextDouble() *
                           (params_.easyBiasMax - params_.easyBiasMin);
            // Half the easy branches are biased not-taken.
            if (shape.nextBernoulli(0.5))
                p = 1.0 - p;
            b.behavior = std::make_unique<BiasedBranch>(
                p, "biased", params_.easyBurstMean);
            b.takenProb = p;
            break;
          }
          case CatLoop: {
            unsigned trip = static_cast<unsigned>(shape.nextRange(
                params_.loopTripMin, params_.loopTripMax));
            b.behavior = std::make_unique<LoopBranch>(
                trip, shape.nextBernoulli(0.4));
            b.takenProb = 1.0 - 1.0 / trip;
            // Entry weight: one loop entry yields ~trip instances.
            b.weight /= static_cast<double>(trip);
            break;
          }
          case CatCorr: {
            unsigned depth = static_cast<unsigned>(shape.nextRange(
                params_.corrDepthMin, params_.corrDepthMax));
            b.behavior = std::make_unique<CorrelatedBranch>(
                depth, params_.corrNoise, bseed);
            break;
          }
          case CatParity:
            b.behavior = std::make_unique<ParityBranch>(
                params_.parityK, params_.parityNoise, bseed);
            break;
          case CatLocal: {
            unsigned period = static_cast<unsigned>(shape.nextRange(
                params_.localPeriodMin, params_.localPeriodMax));
            b.behavior = std::make_unique<LocalPatternBranch>(
                period, params_.localNoise, bseed);
            break;
          }
          case CatNoisyCorr: {
            unsigned depth = static_cast<unsigned>(shape.nextRange(
                params_.corrDepthMin, params_.corrDepthMax));
            b.behavior = std::make_unique<CorrelatedBranch>(
                depth, params_.noisyCorrNoise, bseed);
            break;
          }
          case CatHard: {
            double p = params_.hardBiasMin +
                       shape.nextDouble() *
                           (params_.hardBiasMax - params_.hardBiasMin);
            if (shape.nextBernoulli(0.5))
                p = 1.0 - p;
            b.behavior = std::make_unique<BiasedBranch>(p, "hard");
            b.takenProb = p;
            break;
          }
          case CatPhased:
            b.behavior = std::make_unique<PhasedBranch>(
                0.85, 0.20, 0.002);
            break;
          case CatDeepCorr:
            // Behaviour is created after grouping, once the schedule
            // surgery below has fixed this branch's driver offsets.
            b.behavior = nullptr;
            break;
          default:
            panic("unreachable category %u", best);
        }

        // Loops branch backwards; everything else hops forward.
        bool backward = best == CatLoop || shape.nextBernoulli(0.2);
        std::int64_t hop = static_cast<std::int64_t>(
            1 + shape.nextBelow(8)) * kBlockBytes;
        b.target = backward && b.pc > static_cast<Addr>(hop)
                       ? b.pc - hop
                       : b.pc + hop;
    }

    // Two-level deterministic schedule (see ProgramParams): build
    // the groups and their fixed weighted-fair internal patterns,
    // then the earliest-deadline heap over group weights.
    //
    // Loop branches and deep-pattern branches go to disjoint groups:
    // a taken loop back-edge re-executes its block, which would
    // shift every history position behind it and smear the stable
    // offsets deep-pattern branches rely on.
    unsigned per_group = std::max(2u, params_.branchesPerGroup);
    unsigned num_groups = std::max(2u, n / per_group);
    groups_.resize(num_groups);

    std::vector<std::vector<std::uint32_t>> members(num_groups);
    std::vector<bool> is_deep(n, false);
    for (unsigned i = 0; i < n; ++i)
        is_deep[i] = branches_[i].behavior == nullptr;

    unsigned loop_rr = 0, deep_rr = 0, other_rr = 0;
    unsigned half = num_groups / 2;
    for (unsigned i = 0; i < n; ++i) {
        unsigned g;
        if (branches_[i].isLoop) {
            g = loop_rr++ % half;                   // first half
        } else if (is_deep[i]) {
            g = half + deep_rr++ % (num_groups - half);  // second half
        } else {
            g = other_rr++ % num_groups;
        }
        members[g].push_back(i);
        groups_[g].weight += branches_[i].weight;
    }

    Rng phase(params_.seed, "schedule-phase");
    for (unsigned g = 0; g < num_groups; ++g) {
        if (members[g].empty()) {
            // Keep the scheduler well-formed for degenerate configs.
            members[g].push_back(0);
            groups_[g].weight += 1e-9;
        }
        // Unroll a weighted-fair sequence over the members into a
        // fixed pattern.
        std::vector<std::pair<double, std::uint32_t>> heap;
        for (std::uint32_t i : members[g]) {
            double period = 1.0 / branches_[i].weight;
            heap.push_back({phase.nextDouble() * period, i});
        }
        std::make_heap(heap.begin(), heap.end(), std::greater<>());
        std::size_t len = 4 * heap.size();
        groups_[g].pattern.reserve(len);
        for (std::size_t k = 0; k < len; ++k) {
            std::pop_heap(heap.begin(), heap.end(), std::greater<>());
            auto &e = heap.back();
            groups_[g].pattern.push_back(e.second);
            e.first += 1.0 / branches_[e.second].weight;
            std::push_heap(heap.begin(), heap.end(), std::greater<>());
        }
    }

    // Driver surgery: every deep-pattern branch deviates from its
    // majority exactly when a *deep* history bit — the outcome of a
    // genuinely varying "driver" branch at a fixed offset before it
    // in the pattern — matches its trigger (the driver's minority
    // direction, so deviations stay rare enough that the predictor's
    // counters remain majority-saturated). The offset is beyond the
    // branch predictor's history reach but within the confidence
    // estimator's, so the predictor mispredicts these instances
    // persistently while a long-history estimator identifies them
    // (the paper's accuracy mechanism). Deep branches are placed
    // *after existing driver occurrences* so the driver's own
    // dynamic share — and with it the benchmark's misprediction
    // budget — is not inflated.
    auto variability_rank = [&](std::uint32_t i) {
        const char *k = branches_[i].behavior
                            ? branches_[i].behavior->kind()
                            : "deep";
        std::string_view kv(k);
        if (kv == "hard") return 6;
        if (kv == "phased") return 5;
        if (kv == "local") return 4;
        if (kv == "correlated") return 3;
        if (kv == "parity") return 3;
        if (kv == "deep") return 2;
        if (kv == "loop") return 1;
        return 0;  // biased: steadiest
    };
    for (unsigned g = half; g < num_groups; ++g) {
        auto &pat = groups_[g].pattern;
        if (pat.empty())
            continue;
        std::size_t len = pat.size();

        // Pick the most outcome-varying non-deep member as driver.
        std::uint32_t driver = members[g].front();
        for (std::uint32_t i : members[g]) {
            if (variability_rank(i) > variability_rank(driver))
                driver = i;
        }

        std::vector<std::size_t> driver_slots;
        for (std::size_t t = 0; t < len; ++t) {
            if (pat[t] == driver)
                driver_slots.push_back(t);
        }
        if (driver_slots.empty()) {
            pat[0] = driver;
            driver_slots.push_back(0);
        }

        // Deep branches only behave as designed at their surgically
        // placed slots; scrub their scheduler-assigned occurrences
        // (replace with the steadiest member) so no instance runs
        // without its driver in position.
        std::uint32_t filler = members[g].front();
        for (std::uint32_t i : members[g]) {
            if (!is_deep[i] && i != driver &&
                variability_rank(i) <= variability_rank(filler))
                filler = i;
        }
        for (std::size_t t = 0; t < len; ++t) {
            if (is_deep[pat[t]])
                pat[t] = filler;
        }

        // Double each driver occurrence: two adjacent, independent
        // driver outcomes give deep branches a two-bit mixed trigger
        // with firing probability p*(1-p) ~= 0.2, low enough that
        // the predictor's counters stay saturated on the majority.
        for (std::size_t t : driver_slots) {
            std::size_t slot2 = (t + 1) % len;
            if (pat[slot2] != driver)
                pat[slot2] = driver;
        }

        bool trigger_val = branches_[driver].takenProb < 0.5;
        unsigned k = 0;
        for (std::uint32_t i : members[g]) {
            if (!is_deep[i])
                continue;
            unsigned span =
                params_.deepCorrTapMax - params_.deepCorrTapMin - 1;
            unsigned gap =
                params_.deepCorrTapMin + 1 + (2 * k) % std::max(1u, span);
            ++k;
            for (std::size_t t : driver_slots) {
                std::size_t slot = (t + 1 + gap) % len;
                if (pat[slot] == driver)
                    continue;  // never delete a driver occurrence
                pat[slot] = i;
            }
            std::uint64_t dseed = params_.seed ^ mix64(i + 0xdeeb);
            branches_[i].behavior = std::make_unique<DeepPatternBranch>(
                std::vector<unsigned>{gap - 1, gap},
                std::vector<bool>{trigger_val, !trigger_val},
                params_.deepCorrNoise, dseed);
        }
    }

    // Any deep branch whose surgery was impossible (not in a pattern
    // anymore, singleton group, ...) falls back to a biased branch.
    for (unsigned i = 0; i < n; ++i) {
        if (!branches_[i].behavior) {
            branches_[i].behavior =
                std::make_unique<BiasedBranch>(0.97, "biased", 5.0);
        }
    }

    groupSchedule_.reserve(num_groups);
    for (unsigned g = 0; g < num_groups; ++g) {
        double period = 1.0 / groups_[g].weight;
        groupSchedule_.push_back({phase.nextDouble() * period, g});
    }
    std::make_heap(groupSchedule_.begin(), groupSchedule_.end(),
                   std::greater<>());
}

std::size_t
ProgramModel::popSchedule()
{
    if (burstRemaining_ == 0) {
        std::pop_heap(groupSchedule_.begin(), groupSchedule_.end(),
                      std::greater<>());
        auto &entry = groupSchedule_.back();
        currentGroup_ = entry.second;
        entry.first += 1.0 / groups_[currentGroup_].weight;
        std::push_heap(groupSchedule_.begin(), groupSchedule_.end(),
                       std::greater<>());
        Group &grp = groups_[currentGroup_];
        grp.cursor = 0;
        burstRemaining_ = static_cast<Count>(params_.burstPasses) *
                          grp.pattern.size();
    }
    Group &grp = groups_[currentGroup_];
    std::size_t pick = grp.pattern[grp.cursor];
    grp.cursor = (grp.cursor + 1) % grp.pattern.size();
    --burstRemaining_;
    return pick;
}

std::size_t
ProgramModel::pickNext(std::size_t from, bool taken)
{
    // A taken loop back-edge re-executes its body: the same branch
    // comes around again, exactly like a real inner loop.
    if (branches_[from].isLoop && taken)
        return from;
    return popSchedule();
}

unsigned
ProgramModel::drawBlockLen()
{
    double mean = std::max(1.0, params_.uopsPerBranch - 1.0);
    double draw = walkRng_.nextGaussian(mean, mean / 3.0);
    long len = std::lround(draw);
    if (len < 1)
        len = 1;
    if (len > 4 * static_cast<long>(mean))
        len = 4 * static_cast<long>(mean);
    return static_cast<unsigned>(len);
}

MicroOp
ProgramModel::makeFiller()
{
    MicroOp u;
    u.pc = fillerPc_;
    fillerPc_ += 4;

    double r = fillRng_.nextDouble();
    const UopMix &m = params_.uopMix;
    if (r < m.load) {
        u.cls = UopClass::Load;
        u.memAddr = addrModel_.next(addrRng_);
        sinceLoad_ = 0;
    } else if (r < m.load + m.store) {
        u.cls = UopClass::Store;
        u.memAddr = addrModel_.next(addrRng_);
    } else if (r < m.load + m.store + m.intAlu) {
        u.cls = UopClass::IntAlu;
    } else if (r < m.load + m.store + m.intAlu + m.intMul) {
        u.cls = UopClass::IntMul;
    } else {
        u.cls = UopClass::FpAlu;
    }

    for (auto &dist : u.srcDist) {
        if (fillRng_.nextBernoulli(params_.depProb)) {
            double p = 1.0 / params_.depMeanDist;
            std::uint64_t d = 1 + fillRng_.nextGeometric(p);
            dist = static_cast<std::uint16_t>(std::min<std::uint64_t>(
                d, 64));
        }
    }
    return u;
}

MicroOp
ProgramModel::makeBranch()
{
    StaticBranch &b = branches_[currentBranch_];

    MicroOp u;
    u.pc = b.pc;
    u.cls = UopClass::Branch;
    u.target = b.target;
    u.taken = b.behavior->nextOutcome(archGhr_, b.noise);

    // Branches often test a recently loaded value; a pending-miss
    // producer delays resolution, exactly the coupling that makes
    // memory-bound codes (mcf) waste so much wrong-path work.
    if (fillRng_.nextBernoulli(params_.branchLoadDepProb) &&
        sinceLoad_ < 64) {
        u.srcDist[0] = static_cast<std::uint16_t>(sinceLoad_ + 1);
    } else if (fillRng_.nextBernoulli(params_.depProb)) {
        double p = 1.0 / params_.depMeanDist;
        std::uint64_t d = 1 + fillRng_.nextGeometric(p);
        u.srcDist[0] =
            static_cast<std::uint16_t>(std::min<std::uint64_t>(d, 64));
    }

    archGhr_.push(u.taken);
    ++b.dynCount;
    if (u.taken)
        ++b.dynTaken;
    return u;
}

MicroOp
ProgramModel::nextBranch(unsigned &skipped)
{
    skipped = fillerRemaining_;
    fillerRemaining_ = 0;

    std::size_t prev = currentBranch_;
    MicroOp br = makeBranch();

    currentBranch_ = pickNext(prev, br.taken);
    fillerRemaining_ = drawBlockLen();
    fillerPc_ = branches_[currentBranch_].pc - fillerRemaining_ * 4;
    return br;
}

MicroOp
ProgramModel::next()
{
    ++sinceLoad_;
    if (fillerRemaining_ > 0) {
        --fillerRemaining_;
        return makeFiller();
    }

    std::size_t prev = currentBranch_;
    MicroOp br = makeBranch();

    currentBranch_ = pickNext(prev, br.taken);
    fillerRemaining_ = drawBlockLen();
    fillerPc_ = branches_[currentBranch_].pc - fillerRemaining_ * 4;
    return br;
}

} // namespace percon
