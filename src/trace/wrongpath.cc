#include "wrongpath.hh"

namespace percon {

WrongPathSynthesizer::WrongPathSynthesizer(const ProgramParams &params,
                                           std::uint64_t seed)
    : params_(params), rng_(seed, "wrongpath"),
      addrModel_(params.addr, seed ^ 0x77ff), addrRng_(seed, "wp-addr")
{
}

void
WrongPathSynthesizer::redirect(Addr wrong_target)
{
    pc_ = wrong_target;
    sinceBranch_ = 0;
}

MicroOp
WrongPathSynthesizer::next()
{
    MicroOp u;
    u.pc = pc_;
    pc_ += 4;
    ++sinceBranch_;

    // End a wrong-path basic block with a branch at roughly the same
    // density as the correct path.
    double branch_prob = 1.0 / params_.uopsPerBranch;
    if (sinceBranch_ >= 2 && rng_.nextBernoulli(branch_prob)) {
        u.cls = UopClass::Branch;
        u.taken = rng_.nextBernoulli(0.5);
        u.target = u.pc + 64 + (rng_.nextBelow(16) << 6);
        sinceBranch_ = 0;
        return u;
    }

    double r = rng_.nextDouble();
    const UopMix &m = params_.uopMix;
    if (r < m.load) {
        u.cls = UopClass::Load;
        u.memAddr = addrModel_.next(addrRng_);
    } else if (r < m.load + m.store) {
        u.cls = UopClass::Store;
        u.memAddr = addrModel_.next(addrRng_);
    } else if (r < m.load + m.store + m.intAlu) {
        u.cls = UopClass::IntAlu;
    } else if (r < m.load + m.store + m.intAlu + m.intMul) {
        u.cls = UopClass::IntMul;
    } else {
        u.cls = UopClass::FpAlu;
    }

    for (auto &dist : u.srcDist) {
        if (rng_.nextBernoulli(params_.depProb)) {
            double p = 1.0 / params_.depMeanDist;
            std::uint64_t d = 1 + rng_.nextGeometric(p);
            dist = static_cast<std::uint16_t>(
                std::min<std::uint64_t>(d, 64));
        }
    }
    return u;
}

} // namespace percon
