#include "wrongpath.hh"

#include <algorithm>

namespace percon {

WrongPathSynthesizer::WrongPathSynthesizer(const ProgramParams &params,
                                           std::uint64_t seed)
    : params_(params), rng_(seed, "wrongpath"),
      addrModel_(params.addr, seed ^ 0x77ff), addrRng_(seed, "wp-addr")
{
}

void
WrongPathSynthesizer::redirect(Addr wrong_target)
{
    // Discard the unconsumed remainder of the current block. The
    // slots ahead of cursor_ consumed RNG draws the per-uop
    // synthesizer would not have made yet, so rewind the generator
    // to the state recorded before the first unconsumed slot. (When
    // the block is fully consumed the live state is already exact.)
    if (cursor_ != filled_) {
        rng_ = scratch_[cursor_].rngBefore;
        sinceBranch_ = scratch_[cursor_].sinceBranchBefore;
    }
    cursor_ = filled_ = 0;
    pc_ = wrong_target;
    sinceBranch_ = 0;
}

void
WrongPathSynthesizer::refill()
{
    for (unsigned i = 0; i < kBlock; ++i) {
        scratch_[i].rngBefore = rng_;
        scratch_[i].sinceBranchBefore = sinceBranch_;
        generate(scratch_[i]);
    }
    cursor_ = 0;
    filled_ = kBlock;
}

void
WrongPathSynthesizer::generate(Slot &s)
{
    ++sinceBranch_;

    // End a wrong-path basic block with a branch at roughly the same
    // density as the correct path.
    double branch_prob = 1.0 / params_.uopsPerBranch;
    if (sinceBranch_ >= 2 && rng_.nextBernoulli(branch_prob)) {
        s.cls = UopClass::Branch;
        s.taken = rng_.nextBernoulli(0.5);
        s.targetSel = static_cast<std::uint8_t>(rng_.nextBelow(16));
        s.srcDist0 = s.srcDist1 = 0;
        sinceBranch_ = 0;
        return;
    }

    s.taken = false;
    s.targetSel = 0;
    double r = rng_.nextDouble();
    const UopMix &m = params_.uopMix;
    if (r < m.load) {
        s.cls = UopClass::Load;
    } else if (r < m.load + m.store) {
        s.cls = UopClass::Store;
    } else if (r < m.load + m.store + m.intAlu) {
        s.cls = UopClass::IntAlu;
    } else if (r < m.load + m.store + m.intAlu + m.intMul) {
        s.cls = UopClass::IntMul;
    } else {
        s.cls = UopClass::FpAlu;
    }

    s.srcDist0 = s.srcDist1 = 0;
    for (std::uint16_t *dist : {&s.srcDist0, &s.srcDist1}) {
        if (rng_.nextBernoulli(params_.depProb)) {
            double p = 1.0 / params_.depMeanDist;
            std::uint64_t d = 1 + rng_.nextGeometric(p);
            *dist = static_cast<std::uint16_t>(
                std::min<std::uint64_t>(d, 64));
        }
    }
}

} // namespace percon
