/**
 * @file
 * Synthetic program model: a statistical CFG that emits a
 * deterministic correct-path uop stream.
 *
 * A program is a population of static conditional branches, each with
 * a behaviour model (branch_model.hh), a hotness weight drawn from a
 * Zipf distribution, and a basic block of filler uops in front of it.
 * The generator walks the population, emitting filler uops followed
 * by the block-ending branch whose outcome comes from its behaviour
 * model evaluated against the architectural global history.
 */

#ifndef PERCON_TRACE_PROGRAM_MODEL_HH
#define PERCON_TRACE_PROGRAM_MODEL_HH

#include <memory>
#include <string>
#include <vector>

#include "common/history.hh"
#include "common/rng.hh"
#include "trace/address_model.hh"
#include "trace/branch_model.hh"
#include "trace/uop.hh"

namespace percon {

/** Dynamic-share mix of branch behaviour categories (sums to ~1). */
struct BranchMix
{
    double easyBiased = 0.40;   ///< strongly biased (p near 1 or 0)
    double loop = 0.25;         ///< loop back-edges
    double correlated = 0.15;   ///< linearly separable global corr.
    double parity = 0.03;       ///< non-separable global corr.
    double local = 0.07;        ///< short local patterns
    double noisyCorrelated = 0.05; ///< correlated with high noise
    double hardBiased = 0.03;   ///< weakly biased (p near 0.5)
    double phased = 0.02;       ///< regime-switching bias

    /** Correlated with history taps beyond the branch predictor's
     *  reach (but within a 32-bit confidence estimator's): the
     *  predictor mispredicts these in identifiable contexts. */
    double deepCorrelated = 0.0;
};

/** Non-branch uop class mix (fractions of filler uops; sums to ~1). */
struct UopMix
{
    double load = 0.28;
    double store = 0.14;
    double intAlu = 0.48;
    double intMul = 0.04;
    double fpAlu = 0.06;
};

/** Full parameter set for one synthetic program. */
struct ProgramParams
{
    std::string name = "synthetic";

    unsigned numStaticBranches = 512;
    double zipfAlpha = 1.1;     ///< hotness skew of the population

    BranchMix mix;
    UopMix uopMix;

    /** Mean non-branch uops between conditional branches. */
    double uopsPerBranch = 7.0;

    /** Control flow: a two-level deterministic schedule. Branches
     *  are partitioned into groups ("functions"); each group has a
     *  fixed weighted-fair internal pattern, and groups are activated
     *  in bursts by an earliest-virtual-deadline scheduler over the
     *  group weights. The burst-local sequence is periodic, so
     *  global-history contexts repeat (pattern-table predictors can
     *  learn, as in real code), while long-run dynamic shares match
     *  the assigned weights exactly. Taken loop back-edges
     *  re-execute their own block. */
    unsigned branchesPerGroup = 24;
    unsigned burstPasses = 3;      ///< pattern repetitions per burst

    // --- behaviour-model parameter ranges -------------------------
    double easyBiasMin = 0.96, easyBiasMax = 0.995;
    double easyBurstMean = 10.0; ///< deviation burst length of easy branches
    unsigned loopTripMin = 4, loopTripMax = 48;
    unsigned corrDepthMin = 2, corrDepthMax = 12;
    double corrNoise = 0.02;
    unsigned parityK = 3;
    double parityNoise = 0.03;
    unsigned localPeriodMin = 3, localPeriodMax = 8;
    double localNoise = 0.03;
    double noisyCorrNoise = 0.15;
    double hardBiasMin = 0.55, hardBiasMax = 0.72;
    unsigned deepCorrTapMin = 17, deepCorrTapMax = 28;
    unsigned deepCorrDepthMin = 1, deepCorrDepthMax = 2;  ///< trigger taps
    double deepCorrNoise = 0.03;

    /** Dependency shaping for filler uops. Chains reset whenever a
     *  uop draws no producers (constants, immediates), which is what
     *  gives real code its instruction-level parallelism. */
    double depProb = 0.4;       ///< P(a source has a producer)
    double depMeanDist = 12.0;  ///< mean producer distance

    /** P(a branch source depends on a recent load). */
    double branchLoadDepProb = 0.45;

    AddressModelParams addr;

    std::uint64_t seed = 1;
};

/** One static branch in the population. */
struct StaticBranch
{
    Addr pc = 0;
    Addr target = 0;
    std::unique_ptr<BranchBehavior> behavior;
    Rng noise{0};
    double weight = 0.0;
    bool isLoop = false;   ///< taken back-edge re-executes the body
    double takenProb = 0.5; ///< build-time estimate of P(taken)
    Count dynCount = 0;
    Count dynTaken = 0;
};

/**
 * The streaming generator. Deterministic for fixed ProgramParams.
 */
class ProgramModel : public WorkloadSource
{
  public:
    explicit ProgramModel(const ProgramParams &params);
    ~ProgramModel() override;

    MicroOp next() override;
    const char *name() const override { return params_.name.c_str(); }

    /**
     * Fast-forward to the next conditional branch without
     * materializing the filler uops in between; @p skipped receives
     * how many fillers were skipped. Used by front-end-only studies
     * where only the branch stream matters but uop counts still do.
     */
    MicroOp nextBranch(unsigned &skipped);

    /** Architectural global history (true outcomes only). */
    const HistoryRegister &archHistory() const { return archGhr_; }

    /** Population introspection, for tests. */
    std::size_t numStaticBranches() const { return branches_.size(); }
    const StaticBranch &staticBranch(std::size_t i) const;

    /** Map a branch PC back to its population index. */
    std::size_t indexForPc(Addr pc) const;

    const ProgramParams &params() const { return params_; }

  private:
    void buildPopulation();
    std::size_t pickNext(std::size_t from, bool taken);
    std::size_t popSchedule();
    MicroOp makeFiller();
    MicroOp makeBranch();
    unsigned drawBlockLen();

    ProgramParams params_;
    Rng walkRng_;   ///< drives control-flow walk + block shapes
    Rng fillRng_;   ///< drives filler uop classes/deps
    Rng addrRng_;   ///< drives address generation

    std::vector<StaticBranch> branches_;

    /** One schedulable group of branches. */
    struct Group
    {
        std::vector<std::uint32_t> pattern;  ///< fixed periodic order
        std::size_t cursor = 0;
        double weight = 0.0;
    };
    std::vector<Group> groups_;

    /** Earliest-virtual-deadline heap over groups. */
    std::vector<std::pair<double, std::uint32_t>> groupSchedule_;
    std::size_t currentGroup_ = 0;
    Count burstRemaining_ = 0;

    AddressModel addrModel_;
    HistoryRegister archGhr_{32};

    std::size_t currentBranch_ = 0;
    unsigned fillerRemaining_ = 0;
    Addr fillerPc_ = 0;
    unsigned sinceLoad_ = 1000;  ///< uops since last emitted load
};

} // namespace percon

#endif // PERCON_TRACE_PROGRAM_MODEL_HH
