#include "uop.hh"

#include "common/logging.hh"

namespace percon {

const char *
uopClassName(UopClass cls)
{
    switch (cls) {
      case UopClass::IntAlu:
        return "IntAlu";
      case UopClass::IntMul:
        return "IntMul";
      case UopClass::FpAlu:
        return "FpAlu";
      case UopClass::Load:
        return "Load";
      case UopClass::Store:
        return "Store";
      case UopClass::Branch:
        return "Branch";
    }
    panic("bad uop class %d", static_cast<int>(cls));
}

} // namespace percon
