/**
 * @file
 * Static-branch behaviour models.
 *
 * Each model decides the architectural outcome of one static branch
 * as a function of its own private state, the program's architectural
 * global history, and a deterministic noise stream. The population
 * mix of these models is what gives each synthetic benchmark its
 * predictability profile (see benchmarks.cc).
 */

#ifndef PERCON_TRACE_BRANCH_MODEL_HH
#define PERCON_TRACE_BRANCH_MODEL_HH

#include <memory>
#include <vector>

#include "common/history.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace percon {

/** Behaviour model for one static conditional branch. */
class BranchBehavior
{
  public:
    virtual ~BranchBehavior() = default;

    /**
     * Architectural outcome of the next dynamic instance.
     *
     * @param ghr architectural global history (most recent in bit 0)
     * @param rng noise stream private to this static branch
     */
    virtual bool nextOutcome(const HistoryRegister &ghr, Rng &rng) = 0;

    /** Model kind, for reports and tests. */
    virtual const char *kind() const = 0;
};

/**
 * Biased branch: follows its majority direction except for
 * deviations. With burst_mean <= 1 deviations are IID Bernoulli
 * (data-dependent "hard" branches); with burst_mean > 1 they come in
 * geometric runs of that mean length, modelling the short phase
 * changes real mostly-one-way branches exhibit. The overall deviation
 * rate is min(p, 1-p) either way.
 */
class BiasedBranch : public BranchBehavior
{
  public:
    /** @param kind_label reported kind, distinguishes the strongly
     *  biased ("biased") and weakly biased ("hard") populations. */
    explicit BiasedBranch(double p_taken,
                          const char *kind_label = "biased",
                          double burst_mean = 1.0);

    bool nextOutcome(const HistoryRegister &, Rng &rng) override;
    const char *kind() const override { return kind_; }

  private:
    double pTaken_;
    const char *kind_;
    double burstMean_;
    bool majority_;
    double deviationRate_;
    unsigned deviantLeft_ = 0;
};

/**
 * Loop back-edge: taken for (trip - 1) iterations, then not-taken
 * once. Trip counts vary geometrically around the mean when
 * variability is enabled, modelling data-dependent loop bounds.
 */
class LoopBranch : public BranchBehavior
{
  public:
    LoopBranch(unsigned mean_trip, bool variable_trip);

    bool nextOutcome(const HistoryRegister &, Rng &rng) override;
    const char *kind() const override { return "loop"; }

  private:
    unsigned drawTrip(Rng &rng);

    unsigned meanTrip_;
    bool variableTrip_;
    unsigned remaining_ = 0;
    bool primed_ = false;
};

/**
 * Linearly separable global-history correlation: the outcome is the
 * sign of a fixed random weighted sum of selected history bits,
 * XOR'd with Bernoulli noise. A perceptron can learn the noiseless
 * function exactly; the noise sets the floor misprediction rate.
 */
class CorrelatedBranch : public BranchBehavior
{
  public:
    /**
     * @param depth number of history bits consulted (1..32)
     * @param noise probability the correlated outcome is flipped
     * @param shape_seed selects the fixed random weight vector
     * @param tap_offset first history position consulted: taps lie
     *        in [tap_offset, tap_offset + depth). Offsets beyond a
     *        predictor's history reach make the branch look noisy to
     *        it while estimators with longer history can still see
     *        the correlation — the "deep correlated" population.
     * @param kind_label reported kind
     */
    CorrelatedBranch(unsigned depth, double noise,
                     std::uint64_t shape_seed, unsigned tap_offset = 0,
                     const char *kind_label = "correlated");

    bool nextOutcome(const HistoryRegister &ghr, Rng &rng) override;
    const char *kind() const override { return kind_; }

  private:
    std::vector<int> weights_;  // index = history position - offset
    int bias_;
    double noise_;
    unsigned tapOffset_;
    const char *kind_;
};

/**
 * Parity of k selected history bits plus noise: NOT linearly
 * separable, so perceptron-style predictors cannot learn it while
 * pattern-table (gshare) predictors can, as long as k is small.
 */
class ParityBranch : public BranchBehavior
{
  public:
    ParityBranch(unsigned k, double noise, std::uint64_t shape_seed);

    bool nextOutcome(const HistoryRegister &ghr, Rng &rng) override;
    const char *kind() const override { return "parity"; }

  private:
    std::vector<unsigned> taps_;
    double noise_;
};

/**
 * Deep-pattern branch: follows a majority direction except when a
 * small conjunction of *deep* history bits (taps at positions beyond
 * a conventional predictor's history reach) matches its trigger
 * pattern, in which case it goes the other way.
 *
 * Because the minority fraction is modest, PC/short-history
 * predictors stay saturated on the majority and mispredict exactly
 * (and stably) in the trigger contexts — which a confidence
 * estimator with a longer history register can identify. This is the
 * mechanism that gives perceptron confidence estimation its high
 * accuracy in the paper, and simultaneously what defeats
 * perceptron_tnt: a direction perceptron *learns* the trigger and
 * predicts those instances confidently — confidently disagreeing
 * with the real (short-history) predictor exactly where it fails.
 */
class DeepPatternBranch : public BranchBehavior
{
  public:
    /**
     * @param num_taps conjunction width (1..4)
     * @param tap_min / tap_max inclusive tap position range
     * @param noise probability any outcome is flipped
     * @param shape_seed selects taps, trigger values and majority
     */
    DeepPatternBranch(unsigned num_taps, unsigned tap_min,
                      unsigned tap_max, double noise,
                      std::uint64_t shape_seed);

    /** Explicit tap positions and trigger values (majority is drawn
     *  from the seed). Used by the program model's schedule surgery,
     *  which guarantees a varying driver branch occupies exactly
     *  these history positions. */
    DeepPatternBranch(std::vector<unsigned> taps,
                      std::vector<bool> triggers, double noise,
                      std::uint64_t shape_seed);

    bool nextOutcome(const HistoryRegister &ghr, Rng &rng) override;
    const char *kind() const override { return "deep"; }

  private:
    std::vector<unsigned> taps_;
    std::vector<bool> trigger_;
    bool majority_;
    double noise_;
};

/**
 * Short repeating local pattern (e.g. TTNTN...) plus noise,
 * modelling control idioms driven by the branch's own history.
 */
class LocalPatternBranch : public BranchBehavior
{
  public:
    LocalPatternBranch(unsigned period, double noise,
                       std::uint64_t shape_seed);

    bool nextOutcome(const HistoryRegister &, Rng &rng) override;
    const char *kind() const override { return "local"; }

  private:
    std::vector<bool> pattern_;
    double noise_;
    std::size_t pos_ = 0;
};

/**
 * Phased branch: the taken-probability itself switches between two
 * regimes with geometric dwell times, modelling input-dependent
 * program phases that defeat slowly-adapting predictors.
 */
class PhasedBranch : public BranchBehavior
{
  public:
    PhasedBranch(double p_a, double p_b, double switch_prob);

    bool nextOutcome(const HistoryRegister &, Rng &rng) override;
    const char *kind() const override { return "phased"; }

  private:
    double pA_, pB_, switchProb_;
    bool inA_ = true;
};

} // namespace percon

#endif // PERCON_TRACE_BRANCH_MODEL_HH
