/**
 * @file
 * Immutable correct-path trace snapshots.
 *
 * The paper's experiments sweep many (machine, policy, estimator)
 * points over a *fixed* workload set, yet live simulation re-runs the
 * whole ProgramModel generator — Zipf walk, behaviour models, filler
 * synthesis — for every run that touches the same workload. A
 * TraceSnapshot materializes one workload's correct-path uop stream
 * exactly once into a packed structure-of-arrays arena; a
 * SnapshotCursor then replays it as a WorkloadSource with nothing but
 * sequential lane reads on the hot path.
 *
 * Contract: replay is bit-identical to live generation. The snapshot
 * is built by running the real generator, the cursor reconstructs the
 * exact MicroOp sequence, and if a consumer runs past the end the
 * cursor falls back to live generation of the tail (ProgramModel is
 * deterministic, so regenerating and discarding size() uops lands on
 * the same stream position). Bit-identity is locked by the golden
 * matrix and the differential suite.
 *
 * Layout (per uop ~17.5 B vs sizeof(MicroOp) == 40):
 *   pc lane        Addr      per uop
 *   class lane     uint8     per uop
 *   srcDist lanes  2x uint16 per uop
 *   memAddr lane   Addr      per memory ordinal (sidecar)
 *   target lane    Addr      per branch ordinal (sidecar)
 *   taken bits     1 bit     per branch ordinal (bitvector)
 * All lanes are carved from one arena allocation.
 */

#ifndef PERCON_TRACE_TRACE_SNAPSHOT_HH
#define PERCON_TRACE_TRACE_SNAPSHOT_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"
#include "trace/program_model.hh"
#include "trace/uop.hh"

namespace percon {

/**
 * One workload's correct-path uop stream, frozen. Immutable after
 * build(), so any number of cursors (sweep jobs, SMT threads) can
 * replay it concurrently without synchronization.
 */
class TraceSnapshot
{
  public:
    /**
     * Generate @p uops correct-path uops from a fresh ProgramModel
     * and pack them. The generator is constructed and discarded here;
     * the snapshot keeps only the lanes and the parameters (needed
     * for the live-tail fallback and for cache keys).
     */
    static std::shared_ptr<const TraceSnapshot>
    build(const ProgramParams &params, Count uops);

    const ProgramParams &params() const { return params_; }

    /** Number of packed uops. */
    Count size() const { return size_; }

    /** Lane footprint in bytes (arena or borrowed mapping). */
    std::size_t memoryBytes() const { return arenaBytes_; }

    Count memOps() const { return numMem_; }
    Count branches() const { return numBranch_; }

    /**
     * True when the lanes are borrowed from an external read-only
     * buffer (an mmap'd store file) instead of an owned arena. A
     * borrowed snapshot replays zero-copy: no allocation, no
     * deserialization — the lane pointers alias the shared page
     * cache, kept alive by backing_.
     */
    bool borrowed() const { return backing_ != nullptr; }

    /** Reconstruct uop @p i given its memory/branch ordinals. The
     *  cursor tracks the ordinals incrementally; random access needs
     *  a scan and is for tests only. */
    MicroOp at(Count i, Count mem_ordinal, Count branch_ordinal) const;

    /**
     * Derived per-branch index backing the branch-directed
     * functional-warm fast path (SnapshotCursor::warmBranches): for
     * branch ordinal b, the uop index it sits at and the memory
     * ordinal in force there. Built lazily with one class-lane scan
     * on first use and shared by every cursor thereafter; borrowed
     * (mmap'd) snapshots build it per process — the on-disk format
     * is untouched.
     */
    struct BranchWarmIndex
    {
        std::unique_ptr<Count[]> uopPos; ///< [numBranch]
        /** Memory ordinal at uop index uopPos[b] (branches consume
         *  no memory ordinal, so this also holds just after it). */
        std::unique_ptr<Count[]> memOrd; ///< [numBranch]
    };
    const BranchWarmIndex &branchWarmIndex() const;

  private:
    friend class SnapshotCursor;
    friend struct SnapshotFileAccess;

    TraceSnapshot() = default;

    ProgramParams params_;
    Count size_ = 0;
    Count numMem_ = 0;
    Count numBranch_ = 0;

    /** One allocation; the typed lane pointers below alias into it,
     *  8-byte lanes first so every lane is naturally aligned. Null
     *  in borrowed mode (the lanes alias backing_ instead). */
    std::unique_ptr<std::byte[]> arena_;
    std::size_t arenaBytes_ = 0;

    /** Keep-alive for borrowed lanes (the mmap'd store file). */
    std::shared_ptr<const void> backing_;

    mutable std::once_flag warmIndexOnce_;
    mutable BranchWarmIndex warmIndex_;

    const Addr *pcLane_ = nullptr;            ///< [size_]
    const Addr *memAddrLane_ = nullptr;       ///< [numMem_]
    const Addr *targetLane_ = nullptr;        ///< [numBranch_]
    const std::uint64_t *takenBits_ = nullptr;///< [ceil(numBranch_/64)]
    const std::uint16_t *srcDist0Lane_ = nullptr; ///< [size_]
    const std::uint16_t *srcDist1Lane_ = nullptr; ///< [size_]
    const std::uint8_t *clsLane_ = nullptr;   ///< [size_]
};

/**
 * Replay cursor over a TraceSnapshot: a WorkloadSource whose next()
 * is a handful of sequential lane loads. Core/SmtCore detect the
 * concrete type and call nextFast() directly, skipping the virtual
 * dispatch on the fetch path.
 *
 * Not thread-safe; give each consumer its own cursor (they share the
 * underlying snapshot).
 */
class SnapshotCursor final : public WorkloadSource
{
  public:
    explicit SnapshotCursor(std::shared_ptr<const TraceSnapshot> snap);
    ~SnapshotCursor() override;

    MicroOp next() override { return nextFast(); }
    const char *name() const override;

    /** The devirtualized hot path. */
    MicroOp
    nextFast()
    {
        const TraceSnapshot &s = *snap_;
        if (pos_ >= s.size_) [[unlikely]]
            return tailNext();
        // Stay ~4 cache lines ahead of the read position on the
        // widest lane; the narrow lanes ride along within the same
        // distance.
        if ((pos_ & 31u) == 0) {
            Count p = pos_ + 32;
            if (p < s.size_) {
                __builtin_prefetch(s.pcLane_ + p);
                __builtin_prefetch(s.srcDist0Lane_ + p);
            }
        }
        MicroOp u;
        u.pc = s.pcLane_[pos_];
        u.cls = static_cast<UopClass>(s.clsLane_[pos_]);
        u.srcDist[0] = s.srcDist0Lane_[pos_];
        u.srcDist[1] = s.srcDist1Lane_[pos_];
        if (u.cls == UopClass::Branch) {
            u.target = s.targetLane_[brPos_];
            u.taken = (s.takenBits_[brPos_ >> 6] >>
                       (brPos_ & 63)) & 1;
            ++brPos_;
        } else if (u.cls == UopClass::Load ||
                   u.cls == UopClass::Store) {
            u.memAddr = s.memAddrLane_[memPos_++];
        }
        ++pos_;
        return u;
    }

    /** Uops left before the packed snapshot is exhausted and next()
     *  would fall back to the live tail. */
    Count
    snapshotRemaining() const
    {
        return pos_ < snap_->size_ ? snap_->size_ - pos_ : 0;
    }

    /**
     * Branch-directed bulk advance for functional warming: invoke
     * @p fn(pc, taken, target) for every branch among the next
     * @p uops uops, then land the cursor exactly where @p uops
     * nextFast() calls would have left it (same uop index, same
     * memory and branch ordinals). Functional warm only ever reads
     * branch uops, so this costs O(branches) index walks plus one
     * bounded class-lane scan for the trailing branch-free gap,
     * instead of O(uops) full uop reconstructions. @p uops must not
     * run past the packed snapshot (see snapshotRemaining()).
     */
    template <typename Fn>
    void
    warmBranches(Count uops, Fn &&fn)
    {
        const TraceSnapshot &s = *snap_;
        PERCON_ASSERT(uops <= snapshotRemaining(),
                      "warmBranches(%llu) runs past the snapshot "
                      "(remaining %llu)",
                      static_cast<unsigned long long>(uops),
                      static_cast<unsigned long long>(
                          snapshotRemaining()));
        const TraceSnapshot::BranchWarmIndex &ix = s.branchWarmIndex();
        const Count end = pos_ + uops;
        Count covered = pos_;    // class-lane scan resumes here
        Count mem = memPos_;
        while (brPos_ < s.numBranch_ && ix.uopPos[brPos_] < end) {
            const Count p = ix.uopPos[brPos_];
            const bool taken =
                (s.takenBits_[brPos_ >> 6] >> (brPos_ & 63)) & 1;
            fn(s.pcLane_[p], taken, s.targetLane_[brPos_]);
            mem = ix.memOrd[brPos_];
            covered = p + 1;
            ++brPos_;
        }
        // Memory ordinal at `end`: pinned by the index at the last
        // branch, counted off the class lane for the short
        // branch-free tail.
        for (Count i = covered; i < end; ++i) {
            const auto cls = static_cast<UopClass>(s.clsLane_[i]);
            if (cls == UopClass::Load || cls == UopClass::Store)
                ++mem;
        }
        memPos_ = mem;
        pos_ = end;
    }

    /** Restart replay from uop 0 (e.g. to reuse a cursor across
     *  runs); drops any live-tail generator. */
    void rewind();

    /**
     * Jump to an absolute replay position in O(1): uop index @p pos
     * with @p mem_pos memory ordinals and @p br_pos branch ordinals
     * already consumed (the counts a warmed-state checkpoint
     * records). The caller is responsible for the ordinals matching
     * the uop index; drops any live-tail generator. @p pos must be
     * within the snapshot.
     */
    void seek(Count pos, Count mem_pos, Count br_pos);

    /** Total uops handed out, snapshot + tail. */
    Count consumed() const { return pos_ + tailConsumed_; }

    /** Current replay position (uop index / mem / branch ordinals),
     *  the triple a warmed-state checkpoint records for seek(). */
    Count pos() const { return pos_; }
    Count memOrdinal() const { return memPos_; }
    Count branchOrdinal() const { return brPos_; }

    /** Uops served by the live-tail fallback (0 in the normal case
     *  where the snapshot was sized to cover the run). */
    Count tailUops() const { return tailConsumed_; }

    const TraceSnapshot &snapshot() const { return *snap_; }

  private:
    MicroOp tailNext();

    std::shared_ptr<const TraceSnapshot> snap_;
    Count pos_ = 0;
    Count memPos_ = 0;
    Count brPos_ = 0;

    /** Live generator picking up exactly where the snapshot ends;
     *  created on first exhaustion, which costs one O(size) replay. */
    std::unique_ptr<ProgramModel> tail_;
    Count tailConsumed_ = 0;
};

/**
 * Source of shared snapshots. Defined here (not in driver/) so core-
 * layer code can accept a provider without depending on the driver
 * library; the driver's SnapshotCache implements it.
 */
class SnapshotProvider
{
  public:
    virtual ~SnapshotProvider() = default;

    /** A snapshot of @p params covering at least @p uops uops. */
    virtual std::shared_ptr<const TraceSnapshot>
    get(const ProgramParams &params, Count uops) = 0;
};

/**
 * Canonical cache key for a full ProgramParams value: every field
 * serialized (doubles at %.17g, so distinct values never alias).
 * Name alone is NOT sufficient — random differential cases reuse
 * names with different parameters.
 */
std::string programKey(const ProgramParams &params);

/**
 * Process-wide default for trace-snapshot replay: true unless the
 * PERCON_TRACE_SNAPSHOT environment variable says off/0/false.
 * Unrecognized values warn and keep the default.
 */
bool traceSnapshotDefault();

} // namespace percon

#endif // PERCON_TRACE_TRACE_SNAPSHOT_HH
