#include "snapshot_file.hh"

#include <array>
#include <cstring>

#include "common/file_util.hh"
#include "common/logging.hh"

namespace percon {

/** Private-access shim: the file layer is the one component allowed
 *  to read the lane pointers directly and to construct borrowed-lane
 *  snapshots. */
struct SnapshotFileAccess
{
    static const TraceSnapshot &ro(const TraceSnapshot &s) { return s; }

    struct Lane
    {
        const void *data;
        std::size_t bytes;
    };

    /** The seven lanes in directory order. */
    static std::array<Lane, 7>
    lanes(const TraceSnapshot &s)
    {
        std::size_t words = (s.numBranch_ + 63) / 64;
        return {{
            {s.pcLane_, s.size_ * sizeof(Addr)},
            {s.memAddrLane_, s.numMem_ * sizeof(Addr)},
            {s.targetLane_, s.numBranch_ * sizeof(Addr)},
            {s.takenBits_, words * sizeof(std::uint64_t)},
            {s.srcDist0Lane_, s.size_ * sizeof(std::uint16_t)},
            {s.srcDist1Lane_, s.size_ * sizeof(std::uint16_t)},
            {s.clsLane_, s.size_ * sizeof(std::uint8_t)},
        }};
    }

    static Count size(const TraceSnapshot &s) { return s.size_; }
    static Count numMem(const TraceSnapshot &s) { return s.numMem_; }
    static Count numBranch(const TraceSnapshot &s) { return s.numBranch_; }

    /** Build a snapshot whose lanes alias @p base (an mmap'd file);
     *  @p keep keeps the mapping alive for the snapshot's lifetime. */
    static std::shared_ptr<const TraceSnapshot>
    makeBorrowed(const ProgramParams &params, Count size, Count num_mem,
                 Count num_branch, const std::byte *base,
                 const std::uint64_t (*dir)[2], std::size_t lane_bytes,
                 std::shared_ptr<const void> keep)
    {
        auto snap = std::shared_ptr<TraceSnapshot>(new TraceSnapshot);
        snap->params_ = params;
        snap->size_ = size;
        snap->numMem_ = num_mem;
        snap->numBranch_ = num_branch;
        snap->arenaBytes_ = lane_bytes;
        snap->backing_ = std::move(keep);
        auto at = [base, dir](std::size_t lane) {
            return base + dir[lane][0];
        };
        snap->pcLane_ = reinterpret_cast<const Addr *>(at(0));
        snap->memAddrLane_ = reinterpret_cast<const Addr *>(at(1));
        snap->targetLane_ = reinterpret_cast<const Addr *>(at(2));
        snap->takenBits_ =
            reinterpret_cast<const std::uint64_t *>(at(3));
        snap->srcDist0Lane_ =
            reinterpret_cast<const std::uint16_t *>(at(4));
        snap->srcDist1Lane_ =
            reinterpret_cast<const std::uint16_t *>(at(5));
        snap->clsLane_ = reinterpret_cast<const std::uint8_t *>(at(6));
        return snap;
    }
};

namespace {

constexpr std::size_t kAlign = 64;
constexpr std::size_t kLaneCount = 7;
constexpr std::size_t kDirOff = 96;
constexpr std::size_t kKeyOff =
    kDirOff + kLaneCount * 2 * sizeof(std::uint64_t);  // 208

// Fixed header word offsets (bytes).
constexpr std::size_t kOffEndian = 8;
constexpr std::size_t kOffFileBytes = 16;
constexpr std::size_t kOffKeyHash = 24;
constexpr std::size_t kOffSize = 32;
constexpr std::size_t kOffNumMem = 40;
constexpr std::size_t kOffNumBranch = 48;
constexpr std::size_t kOffPayloadOff = 56;
constexpr std::size_t kOffPayloadBytes = 64;
constexpr std::size_t kOffPayloadHash = 72;
constexpr std::size_t kOffKeyLen = 80;
constexpr std::size_t kOffLaneCount = 88;

std::size_t
alignUp(std::size_t v)
{
    return (v + kAlign - 1) / kAlign * kAlign;
}

void
putU64(std::string &buf, std::size_t off, std::uint64_t v)
{
    std::memcpy(&buf[off], &v, sizeof v);
}

std::uint64_t
getU64(const std::byte *base, std::size_t off)
{
    std::uint64_t v;
    std::memcpy(&v, base + off, sizeof v);
    return v;
}

} // namespace

std::string
serializeSnapshot(const TraceSnapshot &snap)
{
    auto lanes = SnapshotFileAccess::lanes(snap);
    std::string key = programKey(snap.params());

    // Lay the lanes out 64-byte aligned after the header + key.
    std::uint64_t dir[kLaneCount][2];
    std::size_t payload_off = alignUp(kKeyOff + key.size());
    std::size_t cursor = payload_off;
    for (std::size_t i = 0; i < kLaneCount; ++i) {
        cursor = alignUp(cursor);
        dir[i][0] = cursor;
        dir[i][1] = lanes[i].bytes;
        cursor += lanes[i].bytes;
    }
    std::size_t total = cursor;

    std::string buf(total, '\0');
    std::memcpy(&buf[0], kSnapshotFileMagic, sizeof kSnapshotFileMagic);
    putU64(buf, kOffEndian, kSnapshotEndianTag);
    putU64(buf, kOffFileBytes, total);
    putU64(buf, kOffKeyHash, fnv1a64(key));
    putU64(buf, kOffSize, SnapshotFileAccess::size(snap));
    putU64(buf, kOffNumMem, SnapshotFileAccess::numMem(snap));
    putU64(buf, kOffNumBranch, SnapshotFileAccess::numBranch(snap));
    putU64(buf, kOffPayloadOff, payload_off);
    putU64(buf, kOffPayloadBytes, total - payload_off);
    putU64(buf, kOffKeyLen, key.size());
    putU64(buf, kOffLaneCount, kLaneCount);
    for (std::size_t i = 0; i < kLaneCount; ++i) {
        putU64(buf, kDirOff + i * 16, dir[i][0]);
        putU64(buf, kDirOff + i * 16 + 8, dir[i][1]);
    }
    std::memcpy(&buf[kKeyOff], key.data(), key.size());
    for (std::size_t i = 0; i < kLaneCount; ++i)
        if (lanes[i].bytes)
            std::memcpy(&buf[dir[i][0]], lanes[i].data,
                        lanes[i].bytes);
    putU64(buf, kOffPayloadHash,
           fnv1a64(buf.data() + payload_off, total - payload_off));
    return buf;
}

namespace {

/**
 * Shared validation walk over a mapped file. Fills @p dir and the
 * geometry outputs; returns false with *why set on the first failed
 * check. @p check_payload controls whether the (full-scan) payload
 * hash is verified.
 */
bool
validateImage(const std::byte *base, std::size_t file_bytes,
              const ProgramParams &params, Count uops,
              bool check_payload, std::uint64_t (*dir)[2],
              Count *size, Count *num_mem, Count *num_branch,
              std::size_t *lane_bytes, std::string *why)
{
    auto fail = [why](const char *msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (file_bytes < kKeyOff)
        return fail("file shorter than the fixed header");
    if (std::memcmp(base, kSnapshotFileMagic,
                    sizeof kSnapshotFileMagic) != 0)
        return fail("bad magic / format version");
    if (getU64(base, kOffEndian) != kSnapshotEndianTag)
        return fail("foreign byte order");
    if (getU64(base, kOffFileBytes) != file_bytes)
        return fail("declared size != file size (truncated?)");
    if (getU64(base, kOffLaneCount) != kLaneCount)
        return fail("unexpected lane count");

    std::string key = programKey(params);
    if (getU64(base, kOffKeyHash) != fnv1a64(key))
        return fail("params key hash mismatch");
    std::uint64_t key_len = getU64(base, kOffKeyLen);
    if (key_len != key.size() || kKeyOff + key_len > file_bytes ||
        std::memcmp(base + kKeyOff, key.data(), key.size()) != 0)
        return fail("params key mismatch");

    *size = getU64(base, kOffSize);
    *num_mem = getU64(base, kOffNumMem);
    *num_branch = getU64(base, kOffNumBranch);
    if (*size != uops)
        return fail("uop count mismatch");
    if (*num_mem > *size || *num_branch > *size)
        return fail("implausible ordinal counts");

    std::uint64_t payload_off = getU64(base, kOffPayloadOff);
    std::uint64_t payload_bytes = getU64(base, kOffPayloadBytes);
    if (payload_off % kAlign != 0 || payload_off < kKeyOff + key_len ||
        payload_off > file_bytes ||
        payload_bytes != file_bytes - payload_off)
        return fail("bad payload extent");

    std::size_t expect[kLaneCount] = {
        static_cast<std::size_t>(*size) * sizeof(Addr),
        static_cast<std::size_t>(*num_mem) * sizeof(Addr),
        static_cast<std::size_t>(*num_branch) * sizeof(Addr),
        static_cast<std::size_t>((*num_branch + 63) / 64) *
            sizeof(std::uint64_t),
        static_cast<std::size_t>(*size) * sizeof(std::uint16_t),
        static_cast<std::size_t>(*size) * sizeof(std::uint16_t),
        static_cast<std::size_t>(*size) * sizeof(std::uint8_t),
    };
    std::size_t total_lanes = 0;
    for (std::size_t i = 0; i < kLaneCount; ++i) {
        dir[i][0] = getU64(base, kDirOff + i * 16);
        dir[i][1] = getU64(base, kDirOff + i * 16 + 8);
        if (dir[i][1] != expect[i])
            return fail("lane size does not match geometry");
        if (dir[i][0] % kAlign != 0 || dir[i][0] < payload_off ||
            dir[i][0] > file_bytes || dir[i][1] > file_bytes - dir[i][0])
            return fail("lane extent outside the file");
        total_lanes += expect[i];
    }

    if (check_payload &&
        getU64(base, kOffPayloadHash) !=
            fnv1a64(base + payload_off, payload_bytes))
        return fail("payload hash mismatch (corrupt file)");

    *lane_bytes = total_lanes;
    return true;
}

} // namespace

std::shared_ptr<const TraceSnapshot>
openSnapshotFile(const std::string &path, const ProgramParams &params,
                 Count uops, std::string *why)
{
    auto map = std::make_shared<MappedFile>();
    if (!map->open(path, why))
        return nullptr;

    std::uint64_t dir[kLaneCount][2];
    Count size = 0, num_mem = 0, num_branch = 0;
    std::size_t lane_bytes = 0;
    if (!validateImage(map->data(), map->size(), params, uops,
                       /*check_payload=*/true, dir, &size, &num_mem,
                       &num_branch, &lane_bytes, why))
        return nullptr;

    const std::byte *base = map->data();
    return SnapshotFileAccess::makeBorrowed(
        params, size, num_mem, num_branch, base, dir, lane_bytes,
        std::shared_ptr<const void>(map, map->data()));
}

bool
probeSnapshotFile(const std::string &path, const ProgramParams &params,
                  Count uops)
{
    MappedFile map;
    if (!map.open(path))
        return false;
    std::uint64_t dir[kLaneCount][2];
    Count size = 0, num_mem = 0, num_branch = 0;
    std::size_t lane_bytes = 0;
    return validateImage(map.data(), map.size(), params, uops,
                         /*check_payload=*/false, dir, &size, &num_mem,
                         &num_branch, &lane_bytes, nullptr);
}

} // namespace percon
