#include "snapshot_file.hh"

#include <array>
#include <cstring>

#include "common/file_util.hh"
#include "common/lane_file.hh"
#include "common/logging.hh"

namespace percon {

/** Private-access shim: the file layer is the one component allowed
 *  to read the lane pointers directly and to construct borrowed-lane
 *  snapshots. */
struct SnapshotFileAccess
{
    static const TraceSnapshot &ro(const TraceSnapshot &s) { return s; }

    struct Lane
    {
        const void *data;
        std::size_t bytes;
    };

    /** The seven lanes in directory order. */
    static std::array<Lane, 7>
    lanes(const TraceSnapshot &s)
    {
        std::size_t words = (s.numBranch_ + 63) / 64;
        return {{
            {s.pcLane_, s.size_ * sizeof(Addr)},
            {s.memAddrLane_, s.numMem_ * sizeof(Addr)},
            {s.targetLane_, s.numBranch_ * sizeof(Addr)},
            {s.takenBits_, words * sizeof(std::uint64_t)},
            {s.srcDist0Lane_, s.size_ * sizeof(std::uint16_t)},
            {s.srcDist1Lane_, s.size_ * sizeof(std::uint16_t)},
            {s.clsLane_, s.size_ * sizeof(std::uint8_t)},
        }};
    }

    static Count size(const TraceSnapshot &s) { return s.size_; }
    static Count numMem(const TraceSnapshot &s) { return s.numMem_; }
    static Count numBranch(const TraceSnapshot &s) { return s.numBranch_; }

    /** Build a snapshot whose lanes alias @p base (an mmap'd file);
     *  @p keep keeps the mapping alive for the snapshot's lifetime. */
    static std::shared_ptr<const TraceSnapshot>
    makeBorrowed(const ProgramParams &params, Count size, Count num_mem,
                 Count num_branch, const std::byte *base,
                 const std::uint64_t (*dir)[2], std::size_t lane_bytes,
                 std::shared_ptr<const void> keep)
    {
        auto snap = std::shared_ptr<TraceSnapshot>(new TraceSnapshot);
        snap->params_ = params;
        snap->size_ = size;
        snap->numMem_ = num_mem;
        snap->numBranch_ = num_branch;
        snap->arenaBytes_ = lane_bytes;
        snap->backing_ = std::move(keep);
        auto at = [base, dir](std::size_t lane) {
            return base + dir[lane][0];
        };
        snap->pcLane_ = reinterpret_cast<const Addr *>(at(0));
        snap->memAddrLane_ = reinterpret_cast<const Addr *>(at(1));
        snap->targetLane_ = reinterpret_cast<const Addr *>(at(2));
        snap->takenBits_ =
            reinterpret_cast<const std::uint64_t *>(at(3));
        snap->srcDist0Lane_ =
            reinterpret_cast<const std::uint16_t *>(at(4));
        snap->srcDist1Lane_ =
            reinterpret_cast<const std::uint16_t *>(at(5));
        snap->clsLane_ = reinterpret_cast<const std::uint8_t *>(at(6));
        return snap;
    }
};

namespace {

constexpr std::size_t kLaneCount = 7;

/** PCSNAP01 as an instance of the generic container: 7 lanes, 3
 *  geometry words {uop count, mem-op count, branch count}. With
 *  these parameters the generic offsets land exactly on the original
 *  hand-written layout (payload fields at 56..88, directory at 96,
 *  key at 208), so files written before the generalization stay
 *  readable and new files stay byte-identical. */
const LaneFileLayout &
snapshotLayout()
{
    static const LaneFileLayout layout = {kSnapshotFileMagic,
                                          kLaneCount, 3};
    return layout;
}

/** Geometry semantics for PCSNAP01: validate the counts against the
 *  requested workload length and derive the expected lane sizes. */
LaneGeometryCheck
snapshotGeometryCheck(Count uops)
{
    return [uops](const std::uint64_t *geometry,
                  std::size_t *expect) -> const char * {
        std::uint64_t size = geometry[0];
        std::uint64_t num_mem = geometry[1];
        std::uint64_t num_branch = geometry[2];
        if (size != uops)
            return "uop count mismatch";
        if (num_mem > size || num_branch > size)
            return "implausible ordinal counts";
        expect[0] = static_cast<std::size_t>(size) * sizeof(Addr);
        expect[1] = static_cast<std::size_t>(num_mem) * sizeof(Addr);
        expect[2] = static_cast<std::size_t>(num_branch) * sizeof(Addr);
        expect[3] = static_cast<std::size_t>((num_branch + 63) / 64) *
                    sizeof(std::uint64_t);
        expect[4] = static_cast<std::size_t>(size) * sizeof(std::uint16_t);
        expect[5] = static_cast<std::size_t>(size) * sizeof(std::uint16_t);
        expect[6] = static_cast<std::size_t>(size) * sizeof(std::uint8_t);
        return nullptr;
    };
}

} // namespace

std::string
serializeSnapshot(const TraceSnapshot &snap)
{
    auto lanes = SnapshotFileAccess::lanes(snap);
    std::string key = programKey(snap.params());

    std::uint64_t geometry[3] = {
        SnapshotFileAccess::size(snap),
        SnapshotFileAccess::numMem(snap),
        SnapshotFileAccess::numBranch(snap),
    };
    LaneView views[kLaneCount];
    for (std::size_t i = 0; i < kLaneCount; ++i)
        views[i] = {lanes[i].data, lanes[i].bytes};
    return serializeLaneFile(snapshotLayout(), key, geometry, views);
}

std::shared_ptr<const TraceSnapshot>
openSnapshotFile(const std::string &path, const ProgramParams &params,
                 Count uops, std::string *why)
{
    auto map = std::make_shared<MappedFile>();
    if (!map->open(path, why))
        return nullptr;

    std::uint64_t dir[kLaneCount][2];
    std::uint64_t geometry[3] = {};
    std::size_t lane_bytes = 0;
    if (!validateLaneImage(map->data(), map->size(), snapshotLayout(),
                           programKey(params),
                           snapshotGeometryCheck(uops),
                           /*check_payload=*/true, dir, geometry,
                           &lane_bytes, why))
        return nullptr;

    const std::byte *base = map->data();
    return SnapshotFileAccess::makeBorrowed(
        params, geometry[0], geometry[1], geometry[2], base, dir,
        lane_bytes, std::shared_ptr<const void>(map, map->data()));
}

bool
probeSnapshotFile(const std::string &path, const ProgramParams &params,
                  Count uops)
{
    MappedFile map;
    if (!map.open(path))
        return false;
    std::uint64_t dir[kLaneCount][2];
    std::uint64_t geometry[3] = {};
    std::size_t lane_bytes = 0;
    return validateLaneImage(map.data(), map.size(), snapshotLayout(),
                             programKey(params),
                             snapshotGeometryCheck(uops),
                             /*check_payload=*/false, dir, geometry,
                             &lane_bytes, nullptr);
}

} // namespace percon
