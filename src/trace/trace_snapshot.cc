#include "trace_snapshot.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace percon {

std::shared_ptr<const TraceSnapshot>
TraceSnapshot::build(const ProgramParams &params, Count uops)
{
    // Generate into growable staging vectors first; the mem/branch
    // ordinal counts aren't known until the stream has been walked.
    std::vector<Addr> pcs;
    std::vector<std::uint8_t> classes;
    std::vector<std::uint16_t> src0, src1;
    std::vector<Addr> mem_addrs;
    std::vector<Addr> targets;
    std::vector<std::uint64_t> taken_bits;
    pcs.reserve(uops);
    classes.reserve(uops);
    src0.reserve(uops);
    src1.reserve(uops);

    ProgramModel generator(params);
    Count num_branch = 0;
    for (Count i = 0; i < uops; ++i) {
        MicroOp u = generator.next();
        pcs.push_back(u.pc);
        classes.push_back(static_cast<std::uint8_t>(u.cls));
        src0.push_back(u.srcDist[0]);
        src1.push_back(u.srcDist[1]);
        if (u.cls == UopClass::Branch) {
            targets.push_back(u.target);
            if ((num_branch & 63) == 0)
                taken_bits.push_back(0);
            if (u.taken)
                taken_bits.back() |=
                    std::uint64_t{1} << (num_branch & 63);
            ++num_branch;
        } else if (u.isMem()) {
            mem_addrs.push_back(u.memAddr);
        }
    }

    auto snap = std::shared_ptr<TraceSnapshot>(new TraceSnapshot);
    snap->params_ = params;
    snap->size_ = uops;
    snap->numMem_ = mem_addrs.size();
    snap->numBranch_ = num_branch;

    // Carve the lanes out of one arena, widest first so each lane is
    // naturally aligned without padding bookkeeping.
    std::size_t off_pc = 0;
    std::size_t off_mem = off_pc + pcs.size() * sizeof(Addr);
    std::size_t off_tgt = off_mem + mem_addrs.size() * sizeof(Addr);
    std::size_t off_bits = off_tgt + targets.size() * sizeof(Addr);
    std::size_t off_s0 =
        off_bits + taken_bits.size() * sizeof(std::uint64_t);
    std::size_t off_s1 = off_s0 + src0.size() * sizeof(std::uint16_t);
    std::size_t off_cls = off_s1 + src1.size() * sizeof(std::uint16_t);
    std::size_t total = off_cls + classes.size();

    snap->arena_ = std::make_unique<std::byte[]>(total);
    snap->arenaBytes_ = total;
    std::byte *base = snap->arena_.get();

    auto pack = [base](std::size_t off, const auto &vec) {
        using T = typename std::decay_t<decltype(vec)>::value_type;
        if (!vec.empty())
            std::memcpy(base + off, vec.data(),
                        vec.size() * sizeof(T));
        return reinterpret_cast<const T *>(base + off);
    };
    snap->pcLane_ = pack(off_pc, pcs);
    snap->memAddrLane_ = pack(off_mem, mem_addrs);
    snap->targetLane_ = pack(off_tgt, targets);
    snap->takenBits_ = pack(off_bits, taken_bits);
    snap->srcDist0Lane_ = pack(off_s0, src0);
    snap->srcDist1Lane_ = pack(off_s1, src1);
    snap->clsLane_ = pack(off_cls, classes);
    return snap;
}

const TraceSnapshot::BranchWarmIndex &
TraceSnapshot::branchWarmIndex() const
{
    std::call_once(warmIndexOnce_, [this] {
        auto uop_pos = std::make_unique<Count[]>(
            numBranch_ ? numBranch_ : 1);
        auto mem_ord = std::make_unique<Count[]>(
            numBranch_ ? numBranch_ : 1);
        Count mem = 0;
        Count b = 0;
        for (Count i = 0; i < size_; ++i) {
            const auto cls = static_cast<UopClass>(clsLane_[i]);
            if (cls == UopClass::Branch) {
                uop_pos[b] = i;
                mem_ord[b] = mem;
                ++b;
            } else if (cls == UopClass::Load ||
                       cls == UopClass::Store) {
                ++mem;
            }
        }
        PERCON_ASSERT(b == numBranch_,
                      "class lane disagrees with the branch count "
                      "(%llu vs %llu)",
                      static_cast<unsigned long long>(b),
                      static_cast<unsigned long long>(numBranch_));
        warmIndex_.uopPos = std::move(uop_pos);
        warmIndex_.memOrd = std::move(mem_ord);
    });
    return warmIndex_;
}

MicroOp
TraceSnapshot::at(Count i, Count mem_ordinal, Count branch_ordinal) const
{
    PERCON_ASSERT(i < size_, "snapshot index %llu out of range",
                  static_cast<unsigned long long>(i));
    MicroOp u;
    u.pc = pcLane_[i];
    u.cls = static_cast<UopClass>(clsLane_[i]);
    u.srcDist[0] = srcDist0Lane_[i];
    u.srcDist[1] = srcDist1Lane_[i];
    if (u.cls == UopClass::Branch) {
        PERCON_ASSERT(branch_ordinal < numBranch_, "branch ordinal");
        u.target = targetLane_[branch_ordinal];
        u.taken = (takenBits_[branch_ordinal >> 6] >>
                   (branch_ordinal & 63)) & 1;
    } else if (u.isMem()) {
        PERCON_ASSERT(mem_ordinal < numMem_, "mem ordinal");
        u.memAddr = memAddrLane_[mem_ordinal];
    }
    return u;
}

SnapshotCursor::SnapshotCursor(
    std::shared_ptr<const TraceSnapshot> snap)
    : snap_(std::move(snap))
{
    PERCON_ASSERT(snap_ != nullptr, "SnapshotCursor needs a snapshot");
}

SnapshotCursor::~SnapshotCursor() = default;

const char *
SnapshotCursor::name() const
{
    return snap_->params_.name.c_str();
}

void
SnapshotCursor::rewind()
{
    pos_ = 0;
    memPos_ = 0;
    brPos_ = 0;
    tail_.reset();
    tailConsumed_ = 0;
}

void
SnapshotCursor::seek(Count pos, Count mem_pos, Count br_pos)
{
    PERCON_ASSERT(pos <= snap_->size_,
                  "seek position %llu beyond snapshot size %llu",
                  static_cast<unsigned long long>(pos),
                  static_cast<unsigned long long>(snap_->size_));
    PERCON_ASSERT(mem_pos <= snap_->numMem_, "mem ordinal out of range");
    PERCON_ASSERT(br_pos <= snap_->numBranch_,
                  "branch ordinal out of range");
    pos_ = pos;
    memPos_ = mem_pos;
    brPos_ = br_pos;
    tail_.reset();
    tailConsumed_ = 0;
}

MicroOp
SnapshotCursor::tailNext()
{
    if (!tail_) {
        // Rare: the snapshot was sized too small for this run.
        // ProgramModel is deterministic, so a fresh generator wound
        // forward past the packed prefix continues the exact stream.
        warn("trace snapshot '%s' exhausted after %llu uops; "
             "switching to live generation for the tail",
             snap_->params_.name.c_str(),
             static_cast<unsigned long long>(snap_->size_));
        tail_ = std::make_unique<ProgramModel>(snap_->params_);
        for (Count i = 0; i < snap_->size_; ++i)
            tail_->next();
    }
    ++tailConsumed_;
    return tail_->next();
}

std::string
programKey(const ProgramParams &p)
{
    std::string key;
    key.reserve(768);
    key += p.name;
    char buf[64];
    auto add_u = [&](unsigned long long v) {
        std::snprintf(buf, sizeof buf, "/%llu", v);
        key += buf;
    };
    auto add_d = [&](double v) {
        std::snprintf(buf, sizeof buf, "/%.17g", v);
        key += buf;
    };
    add_u(p.numStaticBranches);
    add_d(p.zipfAlpha);
    add_d(p.mix.easyBiased);
    add_d(p.mix.loop);
    add_d(p.mix.correlated);
    add_d(p.mix.parity);
    add_d(p.mix.local);
    add_d(p.mix.noisyCorrelated);
    add_d(p.mix.hardBiased);
    add_d(p.mix.phased);
    add_d(p.mix.deepCorrelated);
    add_d(p.uopMix.load);
    add_d(p.uopMix.store);
    add_d(p.uopMix.intAlu);
    add_d(p.uopMix.intMul);
    add_d(p.uopMix.fpAlu);
    add_d(p.uopsPerBranch);
    add_u(p.branchesPerGroup);
    add_u(p.burstPasses);
    add_d(p.easyBiasMin);
    add_d(p.easyBiasMax);
    add_d(p.easyBurstMean);
    add_u(p.loopTripMin);
    add_u(p.loopTripMax);
    add_u(p.corrDepthMin);
    add_u(p.corrDepthMax);
    add_d(p.corrNoise);
    add_u(p.parityK);
    add_d(p.parityNoise);
    add_u(p.localPeriodMin);
    add_u(p.localPeriodMax);
    add_d(p.localNoise);
    add_d(p.noisyCorrNoise);
    add_d(p.hardBiasMin);
    add_d(p.hardBiasMax);
    add_u(p.deepCorrTapMin);
    add_u(p.deepCorrTapMax);
    add_u(p.deepCorrDepthMin);
    add_u(p.deepCorrDepthMax);
    add_d(p.deepCorrNoise);
    add_d(p.depProb);
    add_d(p.depMeanDist);
    add_d(p.branchLoadDepProb);
    add_u(p.addr.workingSetKB);
    add_d(p.addr.fracStream);
    add_d(p.addr.fracChase);
    add_u(p.addr.numStreams);
    add_u(p.addr.streamStride);
    add_d(p.addr.hotFraction);
    add_u(p.addr.hotSetKB);
    add_u(p.seed);
    return key;
}

bool
traceSnapshotDefault()
{
    const char *v = std::getenv("PERCON_TRACE_SNAPSHOT");
    if (!v || !*v)
        return true;
    std::string s(v);
    if (s == "on" || s == "1" || s == "true")
        return true;
    if (s == "off" || s == "0" || s == "false")
        return false;
    warn("PERCON_TRACE_SNAPSHOT='%s' not understood "
         "(want on|off); keeping the default (on)", v);
    return true;
}

} // namespace percon
