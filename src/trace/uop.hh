/**
 * @file
 * The micro-op record: the unit of work flowing through traces and
 * the pipeline model, mirroring the paper's IA32-uop accounting.
 */

#ifndef PERCON_TRACE_UOP_HH
#define PERCON_TRACE_UOP_HH

#include <cstdint>

#include "common/types.hh"

namespace percon {

/** Execution class of a micro-op; selects scheduler and latency. */
enum class UopClass : std::uint8_t {
    IntAlu,   ///< single-cycle integer op
    IntMul,   ///< multi-cycle integer op (mul/div)
    FpAlu,    ///< floating-point op
    Load,     ///< memory read
    Store,    ///< memory write
    Branch,   ///< conditional branch (the only control uop we model)
};

/** Human-readable class name. */
const char *uopClassName(UopClass cls);

/**
 * One dynamic micro-op.
 *
 * Dependencies are encoded as distances: srcDist[k] == d means source
 * operand k is produced by the uop d positions earlier in program
 * order (0 = no dependency). This keeps traces self-contained without
 * a register file model.
 */
struct MicroOp
{
    Addr pc = 0;
    UopClass cls = UopClass::IntAlu;

    /** Producer distances for up to two sources (0 = none). */
    std::uint16_t srcDist[2] = {0, 0};

    /** Effective address for loads/stores. */
    Addr memAddr = 0;

    /** Branch: architectural outcome (true = taken). */
    bool taken = false;

    /** Branch: taken-path target (fall-through is pc + 4). */
    Addr target = 0;

    bool isBranch() const { return cls == UopClass::Branch; }
    bool isLoad() const { return cls == UopClass::Load; }
    bool isStore() const { return cls == UopClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
};

/**
 * Streaming source of correct-path micro-ops.
 *
 * Implementations must be deterministic: the i-th call to next()
 * always yields the same uop for the same construction parameters.
 */
class WorkloadSource
{
  public:
    virtual ~WorkloadSource() = default;

    /** Produce the next correct-path uop. */
    virtual MicroOp next() = 0;

    /** Name for reports. */
    virtual const char *name() const = 0;
};

} // namespace percon

#endif // PERCON_TRACE_UOP_HH
