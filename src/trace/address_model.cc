#include "address_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace percon {

namespace {

/// Data segment bases, separated so access kinds never alias.
constexpr Addr kStreamBase = 0x1000'0000ULL;
constexpr Addr kHeapBase = 0x4000'0000ULL;
constexpr Addr kChaseBase = 0x8000'0000ULL;

} // namespace

AddressModel::AddressModel(const AddressModelParams &params,
                           std::uint64_t seed)
    : params_(params),
      wsBase_(kHeapBase + (mix64(seed) & 0x3ff'fff8)),
      wsBytes_(params.workingSetKB * 1024)
{
    PERCON_ASSERT(params.workingSetKB >= 1, "empty working set");
    PERCON_ASSERT(params.numStreams >= 1, "need at least one stream");

    Rng init(seed, "addr-init");
    streamHeads_.resize(params.numStreams);
    for (std::size_t i = 0; i < streamHeads_.size(); ++i) {
        // Seed-dependent start offsets keep distinct workloads (and
        // the wrong-path synthesizer) off each other's lines.
        streamHeads_[i] =
            kStreamBase + (i << 20) + (mix64(seed ^ i) & 0xfff8);
    }

    // A shuffled ring of cache-line-spaced slots to pointer-chase.
    std::size_t chase_slots =
        std::max<std::size_t>(16, wsBytes_ / 64 / 4);
    chase_slots = std::min<std::size_t>(chase_slots, 1 << 16);
    chaseRing_.resize(chase_slots);
    for (std::size_t i = 0; i < chase_slots; ++i)
        chaseRing_[i] = kChaseBase + i * 64;
    for (std::size_t i = chase_slots - 1; i > 0; --i) {
        std::size_t j = init.nextBelow(i + 1);
        std::swap(chaseRing_[i], chaseRing_[j]);
    }
}

Addr
AddressModel::nextStream(Rng &rng)
{
    std::size_t s = rng.nextBelow(streamHeads_.size());
    streamHeads_[s] += params_.streamStride;
    return streamHeads_[s];
}

Addr
AddressModel::nextRandom(Rng &rng)
{
    std::uint64_t hot_bytes = params_.hotSetKB * 1024;
    if (hot_bytes < wsBytes_ && rng.nextBernoulli(params_.hotFraction)) {
        Addr offset = rng.nextBelow(hot_bytes) & ~7ULL;
        return wsBase_ + offset;
    }
    Addr offset = rng.nextBelow(wsBytes_) & ~7ULL;
    return wsBase_ + offset;
}

Addr
AddressModel::nextChase()
{
    Addr a = chaseRing_[chasePos_];
    chasePos_ = (chasePos_ + 1) % chaseRing_.size();
    return a;
}

Addr
AddressModel::next(Rng &rng)
{
    double u = rng.nextDouble();
    if (u < params_.fracStream)
        return nextStream(rng);
    if (u < params_.fracStream + params_.fracChase)
        return nextChase();
    return nextRandom(rng);
}

} // namespace percon
