/**
 * @file
 * Deterministic generators for verification workloads.
 *
 * One seed fully determines a DiffCase: machine geometry, speculation
 * policy, predictor/estimator choice and synthetic-program shape are
 * all drawn from a single Rng stream, so the property-based
 * differential suite is reproducible run to run and every failing
 * case can be replayed from its seed alone.
 *
 * The edge-program helpers produce the boundary workloads the trace
 * layer's unit tests and the differential suite share: a
 * branch-starved program (long filler stretches, perfectly biased
 * branches), an all-taken loop nest, and a branch-dense program with
 * almost no filler.
 */

#ifndef PERCON_VERIFY_TRACE_GEN_HH
#define PERCON_VERIFY_TRACE_GEN_HH

#include <cstdint>
#include <vector>

#include "verify/differential.hh"

namespace percon {

/** Fully random differential case; deterministic in @p seed. */
DiffCase randomCase(std::uint64_t seed);

/** Branches are rare and near-perfectly biased: exercises long
 *  filler-only stretches and idle-cycle skipping over empty
 *  front ends. */
ProgramParams branchSparseProgram(std::uint64_t seed);

/** Every branch is a long-trip loop back-edge: the outcome stream is
 *  almost entirely taken. */
ProgramParams allTakenLoopProgram(std::uint64_t seed);

/** Almost every uop is a branch: maximal pressure on the branch
 *  payload paths (prediction, confidence, history recovery). */
ProgramParams branchDenseProgram(std::uint64_t seed);

/** The edge programs above wrapped as deterministic DiffCases on the
 *  paper's baseline machine, with and without gating. */
std::vector<DiffCase> edgeCases();

} // namespace percon

#endif // PERCON_VERIFY_TRACE_GEN_HH
