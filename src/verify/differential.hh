/**
 * @file
 * Differential harness: run the naive OracleCore and the optimized
 * production Core on identically seeded inputs and diff every
 * CoreStats counter.
 *
 * Both models get their own freshly constructed stack (program
 * model, wrong-path synthesizer, predictor, estimator, caches) built
 * from the same DiffCase, so any divergence is a semantic difference
 * between the two core implementations — not shared mutable state.
 * The production run additionally carries an InvariantAuditor, so
 * one differential run checks both pillars at once: bit-identical
 * statistics and zero invariant violations.
 */

#ifndef PERCON_VERIFY_DIFFERENTIAL_HH
#define PERCON_VERIFY_DIFFERENTIAL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bpred/prediction_trace.hh"
#include "confidence/confidence_estimator.hh"
#include "trace/program_model.hh"
#include "trace/trace_snapshot.hh"
#include "uarch/core_stats.hh"
#include "uarch/pipeline_config.hh"
#include "verify/invariant_auditor.hh"

namespace percon {

/** One fully specified differential experiment. */
struct DiffCase
{
    std::string name = "case";

    ProgramParams program;
    PipelineConfig config;
    SpeculationControl spec;

    std::string predictor = "bimodal-gshare";
    /** Estimator factory key; empty runs without an estimator. */
    std::string estimator;
    /** Custom estimator builder (e.g. non-default lambda); called
     *  once per model build. Overrides `estimator` when set. */
    std::function<std::unique_ptr<ConfidenceEstimator>()>
        makeEstimator;

    Count warmupUops = 2'000;
    Count measureUops = 8'000;
    std::uint64_t wrongPathSeed = 0xdead;

    /** Arm Core::setTestFastForwardDefect on the production side
     *  (negative testing: the diff must then be non-empty). */
    bool injectDefect = false;

    /** Feed the production core from a SnapshotCursor while the
     *  oracle stays on live generation — the diff then directly
     *  proves snapshot replay is bit-identical to the generator.
     *  Defaults to the process-wide snapshot setting so the whole
     *  differential suite exercises whichever mode is active. */
    bool traceSnapshot = traceSnapshotDefault();

    /** Run the production side with the prediction-stream tier: a
     *  first live production run records the predictor/BTB outcome
     *  stream, then a completely fresh production stack replays it.
     *  The REPLAY run's stats are reported as DiffResult::core, so
     *  the diff directly proves replayed prediction streams are
     *  bit-identical to the oracle. Defaults to the process-wide
     *  prediction-snapshot setting (PERCON_PRED_SNAPSHOT), matching
     *  how traceSnapshot picks up its env default. */
    bool predSnapshot = predSnapshotDefault();
};

/** One diverging CoreStats counter. */
struct FieldDiff
{
    std::string field;
    std::uint64_t oracle = 0;
    std::uint64_t core = 0;
};

struct DiffResult
{
    CoreStats oracle;
    CoreStats core;
    std::vector<FieldDiff> diffs;
    /** Report of the InvariantAuditor attached to the production
     *  core for the whole run (warmup included). */
    AuditReport audit;

    bool identical() const { return diffs.empty(); }
    bool clean() const { return identical() && audit.clean(); }

    /** Human-readable verdict listing the first few diverging
     *  fields, for test failure messages. */
    std::string summary() const;
};

/** Diff every integer counter (and the confidence matrix cells) of
 *  two CoreStats; empty result means bit-identical. */
std::vector<FieldDiff> diffStats(const CoreStats &oracle,
                                 const CoreStats &core);

/** Build both stacks from @p c, run warmup + measurement on each,
 *  and return the full comparison. */
DiffResult runDifferential(const DiffCase &c);

} // namespace percon

#endif // PERCON_VERIFY_DIFFERENTIAL_HH
