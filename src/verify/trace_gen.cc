#include "trace_gen.hh"

#include "bpred/factory.hh"
#include "common/rng.hh"
#include "confidence/factory.hh"

namespace percon {

namespace {

PipelineConfig
randomMachine(Rng &rng)
{
    PipelineConfig c;
    c.width = 1u << rng.nextRange(1, 3);  // 2..8
    c.frontEndDepth = static_cast<unsigned>(rng.nextRange(4, 30));
    c.backEndDepth = static_cast<unsigned>(rng.nextRange(2, 30));
    c.robSize = static_cast<unsigned>(rng.nextRange(32, 256));
    c.loadBuffers = static_cast<unsigned>(rng.nextRange(8, 64));
    c.storeBuffers = static_cast<unsigned>(rng.nextRange(8, 48));
    c.schedInt = static_cast<unsigned>(rng.nextRange(8, 64));
    c.schedMem = static_cast<unsigned>(rng.nextRange(8, 48));
    c.schedFp = static_cast<unsigned>(rng.nextRange(8, 64));
    c.unitsInt = static_cast<unsigned>(rng.nextRange(1, 6));
    c.unitsMem = static_cast<unsigned>(rng.nextRange(1, 4));
    c.unitsFp = static_cast<unsigned>(rng.nextRange(1, 2));
    c.traceCacheEnabled = rng.nextBernoulli(0.7);
    c.btbEnabled = rng.nextBernoulli(0.7);
    return c;
}

SpeculationControl
randomPolicy(Rng &rng)
{
    SpeculationControl sc;
    sc.gateThreshold = static_cast<unsigned>(rng.nextRange(0, 3));
    sc.reversalEnabled = rng.nextBernoulli(0.4);
    sc.confidenceLatency = static_cast<unsigned>(rng.nextRange(0, 12));
    if (sc.gateThreshold > 0) {
        sc.oracleGating = rng.nextBernoulli(0.2);
        if (rng.nextBernoulli(0.25))
            sc.throttleWidth =
                static_cast<unsigned>(rng.nextRange(1, 2));
    }
    return sc;
}

ProgramParams
randomProgram(Rng &rng, std::uint64_t seed)
{
    ProgramParams p;
    p.name = "diff-" + std::to_string(seed);
    p.seed = mix64(seed ^ 0x70726f67);
    p.numStaticBranches =
        static_cast<unsigned>(rng.nextRange(32, 160));
    p.branchesPerGroup = static_cast<unsigned>(rng.nextRange(8, 24));
    p.burstPasses = static_cast<unsigned>(rng.nextRange(1, 4));
    p.uopsPerBranch = static_cast<double>(rng.nextRange(2, 12));
    p.zipfAlpha = 0.8 + 0.6 * rng.nextDouble();

    // Occasionally skew the behaviour mix toward one category so the
    // sweep reaches flush-heavy and flush-free regimes alike.
    switch (rng.nextBelow(4)) {
      case 0:  // default mix
        break;
      case 1:  // loopy
        p.mix.loop = 0.7;
        p.mix.easyBiased = 0.2;
        p.mix.correlated = 0.1;
        p.mix.parity = p.mix.local = p.mix.noisyCorrelated = 0.0;
        p.mix.hardBiased = p.mix.phased = 0.0;
        break;
      case 2:  // hard to predict -> many flushes and gate trips
        p.mix.hardBiased = 0.4;
        p.mix.noisyCorrelated = 0.3;
        p.mix.easyBiased = 0.2;
        p.mix.loop = 0.1;
        p.mix.correlated = p.mix.parity = p.mix.local = 0.0;
        p.mix.phased = 0.0;
        break;
      default:  // near-perfectly predictable
        p.mix.easyBiased = 0.9;
        p.mix.loop = 0.1;
        p.mix.correlated = p.mix.parity = p.mix.local = 0.0;
        p.mix.noisyCorrelated = p.mix.hardBiased = 0.0;
        p.mix.phased = 0.0;
        break;
    }
    return p;
}

} // namespace

DiffCase
randomCase(std::uint64_t seed)
{
    Rng rng(seed, "diffcase");
    DiffCase c;
    c.name = "random-" + std::to_string(seed);
    c.program = randomProgram(rng, seed);
    c.config = randomMachine(rng);
    c.spec = randomPolicy(rng);

    const auto &predictors = predictorNames();
    c.predictor = predictors[rng.nextBelow(predictors.size())];

    bool needs_estimator =
        (c.spec.gateThreshold > 0 && !c.spec.oracleGating) ||
        c.spec.reversalEnabled;
    if (needs_estimator || rng.nextBernoulli(0.5)) {
        const auto &estimators = estimatorNames();
        c.estimator = estimators[rng.nextBelow(estimators.size())];
    }

    c.warmupUops = 2'000;
    c.measureUops = 8'000;
    c.wrongPathSeed = mix64(seed ^ 0x77726f6e67);
    return c;
}

ProgramParams
branchSparseProgram(std::uint64_t seed)
{
    ProgramParams p;
    p.name = "branch-sparse";
    p.seed = seed;
    p.numStaticBranches = 16;
    p.branchesPerGroup = 8;
    p.uopsPerBranch = 40.0;
    p.mix = BranchMix{};
    p.mix.easyBiased = 1.0;
    p.mix.loop = p.mix.correlated = p.mix.parity = 0.0;
    p.mix.local = p.mix.noisyCorrelated = 0.0;
    p.mix.hardBiased = p.mix.phased = 0.0;
    p.easyBiasMin = 0.999;
    p.easyBiasMax = 0.9999;
    return p;
}

ProgramParams
allTakenLoopProgram(std::uint64_t seed)
{
    ProgramParams p;
    p.name = "all-taken-loops";
    p.seed = seed;
    p.numStaticBranches = 16;
    p.branchesPerGroup = 8;
    p.uopsPerBranch = 3.0;
    p.mix = BranchMix{};
    p.mix.loop = 1.0;
    p.mix.easyBiased = p.mix.correlated = p.mix.parity = 0.0;
    p.mix.local = p.mix.noisyCorrelated = 0.0;
    p.mix.hardBiased = p.mix.phased = 0.0;
    p.loopTripMin = 200;
    p.loopTripMax = 400;
    return p;
}

ProgramParams
branchDenseProgram(std::uint64_t seed)
{
    ProgramParams p;
    p.name = "branch-dense";
    p.seed = seed;
    p.numStaticBranches = 64;
    p.branchesPerGroup = 16;
    p.uopsPerBranch = 1.0;
    p.mix.hardBiased = 0.2;   // keep some mispredicts in the stream
    p.mix.easyBiased = 0.3;
    return p;
}

std::vector<DiffCase>
edgeCases()
{
    std::vector<DiffCase> cases;
    auto add = [&](const ProgramParams &prog, unsigned gate,
                   const char *suffix) {
        DiffCase c;
        c.name = prog.name + std::string("-") + suffix;
        c.program = prog;
        c.config = PipelineConfig::deep40x4();
        c.spec.gateThreshold = gate;
        if (gate > 0) {
            c.spec.confidenceLatency = 4;
            c.estimator = "jrs";
        }
        cases.push_back(std::move(c));
    };

    for (unsigned gate : {0u, 2u}) {
        const char *suffix = gate == 0 ? "ungated" : "gated";
        add(branchSparseProgram(11), gate, suffix);
        add(allTakenLoopProgram(12), gate, suffix);
        add(branchDenseProgram(13), gate, suffix);
    }
    return cases;
}

} // namespace percon
