/**
 * @file
 * Runtime invariant auditor for the core models.
 *
 * Attach an InvariantAuditor to a Core (Core::setAuditor) or one per
 * SmtCore thread (SmtCore::setAuditor) and it cross-checks the
 * conservation laws the paper's measurements rest on at every
 * end-of-cycle checkpoint:
 *
 *  - uop conservation: every fetched uop is eventually retired,
 *    squashed, or still in flight — and the counts the auditor
 *    derives from the event stream match the CoreStats counters;
 *  - executed = retired + wrong-path executed;
 *  - the gating counter equals the number of in-flight branches
 *    currently marked low-confidence (window scan);
 *  - sequence numbers are strictly monotonic at fetch, and the ROB
 *    is always the dispatched prefix of the in-flight window;
 *  - per-category fetch/dispatch stall cycles never exceed total
 *    cycles (each cycle has at most one stall cause per stage) —
 *    the check that catches bulk-replay double-attribution in the
 *    event-skipping fast path;
 *  - per-checkpoint stall deltas: between consecutive checkpoints
 *    the fetch-stall family (pipe-full + trace-cache + BTB + gated)
 *    grows by at most the elapsed cycles (sum preservation: one
 *    cause per stalled cycle), and a BTB-stall attribution implies
 *    the trace-cache deadline had expired — the Core tie-break rule
 *    that every thread of the unified engine must follow;
 *  - when the correct path replays from a trace snapshot, every
 *    cursor-consumed entry corresponds to exactly one correct-path
 *    fetch (fetched - wrong-path fetched == consumed), across
 *    warmup resets — the check that catches a cursor that skips,
 *    repeats or leaks entries. Uops consumed by functional warming
 *    (PipelineEngine::functionalWarm) bypass fetch entirely and are
 *    excluded from the balance, so the law holds across the
 *    functional-warm <-> detailed boundary of sampled simulation;
 *  - confidence classifications partition the retired branches:
 *    matrix total = retired branches, matrix mispredicted = original
 *    mispredicts, and reversals = good + bad.
 *
 * Violations are recorded (never thrown) in a structured
 * AuditReport; the auditor also serves as the ExecModel's
 * checked-error sink, so scheduler window underflows surface here
 * instead of aborting the run.
 */

#ifndef PERCON_VERIFY_INVARIANT_AUDITOR_HH
#define PERCON_VERIFY_INVARIANT_AUDITOR_HH

#include <string>
#include <vector>

#include "uarch/audit_hook.hh"

namespace percon {

/** One recorded invariant violation. */
struct AuditViolation
{
    std::string invariant;  ///< short stable identifier
    std::string detail;     ///< human-readable specifics
    Cycle cycle = 0;
};

/** Structured outcome of one audited run. */
struct AuditReport
{
    Count checksRun = 0;        ///< end-of-cycle checkpoints taken
    Count violationCount = 0;   ///< total violations (all kinds)
    /** First kMaxRecorded violations, in detection order. */
    std::vector<AuditViolation> violations;

    static constexpr std::size_t kMaxRecorded = 32;

    bool clean() const { return violationCount == 0; }

    /** "clean (N checks)" or "violated:N (first: ...)". */
    std::string summary() const;

    /** Compact verdict for JSONL rows: "clean" or "violated:N". */
    std::string verdict() const;
};

class InvariantAuditor : public AuditHook
{
  public:
    const AuditReport &report() const { return report_; }

    // AuditHook interface ------------------------------------------
    void onFetch(const InflightUop &u) override;
    void onRetire(const InflightUop &u) override;
    void onSquash(const InflightUop &u) override;
    void onCheck(const AuditContext &ctx) override;
    void onStatsReset(const AuditContext &ctx) override;
    void onCheckedError(const char *what, Cycle cycle) override;

  private:
    void record(const char *invariant, std::string detail, Cycle cycle);

    AuditReport report_;

    // Event-stream shadow counters, reset with the stats.
    Count fetched_ = 0;
    Count retired_ = 0;
    Count squashed_ = 0;
    /** In-flight uops carried across the last stats reset. */
    Count carriedInflight_ = 0;
    SeqNum lastFetchSeq_ = 0;

    /** Snapshot-replay conservation: cursor consumption is monotonic
     *  across stats resets, so the check works on deltas from a
     *  baseline captured at reset (or lazily at the first checkpoint
     *  for auditors attached mid-run). */
    bool replayBaselineSet_ = false;
    Count replayConsumedAtReset_ = 0;

    /** Per-checkpoint stall-delta laws: baselines from the previous
     *  checkpoint (captured lazily at the first one, reset with the
     *  stats). */
    bool stallBaselineSet_ = false;
    Count lastCycles_ = 0;
    Count lastFetchStallSum_ = 0;
    Count lastBtbStall_ = 0;
    Count lastFetchedUops_ = 0;
};

} // namespace percon

#endif // PERCON_VERIFY_INVARIANT_AUDITOR_HH
