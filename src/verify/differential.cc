#include "differential.hh"

#include "bpred/factory.hh"
#include "confidence/factory.hh"
#include "trace/wrongpath.hh"
#include "uarch/core.hh"
#include "verify/oracle_core.hh"

namespace percon {

std::vector<FieldDiff>
diffStats(const CoreStats &oracle, const CoreStats &core)
{
    std::vector<FieldDiff> out;
    auto cmp = [&](const char *field, std::uint64_t a,
                   std::uint64_t b) {
        if (a != b)
            out.push_back({field, a, b});
    };

    cmp("cycles", oracle.cycles, core.cycles);
    cmp("fetchedUops", oracle.fetchedUops, core.fetchedUops);
    cmp("executedUops", oracle.executedUops, core.executedUops);
    cmp("retiredUops", oracle.retiredUops, core.retiredUops);
    cmp("wrongPathFetched", oracle.wrongPathFetched,
        core.wrongPathFetched);
    cmp("wrongPathExecuted", oracle.wrongPathExecuted,
        core.wrongPathExecuted);
    cmp("retiredBranches", oracle.retiredBranches,
        core.retiredBranches);
    cmp("mispredictsOriginal", oracle.mispredictsOriginal,
        core.mispredictsOriginal);
    cmp("mispredictsFinal", oracle.mispredictsFinal,
        core.mispredictsFinal);
    cmp("reversals", oracle.reversals, core.reversals);
    cmp("reversalsGood", oracle.reversalsGood, core.reversalsGood);
    cmp("reversalsBad", oracle.reversalsBad, core.reversalsBad);
    cmp("gatedCycles", oracle.gatedCycles, core.gatedCycles);
    cmp("flushes", oracle.flushes, core.flushes);
    cmp("traceCacheMisses", oracle.traceCacheMisses,
        core.traceCacheMisses);
    cmp("traceCacheStallCycles", oracle.traceCacheStallCycles,
        core.traceCacheStallCycles);
    cmp("btbMisses", oracle.btbMisses, core.btbMisses);
    cmp("btbStallCycles", oracle.btbStallCycles, core.btbStallCycles);
    cmp("fetchStallPipeFull", oracle.fetchStallPipeFull,
        core.fetchStallPipeFull);
    cmp("dispatchStallRob", oracle.dispatchStallRob,
        core.dispatchStallRob);
    cmp("dispatchStallWindow", oracle.dispatchStallWindow,
        core.dispatchStallWindow);
    cmp("dispatchStallBuffers", oracle.dispatchStallBuffers,
        core.dispatchStallBuffers);
    cmp("dispatchStallEmpty", oracle.dispatchStallEmpty,
        core.dispatchStallEmpty);
    cmp("issueWaitSum", oracle.issueWaitSum, core.issueWaitSum);
    cmp("loadLatencySum", oracle.loadLatencySum, core.loadLatencySum);
    cmp("loadCount", oracle.loadCount, core.loadCount);

    cmp("confidence.mispredictedLow",
        oracle.confidence.mispredictedLow(),
        core.confidence.mispredictedLow());
    cmp("confidence.mispredictedHigh",
        oracle.confidence.mispredictedHigh(),
        core.confidence.mispredictedHigh());
    cmp("confidence.correctLow", oracle.confidence.correctLow(),
        core.confidence.correctLow());
    cmp("confidence.correctHigh", oracle.confidence.correctHigh(),
        core.confidence.correctHigh());
    return out;
}

std::string
DiffResult::summary() const
{
    if (clean())
        return "identical; audit " + audit.summary();
    std::string s;
    if (!identical()) {
        s = std::to_string(diffs.size()) + " field(s) diverge:";
        std::size_t shown = 0;
        for (const FieldDiff &d : diffs) {
            if (shown++ == 4) {
                s += " ...";
                break;
            }
            s += " " + d.field + "(oracle=" +
                 std::to_string(d.oracle) +
                 ",core=" + std::to_string(d.core) + ")";
        }
    } else {
        s = "identical";
    }
    s += "; audit " + audit.summary();
    return s;
}

DiffResult
runDifferential(const DiffCase &c)
{
    DiffResult r;

    auto build_estimator = [&c] {
        std::unique_ptr<ConfidenceEstimator> estimator;
        if (c.makeEstimator)
            estimator = c.makeEstimator();
        else if (!c.estimator.empty())
            estimator = makeEstimator(c.estimator);
        return estimator;
    };

    {
        ProgramModel program(c.program);
        WrongPathSynthesizer wrong_path(c.program, c.wrongPathSeed);
        auto predictor = makePredictor(c.predictor);
        std::unique_ptr<ConfidenceEstimator> estimator =
            build_estimator();
        OracleCore oracle(c.config, program, wrong_path, *predictor,
                          estimator.get(), c.spec);
        if (c.warmupUops > 0)
            oracle.warmup(c.warmupUops);
        oracle.run(c.measureUops);
        r.oracle = oracle.stats();
    }

    // The oracle above always generates live; feeding the
    // production core from a cursor makes the diff a direct
    // replay-vs-generation equivalence check on top of the
    // core-vs-core one. With predSnapshot the production stack is
    // built twice — a live run records the prediction stream, then a
    // fresh stack replays it and is the one reported/diffed.
    auto run_production = [&](PredictionTraceBuilder *pred_rec,
                              std::shared_ptr<const PredictionTrace>
                                  pred_replay) {
        std::unique_ptr<WorkloadSource> source;
        if (c.traceSnapshot) {
            Count len =
                c.warmupUops + c.measureUops + c.config.robSize +
                static_cast<Count>(c.config.frontEndDepth + 2) *
                    c.config.width;
            source = std::make_unique<SnapshotCursor>(
                TraceSnapshot::build(c.program, len));
        } else {
            source = std::make_unique<ProgramModel>(c.program);
        }
        WrongPathSynthesizer wrong_path(c.program, c.wrongPathSeed);
        auto predictor = makePredictor(c.predictor);
        std::unique_ptr<ConfidenceEstimator> estimator =
            build_estimator();
        Core core(c.config, *source, wrong_path, *predictor,
                  estimator.get(), c.spec);
        if (pred_rec)
            core.setPredictionRecorder(pred_rec);
        if (pred_replay)
            core.setPredictionReplay(std::move(pred_replay));
        InvariantAuditor auditor;
        core.setAuditor(&auditor);
        core.setTestFastForwardDefect(c.injectDefect);
        if (c.warmupUops > 0)
            core.warmup(c.warmupUops);
        core.run(c.measureUops);
        r.core = core.stats();
        r.audit = auditor.report();
    };

    if (c.predSnapshot) {
        PredictionTraceBuilder rec;
        run_production(&rec, nullptr);
        run_production(nullptr, rec.finish("differential:" + c.name));
    } else {
        run_production(nullptr, nullptr);
    }

    r.diffs = diffStats(r.oracle, r.core);
    return r;
}

} // namespace percon
