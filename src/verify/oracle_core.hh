/**
 * @file
 * OracleCore: a deliberately naive reference model of the
 * out-of-order core, used only by the verification layer.
 *
 * The production Core (uarch/core.hh) earns its throughput from an
 * event-driven run loop that skips idle cycles and bulk-replays
 * stall accounting, a fetch-pipe/ROB ring with generation-checked
 * handles, and a calendar-wheel release ledger in the ExecModel.
 * Every one of those optimizations carries a bit-identical-output
 * contract — and this class is the contract's other side: a
 * straight-line, cycle-stepped transcription of the DESIGN.md
 * pipeline semantics with none of the tricks.
 *
 *  - every cycle is simulated; nothing is skipped or replayed;
 *  - the fetch pipe and ROB are two plain deques; timed events are
 *    (cycle, seq) pairs in ordered multisets, resolved by linear
 *    sequence-number search;
 *  - scheduler-window releases live in an ordered multiset instead
 *    of the calendar wheel.
 *
 * Deliberately shared with the production core are the *semantic*
 * leaf components that no perf refactor touched and that have their
 * own golden tests: IssueSlots (issue-bandwidth booking, including
 * its horizon clamp), the memory hierarchy, caches, BTB, predictors
 * and estimators. Re-deriving those would test nothing extra while
 * making drift in their semantics invisible.
 *
 * The DifferentialHarness (differential.hh) runs OracleCore and Core
 * on identically seeded inputs and diffs every CoreStats field.
 */

#ifndef PERCON_VERIFY_ORACLE_CORE_HH
#define PERCON_VERIFY_ORACLE_CORE_HH

#include <deque>
#include <set>
#include <utility>

#include "bpred/branch_predictor.hh"
#include "bpred/btb.hh"
#include "confidence/confidence_estimator.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "trace/uop.hh"
#include "trace/wrongpath.hh"
#include "uarch/core_stats.hh"
#include "uarch/exec_model.hh"
#include "uarch/inflight.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

class OracleCore
{
  public:
    /** Same construction contract as uarch::Core. */
    OracleCore(const PipelineConfig &config, WorkloadSource &workload,
               WrongPathSynthesizer &wrong_path,
               BranchPredictor &predictor,
               ConfidenceEstimator *estimator,
               const SpeculationControl &spec);

    /** Advance until @p target_retired more uops have retired. */
    void run(Count target_retired);

    /** Run @p uops then clear statistics (machine state kept). */
    void warmup(Count uops);

    const CoreStats &stats() const { return stats_; }

  private:
    void cycleOnce();
    void releaseWindowEntries();
    void applyPendingConfidence();
    void resolveBranches();
    void retire();
    void dispatch();
    void fetch();
    bool fetchOne();
    void flushAfter(const InflightUop &branch);
    InflightUop *findBySeq(SeqNum seq);
    Cycle sourceReady(const InflightUop &uop) const;
    Cycle latencyFor(const InflightUop &uop, Cycle issue_at);

    // configuration ------------------------------------------------
    PipelineConfig config_;
    SpeculationControl spec_;
    WorkloadSource &workload_;
    WrongPathSynthesizer &wrongPath_;
    BranchPredictor &predictor_;
    ConfidenceEstimator *estimator_;

    // machine state ------------------------------------------------
    MemoryHierarchy mem_;
    SpecHistory history_;
    Cache traceCache_;
    Btb btb_;

    /** Issue-bandwidth ledgers, one per SchedClass (shared leaf
     *  component — see the file comment). */
    std::vector<IssueSlots> slots_;

    /** Scheduler-window occupancy, tracked naively: one (issue
     *  cycle, class) record per dispatched uop, released in order. */
    unsigned occupancy_[3] = {0, 0, 0};
    unsigned capacity_[3] = {0, 0, 0};
    std::multiset<std::pair<Cycle, unsigned>> windowReleases_;

    /** In-order front end and ROB as plain deques (oldest first). */
    std::deque<InflightUop> pipe_;
    std::deque<InflightUop> rob_;
    std::size_t pipeCap_ = 0;

    /** Timed events as (cycle, seq); sequence numbers are unique for
     *  the life of the run, so a linear search replaces handles. */
    std::multiset<std::pair<Cycle, SeqNum>> resolveEvents_;
    std::multiset<std::pair<Cycle, SeqNum>> confEvents_;

    Cycle tcStallUntil_ = 0;
    Cycle btbStallUntil_ = 0;

    Cycle now_ = 0;
    SeqNum nextSeq_ = 1;
    unsigned gateCount_ = 0;
    bool onWrongPath_ = false;

    unsigned loadsInFlight_ = 0;
    unsigned storesInFlight_ = 0;

    static constexpr std::size_t kDepRing = 256;
    Cycle corrReady_[kDepRing] = {};
    Cycle wpReady_[kDepRing] = {};
    std::uint64_t corrIdx_ = 0;
    std::uint64_t wpIdx_ = 0;

    CoreStats stats_;
};

} // namespace percon

#endif // PERCON_VERIFY_ORACLE_CORE_HH
