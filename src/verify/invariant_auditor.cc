#include "invariant_auditor.hh"

#include <cstdio>

namespace percon {

namespace {

std::string
fmt(const char *format, std::uint64_t a, std::uint64_t b = 0)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), format,
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return buf;
}

} // namespace

std::string
AuditReport::verdict() const
{
    if (clean())
        return "clean";
    return "violated:" + std::to_string(violationCount);
}

std::string
AuditReport::summary() const
{
    if (clean())
        return "clean (" + std::to_string(checksRun) + " checks)";
    std::string s = verdict();
    if (!violations.empty()) {
        s += " (first: " + violations.front().invariant + " @" +
             std::to_string(violations.front().cycle) + ": " +
             violations.front().detail + ")";
    }
    return s;
}

void
InvariantAuditor::record(const char *invariant, std::string detail,
                         Cycle cycle)
{
    ++report_.violationCount;
    if (report_.violations.size() < AuditReport::kMaxRecorded)
        report_.violations.push_back({invariant, std::move(detail),
                                      cycle});
}

void
InvariantAuditor::onFetch(const InflightUop &u)
{
    ++fetched_;
    if (u.seq <= lastFetchSeq_) {
        record("seq-monotonic",
               fmt("fetched seq %llu after %llu", u.seq,
                   lastFetchSeq_),
               0);
    }
    lastFetchSeq_ = u.seq;
}

void
InvariantAuditor::onRetire(const InflightUop &u)
{
    ++retired_;
    if (!u.dispatched)
        record("retire-dispatched",
               fmt("retiring undispatched seq %llu", u.seq), 0);
    if (u.wrongPath)
        record("retire-correct-path",
               fmt("retiring wrong-path seq %llu", u.seq), 0);
}

void
InvariantAuditor::onSquash(const InflightUop &)
{
    ++squashed_;
}

void
InvariantAuditor::onCheck(const AuditContext &ctx)
{
    ++report_.checksRun;
    const CoreStats &s = *ctx.stats;
    Cycle now = ctx.now;

    // ---- cheap counter cross-checks, every checkpoint -------------
    if (s.executedUops != s.retiredUops + s.wrongPathExecuted) {
        record("exec-conservation",
               fmt("executed %llu != retired+wrongpath %llu",
                   s.executedUops,
                   s.retiredUops + s.wrongPathExecuted),
               now);
    }
    if (s.fetchedUops != fetched_)
        record("fetch-count",
               fmt("stats %llu != observed %llu", s.fetchedUops,
                   fetched_),
               now);
    if (s.retiredUops != retired_)
        record("retire-count",
               fmt("stats %llu != observed %llu", s.retiredUops,
                   retired_),
               now);
    if (ctx.window &&
        fetched_ + carriedInflight_ !=
            retired_ + squashed_ + ctx.window->size()) {
        record("uop-conservation",
               fmt("fetched+carried %llu != "
                   "retired+squashed+inflight %llu",
                   fetched_ + carriedInflight_,
                   retired_ + squashed_ + ctx.window->size()),
               now);
    }
    if (s.reversals != s.reversalsGood + s.reversalsBad)
        record("reversal-partition",
               fmt("reversals %llu != good+bad %llu", s.reversals,
                   s.reversalsGood + s.reversalsBad),
               now);
    if (s.mispredictsFinal + s.reversalsGood !=
        s.mispredictsOriginal + s.reversalsBad) {
        record("reversal-arithmetic",
               fmt("final+good %llu != original+bad %llu",
                   s.mispredictsFinal + s.reversalsGood,
                   s.mispredictsOriginal + s.reversalsBad),
               now);
    }
    if (ctx.workloadReplay) {
        // Every correct-path fetch consumes exactly one cursor
        // entry, except the uops consumed by functional warming,
        // which bypass fetch entirely and are excluded from the
        // balance. Both counts are monotonic across stats resets, so
        // compare deltas against the baseline from the last reset
        // (captured lazily when the auditor attached mid-run).
        Count correct_fetched = s.fetchedUops - s.wrongPathFetched;
        Count fetch_consumed =
            ctx.workloadConsumed - ctx.functionallyWarmed;
        if (!replayBaselineSet_) {
            replayBaselineSet_ = true;
            replayConsumedAtReset_ = fetch_consumed - correct_fetched;
        }
        Count consumed = fetch_consumed - replayConsumedAtReset_;
        if (correct_fetched != consumed)
            record("replay-conservation",
                   fmt("correct-path fetched %llu != cursor "
                       "consumed %llu (warmed uops excluded)",
                       correct_fetched, consumed),
                   now);
    }
    if (ctx.hasEstimator) {
        if (s.confidence.total() != s.retiredBranches)
            record("confidence-total",
                   fmt("matrix %llu != retired branches %llu",
                       s.confidence.total(), s.retiredBranches),
                   now);
        if (s.confidence.mispredicted() != s.mispredictsOriginal)
            record("confidence-mispredicts",
                   fmt("matrix %llu != original mispredicts %llu",
                       s.confidence.mispredicted(),
                       s.mispredictsOriginal),
                   now);
    }

    // Each cycle charges at most one fetch-stall and one
    // dispatch-stall cause; a bulk replay that double-attributes a
    // skipped span breaks these sums first.
    Count fetch_stalls = s.fetchStallPipeFull +
                         s.traceCacheStallCycles + s.btbStallCycles +
                         s.gatedCycles;
    if (fetch_stalls > s.cycles)
        record("fetch-stall-bound",
               fmt("stall cycles %llu > cycles %llu", fetch_stalls,
                   s.cycles),
               now);
    Count dispatch_stalls = s.dispatchStallEmpty + s.dispatchStallRob +
                            s.dispatchStallWindow +
                            s.dispatchStallBuffers;
    if (dispatch_stalls > s.cycles)
        record("dispatch-stall-bound",
               fmt("stall cycles %llu > cycles %llu", dispatch_stalls,
                   s.cycles),
               now);

    // ---- per-checkpoint stall-delta laws --------------------------
    // Between consecutive checkpoints the fetch-stall family can
    // grow by at most the elapsed cycles (sum preservation: each
    // cycle charges at most one fetch-stall cause, stepped or
    // bulk-replayed), and any new BTB-stall attribution must respect
    // Core's tie-break: BTB bubbles are only charged once the
    // trace-cache deadline has expired. A fetch in the same interval
    // may legitimately have refreshed tcStallUntil after the
    // attribution, so the tie-break check only fires on fetch-free
    // intervals.
    if (!stallBaselineSet_) {
        stallBaselineSet_ = true;
    } else {
        Count d_cycles = s.cycles - lastCycles_;
        Count d_stall = fetch_stalls - lastFetchStallSum_;
        if (d_stall > d_cycles)
            record("fetch-stall-delta",
                   fmt("fetch-stall delta %llu > cycle delta %llu",
                       d_stall, d_cycles),
                   now);
        if (s.btbStallCycles > lastBtbStall_ &&
            s.fetchedUops == lastFetchedUops_ &&
            now < ctx.tcStallUntil) {
            record("stall-tiebreak",
                   fmt("btb stall charged at %llu with trace-cache "
                       "deadline %llu still pending",
                       now, ctx.tcStallUntil),
                   now);
        }
    }
    lastCycles_ = s.cycles;
    lastFetchStallSum_ = fetch_stalls;
    lastBtbStall_ = s.btbStallCycles;
    lastFetchedUops_ = s.fetchedUops;

    // ---- window-scan checks, throttled (O(window) each) -----------
    if (ctx.window && report_.checksRun % 64 == 1) {
        const InflightWindow &w = *ctx.window;
        unsigned low_counted = 0;
        for (std::size_t i = 0; i < w.size(); ++i) {
            const InflightUop &u = w.entry(i);
            if (u.lowConfCounted)
                ++low_counted;
            bool in_rob = i < w.robSize();
            if (u.dispatched != in_rob) {
                record("rob-prefix",
                       fmt("entry %llu dispatched=%llu disagrees "
                           "with ROB boundary",
                           i, u.dispatched ? 1 : 0),
                       now);
                break;
            }
        }
        if (low_counted != ctx.gateCount)
            record("gate-count",
                   fmt("window has %llu low-conf marks, gate "
                       "counter %llu",
                       low_counted, ctx.gateCount),
                   now);
    }
}

void
InvariantAuditor::onStatsReset(const AuditContext &ctx)
{
    // Conservation restarts against the post-reset counters; uops
    // already in flight at the reset retire or squash afterwards
    // without a matching fetch event.
    fetched_ = 0;
    retired_ = 0;
    squashed_ = 0;
    carriedInflight_ = ctx.window ? ctx.window->size() : 0;
    if (ctx.workloadReplay) {
        replayBaselineSet_ = true;
        replayConsumedAtReset_ =
            ctx.workloadConsumed - ctx.functionallyWarmed;
    }
    // Stall-delta baselines restart from the post-reset counters.
    if (ctx.stats) {
        stallBaselineSet_ = true;
        lastCycles_ = ctx.stats->cycles;
        lastFetchStallSum_ = ctx.stats->fetchStallPipeFull +
                             ctx.stats->traceCacheStallCycles +
                             ctx.stats->btbStallCycles +
                             ctx.stats->gatedCycles;
        lastBtbStall_ = ctx.stats->btbStallCycles;
        lastFetchedUops_ = ctx.stats->fetchedUops;
    } else {
        stallBaselineSet_ = false;
    }
}

void
InvariantAuditor::onCheckedError(const char *what, Cycle cycle)
{
    record("checked-error", what, cycle);
}

} // namespace percon
