#include "oracle_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace percon {

OracleCore::OracleCore(const PipelineConfig &config,
                       WorkloadSource &workload,
                       WrongPathSynthesizer &wrong_path,
                       BranchPredictor &predictor,
                       ConfidenceEstimator *estimator,
                       const SpeculationControl &spec)
    : config_(config), spec_(spec), workload_(workload),
      wrongPath_(wrong_path), predictor_(predictor),
      estimator_(estimator), mem_(config.mem),
      traceCache_(config.traceCache),
      btb_(config.btbEntries, config.btbWays),
      pipeCap_(static_cast<std::size_t>(config.frontEndDepth) *
               config.width)
{
    if ((spec_.gateThreshold > 0 && !spec_.oracleGating) ||
        spec_.reversalEnabled) {
        PERCON_ASSERT(estimator_ != nullptr,
                      "gating/reversal require a confidence estimator");
    }
    slots_.emplace_back(config.unitsInt);
    slots_.emplace_back(config.unitsMem);
    slots_.emplace_back(config.unitsFp);
    capacity_[0] = config.schedInt;
    capacity_[1] = config.schedMem;
    capacity_[2] = config.schedFp;
}

InflightUop *
OracleCore::findBySeq(SeqNum seq)
{
    for (auto &u : rob_)
        if (u.seq == seq)
            return &u;
    for (auto &u : pipe_)
        if (u.seq == seq)
            return &u;
    return nullptr;
}

void
OracleCore::releaseWindowEntries()
{
    while (!windowReleases_.empty() &&
           windowReleases_.begin()->first <= now_) {
        unsigned cls = windowReleases_.begin()->second;
        windowReleases_.erase(windowReleases_.begin());
        PERCON_ASSERT(occupancy_[cls] > 0, "oracle window underflow");
        --occupancy_[cls];
    }
}

void
OracleCore::applyPendingConfidence()
{
    while (!confEvents_.empty() && confEvents_.begin()->first <= now_) {
        SeqNum seq = confEvents_.begin()->second;
        confEvents_.erase(confEvents_.begin());
        InflightUop *u = findBySeq(seq);
        if (!u)
            continue;  // flushed before the estimate arrived
        if (!u->lowConfPending || u->resolvedForGate)
            continue;  // resolved before the estimate arrived
        u->lowConfPending = false;
        u->lowConfCounted = true;
        ++gateCount_;
    }
}

void
OracleCore::resolveBranches()
{
    while (!resolveEvents_.empty() &&
           resolveEvents_.begin()->first <= now_) {
        SeqNum seq = resolveEvents_.begin()->second;
        resolveEvents_.erase(resolveEvents_.begin());
        InflightUop *u = findBySeq(seq);
        if (!u)
            continue;  // branch was flushed
        PERCON_ASSERT(u->isBranch(), "non-branch in resolve set");
        if (u->resolvedForGate)
            continue;
        u->resolvedForGate = true;
        if (u->lowConfCounted) {
            PERCON_ASSERT(gateCount_ > 0, "gate counter underflow");
            --gateCount_;
            u->lowConfCounted = false;
        }
        u->lowConfPending = false;

        if (u->causesRedirect)
            flushAfter(*u);
    }
}

void
OracleCore::flushAfter(const InflightUop &branch)
{
    ++stats_.flushes;

    auto drop = [this](InflightUop &u) {
        if (u.dispatched) {
            PERCON_ASSERT(u.wrongPath, "flushing a correct-path uop");
            if (u.issueAt <= now_) {
                ++stats_.executedUops;
                ++stats_.wrongPathExecuted;
            }
            if (u.cls == UopClass::Load) {
                PERCON_ASSERT(loadsInFlight_ > 0,
                              "load buffer underflow");
                --loadsInFlight_;
            } else if (u.cls == UopClass::Store) {
                PERCON_ASSERT(storesInFlight_ > 0,
                              "store buffer underflow");
                --storesInFlight_;
            }
        }
        if (u.lowConfCounted) {
            PERCON_ASSERT(gateCount_ > 0, "gate counter underflow");
            --gateCount_;
        }
    };

    // Youngest first: the whole fetch pipe (every pipe entry is
    // younger than every ROB entry), then the ROB suffix behind the
    // branch — the same order the ring-buffer flush walks.
    while (!pipe_.empty() && pipe_.back().seq > branch.seq) {
        drop(pipe_.back());
        pipe_.pop_back();
    }
    while (!rob_.empty() && rob_.back().seq > branch.seq) {
        drop(rob_.back());
        rob_.pop_back();
    }

    history_.recover(branch.ghrSnapshot, branch.actualTaken);
    onWrongPath_ = false;
}

void
OracleCore::retire()
{
    for (unsigned n = 0; n < config_.width; ++n) {
        if (rob_.empty())
            return;
        InflightUop &u = rob_.front();
        if (!u.dispatched ||
            u.completeAt + config_.backEndDepth > now_)
            return;
        PERCON_ASSERT(!u.wrongPath,
                      "wrong-path uop reached the ROB head");

        ++stats_.retiredUops;
        ++stats_.executedUops;

        switch (u.cls) {
          case UopClass::Load:
            PERCON_ASSERT(loadsInFlight_ > 0, "load buffer underflow");
            --loadsInFlight_;
            break;
          case UopClass::Store:
            PERCON_ASSERT(storesInFlight_ > 0, "store buffer underflow");
            --storesInFlight_;
            mem_.access(u.memAddr, now_, true);
            break;
          case UopClass::Branch: {
            ++stats_.retiredBranches;
            bool misp_orig = u.predTaken != u.actualTaken;
            bool misp_final = u.finalPred != u.actualTaken;
            if (misp_orig)
                ++stats_.mispredictsOriginal;
            if (misp_final)
                ++stats_.mispredictsFinal;
            if (u.reversed) {
                ++stats_.reversals;
                if (misp_orig)
                    ++stats_.reversalsGood;
                else
                    ++stats_.reversalsBad;
            }
            predictor_.update(u.pc, u.ghrSnapshot, u.actualTaken,
                              u.meta);
            if (estimator_) {
                stats_.confidence.record(misp_orig, u.conf.low);
                estimator_->train(u.pc, u.ghrSnapshot, u.predTaken,
                                  misp_orig, u.conf);
            }
            break;
          }
          default:
            break;
        }
        rob_.pop_front();
    }
}

Cycle
OracleCore::sourceReady(const InflightUop &uop) const
{
    const Cycle *ring = uop.wrongPath ? wpReady_ : corrReady_;
    Cycle ready = 0;
    for (unsigned s = 0; s < 2; ++s) {
        std::uint16_t d = uop.srcDist[s];
        if (d == 0 || d > uop.streamIdx || d >= kDepRing)
            continue;
        Cycle r = ring[(uop.streamIdx - d) % kDepRing];
        if (r > ready)
            ready = r;
    }
    return ready;
}

Cycle
OracleCore::latencyFor(const InflightUop &uop, Cycle issue_at)
{
    switch (uop.cls) {
      case UopClass::IntAlu:
        return config_.intAluLatency;
      case UopClass::IntMul:
        return config_.intMulLatency;
      case UopClass::FpAlu:
        return config_.fpAluLatency;
      case UopClass::Branch:
        return config_.branchLatency;
      case UopClass::Load:
        return mem_.access(uop.memAddr, issue_at, false).latency;
      case UopClass::Store:
        return 1;
    }
    panic("bad uop class");
}

void
OracleCore::dispatch()
{
    for (unsigned n = 0; n < config_.width; ++n) {
        if (pipe_.empty() || pipe_.front().dispatchReadyAt > now_) {
            ++stats_.dispatchStallEmpty;
            return;
        }
        InflightUop &front = pipe_.front();
        if (rob_.size() >= config_.robSize) {
            ++stats_.dispatchStallRob;
            return;
        }
        unsigned cls =
            static_cast<unsigned>(schedClassFor(front.cls));
        if (occupancy_[cls] >= capacity_[cls]) {
            ++stats_.dispatchStallWindow;
            return;
        }
        if ((front.cls == UopClass::Load &&
             loadsInFlight_ >= config_.loadBuffers) ||
            (front.cls == UopClass::Store &&
             storesInFlight_ >= config_.storeBuffers)) {
            ++stats_.dispatchStallBuffers;
            return;
        }

        rob_.push_back(front);
        pipe_.pop_front();
        InflightUop &u = rob_.back();

        Cycle ready = sourceReady(u);
        if (ready < now_ + 1)
            ready = now_ + 1;
        Cycle issue = slots_[cls].book(ready);
        u.issueAt = issue;
        u.completeAt = issue + latencyFor(u, issue);
        u.dispatched = true;
        ++occupancy_[cls];
        windowReleases_.insert({issue, cls});

        stats_.issueWaitSum += u.issueAt - now_;
        if (u.cls == UopClass::Load) {
            stats_.loadLatencySum += u.completeAt - u.issueAt;
            ++stats_.loadCount;
        }

        Cycle *ring = u.wrongPath ? wpReady_ : corrReady_;
        ring[u.streamIdx % kDepRing] = u.completeAt;

        if (u.cls == UopClass::Load)
            ++loadsInFlight_;
        else if (u.cls == UopClass::Store)
            ++storesInFlight_;

        if (u.isBranch() && !u.resolvedForGate)
            resolveEvents_.insert(
                {u.completeAt + config_.backEndDepth, u.seq});
    }
}

bool
OracleCore::fetchOne()
{
    MicroOp mu = onWrongPath_ ? wrongPath_.next() : workload_.next();

    bool stall_after = false;
    if (config_.traceCacheEnabled && !traceCache_.access(mu.pc)) {
        ++stats_.traceCacheMisses;
        tcStallUntil_ = now_ + config_.traceCacheMissPenalty;
        stall_after = true;
    }

    pipe_.emplace_back();
    InflightUop &u = pipe_.back();
    u.seq = nextSeq_++;
    u.pc = mu.pc;
    u.cls = mu.cls;
    u.srcDist[0] = mu.srcDist[0];
    u.srcDist[1] = mu.srcDist[1];
    u.memAddr = mu.memAddr;
    u.wrongPath = onWrongPath_;
    u.dispatchReadyAt = now_ + config_.frontEndDepth;
    u.streamIdx = onWrongPath_ ? wpIdx_++ : corrIdx_++;

    ++stats_.fetchedUops;
    if (u.wrongPath)
        ++stats_.wrongPathFetched;

    if (u.isBranch()) {
        u.ghrSnapshot = history_.bits();
        u.predTaken = predictor_.predict(u.pc, u.ghrSnapshot, u.meta);
        if (estimator_)
            u.conf = estimator_->estimate(u.pc, u.ghrSnapshot,
                                          u.predTaken);

        u.finalPred = u.predTaken;
        if (spec_.reversalEnabled &&
            u.conf.band == ConfidenceBand::StrongLow) {
            u.finalPred = !u.predTaken;
            u.reversed = true;
        }

        history_.push(u.finalPred);

        if (config_.btbEnabled && u.finalPred) {
            if (!btb_.lookup(u.pc)) {
                ++stats_.btbMisses;
                Cycle until = now_ + config_.btbMissPenalty;
                if (until > btbStallUntil_)
                    btbStallUntil_ = until;
                stall_after = true;
                btb_.update(u.pc, mu.target);
            }
        }

        if (!u.wrongPath) {
            u.actualTaken = mu.taken;
            u.causesRedirect = u.finalPred != u.actualTaken;
            if (u.causesRedirect) {
                onWrongPath_ = true;
                wpIdx_ = 0;
                wrongPath_.redirect(u.finalPred ? mu.target
                                                : mu.pc + 4);
            }
        } else {
            u.actualTaken = u.finalPred;
            u.causesRedirect = false;
        }

        bool gate_mark;
        if (spec_.oracleGating) {
            gate_mark = spec_.gateThreshold > 0 && u.causesRedirect;
        } else {
            gate_mark = estimator_ && spec_.gateThreshold > 0 &&
                        (spec_.reversalEnabled
                             ? u.conf.band == ConfidenceBand::WeakLow
                             : u.conf.low);
        }
        if (gate_mark) {
            if (spec_.confidenceLatency == 0) {
                u.lowConfCounted = true;
                ++gateCount_;
            } else {
                u.lowConfPending = true;
                u.confAppliesAt = now_ + spec_.confidenceLatency;
                confEvents_.insert({u.confAppliesAt, u.seq});
            }
        }
    }

    return !stall_after;
}

void
OracleCore::fetch()
{
    if (pipe_.size() >= pipeCap_) {
        ++stats_.fetchStallPipeFull;
        return;
    }

    Cycle stall_until = std::max(tcStallUntil_, btbStallUntil_);
    if (now_ < stall_until) {
        if (now_ < tcStallUntil_)
            ++stats_.traceCacheStallCycles;
        else
            ++stats_.btbStallCycles;
        return;
    }

    unsigned width = config_.width;
    if (spec_.gateThreshold > 0 && gateCount_ >= spec_.gateThreshold) {
        ++stats_.gatedCycles;
        if (spec_.throttleWidth == 0)
            return;
        width = std::min(width, spec_.throttleWidth);
    }

    for (unsigned n = 0; n < width && pipe_.size() < pipeCap_; ++n) {
        if (!fetchOne())
            break;
    }
}

void
OracleCore::cycleOnce()
{
    ++now_;
    ++stats_.cycles;
    releaseWindowEntries();
    applyPendingConfidence();
    resolveBranches();
    retire();
    dispatch();
    fetch();
}

void
OracleCore::run(Count target_retired)
{
    Count goal = stats_.retiredUops + target_retired;
    Count last_retired = stats_.retiredUops;
    Count idle_cycles = 0;
    while (stats_.retiredUops < goal) {
        cycleOnce();
        if (stats_.retiredUops != last_retired) {
            last_retired = stats_.retiredUops;
            idle_cycles = 0;
        } else if (++idle_cycles > 5'000'000) {
            panic("oracle core deadlock: no retirement in 5M cycles "
                  "(gate=%u rob=%zu pipe=%zu)",
                  gateCount_, rob_.size(), pipe_.size());
        }
    }
}

void
OracleCore::warmup(Count uops)
{
    run(uops);
    stats_ = CoreStats{};
}

} // namespace percon
