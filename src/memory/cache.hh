/**
 * @file
 * Set-associative cache with LRU replacement.
 *
 * Tag-array only: the model tracks presence, not data. That is all
 * the pipeline model needs to turn addresses into latencies.
 */

#ifndef PERCON_MEMORY_CACHE_HH
#define PERCON_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace percon {

/** Cache geometry. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;
};

/** LRU set-associative tag array. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; on a miss the line is filled (allocate on
     * both reads and writes).
     * @return true on hit
     */
    bool access(Addr addr) { return lookup(addr, true, true); }

    /** Look up without filling (used by prefetch filtering). */
    bool probe(Addr addr) const;

    /** Insert a line without it counting as a demand access. */
    void fill(Addr addr);

    /** Invalidate everything. */
    void flush();

    const CacheParams &params() const { return params_; }
    Count hits() const { return hits_; }
    Count misses() const { return misses_; }
    double
    missRate() const
    {
        Count total = hits_ + misses_;
        return total == 0 ? 0.0
                          : static_cast<double>(misses_) /
                                static_cast<double>(total);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t
    setFor(Addr addr) const
    {
        return (addr >> lineShift_) & (numSets_ - 1);
    }

    Addr tagFor(Addr addr) const { return addr >> lineShift_; }

    // Inline: one lookup runs per fetched uop (trace cache) and per
    // memory access, and the call showed up in simulator profiles.
    bool
    lookup(Addr addr, bool fill_on_miss, bool count)
    {
        std::size_t set = setFor(addr);
        Addr tag = tagFor(addr);
        Line *base = &lines_[set * params_.ways];
        ++useClock_;

        for (unsigned w = 0; w < params_.ways; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                base[w].lastUse = useClock_;
                if (count)
                    ++hits_;
                return true;
            }
        }
        if (count)
            ++misses_;

        if (fill_on_miss) {
            // Victimize the LRU way (or any invalid way).
            unsigned victim = 0;
            for (unsigned w = 0; w < params_.ways; ++w) {
                if (!base[w].valid) {
                    victim = w;
                    break;
                }
                if (base[w].lastUse < base[victim].lastUse)
                    victim = w;
            }
            base[victim].valid = true;
            base[victim].tag = tag;
            base[victim].lastUse = useClock_;
        }
        return false;
    }

    CacheParams params_;
    std::size_t numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_;  ///< numSets_ x ways
    std::uint64_t useClock_ = 0;
    Count hits_ = 0;
    Count misses_ = 0;
};

} // namespace percon

#endif // PERCON_MEMORY_CACHE_HH
