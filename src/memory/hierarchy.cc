#include "hierarchy.hh"

namespace percon {

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : params_(params), l1_(params.l1), l2_(params.l2),
      prefetcher_(params.prefetchStreams, params.prefetchDegree,
                  params.l2.lineBytes)
{
}

MemAccessResult
MemoryHierarchy::access(Addr addr, Cycle now, bool is_store)
{
    MemAccessResult res;
    res.l1Hit = l1_.access(addr);
    if (res.l1Hit) {
        res.latency = params_.l1Latency;
        return res;
    }

    res.l2Hit = l2_.access(addr);
    if (params_.prefetchEnabled && !is_store)
        prefetcher_.observe(addr, l2_);

    if (res.l2Hit) {
        res.latency = params_.l1Latency + params_.l2Latency;
        return res;
    }

    // Memory access: serialize on the channel.
    ++memAccesses_;
    Cycle start = now > busFreeAt_ ? now : busFreeAt_;
    Cycle wait = start - now;
    totalBusWait_ += wait;
    busFreeAt_ = start + params_.busCyclesPerLine;

    res.latency =
        params_.l1Latency + params_.l2Latency + wait + params_.memLatency;
    return res;
}

} // namespace percon
