/**
 * @file
 * Stream-based hardware data prefetcher (Table 1: "Stream-based,
 * 16 streams"). Detects ascending line-granular access streams and
 * runs a configurable distance ahead, filling the L2.
 */

#ifndef PERCON_MEMORY_PREFETCHER_HH
#define PERCON_MEMORY_PREFETCHER_HH

#include <vector>

#include "common/types.hh"

namespace percon {

class Cache;

/** Detector + issue logic for up to N concurrent streams. */
class StreamPrefetcher
{
  public:
    /**
     * @param num_streams concurrent tracked streams
     * @param degree lines fetched ahead of the demand stream
     */
    explicit StreamPrefetcher(unsigned num_streams = 16,
                              unsigned degree = 2,
                              unsigned line_bytes = 64);

    /**
     * Observe a demand access and prefetch into @p target.
     * @return number of lines prefetched (for stats/bus accounting)
     */
    unsigned observe(Addr addr, Cache &target);

    Count issued() const { return issued_; }

  private:
    struct Stream
    {
        Addr lastLine = 0;
        unsigned confidence = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::vector<Stream> streams_;
    unsigned degree_;
    unsigned lineShift_;
    std::uint64_t useClock_ = 0;
    Count issued_ = 0;
};

} // namespace percon

#endif // PERCON_MEMORY_PREFETCHER_HH
