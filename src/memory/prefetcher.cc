#include "prefetcher.hh"

#include <bit>

#include "common/logging.hh"
#include "memory/cache.hh"

namespace percon {

StreamPrefetcher::StreamPrefetcher(unsigned num_streams, unsigned degree,
                                   unsigned line_bytes)
    : streams_(num_streams), degree_(degree)
{
    PERCON_ASSERT(num_streams >= 1, "need at least one stream");
    PERCON_ASSERT(std::has_single_bit(
                      static_cast<unsigned long>(line_bytes)),
                  "line size must be a power of two");
    lineShift_ = static_cast<unsigned>(std::countr_zero(
        static_cast<unsigned long>(line_bytes)));
}

unsigned
StreamPrefetcher::observe(Addr addr, Cache &target)
{
    Addr line = addr >> lineShift_;
    ++useClock_;

    // Match an existing stream: the access continues it if it lands
    // on the line after (or same as) the stream head.
    for (auto &s : streams_) {
        if (!s.valid)
            continue;
        if (line == s.lastLine + 1 || line == s.lastLine) {
            bool advanced = line == s.lastLine + 1;
            s.lastLine = line;
            s.lastUse = useClock_;
            if (advanced && s.confidence < 4)
                ++s.confidence;
            if (advanced && s.confidence >= 2) {
                unsigned fetched = 0;
                for (unsigned d = 1; d <= degree_; ++d) {
                    Addr pf = (line + d) << lineShift_;
                    if (!target.probe(pf)) {
                        target.fill(pf);
                        ++fetched;
                    }
                }
                issued_ += fetched;
                return fetched;
            }
            return 0;
        }
    }

    // Allocate a new stream over the LRU slot.
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lastUse < victim->lastUse)
            victim = &s;
    }
    victim->valid = true;
    victim->lastLine = line;
    victim->confidence = 0;
    victim->lastUse = useClock_;
    return 0;
}

} // namespace percon
