#include "cache.hh"

#include <bit>

#include "common/logging.hh"

namespace percon {

Cache::Cache(const CacheParams &params) : params_(params)
{
    PERCON_ASSERT(params.lineBytes >= 8 &&
                      std::has_single_bit(
                          static_cast<unsigned long>(params.lineBytes)),
                  "line size must be a power of two >= 8");
    PERCON_ASSERT(params.ways >= 1, "cache needs at least one way");
    std::size_t lines_total = params.sizeBytes / params.lineBytes;
    PERCON_ASSERT(lines_total >= params.ways,
                  "cache smaller than one set");
    numSets_ = lines_total / params.ways;
    PERCON_ASSERT(std::has_single_bit(numSets_),
                  "set count must be a power of two (size %zu)",
                  params.sizeBytes);
    lineShift_ = static_cast<unsigned>(std::countr_zero(
        static_cast<unsigned long>(params.lineBytes)));
    lines_.assign(numSets_ * params.ways, Line{});
}

bool
Cache::probe(Addr addr) const
{
    std::size_t set = setFor(addr);
    Addr tag = tagFor(addr);
    const Line *base = &lines_[set * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::fill(Addr addr)
{
    lookup(addr, true, false);
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

} // namespace percon
