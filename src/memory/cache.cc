#include "cache.hh"

#include <bit>

#include "common/logging.hh"

namespace percon {

Cache::Cache(const CacheParams &params) : params_(params)
{
    PERCON_ASSERT(params.lineBytes >= 8 &&
                      std::has_single_bit(
                          static_cast<unsigned long>(params.lineBytes)),
                  "line size must be a power of two >= 8");
    PERCON_ASSERT(params.ways >= 1, "cache needs at least one way");
    std::size_t lines_total = params.sizeBytes / params.lineBytes;
    PERCON_ASSERT(lines_total >= params.ways,
                  "cache smaller than one set");
    numSets_ = lines_total / params.ways;
    PERCON_ASSERT(std::has_single_bit(numSets_),
                  "set count must be a power of two (size %zu)",
                  params.sizeBytes);
    lineShift_ = static_cast<unsigned>(std::countr_zero(
        static_cast<unsigned long>(params.lineBytes)));
    lines_.assign(numSets_ * params.ways, Line{});
}

std::size_t
Cache::setFor(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
Cache::tagFor(Addr addr) const
{
    return addr >> lineShift_;
}

bool
Cache::lookup(Addr addr, bool fill_on_miss, bool count)
{
    std::size_t set = setFor(addr);
    Addr tag = tagFor(addr);
    Line *base = &lines_[set * params_.ways];
    ++useClock_;

    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = useClock_;
            if (count)
                ++hits_;
            return true;
        }
    }
    if (count)
        ++misses_;

    if (fill_on_miss) {
        // Victimize the LRU way (or any invalid way).
        unsigned victim = 0;
        for (unsigned w = 0; w < params_.ways; ++w) {
            if (!base[w].valid) {
                victim = w;
                break;
            }
            if (base[w].lastUse < base[victim].lastUse)
                victim = w;
        }
        base[victim].valid = true;
        base[victim].tag = tag;
        base[victim].lastUse = useClock_;
    }
    return false;
}

bool
Cache::access(Addr addr)
{
    return lookup(addr, true, true);
}

bool
Cache::probe(Addr addr) const
{
    std::size_t set = setFor(addr);
    Addr tag = tagFor(addr);
    const Line *base = &lines_[set * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::fill(Addr addr)
{
    lookup(addr, true, false);
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

} // namespace percon
