/**
 * @file
 * Two-level data memory hierarchy with a stream prefetcher and a
 * simple contended memory bus (Table 1: 32K/8-way L1D, 1M/8-way
 * unified L2, stream prefetch, "fully models buses and bus
 * contention" approximated as a serializing DRAM channel).
 */

#ifndef PERCON_MEMORY_HIERARCHY_HH
#define PERCON_MEMORY_HIERARCHY_HH

#include "memory/cache.hh"
#include "memory/prefetcher.hh"

namespace percon {

/** Latency and bus parameters. */
struct HierarchyParams
{
    CacheParams l1{"l1d", 32 * 1024, 8, 64};
    CacheParams l2{"l2", 1024 * 1024, 8, 64};

    Cycle l1Latency = 3;
    Cycle l2Latency = 18;
    Cycle memLatency = 220;

    /** Cycles the memory channel is busy per line transfer. */
    Cycle busCyclesPerLine = 2;

    unsigned prefetchStreams = 16;
    unsigned prefetchDegree = 4;
    bool prefetchEnabled = true;
};

/** Result of one data access. */
struct MemAccessResult
{
    Cycle latency = 0;   ///< load-to-use latency in cycles
    bool l1Hit = false;
    bool l2Hit = false;
};

class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params);

    /**
     * Perform a data access at simulation time @p now.
     *
     * Misses that reach memory queue on the serializing channel, so
     * bursts of misses see growing latencies (bus contention).
     */
    MemAccessResult access(Addr addr, Cycle now, bool is_store);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const StreamPrefetcher &prefetcher() const { return prefetcher_; }

    const HierarchyParams &params() const { return params_; }

    Count memAccesses() const { return memAccesses_; }
    Cycle totalBusWait() const { return totalBusWait_; }

  private:
    HierarchyParams params_;
    Cache l1_;
    Cache l2_;
    StreamPrefetcher prefetcher_;
    Cycle busFreeAt_ = 0;
    Count memAccesses_ = 0;
    Cycle totalBusWait_ = 0;
};

} // namespace percon

#endif // PERCON_MEMORY_HIERARCHY_HH
