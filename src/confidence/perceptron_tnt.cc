#include "perceptron_tnt.hh"

namespace percon {

PerceptronTntConfidence::PerceptronTntConfidence(std::size_t entries,
                                                 unsigned history_bits,
                                                 unsigned weight_bits,
                                                 std::int32_t lambda)
    : pred_(entries, history_bits, weight_bits), lambda_(lambda)
{
}

ConfidenceInfo
PerceptronTntConfidence::estimate(Addr pc, std::uint64_t ghr,
                                  bool) const
{
    std::size_t row = pred_.rowFor(pc);
    ConfidenceInfo info;
    info.raw = pred_.outputAt(row, ghr);
    info.row = static_cast<std::uint32_t>(row);
    std::int32_t mag = info.raw < 0 ? -info.raw : info.raw;
    info.low = mag <= lambda_;
    info.band = info.low ? ConfidenceBand::WeakLow : ConfidenceBand::High;
    return info;
}

void
PerceptronTntConfidence::train(Addr pc, std::uint64_t ghr,
                               bool predicted_taken, bool mispredicted,
                               const ConfidenceInfo &info)
{
    // Reconstruct the architectural direction: the prediction was
    // y >= 0; a misprediction means the branch went the other way.
    bool taken = mispredicted ? !predicted_taken : predicted_taken;
    PredMeta meta;
    meta.perceptronOut = info.raw;
    meta.taken = info.raw >= 0;
    meta.perceptronRow = info.row;
    pred_.update(pc, ghr, taken, meta);
}

std::size_t
PerceptronTntConfidence::storageBits() const
{
    return pred_.storageBits();
}

} // namespace percon
