#include "perceptron_conf.hh"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/logging.hh"
#include "common/perceptron_kernel.hh"

namespace percon {

PerceptronConfidence::PerceptronConfidence(
    const PerceptronConfParams &params)
    : params_(params), stride_(kernel::rowStride(params.historyBits))
{
    PERCON_ASSERT(params.entries >= 2 &&
                      (params.entries & (params.entries - 1)) == 0,
                  "perceptron entries must be a power of two");
    PERCON_ASSERT(params.historyBits >= 1 && params.historyBits <= 63,
                  "bad history length %u", params.historyBits);
    PERCON_ASSERT(params.weightBits >= 2 && params.weightBits <= 16,
                  "bad weight width %u", params.weightBits);
    if (params.reverseLambda) {
        PERCON_ASSERT(*params.reverseLambda >= params.lambda,
                      "reverse threshold below gating threshold");
    }
    weightMax_ = (1 << (params.weightBits - 1)) - 1;
    weightMin_ = -(1 << (params.weightBits - 1));
    weights_.assign(params.entries * stride_, 0);
}

std::size_t
PerceptronConfidence::indexFor(Addr pc, std::uint64_t ghr) const
{
    std::uint64_t index = pc >> 2;
    if (params_.pathHashBits > 0) {
        std::uint64_t mask = params_.pathHashBits >= 64
                                 ? ~0ULL
                                 : (1ULL << params_.pathHashBits) - 1;
        index ^= ghr & mask;
    }
    return index & (params_.entries - 1);
}

std::int32_t
PerceptronConfidence::weight(Addr pc, std::uint64_t ghr, unsigned i) const
{
    PERCON_ASSERT(i <= params_.historyBits, "weight index out of range");
    return weights_[indexFor(pc, ghr) * stride_ + i];
}

std::int32_t
PerceptronConfidence::outputAt(std::size_t row, std::uint64_t ghr) const
{
    return kernel::dotProduct(&weights_[row * stride_], ghr,
                              params_.historyBits);
}

std::int32_t
PerceptronConfidence::output(Addr pc, std::uint64_t ghr) const
{
    return outputAt(indexFor(pc, ghr), ghr);
}

ConfidenceInfo
PerceptronConfidence::estimate(Addr pc, std::uint64_t ghr, bool) const
{
    std::size_t row = indexFor(pc, ghr);
    ConfidenceInfo info;
    info.raw = outputAt(row, ghr);
    info.low = info.raw > params_.lambda;
    info.row = static_cast<std::uint32_t>(row);

    if (params_.reverseLambda) {
        if (info.raw > *params_.reverseLambda)
            info.band = ConfidenceBand::StrongLow;
        else if (info.raw > params_.lambda)
            info.band = ConfidenceBand::WeakLow;
        else
            info.band = ConfidenceBand::High;
    } else {
        info.band =
            info.low ? ConfidenceBand::WeakLow : ConfidenceBand::High;
    }
    return info;
}

void
PerceptronConfidence::train(Addr pc, std::uint64_t ghr, bool,
                            bool mispredicted, const ConfidenceInfo &info)
{
    // p: +1 mispredicted, -1 correct. c: +1 low-confidence, -1 high.
    int p = mispredicted ? 1 : -1;
    int c = info.low ? 1 : -1;
    std::int32_t y = info.raw;
    std::int32_t mag = y < 0 ? -y : y;

    if (c == p && mag > params_.trainThreshold)
        return;

    std::size_t row = info.row == ConfidenceInfo::kNoRow
                          ? indexFor(pc, ghr)
                          : info.row;
    PERCON_ASSERT(row < params_.entries, "stale estimator row %zu", row);
    kernel::trainRow(&weights_[row * stride_], ghr, params_.historyBits,
                     p, weightMin_, weightMax_);
}

namespace {

constexpr char kWeightMagic[8] = {'P', 'C', 'W', 'T', '0', '1', 0, 0};

} // namespace

void
PerceptronConfidence::saveWeights(std::ostream &os) const
{
    os.write(kWeightMagic, sizeof(kWeightMagic));
    std::uint64_t geom[3] = {params_.entries, params_.historyBits,
                             params_.weightBits};
    os.write(reinterpret_cast<const char *>(geom), sizeof(geom));
    // Serialize logical rows only: the lane padding is an in-memory
    // layout detail, not part of the wire format.
    for (std::size_t e = 0; e < params_.entries; ++e) {
        os.write(reinterpret_cast<const char *>(&weights_[e * stride_]),
                 static_cast<std::streamsize>(
                     (params_.historyBits + 1) * sizeof(weights_[0])));
    }
}

bool
PerceptronConfidence::loadWeights(std::istream &is)
{
    char magic[8] = {};
    std::uint64_t geom[3] = {};
    is.read(magic, sizeof(magic));
    is.read(reinterpret_cast<char *>(geom), sizeof(geom));
    if (!is || std::memcmp(magic, kWeightMagic, sizeof(magic)) != 0)
        return false;
    if (geom[0] != params_.entries || geom[1] != params_.historyBits ||
        geom[2] != params_.weightBits)
        return false;
    std::vector<std::int16_t> incoming(weights_.size(), 0);
    for (std::size_t e = 0; e < params_.entries; ++e) {
        is.read(reinterpret_cast<char *>(&incoming[e * stride_]),
                static_cast<std::streamsize>(
                    (params_.historyBits + 1) * sizeof(incoming[0])));
    }
    if (!is)
        return false;
    weights_ = std::move(incoming);
    return true;
}

std::size_t
PerceptronConfidence::storageBits() const
{
    return params_.entries * (params_.historyBits + 1) *
           params_.weightBits;
}

bool
PerceptronConfidence::saveState(std::ostream &os) const
{
    saveWeights(os);
    return static_cast<bool>(os);
}

bool
PerceptronConfidence::loadState(std::istream &is)
{
    return loadWeights(is);
}

std::string
PerceptronConfidence::stateKey() const
{
    // Every parameter that influences training: the geometry and the
    // thresholds (lambda feeds conf.low, which feeds the c term of
    // the update rule; reverseLambda only changes the band, which
    // train() does not read, but it is cheap to include and keeps
    // the key aligned with the constructor arguments).
    std::string key = std::string(name()) + "/e" +
                      std::to_string(params_.entries) + "/h" +
                      std::to_string(params_.historyBits) + "/w" +
                      std::to_string(params_.weightBits) + "/l" +
                      std::to_string(params_.lambda) + "/t" +
                      std::to_string(params_.trainThreshold) + "/r" +
                      (params_.reverseLambda
                           ? std::to_string(*params_.reverseLambda)
                           : std::string("none")) +
                      "/p" + std::to_string(params_.pathHashBits);
    return key;
}

} // namespace percon
