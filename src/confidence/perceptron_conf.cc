#include "perceptron_conf.hh"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace percon {

PerceptronConfidence::PerceptronConfidence(
    const PerceptronConfParams &params)
    : params_(params)
{
    PERCON_ASSERT(params.entries >= 2 &&
                      (params.entries & (params.entries - 1)) == 0,
                  "perceptron entries must be a power of two");
    PERCON_ASSERT(params.historyBits >= 1 && params.historyBits <= 63,
                  "bad history length %u", params.historyBits);
    PERCON_ASSERT(params.weightBits >= 2 && params.weightBits <= 16,
                  "bad weight width %u", params.weightBits);
    if (params.reverseLambda) {
        PERCON_ASSERT(*params.reverseLambda >= params.lambda,
                      "reverse threshold below gating threshold");
    }
    weightMax_ = (1 << (params.weightBits - 1)) - 1;
    weightMin_ = -(1 << (params.weightBits - 1));
    weights_.assign(params.entries * (params.historyBits + 1), 0);
}

std::size_t
PerceptronConfidence::indexFor(Addr pc, std::uint64_t ghr) const
{
    std::uint64_t index = pc >> 2;
    if (params_.pathHashBits > 0) {
        std::uint64_t mask = params_.pathHashBits >= 64
                                 ? ~0ULL
                                 : (1ULL << params_.pathHashBits) - 1;
        index ^= ghr & mask;
    }
    return index & (params_.entries - 1);
}

std::int32_t
PerceptronConfidence::weight(Addr pc, std::uint64_t ghr, unsigned i) const
{
    PERCON_ASSERT(i <= params_.historyBits, "weight index out of range");
    return weights_[indexFor(pc, ghr) * (params_.historyBits + 1) + i];
}

std::int32_t
PerceptronConfidence::output(Addr pc, std::uint64_t ghr) const
{
    const std::int16_t *w =
        &weights_[indexFor(pc, ghr) * (params_.historyBits + 1)];
    std::int32_t y = w[0];  // bias input is always +1
    for (unsigned i = 0; i < params_.historyBits; ++i) {
        bool taken = (ghr >> i) & 1ULL;
        y += taken ? w[i + 1] : -w[i + 1];
    }
    return y;
}

ConfidenceInfo
PerceptronConfidence::estimate(Addr pc, std::uint64_t ghr, bool) const
{
    ConfidenceInfo info;
    info.raw = output(pc, ghr);
    info.low = info.raw > params_.lambda;

    if (params_.reverseLambda) {
        if (info.raw > *params_.reverseLambda)
            info.band = ConfidenceBand::StrongLow;
        else if (info.raw > params_.lambda)
            info.band = ConfidenceBand::WeakLow;
        else
            info.band = ConfidenceBand::High;
    } else {
        info.band =
            info.low ? ConfidenceBand::WeakLow : ConfidenceBand::High;
    }
    return info;
}

void
PerceptronConfidence::train(Addr pc, std::uint64_t ghr, bool,
                            bool mispredicted, const ConfidenceInfo &info)
{
    // p: +1 mispredicted, -1 correct. c: +1 low-confidence, -1 high.
    int p = mispredicted ? 1 : -1;
    int c = info.low ? 1 : -1;
    std::int32_t y = info.raw;
    std::int32_t mag = y < 0 ? -y : y;

    if (c == p && mag > params_.trainThreshold)
        return;

    std::int16_t *w =
        &weights_[indexFor(pc, ghr) * (params_.historyBits + 1)];
    auto bump = [&](std::int16_t &weight, int direction) {
        std::int32_t next = weight + direction;
        if (next > weightMax_)
            next = weightMax_;
        if (next < weightMin_)
            next = weightMin_;
        weight = static_cast<std::int16_t>(next);
    };

    bump(w[0], p);
    for (unsigned i = 0; i < params_.historyBits; ++i) {
        int x = ((ghr >> i) & 1ULL) ? 1 : -1;
        bump(w[i + 1], p * x);
    }
}

namespace {

constexpr char kWeightMagic[8] = {'P', 'C', 'W', 'T', '0', '1', 0, 0};

} // namespace

void
PerceptronConfidence::saveWeights(std::ostream &os) const
{
    os.write(kWeightMagic, sizeof(kWeightMagic));
    std::uint64_t geom[3] = {params_.entries, params_.historyBits,
                             params_.weightBits};
    os.write(reinterpret_cast<const char *>(geom), sizeof(geom));
    os.write(reinterpret_cast<const char *>(weights_.data()),
             static_cast<std::streamsize>(weights_.size() *
                                          sizeof(weights_[0])));
}

bool
PerceptronConfidence::loadWeights(std::istream &is)
{
    char magic[8] = {};
    std::uint64_t geom[3] = {};
    is.read(magic, sizeof(magic));
    is.read(reinterpret_cast<char *>(geom), sizeof(geom));
    if (!is || std::memcmp(magic, kWeightMagic, sizeof(magic)) != 0)
        return false;
    if (geom[0] != params_.entries || geom[1] != params_.historyBits ||
        geom[2] != params_.weightBits)
        return false;
    std::vector<std::int16_t> incoming(weights_.size());
    is.read(reinterpret_cast<char *>(incoming.data()),
            static_cast<std::streamsize>(incoming.size() *
                                         sizeof(incoming[0])));
    if (!is)
        return false;
    weights_ = std::move(incoming);
    return true;
}

std::size_t
PerceptronConfidence::storageBits() const
{
    return params_.entries * (params_.historyBits + 1) *
           params_.weightBits;
}

} // namespace percon
