/**
 * @file
 * Tyson/Lick/Farrens pattern-based confidence: keep a per-branch
 * local history pattern (PAs-style) and call a branch high confidence
 * only when its pattern is in a fixed "predictable" set — all taken,
 * all not-taken, or within lambda flips of either.
 */

#ifndef PERCON_CONFIDENCE_TYSON_CONF_HH
#define PERCON_CONFIDENCE_TYSON_CONF_HH

#include <vector>

#include "confidence/confidence_estimator.hh"

namespace percon {

class TysonConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param entries local history table size (power of two)
     * @param local_bits pattern width
     * @param lambda high confidence when the pattern is within
     *               lambda bits of all-taken or all-not-taken
     */
    explicit TysonConfidence(std::size_t entries = 4 * 1024,
                             unsigned local_bits = 8, unsigned lambda = 1);

    ConfidenceInfo estimate(Addr pc, std::uint64_t ghr,
                            bool predicted_taken) const override;
    void train(Addr pc, std::uint64_t ghr, bool predicted_taken,
               bool mispredicted, const ConfidenceInfo &info) override;

    const char *name() const override { return "tyson"; }
    std::size_t storageBits() const override;

  private:
    std::size_t indexFor(Addr pc) const;

    std::vector<std::uint32_t> bht_;
    unsigned localBits_;
    unsigned lambda_;
};

} // namespace percon

#endif // PERCON_CONFIDENCE_TYSON_CONF_HH
