/**
 * @file
 * Branch confidence estimator interface.
 *
 * A confidence estimator watches the same (PC, global history,
 * prediction) stream the branch predictor sees and classifies each
 * dynamic branch as high or low confidence; low-confidence branches
 * are the ones expected to be mispredicted. Estimation happens in
 * the front end, training happens at retirement with the history
 * snapshot taken at prediction time — exactly the paper's split.
 *
 * The raw output is multi-valued where the hardware provides it
 * (perceptron dot product, JRS counter value); band() maps it onto
 * the paper's three-way classification used for combined pipeline
 * gating + branch reversal.
 */

#ifndef PERCON_CONFIDENCE_CONFIDENCE_ESTIMATOR_HH
#define PERCON_CONFIDENCE_CONFIDENCE_ESTIMATOR_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/types.hh"

namespace percon {

/** Paper §5.3/§5.5 three-way classification. */
enum class ConfidenceBand : std::uint8_t {
    High,       ///< leave the prediction alone
    WeakLow,    ///< apply pipeline gating
    StrongLow,  ///< reverse the prediction
};

const char *confidenceBandName(ConfidenceBand band);

/** Result of one front-end confidence estimate. */
struct ConfidenceInfo
{
    /** Sentinel for row: no table row cached at estimate time. */
    static constexpr std::uint32_t kNoRow = 0xffffffffu;

    /** Estimator-specific multi-valued output. For perceptrons this
     *  is the signed dot product (more positive = less confident);
     *  for counter schemes it is the counter value. */
    std::int32_t raw = 0;

    /** Classification against the estimator's primary threshold. */
    bool low = false;

    /** Three-way band (High/WeakLow/StrongLow). */
    ConfidenceBand band = ConfidenceBand::High;

    /** Estimator table row resolved at estimate time, so train()
     *  does not recompute the index (kNoRow when not applicable).
     *  Only meaningful for the ConfidenceInfo produced by the same
     *  estimator instance with the same (pc, ghr). */
    std::uint32_t row = kNoRow;
};

/** Abstract confidence estimator. */
class ConfidenceEstimator
{
  public:
    virtual ~ConfidenceEstimator() = default;

    /**
     * Front-end estimate for the branch at @p pc.
     *
     * Must not mutate estimator state: wrong-path branches consult
     * the estimator too, and their estimates die with the flush.
     *
     * @param ghr speculative global history at prediction time
     * @param predicted_taken the branch predictor's direction
     */
    virtual ConfidenceInfo estimate(Addr pc, std::uint64_t ghr,
                                    bool predicted_taken) const = 0;

    /**
     * Retire-time training.
     *
     * @param ghr the history snapshot used at prediction time
     * @param predicted_taken the original (pre-reversal) prediction
     * @param mispredicted whether that prediction was wrong
     * @param info the front-end estimate made for this branch
     */
    virtual void train(Addr pc, std::uint64_t ghr, bool predicted_taken,
                       bool mispredicted, const ConfidenceInfo &info) = 0;

    virtual const char *name() const = 0;

    /** Table storage in bits (the paper equalizes at 4KB = 32768). */
    virtual std::size_t storageBits() const = 0;

    /**
     * Canonical identity of every configuration parameter that
     * affects training, used to key warmed-state checkpoints: two
     * estimators with equal stateKey() train identically on the same
     * branch stream. Estimators that support saveState()/loadState()
     * must fold all training-relevant parameters in here; the
     * default (the bare name) is sufficient for estimators that do
     * not support serialization.
     */
    virtual std::string stateKey() const { return name(); }

    /**
     * Serialize trained state (weight tables, counters) into the
     * estimator's magic-header wire format (common/state_io.hh).
     * @return false when unsupported (the default) or on stream error
     */
    virtual bool
    saveState(std::ostream &os) const
    {
        (void)os;
        return false;
    }

    /**
     * Restore state written by saveState() on an identically
     * configured estimator.
     * @return false on magic/geometry/stream mismatch or when
     *         unsupported; state is left unchanged on failure
     */
    virtual bool
    loadState(std::istream &is)
    {
        (void)is;
        return false;
    }
};

} // namespace percon

#endif // PERCON_CONFIDENCE_CONFIDENCE_ESTIMATOR_HH
