#include "jrs.hh"

#include "common/logging.hh"

namespace percon {

JrsEstimator::JrsEstimator(std::size_t entries, unsigned counter_bits,
                           unsigned lambda, bool enhanced,
                           bool resetting, unsigned invert_lambda)
    : counterBits_(counter_bits), lambda_(lambda), enhanced_(enhanced),
      resetting_(resetting), invertLambda_(invert_lambda)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "JRS entries must be a power of two");
    PERCON_ASSERT(lambda <= (1u << counter_bits) - 1,
                  "lambda %u exceeds counter max", lambda);
    PERCON_ASSERT(invert_lambda <= lambda,
                  "inversion threshold above lambda");
    table_.assign(entries, SatCounter(counter_bits, 0));
    historyBits_ = 0;
    for (std::size_t e = entries; e > 1; e >>= 1)
        ++historyBits_;
}

std::size_t
JrsEstimator::indexFor(Addr pc, std::uint64_t ghr,
                       bool predicted_taken) const
{
    std::uint64_t hist = ghr;
    if (enhanced_) {
        // Grunwald et al.: predict first, then shift the prediction
        // into the history used for indexing.
        hist = (hist << 1) | (predicted_taken ? 1u : 0u);
    }
    std::uint64_t mask = (1ULL << historyBits_) - 1;
    return ((pc >> 2) ^ (hist & mask)) & (table_.size() - 1);
}

ConfidenceInfo
JrsEstimator::estimate(Addr pc, std::uint64_t ghr,
                       bool predicted_taken) const
{
    const SatCounter &ctr = table_[indexFor(pc, ghr, predicted_taken)];
    ConfidenceInfo info;
    info.raw = static_cast<std::int32_t>(ctr.value());
    info.low = ctr.value() < lambda_;
    if (invertLambda_ > 0 && ctr.value() < invertLambda_)
        info.band = ConfidenceBand::StrongLow;
    else if (info.low)
        info.band = ConfidenceBand::WeakLow;
    else
        info.band = ConfidenceBand::High;
    return info;
}

void
JrsEstimator::train(Addr pc, std::uint64_t ghr, bool predicted_taken,
                    bool mispredicted, const ConfidenceInfo &)
{
    SatCounter &ctr = table_[indexFor(pc, ghr, predicted_taken)];
    if (mispredicted) {
        if (resetting_)
            ctr.reset();
        else
            ctr.decrement();
    } else {
        ctr.increment();
    }
}

std::size_t
JrsEstimator::storageBits() const
{
    return table_.size() * counterBits_;
}

} // namespace percon
