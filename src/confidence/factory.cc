#include "factory.hh"

#include "common/logging.hh"
#include "confidence/composite.hh"
#include "confidence/jrs.hh"
#include "confidence/ones_counting.hh"
#include "confidence/perceptron_conf.hh"
#include "confidence/perceptron_tnt.hh"
#include "confidence/smith_conf.hh"
#include "confidence/tyson_conf.hh"

namespace percon {

const std::vector<std::string> &
estimatorNames()
{
    static const std::vector<std::string> names = {
        "jrs", "jrs-enhanced", "jrs-saturating", "jrs-sbi",
        "ones-counting", "perceptron-cic", "perceptron-tnt", "smith",
        "tyson", "composite",
    };
    return names;
}

std::unique_ptr<ConfidenceEstimator>
makeEstimator(const std::string &name)
{
    if (name == "jrs")
        return std::make_unique<JrsEstimator>(8 * 1024, 4, 15, false);
    if (name == "jrs-enhanced")
        return std::make_unique<JrsEstimator>(8 * 1024, 4, 15, true);
    if (name == "jrs-saturating")
        return std::make_unique<JrsEstimator>(8 * 1024, 4, 15, true,
                                              false);
    if (name == "jrs-sbi")
        return std::make_unique<JrsEstimator>(8 * 1024, 4, 15, true,
                                              true, 1);
    if (name == "composite")
        return std::make_unique<CompositeConfidence>();
    if (name == "ones-counting")
        return std::make_unique<OnesCountingEstimator>();
    if (name == "perceptron-cic")
        return std::make_unique<PerceptronConfidence>(
            PerceptronConfParams{});
    if (name == "perceptron-tnt")
        return std::make_unique<PerceptronTntConfidence>();
    if (name == "smith")
        return std::make_unique<SmithConfidence>();
    if (name == "tyson")
        return std::make_unique<TysonConfidence>();
    fatal("unknown confidence estimator '%s'", name.c_str());
}

} // namespace percon
