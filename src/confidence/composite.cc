#include "composite.hh"

namespace percon {

CompositeConfidence::CompositeConfidence(const CompositeParams &params)
    : params_(params),
      jrs_(std::make_unique<JrsEstimator>(params.jrsEntries,
                                          params.jrsCounterBits,
                                          params.jrsLambda, true)),
      perc_(std::make_unique<PerceptronConfidence>(params.perceptron))
{
}

ConfidenceInfo
CompositeConfidence::estimate(Addr pc, std::uint64_t ghr,
                              bool predicted_taken) const
{
    ConfidenceInfo jrs_info = jrs_->estimate(pc, ghr, predicted_taken);
    ConfidenceInfo perc_info =
        perc_->estimate(pc, ghr, predicted_taken);

    ConfidenceInfo info;
    info.raw = perc_info.raw;
    info.low = jrs_info.low && perc_info.raw > params_.vetoLambda;

    if (perc_info.band == ConfidenceBand::StrongLow)
        info.band = ConfidenceBand::StrongLow;
    else if (info.low)
        info.band = ConfidenceBand::WeakLow;
    else
        info.band = ConfidenceBand::High;
    return info;
}

void
CompositeConfidence::train(Addr pc, std::uint64_t ghr,
                           bool predicted_taken, bool mispredicted,
                           const ConfidenceInfo &info)
{
    jrs_->train(pc, ghr, predicted_taken, mispredicted, info);
    // The perceptron's own classification (vs its lambda) is what
    // its training rule conditions on, so re-derive it.
    ConfidenceInfo perc_info =
        perc_->estimate(pc, ghr, predicted_taken);
    perc_->train(pc, ghr, predicted_taken, mispredicted, perc_info);
}

std::size_t
CompositeConfidence::storageBits() const
{
    return jrs_->storageBits() + perc_->storageBits();
}

} // namespace percon
