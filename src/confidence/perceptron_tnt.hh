/**
 * @file
 * perceptron_tnt: the Jimenez-Lin suggestion evaluated (and rejected)
 * in §5.3 — use a perceptron branch *predictor* (trained with
 * taken/not-taken outcomes) and read confidence off the proximity of
 * its output to zero: |y| <= lambda means low confidence.
 *
 * The raw field of ConfidenceInfo carries the signed predictor
 * output so the Figure 6/7 density functions can be collected. The
 * inner predictor is held by value (this estimator is the sole
 * owner; one fewer pointer chase on the per-branch hot path) and the
 * table row resolved at estimate() time rides to train() in
 * ConfidenceInfo.
 */

#ifndef PERCON_CONFIDENCE_PERCEPTRON_TNT_HH
#define PERCON_CONFIDENCE_PERCEPTRON_TNT_HH

#include "bpred/perceptron_pred.hh"
#include "confidence/confidence_estimator.hh"

namespace percon {

class PerceptronTntConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param entries perceptron array size (power of two)
     * @param history_bits inputs per perceptron
     * @param weight_bits signed weight width
     * @param lambda low confidence when |output| <= lambda
     */
    explicit PerceptronTntConfidence(std::size_t entries = 128,
                                     unsigned history_bits = 32,
                                     unsigned weight_bits = 8,
                                     std::int32_t lambda = 30);

    ConfidenceInfo estimate(Addr pc, std::uint64_t ghr,
                            bool predicted_taken) const override;
    void train(Addr pc, std::uint64_t ghr, bool predicted_taken,
               bool mispredicted, const ConfidenceInfo &info) override;

    const char *name() const override { return "perceptron-tnt"; }
    std::size_t storageBits() const override;

    std::int32_t lambda() const { return lambda_; }

    /** The embedded direction predictor (for tests). */
    const PerceptronPredictor &predictor() const { return pred_; }

  private:
    PerceptronPredictor pred_;
    std::int32_t lambda_;
};

} // namespace percon

#endif // PERCON_CONFIDENCE_PERCEPTRON_TNT_HH
