/**
 * @file
 * Smith self-confidence: read confidence directly off a table of
 * direction saturating counters — a counter away from both rails is
 * low confidence (e.g. states 1 and 2 of a 2-bit counter). Evaluated
 * by Grunwald et al. and included here as a historical baseline.
 */

#ifndef PERCON_CONFIDENCE_SMITH_CONF_HH
#define PERCON_CONFIDENCE_SMITH_CONF_HH

#include <vector>

#include "common/sat_counter.hh"
#include "confidence/confidence_estimator.hh"

namespace percon {

class SmithConfidence : public ConfidenceEstimator
{
  public:
    /**
     * @param entries counter table size (power of two)
     * @param counter_bits direction counter width
     * @param lambda low confidence when rail distance > lambda
     */
    explicit SmithConfidence(std::size_t entries = 8 * 1024,
                             unsigned counter_bits = 3,
                             unsigned lambda = 0);

    ConfidenceInfo estimate(Addr pc, std::uint64_t ghr,
                            bool predicted_taken) const override;
    void train(Addr pc, std::uint64_t ghr, bool predicted_taken,
               bool mispredicted, const ConfidenceInfo &info) override;

    const char *name() const override { return "smith"; }
    std::size_t storageBits() const override;

  private:
    std::size_t indexFor(Addr pc) const;

    std::vector<SatCounter> table_;
    unsigned counterBits_;
    unsigned lambda_;
};

} // namespace percon

#endif // PERCON_CONFIDENCE_SMITH_CONF_HH
