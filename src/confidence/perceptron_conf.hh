/**
 * @file
 * The paper's contribution: a perceptron-based branch confidence
 * estimator trained with correct/incorrect prediction outcomes
 * ("perceptron_cic", §3).
 *
 * An array of perceptrons is indexed by branch PC. The input vector
 * is the global branch history in bipolar form (+1 taken, -1
 * not-taken) with a constant +1 bias input; the output is the dot
 * product with the stored weights. Output above the threshold lambda
 * means the execution is likely on the wrong path (low confidence).
 *
 * Training (at retirement, with the prediction-time history):
 *
 *     p = +1 if the branch was mispredicted else -1
 *     c = +1 if the front end called it low-confidence else -1
 *     if (sign(c) != sign(p) || |y| <= T)
 *         w[i] += p * x[i]          (saturating at the weight width)
 *
 * The paper's pseudocode lists a stray "y++" inside the update; y is
 * recomputed from the weights on every access, so the increment has
 * no architectural effect and we implement the weight update only
 * (see DESIGN.md §5).
 *
 * The multi-valued output supports the paper's dual-threshold band
 * classification (§5.5): y > reverse-threshold => StrongLow (reverse
 * the prediction), gate-threshold < y <= reverse-threshold => WeakLow
 * (pipeline gating), otherwise High.
 *
 * The dot product and the clamped weight bump run on the shared
 * vectorized kernels (common/perceptron_kernel.hh): weight rows are
 * padded to the kernel's lane-aligned stride and the row index
 * resolved at estimate() time rides to train() in ConfidenceInfo so
 * the (possibly path-hashed) index is computed once per branch.
 */

#ifndef PERCON_CONFIDENCE_PERCEPTRON_CONF_HH
#define PERCON_CONFIDENCE_PERCEPTRON_CONF_HH

#include <iosfwd>
#include <optional>
#include <vector>

#include "confidence/confidence_estimator.hh"

namespace percon {

/** Configuration of a PerceptronConfidence estimator. */
struct PerceptronConfParams
{
    std::size_t entries = 128;     ///< perceptrons in the array
    unsigned historyBits = 32;     ///< inputs per perceptron
    unsigned weightBits = 8;       ///< signed weight width
    std::int32_t lambda = 0;       ///< low-confidence threshold
    std::int32_t trainThreshold = 75; ///< T in the update rule

    /** Optional dual-threshold banding: y > reverseLambda is
     *  StrongLow, (lambda, reverseLambda] is WeakLow. When unset,
     *  band mirrors the binary low/high split. */
    std::optional<std::int32_t> reverseLambda;

    /** Path-hashed indexing (0 = paper's PC-only indexing): XOR this
     *  many low history bits into the perceptron index, so aliased
     *  branches reached along different paths use different
     *  perceptrons — at the cost of slower per-entry training. */
    unsigned pathHashBits = 0;
};

class PerceptronConfidence : public ConfidenceEstimator
{
  public:
    explicit PerceptronConfidence(const PerceptronConfParams &params);

    ConfidenceInfo estimate(Addr pc, std::uint64_t ghr,
                            bool predicted_taken) const override;
    void train(Addr pc, std::uint64_t ghr, bool predicted_taken,
               bool mispredicted, const ConfidenceInfo &info) override;

    const char *name() const override { return "perceptron-cic"; }
    std::size_t storageBits() const override;

    /** Raw dot-product output for a (pc, history) pair. */
    std::int32_t output(Addr pc, std::uint64_t ghr) const;

    const PerceptronConfParams &params() const { return params_; }

    /** Weight inspection for tests: weight i (0 = bias) of the
     *  perceptron selected by (pc, ghr) — the same row output() and
     *  train() use, including path-hashed indexing. */
    std::int32_t weight(Addr pc, std::uint64_t ghr, unsigned i) const;

    /**
     * Serialize / restore the trained weight array, so long
     * experiments can checkpoint a warm estimator. The stream format
     * carries the geometry and is validated on load.
     * @return false on format/geometry mismatch (state unchanged)
     */
    void saveWeights(std::ostream &os) const;
    bool loadWeights(std::istream &is);

    /** Checkpoint interface: delegates to the 'PCWT01' format. */
    bool saveState(std::ostream &os) const override;
    bool loadState(std::istream &is) override;

    /** Every training-relevant parameter (checkpoint cache key). */
    std::string stateKey() const override;

  private:
    std::size_t indexFor(Addr pc, std::uint64_t ghr) const;
    std::int32_t outputAt(std::size_t row, std::uint64_t ghr) const;

    PerceptronConfParams params_;
    std::vector<std::int16_t> weights_;  ///< entries x stride_ (padded)
    std::size_t stride_;                 ///< kernel::rowStride(history)
    std::int32_t weightMax_;
    std::int32_t weightMin_;
};

} // namespace percon

#endif // PERCON_CONFIDENCE_PERCEPTRON_CONF_HH
