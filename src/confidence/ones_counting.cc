#include "ones_counting.hh"

#include <bit>

#include "common/logging.hh"

namespace percon {

OnesCountingEstimator::OnesCountingEstimator(std::size_t entries,
                                             unsigned window_bits,
                                             unsigned lambda,
                                             bool enhanced)
    : windowBits_(window_bits), lambda_(lambda), enhanced_(enhanced)
{
    PERCON_ASSERT(entries >= 2 && std::has_single_bit(entries),
                  "ones-counting entries must be a power of two");
    PERCON_ASSERT(window_bits >= 1 && window_bits <= 16,
                  "bad window width %u", window_bits);
    PERCON_ASSERT(lambda <= window_bits,
                  "lambda %u exceeds window %u", lambda, window_bits);
    table_.assign(entries, 0);
    historyBits_ = static_cast<unsigned>(std::countr_zero(entries));
}

std::size_t
OnesCountingEstimator::indexFor(Addr pc, std::uint64_t ghr,
                                bool predicted_taken) const
{
    std::uint64_t hist = ghr;
    if (enhanced_)
        hist = (hist << 1) | (predicted_taken ? 1u : 0u);
    std::uint64_t mask = (1ULL << historyBits_) - 1;
    return ((pc >> 2) ^ (hist & mask)) & (table_.size() - 1);
}

unsigned
OnesCountingEstimator::onesAt(std::size_t index) const
{
    return static_cast<unsigned>(std::popcount(table_[index]));
}

ConfidenceInfo
OnesCountingEstimator::estimate(Addr pc, std::uint64_t ghr,
                                bool predicted_taken) const
{
    unsigned ones = onesAt(indexFor(pc, ghr, predicted_taken));
    ConfidenceInfo info;
    info.raw = static_cast<std::int32_t>(ones);
    info.low = ones < lambda_;
    info.band = info.low ? ConfidenceBand::WeakLow : ConfidenceBand::High;
    return info;
}

void
OnesCountingEstimator::train(Addr pc, std::uint64_t ghr,
                             bool predicted_taken, bool mispredicted,
                             const ConfidenceInfo &)
{
    std::size_t i = indexFor(pc, ghr, predicted_taken);
    std::uint16_t mask =
        windowBits_ >= 16
            ? 0xffffu
            : static_cast<std::uint16_t>((1u << windowBits_) - 1);
    table_[i] = static_cast<std::uint16_t>(
        ((table_[i] << 1) | (mispredicted ? 0u : 1u)) & mask);
}

std::size_t
OnesCountingEstimator::storageBits() const
{
    return table_.size() * windowBits_;
}

} // namespace percon
