/**
 * @file
 * Ones-counting confidence estimator — the third counter organization
 * studied by Jacobson, Rotenberg & Smith alongside saturating and
 * resetting counters: each entry keeps a shift register of the last
 * n prediction outcomes (1 = correct) and classifies high confidence
 * when the number of ones is at or above the threshold. Unlike the
 * miss-distance counter it forgives isolated mispredictions.
 */

#ifndef PERCON_CONFIDENCE_ONES_COUNTING_HH
#define PERCON_CONFIDENCE_ONES_COUNTING_HH

#include <vector>

#include "confidence/confidence_estimator.hh"

namespace percon {

class OnesCountingEstimator : public ConfidenceEstimator
{
  public:
    /**
     * @param entries table size (power of two)
     * @param window_bits outcomes remembered per entry (1..16)
     * @param lambda high confidence when ones >= lambda
     * @param enhanced include the prediction in the index
     */
    explicit OnesCountingEstimator(std::size_t entries = 2 * 1024,
                                   unsigned window_bits = 16,
                                   unsigned lambda = 15,
                                   bool enhanced = true);

    ConfidenceInfo estimate(Addr pc, std::uint64_t ghr,
                            bool predicted_taken) const override;
    void train(Addr pc, std::uint64_t ghr, bool predicted_taken,
               bool mispredicted, const ConfidenceInfo &info) override;

    const char *name() const override { return "ones-counting"; }
    std::size_t storageBits() const override;

  private:
    std::size_t indexFor(Addr pc, std::uint64_t ghr,
                         bool predicted_taken) const;
    unsigned onesAt(std::size_t index) const;

    std::vector<std::uint16_t> table_;
    unsigned windowBits_;
    unsigned lambda_;
    bool enhanced_;
    unsigned historyBits_;
};

} // namespace percon

#endif // PERCON_CONFIDENCE_ONES_COUNTING_HH
