#include "smith_conf.hh"

#include "common/logging.hh"

namespace percon {

SmithConfidence::SmithConfidence(std::size_t entries,
                                 unsigned counter_bits, unsigned lambda)
    : counterBits_(counter_bits), lambda_(lambda)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "Smith entries must be a power of two");
    table_.assign(entries,
                  SatCounter(counter_bits, (1u << counter_bits) / 2));
}

std::size_t
SmithConfidence::indexFor(Addr pc) const
{
    return (pc >> 2) & (table_.size() - 1);
}

ConfidenceInfo
SmithConfidence::estimate(Addr pc, std::uint64_t, bool) const
{
    const SatCounter &ctr = table_[indexFor(pc)];
    ConfidenceInfo info;
    info.raw = static_cast<std::int32_t>(ctr.railDistance());
    info.low = ctr.railDistance() > lambda_;
    info.band = info.low ? ConfidenceBand::WeakLow : ConfidenceBand::High;
    return info;
}

void
SmithConfidence::train(Addr pc, std::uint64_t, bool predicted_taken,
                       bool mispredicted, const ConfidenceInfo &)
{
    // The counter tracks direction; reconstruct the outcome.
    bool taken = mispredicted ? !predicted_taken : predicted_taken;
    SatCounter &ctr = table_[indexFor(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

std::size_t
SmithConfidence::storageBits() const
{
    return table_.size() * counterBits_;
}

} // namespace percon
