#include "tyson_conf.hh"

#include <bit>

#include "common/logging.hh"

namespace percon {

TysonConfidence::TysonConfidence(std::size_t entries, unsigned local_bits,
                                 unsigned lambda)
    : localBits_(local_bits), lambda_(lambda)
{
    PERCON_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0,
                  "Tyson entries must be a power of two");
    PERCON_ASSERT(local_bits >= 2 && local_bits <= 16,
                  "bad pattern width %u", local_bits);
    bht_.assign(entries, 0);
}

std::size_t
TysonConfidence::indexFor(Addr pc) const
{
    return (pc >> 2) & (bht_.size() - 1);
}

ConfidenceInfo
TysonConfidence::estimate(Addr pc, std::uint64_t, bool) const
{
    std::uint32_t pattern = bht_[indexFor(pc)];
    unsigned ones = static_cast<unsigned>(std::popcount(pattern));
    unsigned zeros = localBits_ - ones;
    unsigned distance = ones < zeros ? ones : zeros;

    ConfidenceInfo info;
    info.raw = static_cast<std::int32_t>(distance);
    info.low = distance > lambda_;
    info.band = info.low ? ConfidenceBand::WeakLow : ConfidenceBand::High;
    return info;
}

void
TysonConfidence::train(Addr pc, std::uint64_t, bool predicted_taken,
                       bool mispredicted, const ConfidenceInfo &)
{
    bool taken = mispredicted ? !predicted_taken : predicted_taken;
    std::uint32_t mask = (1u << localBits_) - 1;
    std::uint32_t &pattern = bht_[indexFor(pc)];
    pattern = ((pattern << 1) | (taken ? 1u : 0u)) & mask;
}

std::size_t
TysonConfidence::storageBits() const
{
    return bht_.size() * localBits_;
}

} // namespace percon
