/**
 * @file
 * JRS miss-distance-counter confidence estimator (Jacobson,
 * Rotenberg & Smith, MICRO-31), plus the "enhanced" variant of
 * Grunwald et al. that folds the prediction into the table index.
 *
 * A table of resetting counters is indexed gshare-style by
 * PC XOR history; a counter at or above lambda marks the branch high
 * confidence. The counter increments on every correct prediction of
 * the indexed slot and resets to zero on a misprediction, so its
 * value is the distance since the last miss. The original paper also
 * studied plain saturating (decrement-on-miss) counters; both are
 * supported.
 *
 * An optional inversion threshold turns the estimator into the
 * substrate of Klauser/Manne/Grunwald Selective Branch Inversion
 * (the paper's reference [8]): counters below it classify the branch
 * StrongLow, i.e. reverse-worthy.
 */

#ifndef PERCON_CONFIDENCE_JRS_HH
#define PERCON_CONFIDENCE_JRS_HH

#include <vector>

#include "common/sat_counter.hh"
#include "confidence/confidence_estimator.hh"

namespace percon {

class JrsEstimator : public ConfidenceEstimator
{
  public:
    /**
     * @param entries table size (power of two); paper uses 8K
     * @param counter_bits resetting-counter width; paper uses 4
     * @param lambda high-confidence threshold (counter >= lambda)
     * @param enhanced include the prediction in the index
     * @param resetting miss-distance (reset-on-miss) counters when
     *        true; plain saturating up/down counters when false
     * @param invert_lambda counters strictly below this classify
     *        StrongLow (selective branch inversion); 0 disables
     */
    explicit JrsEstimator(std::size_t entries = 8 * 1024,
                          unsigned counter_bits = 4, unsigned lambda = 15,
                          bool enhanced = true, bool resetting = true,
                          unsigned invert_lambda = 0);

    ConfidenceInfo estimate(Addr pc, std::uint64_t ghr,
                            bool predicted_taken) const override;
    void train(Addr pc, std::uint64_t ghr, bool predicted_taken,
               bool mispredicted, const ConfidenceInfo &info) override;

    const char *name() const override
    {
        return enhanced_ ? "jrs-enhanced" : "jrs";
    }
    std::size_t storageBits() const override;

    unsigned lambda() const { return lambda_; }

  private:
    std::size_t indexFor(Addr pc, std::uint64_t ghr,
                         bool predicted_taken) const;

    std::vector<SatCounter> table_;
    unsigned counterBits_;
    unsigned lambda_;
    bool enhanced_;
    bool resetting_;
    unsigned invertLambda_;
    unsigned historyBits_;
};

} // namespace percon

#endif // PERCON_CONFIDENCE_JRS_HH
