/**
 * @file
 * String-keyed confidence estimator factory.
 */

#ifndef PERCON_CONFIDENCE_FACTORY_HH
#define PERCON_CONFIDENCE_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "confidence/confidence_estimator.hh"

namespace percon {

/** Known estimator configuration names. */
const std::vector<std::string> &estimatorNames();

/**
 * Build an estimator by name with its paper-default configuration:
 * "jrs", "jrs-enhanced", "perceptron-cic", "perceptron-tnt",
 * "smith", "tyson". fatal() on unknown names.
 */
std::unique_ptr<ConfidenceEstimator>
makeEstimator(const std::string &name);

} // namespace percon

#endif // PERCON_CONFIDENCE_FACTORY_HH
