#include "confidence_estimator.hh"

#include "common/logging.hh"

namespace percon {

const char *
confidenceBandName(ConfidenceBand band)
{
    switch (band) {
      case ConfidenceBand::High:
        return "high";
      case ConfidenceBand::WeakLow:
        return "weak-low";
      case ConfidenceBand::StrongLow:
        return "strong-low";
    }
    panic("bad confidence band %d", static_cast<int>(band));
}

} // namespace percon
