/**
 * @file
 * Composite confidence estimator: enhanced-JRS coverage with a
 * perceptron veto.
 *
 * The paper's Table 3 shows the two estimators sit at opposite
 * corners: JRS covers almost all mispredictions but flags far too
 * many correct predictions; the perceptron flags accurately but
 * covers less. This extension (in the spirit of the paper's
 * "spectrum of design options") runs both at once: a branch is
 * weakly low confident when JRS flags it *and* the perceptron does
 * not actively vouch for it (output below the veto threshold), and
 * strongly low confident when the perceptron itself crosses its
 * reversal threshold.
 */

#ifndef PERCON_CONFIDENCE_COMPOSITE_HH
#define PERCON_CONFIDENCE_COMPOSITE_HH

#include <memory>

#include "confidence/jrs.hh"
#include "confidence/perceptron_conf.hh"

namespace percon {

/** Configuration of a CompositeConfidence estimator. */
struct CompositeParams
{
    std::size_t jrsEntries = 8 * 1024;
    unsigned jrsCounterBits = 4;
    unsigned jrsLambda = 15;

    PerceptronConfParams perceptron{
        .entries = 128,
        .historyBits = 32,
        .weightBits = 8,
        .lambda = 0,
        .trainThreshold = 75,
        .reverseLambda = 50,
    };

    /** JRS low-confidence flags survive only when the perceptron
     *  output is above this (i.e. the perceptron does not strongly
     *  vouch for the branch). */
    std::int32_t vetoLambda = -100;
};

class CompositeConfidence : public ConfidenceEstimator
{
  public:
    explicit CompositeConfidence(const CompositeParams &params = {});

    ConfidenceInfo estimate(Addr pc, std::uint64_t ghr,
                            bool predicted_taken) const override;
    void train(Addr pc, std::uint64_t ghr, bool predicted_taken,
               bool mispredicted, const ConfidenceInfo &info) override;

    const char *name() const override { return "composite"; }
    std::size_t storageBits() const override;

    const JrsEstimator &jrs() const { return *jrs_; }
    const PerceptronConfidence &perceptron() const { return *perc_; }

  private:
    CompositeParams params_;
    std::unique_ptr<JrsEstimator> jrs_;
    std::unique_ptr<PerceptronConfidence> perc_;
};

} // namespace percon

#endif // PERCON_CONFIDENCE_COMPOSITE_HH
