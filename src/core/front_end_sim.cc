#include "front_end_sim.hh"

namespace percon {

FrontEndResult
runFrontEnd(ProgramModel &program, BranchPredictor &predictor,
            ConfidenceEstimator *estimator, const FrontEndConfig &config)
{
    FrontEndResult res;
    if (config.collectDensity) {
        res.cbDensity = Histogram(config.densityLo, config.densityHi,
                                  config.densityBucket);
        res.mbDensity = Histogram(config.densityLo, config.densityHi,
                                  config.densityBucket);
    }

    // In a front-end-only study prediction-time and retire-time
    // history coincide: use the predictor-visible history built from
    // actual outcomes (equivalent to a machine with ideal recovery).
    std::uint64_t ghr = 0;

    Count total = config.warmupBranches + config.measureBranches;
    for (Count n = 0; n < total; ++n) {
        unsigned skipped = 0;
        MicroOp br = program.nextBranch(skipped);

        PredMeta meta;
        bool pred = predictor.predict(br.pc, ghr, meta);
        bool misp = pred != br.taken;

        ConfidenceInfo info;
        if (estimator)
            info = estimator->estimate(br.pc, ghr, pred);

        bool measuring = n >= config.warmupBranches;
        if (measuring) {
            res.uops += skipped + 1;
            ++res.branches;
            if (estimator) {
                res.matrix.record(misp, info.low);
                if (config.collectDensity) {
                    (misp ? res.mbDensity : res.cbDensity)
                        .add(info.raw);
                }
            } else {
                res.matrix.record(misp, false);
            }
        }

        predictor.update(br.pc, ghr, br.taken, meta);
        if (estimator)
            estimator->train(br.pc, ghr, pred, misp, info);

        ghr = (ghr << 1) | (br.taken ? 1u : 0u);
    }
    return res;
}

} // namespace percon
