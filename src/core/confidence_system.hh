/**
 * @file
 * ConfidenceSystem: the library's flagship embedding API.
 *
 * Bundles the paper's perceptron confidence estimator with the
 * dual-threshold speculation-control policy and exposes the two
 * touch points an existing simulator (or RTL model) needs:
 *
 *   onPredict() at fetch  -> what to do with this branch
 *   onResolve() at retire -> training
 *
 * plus running classification statistics. Downstream users who have
 * their own pipeline can integrate confidence-driven gating and
 * reversal with these two calls; users without one can use the full
 * Core model in uarch/.
 */

#ifndef PERCON_CORE_CONFIDENCE_SYSTEM_HH
#define PERCON_CORE_CONFIDENCE_SYSTEM_HH

#include <memory>

#include "common/stats.hh"
#include "confidence/perceptron_conf.hh"

namespace percon {

/** Front-end action recommended for one branch. */
struct BranchDecision
{
    ConfidenceInfo confidence;

    /** Invert the predicted direction (strongly low confident). */
    bool reverse = false;

    /** Count this branch toward the pipeline-gating counter
     *  (weakly low confident). */
    bool gate = false;
};

/** Policy knobs for a ConfidenceSystem. */
struct ConfidenceSystemParams
{
    /** Dual thresholds per the paper's §5.5 scheme: gate in
     *  (lambda, reverseLambda], reverse above reverseLambda. The
     *  paper picked (−75, 0] empirically from its output densities;
     *  on this repository's synthetic workloads the strong-low
     *  region sits slightly higher, so the default reverse threshold
     *  is 50 (see EXPERIMENTS.md). */
    PerceptronConfParams perceptron{
        .entries = 128,
        .historyBits = 32,
        .weightBits = 8,
        .lambda = -75,
        .trainThreshold = 75,
        .reverseLambda = 50,
    };

    bool enableReversal = true;
    bool enableGating = true;
};

class ConfidenceSystem
{
  public:
    explicit ConfidenceSystem(
        const ConfidenceSystemParams &params = {});

    /**
     * Consult the estimator for a branch about to be predicted.
     *
     * @param pc branch address
     * @param ghr speculative global history (bit 0 newest)
     * @param predicted_taken the branch predictor's direction
     */
    BranchDecision onPredict(Addr pc, std::uint64_t ghr,
                             bool predicted_taken) const;

    /**
     * Train with the resolved outcome. Call at retirement with the
     * prediction-time history and the decision returned then.
     *
     * @param mispredicted whether the ORIGINAL (pre-reversal)
     *        prediction was wrong
     */
    void onResolve(Addr pc, std::uint64_t ghr, bool predicted_taken,
                   bool mispredicted, const BranchDecision &decision);

    /** Classification quality so far (vs. original predictions). */
    const ConfidenceMatrix &matrix() const { return matrix_; }

    /** The underlying estimator, e.g. for storage accounting. */
    const PerceptronConfidence &estimator() const { return *estimator_; }

    const ConfidenceSystemParams &params() const { return params_; }

  private:
    ConfidenceSystemParams params_;
    std::unique_ptr<PerceptronConfidence> estimator_;
    ConfidenceMatrix matrix_;
};

} // namespace percon

#endif // PERCON_CORE_CONFIDENCE_SYSTEM_HH
