/**
 * @file
 * Warmed-state checkpoints for sampled simulation.
 *
 * A sweep visits the same (workload, front end) under many backend /
 * policy points, and every one of them pays the same functional
 * warmup before measuring. A warm checkpoint serializes the
 * architectural predictor state that functional warming produces —
 * branch-predictor tables, confidence-estimator weights, the global
 * history register and the BTB — together with the trace-cursor
 * position, so sweep points that differ only in backend or policy
 * parameters restore the blob and skip the warmup entirely.
 *
 * The blob follows the repo's magic-header wire-format convention
 * (common/state_io.hh): magic "PWCK01", u64 header words, then the
 * components' own saveState() sections in a fixed order. Loaders
 * return false on any mismatch; a caller whose load fails must
 * re-warm from scratch (component sections restore independently, so
 * a mid-blob failure can leave earlier components restored — which
 * the fresh functional warm then overwrites with training on top;
 * only byte-level sharing is lost, never correctness of the
 * fallback... see loadWarmCheckpoint()).
 *
 * CheckpointStore is the core-layer interface (this header must not
 * depend on driver/); the concrete thread-safe memoizing cache lives
 * in driver/checkpoint_cache.hh, mirroring the SnapshotProvider /
 * SnapshotCache split.
 */

#ifndef PERCON_CORE_WARM_CHECKPOINT_HH
#define PERCON_CORE_WARM_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/types.hh"
#include "trace/program_model.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

class BranchPredictor;
class ConfidenceEstimator;
class Btb;

/**
 * Get-or-build store for warm-checkpoint blobs. The first caller for
 * a key owns the build (its @p build callback runs, typically warming
 * that caller's own core inline and serializing the result);
 * concurrent callers for the same key block and share the blob.
 * An empty blob is a valid negative entry: it means the builder could
 * not serialize (some component lacks saveState()), and every
 * consumer should warm directly.
 */
class CheckpointStore
{
  public:
    virtual ~CheckpointStore() = default;

    virtual std::shared_ptr<const std::string>
    get(const std::string &key,
        const std::function<std::string()> &build) = 0;
};

/**
 * The warmed architectural state of one single-thread run. For
 * saving, the pointers reference the live components to serialize
 * and the scalar fields carry the cursor/history bookkeeping; for
 * loading, the pointers reference the components to restore into and
 * the scalars come back from the blob.
 */
struct WarmState
{
    BranchPredictor *predictor = nullptr;   ///< required
    ConfidenceEstimator *estimator = nullptr; ///< null = no estimator
    Btb *btb = nullptr;                     ///< null = BTB disabled

    std::uint64_t ghr = 0;      ///< SpecHistory bits after warming
    Count warmedUops = 0;       ///< uops consumed by the warm
    Count cursorPos = 0;        ///< SnapshotCursor::pos()
    Count cursorMemPos = 0;     ///< SnapshotCursor::memOrdinal()
    Count cursorBrPos = 0;      ///< SnapshotCursor::branchOrdinal()
};

/**
 * Serialize @p st. Returns false (leaving the stream short) when any
 * component cannot save itself — callers should then publish an
 * empty blob so consumers fall back to direct warming.
 */
bool saveWarmCheckpoint(std::ostream &os, const WarmState &st);

/**
 * Restore a blob into the components referenced by @p st and fill in
 * its scalar fields. The component layout flags in the blob must
 * match the pointers provided (estimator/BTB present or not), and
 * every component section must validate against the live object's
 * geometry. False on any mismatch; the caller must then warm from
 * scratch (earlier sections may already be restored — harmless, as
 * the fresh warm trains over them, but the run is then a "miss").
 */
bool loadWarmCheckpoint(std::istream &is, WarmState &st);

/**
 * Canonical cache key for a warm checkpoint: the full workload
 * identity (programKey), the warm length, and every configuration
 * axis that functional warming reads — predictor kind, estimator
 * training identity (ConfidenceEstimator::stateKey()), and the BTB
 * geometry. Backend and policy parameters are deliberately absent:
 * that is what makes the checkpoint shareable across those sweeps.
 */
std::string warmCheckpointKey(const ProgramParams &params,
                              Count warm_uops,
                              const PipelineConfig &config,
                              const std::string &predictor_name,
                              const std::string &estimator_state_key);

/**
 * Process-wide default for checkpointed warming in sampled runs:
 * false unless the PERCON_WARM_CHECKPOINT environment variable says
 * on/1/true. Unrecognized values warn and keep the default.
 */
bool warmCheckpointDefault();

} // namespace percon

#endif // PERCON_CORE_WARM_CHECKPOINT_HH
