#include "prediction_key.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "trace/trace_snapshot.hh"

namespace percon {

namespace {

void
appendCache(std::string &key, const char *tag, const CacheParams &c)
{
    key += tag;
    key += "=";
    key += std::to_string(c.sizeBytes);
    key += "x";
    key += std::to_string(c.ways);
    key += "x";
    key += std::to_string(c.lineBytes);
}

/**
 * Every PipelineConfig field, serialized. The stream depends on the
 * complete machine — timing decides the fetch/retire interleaving
 * the predictor trains under — so nothing here is optional.
 */
std::string
machineKey(const PipelineConfig &c)
{
    std::string key = "w";
    key += std::to_string(c.width);
    key += "f" + std::to_string(c.frontEndDepth);
    key += "b" + std::to_string(c.backEndDepth);
    key += "rob" + std::to_string(c.robSize);
    key += "lb" + std::to_string(c.loadBuffers);
    key += "sb" + std::to_string(c.storeBuffers);
    key += "si" + std::to_string(c.schedInt);
    key += "sm" + std::to_string(c.schedMem);
    key += "sf" + std::to_string(c.schedFp);
    key += "ui" + std::to_string(c.unitsInt);
    key += "um" + std::to_string(c.unitsMem);
    key += "uf" + std::to_string(c.unitsFp);
    key += "/btb=";
    if (c.btbEnabled) {
        key += std::to_string(c.btbEntries);
        key += "x";
        key += std::to_string(c.btbWays);
        key += "p" + std::to_string(c.btbMissPenalty);
    } else {
        key += "off";
    }
    key += "/tc=";
    if (c.traceCacheEnabled) {
        key += std::to_string(c.traceCache.sizeBytes);
        key += "x";
        key += std::to_string(c.traceCache.ways);
        key += "x";
        key += std::to_string(c.traceCache.lineBytes);
        key += "p" + std::to_string(c.traceCacheMissPenalty);
    } else {
        key += "off";
    }
    key += "/lat=";
    key += std::to_string(c.intAluLatency);
    key += ",";
    key += std::to_string(c.intMulLatency);
    key += ",";
    key += std::to_string(c.fpAluLatency);
    key += ",";
    key += std::to_string(c.branchLatency);
    key += "/mem=";
    appendCache(key, "l1", c.mem.l1);
    appendCache(key, ",l2", c.mem.l2);
    key += ",lat" + std::to_string(c.mem.l1Latency);
    key += "," + std::to_string(c.mem.l2Latency);
    key += "," + std::to_string(c.mem.memLatency);
    key += ",bus" + std::to_string(c.mem.busCyclesPerLine);
    key += ",pf";
    if (c.mem.prefetchEnabled) {
        key += std::to_string(c.mem.prefetchStreams);
        key += "x";
        key += std::to_string(c.mem.prefetchDegree);
    } else {
        key += "off";
    }
    return key;
}

/** True when the policy cannot influence the prediction stream (see
 *  the header's purity argument). */
bool
policyPure(const SpeculationControl &spec)
{
    return spec.gateThreshold == 0 && !spec.reversalEnabled;
}

} // namespace

std::string
predictionKey(const ProgramParams &params,
              const PipelineConfig &config,
              const std::string &predictor_name,
              const PredictionRunShape &shape,
              const SpeculationControl &spec,
              const std::string &estimator_state_key)
{
    std::string key = programKey(params);
    key += "/machine=";
    key += machineKey(config);
    key += "/pred=";
    key += predictor_name;
    key += "/wpseed=";
    key += std::to_string(shape.wrongPathSeed);
    key += "/run=";
    key += std::to_string(shape.warmupUops);
    key += "+";
    key += std::to_string(shape.measureUops);
    if (shape.sampled) {
        key += "/sampled=";
        key += std::to_string(shape.sampleWarmUops);
        key += "+";
        key += std::to_string(shape.sampleMeasureUops);
    } else {
        key += "/exact";
    }
    if (policyPure(spec)) {
        // All ungated, non-reversing points of this
        // workload/machine/predictor share one recording, whatever
        // their estimator — the sweep-sharing win.
        key += "/policy=pure";
    } else {
        key += "/policy=gate";
        key += std::to_string(spec.gateThreshold);
        key += ",rev";
        key += spec.reversalEnabled ? "1" : "0";
        key += ",lat";
        key += std::to_string(spec.confidenceLatency);
        key += ",oracle";
        key += spec.oracleGating ? "1" : "0";
        key += ",throttle";
        key += std::to_string(spec.throttleWidth);
        key += "/est=";
        key += estimator_state_key.empty() ? "none"
                                           : estimator_state_key;
    }
    return key;
}

} // namespace percon
