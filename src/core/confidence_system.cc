#include "confidence_system.hh"

namespace percon {

ConfidenceSystem::ConfidenceSystem(const ConfidenceSystemParams &params)
    : params_(params),
      estimator_(std::make_unique<PerceptronConfidence>(params.perceptron))
{
}

BranchDecision
ConfidenceSystem::onPredict(Addr pc, std::uint64_t ghr,
                            bool predicted_taken) const
{
    BranchDecision d;
    d.confidence = estimator_->estimate(pc, ghr, predicted_taken);
    d.reverse = params_.enableReversal &&
                d.confidence.band == ConfidenceBand::StrongLow;
    d.gate = params_.enableGating &&
             d.confidence.band == ConfidenceBand::WeakLow;
    return d;
}

void
ConfidenceSystem::onResolve(Addr pc, std::uint64_t ghr,
                            bool predicted_taken, bool mispredicted,
                            const BranchDecision &decision)
{
    matrix_.record(mispredicted, decision.confidence.low);
    estimator_->train(pc, ghr, predicted_taken, mispredicted,
                      decision.confidence);
}

} // namespace percon
