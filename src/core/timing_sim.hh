/**
 * @file
 * Full-timing experiment driver: builds a Core around a benchmark
 * profile, predictor and estimator, runs warmup + measurement, and
 * reports the paper's pipeline-gating metrics (U = reduction in
 * total uops executed, P = performance loss) relative to an ungated
 * baseline run of the same machine.
 */

#ifndef PERCON_CORE_TIMING_SIM_HH
#define PERCON_CORE_TIMING_SIM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/prediction_key.hh"
#include "core/warm_checkpoint.hh"
#include "trace/benchmarks.hh"
#include "trace/trace_snapshot.hh"
#include "uarch/core.hh"

namespace percon {

/** How a timing run executes (see TimingConfig::simMode). */
enum class SimMode
{
    /** Detailed simulation end to end: detailed warmup + detailed
     *  measurement. Bit-identical to the historical behaviour. */
    Exact,
    /** SMARTS-style sampling: functional-warm fast-forward
     *  (PipelineEngine::functionalWarm) replaces the detailed
     *  warmup, then detailed measurement windows of
     *  sampleMeasureUops alternate with functional warms of
     *  sampleWarmUops until measureUops have been measured.
     *  Aggregate statistics come with per-window error bars. */
    Sampled,
};

/** Run lengths for timing experiments (paper: 10M warmup + 20M). */
struct TimingConfig
{
    Count warmupUops = 300'000;
    Count measureUops = 1'000'000;

    SimMode simMode = SimMode::Exact;

    /** Sampled mode: functionally-warmed uops between measurement
     *  windows, and detailed uops per measurement window. */
    Count sampleWarmUops = 80'000;
    Count sampleMeasureUops = 20'000;

    /** Sampled mode: serialize the functionally-warmed state through
     *  checkpointStore so sweep points sharing a (workload, front
     *  end) skip the warmup. Ignored in exact mode (the detailed
     *  warmup stays untouched) and without a store. */
    bool checkpointWarm = false;

    /** Where warm checkpoints live when checkpointWarm is on. Not
     *  owned; the sweep driver injects the process-wide
     *  CheckpointCache. Null disables checkpointing. */
    CheckpointStore *checkpointStore = nullptr;

    /** Seed for the wrong-path synthesizer. Unset means the legacy
     *  derivation (program seed ^ 0xdead); the sweep driver sets an
     *  environment-derived seed here so results depend only on the
     *  run key, never on thread scheduling. */
    std::optional<std::uint64_t> wrongPathSeed;

    /** Attach an InvariantAuditor to the core for the whole run and
     *  report its verdict in TimingResult::audit. Auditing never
     *  changes CoreStats; it costs some simulator throughput. */
    bool audit = false;

    /** Replay the correct path from an immutable TraceSnapshot
     *  instead of generating it live. Bit-identical results either
     *  way (see trace/trace_snapshot.hh); replay is faster and lets
     *  concurrent runs of the same workload share one trace. */
    bool traceSnapshot = traceSnapshotDefault();

    /** Where snapshots come from when traceSnapshot is on. Null
     *  builds a private one (single runs); the sweep driver injects
     *  its process-wide SnapshotCache here. Not owned. */
    SnapshotProvider *snapshotProvider = nullptr;

    /** Prediction-stream snapshot tier: record the predictor/BTB
     *  outcome stream once per prediction key and replay it on every
     *  later run of the same key, skipping the live predictor work
     *  entirely. Bit-identical results either way (see
     *  core/prediction_key.hh). Requires predictionProvider; without
     *  one the flag is inert (a single run with nothing to share
     *  cannot profit from recording itself). */
    bool predSnapshot = predSnapshotDefault();

    /** Where recorded prediction streams live when predSnapshot is
     *  on. Not owned; the drivers inject the process-wide
     *  PredictionCache. Null disables the tier. */
    PredictionProvider *predictionProvider = nullptr;

    /** Scale both by the PERCON_UOPS env var when present
     *  (value = measure uops; warmup scales proportionally), then
     *  let PERCON_WARMUP_UOPS pin the warmup length outright for
     *  warmup-heavy shapes. */
    static TimingConfig fromEnv();
};

/**
 * Snapshot length that covers a warmup+measure run on @p config:
 * retire-goal overshoot plus everything left in flight at the end,
 * rounded up to a 64 Ki-uop multiple so runs on different machine
 * geometries still share cache entries.
 */
Count snapshotLengthFor(const PipelineConfig &config,
                        const TimingConfig &timing);

/** Factory for fresh estimators (one per run). */
using EstimatorFactory =
    std::function<std::unique_ptr<ConfidenceEstimator>()>;

/** Result of one timing run on one benchmark. */
struct TimingResult
{
    std::string benchmark;
    CoreStats stats;
    /** Invariant-audit verdict: "off" when auditing was not
     *  requested, else AuditReport::verdict(). */
    std::string audit = "off";

    /** "on" when the correct path replayed from a snapshot. */
    std::string snapshot = "off";

    /** Wall time spent acquiring the snapshot (a cache hit makes
     *  this ~0; a private build pays one generator pass). */
    double snapshotBuildSeconds = 0.0;

    /** Uops served by the cursor's live-tail fallback; nonzero means
     *  snapshotLengthFor() under-covered the run. */
    Count snapshotTailUops = 0;

    /** "exact" or "sampled" (TimingConfig::simMode). */
    std::string simMode = "exact";

    /** Sampled mode: number of detailed measurement windows. */
    Count sampledWindows = 0;

    /** Sampled mode: standard errors (sample stddev / sqrt(k)) of
     *  the per-window IPC / PVN / SPEC samples; 0 in exact mode or
     *  with fewer than two windows. */
    double ipcErr = 0.0;
    double pvnErr = 0.0;
    double specErr = 0.0;

    /** Warm-checkpoint disposition: "off" (not requested /
     *  unavailable), "miss" (this run built the blob, or restore
     *  failed and it re-warmed) or "hit" (restored a shared blob).
     *  Sweep rows override this with a deterministic input-order
     *  label, like the snapshot field. */
    std::string checkpoint = "off";

    /** Prediction-stream disposition: "off" (tier disabled), "miss"
     *  (this run recorded the stream, running fully live) or "hit"
     *  (replayed a recorded stream, skipping live predictor work).
     *  Sweep rows override this with a deterministic input-order
     *  label, like the snapshot field. While the tier is active the
     *  warm-checkpoint tier is bypassed (checkpoint stays "off"): a
     *  checkpoint hit skips functional warming and would desync the
     *  replay cursor from the recorded stream. */
    std::string predSnapshot = "off";

    /** Wall-time split of the run: functional warming (including
     *  checkpoint save/restore) vs detailed simulation. Exact mode
     *  reports everything under detailSeconds. */
    double warmSeconds = 0.0;
    double detailSeconds = 0.0;
};

/**
 * Run one benchmark through a Core.
 *
 * @param spec benchmark profile
 * @param config machine geometry
 * @param predictor_name bpred factory key (fresh instance per run)
 * @param make_estimator estimator factory; null for no estimator
 * @param spec_ctrl gating/reversal policy
 */
TimingResult runTiming(const BenchmarkSpec &spec,
                       const PipelineConfig &config,
                       const std::string &predictor_name,
                       const EstimatorFactory &make_estimator,
                       const SpeculationControl &spec_ctrl,
                       const TimingConfig &timing);

/** Gating efficacy of a policy run vs. the matching baseline run. */
struct GatingMetrics
{
    double uopReductionPct = 0.0;  ///< U in Tables 4-6
    double perfLossPct = 0.0;      ///< P in Tables 4-6 (IPC loss)
};

GatingMetrics gatingMetrics(const CoreStats &baseline,
                            const CoreStats &policy);

/**
 * Convenience: run all twelve benchmarks under baseline + policy and
 * return per-benchmark metrics plus the aggregate (uop-weighted U,
 * mean P), as the paper reports "average reduction ... across all
 * benchmarks".
 */
struct SweepResult
{
    std::vector<std::string> names;
    std::vector<CoreStats> baseline;
    std::vector<CoreStats> policy;
    GatingMetrics average;
};

SweepResult runGatingSweep(const PipelineConfig &config,
                           const std::string &predictor_name,
                           const EstimatorFactory &make_estimator,
                           const SpeculationControl &spec_ctrl,
                           const TimingConfig &timing);

/** Average U/P across pre-computed per-benchmark run pairs. */
GatingMetrics averageMetrics(const std::vector<CoreStats> &baseline,
                             const std::vector<CoreStats> &policy);

} // namespace percon

#endif // PERCON_CORE_TIMING_SIM_HH
