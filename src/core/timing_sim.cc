#include "timing_sim.hh"

#include <chrono>
#include <cmath>
#include <sstream>

#include "bpred/factory.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "verify/invariant_auditor.hh"

namespace percon {

TimingConfig
TimingConfig::fromEnv()
{
    TimingConfig cfg;
    if (auto v = envInt64AtLeast("PERCON_UOPS", 10'000)) {
        cfg.measureUops = static_cast<Count>(*v);
        cfg.warmupUops = static_cast<Count>(*v) * 3 / 10;
    }
    // Decouple the warmup length from the proportional default:
    // warmup-heavy shapes (the paper's 10M-warm runs, the
    // persistent-store experiments) need warmup >> measure.
    if (auto v = envInt64AtLeast("PERCON_WARMUP_UOPS", 0))
        cfg.warmupUops = static_cast<Count>(*v);
    return cfg;
}

Count
snapshotLengthFor(const PipelineConfig &config,
                  const TimingConfig &timing)
{
    // run(goal) can overshoot the retire goal by up to width-1 uops
    // per call (warmup + measure: two calls), and everything still in
    // the fetch pipe + ROB at the end was fetched but never retired.
    Count slack = config.robSize +
                  static_cast<Count>(config.frontEndDepth + 2) *
                      config.width;
    Count need = timing.warmupUops + timing.measureUops + slack;
    if (timing.simMode == SimMode::Sampled) {
        // Each measurement window additionally consumes a functional
        // warm of sampleWarmUops, and drain() at the window boundary
        // turns the in-flight slack into retirements that count
        // toward the measure goal, so the per-window overshoot is
        // bounded by the same slack term.
        Count m = timing.sampleMeasureUops ? timing.sampleMeasureUops
                                           : timing.measureUops;
        Count windows = (timing.measureUops + m - 1) / m + 1;
        need = timing.warmupUops + timing.measureUops +
               windows * timing.sampleWarmUops + 2 * slack;
    }
    constexpr Count kChunk = 64 * 1024;
    return (need + kChunk - 1) / kChunk * kChunk;
}

TimingResult
runTiming(const BenchmarkSpec &spec, const PipelineConfig &config,
          const std::string &predictor_name,
          const EstimatorFactory &make_estimator,
          const SpeculationControl &spec_ctrl,
          const TimingConfig &timing)
{
    // Correct-path source: a snapshot cursor (replay) or a live
    // generator. Both produce the exact same stream.
    std::unique_ptr<ProgramModel> program;
    std::unique_ptr<SnapshotCursor> cursor;
    WorkloadSource *source = nullptr;
    double build_seconds = 0.0;
    if (timing.traceSnapshot) {
        Count len = snapshotLengthFor(config, timing);
        auto t0 = std::chrono::steady_clock::now();
        std::shared_ptr<const TraceSnapshot> snap =
            timing.snapshotProvider
                ? timing.snapshotProvider->get(spec.program, len)
                : TraceSnapshot::build(spec.program, len);
        build_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        cursor = std::make_unique<SnapshotCursor>(std::move(snap));
        source = cursor.get();
    } else {
        program = std::make_unique<ProgramModel>(spec.program);
        source = program.get();
    }

    WrongPathSynthesizer wrong_path(
        spec.program,
        timing.wrongPathSeed.value_or(spec.program.seed ^ 0xdead));
    auto predictor = makePredictor(predictor_name);
    std::unique_ptr<ConfidenceEstimator> estimator;
    if (make_estimator)
        estimator = make_estimator();

    Core core(config, *source, wrong_path, *predictor, estimator.get(),
              spec_ctrl);
    InvariantAuditor auditor;
    if (timing.audit)
        core.setAuditor(&auditor);

    // ---- prediction-stream tier --------------------------------------
    // Acquire before the run: either replay a recorded stream (the
    // engine skips all live predictor/BTB work) or become the
    // recorder for this key (the run stays fully live, observed).
    PredictionProvider *pred_cache =
        timing.predSnapshot ? timing.predictionProvider : nullptr;
    PredictionTraceBuilder pred_builder;
    bool pred_recording = false;
    std::string pred_key;
    std::string pred_label = "off";
    if (pred_cache) {
        PredictionRunShape shape;
        shape.wrongPathSeed =
            timing.wrongPathSeed.value_or(spec.program.seed ^ 0xdead);
        shape.warmupUops = timing.warmupUops;
        shape.measureUops = timing.measureUops;
        shape.sampled = timing.simMode == SimMode::Sampled;
        shape.sampleWarmUops = timing.sampleWarmUops;
        shape.sampleMeasureUops = timing.sampleMeasureUops;
        pred_key = predictionKey(
            spec.program, config, predictor_name, shape, spec_ctrl,
            estimator ? estimator->stateKey() : std::string());
        PredictionProvider::Lease lease = pred_cache->acquire(pred_key);
        if (lease.trace) {
            core.setPredictionReplay(std::move(lease.trace));
            pred_label = "hit";
        } else if (lease.recording) {
            core.setPredictionRecorder(&pred_builder);
            pred_recording = true;
            pred_label = "miss";
        }
    }
    // Record and replay runs must warm identically, so the
    // warm-checkpoint tier is bypassed while the prediction tier is
    // active: a checkpoint hit skips functionalWarm() and would
    // desynchronize the replay cursor from the recorded stream.
    bool pred_active = pred_label != "off";

    TimingResult result;
    result.benchmark = spec.program.name;
    result.predSnapshot = pred_label;

    using Clock = std::chrono::steady_clock;
    auto seconds_since = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0)
            .count();
    };

    try {
    if (timing.simMode == SimMode::Exact) {
        // The historical path, untouched: detailed warmup + detailed
        // measurement, bit-identical to every golden lock.
        auto t0 = Clock::now();
        core.warmup(timing.warmupUops);
        core.run(timing.measureUops);
        result.detailSeconds = seconds_since(t0);
    } else {
        // ---- functional warm, checkpoint-aware ---------------------
        auto warm0 = Clock::now();
        std::string checkpoint_label = "off";
        bool warmed = false;
        if (timing.checkpointWarm && timing.checkpointStore && cursor &&
            !pred_active) {
            std::string ckpt_key = warmCheckpointKey(
                spec.program, timing.warmupUops, config, predictor_name,
                estimator ? estimator->stateKey() : std::string());
            bool built_inline = false;
            auto blob = timing.checkpointStore->get(
                ckpt_key, [&]() -> std::string {
                    // Owner: warm this run's own core inline and
                    // publish the serialized result. An empty blob is
                    // the memoized "cannot serialize" answer.
                    core.functionalWarm(timing.warmupUops);
                    built_inline = true;
                    WarmState st;
                    st.predictor = predictor.get();
                    st.estimator = estimator.get();
                    st.btb = config.btbEnabled ? &core.btbState()
                                               : nullptr;
                    st.ghr = core.historyBits(0);
                    st.warmedUops = core.functionallyWarmed(0);
                    st.cursorPos = cursor->pos();
                    st.cursorMemPos = cursor->memOrdinal();
                    st.cursorBrPos = cursor->branchOrdinal();
                    std::ostringstream os;
                    if (!saveWarmCheckpoint(os, st))
                        return std::string();
                    return std::move(os).str();
                });
            if (built_inline) {
                warmed = true;
                checkpoint_label = "miss";
            } else {
                checkpoint_label = "miss";
                if (blob && !blob->empty()) {
                    std::istringstream is(*blob);
                    WarmState st;
                    st.predictor = predictor.get();
                    st.estimator = estimator.get();
                    st.btb = config.btbEnabled ? &core.btbState()
                                               : nullptr;
                    if (loadWarmCheckpoint(is, st)) {
                        cursor->seek(st.cursorPos, st.cursorMemPos,
                                     st.cursorBrPos);
                        core.restoreFunctionalWarm(0, st.ghr,
                                                   st.warmedUops);
                        warmed = true;
                        checkpoint_label = "hit";
                    }
                }
            }
        }
        if (!warmed)
            core.functionalWarm(timing.warmupUops);
        core.resetStats();
        result.warmSeconds += seconds_since(warm0);
        result.checkpoint = checkpoint_label;

        // ---- alternating detailed windows and functional warms -----
        RunningStat ipc_w, pvn_w, spec_w;
        CoreStats prev = core.stats();
        Count measured = 0;
        auto detail0 = Clock::now();
        double warm_extra = 0.0;
        while (measured < timing.measureUops) {
            Count m = timing.sampleMeasureUops
                          ? std::min(timing.sampleMeasureUops,
                                     timing.measureUops - measured)
                          : timing.measureUops - measured;
            core.run(m);
            core.drain();
            const CoreStats &cur = core.stats();
            Count d_ret = cur.retiredUops - prev.retiredUops;
            Cycle d_cyc = cur.cycles - prev.cycles;
            ipc_w.add(d_cyc ? static_cast<double>(d_ret) /
                                  static_cast<double>(d_cyc)
                            : 0.0);
            if (estimator) {
                Count d_mb_low = cur.confidence.mispredictedLow() -
                                 prev.confidence.mispredictedLow();
                Count d_cb_low = cur.confidence.correctLow() -
                                 prev.confidence.correctLow();
                Count d_mb_high = cur.confidence.mispredictedHigh() -
                                  prev.confidence.mispredictedHigh();
                Count d_low = d_mb_low + d_cb_low;
                Count d_misp = d_mb_low + d_mb_high;
                pvn_w.add(d_low ? static_cast<double>(d_mb_low) /
                                      static_cast<double>(d_low)
                                : 0.0);
                spec_w.add(d_misp ? static_cast<double>(d_mb_low) /
                                        static_cast<double>(d_misp)
                                  : 0.0);
            }
            prev = cur;
            measured += d_ret;
            if (measured >= timing.measureUops)
                break;
            auto w0 = Clock::now();
            core.functionalWarm(timing.sampleWarmUops);
            warm_extra += seconds_since(w0);
        }
        result.detailSeconds = seconds_since(detail0) - warm_extra;
        result.warmSeconds += warm_extra;
        result.simMode = "sampled";
        result.sampledWindows = ipc_w.count();
        auto stderr_of = [](const RunningStat &s) {
            return s.count() >= 2
                       ? s.stddev() /
                             std::sqrt(static_cast<double>(s.count()))
                       : 0.0;
        };
        result.ipcErr = stderr_of(ipc_w);
        result.pvnErr = stderr_of(pvn_w);
        result.specErr = stderr_of(spec_w);
    }
    } catch (...) {
        // A recorder that dies without publishing would block every
        // waiter on this key forever; hand the key back so the next
        // acquire() records from scratch.
        if (pred_recording)
            pred_cache->abandon(pred_key);
        throw;
    }

    if (pred_recording)
        pred_cache->publish(pred_key, pred_builder.finish(pred_key));

    result.stats = core.stats();
    if (timing.audit)
        result.audit = auditor.report().verdict();
    if (cursor) {
        result.snapshot = "on";
        result.snapshotBuildSeconds = build_seconds;
        result.snapshotTailUops = cursor->tailUops();
    }
    return result;
}

GatingMetrics
gatingMetrics(const CoreStats &baseline, const CoreStats &policy)
{
    GatingMetrics m;
    // Compare uops executed per retired uop so runs of slightly
    // different lengths stay comparable.
    double base_epu = baseline.retiredUops
                          ? static_cast<double>(baseline.executedUops) /
                                static_cast<double>(baseline.retiredUops)
                          : 0.0;
    double pol_epu = policy.retiredUops
                         ? static_cast<double>(policy.executedUops) /
                               static_cast<double>(policy.retiredUops)
                         : 0.0;
    m.uopReductionPct = base_epu > 0.0
                            ? 100.0 * (base_epu - pol_epu) / base_epu
                            : 0.0;
    m.perfLossPct = baseline.ipc() > 0.0
                        ? 100.0 * (baseline.ipc() - policy.ipc()) /
                              baseline.ipc()
                        : 0.0;
    return m;
}

GatingMetrics
averageMetrics(const std::vector<CoreStats> &baseline,
               const std::vector<CoreStats> &policy)
{
    PERCON_ASSERT(baseline.size() == policy.size(),
                  "mismatched run vectors");
    GatingMetrics avg;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        GatingMetrics m = gatingMetrics(baseline[i], policy[i]);
        avg.uopReductionPct += m.uopReductionPct;
        avg.perfLossPct += m.perfLossPct;
    }
    if (!baseline.empty()) {
        avg.uopReductionPct /= static_cast<double>(baseline.size());
        avg.perfLossPct /= static_cast<double>(baseline.size());
    }
    return avg;
}

SweepResult
runGatingSweep(const PipelineConfig &config,
               const std::string &predictor_name,
               const EstimatorFactory &make_estimator,
               const SpeculationControl &spec_ctrl,
               const TimingConfig &timing)
{
    SweepResult res;
    SpeculationControl no_policy;  // no gating, no reversal
    for (const auto &spec : allBenchmarks()) {
        res.names.push_back(spec.program.name);
        res.baseline.push_back(runTiming(spec, config, predictor_name,
                                         nullptr, no_policy, timing)
                                   .stats);
        res.policy.push_back(runTiming(spec, config, predictor_name,
                                       make_estimator, spec_ctrl, timing)
                                 .stats);
    }
    res.average = averageMetrics(res.baseline, res.policy);
    return res;
}

} // namespace percon
