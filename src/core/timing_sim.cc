#include "timing_sim.hh"

#include <chrono>

#include "bpred/factory.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "verify/invariant_auditor.hh"

namespace percon {

TimingConfig
TimingConfig::fromEnv()
{
    TimingConfig cfg;
    if (auto v = envInt64AtLeast("PERCON_UOPS", 10'000)) {
        cfg.measureUops = static_cast<Count>(*v);
        cfg.warmupUops = static_cast<Count>(*v) * 3 / 10;
    }
    return cfg;
}

Count
snapshotLengthFor(const PipelineConfig &config,
                  const TimingConfig &timing)
{
    // run(goal) can overshoot the retire goal by up to width-1 uops
    // per call (warmup + measure: two calls), and everything still in
    // the fetch pipe + ROB at the end was fetched but never retired.
    Count slack = config.robSize +
                  static_cast<Count>(config.frontEndDepth + 2) *
                      config.width;
    Count need = timing.warmupUops + timing.measureUops + slack;
    constexpr Count kChunk = 64 * 1024;
    return (need + kChunk - 1) / kChunk * kChunk;
}

TimingResult
runTiming(const BenchmarkSpec &spec, const PipelineConfig &config,
          const std::string &predictor_name,
          const EstimatorFactory &make_estimator,
          const SpeculationControl &spec_ctrl,
          const TimingConfig &timing)
{
    // Correct-path source: a snapshot cursor (replay) or a live
    // generator. Both produce the exact same stream.
    std::unique_ptr<ProgramModel> program;
    std::unique_ptr<SnapshotCursor> cursor;
    WorkloadSource *source = nullptr;
    double build_seconds = 0.0;
    if (timing.traceSnapshot) {
        Count len = snapshotLengthFor(config, timing);
        auto t0 = std::chrono::steady_clock::now();
        std::shared_ptr<const TraceSnapshot> snap =
            timing.snapshotProvider
                ? timing.snapshotProvider->get(spec.program, len)
                : TraceSnapshot::build(spec.program, len);
        build_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        cursor = std::make_unique<SnapshotCursor>(std::move(snap));
        source = cursor.get();
    } else {
        program = std::make_unique<ProgramModel>(spec.program);
        source = program.get();
    }

    WrongPathSynthesizer wrong_path(
        spec.program,
        timing.wrongPathSeed.value_or(spec.program.seed ^ 0xdead));
    auto predictor = makePredictor(predictor_name);
    std::unique_ptr<ConfidenceEstimator> estimator;
    if (make_estimator)
        estimator = make_estimator();

    Core core(config, *source, wrong_path, *predictor, estimator.get(),
              spec_ctrl);
    InvariantAuditor auditor;
    if (timing.audit)
        core.setAuditor(&auditor);
    core.warmup(timing.warmupUops);
    core.run(timing.measureUops);

    TimingResult result{spec.program.name, core.stats()};
    if (timing.audit)
        result.audit = auditor.report().verdict();
    if (cursor) {
        result.snapshot = "on";
        result.snapshotBuildSeconds = build_seconds;
        result.snapshotTailUops = cursor->tailUops();
    }
    return result;
}

GatingMetrics
gatingMetrics(const CoreStats &baseline, const CoreStats &policy)
{
    GatingMetrics m;
    // Compare uops executed per retired uop so runs of slightly
    // different lengths stay comparable.
    double base_epu = baseline.retiredUops
                          ? static_cast<double>(baseline.executedUops) /
                                static_cast<double>(baseline.retiredUops)
                          : 0.0;
    double pol_epu = policy.retiredUops
                         ? static_cast<double>(policy.executedUops) /
                               static_cast<double>(policy.retiredUops)
                         : 0.0;
    m.uopReductionPct = base_epu > 0.0
                            ? 100.0 * (base_epu - pol_epu) / base_epu
                            : 0.0;
    m.perfLossPct = baseline.ipc() > 0.0
                        ? 100.0 * (baseline.ipc() - policy.ipc()) /
                              baseline.ipc()
                        : 0.0;
    return m;
}

GatingMetrics
averageMetrics(const std::vector<CoreStats> &baseline,
               const std::vector<CoreStats> &policy)
{
    PERCON_ASSERT(baseline.size() == policy.size(),
                  "mismatched run vectors");
    GatingMetrics avg;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        GatingMetrics m = gatingMetrics(baseline[i], policy[i]);
        avg.uopReductionPct += m.uopReductionPct;
        avg.perfLossPct += m.perfLossPct;
    }
    if (!baseline.empty()) {
        avg.uopReductionPct /= static_cast<double>(baseline.size());
        avg.perfLossPct /= static_cast<double>(baseline.size());
    }
    return avg;
}

SweepResult
runGatingSweep(const PipelineConfig &config,
               const std::string &predictor_name,
               const EstimatorFactory &make_estimator,
               const SpeculationControl &spec_ctrl,
               const TimingConfig &timing)
{
    SweepResult res;
    SpeculationControl no_policy;  // no gating, no reversal
    for (const auto &spec : allBenchmarks()) {
        res.names.push_back(spec.program.name);
        res.baseline.push_back(runTiming(spec, config, predictor_name,
                                         nullptr, no_policy, timing)
                                   .stats);
        res.policy.push_back(runTiming(spec, config, predictor_name,
                                       make_estimator, spec_ctrl, timing)
                                 .stats);
    }
    res.average = averageMetrics(res.baseline, res.policy);
    return res;
}

} // namespace percon
