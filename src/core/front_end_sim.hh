/**
 * @file
 * Front-end-only experiment driver.
 *
 * Runs a workload's branch stream through a branch predictor and a
 * confidence estimator with architectural (retire-equivalent)
 * history — no timing. This is how the paper's pure classification
 * results are measured: Table 3 (PVN/Spec), Figures 4-7 (output
 * density functions) and the training-scheme ablations of §5.3.
 */

#ifndef PERCON_CORE_FRONT_END_SIM_HH
#define PERCON_CORE_FRONT_END_SIM_HH

#include <memory>
#include <optional>

#include "bpred/branch_predictor.hh"
#include "common/histogram.hh"
#include "common/stats.hh"
#include "confidence/confidence_estimator.hh"
#include "trace/program_model.hh"

namespace percon {

/** Results of a front-end run. */
struct FrontEndResult
{
    ConfidenceMatrix matrix;
    Count uops = 0;       ///< uops represented (branches + fillers)
    Count branches = 0;

    /** Output density for correctly predicted branches (CB). */
    Histogram cbDensity;
    /** Output density for mispredicted branches (MB). */
    Histogram mbDensity;

    double
    mispredictsPerKuop() const
    {
        return uops == 0 ? 0.0
                         : 1000.0 *
                               static_cast<double>(matrix.mispredicted()) /
                               static_cast<double>(uops);
    }
};

/** Configuration of a front-end run. */
struct FrontEndConfig
{
    Count warmupBranches = 100'000;
    Count measureBranches = 500'000;

    /** When set, collect CB/MB output densities over this range. */
    bool collectDensity = false;
    std::int64_t densityLo = -400;
    std::int64_t densityHi = 400;
    std::int64_t densityBucket = 10;
};

/**
 * Run @p program through @p predictor and @p estimator.
 *
 * The estimator may be nullptr (predictor characterization only).
 */
FrontEndResult runFrontEnd(ProgramModel &program,
                           BranchPredictor &predictor,
                           ConfidenceEstimator *estimator,
                           const FrontEndConfig &config);

} // namespace percon

#endif // PERCON_CORE_FRONT_END_SIM_HH
