#include "warm_checkpoint.hh"

#include <cstdlib>
#include <ostream>

#include "bpred/branch_predictor.hh"
#include "bpred/btb.hh"
#include "common/logging.hh"
#include "common/state_io.hh"
#include "confidence/confidence_estimator.hh"
#include "trace/trace_snapshot.hh"

namespace percon {

namespace {

constexpr char kMagic[8] = {'P', 'W', 'C', 'K', '0', '1', 0, 0};

} // namespace

bool
saveWarmCheckpoint(std::ostream &os, const WarmState &st)
{
    PERCON_ASSERT(st.predictor != nullptr,
                  "warm checkpoint needs a predictor");
    stateio::writeMagic(os, kMagic);
    stateio::writeU64(os, st.warmedUops);
    stateio::writeU64(os, st.cursorPos);
    stateio::writeU64(os, st.cursorMemPos);
    stateio::writeU64(os, st.cursorBrPos);
    stateio::writeU64(os, st.ghr);
    stateio::writeU64(os, st.estimator ? 1 : 0);
    stateio::writeU64(os, st.btb ? 1 : 0);
    if (!st.predictor->saveState(os))
        return false;
    if (st.estimator && !st.estimator->saveState(os))
        return false;
    if (st.btb && !st.btb->saveState(os))
        return false;
    return static_cast<bool>(os);
}

bool
loadWarmCheckpoint(std::istream &is, WarmState &st)
{
    if (!st.predictor)
        return false;
    if (!stateio::readMagic(is, kMagic))
        return false;
    std::uint64_t warmed = 0, pos = 0, mem_pos = 0, br_pos = 0;
    std::uint64_t ghr = 0, has_est = 0, has_btb = 0;
    if (!stateio::readU64(is, warmed) || !stateio::readU64(is, pos) ||
        !stateio::readU64(is, mem_pos) ||
        !stateio::readU64(is, br_pos) || !stateio::readU64(is, ghr) ||
        !stateio::readU64(is, has_est) ||
        !stateio::readU64(is, has_btb))
        return false;
    // The blob's component layout must match the live run's: a blob
    // warmed with an estimator cannot restore into a run without one
    // (and vice versa), same for the BTB.
    if ((has_est != 0) != (st.estimator != nullptr))
        return false;
    if ((has_btb != 0) != (st.btb != nullptr))
        return false;
    if (!st.predictor->loadState(is))
        return false;
    if (st.estimator && !st.estimator->loadState(is))
        return false;
    if (st.btb && !st.btb->loadState(is))
        return false;
    st.warmedUops = warmed;
    st.cursorPos = pos;
    st.cursorMemPos = mem_pos;
    st.cursorBrPos = br_pos;
    st.ghr = ghr;
    return true;
}

std::string
warmCheckpointKey(const ProgramParams &params, Count warm_uops,
                  const PipelineConfig &config,
                  const std::string &predictor_name,
                  const std::string &estimator_state_key)
{
    std::string key = programKey(params);
    key += "/warm=";
    key += std::to_string(warm_uops);
    key += "/pred=";
    key += predictor_name;
    key += "/est=";
    key += estimator_state_key.empty() ? "none" : estimator_state_key;
    key += "/btb=";
    if (config.btbEnabled) {
        key += std::to_string(config.btbEntries);
        key += "x";
        key += std::to_string(config.btbWays);
    } else {
        key += "off";
    }
    return key;
}

bool
warmCheckpointDefault()
{
    const char *v = std::getenv("PERCON_WARM_CHECKPOINT");
    if (!v || !*v)
        return false;
    std::string s(v);
    if (s == "on" || s == "1" || s == "true")
        return true;
    if (s == "off" || s == "0" || s == "false")
        return false;
    warn("PERCON_WARM_CHECKPOINT='%s' not understood "
         "(want on|off); keeping the default (off)", v);
    return false;
}

} // namespace percon
