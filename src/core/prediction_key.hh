/**
 * @file
 * Keying rule and provider interface for the prediction-stream
 * snapshot tier.
 *
 * A recorded prediction stream (bpred/prediction_trace.hh) is the
 * exact sequence of predictor outcomes and BTB probe results one
 * live run produced, so it is only replayable by a run that would
 * have made the identical call sequence. The canonical key
 * serializes everything that shapes that sequence:
 *
 *  - the full workload identity (programKey) and the wrong-path
 *    synthesizer seed — the uop streams the run fetches;
 *  - the complete machine geometry, caches included — pipeline
 *    timing decides the fetch/retire interleaving, and the predictor
 *    trains at retire while predicting at fetch, so ANY timing
 *    change reorders training relative to prediction and changes
 *    the stream (the pinned goldens prove it: mispredictsOriginal
 *    differs across gating policies on the same workload);
 *  - the predictor name and the timing-run shape (warmup/measure
 *    lengths, exact vs sampled, the sampling window sizes);
 *  - the speculation policy — with one deliberate collapse:
 *
 * Purity argument: when gateThreshold == 0 and reversal is off, the
 * confidence estimator cannot influence the machine. estimate() is
 * const, its result feeds only gating decisions (dead at threshold
 * 0), reversal (off) and confidence statistics; oracleGating,
 * confidenceLatency and throttleWidth are all dead at threshold 0.
 * Every such run of the same workload/machine/predictor therefore
 * produces bit-identical prediction streams regardless of estimator
 * or policy details, and the key collapses them to "policy=pure" —
 * this is the sharing that makes a predictor-fixed estimator sweep
 * fast, every ungated point replaying one recording. Gated or
 * reversing points get fully-keyed streams (policy serialization +
 * estimator training identity).
 *
 * Trace-snapshot replay is deliberately NOT in the key: snapshot
 * replay is bit-identical to live generation by contract, so the
 * stream is the same either way.
 */

#ifndef PERCON_CORE_PREDICTION_KEY_HH
#define PERCON_CORE_PREDICTION_KEY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "bpred/prediction_trace.hh"
#include "trace/program_model.hh"
#include "uarch/pipeline_config.hh"

namespace percon {

/** The timing-run shape fields the prediction key covers (a
 *  run-shape slice of TimingConfig, kept separate to avoid a header
 *  cycle: timing_sim.hh includes this file). */
struct PredictionRunShape
{
    std::uint64_t wrongPathSeed = 0; ///< effective synthesizer seed
    Count warmupUops = 0;
    Count measureUops = 0;
    bool sampled = false;
    /** Only serialized when sampled (dead axes must not split
     *  keys). */
    Count sampleWarmUops = 0;
    Count sampleMeasureUops = 0;
};

/**
 * Canonical cache key for one run's prediction stream. Pass the
 * estimator's stateKey() in @p estimator_state_key (empty for no
 * estimator); it is only serialized when the policy is impure.
 */
std::string predictionKey(const ProgramParams &params,
                          const PipelineConfig &config,
                          const std::string &predictor_name,
                          const PredictionRunShape &shape,
                          const SpeculationControl &spec,
                          const std::string &estimator_state_key);

/**
 * Source of shared prediction streams. Defined here (not in
 * driver/) so runTiming can use a provider without depending on the
 * driver library; the driver's PredictionCache implements it —
 * mirroring the SnapshotProvider / CheckpointStore split.
 *
 * Protocol: acquire() either returns a stream to replay, or makes
 * the caller the recorder for that key (first caller wins;
 * concurrent callers block until the recording run publishes). A
 * recorder MUST end with exactly one publish() or abandon() —
 * anything else leaves waiters blocked forever.
 */
class PredictionProvider
{
  public:
    virtual ~PredictionProvider() = default;

    struct Lease
    {
        /** Non-null: replay this stream. */
        std::shared_ptr<const PredictionTrace> trace;
        /** True: this run records; run live with a recorder attached
         *  and publish (or abandon) the result. */
        bool recording = false;
    };

    virtual Lease acquire(const std::string &key) = 0;

    /** Publish a finished recording for @p key, unblocking waiters
     *  and (best effort) persisting to the store tier. */
    virtual void publish(const std::string &key,
                         std::shared_ptr<const PredictionTrace> trace) = 0;

    /** Give up a recording without a result: waiters see a failure,
     *  the key is not poisoned (the next acquire() records again). */
    virtual void abandon(const std::string &key) noexcept = 0;
};

} // namespace percon

#endif // PERCON_CORE_PREDICTION_KEY_HH
