/**
 * @file
 * Parallel sweep execution over independent simulation design
 * points.
 *
 * The paper's tables and figures are grids over (benchmark x machine
 * x estimator x threshold); every point is a shared-nothing
 * simulation, so they can run concurrently. SweepRunner is a small
 * thread pool that executes a vector of points and returns their
 * results in input order, so downstream table/CSV/JSONL emission is
 * byte-identical regardless of the job count.
 *
 * Determinism contract: each run's RNG seed is derived from its
 * RunKey (the canonical description of the design point), never from
 * thread identity or scheduling order. Running a sweep with --jobs 1
 * and --jobs 8 therefore produces bit-identical statistics.
 */

#ifndef PERCON_DRIVER_SWEEP_RUNNER_HH
#define PERCON_DRIVER_SWEEP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/timing_sim.hh"

namespace percon {

/**
 * Identity of one simulation design point.
 *
 * The canonical string of the key — not the worker thread that
 * happens to execute it — determines the run's derived seed.
 */
struct RunKey
{
    std::string benchmark;
    std::string machine;
    std::string predictor;
    std::string estimator;  ///< empty = no estimator

    /** Extra design-point parameters (lambda, gate threshold, run
     *  length, ...), in insertion order. */
    std::vector<std::pair<std::string, std::string>> params;

    /** Append or overwrite a named parameter. */
    void set(const std::string &name, const std::string &value);

    /** Look up a parameter; empty string when absent. */
    std::string param(const std::string &name) const;

    /** Stable "bench=gcc|machine=...|k=v|..." form of the key. */
    std::string canonical() const;

    /** 64-bit seed derived from canonical() (FNV-1a + mix64). */
    std::uint64_t seed() const;
};

/** One finished design point: key, the seed actually used, stats,
 *  audit verdict and wall time. */
struct RunRecord
{
    RunKey key;
    std::uint64_t seed = 0;
    CoreStats stats;
    /** Invariant-audit verdict ("off" unless --audit was active). */
    std::string audit = "off";
    /** Trace-snapshot disposition: "off" (live generation), "miss"
     *  (first point of this sweep to use its workload's snapshot) or
     *  "hit" (an earlier point in input order shares it). Derived
     *  from the sweep definition, not run-time racing, so rows stay
     *  byte-identical across job counts and repeats. */
    std::string snapshot = "off";
    /** Persistent-store disposition: "off" (no store attached),
     *  "hit" (a valid store file existed when the sweep started) or
     *  "miss" (it did not — this sweep generates and persists).
     *  Probed header-only per distinct workload BEFORE any point
     *  runs, so every point sharing a workload gets the same label
     *  and rows stay byte-identical across job/worker counts. */
    std::string snapshotStore = "off";
    /** Shard index this row was produced under (--shard i/N); 0 for
     *  unsharded sweeps. */
    unsigned shard = 0;

    /** "exact" or "sampled" (TimingResult::simMode). */
    std::string simMode = "exact";
    /** Detailed measurement windows taken (sampled mode only). */
    Count sampledWindows = 0;
    /** Per-window standard errors (0 in exact mode). */
    double ipcErr = 0.0;
    double pvnErr = 0.0;
    double specErr = 0.0;

    /** Warm-checkpoint disposition: "off", "miss" (first point in
     *  input order to use its warm key) or "hit". Deterministic like
     *  the snapshot label. */
    std::string checkpoint = "off";

    /** Prediction-stream disposition: "off", "miss" (first point in
     *  input order to use its prediction key — the sweep's recorder)
     *  or "hit" (replays the shared stream). Deterministic input-
     *  order labeling, NOT run-time racing and NOT store state, so
     *  rows are byte-identical across job/worker counts, repeats,
     *  and cold-vs-warm persistent stores. */
    std::string predSnapshot = "off";

    double wallSeconds = 0.0;
};

/** What one design point produces. Implicitly constructible from a
 *  bare CoreStats so RunFn lambdas predating the audit field keep
 *  compiling unchanged. */
struct RunOutput
{
    CoreStats stats;
    std::string audit = "off";
    std::string snapshot = "off";

    /** Sampled-simulation outcome (defaults describe an exact run). */
    std::string simMode = "exact";
    Count sampledWindows = 0;
    double ipcErr = 0.0;
    double pvnErr = 0.0;
    double specErr = 0.0;
    std::string checkpoint = "off";
    std::string predSnapshot = "off";

    RunOutput() = default;
    RunOutput(const CoreStats &s) : stats(s) {}
    RunOutput(CoreStats s, std::string a)
        : stats(s), audit(std::move(a))
    {}
    RunOutput(CoreStats s, std::string a, std::string snap)
        : stats(s), audit(std::move(a)), snapshot(std::move(snap))
    {}
};

/** The work of one design point: produce stats (and optionally an
 *  audit verdict) given the derived seed. Must not touch state
 *  shared with other points. */
using RunFn =
    std::function<RunOutput(const RunKey &key, std::uint64_t seed)>;

/** A schedulable design point. */
struct SweepPoint
{
    RunKey key;
    std::uint64_t seed = 0;
    RunFn fn;

    /** Cache key of the trace snapshot this point replays (empty =
     *  live generation). SweepRunner::run derives each record's
     *  "hit"/"miss" label from the first occurrence of this key in
     *  input order, so rows are byte-identical across job counts
     *  and repeated sweeps. */
    std::string snapshotKey;

    /** Warm-checkpoint key of this point (empty = checkpointing
     *  off). Same deterministic first-in-input-order labeling as
     *  snapshotKey. */
    std::string checkpointKey;

    /** Prediction-stream key of this point (empty = tier off). Same
     *  deterministic first-in-input-order labeling as snapshotKey;
     *  thanks to the "policy=pure" key collapse, every ungated point
     *  of a predictor-fixed sweep shares one key (one "miss", the
     *  rest "hit"). */
    std::string predKey;

    /** Header-only persistent-store probe for this point's workload
     *  (null = no store attached). SweepRunner::run calls it once
     *  per distinct snapshotKey before any point executes — i.e.
     *  before this sweep can persist anything — so the resulting
     *  "hit"/"miss" snapshot_store labels reflect the store's state
     *  at sweep start and are identical for every job count. */
    std::function<bool()> storeProbe;

    /** Pre-derived label overrides (null = derive at run time from
     *  this point list). A sharded sweep derives labels over the
     *  FULL sweep before filtering and bakes them in here, so shard
     *  rows stay byte-identical to the unsharded run's — a shard
     *  would otherwise call its locally-first points "miss". */
    const char *snapshotLabel = nullptr;
    const char *checkpointLabel = nullptr;
    const char *storeLabel = nullptr;
    const char *predLabel = nullptr;
};

/** Build a point whose seed is the key's own derived seed. */
SweepPoint makePoint(RunKey key, RunFn fn);

/**
 * Standard full-timing design point.
 *
 * The benchmark and predictor come from the key; the run length is
 * recorded in the key's params (so it contributes to the canonical
 * form). The wrong-path synthesizer is seeded from the
 * policy-invariant part of the key (benchmark, machine, predictor,
 * uops) so a policy run and its matching ungated baseline see
 * identical wrong-path streams and stay comparable.
 */
SweepPoint timingPoint(RunKey key, const PipelineConfig &config,
                       EstimatorFactory make_estimator,
                       const SpeculationControl &spec_ctrl,
                       const TimingConfig &timing);

/** Seed for the policy-invariant environment of a timing run. */
std::uint64_t environmentSeed(const std::string &benchmark,
                              const std::string &machine,
                              const std::string &predictor,
                              Count measure_uops);

/**
 * Deterministic shard assignment of one design point: derived from
 * the key's canonical hash, never from position or scheduling, so
 * every process given the same point list partitions it identically
 * and the N shards of a sweep are disjoint and exhaustive.
 */
unsigned shardOf(const RunKey &key, unsigned nshards);

/**
 * Deterministic per-point row labels derived from the sweep
 * definition (first occurrence in input order) and from a header
 * probe of the persistent store taken BEFORE any point runs. A null
 * entry means "keep the point's own RunOutput value". Shared by the
 * in-process SweepRunner and the multi-process worker pool so both
 * produce byte-identical rows: a worker only sees its own subrange
 * and would derive wrong first-occurrence labels locally.
 */
struct SweepLabels
{
    std::vector<const char *> snapshot;
    std::vector<const char *> checkpoint;
    std::vector<const char *> store;
    std::vector<const char *> pred;
};

/** Compute SweepLabels for @p points; runs each distinct store
 *  probe once, so call before executing (or forking) anything. */
SweepLabels deriveSweepLabels(const std::vector<SweepPoint> &points);

/** Fixed-size pool executing sweep points concurrently. */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 = hardware concurrency. */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Execute all points, at most jobs() at a time. Results are
     * returned in input order regardless of scheduling. A point
     * that throws does not stall or deadlock the pool: remaining
     * points still run, all workers join, and the first exception
     * (in input order) is then rethrown.
     */
    std::vector<RunRecord> run(const std::vector<SweepPoint> &points) const;

  private:
    unsigned jobs_;
};

} // namespace percon

#endif // PERCON_DRIVER_SWEEP_RUNNER_HH
