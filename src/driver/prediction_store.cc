#include "prediction_store.hh"

#include <cstdlib>

#include "common/file_util.hh"
#include "common/logging.hh"

namespace percon {

PredictionStore::PredictionStore(std::string dir)
    : dir_(std::move(dir))
{
}

std::string
PredictionStore::pathFor(const std::string &key) const
{
    // Key = content hash of the full canonical prediction key.
    // Nothing build- or host-dependent may ever go in here; the full
    // key stored inside the file is authoritative on collision.
    return dir_ + "/ppred-" + hex16(fnv1a64(key)) + ".pred";
}

std::shared_ptr<const PredictionTrace>
PredictionStore::tryOpen(const std::string &key)
{
    std::string path = pathFor(key);
    bool existed = fileExists(path);
    std::string why;
    std::shared_ptr<const PredictionTrace> trace =
        existed ? openPredictionFile(path, key, &why) : nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    if (trace) {
        ++counters_.mapHits;
        counters_.mappedBytes += trace->memoryBytes();
    } else {
        ++counters_.mapMisses;
        if (existed) {
            ++counters_.rejected;
            warn("prediction store: rejecting '%s' (%s); re-recording",
                 path.c_str(), why.c_str());
        }
    }
    return trace;
}

bool
PredictionStore::persist(
    const std::shared_ptr<const PredictionTrace> &trace)
{
    if (!trace)
        return false;
    if (!ensureDir(dir_)) {
        warn("prediction store: cannot create directory '%s'; "
             "not persisting", dir_.c_str());
        return false;
    }
    std::string path = pathFor(trace->key());
    std::string image = serializePredictionTrace(*trace);
    std::string why;
    if (!atomicWriteFile(path, image.data(), image.size(), &why)) {
        warn("prediction store: failed to persist '%s' (%s)",
             path.c_str(), why.c_str());
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.persisted;
    counters_.persistedBytes += image.size();
    return true;
}

bool
PredictionStore::probe(const std::string &key) const
{
    return probePredictionFile(pathFor(key), key);
}

PredictionStore::Counters
PredictionStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::string
predictionStoreDirFromEnv()
{
    const char *v = std::getenv("PERCON_PRED_SNAPSHOT_STORE");
    return (v && *v) ? std::string(v) : std::string();
}

} // namespace percon
