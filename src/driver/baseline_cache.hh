/**
 * @file
 * Thread-safe memoized baseline lookup.
 *
 * Gating metrics compare every policy run against the ungated
 * baseline of the same (benchmark, predictor, machine) environment;
 * a bench sweeping 16 policies would otherwise rerun each baseline
 * 16 times. This cache computes each baseline exactly once even when
 * many SweepRunner workers ask for it concurrently: the first caller
 * computes, the rest block on the shared future.
 */

#ifndef PERCON_DRIVER_BASELINE_CACHE_HH
#define PERCON_DRIVER_BASELINE_CACHE_HH

#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/timing_sim.hh"

namespace percon {

class BaselineCache
{
  public:
    /** Sized for a typical sweep's benchmark x machine grid. */
    BaselineCache() { cache_.reserve(64); }

    /**
     * Memoized compute: the first caller for @p key runs @p fn, all
     * callers (including concurrent ones) get the same cached stats.
     * If fn throws, the exception propagates to every waiter and the
     * key stays poisoned with it.
     */
    const CoreStats &getOrCompute(const std::string &key,
                                  const std::function<CoreStats()> &fn);

    /**
     * Ungated baseline run of (benchmark, predictor, machine),
     * computed once per key via runTiming with no estimator and no
     * speculation-control policy.
     */
    const CoreStats &get(const BenchmarkSpec &spec,
                         const PipelineConfig &config,
                         const std::string &predictor,
                         const std::string &machine_id,
                         const TimingConfig &timing);

  private:
    std::mutex mutex_;

    /**
     * Keys are canonical by construction — get() always formats them
     * as "program/predictor/machine/measureUops" from already-
     * normalized registry names, so byte equality is key equality
     * and no ordering is needed. Hashing beats the old std::map's
     * O(log n) string comparisons on wide sweeps.
     */
    std::unordered_map<std::string, std::shared_future<CoreStats>>
        cache_;
};

} // namespace percon

#endif // PERCON_DRIVER_BASELINE_CACHE_HH
