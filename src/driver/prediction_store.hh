/**
 * @file
 * Persistent machine-wide prediction-stream store.
 *
 * A store is a directory of "PCPRED01" files
 * (bpred/prediction_file.hh), one per prediction key: streams are
 * recorded once per MACHINE, not once per process. Every later
 * process — more sweep jobs, forked workers, tomorrow's re-run —
 * mmaps the file read-only and replays it zero-copy out of the
 * shared page cache.
 *
 * File names derive purely from the FNV-1a hash of the canonical
 * prediction key (core/prediction_key.hh); deliberately NOT from the
 * build id, so stores survive rebuilds and are shared between
 * differently-built binaries. Publication is atomic (tmp + rename);
 * a file that fails any validation check — wrong key (different
 * predictor/BTB parameters hash-colliding onto the same name),
 * truncation, corruption, foreign endianness, version bump — is
 * refused with a warn() and the caller re-records.
 *
 * The store is the middle tier of PredictionCache's lookup:
 * in-memory memo -> mmap'd store file -> record (and persist).
 */

#ifndef PERCON_DRIVER_PREDICTION_STORE_HH
#define PERCON_DRIVER_PREDICTION_STORE_HH

#include <memory>
#include <mutex>
#include <string>

#include "bpred/prediction_file.hh"
#include "bpred/prediction_trace.hh"

namespace percon {

class PredictionStore
{
  public:
    /** @param dir store directory; created on first persist. */
    explicit PredictionStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Store file path for one prediction key. Content-derived:
     *  independent of build id, host, and time. */
    std::string pathFor(const std::string &key) const;

    /**
     * Map and validate the stored stream. @return a borrowed-lane
     * trace, or null when the file is absent or fails any validation
     * check (the caller re-records; a malformed file is also
     * warn()ed once per lookup so operators see corrupt stores).
     */
    std::shared_ptr<const PredictionTrace>
    tryOpen(const std::string &key);

    /**
     * Serialize and atomically publish @p trace. Best effort:
     * failures warn() and return false but never abort the run — the
     * store is an accelerator, not a dependency.
     */
    bool persist(const std::shared_ptr<const PredictionTrace> &trace);

    /** Header-only existence/plausibility probe (no payload scan),
     *  for deterministic pre-sweep "pred_snapshot" row labels. */
    bool probe(const std::string &key) const;

    /** Accounting totals, readable at any time. */
    struct Counters
    {
        Count mapHits = 0;      ///< tryOpen served a valid file
        Count mapMisses = 0;    ///< tryOpen found nothing usable
        Count rejected = 0;     ///< file present but failed validation
        Count persisted = 0;    ///< files published
        Count persistedBytes = 0;
        Count mappedBytes = 0;  ///< lane bytes served via mmap
    };

    Counters counters() const;

  private:
    std::string dir_;
    mutable std::mutex mutex_;
    Counters counters_;
};

/**
 * Store directory from the PERCON_PRED_SNAPSHOT_STORE environment
 * variable; empty when unset/empty (store disabled). The
 * --pred-snapshot-store flag overrides this in percon_sim.
 */
std::string predictionStoreDirFromEnv();

} // namespace percon

#endif // PERCON_DRIVER_PREDICTION_STORE_HH
