/**
 * @file
 * Persistent machine-wide snapshot store.
 *
 * A store is a directory of snapshot files (trace/snapshot_file.hh),
 * one per (workload content, length): snapshots are built once per
 * MACHINE, not once per process. Every later process — more sweep
 * jobs, forked workers, tomorrow's re-run — mmaps the file read-only
 * and replays it zero-copy out of the shared page cache.
 *
 * File names are derived purely from the generating TraceParams
 * content (the FNV-1a hash of programKey(params)) and the uop count;
 * deliberately NOT from the build id, so stores survive rebuilds and
 * are shared between differently-built binaries (locked by a
 * regression test). Publication is atomic (tmp + rename), so
 * concurrent processes racing to persist the same key each write a
 * complete file and the last rename wins — readers never observe a
 * torn file.
 *
 * The store is the middle tier of SnapshotCache's lookup:
 * in-memory memo -> mmap'd store file -> generate (and persist).
 */

#ifndef PERCON_DRIVER_SNAPSHOT_STORE_HH
#define PERCON_DRIVER_SNAPSHOT_STORE_HH

#include <memory>
#include <mutex>
#include <string>

#include "trace/trace_snapshot.hh"

namespace percon {

class SnapshotStore
{
  public:
    /** @param dir store directory; created on first persist. */
    explicit SnapshotStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Store file path for one (workload, length). Content-derived:
     *  independent of build id, host, and time. */
    std::string pathFor(const ProgramParams &params, Count uops) const;

    /**
     * Map and validate the stored snapshot. @return a borrowed-lane
     * snapshot, or null when the file is absent or fails any
     * validation check (the caller regenerates; a malformed file is
     * also warn()ed once per lookup so operators see corrupt
     * stores).
     */
    std::shared_ptr<const TraceSnapshot>
    tryOpen(const ProgramParams &params, Count uops);

    /**
     * Serialize and atomically publish @p snap. Best effort: failures
     * warn() and return false but never abort the run — the store is
     * an accelerator, not a dependency.
     */
    bool persist(const std::shared_ptr<const TraceSnapshot> &snap);

    /** Header-only existence/plausibility probe (no payload scan),
     *  for deterministic pre-sweep "snapshot_store" row labels. */
    bool probe(const ProgramParams &params, Count uops) const;

    /** Accounting totals, readable at any time. */
    struct Counters
    {
        Count mapHits = 0;      ///< tryOpen served a valid file
        Count mapMisses = 0;    ///< tryOpen found nothing usable
        Count rejected = 0;     ///< file present but failed validation
        Count persisted = 0;    ///< files published
        Count persistedBytes = 0;
        Count mappedBytes = 0;  ///< lane bytes served via mmap
    };

    Counters counters() const;

  private:
    std::string dir_;
    mutable std::mutex mutex_;
    Counters counters_;
};

/**
 * Store directory from the PERCON_SNAPSHOT_STORE environment
 * variable; empty when unset/empty (store disabled). The
 * --snapshot-store flag overrides this in percon_sim.
 */
std::string snapshotStoreDirFromEnv();

} // namespace percon

#endif // PERCON_DRIVER_SNAPSHOT_STORE_HH
