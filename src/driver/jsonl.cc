#include "jsonl.hh"

#include <cinttypes>
#include <cstdlib>

#include "common/logging.hh"
#include "driver/build_id.hh"

namespace percon {

namespace {

std::string
escaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendStr(std::string &json, const char *name, const std::string &value)
{
    json += '"';
    json += name;
    json += "\":\"";
    json += escaped(value);
    json += '"';
}

void
appendU64(std::string &json, const char *name, std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    json += '"';
    json += name;
    json += "\":";
    json += buf;
}

void
appendDouble(std::string &json, const char *name, double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    json += '"';
    json += name;
    json += "\":";
    json += buf;
}

} // namespace

std::string
runRecordJson(const RunRecord &rec)
{
    std::string json = "{";
    appendStr(json, "bench", rec.key.benchmark);
    json += ',';
    appendStr(json, "machine", rec.key.machine);
    json += ',';
    appendStr(json, "predictor", rec.key.predictor);
    json += ',';
    appendStr(json, "estimator",
              rec.key.estimator.empty() ? "none" : rec.key.estimator);
    json += ",\"params\":{";
    bool first = true;
    for (const auto &kv : rec.key.params) {
        if (!first)
            json += ',';
        first = false;
        appendStr(json, kv.first.c_str(), kv.second);
    }
    json += "},";
    appendU64(json, "seed", rec.seed);
    json += ',';
    appendU64(json, "shard", rec.shard);
    json += ',';
    appendStr(json, "audit", rec.audit);
    json += ',';
    appendStr(json, "snapshot", rec.snapshot);
    json += ',';
    appendStr(json, "snapshot_store", rec.snapshotStore);
    json += ',';
    appendStr(json, "sim_mode", rec.simMode);
    json += ',';
    appendU64(json, "sampled_windows", rec.sampledWindows);
    json += ',';
    appendStr(json, "checkpoint", rec.checkpoint);
    json += ',';
    appendStr(json, "pred_snapshot", rec.predSnapshot);
    json += ',';
    appendStr(json, "build", buildId());
    json += ',';
    appendDouble(json, "wall_seconds", rec.wallSeconds);

    const CoreStats &s = rec.stats;
    json += ",\"stats\":{";
    appendU64(json, "cycles", s.cycles);
    json += ',';
    appendDouble(json, "ipc", s.ipc());
    json += ',';
    appendDouble(json, "ipc_err", rec.ipcErr);
    json += ',';
    appendU64(json, "retired_uops", s.retiredUops);
    json += ',';
    appendU64(json, "executed_uops", s.executedUops);
    json += ',';
    appendU64(json, "wrong_path_executed", s.wrongPathExecuted);
    json += ',';
    appendU64(json, "retired_branches", s.retiredBranches);
    json += ',';
    appendU64(json, "mispredicts", s.mispredictsFinal);
    json += ',';
    appendU64(json, "gated_cycles", s.gatedCycles);
    json += ',';
    appendU64(json, "reversals", s.reversals);
    json += ',';
    appendU64(json, "reversals_good", s.reversalsGood);
    json += ',';
    appendDouble(json, "pvn", s.confidence.pvn());
    json += ',';
    appendDouble(json, "pvn_err", rec.pvnErr);
    json += ',';
    appendDouble(json, "spec", s.confidence.spec());
    json += ',';
    appendDouble(json, "spec_err", rec.specErr);
    json += "}}";
    return json;
}

JsonlWriter::JsonlWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "a");
    if (!file_)
        fatal("cannot open JSONL file '%s'", path.c_str());
}

JsonlWriter::~JsonlWriter()
{
    if (file_)
        std::fclose(file_);
}

void
JsonlWriter::write(const RunRecord &rec)
{
    std::string line = runRecordJson(rec);
    std::fprintf(file_, "%s\n", line.c_str());
    std::fflush(file_);
}

void
JsonlWriter::writeAll(const std::vector<RunRecord> &recs)
{
    for (const auto &rec : recs)
        write(rec);
}

std::unique_ptr<JsonlWriter>
JsonlWriter::fromEnv(const std::string &name)
{
    const char *dir = std::getenv("PERCON_JSONL_DIR");
    if (!dir || !*dir)
        return nullptr;
    return std::make_unique<JsonlWriter>(std::string(dir) + "/" + name +
                                         ".jsonl");
}

} // namespace percon
