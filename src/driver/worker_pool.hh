/**
 * @file
 * Multi-process sweep execution: fork()ed workers over pipes.
 *
 * SweepRunner scales a sweep across the threads of one process; the
 * worker pool scales it across PROCESSES, which matters once the
 * persistent snapshot store exists — workers share built snapshots
 * through the machine-wide store and page cache instead of through a
 * process-local heap, and a crash in one design point cannot take
 * down the whole sweep.
 *
 * Shape: the parent forks K workers (fork only, no exec — workers
 * inherit the already-parsed point list) and hands out contiguous
 * index ranges over a per-worker command pipe. Chunks follow guided
 * self-scheduling — max(1, remaining / (2K)) — so early chunks are
 * large (low handout overhead) and final chunks are small: a
 * straggler can hold at most a small tail range while idle workers
 * drain the rest, which is work-stealing without shared memory.
 * Workers stream binary result frames back over a per-worker result
 * pipe; the parent polls, reassembles, and merges rows by input
 * index.
 *
 * Determinism contract (same as SweepRunner): rows are merged in
 * input order and every label that depends on "first occurrence" or
 * on store state is derived by the PARENT over the full point list
 * before forking — a worker only sees its own ranges and would get
 * them wrong. Merged output is therefore byte-identical across
 * --workers 1/2/4 and across repeats, except wall_seconds.
 *
 * A point that throws inside a worker is reported as an error frame
 * and rethrown by the parent (first failing index in input order)
 * after all workers finish, mirroring SweepRunner::run. A worker
 * that dies outright (signal, _exit) turns into an error on every
 * row it never delivered.
 */

#ifndef PERCON_DRIVER_WORKER_POOL_HH
#define PERCON_DRIVER_WORKER_POOL_HH

#include <vector>

#include "driver/checkpoint_cache.hh"
#include "driver/prediction_cache.hh"
#include "driver/prediction_store.hh"
#include "driver/snapshot_cache.hh"
#include "driver/snapshot_store.hh"
#include "driver/sweep_runner.hh"

namespace percon {

/** Cache/store accounting aggregated over all workers, for the
 *  sweep-end summary (each worker's process-global caches only see
 *  that worker's share of the work). */
struct WorkerSums
{
    SnapshotCache::Counters snapshot;
    CheckpointCache::Counters checkpoint;
    SnapshotStore::Counters store;
    PredictionCache::Counters pred;
    PredictionStore::Counters predStore;
};

struct WorkerPoolResult
{
    std::vector<RunRecord> records;  ///< input order, like SweepRunner
    WorkerSums sums;
    unsigned workersUsed = 0;
};

/**
 * Execute @p points across @p workers forked processes, @p jobs
 * SweepRunner-style threads each. Blocks until every worker exits.
 * The caller's process must be single-threaded at the call (fork
 * safety); percon_sim calls it before creating any thread pool.
 *
 * Workers execute points with the process-global SnapshotCache /
 * CheckpointCache (inheriting any store attached before the call)
 * and report those caches' counters back for @ref WorkerSums.
 *
 * @throws std::runtime_error carrying the first failing point's
 *         message when any point fails or a worker dies.
 */
WorkerPoolResult runSweepWorkers(const std::vector<SweepPoint> &points,
                                 unsigned workers, unsigned jobs = 1);

} // namespace percon

#endif // PERCON_DRIVER_WORKER_POOL_HH
