/**
 * @file
 * Thread-safe memoized trace-snapshot store.
 *
 * A sweep visits the same workload under many (machine, policy,
 * estimator) points; without sharing, every point would rebuild the
 * identical correct-path trace. This cache builds each snapshot
 * exactly once — BaselineCache-style: the first caller for a key owns
 * the build, concurrent callers block on a shared future — and hands
 * out shared_ptrs, so any number of sweep jobs and SMT threads replay
 * one immutable buffer.
 *
 * Keys are programKey(params) + requested length: the *full*
 * parameter serialization, because workload names are not unique
 * across randomly generated differential cases.
 */

#ifndef PERCON_DRIVER_SNAPSHOT_CACHE_HH
#define PERCON_DRIVER_SNAPSHOT_CACHE_HH

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "trace/trace_snapshot.hh"

namespace percon {

class SnapshotCache : public SnapshotProvider
{
  public:
    SnapshotCache() { cache_.reserve(32); }

    /** Accounting totals, readable at any time. */
    struct Counters
    {
        Count hits = 0;         ///< get() served from the map
        Count misses = 0;       ///< get() had to build
        Count builtUops = 0;    ///< total uops across built snapshots
        Count builtBytes = 0;   ///< total arena bytes held
        double buildSeconds = 0.0; ///< wall time inside builds
    };

    std::shared_ptr<const TraceSnapshot>
    get(const ProgramParams &params, Count uops) override;

    /** Cache key for one (workload, length) request. SweepPoint
     *  records this so SweepRunner can derive deterministic
     *  "hit"/"miss" labels from the sweep's own input order instead
     *  of the order get() calls happen to race at run time. */
    static std::string key(const ProgramParams &params, Count uops);

    Counters counters() const;

    /**
     * The process-wide cache the sweep driver injects into
     * TimingConfig when no provider was set explicitly. Lives for
     * the process: sweeps in the same invocation share workloads.
     */
    static SnapshotCache &global();

  private:
    mutable std::mutex mutex_;
    Counters counters_;
    std::unordered_map<
        std::string,
        std::shared_future<std::shared_ptr<const TraceSnapshot>>>
        cache_;
};

} // namespace percon

#endif // PERCON_DRIVER_SNAPSHOT_CACHE_HH
