/**
 * @file
 * Thread-safe memoized trace-snapshot cache with a persistent
 * store tier.
 *
 * A sweep visits the same workload under many (machine, policy,
 * estimator) points; without sharing, every point would rebuild the
 * identical correct-path trace. Lookup is three-tier:
 *
 *   1. in-memory memo — BaselineCache-style: the first caller for a
 *      key owns the resolution, concurrent callers block on a shared
 *      future, and everyone shares one immutable snapshot;
 *   2. mmap'd store file (when a SnapshotStore is attached) — a
 *      previous process on this machine already built the snapshot;
 *      it is mapped read-only and replayed zero-copy, no generation,
 *      no arena;
 *   3. generate — run the real ProgramModel once, then persist the
 *      result to the store (best effort) for every later process.
 *
 * Keys are programKey(params) + requested length: the *full*
 * parameter serialization, because workload names are not unique
 * across randomly generated differential cases.
 *
 * A failed resolution does NOT poison the key: the owner erases the
 * pending entry before publishing the exception, so contemporaneous
 * waiters see the failure but the next get() retries from scratch.
 */

#ifndef PERCON_DRIVER_SNAPSHOT_CACHE_HH
#define PERCON_DRIVER_SNAPSHOT_CACHE_HH

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "driver/snapshot_store.hh"
#include "trace/trace_snapshot.hh"

namespace percon {

class SnapshotCache : public SnapshotProvider
{
  public:
    SnapshotCache() { cache_.reserve(32); }

    /** Accounting totals, readable at any time. */
    struct Counters
    {
        Count hits = 0;         ///< get() served from the memo map
        Count misses = 0;       ///< get() had to resolve (tier 2/3)
        Count storeHits = 0;    ///< resolved by mapping a store file
        Count storeMisses = 0;  ///< store attached but had no file
        Count builtUops = 0;    ///< total uops across built snapshots
        Count builtBytes = 0;   ///< total arena bytes held
        Count mappedBytes = 0;  ///< total borrowed lane bytes held
        double buildSeconds = 0.0; ///< wall time inside builds
    };

    std::shared_ptr<const TraceSnapshot>
    get(const ProgramParams &params, Count uops) override;

    /** Cache key for one (workload, length) request. SweepPoint
     *  records this so SweepRunner can derive deterministic
     *  "hit"/"miss" labels from the sweep's own input order instead
     *  of the order get() calls happen to race at run time. */
    static std::string key(const ProgramParams &params, Count uops);

    /**
     * Attach (or detach, with null) the persistent store tier. Not
     * owned. Affects future get() misses only; memoized entries
     * stay valid. Typically set once before a sweep starts.
     */
    void setStore(SnapshotStore *store);

    /** The attached store tier; null when disabled. */
    SnapshotStore *store() const;

    Counters counters() const;

    /**
     * The process-wide cache the sweep driver injects into
     * TimingConfig when no provider was set explicitly. Lives for
     * the process: sweeps in the same invocation share workloads.
     * On first use it attaches a store for PERCON_SNAPSHOT_STORE
     * when that variable names a directory.
     */
    static SnapshotCache &global();

    /** TEST ONLY: make the next @p n tier-3 builds throw, to
     *  exercise the failed-resolution retry path. */
    void setTestFailNextBuilds(unsigned n) { testFailBuilds_ = n; }

  private:
    mutable std::mutex mutex_;
    Counters counters_;
    SnapshotStore *store_ = nullptr;
    unsigned testFailBuilds_ = 0;
    std::unordered_map<
        std::string,
        std::shared_future<std::shared_ptr<const TraceSnapshot>>>
        cache_;
};

} // namespace percon

#endif // PERCON_DRIVER_SNAPSHOT_CACHE_HH
