#include "sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hh"
#include "driver/checkpoint_cache.hh"
#include "driver/prediction_cache.hh"
#include "driver/snapshot_cache.hh"

namespace percon {

void
RunKey::set(const std::string &name, const std::string &value)
{
    for (auto &kv : params) {
        if (kv.first == name) {
            kv.second = value;
            return;
        }
    }
    params.emplace_back(name, value);
}

std::string
RunKey::param(const std::string &name) const
{
    for (const auto &kv : params)
        if (kv.first == name)
            return kv.second;
    return {};
}

std::string
RunKey::canonical() const
{
    std::string s = "bench=" + benchmark + "|machine=" + machine +
                    "|predictor=" + predictor + "|estimator=" +
                    (estimator.empty() ? "none" : estimator);
    for (const auto &kv : params)
        s += "|" + kv.first + "=" + kv.second;
    return s;
}

namespace {

std::uint64_t
fnv1aMix(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return mix64(h);
}

} // namespace

std::uint64_t
RunKey::seed() const
{
    return fnv1aMix(canonical());
}

std::uint64_t
environmentSeed(const std::string &benchmark, const std::string &machine,
                const std::string &predictor, Count measure_uops)
{
    return fnv1aMix("bench=" + benchmark + "|machine=" + machine +
                    "|predictor=" + predictor + "|uops=" +
                    std::to_string(measure_uops));
}

unsigned
shardOf(const RunKey &key, unsigned nshards)
{
    if (nshards <= 1)
        return 0;
    return static_cast<unsigned>(key.seed() % nshards);
}

SweepPoint
makePoint(RunKey key, RunFn fn)
{
    std::uint64_t seed = key.seed();
    return SweepPoint{std::move(key), seed,    std::move(fn),
                      {},             {},      {},
                      {},             nullptr, nullptr,
                      nullptr,        nullptr};
}

SweepPoint
timingPoint(RunKey key, const PipelineConfig &config,
            EstimatorFactory make_estimator,
            const SpeculationControl &spec_ctrl,
            const TimingConfig &timing)
{
    key.set("uops", std::to_string(timing.measureUops));
    std::uint64_t seed =
        environmentSeed(key.benchmark, key.machine, key.predictor,
                        timing.measureUops);

    // Resolve the snapshot cache key now, on the construction
    // thread. SweepRunner::run turns first-in-input-order occurrence
    // of each key into "miss" and later ones into "hit", so the
    // JSONL label is a property of the sweep's definition — not of
    // worker scheduling or of snapshots left in the process-wide
    // cache by an earlier sweep. The shared_future inside the cache
    // guarantees one build per key regardless of racing.
    TimingConfig t0 = timing;
    std::string snapshot_key;
    std::string snapshot_label = "off";
    std::function<bool()> store_probe;
    if (t0.traceSnapshot) {
        if (!t0.snapshotProvider)
            t0.snapshotProvider = &SnapshotCache::global();
        if (auto *sc =
                dynamic_cast<SnapshotCache *>(t0.snapshotProvider)) {
            ProgramParams prog = benchmarkSpec(key.benchmark).program;
            Count len = snapshotLengthFor(config, t0);
            snapshot_key = SnapshotCache::key(prog, len);
            // With a persistent store attached, give the runner a
            // header-only probe so it can derive the deterministic
            // "snapshot_store" label before any point executes.
            if (SnapshotStore *store = sc->store())
                store_probe = [store, prog, len] {
                    return store->probe(prog, len);
                };
        }
        snapshot_label = "on";
    }

    // Resolve the warm-checkpoint key the same way, on the
    // construction thread: the label is a property of the sweep
    // definition, derived by SweepRunner::run from first occurrence
    // in input order. Checkpointing only applies to sampled runs that
    // replay from a snapshot (runTiming needs the cursor seek).
    std::string checkpoint_key;
    if (t0.simMode == SimMode::Sampled && t0.checkpointWarm &&
        t0.traceSnapshot) {
        if (!t0.checkpointStore)
            t0.checkpointStore = &CheckpointCache::global();
        std::string est_key;
        if (make_estimator)
            est_key = make_estimator()->stateKey();
        checkpoint_key = warmCheckpointKey(
            benchmarkSpec(key.benchmark).program, t0.warmupUops,
            config, key.predictor, est_key);
    }

    // Resolve the prediction-stream key on the construction thread
    // too. The run seed below IS the wrong-path seed runTiming will
    // use, so the key computed here matches the one runTiming derives
    // at run time; the first point in input order naming it becomes
    // the sweep's recorder ("miss"), later ones replay ("hit").
    std::string pred_key;
    if (t0.predSnapshot) {
        if (!t0.predictionProvider)
            t0.predictionProvider = &PredictionCache::global();
        PredictionRunShape shape;
        shape.wrongPathSeed = seed;
        shape.warmupUops = t0.warmupUops;
        shape.measureUops = t0.measureUops;
        shape.sampled = t0.simMode == SimMode::Sampled;
        shape.sampleWarmUops = t0.sampleWarmUops;
        shape.sampleMeasureUops = t0.sampleMeasureUops;
        std::string est_key;
        if (make_estimator)
            est_key = make_estimator()->stateKey();
        pred_key = predictionKey(benchmarkSpec(key.benchmark).program,
                                 config, key.predictor, shape,
                                 spec_ctrl, est_key);
    }

    RunFn fn = [config, make_estimator, spec_ctrl, t0,
                snapshot_label](const RunKey &k,
                                std::uint64_t run_seed) {
        TimingConfig t = t0;
        t.wrongPathSeed = run_seed;
        TimingResult r =
            runTiming(benchmarkSpec(k.benchmark), config, k.predictor,
                      make_estimator, spec_ctrl, t);
        RunOutput out{r.stats, r.audit, snapshot_label};
        out.simMode = r.simMode;
        out.sampledWindows = r.sampledWindows;
        out.ipcErr = r.ipcErr;
        out.pvnErr = r.pvnErr;
        out.specErr = r.specErr;
        out.checkpoint = r.checkpoint;
        out.predSnapshot = r.predSnapshot;
        return out;
    };
    return SweepPoint{std::move(key),
                      seed,
                      std::move(fn),
                      std::move(snapshot_key),
                      std::move(checkpoint_key),
                      std::move(pred_key),
                      std::move(store_probe),
                      nullptr,
                      nullptr,
                      nullptr,
                      nullptr};
}

SweepRunner::SweepRunner(unsigned jobs) : jobs_(jobs)
{
    if (jobs_ == 0) {
        jobs_ = std::thread::hardware_concurrency();
        if (jobs_ == 0)
            jobs_ = 1;
    }
}

SweepLabels
deriveSweepLabels(const std::vector<SweepPoint> &points)
{
    SweepLabels labels;

    // Deterministic snapshot labels: the first point (in input
    // order) naming each snapshot key is the sweep's "miss", later
    // ones are "hit" — independent of worker interleaving and of
    // cache contents carried over from earlier sweeps.
    labels.snapshot.assign(points.size(), nullptr);
    {
        std::unordered_set<std::string> seen;
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (points[i].snapshotLabel) {
                labels.snapshot[i] = points[i].snapshotLabel;
                continue;
            }
            if (points[i].snapshotKey.empty())
                continue;
            labels.snapshot[i] =
                seen.insert(points[i].snapshotKey).second ? "miss"
                                                          : "hit";
        }
    }

    // Same deterministic scheme for warm-checkpoint labels.
    labels.checkpoint.assign(points.size(), nullptr);
    {
        std::unordered_set<std::string> seen;
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (points[i].checkpointLabel) {
                labels.checkpoint[i] = points[i].checkpointLabel;
                continue;
            }
            if (points[i].checkpointKey.empty())
                continue;
            labels.checkpoint[i] =
                seen.insert(points[i].checkpointKey).second ? "miss"
                                                            : "hit";
        }
    }

    // Persistent-store labels: header-probe each distinct workload
    // ONCE, before any point runs (and can therefore persist new
    // files). "hit"/"miss" records whether the store already held a
    // valid file at sweep start — machine state, not input order —
    // so every point sharing a workload gets the same label and the
    // result is identical for every job and worker count.
    labels.store.assign(points.size(), nullptr);
    {
        std::unordered_map<std::string, bool> probed;
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (points[i].storeLabel) {
                labels.store[i] = points[i].storeLabel;
                continue;
            }
            if (!points[i].storeProbe ||
                points[i].snapshotKey.empty())
                continue;
            auto ins =
                probed.try_emplace(points[i].snapshotKey, false);
            if (ins.second)
                ins.first->second = points[i].storeProbe();
            labels.store[i] = ins.first->second ? "hit" : "miss";
        }
    }

    // Prediction-stream labels: first occurrence of each prediction
    // key records ("miss"), later ones replay ("hit"). Input order
    // only — deliberately NOT store state — so a sweep's rows are
    // byte-identical whether the persistent store was cold or warm.
    labels.pred.assign(points.size(), nullptr);
    {
        std::unordered_set<std::string> seen;
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (points[i].predLabel) {
                labels.pred[i] = points[i].predLabel;
                continue;
            }
            if (points[i].predKey.empty())
                continue;
            labels.pred[i] =
                seen.insert(points[i].predKey).second ? "miss"
                                                      : "hit";
        }
    }
    return labels;
}

std::vector<RunRecord>
SweepRunner::run(const std::vector<SweepPoint> &points) const
{
    std::vector<RunRecord> out(points.size());
    std::vector<std::exception_ptr> errors(points.size());
    std::atomic<std::size_t> next{0};

    SweepLabels labels = deriveSweepLabels(points);
    const auto &snapshot_labels = labels.snapshot;
    const auto &checkpoint_labels = labels.checkpoint;
    const auto &store_labels = labels.store;
    const auto &pred_labels = labels.pred;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            RunRecord &rec = out[i];
            rec.key = points[i].key;
            rec.seed = points[i].seed;
            auto start = std::chrono::steady_clock::now();
            try {
                RunOutput output = points[i].fn(rec.key, rec.seed);
                rec.stats = output.stats;
                rec.audit = std::move(output.audit);
                rec.snapshot = snapshot_labels[i]
                                   ? snapshot_labels[i]
                                   : std::move(output.snapshot);
                if (store_labels[i])
                    rec.snapshotStore = store_labels[i];
                rec.simMode = std::move(output.simMode);
                rec.sampledWindows = output.sampledWindows;
                rec.ipcErr = output.ipcErr;
                rec.pvnErr = output.pvnErr;
                rec.specErr = output.specErr;
                rec.checkpoint = checkpoint_labels[i]
                                     ? checkpoint_labels[i]
                                     : std::move(output.checkpoint);
                rec.predSnapshot = pred_labels[i]
                                       ? pred_labels[i]
                                       : std::move(output.predSnapshot);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            rec.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        }
    };

    std::size_t nthreads =
        std::min<std::size_t>(jobs_, points.size());
    if (nthreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nthreads);
        for (std::size_t t = 0; t < nthreads; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    for (auto &e : errors)
        if (e)
            std::rethrow_exception(e);
    return out;
}

} // namespace percon
