#include "snapshot_store.hh"

#include <cstdlib>

#include "common/file_util.hh"
#include "common/logging.hh"
#include "trace/snapshot_file.hh"

namespace percon {

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

std::string
SnapshotStore::pathFor(const ProgramParams &params, Count uops) const
{
    // Key = content hash of the full parameter serialization + the
    // requested length. Nothing build- or host-dependent may ever go
    // in here (see snapshot_store_test.cc BuildIdIndependence).
    return dir_ + "/psnap-" + hex16(fnv1a64(programKey(params))) + "-" +
           std::to_string(uops) + ".snap";
}

std::shared_ptr<const TraceSnapshot>
SnapshotStore::tryOpen(const ProgramParams &params, Count uops)
{
    std::string path = pathFor(params, uops);
    bool existed = fileExists(path);
    std::string why;
    std::shared_ptr<const TraceSnapshot> snap =
        existed ? openSnapshotFile(path, params, uops, &why) : nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    if (snap) {
        ++counters_.mapHits;
        counters_.mappedBytes += snap->memoryBytes();
    } else {
        ++counters_.mapMisses;
        if (existed) {
            ++counters_.rejected;
            warn("snapshot store: rejecting '%s' (%s); regenerating",
                 path.c_str(), why.c_str());
        }
    }
    return snap;
}

bool
SnapshotStore::persist(const std::shared_ptr<const TraceSnapshot> &snap)
{
    if (!snap)
        return false;
    if (!ensureDir(dir_)) {
        warn("snapshot store: cannot create directory '%s'; "
             "not persisting", dir_.c_str());
        return false;
    }
    std::string path = pathFor(snap->params(), snap->size());
    std::string image = serializeSnapshot(*snap);
    std::string why;
    if (!atomicWriteFile(path, image.data(), image.size(), &why)) {
        warn("snapshot store: failed to persist '%s' (%s)",
             path.c_str(), why.c_str());
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.persisted;
    counters_.persistedBytes += image.size();
    return true;
}

bool
SnapshotStore::probe(const ProgramParams &params, Count uops) const
{
    return probeSnapshotFile(pathFor(params, uops), params, uops);
}

SnapshotStore::Counters
SnapshotStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::string
snapshotStoreDirFromEnv()
{
    const char *v = std::getenv("PERCON_SNAPSHOT_STORE");
    return (v && *v) ? std::string(v) : std::string();
}

} // namespace percon
