/**
 * @file
 * Thread-safe memoized prediction-stream cache with a persistent
 * store tier.
 *
 * A predictor-fixed sweep visits the same (workload, machine,
 * predictor, run shape) under many estimator/policy points; every
 * ungated point would otherwise re-run the identical predictor
 * predict/train work. Lookup is three-tier, like SnapshotCache:
 *
 *   1. in-memory memo — the first caller for a key becomes the
 *      RECORDER, concurrent callers block on a shared future, and
 *      everyone shares one immutable stream;
 *   2. mmap'd store file (when a PredictionStore is attached) — a
 *      previous process on this machine already recorded the stream;
 *      it is mapped read-only and replayed zero-copy;
 *   3. record — the owning run executes fully live with a
 *      PredictionTraceBuilder attached, then publish()es the result
 *      (persisted to the store, best effort) for every later run.
 *
 * Unlike SnapshotCache, tier 3 cannot happen inside acquire(): the
 * recording IS the caller's own timing run. acquire() therefore
 * hands back a recording lease and parks the promise until the
 * caller ends it with exactly one publish() or abandon().
 *
 * A failed recording does NOT poison the key: abandon() erases the
 * pending entry before publishing the exception, so contemporaneous
 * waiters fall back to running live but the next acquire() records
 * again from scratch.
 */

#ifndef PERCON_DRIVER_PREDICTION_CACHE_HH
#define PERCON_DRIVER_PREDICTION_CACHE_HH

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/prediction_key.hh"
#include "driver/prediction_store.hh"

namespace percon {

class PredictionCache : public PredictionProvider
{
  public:
    PredictionCache() { cache_.reserve(32); }

    /** Accounting totals, readable at any time. Plain counters only
     *  (trivially copyable): forked sweep workers ship this struct
     *  raw over the result pipe. */
    struct Counters
    {
        Count hits = 0;         ///< acquire() served a replay stream
        Count misses = 0;       ///< acquire() handed out a recording
        Count storeHits = 0;    ///< resolved by mapping a store file
        Count storeMisses = 0;  ///< store attached but had no file
        Count abandoned = 0;    ///< recordings given up without data
        Count recorded = 0;     ///< streams published by recorders
        Count recordedBytes = 0; ///< lane bytes across recordings
        Count mappedBytes = 0;  ///< borrowed lane bytes held
    };

    Lease acquire(const std::string &key) override;
    void publish(const std::string &key,
                 std::shared_ptr<const PredictionTrace> trace) override;
    void abandon(const std::string &key) noexcept override;

    /**
     * Attach (or detach, with null) the persistent store tier. Not
     * owned. Affects future acquire() misses only; memoized entries
     * stay valid. Typically set once before a sweep starts.
     */
    void setStore(PredictionStore *store);

    /** The attached store tier; null when disabled. */
    PredictionStore *store() const;

    Counters counters() const;

    /**
     * The process-wide cache the drivers inject into TimingConfig
     * when no provider was set explicitly. Lives for the process. On
     * first use it attaches a store for PERCON_PRED_SNAPSHOT_STORE
     * when that variable names a directory.
     */
    static PredictionCache &global();

  private:
    using Future =
        std::shared_future<std::shared_ptr<const PredictionTrace>>;

    mutable std::mutex mutex_;
    Counters counters_;
    PredictionStore *store_ = nullptr;
    std::unordered_map<std::string, Future> cache_;
    /** Promises for in-flight recordings, parked between acquire()
     *  handing out the lease and the recorder's publish()/abandon().
     */
    std::unordered_map<
        std::string,
        std::promise<std::shared_ptr<const PredictionTrace>>>
        pending_;
};

} // namespace percon

#endif // PERCON_DRIVER_PREDICTION_CACHE_HH
