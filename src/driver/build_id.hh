/**
 * @file
 * Build identification for result provenance.
 *
 * JSONL rows carry the producing build so archived sweep outputs can
 * be traced back to the exact source tree. The id is `git describe
 * --always --dirty` captured at CMake configure time and passed in
 * via the PERCON_BUILD_ID compile definition; trees built outside
 * git (or without the definition) report "unknown".
 */

#ifndef PERCON_DRIVER_BUILD_ID_HH
#define PERCON_DRIVER_BUILD_ID_HH

namespace percon {

/** The build id string; never null, "unknown" when unavailable. */
const char *buildId();

/** TEST ONLY: override buildId() (null restores the compiled-in id).
 *  Lets the snapshot-store build-id-independence regression vary the
 *  id at runtime instead of needing two differently-built binaries.
 *  @p id must outlive the override. */
void setBuildIdForTest(const char *id);

} // namespace percon

#endif // PERCON_DRIVER_BUILD_ID_HH
