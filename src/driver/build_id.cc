#include "build_id.hh"

namespace percon {

const char *
buildId()
{
#ifdef PERCON_BUILD_ID
    return PERCON_BUILD_ID;
#else
    return "unknown";
#endif
}

} // namespace percon
