#include "build_id.hh"

namespace percon {

namespace {
const char *override_id = nullptr;
} // namespace

const char *
buildId()
{
    if (override_id)
        return override_id;
#ifdef PERCON_BUILD_ID
    return PERCON_BUILD_ID;
#else
    return "unknown";
#endif
}

void
setBuildIdForTest(const char *id)
{
    override_id = id;
}

} // namespace percon
