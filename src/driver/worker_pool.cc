#include "worker_pool.hh"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include "common/logging.hh"

namespace percon {

namespace {

static_assert(std::is_trivially_copyable_v<CoreStats>,
              "CoreStats crosses the worker pipe as raw bytes");
static_assert(std::is_trivially_copyable_v<SnapshotCache::Counters> &&
                  std::is_trivially_copyable_v<
                      CheckpointCache::Counters> &&
                  std::is_trivially_copyable_v<SnapshotStore::Counters> &&
                  std::is_trivially_copyable_v<
                      PredictionCache::Counters> &&
                  std::is_trivially_copyable_v<
                      PredictionStore::Counters>,
              "counter structs cross the worker pipe as raw bytes");

/** Range-command sentinel: no more work, send sums and exit. */
constexpr std::uint64_t kEofRange = ~std::uint64_t(0);

// Result-pipe frames: u32 payload length, then payload whose first
// byte is the tag. 'R' = one finished row, 'E' = one failed row,
// 'D' = range complete (worker idle), 'S' = final counter sums.

bool
writeFull(int fd, const void *data, std::size_t bytes)
{
    const char *p = static_cast<const char *>(data);
    while (bytes > 0) {
        ssize_t n = ::write(fd, p, bytes);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        bytes -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendFrame(int fd, std::mutex &mx, const std::string &payload)
{
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    std::lock_guard<std::mutex> lock(mx);
    return writeFull(fd, &len, sizeof len) &&
           writeFull(fd, payload.data(), payload.size());
}

void
putRaw(std::string &buf, const void *data, std::size_t bytes)
{
    buf.append(static_cast<const char *>(data), bytes);
}

void
putU64(std::string &buf, std::uint64_t v)
{
    putRaw(buf, &v, sizeof v);
}

void
putDouble(std::string &buf, double v)
{
    putRaw(buf, &v, sizeof v);
}

void
putStr(std::string &buf, const std::string &s)
{
    putU64(buf, s.size());
    putRaw(buf, s.data(), s.size());
}

/** Bounds-checked reader over one received frame payload. */
struct FrameReader
{
    const char *p;
    std::size_t left;

    explicit FrameReader(const std::string &payload)
        : p(payload.data()), left(payload.size())
    {}

    void raw(void *out, std::size_t bytes)
    {
        if (bytes > left)
            throw std::runtime_error("worker frame truncated");
        std::memcpy(out, p, bytes);
        p += bytes;
        left -= bytes;
    }

    std::uint64_t u64()
    {
        std::uint64_t v;
        raw(&v, sizeof v);
        return v;
    }

    double f64()
    {
        double v;
        raw(&v, sizeof v);
        return v;
    }

    std::string str()
    {
        std::uint64_t n = u64();
        if (n > left)
            throw std::runtime_error("worker frame truncated");
        std::string s(p, n);
        p += n;
        left -= n;
        return s;
    }
};

/** Execute [lo, hi) with @p jobs threads, streaming a frame per
 *  point. Row frames carry only what the parent cannot know itself
 *  (stats and run outcome); key/seed/labels are parent-side. */
void
runRange(const std::vector<SweepPoint> &points, std::size_t lo,
         std::size_t hi, unsigned jobs, int res_fd, std::mutex &wmx)
{
    std::atomic<std::size_t> next{lo};
    auto work = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= hi)
                return;
            std::string payload;
            auto start = std::chrono::steady_clock::now();
            try {
                RunOutput out =
                    points[i].fn(points[i].key, points[i].seed);
                double wall = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  start)
                                  .count();
                payload += 'R';
                putU64(payload, i);
                putRaw(payload, &out.stats, sizeof out.stats);
                putU64(payload, out.sampledWindows);
                putDouble(payload, out.ipcErr);
                putDouble(payload, out.pvnErr);
                putDouble(payload, out.specErr);
                putDouble(payload, wall);
                putStr(payload, out.audit);
                putStr(payload, out.snapshot);
                putStr(payload, out.simMode);
                putStr(payload, out.checkpoint);
                putStr(payload, out.predSnapshot);
            } catch (const std::exception &e) {
                payload += 'E';
                putU64(payload, i);
                putStr(payload, e.what());
            } catch (...) {
                payload += 'E';
                putU64(payload, i);
                putStr(payload, "unknown error");
            }
            if (!sendFrame(res_fd, wmx, payload))
                _exit(1);  // parent is gone; nothing to report to
        }
    };
    unsigned nthreads = std::max(1u, jobs);
    nthreads = static_cast<unsigned>(
        std::min<std::size_t>(nthreads, hi - lo));
    if (nthreads <= 1) {
        work();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(work);
    for (auto &th : pool)
        th.join();
}

/** Worker main: serve range commands until the sentinel, then report
 *  this process's cache/store counters and exit. Never returns. */
[[noreturn]] void
childLoop(const std::vector<SweepPoint> &points, int cmd_fd,
          int res_fd, unsigned jobs)
{
    // Report DELTAS: the forked image inherits the parent's cache
    // contents and counter values, which must not be double-counted
    // when the parent sums over workers.
    auto snap0 = SnapshotCache::global().counters();
    auto chk0 = CheckpointCache::global().counters();
    SnapshotStore::Counters store0{};
    if (SnapshotStore *s = SnapshotCache::global().store())
        store0 = s->counters();
    auto pred0 = PredictionCache::global().counters();
    PredictionStore::Counters pstore0{};
    if (PredictionStore *s = PredictionCache::global().store())
        pstore0 = s->counters();

    std::mutex wmx;
    for (;;) {
        std::uint64_t range[2];
        std::size_t got = 0;
        bool eof = false;
        while (got < sizeof range) {
            ssize_t n = ::read(
                cmd_fd, reinterpret_cast<char *>(range) + got,
                sizeof range - got);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                eof = true;
                break;
            }
            got += static_cast<std::size_t>(n);
        }
        if (eof || range[0] == kEofRange)
            break;
        runRange(points, range[0], range[1], jobs, res_fd, wmx);
        std::string done(1, 'D');
        if (!sendFrame(res_fd, wmx, done))
            _exit(1);
    }

    std::string sums(1, 'S');
    auto snap = SnapshotCache::global().counters();
    auto chk = CheckpointCache::global().counters();
    SnapshotStore::Counters store{};
    if (SnapshotStore *s = SnapshotCache::global().store())
        store = s->counters();
    snap.hits -= snap0.hits;
    snap.misses -= snap0.misses;
    snap.storeHits -= snap0.storeHits;
    snap.storeMisses -= snap0.storeMisses;
    snap.builtUops -= snap0.builtUops;
    snap.builtBytes -= snap0.builtBytes;
    snap.mappedBytes -= snap0.mappedBytes;
    snap.buildSeconds -= snap0.buildSeconds;
    chk.hits -= chk0.hits;
    chk.misses -= chk0.misses;
    chk.builtBytes -= chk0.builtBytes;
    chk.buildSeconds -= chk0.buildSeconds;
    store.mapHits -= store0.mapHits;
    store.mapMisses -= store0.mapMisses;
    store.rejected -= store0.rejected;
    store.persisted -= store0.persisted;
    store.persistedBytes -= store0.persistedBytes;
    store.mappedBytes -= store0.mappedBytes;
    auto pred = PredictionCache::global().counters();
    PredictionStore::Counters pstore{};
    if (PredictionStore *s = PredictionCache::global().store())
        pstore = s->counters();
    pred.hits -= pred0.hits;
    pred.misses -= pred0.misses;
    pred.storeHits -= pred0.storeHits;
    pred.storeMisses -= pred0.storeMisses;
    pred.abandoned -= pred0.abandoned;
    pred.recorded -= pred0.recorded;
    pred.recordedBytes -= pred0.recordedBytes;
    pred.mappedBytes -= pred0.mappedBytes;
    pstore.mapHits -= pstore0.mapHits;
    pstore.mapMisses -= pstore0.mapMisses;
    pstore.rejected -= pstore0.rejected;
    pstore.persisted -= pstore0.persisted;
    pstore.persistedBytes -= pstore0.persistedBytes;
    pstore.mappedBytes -= pstore0.mappedBytes;
    putRaw(sums, &snap, sizeof snap);
    putRaw(sums, &chk, sizeof chk);
    putRaw(sums, &store, sizeof store);
    putRaw(sums, &pred, sizeof pred);
    putRaw(sums, &pstore, sizeof pstore);
    sendFrame(res_fd, wmx, sums);
    ::close(res_fd);
    ::close(cmd_fd);
    // _exit, not exit: do not flush stdio buffers inherited from the
    // parent or run the parent's atexit handlers.
    _exit(0);
}

void
addSums(WorkerSums &into, const WorkerSums &from)
{
    auto &s = into.snapshot;
    const auto &fs = from.snapshot;
    s.hits += fs.hits;
    s.misses += fs.misses;
    s.storeHits += fs.storeHits;
    s.storeMisses += fs.storeMisses;
    s.builtUops += fs.builtUops;
    s.builtBytes += fs.builtBytes;
    s.mappedBytes += fs.mappedBytes;
    s.buildSeconds += fs.buildSeconds;
    auto &c = into.checkpoint;
    const auto &fc = from.checkpoint;
    c.hits += fc.hits;
    c.misses += fc.misses;
    c.builtBytes += fc.builtBytes;
    c.buildSeconds += fc.buildSeconds;
    auto &t = into.store;
    const auto &ft = from.store;
    t.mapHits += ft.mapHits;
    t.mapMisses += ft.mapMisses;
    t.rejected += ft.rejected;
    t.persisted += ft.persisted;
    t.persistedBytes += ft.persistedBytes;
    t.mappedBytes += ft.mappedBytes;
    auto &p = into.pred;
    const auto &fp = from.pred;
    p.hits += fp.hits;
    p.misses += fp.misses;
    p.storeHits += fp.storeHits;
    p.storeMisses += fp.storeMisses;
    p.abandoned += fp.abandoned;
    p.recorded += fp.recorded;
    p.recordedBytes += fp.recordedBytes;
    p.mappedBytes += fp.mappedBytes;
    auto &q = into.predStore;
    const auto &fq = from.predStore;
    q.mapHits += fq.mapHits;
    q.mapMisses += fq.mapMisses;
    q.rejected += fq.rejected;
    q.persisted += fq.persisted;
    q.persistedBytes += fq.persistedBytes;
    q.mappedBytes += fq.mappedBytes;
}

struct Child
{
    pid_t pid = -1;
    int cmdFd = -1;  ///< parent write end
    int resFd = -1;  ///< parent read end
    std::string buf; ///< partial-frame reassembly
    bool eof = false;
};

} // namespace

WorkerPoolResult
runSweepWorkers(const std::vector<SweepPoint> &points, unsigned workers,
                unsigned jobs)
{
    WorkerPoolResult result;
    result.records.resize(points.size());
    std::size_t nworkers = std::max<std::size_t>(1, workers);
    nworkers = std::min(nworkers, std::max<std::size_t>(
                                      1, points.size()));
    result.workersUsed = static_cast<unsigned>(nworkers);

    // Labels (and the store probes behind them) MUST be derived
    // before forking: a worker that probed mid-run would see files
    // persisted by its siblings and label nondeterministically.
    SweepLabels labels = deriveSweepLabels(points);

    for (std::size_t i = 0; i < points.size(); ++i) {
        result.records[i].key = points[i].key;
        result.records[i].seed = points[i].seed;
    }
    if (points.empty())
        return result;

    // A worker that dies mid-write must surface as an error, not a
    // SIGPIPE kill of the parent.
    struct sigaction ignore_pipe
    {
    };
    ignore_pipe.sa_handler = SIG_IGN;
    struct sigaction old_pipe
    {
    };
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    std::vector<Child> children(nworkers);
    for (std::size_t c = 0; c < nworkers; ++c) {
        int cmd[2], res[2];
        if (::pipe(cmd) != 0 || ::pipe(res) != 0)
            fatal("worker pool: pipe() failed: %s",
                  std::strerror(errno));
        pid_t pid = ::fork();
        if (pid < 0)
            fatal("worker pool: fork() failed: %s",
                  std::strerror(errno));
        if (pid == 0) {
            // Worker: drop every parent-side and earlier-sibling fd
            // so pipe EOFs propagate promptly.
            for (std::size_t e = 0; e < c; ++e) {
                ::close(children[e].cmdFd);
                ::close(children[e].resFd);
            }
            ::close(cmd[1]);
            ::close(res[0]);
            childLoop(points, cmd[0], res[1], jobs);
        }
        ::close(cmd[0]);
        ::close(res[1]);
        children[c].pid = pid;
        children[c].cmdFd = cmd[1];
        children[c].resFd = res[0];
    }

    std::vector<char> delivered(points.size(), 0);
    std::vector<std::string> errors(points.size());
    std::size_t next_index = 0;

    auto assignRange = [&](Child &child) {
        std::uint64_t range[2];
        if (next_index >= points.size()) {
            range[0] = range[1] = kEofRange;
        } else {
            // Guided self-scheduling: big chunks early, small late,
            // so stragglers hold at most a short tail range.
            std::size_t remaining = points.size() - next_index;
            std::size_t chunk = std::max<std::size_t>(
                1, remaining / (2 * nworkers));
            range[0] = next_index;
            range[1] = next_index + chunk;
            next_index += chunk;
        }
        if (!writeFull(child.cmdFd, range, sizeof range))
            child.eof = true;  // dead child; waitpid sorts it out
    };

    auto handleFrame = [&](Child &child, const std::string &payload) {
        if (payload.empty())
            throw std::runtime_error("empty worker frame");
        FrameReader r(payload);
        char tag;
        r.raw(&tag, 1);
        switch (tag) {
          case 'R': {
            std::uint64_t i = r.u64();
            if (i >= points.size())
                throw std::runtime_error("worker row out of range");
            RunRecord &rec = result.records[i];
            r.raw(&rec.stats, sizeof rec.stats);
            rec.sampledWindows = r.u64();
            rec.ipcErr = r.f64();
            rec.pvnErr = r.f64();
            rec.specErr = r.f64();
            rec.wallSeconds = r.f64();
            rec.audit = r.str();
            std::string snapshot = r.str();
            rec.simMode = r.str();
            std::string checkpoint = r.str();
            std::string pred_snapshot = r.str();
            rec.snapshot = labels.snapshot[i] ? labels.snapshot[i]
                                              : std::move(snapshot);
            rec.checkpoint = labels.checkpoint[i]
                                 ? labels.checkpoint[i]
                                 : std::move(checkpoint);
            if (labels.store[i])
                rec.snapshotStore = labels.store[i];
            rec.predSnapshot = labels.pred[i]
                                   ? labels.pred[i]
                                   : std::move(pred_snapshot);
            delivered[i] = 1;
            break;
          }
          case 'E': {
            std::uint64_t i = r.u64();
            if (i >= points.size())
                throw std::runtime_error("worker row out of range");
            errors[i] = r.str();
            if (errors[i].empty())
                errors[i] = "unknown error";
            delivered[i] = 1;
            break;
          }
          case 'D':
            assignRange(child);
            break;
          case 'S': {
            WorkerSums sums;
            r.raw(&sums.snapshot, sizeof sums.snapshot);
            r.raw(&sums.checkpoint, sizeof sums.checkpoint);
            r.raw(&sums.store, sizeof sums.store);
            r.raw(&sums.pred, sizeof sums.pred);
            r.raw(&sums.predStore, sizeof sums.predStore);
            addSums(result.sums, sums);
            break;
          }
          default:
            throw std::runtime_error("unknown worker frame tag");
        }
    };

    // Hand the initial range to every worker, then serve frames
    // until every result pipe reaches EOF.
    for (auto &child : children)
        assignRange(child);

    std::string pool_error;
    try {
        std::vector<pollfd> fds;
        for (;;) {
            fds.clear();
            for (auto &child : children)
                if (!child.eof)
                    fds.push_back(
                        pollfd{child.resFd, POLLIN, 0});
            if (fds.empty())
                break;
            int rc = ::poll(fds.data(),
                            static_cast<nfds_t>(fds.size()), -1);
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                throw std::runtime_error(
                    std::string("worker pool: poll() failed: ") +
                    std::strerror(errno));
            }
            for (const auto &pfd : fds) {
                if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                Child *child = nullptr;
                for (auto &c : children)
                    if (c.resFd == pfd.fd)
                        child = &c;
                char chunk[4096];
                ssize_t n = ::read(pfd.fd, chunk, sizeof chunk);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    child->eof = true;
                    continue;
                }
                if (n == 0) {
                    child->eof = true;
                    continue;
                }
                child->buf.append(chunk,
                                  static_cast<std::size_t>(n));
                while (child->buf.size() >= sizeof(std::uint32_t)) {
                    std::uint32_t len;
                    std::memcpy(&len, child->buf.data(), sizeof len);
                    if (child->buf.size() < sizeof len + len)
                        break;
                    std::string payload =
                        child->buf.substr(sizeof len, len);
                    child->buf.erase(0, sizeof len + len);
                    handleFrame(*child, payload);
                }
            }
        }
    } catch (const std::exception &e) {
        pool_error = e.what();
    }

    for (auto &child : children) {
        ::close(child.cmdFd);
        ::close(child.resFd);
        int status = 0;
        while (::waitpid(child.pid, &status, 0) < 0 &&
               errno == EINTR) {
        }
        if (pool_error.empty()) {
            if (WIFSIGNALED(status))
                pool_error = "worker killed by signal " +
                             std::to_string(WTERMSIG(status));
            else if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
                pool_error = "worker exited with status " +
                             std::to_string(WEXITSTATUS(status));
        }
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);

    // First failure in INPUT order wins, mirroring SweepRunner::run.
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!errors[i].empty())
            throw std::runtime_error("sweep point '" +
                                     points[i].key.canonical() +
                                     "' failed in worker: " +
                                     errors[i]);
        if (!delivered[i] && pool_error.empty())
            pool_error = "worker never delivered point " +
                         std::to_string(i);
    }
    if (!pool_error.empty())
        throw std::runtime_error("worker pool: " + pool_error);
    return result;
}

} // namespace percon
