/**
 * @file
 * JSON-lines emission of per-run sweep results.
 *
 * Each RunRecord becomes one self-describing JSON object per line:
 *
 *   {"bench":"gcc","machine":"deep40x4","predictor":"bimodal-gshare",
 *    "estimator":"perceptron-cic","params":{"lambda":"0","uops":"600000"},
 *    "seed":1234,"shard":0,"audit":"off","snapshot":"miss",
 *    "snapshot_store":"off","build":"e47d42c","wall_seconds":0.41,
 *    "stats":{"cycles":...,"ipc":...,"retired_uops":...,
 *             "executed_uops":...,"wrong_path_executed":...,
 *             "retired_branches":...,"mispredicts":...,
 *             "gated_cycles":...,"reversals":...,"reversals_good":...,
 *             "pvn":...,"spec":...}}
 *
 * Sweeps emit records in input order after all runs complete, so a
 * file produced at --jobs 8 is identical to one produced at --jobs 1
 * except for the wall_seconds fields. Benches honour the
 * PERCON_JSONL_DIR environment variable the way CsvWriter honours
 * PERCON_CSV_DIR.
 */

#ifndef PERCON_DRIVER_JSONL_HH
#define PERCON_DRIVER_JSONL_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "driver/sweep_runner.hh"

namespace percon {

/** Render one record as a single JSON line (no trailing newline). */
std::string runRecordJson(const RunRecord &rec);

/** Appends run records to a JSON-lines file. */
class JsonlWriter
{
  public:
    /** Open (create or append) the file; fatal() on failure. */
    explicit JsonlWriter(const std::string &path);
    ~JsonlWriter();

    JsonlWriter(const JsonlWriter &) = delete;
    JsonlWriter &operator=(const JsonlWriter &) = delete;

    void write(const RunRecord &rec);
    void writeAll(const std::vector<RunRecord> &recs);

    /**
     * Factory honouring PERCON_JSONL_DIR: returns a writer for
     * <dir>/<name>.jsonl, or nullptr when the variable is unset.
     */
    static std::unique_ptr<JsonlWriter>
    fromEnv(const std::string &name);

  private:
    std::FILE *file_ = nullptr;
};

} // namespace percon

#endif // PERCON_DRIVER_JSONL_HH
