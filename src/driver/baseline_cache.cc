#include "baseline_cache.hh"

namespace percon {

const CoreStats &
BaselineCache::getOrCompute(const std::string &key,
                            const std::function<CoreStats()> &fn)
{
    std::promise<CoreStats> promise;
    std::shared_future<CoreStats> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            future = promise.get_future().share();
            cache_.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        try {
            promise.set_value(fn());
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

const CoreStats &
BaselineCache::get(const BenchmarkSpec &spec, const PipelineConfig &config,
                   const std::string &predictor,
                   const std::string &machine_id,
                   const TimingConfig &timing)
{
    std::string key = spec.program.name + "/" + predictor + "/" +
                      machine_id + "/" +
                      std::to_string(timing.measureUops);
    return getOrCompute(key, [&] {
        SpeculationControl none;
        return runTiming(spec, config, predictor, nullptr, none, timing)
            .stats;
    });
}

} // namespace percon
