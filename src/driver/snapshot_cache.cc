#include "snapshot_cache.hh"

#include <chrono>

namespace percon {

std::string
SnapshotCache::key(const ProgramParams &params, Count uops)
{
    return programKey(params) + "/" + std::to_string(uops);
}

std::shared_ptr<const TraceSnapshot>
SnapshotCache::get(const ProgramParams &params, Count uops)
{
    std::string key = SnapshotCache::key(params, uops);

    std::promise<std::shared_ptr<const TraceSnapshot>> promise;
    std::shared_future<std::shared_ptr<const TraceSnapshot>> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            future = promise.get_future().share();
            cache_.emplace(key, future);
            ++counters_.misses;
            owner = true;
        } else {
            future = it->second;
            ++counters_.hits;
        }
    }
    if (owner) {
        try {
            auto t0 = std::chrono::steady_clock::now();
            auto snap = TraceSnapshot::build(params, uops);
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                counters_.builtUops += snap->size();
                counters_.builtBytes += snap->memoryBytes();
                counters_.buildSeconds += secs;
            }
            promise.set_value(std::move(snap));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

SnapshotCache::Counters
SnapshotCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

SnapshotCache &
SnapshotCache::global()
{
    static SnapshotCache cache;
    return cache;
}

} // namespace percon
