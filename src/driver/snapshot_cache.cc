#include "snapshot_cache.hh"

#include <chrono>
#include <stdexcept>

namespace percon {

std::string
SnapshotCache::key(const ProgramParams &params, Count uops)
{
    return programKey(params) + "/" + std::to_string(uops);
}

std::shared_ptr<const TraceSnapshot>
SnapshotCache::get(const ProgramParams &params, Count uops)
{
    std::string key = SnapshotCache::key(params, uops);

    std::promise<std::shared_ptr<const TraceSnapshot>> promise;
    std::shared_future<std::shared_ptr<const TraceSnapshot>> future;
    bool owner = false;
    SnapshotStore *store = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            future = promise.get_future().share();
            cache_.emplace(key, future);
            ++counters_.misses;
            owner = true;
            store = store_;
        } else {
            future = it->second;
            ++counters_.hits;
        }
    }
    if (owner) {
        try {
            // Tier 2: a prior process may have persisted this
            // snapshot; map it read-only instead of regenerating.
            std::shared_ptr<const TraceSnapshot> snap;
            if (store) {
                snap = store->tryOpen(params, uops);
                std::lock_guard<std::mutex> lock(mutex_);
                if (snap) {
                    ++counters_.storeHits;
                    counters_.mappedBytes += snap->memoryBytes();
                } else {
                    ++counters_.storeMisses;
                }
            }
            if (!snap) {
                // Tier 3: generate, then publish for later
                // processes (best effort).
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (testFailBuilds_ > 0) {
                        --testFailBuilds_;
                        throw std::runtime_error(
                            "injected snapshot build failure");
                    }
                }
                auto t0 = std::chrono::steady_clock::now();
                snap = TraceSnapshot::build(params, uops);
                double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    counters_.builtUops += snap->size();
                    counters_.builtBytes += snap->memoryBytes();
                    counters_.buildSeconds += secs;
                }
                if (store)
                    store->persist(snap);
            }
            promise.set_value(std::move(snap));
        } catch (...) {
            // Remove the pending entry BEFORE publishing the
            // exception: waiters already holding the future see the
            // failure, but the key is not poisoned — the next get()
            // retries the build from scratch.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                cache_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

void
SnapshotCache::setStore(SnapshotStore *store)
{
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = store;
}

SnapshotStore *
SnapshotCache::store() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return store_;
}

SnapshotCache::Counters
SnapshotCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

SnapshotCache &
SnapshotCache::global()
{
    static SnapshotCache cache;
    static SnapshotStore *env_store = [] {
        std::string dir = snapshotStoreDirFromEnv();
        if (dir.empty())
            return static_cast<SnapshotStore *>(nullptr);
        static SnapshotStore store(dir);
        cache.setStore(&store);
        return &store;
    }();
    (void)env_store;
    return cache;
}

} // namespace percon
