/**
 * @file
 * Thread-safe memoized warm-checkpoint store.
 *
 * SnapshotCache-style: the first caller for a key owns the build
 * (the caller's callback warms its own core inline and serializes
 * the result), concurrent callers for the same key block on a shared
 * future and restore the blob instead of re-warming. An empty blob is
 * a memoized negative result — the builder could not serialize —
 * telling every consumer to warm directly.
 *
 * Keys come from warmCheckpointKey(): the full workload identity plus
 * every configuration axis functional warming reads. Backend and
 * policy parameters are absent by construction, which is the whole
 * point — a sweep over gate thresholds or machine back ends warms
 * each (workload, front end) exactly once.
 *
 * A failed build does NOT poison the key: the owner erases the
 * pending entry before publishing the exception, so concurrent
 * waiters see the failure but the next get() retries.
 */

#ifndef PERCON_DRIVER_CHECKPOINT_CACHE_HH
#define PERCON_DRIVER_CHECKPOINT_CACHE_HH

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/warm_checkpoint.hh"

namespace percon {

class CheckpointCache : public CheckpointStore
{
  public:
    CheckpointCache() { cache_.reserve(32); }

    /** Accounting totals, readable at any time. */
    struct Counters
    {
        Count hits = 0;       ///< get() served from the map
        Count misses = 0;     ///< get() ran the build callback
        Count builtBytes = 0; ///< total blob bytes held
        double buildSeconds = 0.0; ///< wall time inside builds
    };

    std::shared_ptr<const std::string>
    get(const std::string &key,
        const std::function<std::string()> &build) override;

    Counters counters() const;

    /**
     * The process-wide cache the sweep driver injects into
     * TimingConfig when checkpointed warming is requested without an
     * explicit store. Lives for the process, like
     * SnapshotCache::global().
     */
    static CheckpointCache &global();

  private:
    mutable std::mutex mutex_;
    Counters counters_;
    std::unordered_map<
        std::string,
        std::shared_future<std::shared_ptr<const std::string>>>
        cache_;
};

} // namespace percon

#endif // PERCON_DRIVER_CHECKPOINT_CACHE_HH
