#include "prediction_cache.hh"

#include <stdexcept>
#include <utility>

#include "common/logging.hh"

namespace percon {

PredictionProvider::Lease
PredictionCache::acquire(const std::string &key)
{
    Future future;
    bool owner = false;
    PredictionStore *store = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            std::promise<std::shared_ptr<const PredictionTrace>> p;
            future = p.get_future().share();
            cache_.emplace(key, future);
            pending_.emplace(key, std::move(p));
            ++counters_.misses;
            owner = true;
            store = store_;
        } else {
            future = it->second;
            ++counters_.hits;
        }
    }
    if (owner) {
        // Tier 2: a prior process may have persisted this stream;
        // map it read-only instead of re-recording.
        std::shared_ptr<const PredictionTrace> trace;
        if (store) {
            trace = store->tryOpen(key);
            std::lock_guard<std::mutex> lock(mutex_);
            if (trace) {
                ++counters_.storeHits;
                counters_.mappedBytes += trace->memoryBytes();
            } else {
                ++counters_.storeMisses;
            }
        }
        if (trace) {
            // Resolve the pending promise immediately (counts as a
            // replay for this caller, not a recording).
            std::promise<std::shared_ptr<const PredictionTrace>> p;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = pending_.find(key);
                PERCON_ASSERT(it != pending_.end(),
                              "prediction cache: lost pending entry "
                              "for '%s'", key.c_str());
                p = std::move(it->second);
                pending_.erase(it);
            }
            p.set_value(trace);
            return Lease{std::move(trace), false};
        }
        // Tier 3: the caller records. It must end the lease with
        // exactly one publish() or abandon().
        return Lease{nullptr, true};
    }
    // Waiter: block until the recorder finishes. A failed recording
    // is not fatal — fall back to running fully live.
    try {
        return Lease{future.get(), false};
    } catch (...) {
        return Lease{nullptr, false};
    }
}

void
PredictionCache::publish(const std::string &key,
                         std::shared_ptr<const PredictionTrace> trace)
{
    PERCON_ASSERT(trace != nullptr,
                  "prediction cache: publish(null) for '%s' — use "
                  "abandon()", key.c_str());
    std::promise<std::shared_ptr<const PredictionTrace>> p;
    PredictionStore *store = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = pending_.find(key);
        PERCON_ASSERT(it != pending_.end(),
                      "prediction cache: publish without a recording "
                      "lease for '%s'", key.c_str());
        p = std::move(it->second);
        pending_.erase(it);
        ++counters_.recorded;
        counters_.recordedBytes +=
            static_cast<Count>(trace->memoryBytes());
        store = store_;
    }
    if (store)
        store->persist(trace);
    p.set_value(std::move(trace));
}

void
PredictionCache::abandon(const std::string &key) noexcept
{
    std::promise<std::shared_ptr<const PredictionTrace>> p;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = pending_.find(key);
        if (it == pending_.end())
            return; // already published/abandoned; nothing to do
        p = std::move(it->second);
        pending_.erase(it);
        // Remove the memo entry BEFORE publishing the exception:
        // waiters already holding the future see the failure (and
        // run live), but the key is not poisoned — the next
        // acquire() records again from scratch.
        cache_.erase(key);
        ++counters_.abandoned;
    }
    try {
        p.set_exception(std::make_exception_ptr(std::runtime_error(
            "prediction recording abandoned")));
    } catch (...) {
        // set_exception cannot meaningfully fail here; swallow to
        // honour noexcept.
    }
}

void
PredictionCache::setStore(PredictionStore *store)
{
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = store;
}

PredictionStore *
PredictionCache::store() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return store_;
}

PredictionCache::Counters
PredictionCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

PredictionCache &
PredictionCache::global()
{
    static PredictionCache cache;
    static PredictionStore *env_store = [] {
        std::string dir = predictionStoreDirFromEnv();
        if (dir.empty())
            return static_cast<PredictionStore *>(nullptr);
        static PredictionStore store(dir);
        cache.setStore(&store);
        return &store;
    }();
    (void)env_store;
    return cache;
}

} // namespace percon
