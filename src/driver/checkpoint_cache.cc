#include "checkpoint_cache.hh"

#include <chrono>

namespace percon {

std::shared_ptr<const std::string>
CheckpointCache::get(const std::string &key,
                     const std::function<std::string()> &build)
{
    std::promise<std::shared_ptr<const std::string>> promise;
    std::shared_future<std::shared_ptr<const std::string>> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            future = promise.get_future().share();
            cache_.emplace(key, future);
            ++counters_.misses;
            owner = true;
        } else {
            future = it->second;
            ++counters_.hits;
        }
    }
    if (owner) {
        try {
            auto t0 = std::chrono::steady_clock::now();
            auto blob = std::make_shared<const std::string>(build());
            double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                counters_.builtBytes += blob->size();
                counters_.buildSeconds += secs;
            }
            promise.set_value(std::move(blob));
        } catch (...) {
            // Remove the pending entry BEFORE publishing the
            // exception: waiters already holding the future see the
            // failure, but the key is not poisoned — the next get()
            // retries the build.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                cache_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

CheckpointCache::Counters
CheckpointCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

CheckpointCache &
CheckpointCache::global()
{
    static CheckpointCache cache;
    return cache;
}

} // namespace percon
