/**
 * @file
 * Minimal ASCII table printer used by the benchmark harnesses to
 * render paper tables.
 */

#ifndef PERCON_COMMON_TABLE_HH
#define PERCON_COMMON_TABLE_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace percon {

/** Column-aligned ASCII table with a header row and separators. */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator between row groups. */
    void addSeparator();

    /** Render the full table. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    // Separator rows are represented as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace percon

#endif // PERCON_COMMON_TABLE_HH
