/**
 * @file
 * Minimal CSV writer for machine-readable bench output.
 *
 * The bench binaries print human tables; setting PERCON_CSV_DIR
 * makes them additionally append raw rows to <dir>/<name>.csv so
 * results can be plotted or regression-tracked.
 */

#ifndef PERCON_COMMON_CSV_HH
#define PERCON_COMMON_CSV_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace percon {

/** Appends header-checked rows to a CSV file. */
class CsvWriter
{
  public:
    /**
     * Open (create or append) a CSV file. The header is written only
     * when the file is new. fatal() if the path cannot be opened.
     */
    CsvWriter(const std::string &path,
              const std::vector<std::string> &header);
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Append one row; must match the header width. Fields
     *  containing commas or quotes are quoted per RFC 4180. */
    void addRow(const std::vector<std::string> &row);

    /**
     * Factory honouring PERCON_CSV_DIR: returns a writer for
     * <dir>/<name>.csv, or nullptr when the variable is unset.
     */
    static std::unique_ptr<CsvWriter>
    fromEnv(const std::string &name,
            const std::vector<std::string> &header);

  private:
    std::FILE *file_ = nullptr;
    std::size_t columns_;
};

} // namespace percon

#endif // PERCON_COMMON_CSV_HH
