/**
 * @file
 * Saturating and resetting counters used throughout branch prediction
 * and confidence estimation hardware.
 */

#ifndef PERCON_COMMON_SAT_COUNTER_HH
#define PERCON_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "logging.hh"

namespace percon {

/**
 * An n-bit up/down saturating counter (1 <= n <= 30).
 *
 * This is the classic Smith-predictor building block: increment
 * saturates at 2^n - 1, decrement saturates at 0.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /** @param bits counter width; @param initial initial value. */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : max_((1u << bits) - 1), value_(initial)
    {
        PERCON_ASSERT(bits >= 1 && bits <= 30, "bad counter width %u", bits);
        PERCON_ASSERT(initial <= max_, "initial %u exceeds max %u",
                      initial, max_);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Reset to zero (JRS-style miss-distance behaviour). */
    void reset() { value_ = 0; }

    /** Restore a raw counter value (checkpoint deserialization). */
    void
    setValue(unsigned v)
    {
        PERCON_ASSERT(v <= max_, "value %u exceeds max %u", v, max_);
        value_ = v;
    }

    /** Set to the saturated maximum. */
    void saturate() { value_ = max_; }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }

    /** True when the counter is in its upper half (MSB set). */
    bool msb() const { return value_ > max_ / 2; }

    /** Distance from either rail, used by Smith self-confidence. */
    unsigned
    railDistance() const
    {
        unsigned from_low = value_;
        unsigned from_high = max_ - value_;
        return from_low < from_high ? from_low : from_high;
    }

  private:
    unsigned max_ = 3;
    unsigned value_ = 0;
};

/**
 * JRS miss-distance counter: incremented on correct prediction,
 * reset to zero on a misprediction. High confidence when at or above
 * the threshold.
 */
class ResettingCounter
{
  public:
    ResettingCounter() = default;

    explicit ResettingCounter(unsigned bits) : counter_(bits) {}

    /** Record a correct prediction. */
    void recordCorrect() { counter_.increment(); }

    /** Record a misprediction: miss distance restarts at zero. */
    void recordMispredict() { counter_.reset(); }

    unsigned value() const { return counter_.value(); }
    unsigned max() const { return counter_.max(); }

  private:
    SatCounter counter_{4};
};

} // namespace percon

#endif // PERCON_COMMON_SAT_COUNTER_HH
