#include "csv.hh"

#include <cstdlib>
#include <memory>

#include "common/logging.hh"

namespace percon {

namespace {

std::string
escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

CsvWriter::CsvWriter(const std::string &path,
                     const std::vector<std::string> &header)
    : columns_(header.size())
{
    PERCON_ASSERT(!header.empty(), "CSV needs at least one column");
    bool fresh = false;
    if (std::FILE *probe = std::fopen(path.c_str(), "rb")) {
        std::fclose(probe);
    } else {
        fresh = true;
    }
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        fatal("cannot open CSV file '%s'", path.c_str());
    if (fresh) {
        for (std::size_t i = 0; i < header.size(); ++i)
            std::fprintf(file_, "%s%s", i ? "," : "",
                         escape(header[i]).c_str());
        std::fputc('\n', file_);
    }
}

CsvWriter::~CsvWriter()
{
    if (file_)
        std::fclose(file_);
}

void
CsvWriter::addRow(const std::vector<std::string> &row)
{
    PERCON_ASSERT(row.size() == columns_,
                  "CSV row width %zu != header width %zu", row.size(),
                  columns_);
    for (std::size_t i = 0; i < row.size(); ++i)
        std::fprintf(file_, "%s%s", i ? "," : "",
                     escape(row[i]).c_str());
    std::fputc('\n', file_);
    std::fflush(file_);
}

std::unique_ptr<CsvWriter>
CsvWriter::fromEnv(const std::string &name,
                   const std::vector<std::string> &header)
{
    const char *dir = std::getenv("PERCON_CSV_DIR");
    if (!dir || !*dir)
        return nullptr;
    return std::make_unique<CsvWriter>(
        std::string(dir) + "/" + name + ".csv", header);
}

} // namespace percon
