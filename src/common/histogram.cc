#include "histogram.hh"

#include <sstream>

#include "logging.hh"

namespace percon {

Histogram::Histogram(std::int64_t lo, std::int64_t hi,
                     std::int64_t bucket_width)
    : lo_(lo), hi_(hi), width_(bucket_width)
{
    PERCON_ASSERT(hi > lo, "empty histogram range");
    PERCON_ASSERT(bucket_width >= 1, "bad bucket width");
    std::size_t n =
        static_cast<std::size_t>((hi - lo) / bucket_width) + 1;
    counts_.assign(n, 0);
}

std::size_t
Histogram::indexFor(std::int64_t sample) const
{
    if (sample < lo_)
        return 0;
    if (sample > hi_)
        return counts_.size() - 1;
    return static_cast<std::size_t>((sample - lo_) / width_);
}

void
Histogram::add(std::int64_t sample)
{
    ++counts_[indexFor(sample)];
    ++total_;
    sum_ += static_cast<double>(sample);
}

std::int64_t
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + static_cast<std::int64_t>(i) * width_;
}

double
Histogram::bucketCenter(std::size_t i) const
{
    return static_cast<double>(bucketLo(i)) +
           static_cast<double>(width_ - 1) / 2.0;
}

Count
Histogram::massInRange(std::int64_t lo, std::int64_t hi) const
{
    Count mass = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::int64_t b_lo = bucketLo(i);
        std::int64_t b_hi = b_lo + width_ - 1;
        if (b_hi >= lo && b_lo <= hi)
            mass += counts_[i];
    }
    return mass;
}

double
Histogram::mean() const
{
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double
Histogram::mode() const
{
    if (total_ == 0)
        return 0.0;
    std::size_t best = 0;
    for (std::size_t i = 1; i < counts_.size(); ++i) {
        if (counts_[i] > counts_[best])
            best = i;
    }
    return bucketCenter(best);
}

std::string
Histogram::dump(std::int64_t lo, std::int64_t hi) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::int64_t b_lo = bucketLo(i);
        if (b_lo + width_ - 1 < lo || b_lo > hi)
            continue;
        os << bucketCenter(i) << ' ' << counts_[i] << '\n';
    }
    return os.str();
}

} // namespace percon
