/**
 * @file
 * Integer-valued histogram used to collect perceptron-output density
 * functions (paper Figures 4-7).
 */

#ifndef PERCON_COMMON_HISTOGRAM_HH
#define PERCON_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "types.hh"

namespace percon {

/**
 * Fixed-range histogram over signed integer samples.
 *
 * Samples are grouped into uniform-width buckets; out-of-range samples
 * land in the first/last bucket so total mass is preserved.
 */
class Histogram
{
  public:
    Histogram() = default;

    /**
     * @param lo inclusive lower bound of the tracked range
     * @param hi inclusive upper bound of the tracked range
     * @param bucket_width samples per bucket (>= 1)
     */
    Histogram(std::int64_t lo, std::int64_t hi, std::int64_t bucket_width);

    /** Record one sample. */
    void add(std::int64_t sample);

    /** Number of buckets. */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Inclusive lower edge of bucket i. */
    std::int64_t bucketLo(std::size_t i) const;

    /** Center of bucket i (for plotting). */
    double bucketCenter(std::size_t i) const;

    /** Raw count in bucket i. */
    Count bucketCount(std::size_t i) const { return counts_.at(i); }

    /** Total samples recorded. */
    Count total() const { return total_; }

    /** Sum of counts over the inclusive sample range [lo, hi]. */
    Count massInRange(std::int64_t lo, std::int64_t hi) const;

    /** Mean of recorded samples (0 when empty). */
    double mean() const;

    /** Bucket center with the highest count (0 when empty). */
    double mode() const;

    /**
     * Render as "center count" lines, optionally restricted to the
     * sample range [lo, hi]; used by the figure benches.
     */
    std::string dump(std::int64_t lo, std::int64_t hi) const;

  private:
    std::size_t indexFor(std::int64_t sample) const;

    std::int64_t lo_ = 0;
    std::int64_t hi_ = 0;
    std::int64_t width_ = 1;
    std::vector<Count> counts_;
    Count total_ = 0;
    double sum_ = 0.0;
};

} // namespace percon

#endif // PERCON_COMMON_HISTOGRAM_HH
