/**
 * @file
 * Shared vectorized perceptron kernels.
 *
 * Every perceptron table in percon (the Jimenez-Lin direction
 * predictor, the paper's perceptron_cic estimator and the
 * perceptron_tnt baseline) runs the same two inner loops on every
 * dynamic branch: a signed dot product of a weight row with the
 * bipolar (+1/-1) global history, and a clamped +-1 weight bump.
 * This header provides both as standalone kernels over raw int16
 * rows, with three implementations selected at run time:
 *
 *   Scalar  branchless XOR-sign loop (portable baseline)
 *   Sse2    8 int16 lanes, madd widening accumulate (x86-64 floor)
 *   Avx2    16 int16 lanes (runtime-detected)
 *
 * All paths are exact integer arithmetic over the same values, so
 * their results are bit-identical by construction; the differential
 * fuzz test and the forced-scalar golden-stats run pin that contract.
 *
 * Row layout contract: callers allocate each row with
 * rowStride(history_bits) int16 elements: the bias weight at index
 * 0, history weights at [1 .. history_bits], and zero padding up to
 * the stride. The stride rounds the history portion up to a whole
 * number of 16-lane chunks so the SIMD paths load full vectors with
 * no scalar tail; the padding lanes multiply against zero weights in
 * dotProduct and are masked off in trainRow, so they stay zero.
 *
 * Path selection: AVX2 when the CPU supports it, else SSE2 on
 * x86-64, else scalar. A build configured with -DPERCON_FORCE_SCALAR
 * defaults to the scalar path (all paths stay compiled and callable
 * for tests). The PERCON_KERNEL environment variable
 * (scalar|sse2|avx2|auto) overrides the default; unknown or
 * unavailable values warn and are ignored. forcePath()/resetPath()
 * give tests in-process control of the dispatch.
 */

#ifndef PERCON_COMMON_PERCEPTRON_KERNEL_HH
#define PERCON_COMMON_PERCEPTRON_KERNEL_HH

#include <cstddef>
#include <cstdint>

namespace percon::kernel {

/** int16 lanes per padded history chunk (one AVX2 register). */
inline constexpr unsigned kRowLanes = 16;

/**
 * Elements per weight row: 1 bias + history_bits weights, padded so
 * the history portion is a whole number of kRowLanes chunks.
 */
constexpr std::size_t
rowStride(unsigned history_bits)
{
    return 1 +
           static_cast<std::size_t>(
               (history_bits + kRowLanes - 1) / kRowLanes) *
               kRowLanes;
}

/** Kernel implementation selector. */
enum class Path : std::uint8_t { Scalar, Sse2, Avx2 };

const char *pathName(Path path);

/** Whether @p path can run on this build/CPU. */
bool pathAvailable(Path path);

/** The path the dispatched entry points currently use. */
Path activePath();

/** Pin the dispatch to @p path (panics if unavailable). Test hook. */
void forcePath(Path path);

/** Restore the default (CPU-detected / env-overridden) dispatch. */
void resetPath();

/**
 * y = row[0] + sum over i < history_bits of
 *     (bit i of ghr ? +row[i+1] : -row[i+1])
 *
 * @p row must follow the rowStride() layout contract above.
 */
std::int32_t dotProduct(const std::int16_t *row, std::uint64_t ghr,
                        unsigned history_bits);

/**
 * row[0] += dir; row[i+1] += dir * (bit i of ghr ? +1 : -1), each
 * weight clamped to [wmin, wmax]. @p dir must be +1 or -1 and
 * [wmin, wmax] must cover 0 and fit in int16. Padding lanes are
 * never modified.
 */
void trainRow(std::int16_t *row, std::uint64_t ghr,
              unsigned history_bits, std::int32_t dir,
              std::int32_t wmin, std::int32_t wmax);

// Per-path entry points, exposed so the differential fuzz test and
// the microbenches can exercise every implementation regardless of
// the dispatched default. The SSE2/AVX2 variants panic when
// pathAvailable() is false for them.
std::int32_t dotProductScalar(const std::int16_t *row,
                              std::uint64_t ghr, unsigned history_bits);
void trainRowScalar(std::int16_t *row, std::uint64_t ghr,
                    unsigned history_bits, std::int32_t dir,
                    std::int32_t wmin, std::int32_t wmax);
std::int32_t dotProductSse2(const std::int16_t *row, std::uint64_t ghr,
                            unsigned history_bits);
void trainRowSse2(std::int16_t *row, std::uint64_t ghr,
                  unsigned history_bits, std::int32_t dir,
                  std::int32_t wmin, std::int32_t wmax);
std::int32_t dotProductAvx2(const std::int16_t *row, std::uint64_t ghr,
                            unsigned history_bits);
void trainRowAvx2(std::int16_t *row, std::uint64_t ghr,
                  unsigned history_bits, std::int32_t dir,
                  std::int32_t wmin, std::int32_t wmax);

} // namespace percon::kernel

#endif // PERCON_COMMON_PERCEPTRON_KERNEL_HH
