/**
 * @file
 * Confidence-estimation quality metrics and running statistics.
 *
 * Terminology follows Grunwald et al. and the paper: a "low
 * confidence" estimate is a (negative) test asserting the branch will
 * be mispredicted.
 *
 *  - Spec (specificity / coverage): fraction of mispredicted branches
 *    classified low confidence.
 *  - PVN (accuracy): probability a low-confidence estimate really is
 *    a misprediction.
 *  - Sens (sensitivity): fraction of correctly predicted branches
 *    classified high confidence.
 *  - PVP: probability a high-confidence estimate really is a correct
 *    prediction.
 */

#ifndef PERCON_COMMON_STATS_HH
#define PERCON_COMMON_STATS_HH

#include <string>

#include "types.hh"

namespace percon {

/** 2x2 tally of (predicted-correctly?, estimated-low-confidence?). */
class ConfidenceMatrix
{
  public:
    /** Record one dynamic branch. */
    void
    record(bool mispredicted, bool low_confidence)
    {
        if (mispredicted) {
            if (low_confidence)
                ++mbLow_;
            else
                ++mbHigh_;
        } else {
            if (low_confidence)
                ++cbLow_;
            else
                ++cbHigh_;
        }
    }

    /** Merge another matrix into this one. */
    void
    merge(const ConfidenceMatrix &other)
    {
        mbLow_ += other.mbLow_;
        mbHigh_ += other.mbHigh_;
        cbLow_ += other.cbLow_;
        cbHigh_ += other.cbHigh_;
    }

    Count mispredictedLow() const { return mbLow_; }
    Count mispredictedHigh() const { return mbHigh_; }
    Count correctLow() const { return cbLow_; }
    Count correctHigh() const { return cbHigh_; }

    Count mispredicted() const { return mbLow_ + mbHigh_; }
    Count correct() const { return cbLow_ + cbHigh_; }
    Count lowConfidence() const { return mbLow_ + cbLow_; }
    Count highConfidence() const { return mbHigh_ + cbHigh_; }
    Count total() const { return mispredicted() + correct(); }

    /** Coverage of mispredictions, in [0,1]; 0 when undefined. */
    double spec() const { return ratio(mbLow_, mispredicted()); }

    /** Accuracy of low-confidence estimates, in [0,1]. */
    double pvn() const { return ratio(mbLow_, lowConfidence()); }

    /** Fraction of correct predictions kept high confidence. */
    double sens() const { return ratio(cbHigh_, correct()); }

    /** Accuracy of high-confidence estimates. */
    double pvp() const { return ratio(cbHigh_, highConfidence()); }

    /** Baseline misprediction rate of the underlying predictor. */
    double mispredictRate() const { return ratio(mispredicted(), total()); }

  private:
    static double
    ratio(Count num, Count den)
    {
        return den == 0 ? 0.0 : static_cast<double>(num) /
                                    static_cast<double>(den);
    }

    Count mbLow_ = 0;
    Count mbHigh_ = 0;
    Count cbLow_ = 0;
    Count cbHigh_ = 0;
};

/** Streaming mean/variance/min/max (Welford). */
class RunningStat
{
  public:
    void add(double sample);

    Count count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    Count n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Percentage helper: 100 * num / den, 0 when den == 0. */
double pct(double num, double den);

/** Format a double with fixed decimals (for table cells). */
std::string fmtFixed(double v, int decimals = 1);

} // namespace percon

#endif // PERCON_COMMON_STATS_HH
