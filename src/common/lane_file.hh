/**
 * @file
 * Generic versioned lane-directory file container.
 *
 * Two snapshot tiers persist packed bit/byte lanes to mmap-able
 * files with the same skeleton: a magic + endian-tagged header, a
 * format-specific geometry block, a key string identifying the
 * generating parameters, a lane directory, and 64-byte-aligned lane
 * payloads covered by a content hash. "PCSNAP01" (trace snapshots,
 * trace/snapshot_file.cc) and "PCPRED01" (prediction streams,
 * bpred/prediction_file.cc) are both instances of this layout:
 *
 *   offset          field
 *   --------------  -----------------------------------------------
 *              0    magic (8 bytes; last two chars are the format
 *                   version — any layout change bumps them)
 *              8    endian tag 0x0102030405060708 (foreign-endian
 *                   producers read back reversed and are rejected)
 *             16    total file bytes (truncation check)
 *             24    FNV-1a hash of the key string (fast mismatch
 *                   check; the full key below is authoritative)
 *             32    G format-specific geometry words
 *        32+G*8     payload offset (64-byte aligned)
 *        40+G*8     payload bytes
 *        48+G*8     FNV-1a hash of the payload bytes
 *        56+G*8     key length / 64+G*8 lane count
 *        72+G*8     laneCount x { u64 offset, u64 bytes } directory
 *         keyOff    key string (not NUL-terminated)
 *                   ... zero padding to the payload offset ...
 *        payload    lanes in directory order, each starting on a
 *                   64-byte-aligned file offset
 *
 * With G=3 and 7 lanes this reproduces the original PCSNAP01 layout
 * byte for byte (payload fields at 56..88, directory at 96, key at
 * 208); the snapshot-store on-disk format is unchanged by the
 * generalization.
 *
 * Everything in the header derives from the generating parameters
 * and the lane contents — never from the producing build, git state,
 * host, or time — so a file written by one build is byte-identical
 * to and readable by any other.
 */

#ifndef PERCON_COMMON_LANE_FILE_HH
#define PERCON_COMMON_LANE_FILE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace percon {

/** Native byte-order tag (reads back reversed on a foreign-endian
 *  host). */
inline constexpr std::uint64_t kLaneFileEndianTag =
    0x0102030405060708ULL;

/** Lane payloads start on this alignment within the file; mmap
 *  bases are page-aligned, so every lane is cache-line clean in
 *  memory too. */
inline constexpr std::size_t kLaneFileAlign = 64;

/** Static shape of one concrete lane-file format. */
struct LaneFileLayout
{
    const char *magic;         ///< exactly 8 bytes, version included
    std::size_t laneCount;     ///< fixed number of lanes
    std::size_t geometryWords; ///< format-specific u64s after the hash

    std::size_t payloadOffOff() const { return 32 + geometryWords * 8; }
    std::size_t payloadBytesOff() const { return payloadOffOff() + 8; }
    std::size_t payloadHashOff() const { return payloadOffOff() + 16; }
    std::size_t keyLenOff() const { return payloadOffOff() + 24; }
    std::size_t laneCountOff() const { return payloadOffOff() + 32; }
    std::size_t dirOff() const { return payloadOffOff() + 40; }
    std::size_t keyOff() const { return dirOff() + laneCount * 16; }
};

/** One lane to serialize: raw bytes, laid out in directory order. */
struct LaneView
{
    const void *data;
    std::size_t bytes;
};

/**
 * Serialize a lane file image: header, @p geometry words, @p key,
 * then the lanes 64-byte aligned, with the payload hash computed
 * last over the final bytes. @p geometry has layout.geometryWords
 * entries and @p lanes layout.laneCount entries.
 */
std::string serializeLaneFile(const LaneFileLayout &layout,
                              const std::string &key,
                              const std::uint64_t *geometry,
                              const LaneView *lanes);

/**
 * Format-specific geometry check used during validation: given the
 * geometry words read from the header, either return a static error
 * message (e.g. "uop count mismatch") or fill
 * @p expected_lane_bytes[layout.laneCount] and return null.
 */
using LaneGeometryCheck = std::function<const char *(
    const std::uint64_t *geometry, std::size_t *expected_lane_bytes)>;

/**
 * Shared validation walk over a mapped image. Checks, in order:
 * header size, magic/version, endianness, declared file size, lane
 * count, key hash, key bytes, geometry (via @p check), payload
 * extent, lane directory, and — when @p check_payload — the payload
 * hash (the only full-scan step). Fills @p dir (laneCount x 2),
 * @p geometry (geometryWords) and @p lane_bytes_total; returns false
 * with *why set to the first failed check.
 */
bool validateLaneImage(const std::byte *base, std::size_t file_bytes,
                       const LaneFileLayout &layout,
                       const std::string &key,
                       const LaneGeometryCheck &check,
                       bool check_payload, std::uint64_t (*dir)[2],
                       std::uint64_t *geometry,
                       std::size_t *lane_bytes_total, std::string *why);

} // namespace percon

#endif // PERCON_COMMON_LANE_FILE_HH
