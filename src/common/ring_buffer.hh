/**
 * @file
 * Fixed-capacity circular deque with stable physical slots.
 *
 * Elements live in a power-of-two array and are addressed two ways:
 * logically (index 0 is the oldest element) or physically by slot
 * index, which stays fixed for an element's whole residency — push
 * and pop never move elements. A physical slot therefore pairs with
 * a generation counter to form a stable O(1) handle; see
 * uarch/inflight_window.hh for the main client.
 */

#ifndef PERCON_COMMON_RING_BUFFER_HH
#define PERCON_COMMON_RING_BUFFER_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace percon {

template <typename T>
class RingBuffer
{
  public:
    /** An empty buffer; reset() before use. */
    RingBuffer() = default;

    /** Capacity is @p min_capacity rounded up to a power of two. */
    explicit RingBuffer(std::size_t min_capacity)
    {
        reset(min_capacity);
    }

    /** Drop all contents and (re)size to hold @p min_capacity. */
    void
    reset(std::size_t min_capacity)
    {
        std::size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        storage_.assign(cap, T{});
        mask_ = cap - 1;
        head_ = 0;
        count_ = 0;
    }

    std::size_t capacity() const { return storage_.size(); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ >= storage_.size(); }

    /** Physical slot of logical index @p logical. */
    std::size_t
    slotOf(std::size_t logical) const
    {
        return (head_ + logical) & mask_;
    }

    T &at(std::size_t logical) { return storage_[slotOf(logical)]; }
    const T &
    at(std::size_t logical) const
    {
        return storage_[slotOf(logical)];
    }

    T &atSlot(std::size_t slot) { return storage_[slot]; }
    const T &atSlot(std::size_t slot) const { return storage_[slot]; }

    T &
    front()
    {
        PERCON_ASSERT(!empty(), "front() on empty ring buffer");
        return storage_[head_];
    }

    const T &
    front() const
    {
        PERCON_ASSERT(!empty(), "front() on empty ring buffer");
        return storage_[head_];
    }

    T &
    back()
    {
        PERCON_ASSERT(!empty(), "back() on empty ring buffer");
        return at(count_ - 1);
    }

    const T &
    back() const
    {
        PERCON_ASSERT(!empty(), "back() on empty ring buffer");
        return at(count_ - 1);
    }

    /** Append; returns the element's physical slot. */
    std::size_t
    pushBack(const T &v)
    {
        PERCON_ASSERT(!full(), "ring buffer overflow");
        std::size_t slot = slotOf(count_);
        storage_[slot] = v;
        ++count_;
        return slot;
    }

    /** Append a default-constructed element in place (the slot may
     *  hold a stale previous occupant) and return its slot. */
    std::size_t
    emplaceBack()
    {
        PERCON_ASSERT(!full(), "ring buffer overflow");
        std::size_t slot = slotOf(count_);
        storage_[slot] = T{};
        ++count_;
        return slot;
    }

    void
    popFront()
    {
        PERCON_ASSERT(!empty(), "popFront() on empty ring buffer");
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void
    popBack()
    {
        PERCON_ASSERT(!empty(), "popBack() on empty ring buffer");
        --count_;
    }

  private:
    std::vector<T> storage_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace percon

#endif // PERCON_COMMON_RING_BUFFER_HH
