#include "lane_file.hh"

#include <cstring>

#include "common/file_util.hh"

namespace percon {

namespace {

std::size_t
alignUp(std::size_t v)
{
    return (v + kLaneFileAlign - 1) / kLaneFileAlign * kLaneFileAlign;
}

void
putU64(std::string &buf, std::size_t off, std::uint64_t v)
{
    std::memcpy(&buf[off], &v, sizeof v);
}

std::uint64_t
getU64(const std::byte *base, std::size_t off)
{
    std::uint64_t v;
    std::memcpy(&v, base + off, sizeof v);
    return v;
}

} // namespace

std::string
serializeLaneFile(const LaneFileLayout &layout, const std::string &key,
                  const std::uint64_t *geometry, const LaneView *lanes)
{
    const std::size_t key_off = layout.keyOff();

    // Lay the lanes out 64-byte aligned after the header + key.
    std::size_t payload_off = alignUp(key_off + key.size());
    std::size_t cursor = payload_off;
    std::string dir_words;
    for (std::size_t i = 0; i < layout.laneCount; ++i) {
        cursor = alignUp(cursor);
        dir_words.resize((i + 1) * 16);
        std::memcpy(&dir_words[i * 16], &cursor, 8);
        std::memcpy(&dir_words[i * 16 + 8], &lanes[i].bytes, 8);
        cursor += lanes[i].bytes;
    }
    std::size_t total = cursor;

    std::string buf(total, '\0');
    std::memcpy(&buf[0], layout.magic, 8);
    putU64(buf, 8, kLaneFileEndianTag);
    putU64(buf, 16, total);
    putU64(buf, 24, fnv1a64(key));
    for (std::size_t g = 0; g < layout.geometryWords; ++g)
        putU64(buf, 32 + g * 8, geometry[g]);
    putU64(buf, layout.payloadOffOff(), payload_off);
    putU64(buf, layout.payloadBytesOff(), total - payload_off);
    putU64(buf, layout.keyLenOff(), key.size());
    putU64(buf, layout.laneCountOff(), layout.laneCount);
    std::memcpy(&buf[layout.dirOff()], dir_words.data(),
                dir_words.size());
    std::memcpy(&buf[key_off], key.data(), key.size());
    for (std::size_t i = 0; i < layout.laneCount; ++i) {
        std::uint64_t off;
        std::memcpy(&off, &dir_words[i * 16], 8);
        if (lanes[i].bytes)
            std::memcpy(&buf[off], lanes[i].data, lanes[i].bytes);
    }
    putU64(buf, layout.payloadHashOff(),
           fnv1a64(buf.data() + payload_off, total - payload_off));
    return buf;
}

bool
validateLaneImage(const std::byte *base, std::size_t file_bytes,
                  const LaneFileLayout &layout, const std::string &key,
                  const LaneGeometryCheck &check, bool check_payload,
                  std::uint64_t (*dir)[2], std::uint64_t *geometry,
                  std::size_t *lane_bytes_total, std::string *why)
{
    auto fail = [why](const char *msg) {
        if (why)
            *why = msg;
        return false;
    };
    const std::size_t key_off = layout.keyOff();
    if (file_bytes < key_off)
        return fail("file shorter than the fixed header");
    if (std::memcmp(base, layout.magic, 8) != 0)
        return fail("bad magic / format version");
    if (getU64(base, 8) != kLaneFileEndianTag)
        return fail("foreign byte order");
    if (getU64(base, 16) != file_bytes)
        return fail("declared size != file size (truncated?)");
    if (getU64(base, layout.laneCountOff()) != layout.laneCount)
        return fail("unexpected lane count");

    if (getU64(base, 24) != fnv1a64(key))
        return fail("params key hash mismatch");
    std::uint64_t key_len = getU64(base, layout.keyLenOff());
    if (key_len != key.size() || key_off + key_len > file_bytes ||
        std::memcmp(base + key_off, key.data(), key.size()) != 0)
        return fail("params key mismatch");

    for (std::size_t g = 0; g < layout.geometryWords; ++g)
        geometry[g] = getU64(base, 32 + g * 8);
    // Expected lane sizes live with the format, not the container.
    std::size_t expect[16] = {};
    if (const char *msg = check(geometry, expect))
        return fail(msg);

    std::uint64_t payload_off = getU64(base, layout.payloadOffOff());
    std::uint64_t payload_bytes =
        getU64(base, layout.payloadBytesOff());
    if (payload_off % kLaneFileAlign != 0 ||
        payload_off < key_off + key_len || payload_off > file_bytes ||
        payload_bytes != file_bytes - payload_off)
        return fail("bad payload extent");

    std::size_t total_lanes = 0;
    for (std::size_t i = 0; i < layout.laneCount; ++i) {
        dir[i][0] = getU64(base, layout.dirOff() + i * 16);
        dir[i][1] = getU64(base, layout.dirOff() + i * 16 + 8);
        if (dir[i][1] != expect[i])
            return fail("lane size does not match geometry");
        if (dir[i][0] % kLaneFileAlign != 0 ||
            dir[i][0] < payload_off || dir[i][0] > file_bytes ||
            dir[i][1] > file_bytes - dir[i][0])
            return fail("lane extent outside the file");
        total_lanes += expect[i];
    }

    if (check_payload &&
        getU64(base, layout.payloadHashOff()) !=
            fnv1a64(base + payload_off, payload_bytes))
        return fail("payload hash mismatch (corrupt file)");

    *lane_bytes_total = total_lanes;
    return true;
}

} // namespace percon
