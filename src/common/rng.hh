/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in percon flows from a named Rng stream,
 * seeded with splitmix64 from a (seed, stream-name) pair, so runs are
 * bit-reproducible regardless of evaluation order or module count.
 * The core generator is xoshiro256** (public domain, Blackman/Vigna).
 */

#ifndef PERCON_COMMON_RNG_HH
#define PERCON_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

namespace percon {

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Seed directly from a 64-bit value (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Seed from a base seed plus a stream name, for named streams. */
    Rng(std::uint64_t seed, std::string_view stream);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound); bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** True with probability p (clamped to [0,1]). */
    bool nextBernoulli(double p);

    /** Gaussian via Box-Muller (mean, stddev). */
    double nextGaussian(double mean, double stddev);

    /** Geometric: number of failures before first success, P(succ)=p. */
    std::uint64_t nextGeometric(double p);

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/** splitmix64 step, also useful as a cheap hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless 64-bit mix (finalizer of splitmix64). */
std::uint64_t mix64(std::uint64_t x);

} // namespace percon

#endif // PERCON_COMMON_RNG_HH
