/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of randomness in percon flows from a named Rng stream,
 * seeded with splitmix64 from a (seed, stream-name) pair, so runs are
 * bit-reproducible regardless of evaluation order or module count.
 * The core generator is xoshiro256** (public domain, Blackman/Vigna).
 */

#ifndef PERCON_COMMON_RNG_HH
#define PERCON_COMMON_RNG_HH

#include <cstdint>
#include <string_view>

#include "common/logging.hh"

namespace percon {

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Seed directly from a 64-bit value (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Seed from a base seed plus a stream name, for named streams. */
    Rng(std::uint64_t seed, std::string_view stream);

    // The hot distributions are defined inline: the simulator draws
    // one or more numbers per simulated uop, and the call overhead
    // showed up in profiles. The generated sequences are unchanged.

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t x, int k) {
            return (x << k) | (x >> (64 - k));
        };
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        PERCON_ASSERT(bound != 0, "nextBelow(0)");
        // Lemire-style rejection to avoid modulo bias.
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** True with probability p (clamped to [0,1]). */
    bool
    nextBernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Gaussian via Box-Muller (mean, stddev). */
    double nextGaussian(double mean, double stddev);

    /** Geometric: number of failures before first success, P(succ)=p. */
    std::uint64_t nextGeometric(double p);

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
    double geomP_ = -1.0;   ///< nextGeometric() log1p cache key
    double geomLogQ_ = 0.0;
};

/** splitmix64 step, also useful as a cheap hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless 64-bit mix (finalizer of splitmix64). */
std::uint64_t mix64(std::uint64_t x);

} // namespace percon

#endif // PERCON_COMMON_RNG_HH
