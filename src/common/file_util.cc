#include "file_util.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace percon {

std::uint64_t
fnv1a64(const void *data, std::size_t bytes)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnv1a64(const std::string &s)
{
    return fnv1a64(s.data(), s.size());
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

namespace {

std::string
errnoString()
{
    return std::strerror(errno);
}

void
setWhy(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
}

} // namespace

MappedFile::~MappedFile()
{
    close();
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : base_(other.base_), bytes_(other.bytes_),
      path_(std::move(other.path_))
{
    other.base_ = nullptr;
    other.bytes_ = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        close();
        base_ = other.base_;
        bytes_ = other.bytes_;
        path_ = std::move(other.path_);
        other.base_ = nullptr;
        other.bytes_ = 0;
    }
    return *this;
}

bool
MappedFile::open(const std::string &path, std::string *why)
{
    close();
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        setWhy(why, "open: " + errnoString());
        return false;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        setWhy(why, "fstat: " + errnoString());
        ::close(fd);
        return false;
    }
    if (!S_ISREG(st.st_mode) || st.st_size <= 0) {
        setWhy(why, "not a regular non-empty file");
        ::close(fd);
        return false;
    }
    std::size_t bytes = static_cast<std::size_t>(st.st_size);
    void *base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
    // The mapping holds its own reference to the file; the fd is no
    // longer needed (and a later rename over the path does not
    // disturb an established mapping).
    ::close(fd);
    if (base == MAP_FAILED) {
        setWhy(why, "mmap: " + errnoString());
        return false;
    }
    base_ = static_cast<const std::byte *>(base);
    bytes_ = bytes;
    path_ = path;
    return true;
}

void
MappedFile::close()
{
    if (base_) {
        ::munmap(const_cast<std::byte *>(base_), bytes_);
        base_ = nullptr;
        bytes_ = 0;
        path_.clear();
    }
}

bool
ensureDir(const std::string &dir)
{
    if (dir.empty())
        return false;
    std::string path;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        std::size_t slash = dir.find('/', pos);
        if (slash == std::string::npos)
            slash = dir.size();
        path = dir.substr(0, slash);
        pos = slash + 1;
        if (path.empty())  // leading '/'
            continue;
        if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    struct stat st;
    return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
atomicWriteFile(const std::string &path, const void *data,
                std::size_t bytes, std::string *why)
{
    // Unique sibling temp name: pid + per-process counter keeps
    // concurrent writers (threads in one process, or forked workers
    // racing on the same key) from clobbering each other's temp
    // files.
    static std::atomic<std::uint64_t> nonce{0};
    std::string tmp = path + ".tmp." +
                      std::to_string(static_cast<long>(::getpid())) +
                      "." + std::to_string(nonce.fetch_add(1));
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
                    0644);
    if (fd < 0) {
        setWhy(why, "open " + tmp + ": " + errnoString());
        return false;
    }
    const char *p = static_cast<const char *>(data);
    std::size_t left = bytes;
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setWhy(why, "write: " + errnoString());
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        setWhy(why, "fsync: " + errnoString());
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setWhy(why, "close: " + errnoString());
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setWhy(why, "rename: " + errnoString());
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

} // namespace percon
