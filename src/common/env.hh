/**
 * @file
 * Strict environment-variable parsing.
 *
 * std::atoll-style parsing silently turns garbage into 0 and accepts
 * trailing junk ("50000abc" -> 50000), so a typo in PERCON_UOPS could
 * silently shrink a run by 60x. These helpers parse with strtoll,
 * reject partial parses, and warn() when a set variable is discarded,
 * so every override either applies exactly or is loudly ignored.
 */

#ifndef PERCON_COMMON_ENV_HH
#define PERCON_COMMON_ENV_HH

#include <optional>

namespace percon {

/**
 * Read an integer environment variable.
 *
 * @return the parsed value, or std::nullopt when the variable is
 *         unset, empty, or not a complete decimal integer (the
 *         latter two warn to stderr).
 */
std::optional<long long> envInt64(const char *name);

/**
 * Read an integer environment variable with a minimum bound.
 * Values below @p minimum are discarded with a warning, like
 * malformed ones.
 */
std::optional<long long> envInt64AtLeast(const char *name,
                                         long long minimum);

} // namespace percon

#endif // PERCON_COMMON_ENV_HH
