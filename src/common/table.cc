#include "table.hh"

#include <sstream>

#include "logging.hh"

namespace percon {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    PERCON_ASSERT(!header_.empty(), "table needs at least one column");
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    PERCON_ASSERT(row.size() == header_.size(),
                  "row width %zu != header width %zu",
                  row.size(), header_.size());
    rows_.push_back(std::move(row));
}

void
AsciiTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
AsciiTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();
        }
    }

    auto rule = [&]() {
        std::string s = "+";
        for (auto w : widths)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::ostringstream os;
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << '\n';
        return os.str();
    };

    std::string out = rule() + line(header_) + rule();
    for (const auto &row : rows_)
        out += row.empty() ? rule() : line(row);
    out += rule();
    return out;
}

} // namespace percon
