#include "env.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace percon {

std::optional<long long>
envInt64(const char *name)
{
    const char *value = std::getenv(name);
    if (!value)
        return std::nullopt;
    if (*value == '\0') {
        warn("ignoring empty %s", name);
        return std::nullopt;
    }
    errno = 0;
    char *end = nullptr;
    long long parsed = std::strtoll(value, &end, 10);
    if (errno == ERANGE) {
        warn("ignoring %s=%s (out of range)", name, value);
        return std::nullopt;
    }
    if (end == value || *end != '\0') {
        warn("ignoring %s=%s (not an integer)", name, value);
        return std::nullopt;
    }
    return parsed;
}

std::optional<long long>
envInt64AtLeast(const char *name, long long minimum)
{
    std::optional<long long> v = envInt64(name);
    if (v && *v < minimum) {
        warn("ignoring %s=%lld (minimum %lld)", name, *v, minimum);
        return std::nullopt;
    }
    return v;
}

} // namespace percon
