#include "logging.hh"

#include <cstdarg>
#include <vector>

namespace percon {
namespace detail {

std::string
formatv(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

void
terminateAbort(const std::string &msg)
{
    emit("panic", msg);
    std::abort();
}

void
panicAssert(const char *cond, const std::string &msg)
{
    terminateAbort("assertion '" + std::string(cond) +
                   "' failed: " + msg);
}

void
terminateExit(const std::string &msg)
{
    emit("fatal", msg);
    std::exit(1);
}

} // namespace detail
} // namespace percon
