/**
 * @file
 * Global/local branch history registers with checkpoint support.
 *
 * Predictors shift the *predicted* outcome in at fetch and restore a
 * checkpoint on misprediction recovery, so the history seen by
 * in-flight predictions matches what real speculative hardware sees.
 */

#ifndef PERCON_COMMON_HISTORY_HH
#define PERCON_COMMON_HISTORY_HH

#include <cstdint>

#include "logging.hh"

namespace percon {

/**
 * A branch history shift register of up to 64 bits.
 *
 * Bit 0 is the most recent branch; a set bit means taken.
 */
class HistoryRegister
{
  public:
    HistoryRegister() = default;

    explicit HistoryRegister(unsigned length)
        : length_(length),
          mask_(length >= 64 ? ~0ULL : ((1ULL << length) - 1))
    {
        PERCON_ASSERT(length >= 1 && length <= 64,
                      "bad history length %u", length);
    }

    /** Shift in one outcome (true = taken). */
    void
    push(bool taken)
    {
        bits_ = ((bits_ << 1) | (taken ? 1ULL : 0ULL)) & mask_;
    }

    /** Raw bits, recent branch in bit 0. */
    std::uint64_t bits() const { return bits_; }

    /** Restore a checkpoint taken with bits(). */
    void restore(std::uint64_t snapshot) { bits_ = snapshot & mask_; }

    unsigned length() const { return length_; }

    /** Outcome of the i-th most recent branch (i=0 newest). */
    bool
    bit(unsigned i) const
    {
        PERCON_ASSERT(i < length_, "history index %u out of range", i);
        return (bits_ >> i) & 1ULL;
    }

    /** Bipolar view for perceptrons: +1 taken, -1 not-taken. */
    int signedBit(unsigned i) const { return bit(i) ? 1 : -1; }

    void clear() { bits_ = 0; }

  private:
    unsigned length_ = 32;
    std::uint64_t bits_ = 0;
    std::uint64_t mask_ = 0xffffffffULL;
};

} // namespace percon

#endif // PERCON_COMMON_HISTORY_HH
