/**
 * @file
 * POSIX file helpers for the persistent snapshot store: read-only
 * memory mapping, atomic whole-file publication, and the FNV-1a
 * content hashing the store keys on.
 *
 * The store's correctness hinges on two properties these helpers
 * provide:
 *
 *  - MappedFile maps files PROT_READ/MAP_SHARED, so every process on
 *    the machine shares one page-cache copy of each snapshot and
 *    none of them can scribble on it.
 *  - atomicWriteFile publishes via write-to-temp + rename(2), so a
 *    reader can never observe a half-written file and two processes
 *    racing to persist the same content both succeed (last rename
 *    wins; both results are complete, valid files).
 */

#ifndef PERCON_COMMON_FILE_UTIL_HH
#define PERCON_COMMON_FILE_UTIL_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace percon {

/** FNV-1a 64-bit over a byte range. */
std::uint64_t fnv1a64(const void *data, std::size_t bytes);

/** FNV-1a 64-bit over a string's characters. */
std::uint64_t fnv1a64(const std::string &s);

/** @return @p v as 16 lowercase hex digits (for stable filenames). */
std::string hex16(std::uint64_t v);

/**
 * A read-only memory-mapped file. Move-only; unmaps on destruction.
 * All loads through data() are backed by the shared page cache, so
 * any number of MappedFiles (in any number of processes) of the same
 * file cost one physical copy.
 */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only. @return false (with *why set when
     * non-null) on open/stat/mmap failure or an empty file; the
     * object is left unmapped.
     */
    bool open(const std::string &path, std::string *why = nullptr);

    /** Unmap now (also done by the destructor). */
    void close();

    bool mapped() const { return base_ != nullptr; }
    const std::byte *data() const { return base_; }
    std::size_t size() const { return bytes_; }
    const std::string &path() const { return path_; }

  private:
    const std::byte *base_ = nullptr;
    std::size_t bytes_ = 0;
    std::string path_;
};

/** mkdir -p. @return false when a component exists as a non-dir or
 *  creation fails. */
bool ensureDir(const std::string &dir);

/**
 * Atomically publish @p bytes as @p path: write to a unique sibling
 * temp file (same directory, so rename stays within one filesystem),
 * then rename(2) over the destination. Concurrent writers of the
 * same path each write their own temp file; the last rename wins and
 * every reader sees some complete file. @return false on any I/O
 * failure (the temp file is cleaned up best-effort).
 */
bool atomicWriteFile(const std::string &path, const void *data,
                     std::size_t bytes, std::string *why = nullptr);

/** @return true when @p path exists and is a regular file. */
bool fileExists(const std::string &path);

} // namespace percon

#endif // PERCON_COMMON_FILE_UTIL_HH
