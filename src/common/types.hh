/**
 * @file
 * Fundamental scalar types shared by every percon module.
 */

#ifndef PERCON_COMMON_TYPES_HH
#define PERCON_COMMON_TYPES_HH

#include <cstdint>

namespace percon {

/** A (virtual) instruction or data address. */
using Addr = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** A monotonically increasing micro-op sequence number. */
using SeqNum = std::uint64_t;

/** Count of micro-ops, branches, events, ... */
using Count = std::uint64_t;

} // namespace percon

#endif // PERCON_COMMON_TYPES_HH
