#include "perceptron_kernel.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

#if defined(__x86_64__) || defined(_M_X64)
#define PERCON_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace percon::kernel {

// ---------------------------------------------------------------- scalar

std::int32_t
dotProductScalar(const std::int16_t *row, std::uint64_t ghr,
                 unsigned history_bits)
{
    std::int32_t y = row[0];
    for (unsigned i = 0; i < history_bits; ++i) {
        // mask = 0 when bit i is taken, -1 when not; (w ^ mask) - mask
        // is then +w or -w without a branch.
        std::int32_t mask =
            static_cast<std::int32_t>((ghr >> i) & 1ULL) - 1;
        y += (static_cast<std::int32_t>(row[i + 1]) ^ mask) - mask;
    }
    return y;
}

void
trainRowScalar(std::int16_t *row, std::uint64_t ghr,
               unsigned history_bits, std::int32_t dir,
               std::int32_t wmin, std::int32_t wmax)
{
    auto clamped = [wmin, wmax](std::int32_t v) {
        v = v > wmax ? wmax : v;
        return v < wmin ? wmin : v;
    };
    row[0] = static_cast<std::int16_t>(clamped(row[0] + dir));
    for (unsigned i = 0; i < history_bits; ++i) {
        std::int32_t mask =
            static_cast<std::int32_t>((ghr >> i) & 1ULL) - 1;
        std::int32_t delta = (dir ^ mask) - mask;  // dir * (+-1)
        row[i + 1] =
            static_cast<std::int16_t>(clamped(row[i + 1] + delta));
    }
}

// ------------------------------------------------------------------ x86

#ifdef PERCON_KERNEL_X86

namespace {

/** Lane j of a group compares (bits & (1 << j)) against (1 << j). */
inline __m128i
bitSelect8()
{
    return _mm_setr_epi16(1, 2, 4, 8, 16, 32, 64, 128);
}

} // namespace

std::int32_t
dotProductSse2(const std::int16_t *row, std::uint64_t ghr,
               unsigned history_bits)
{
    const __m128i sel = bitSelect8();
    const __m128i one = _mm_set1_epi16(1);
    const __m128i two = _mm_set1_epi16(2);
    __m128i acc = _mm_setzero_si128();
    const unsigned chunks = (history_bits + kRowLanes - 1) / kRowLanes;
    for (unsigned c = 0; c < chunks; ++c) {
        // history_bits <= 63 so the shift count stays below 64.
        const unsigned bits =
            static_cast<unsigned>((ghr >> (c * 16)) & 0xffffu);
        for (unsigned h = 0; h < 2; ++h) {
            const __m128i w = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + 1 + c * 16 +
                                                  h * 8));
            const __m128i b = _mm_set1_epi16(
                static_cast<short>((bits >> (h * 8)) & 0xffu));
            const __m128i taken =
                _mm_cmpeq_epi16(_mm_and_si128(b, sel), sel);
            // taken lanes -1 -> sign +1; others 0 -> sign -1.
            const __m128i sign =
                _mm_sub_epi16(_mm_and_si128(taken, two), one);
            // Padding lanes hold zero weights, so their products
            // vanish regardless of sign: no tail masking needed.
            acc = _mm_add_epi32(acc, _mm_madd_epi16(w, sign));
        }
    }
    acc = _mm_add_epi32(acc,
                        _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
    acc = _mm_add_epi32(acc,
                        _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
    return row[0] + _mm_cvtsi128_si32(acc);
}

void
trainRowSse2(std::int16_t *row, std::uint64_t ghr, unsigned history_bits,
             std::int32_t dir, std::int32_t wmin, std::int32_t wmax)
{
    std::int32_t bias = row[0] + dir;
    bias = bias > wmax ? wmax : bias;
    row[0] = static_cast<std::int16_t>(bias < wmin ? wmin : bias);

    const __m128i sel = bitSelect8();
    const __m128i vmin = _mm_set1_epi16(static_cast<short>(wmin));
    const __m128i vmax = _mm_set1_epi16(static_cast<short>(wmax));
    const __m128i plus = _mm_set1_epi16(static_cast<short>(dir));
    const __m128i minus = _mm_set1_epi16(static_cast<short>(-dir));
    const unsigned chunks = (history_bits + kRowLanes - 1) / kRowLanes;
    for (unsigned c = 0; c < chunks; ++c) {
        const unsigned bits =
            static_cast<unsigned>((ghr >> (c * 16)) & 0xffffu);
        for (unsigned h = 0; h < 2; ++h) {
            const unsigned base = c * 16 + h * 8;
            const unsigned remaining =
                history_bits > base ? history_bits - base : 0;
            if (remaining == 0)
                break;
            const unsigned valid_bits =
                remaining >= 8 ? 0xffu : (1u << remaining) - 1;
            const __m128i valid = _mm_cmpeq_epi16(
                _mm_and_si128(
                    _mm_set1_epi16(static_cast<short>(valid_bits)), sel),
                sel);
            const __m128i b = _mm_set1_epi16(
                static_cast<short>((bits >> (h * 8)) & 0xffu));
            const __m128i taken =
                _mm_cmpeq_epi16(_mm_and_si128(b, sel), sel);
            __m128i delta =
                _mm_or_si128(_mm_and_si128(taken, plus),
                             _mm_andnot_si128(taken, minus));
            // Padding lanes get delta 0 so they stay zero forever.
            delta = _mm_and_si128(delta, valid);
            std::int16_t *p = row + 1 + base;
            const __m128i w =
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
            // Saturating add: wmin-1 at weight width 16 must stick at
            // -32768, exactly like the int32 clamp in the scalar path.
            __m128i next = _mm_adds_epi16(w, delta);
            next = _mm_min_epi16(_mm_max_epi16(next, vmin), vmax);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p), next);
        }
    }
}

__attribute__((target("avx2"))) std::int32_t
dotProductAvx2(const std::int16_t *row, std::uint64_t ghr,
               unsigned history_bits)
{
    const __m256i sel = _mm256_setr_epi16(
        1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
        16384, static_cast<short>(0x8000));
    const __m256i one = _mm256_set1_epi16(1);
    const __m256i two = _mm256_set1_epi16(2);
    __m256i acc = _mm256_setzero_si256();
    const unsigned chunks = (history_bits + kRowLanes - 1) / kRowLanes;
    for (unsigned c = 0; c < chunks; ++c) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + 1 + c * 16));
        const __m256i b = _mm256_set1_epi16(
            static_cast<short>((ghr >> (c * 16)) & 0xffffu));
        const __m256i taken =
            _mm256_cmpeq_epi16(_mm256_and_si256(b, sel), sel);
        const __m256i sign =
            _mm256_sub_epi16(_mm256_and_si256(taken, two), one);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(w, sign));
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return row[0] + _mm_cvtsi128_si32(s);
}

__attribute__((target("avx2"))) void
trainRowAvx2(std::int16_t *row, std::uint64_t ghr, unsigned history_bits,
             std::int32_t dir, std::int32_t wmin, std::int32_t wmax)
{
    std::int32_t bias = row[0] + dir;
    bias = bias > wmax ? wmax : bias;
    row[0] = static_cast<std::int16_t>(bias < wmin ? wmin : bias);

    const __m256i sel = _mm256_setr_epi16(
        1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
        16384, static_cast<short>(0x8000));
    const __m256i vmin = _mm256_set1_epi16(static_cast<short>(wmin));
    const __m256i vmax = _mm256_set1_epi16(static_cast<short>(wmax));
    const __m256i plus = _mm256_set1_epi16(static_cast<short>(dir));
    const __m256i minus = _mm256_set1_epi16(static_cast<short>(-dir));
    const unsigned chunks = (history_bits + kRowLanes - 1) / kRowLanes;
    for (unsigned c = 0; c < chunks; ++c) {
        const unsigned base = c * 16;
        const unsigned remaining = history_bits - base;
        const unsigned valid_bits =
            remaining >= 16 ? 0xffffu : (1u << remaining) - 1;
        const __m256i valid = _mm256_cmpeq_epi16(
            _mm256_and_si256(
                _mm256_set1_epi16(static_cast<short>(valid_bits)), sel),
            sel);
        const __m256i b = _mm256_set1_epi16(
            static_cast<short>((ghr >> base) & 0xffffu));
        const __m256i taken =
            _mm256_cmpeq_epi16(_mm256_and_si256(b, sel), sel);
        __m256i delta = _mm256_or_si256(
            _mm256_and_si256(taken, plus),
            _mm256_andnot_si256(taken, minus));
        delta = _mm256_and_si256(delta, valid);
        std::int16_t *p = row + 1 + base;
        const __m256i w =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        __m256i next = _mm256_adds_epi16(w, delta);
        next = _mm256_min_epi16(_mm256_max_epi16(next, vmin), vmax);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), next);
    }
}

#else // !PERCON_KERNEL_X86

std::int32_t
dotProductSse2(const std::int16_t *, std::uint64_t, unsigned)
{
    panic("SSE2 perceptron kernel unavailable on this target");
}

void
trainRowSse2(std::int16_t *, std::uint64_t, unsigned, std::int32_t,
             std::int32_t, std::int32_t)
{
    panic("SSE2 perceptron kernel unavailable on this target");
}

std::int32_t
dotProductAvx2(const std::int16_t *, std::uint64_t, unsigned)
{
    panic("AVX2 perceptron kernel unavailable on this target");
}

void
trainRowAvx2(std::int16_t *, std::uint64_t, unsigned, std::int32_t,
             std::int32_t, std::int32_t)
{
    panic("AVX2 perceptron kernel unavailable on this target");
}

#endif // PERCON_KERNEL_X86

// ------------------------------------------------------------- dispatch

bool
pathAvailable(Path path)
{
    switch (path) {
      case Path::Scalar:
        return true;
#ifdef PERCON_KERNEL_X86
      case Path::Sse2:
        return true;  // SSE2 is the x86-64 baseline
      case Path::Avx2:
        return __builtin_cpu_supports("avx2");
#else
      case Path::Sse2:
      case Path::Avx2:
        return false;
#endif
    }
    return false;
}

const char *
pathName(Path path)
{
    switch (path) {
      case Path::Scalar:
        return "scalar";
      case Path::Sse2:
        return "sse2";
      case Path::Avx2:
        return "avx2";
    }
    return "?";
}

namespace {

using DotFn = std::int32_t (*)(const std::int16_t *, std::uint64_t,
                               unsigned);
using TrainFn = void (*)(std::int16_t *, std::uint64_t, unsigned,
                         std::int32_t, std::int32_t, std::int32_t);

struct Dispatch
{
    Path path;
    DotFn dot;
    TrainFn train;
};

Dispatch
dispatchFor(Path path)
{
    switch (path) {
      case Path::Sse2:
        return {path, &dotProductSse2, &trainRowSse2};
      case Path::Avx2:
        return {path, &dotProductAvx2, &trainRowAvx2};
      case Path::Scalar:
        break;
    }
    return {Path::Scalar, &dotProductScalar, &trainRowScalar};
}

Path
envPathOverride(Path fallback)
{
    const char *v = std::getenv("PERCON_KERNEL");
    if (!v || !*v || std::strcmp(v, "auto") == 0)
        return fallback;
    for (Path p : {Path::Scalar, Path::Sse2, Path::Avx2}) {
        if (std::strcmp(v, pathName(p)) == 0) {
            if (pathAvailable(p))
                return p;
            warn("PERCON_KERNEL=%s unavailable on this CPU; using %s",
                 v, pathName(fallback));
            return fallback;
        }
    }
    warn("PERCON_KERNEL=%s not recognized "
         "(scalar|sse2|avx2|auto); using %s",
         v, pathName(fallback));
    return fallback;
}

Path
defaultPath()
{
#if defined(PERCON_FORCE_SCALAR)
    Path p = Path::Scalar;
#else
    Path p = pathAvailable(Path::Avx2)   ? Path::Avx2
             : pathAvailable(Path::Sse2) ? Path::Sse2
                                         : Path::Scalar;
#endif
    return envPathOverride(p);
}

Dispatch &
dispatch()
{
    static Dispatch d = dispatchFor(defaultPath());
    return d;
}

} // namespace

Path
activePath()
{
    return dispatch().path;
}

void
forcePath(Path path)
{
    PERCON_ASSERT(pathAvailable(path), "kernel path %s unavailable",
                  pathName(path));
    dispatch() = dispatchFor(path);
}

void
resetPath()
{
    dispatch() = dispatchFor(defaultPath());
}

std::int32_t
dotProduct(const std::int16_t *row, std::uint64_t ghr,
           unsigned history_bits)
{
    return dispatch().dot(row, ghr, history_bits);
}

void
trainRow(std::int16_t *row, std::uint64_t ghr, unsigned history_bits,
         std::int32_t dir, std::int32_t wmin, std::int32_t wmax)
{
    dispatch().train(row, ghr, history_bits, dir, wmin, wmax);
}

} // namespace percon::kernel
