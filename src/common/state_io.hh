/**
 * @file
 * Tiny helpers for the magic-header wire formats used to serialize
 * trained hardware state (predictor tables, estimator weights, BTB
 * contents, warmed-state checkpoints).
 *
 * Every format follows the PerceptronConfidence::saveWeights pattern:
 * an 8-byte magic (6 printable characters incl. a 2-digit version,
 * padded with two NULs), a fixed array of uint64 geometry words that
 * the loader validates against the live object, then raw payload.
 * Loaders return false on any magic/geometry/stream mismatch and are
 * expected to leave the live object unchanged in that case (composite
 * loaders document their partial-restore caveats).
 */

#ifndef PERCON_COMMON_STATE_IO_HH
#define PERCON_COMMON_STATE_IO_HH

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

namespace percon {
namespace stateio {

inline void
writeMagic(std::ostream &os, const char (&magic)[8])
{
    os.write(magic, 8);
}

/** Read and compare an 8-byte magic; false on mismatch or EOF. */
inline bool
readMagic(std::istream &is, const char (&magic)[8])
{
    char got[8] = {};
    is.read(got, 8);
    return static_cast<bool>(is) && std::memcmp(got, magic, 8) == 0;
}

inline void
writeU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

inline bool
readU64(std::istream &is, std::uint64_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

} // namespace stateio
} // namespace percon

#endif // PERCON_COMMON_STATE_IO_HH
