#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace percon {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t x)
{
    return splitmix64(x);
}

namespace {

std::uint64_t
hashStream(std::string_view stream)
{
    // FNV-1a over the stream name, then mixed.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : stream) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mix64(h);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitmix64(sm);
}

Rng::Rng(std::uint64_t seed, std::string_view stream)
    : Rng(seed ^ hashStream(stream))
{
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    PERCON_ASSERT(lo <= hi, "bad range [%lld, %lld]",
                  static_cast<long long>(lo), static_cast<long long>(hi));
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextGaussian(double mean, double stddev)
{
    if (haveSpare_) {
        haveSpare_ = false;
        return mean + stddev * spare_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p >= 1.0)
        return 0;
    PERCON_ASSERT(p > 0.0, "nextGeometric requires p > 0");
    // Callers draw with the same p over and over (e.g. the program
    // model's dependency-distance distribution), so cache log1p(-p).
    // The division below uses the identical divisor value either
    // way, keeping the generated sequence unchanged.
    if (p != geomP_) {
        geomP_ = p;
        geomLogQ_ = std::log1p(-p);
    }
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(std::log(u) / geomLogQ_);
}

} // namespace percon
