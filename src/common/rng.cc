#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace percon {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t x)
{
    return splitmix64(x);
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
hashStream(std::string_view stream)
{
    // FNV-1a over the stream name, then mixed.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : stream) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mix64(h);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitmix64(sm);
}

Rng::Rng(std::uint64_t seed, std::string_view stream)
    : Rng(seed ^ hashStream(stream))
{
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    PERCON_ASSERT(bound != 0, "nextBelow(0)");
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    PERCON_ASSERT(lo <= hi, "bad range [%lld, %lld]",
                  static_cast<long long>(lo), static_cast<long long>(hi));
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    if (haveSpare_) {
        haveSpare_ = false;
        return mean + stddev * spare_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p >= 1.0)
        return 0;
    PERCON_ASSERT(p > 0.0, "nextGeometric requires p > 0");
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

} // namespace percon
