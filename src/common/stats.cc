#include "stats.hh"

#include <cmath>
#include <cstdio>

namespace percon {

void
RunningStat::add(double sample)
{
    ++n_;
    double delta = sample - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (sample - mean_);
    if (n_ == 1) {
        min_ = max_ = sample;
    } else {
        if (sample < min_)
            min_ = sample;
        if (sample > max_)
            max_ = sample;
    }
}

double
RunningStat::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
pct(double num, double den)
{
    return den == 0.0 ? 0.0 : 100.0 * num / den;
}

std::string
fmtFixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

} // namespace percon
