/**
 * @file
 * Status/error reporting in the gem5 tradition.
 *
 * panic() is for internal invariant violations (a percon bug); it
 * aborts. fatal() is for user/configuration errors; it exits with a
 * nonzero status. warn()/inform() never stop the simulation.
 */

#ifndef PERCON_COMMON_LOGGING_HH
#define PERCON_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace percon {

namespace detail {

[[noreturn]] void terminateAbort(const std::string &msg);
[[noreturn]] void terminateExit(const std::string &msg);
void emit(const char *tag, const std::string &msg);

std::string formatv(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort on an internal invariant violation (a simulator bug). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::terminateAbort(detail::formatv(fmt, args...));
}

/** Exit on an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::terminateExit(detail::formatv(fmt, args...));
}

/** Report suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::emit("warn", detail::formatv(fmt, args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::emit("info", detail::formatv(fmt, args...));
}

namespace detail {

[[noreturn]] void panicAssert(const char *cond, const std::string &msg);

} // namespace detail

/** panic() unless the condition holds. */
#define PERCON_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::percon::detail::panicAssert(                                \
                #cond, ::percon::detail::formatv(__VA_ARGS__));           \
        }                                                                 \
    } while (0)

} // namespace percon

#endif // PERCON_COMMON_LOGGING_HH
