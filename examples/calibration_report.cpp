/**
 * @file
 * Calibration report: per-benchmark branch mispredicts per 1000 uops
 * under the baseline bimodal-gshare hybrid, next to the paper's
 * Table 2 reference values. Used to tune the workload profiles and
 * to let users verify their build reproduces the calibration.
 */

#include <cstdio>

#include "bpred/factory.hh"
#include "common/table.hh"
#include "core/front_end_sim.hh"
#include "trace/benchmarks.hh"

using namespace percon;

int
main()
{
    AsciiTable table({"benchmark", "paper misp/Kuop", "model misp/Kuop",
                      "mispredict %"});

    FrontEndConfig cfg;
    cfg.warmupBranches = 150'000;
    cfg.measureBranches = 600'000;

    for (const auto &spec : allBenchmarks()) {
        ProgramModel program(spec.program);
        auto predictor = makePredictor("bimodal-gshare");
        FrontEndResult res =
            runFrontEnd(program, *predictor, nullptr, cfg);
        table.addRow({spec.program.name,
                      fmtFixed(spec.paperMispredictsPerKuop, 1),
                      fmtFixed(res.mispredictsPerKuop(), 1),
                      fmtFixed(100.0 * res.matrix.mispredictRate(), 2)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
