/**
 * @file
 * Custom workload example: builds a synthetic program from scratch
 * (instead of the canned SPECint profiles), captures it to a trace
 * file, replays the trace through the timing model, and compares
 * estimators on it.
 *
 * Shows the three extension points a downstream user touches most:
 * ProgramParams (workload shaping), TraceWriter/TraceReader
 * (capture/replay), and the estimator factory.
 */

#include <cstdio>

#include "bpred/factory.hh"
#include "confidence/factory.hh"
#include "core/front_end_sim.hh"
#include "core/timing_sim.hh"
#include "common/table.hh"
#include "trace/trace_io.hh"
#include "trace/wrongpath.hh"

using namespace percon;

int
main()
{
    // 1. Shape a workload: a loop-heavy program with a sizeable
    //    population of deep-history branches, 1 branch per 6 uops.
    ProgramParams params;
    params.name = "custom";
    params.seed = 2026;
    params.numStaticBranches = 512;
    params.uopsPerBranch = 6.0;
    params.mix = {};
    params.mix.easyBiased = 0.60;
    params.mix.loop = 0.20;
    params.mix.correlated = 0.08;
    params.mix.hardBiased = 0.04;
    params.mix.deepCorrelated = 0.08;
    params.loopTripMin = 4;
    params.loopTripMax = 16;
    params.addr.workingSetKB = 512;
    params.addr.fracStream = 0.6;

    // 2. Capture 300k uops to a trace file.
    const char *path = "/tmp/percon_custom.pctr";
    {
        ProgramModel program(params);
        TraceWriter writer(path);
        for (int i = 0; i < 300'000; ++i)
            writer.write(program.next());
        writer.close();
        std::printf("captured %s (300k uops)\n", path);
    }

    // 3. Replay the trace through the full timing model.
    {
        TraceReader trace(path);
        WrongPathSynthesizer wrong_path(params, params.seed ^ 0xdead);
        auto predictor = makePredictor("bimodal-gshare");
        SpeculationControl none;
        Core core(PipelineConfig::deep40x4(), trace, wrong_path,
                  *predictor, nullptr, none);
        core.warmup(100'000);
        core.run(150'000);
        std::printf("replay: IPC %.2f, %.1f mispredicts/Kuop, "
                    "+%.0f%% uops executed\n\n",
                    core.stats().ipc(),
                    core.stats().mispredictsPerKuop(),
                    core.stats().executionIncreasePct());
    }

    // 4. Compare every estimator on the custom workload.
    AsciiTable table({"estimator", "PVN %", "Spec %"});
    FrontEndConfig cfg;
    cfg.warmupBranches = 40'000;
    cfg.measureBranches = 150'000;
    for (const auto &name : estimatorNames()) {
        ProgramModel program(params);
        auto predictor = makePredictor("bimodal-gshare");
        auto estimator = makeEstimator(name);
        FrontEndResult res =
            runFrontEnd(program, *predictor, estimator.get(), cfg);
        table.addRow({name, fmtFixed(100 * res.matrix.pvn(), 1),
                      fmtFixed(100 * res.matrix.spec(), 1)});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
