/**
 * @file
 * Workload anatomy: dissects one calibrated benchmark by branch
 * behaviour category — dynamic share, misprediction rate under the
 * baseline hybrid, and how the perceptron confidence estimator
 * classifies each category (flag rate, per-category PVN/Spec).
 *
 * This is the diagnostic that justifies the EXPERIMENTS.md claim
 * that the history-attributable misprediction share (deep-pattern
 * triggers, loop exits) is classified with high accuracy while
 * IID-hard branches bound every estimator's aggregate PVN.
 *
 * Usage: workload_anatomy [benchmark]
 */

#include <cstdio>
#include <map>
#include <string>

#include "bpred/factory.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "confidence/perceptron_conf.hh"
#include "trace/benchmarks.hh"

using namespace percon;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "gzip";
    const BenchmarkSpec &spec = benchmarkSpec(bench);

    ProgramModel program(spec.program);
    auto predictor = makePredictor("bimodal-gshare");
    PerceptronConfParams params;
    params.lambda = 0;
    PerceptronConfidence estimator(params);

    struct CategoryStats
    {
        Count n = 0, misp = 0, flagged = 0, flaggedMisp = 0;
    };
    std::map<std::string, CategoryStats> categories;

    std::uint64_t ghr = 0;
    const Count warmup = 150'000, measure = 600'000;
    for (Count i = 0; i < warmup + measure; ++i) {
        unsigned skipped = 0;
        MicroOp br = program.nextBranch(skipped);
        PredMeta meta;
        bool pred = predictor->predict(br.pc, ghr, meta);
        bool misp = pred != br.taken;
        ConfidenceInfo info = estimator.estimate(br.pc, ghr, pred);

        if (i >= warmup) {
            const StaticBranch &sb =
                program.staticBranch(program.indexForPc(br.pc));
            CategoryStats &c = categories[sb.behavior->kind()];
            ++c.n;
            c.misp += misp;
            if (info.low) {
                ++c.flagged;
                c.flaggedMisp += misp;
            }
        }
        predictor->update(br.pc, ghr, br.taken, meta);
        estimator.train(br.pc, ghr, pred, misp, info);
        ghr = (ghr << 1) | (br.taken ? 1u : 0u);
    }

    std::printf("benchmark %s (paper %.1f mispredicts/Kuop), "
                "%llu branches measured\n\n",
                bench.c_str(), spec.paperMispredictsPerKuop,
                static_cast<unsigned long long>(measure));

    AsciiTable table({"category", "share %", "mispredict %",
                      "of all mispredicts %", "flagged %", "PVN %",
                      "Spec %"});
    Count total_misp = 0;
    for (const auto &[kind, c] : categories)
        total_misp += c.misp;
    for (const auto &[kind, c] : categories) {
        table.addRow(
            {kind, fmtFixed(100.0 * c.n / measure, 1),
             fmtFixed(c.n ? 100.0 * c.misp / c.n : 0.0, 1),
             fmtFixed(total_misp ? 100.0 * c.misp / total_misp : 0.0,
                      1),
             fmtFixed(c.n ? 100.0 * c.flagged / c.n : 0.0, 1),
             fmtFixed(c.flagged ? 100.0 * c.flaggedMisp / c.flagged
                                : 0.0,
                      1),
             fmtFixed(c.misp ? 100.0 * c.flaggedMisp / c.misp : 0.0,
                      1)});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\ncategories: biased = strongly biased with bursty "
                "deviations; hard = IID weakly biased (irreducible); "
                "deep = driver-triggered deviations beyond the "
                "predictor's history reach; loop = back-edges;\n"
                "correlated/parity/local/phased = other structured "
                "behaviours (see src/trace/branch_model.hh).\n");
    return 0;
}
