/**
 * @file
 * Branch reversal demo: drives the paper's §5.5 combined scheme —
 * reverse strongly-low-confidence predictions, gate weakly-low ones
 * — and prints how many reversals fired, how many fixed a
 * misprediction, and the net effect against baseline and
 * gating-only runs.
 *
 * Usage: branch_reversal_demo [benchmark] [uops]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hh"
#include "confidence/perceptron_conf.hh"
#include "core/timing_sim.hh"

using namespace percon;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "twolf";
    Count uops = argc > 2 ? std::atoll(argv[2]) : 600'000;

    const BenchmarkSpec &spec = benchmarkSpec(bench);
    PipelineConfig machine = PipelineConfig::deep40x4();
    TimingConfig timing;
    timing.warmupUops = uops / 3;
    timing.measureUops = uops;

    std::printf("benchmark %s, combined reversal + gating "
                "(reverse y > 50, gate y in (-75, 50], PL2)\n\n",
                bench.c_str());

    SpeculationControl none;
    CoreStats base =
        runTiming(spec, machine, "bimodal-gshare", nullptr, none,
                  timing)
            .stats;

    SpeculationControl gate_only;
    gate_only.gateThreshold = 2;
    CoreStats gated =
        runTiming(spec, machine, "bimodal-gshare",
                  [] {
                      PerceptronConfParams p;
                      p.lambda = -75;
                      return std::make_unique<PerceptronConfidence>(p);
                  },
                  gate_only, timing)
            .stats;

    SpeculationControl combined;
    combined.gateThreshold = 2;
    combined.reversalEnabled = true;
    CoreStats both =
        runTiming(spec, machine, "bimodal-gshare",
                  [] {
                      PerceptronConfParams p;
                      p.lambda = -75;
                      p.reverseLambda = 50;
                      return std::make_unique<PerceptronConfidence>(p);
                  },
                  combined, timing)
            .stats;

    AsciiTable table({"policy", "IPC", "mispredicts", "U%", "P%"});
    auto row = [&](const char *name, const CoreStats &s) {
        GatingMetrics m = gatingMetrics(base, s);
        table.addRow({name, fmtFixed(s.ipc(), 2),
                      std::to_string(s.mispredictsFinal),
                      fmtFixed(m.uopReductionPct, 1),
                      fmtFixed(m.perfLossPct, 1)});
    };
    row("baseline", base);
    row("gating only", gated);
    row("gating + reversal", both);
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nreversals: %llu fired, %llu fixed a misprediction "
                "(%0.f%%), %llu broke a correct prediction\n",
                static_cast<unsigned long long>(both.reversals),
                static_cast<unsigned long long>(both.reversalsGood),
                both.reversals ? 100.0 * both.reversalsGood /
                                     both.reversals
                               : 0.0,
                static_cast<unsigned long long>(both.reversalsBad));
    std::printf("original mispredicts %llu -> final %llu\n",
                static_cast<unsigned long long>(
                    both.mispredictsOriginal),
                static_cast<unsigned long long>(both.mispredictsFinal));
    return 0;
}
