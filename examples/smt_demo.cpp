/**
 * @file
 * SMT demo: co-schedules two calibrated workloads on the two-thread
 * core and shows how perceptron gating of the hard thread's
 * low-confidence stretches affects both threads — with shared
 * structures (where wrong-path work steals from the co-runner) and
 * with per-thread partitions.
 *
 * Usage: smt_demo [hard-bench] [clean-bench] [uops-per-thread]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bpred/factory.hh"
#include "common/table.hh"
#include "confidence/perceptron_conf.hh"
#include "trace/benchmarks.hh"
#include "uarch/smt_core.hh"

using namespace percon;

namespace {

struct Run
{
    double ipcA, ipcB, combined;
    Count wrongPathA;
};

Run
once(const std::string &a_name, const std::string &b_name, bool gated,
     bool shared, Count uops)
{
    ProgramModel a(benchmarkSpec(a_name).program);
    ProgramModel b(benchmarkSpec(b_name).program);
    WrongPathSynthesizer wa(benchmarkSpec(a_name).program, 0x11);
    WrongPathSynthesizer wb(benchmarkSpec(b_name).program, 0x22);
    auto predictor = makePredictor("bimodal-gshare");

    std::unique_ptr<ConfidenceEstimator> est;
    SpeculationControl sc;
    if (gated) {
        PerceptronConfParams p;
        p.lambda = 0;
        p.entries = 512;
        est = std::make_unique<PerceptronConfidence>(p);
        sc.gateThreshold = 1;
    }

    SmtCore core(PipelineConfig::base20x4(), {{{&a, &wa}, {&b, &wb}}},
                 *predictor, est.get(), sc, SmtFetchPolicy::Icount,
                 shared);
    core.warmup(uops / 3);
    core.run(uops);

    Run r;
    r.ipcA = static_cast<double>(core.stats(0).retiredUops) /
             static_cast<double>(core.stats(0).cycles);
    r.ipcB = static_cast<double>(core.stats(1).retiredUops) /
             static_cast<double>(core.stats(1).cycles);
    r.combined = core.combinedIpc();
    r.wrongPathA = core.stats(0).wrongPathExecuted;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string hard = argc > 1 ? argv[1] : "mcf";
    std::string clean = argc > 2 ? argv[2] : "vortex";
    Count uops = argc > 3 ? std::atoll(argv[3]) : 300'000;

    std::printf("SMT pair: %s (hard) + %s (clean), %llu uops per "
                "thread, 20-cycle 4-wide machine\n\n",
                hard.c_str(), clean.c_str(),
                static_cast<unsigned long long>(uops));

    AsciiTable table({"structures", "policy", "IPC hard", "IPC clean",
                      "combined", "hard wrong-path uops"});
    for (bool shared : {true, false}) {
        for (bool gated : {false, true}) {
            Run r = once(hard, clean, gated, shared, uops);
            table.addRow({shared ? "shared" : "partitioned",
                          gated ? "perceptron gated" : "ungated",
                          fmtFixed(r.ipcA, 2), fmtFixed(r.ipcB, 2),
                          fmtFixed(r.combined, 2),
                          std::to_string(r.wrongPathA)});
        }
        table.addSeparator();
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nwith shared structures the clean thread gains when "
                "the hard thread is gated; partitions close the theft "
                "channel.\n");
    return 0;
}
