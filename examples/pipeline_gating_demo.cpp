/**
 * @file
 * Pipeline gating demo: runs one benchmark through the full
 * out-of-order core three times — ungated, JRS-gated and
 * perceptron-gated — and reports the wasted-execution and
 * performance trade-off each policy achieves (the paper's Table 4
 * experiment on a single workload).
 *
 * Usage: pipeline_gating_demo [benchmark] [uops]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hh"
#include "confidence/jrs.hh"
#include "confidence/perceptron_conf.hh"
#include "core/timing_sim.hh"

using namespace percon;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "gzip";
    Count uops = argc > 2 ? std::atoll(argv[2]) : 600'000;

    const BenchmarkSpec &spec = benchmarkSpec(bench);
    PipelineConfig machine = PipelineConfig::deep40x4();
    TimingConfig timing;
    timing.warmupUops = uops / 3;
    timing.measureUops = uops;

    std::printf("benchmark %s on the 40-cycle 4-wide machine, "
                "%llu uops\n\n",
                bench.c_str(), static_cast<unsigned long long>(uops));

    // 1. Ungated baseline.
    SpeculationControl none;
    CoreStats base =
        runTiming(spec, machine, "bimodal-gshare", nullptr, none,
                  timing)
            .stats;

    // 2. Enhanced JRS gating (PL2, the paper's tolerable point).
    SpeculationControl jrs_ctrl;
    jrs_ctrl.gateThreshold = 2;
    CoreStats jrs =
        runTiming(spec, machine, "bimodal-gshare",
                  [] {
                      return std::make_unique<JrsEstimator>(
                          8 * 1024, 4, 15, true);
                  },
                  jrs_ctrl, timing)
            .stats;

    // 3. Perceptron gating (PL1, lambda 0).
    SpeculationControl perc_ctrl;
    perc_ctrl.gateThreshold = 1;
    CoreStats perc =
        runTiming(spec, machine, "bimodal-gshare",
                  [] {
                      PerceptronConfParams p;
                      p.lambda = 0;
                      return std::make_unique<PerceptronConfidence>(p);
                  },
                  perc_ctrl, timing)
            .stats;

    AsciiTable table({"policy", "IPC", "wrong-path uops", "gated cyc",
                      "U%", "P%"});
    auto row = [&](const char *name, const CoreStats &s) {
        GatingMetrics m = gatingMetrics(base, s);
        table.addRow({name, fmtFixed(s.ipc(), 2),
                      std::to_string(s.wrongPathExecuted),
                      std::to_string(s.gatedCycles),
                      fmtFixed(m.uopReductionPct, 1),
                      fmtFixed(m.perfLossPct, 1)});
    };
    row("ungated", base);
    row("enhanced JRS (PL2, l=15)", jrs);
    row("perceptron (PL1, l=0)", perc);
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nconfidence quality during the perceptron run: "
                "PVN %.0f%%  Spec %.0f%%\n",
                100 * perc.confidence.pvn(),
                100 * perc.confidence.spec());
    return 0;
}
