/**
 * @file
 * Estimator explorer: sweeps the classification threshold of any
 * estimator on any benchmark and prints the coverage/accuracy curve
 * (the ROC-style view behind the paper's Table 3), so design points
 * can be picked by eye.
 *
 * Usage: estimator_explorer [benchmark] [estimator]
 *   estimator: jrs | perceptron   (threshold families differ)
 */

#include <cstdio>
#include <cstring>

#include "bpred/factory.hh"
#include "common/table.hh"
#include "confidence/jrs.hh"
#include "confidence/perceptron_conf.hh"
#include "core/front_end_sim.hh"
#include "trace/benchmarks.hh"

using namespace percon;

namespace {

ConfidenceMatrix
runOnce(const std::string &bench,
        std::unique_ptr<ConfidenceEstimator> est)
{
    ProgramModel program(benchmarkSpec(bench).program);
    auto predictor = makePredictor("bimodal-gshare");
    FrontEndConfig cfg;
    cfg.warmupBranches = 80'000;
    cfg.measureBranches = 300'000;
    return runFrontEnd(program, *predictor, est.get(), cfg).matrix;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "gcc";
    std::string family = argc > 2 ? argv[2] : "perceptron";

    std::printf("coverage/accuracy sweep: %s estimator on %s\n\n",
                family.c_str(), bench.c_str());

    AsciiTable table({"threshold", "PVN %", "Spec %", "flagged %"});

    if (family == "jrs") {
        for (unsigned lambda = 1; lambda <= 15; lambda += 2) {
            ConfidenceMatrix m = runOnce(
                bench, std::make_unique<JrsEstimator>(8 * 1024, 4,
                                                      lambda, true));
            table.addRow(
                {std::to_string(lambda), fmtFixed(100 * m.pvn(), 1),
                 fmtFixed(100 * m.spec(), 1),
                 fmtFixed(100.0 * m.lowConfidence() / m.total(), 1)});
        }
    } else if (family == "perceptron") {
        for (int lambda : {100, 50, 25, 0, -25, -50, -75, -100, -150}) {
            PerceptronConfParams p;
            p.lambda = lambda;
            ConfidenceMatrix m = runOnce(
                bench, std::make_unique<PerceptronConfidence>(p));
            table.addRow(
                {std::to_string(lambda), fmtFixed(100 * m.pvn(), 1),
                 fmtFixed(100 * m.spec(), 1),
                 fmtFixed(100.0 * m.lowConfidence() / m.total(), 1)});
        }
    } else {
        std::fprintf(stderr, "unknown family '%s' (jrs|perceptron)\n",
                     family.c_str());
        return 1;
    }

    std::fputs(table.render().c_str(), stdout);
    std::printf("\npick gating thresholds where PVN stays high; pick "
                "reversal thresholds where PVN crosses 50%%.\n");
    return 0;
}
