/**
 * @file
 * Quickstart: embed the perceptron confidence estimator behind any
 * branch predictor with the two-call ConfidenceSystem API, then
 * print its classification quality on a synthetic workload.
 */

#include <cstdio>

#include "bpred/factory.hh"
#include "core/confidence_system.hh"
#include "trace/benchmarks.hh"

using namespace percon;

int
main()
{
    // 1. A workload: the calibrated "gcc" SPECint 2000 profile.
    ProgramModel program(benchmarkSpec("gcc").program);

    // 2. A branch predictor: the paper's bimodal-gshare hybrid.
    auto predictor = makePredictor("bimodal-gshare");

    // 3. The paper's contribution: a perceptron confidence
    //    estimator with dual thresholds (reverse above 0, gate in
    //    (-75, 0], high confidence below -75).
    ConfidenceSystem confidence;

    std::uint64_t ghr = 0;
    Count reversals = 0, gates = 0;

    for (int i = 0; i < 2'000'000; ++i) {
        unsigned skipped = 0;
        MicroOp br = program.nextBranch(skipped);

        // Front end: predict, then consult the estimator.
        PredMeta meta;
        bool pred = predictor->predict(br.pc, ghr, meta);
        BranchDecision d = confidence.onPredict(br.pc, ghr, pred);
        if (d.reverse)
            ++reversals;
        if (d.gate)
            ++gates;

        // Back end: train both with the architectural outcome.
        bool misp = pred != br.taken;
        predictor->update(br.pc, ghr, br.taken, meta);
        confidence.onResolve(br.pc, ghr, pred, misp, d);

        ghr = (ghr << 1) | (br.taken ? 1u : 0u);
    }

    const ConfidenceMatrix &m = confidence.matrix();
    std::printf("branches        : %llu\n",
                static_cast<unsigned long long>(m.total()));
    std::printf("mispredict rate : %.2f%%\n",
                100.0 * m.mispredictRate());
    std::printf("PVN  (accuracy) : %.1f%%\n", 100.0 * m.pvn());
    std::printf("Spec (coverage) : %.1f%%\n", 100.0 * m.spec());
    std::printf("reversals       : %llu\n",
                static_cast<unsigned long long>(reversals));
    std::printf("gate marks      : %llu\n",
                static_cast<unsigned long long>(gates));
    std::printf("estimator size  : %zu bytes\n",
                confidence.estimator().storageBits() / 8);
    return 0;
}
