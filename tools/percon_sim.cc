/**
 * @file
 * percon_sim: the general simulator driver.
 *
 * Runs any calibrated benchmark (or a trace file) through the timing
 * model with any predictor, estimator and speculation-control policy,
 * and prints the full statistics block — the one-stop tool for
 * exploring design points outside the canned benches.
 *
 * Examples:
 *   percon_sim --bench mcf --machine deep40x4 \
 *              --estimator perceptron-cic --gate 1 --lambda 0
 *   percon_sim --bench gzip --estimator perceptron-cic \
 *              --gate 2 --lambda -75 --reverse 50 --energy
 *   percon_sim --trace my.pctr --predictor yags --uops 2000000
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bpred/factory.hh"
#include "confidence/factory.hh"
#include "confidence/perceptron_conf.hh"
#include "core/timing_sim.hh"
#include "trace/trace_io.hh"
#include "uarch/smt_core.hh"
#include "uarch/energy.hh"

using namespace percon;

namespace {

struct Options
{
    std::string bench = "gcc";
    std::string trace;
    std::string predictor = "bimodal-gshare";
    std::string estimator;
    std::string machine = "deep40x4";
    Count uops = 1'000'000;
    unsigned gate = 0;
    unsigned latency = 0;
    unsigned throttle = 0;
    int lambda = 0;
    int reverseLambda = 0;
    bool reverse = false;
    bool oracle = false;
    bool energy = false;
    std::string smtWith;  ///< co-runner benchmark; empty = single-thread
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: percon_sim [options]\n"
        "  --bench NAME        calibrated workload (default gcc)\n"
        "  --trace FILE        replay a .pctr trace instead\n"
        "  --predictor NAME    branch predictor (default "
        "bimodal-gshare)\n"
        "  --estimator NAME    confidence estimator (default none);\n"
        "                      'perceptron-cic' honours --lambda and\n"
        "                      --reverse\n"
        "  --machine M         deep40x4 | base20x4 | wide20x8\n"
        "  --uops N            measured uops (default 1M)\n"
        "  --gate N            gate threshold PLn (default off)\n"
        "  --lambda L          perceptron gating threshold\n"
        "  --reverse L         enable reversal above output L\n"
        "  --latency N         estimator latency in cycles\n"
        "  --throttle W        throttle fetch to width W when gated\n"
        "  --oracle            oracle gating bound (no estimator)\n"
        "  --energy            print the energy report too\n"
        "  --smt BENCH         co-run BENCH on a 2nd SMT thread\n");
    std::fprintf(stderr, "\npredictors:");
    for (const auto &n : predictorNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\nestimators:");
    for (const auto &n : estimatorNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\nbenchmarks:");
    for (const auto &n : benchmarkNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(1);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--bench")
            o.bench = value();
        else if (arg == "--trace")
            o.trace = value();
        else if (arg == "--predictor")
            o.predictor = value();
        else if (arg == "--estimator")
            o.estimator = value();
        else if (arg == "--machine")
            o.machine = value();
        else if (arg == "--uops")
            o.uops = std::strtoull(value(), nullptr, 10);
        else if (arg == "--gate")
            o.gate = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--lambda")
            o.lambda = std::atoi(value());
        else if (arg == "--reverse") {
            o.reverse = true;
            o.reverseLambda = std::atoi(value());
        } else if (arg == "--latency")
            o.latency = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--throttle")
            o.throttle = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--oracle")
            o.oracle = true;
        else if (arg == "--smt")
            o.smtWith = value();
        else if (arg == "--energy")
            o.energy = true;
        else
            usage();
    }
    return o;
}

PipelineConfig
machineFor(const std::string &name)
{
    if (name == "deep40x4")
        return PipelineConfig::deep40x4();
    if (name == "base20x4")
        return PipelineConfig::base20x4();
    if (name == "wide20x8")
        return PipelineConfig::wide20x8();
    fatal("unknown machine '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    PipelineConfig machine = machineFor(o.machine);

    SpeculationControl sc;
    sc.gateThreshold = o.gate;
    sc.reversalEnabled = o.reverse;
    sc.confidenceLatency = o.latency;
    sc.oracleGating = o.oracle;
    sc.throttleWidth = o.throttle;

    std::unique_ptr<ConfidenceEstimator> estimator;
    if (!o.estimator.empty()) {
        if (o.estimator == "perceptron-cic") {
            PerceptronConfParams p;
            p.lambda = o.lambda;
            if (o.reverse)
                p.reverseLambda = o.reverseLambda;
            estimator = std::make_unique<PerceptronConfidence>(p);
        } else {
            estimator = makeEstimator(o.estimator);
        }
    }

    const BenchmarkSpec &spec = benchmarkSpec(o.bench);
    auto predictor = makePredictor(o.predictor);
    WrongPathSynthesizer wrong_path(spec.program,
                                    spec.program.seed ^ 0xdead);

    if (!o.smtWith.empty()) {
        const BenchmarkSpec &spec_b = benchmarkSpec(o.smtWith);
        ProgramModel prog_a(spec.program);
        ProgramModel prog_b(spec_b.program);
        WrongPathSynthesizer wp_b(spec_b.program,
                                  spec_b.program.seed ^ 0xbeef);
        SmtCore core(machine, {{{&prog_a, &wrong_path},
                                {&prog_b, &wp_b}}},
                     *predictor, estimator.get(), sc);
        core.warmup(o.uops / 3);
        core.run(o.uops);
        for (unsigned t = 0; t < SmtCore::kThreads; ++t) {
            const CoreStats &ts = core.stats(t);
            const char *name =
                t == 0 ? o.bench.c_str() : o.smtWith.c_str();
            std::printf("thread %u (%s): IPC %.3f  retired %llu  "
                        "wrong-path %llu  misp/Kuop %.1f\n",
                        t, name,
                        static_cast<double>(ts.retiredUops) /
                            static_cast<double>(ts.cycles),
                        static_cast<unsigned long long>(
                            ts.retiredUops),
                        static_cast<unsigned long long>(
                            ts.wrongPathExecuted),
                        ts.mispredictsPerKuop());
        }
        std::printf("combined IPC        : %.3f\n", core.combinedIpc());
        return 0;
    }

    std::unique_ptr<WorkloadSource> source;
    if (!o.trace.empty())
        source = std::make_unique<TraceReader>(o.trace);
    else
        source = std::make_unique<ProgramModel>(spec.program);

    Core core(machine, *source, wrong_path, *predictor,
              estimator.get(), sc);
    core.warmup(o.uops / 3);
    core.run(o.uops);

    const CoreStats &s = core.stats();
    std::printf("workload            : %s\n",
                o.trace.empty() ? o.bench.c_str() : o.trace.c_str());
    std::printf("machine             : %s (width %u, %u+%u stages)\n",
                o.machine.c_str(), machine.width,
                machine.frontEndDepth, machine.backEndDepth);
    std::printf("predictor           : %s\n", o.predictor.c_str());
    std::printf("estimator           : %s\n",
                estimator ? estimator->name()
                          : (o.oracle ? "oracle" : "none"));
    std::printf("cycles              : %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("IPC                 : %.3f\n", s.ipc());
    std::printf("retired uops        : %llu\n",
                static_cast<unsigned long long>(s.retiredUops));
    std::printf("executed uops       : %llu (+%.1f%% over retired)\n",
                static_cast<unsigned long long>(s.executedUops),
                s.executionIncreasePct());
    std::printf("wrong-path executed : %llu\n",
                static_cast<unsigned long long>(s.wrongPathExecuted));
    std::printf("branches            : %llu retired, %.2f%% "
                "mispredicted (%.1f/Kuop)\n",
                static_cast<unsigned long long>(s.retiredBranches),
                100.0 * s.mispredictRate(), s.mispredictsPerKuop());
    if (s.reversals) {
        std::printf("reversals           : %llu (%.0f%% fixed a "
                    "mispredict)\n",
                    static_cast<unsigned long long>(s.reversals),
                    100.0 * static_cast<double>(s.reversalsGood) /
                        static_cast<double>(s.reversals));
    }
    if (sc.gateThreshold > 0) {
        std::printf("gated cycles        : %llu (%.1f%% of run)\n",
                    static_cast<unsigned long long>(s.gatedCycles),
                    100.0 * static_cast<double>(s.gatedCycles) /
                        static_cast<double>(s.cycles));
    }
    if (estimator) {
        std::printf("confidence          : PVN %.1f%%  Spec %.1f%%\n",
                    100.0 * s.confidence.pvn(),
                    100.0 * s.confidence.spec());
    }
    std::printf("trace cache         : %llu misses, %llu stall "
                "cycles\n",
                static_cast<unsigned long long>(s.traceCacheMisses),
                static_cast<unsigned long long>(
                    s.traceCacheStallCycles));
    std::printf("BTB                 : %llu misses\n",
                static_cast<unsigned long long>(s.btbMisses));

    if (o.energy) {
        EnergyReport e = computeEnergy(s);
        std::printf("energy (proxy)      : total %.0f  EPI %.3f  "
                    "EDP %.3g\n",
                    e.total, e.epi, e.edp);
    }
    return 0;
}
