/**
 * @file
 * percon_sim: the general simulator driver.
 *
 * Runs any calibrated benchmark (or a trace file) through the timing
 * model with any predictor, estimator and speculation-control policy,
 * and prints the full statistics block — the one-stop tool for
 * exploring design points outside the canned benches.
 *
 * Examples:
 *   percon_sim --bench mcf --machine deep40x4 \
 *              --estimator perceptron-cic --gate 1 --lambda 0
 *   percon_sim --bench gzip --estimator perceptron-cic \
 *              --gate 2 --lambda -75 --reverse 50 --energy
 *   percon_sim --trace my.pctr --predictor yags --uops 2000000
 *
 * Sweep mode: repeatable `--sweep key=a,b,...` flags build the cross
 * product of design points, executed `--jobs N` at a time through
 * SweepRunner (bit-identical results at any job count):
 *   percon_sim --sweep bench=gcc,mcf,twolf \
 *              --sweep lambda=-50,-25,0,25 \
 *              --estimator perceptron-cic --gate 1 --jobs 8 \
 *              --jsonl results.jsonl
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bpred/factory.hh"
#include "common/table.hh"
#include "confidence/factory.hh"
#include "confidence/perceptron_conf.hh"
#include "core/timing_sim.hh"
#include "core/warm_checkpoint.hh"
#include "driver/checkpoint_cache.hh"
#include "driver/jsonl.hh"
#include "driver/prediction_cache.hh"
#include "driver/prediction_store.hh"
#include "driver/snapshot_cache.hh"
#include "driver/snapshot_store.hh"
#include "driver/sweep_runner.hh"
#include "driver/worker_pool.hh"
#include "trace/trace_io.hh"
#include "trace/trace_snapshot.hh"
#include "uarch/smt_core.hh"
#include "uarch/energy.hh"
#include "verify/differential.hh"
#include "verify/invariant_auditor.hh"

using namespace percon;

namespace {

struct Options
{
    std::string bench = "gcc";
    std::string trace;
    std::string predictor = "bimodal-gshare";
    std::string estimator;
    std::string machine = "deep40x4";
    Count uops = 1'000'000;
    Count warmup = 0;  // 0 = proportional default (uops / 3)
    unsigned gate = 0;
    unsigned latency = 0;
    unsigned throttle = 0;
    int lambda = 0;
    int reverseLambda = 0;
    bool reverse = false;
    bool oracle = false;
    bool energy = false;
    bool audit = false;       ///< attach the invariant auditor
    bool oracleDiff = false;  ///< differential run vs. OracleCore
    /** Replay the correct path from an immutable snapshot (see
     *  trace/trace_snapshot.hh); off = legacy live generation. */
    bool traceSnapshot = traceSnapshotDefault();

    /** Prediction-stream snapshot tier (core/prediction_key.hh):
     *  record predictor/BTB outcomes once per key, replay them on
     *  every later run of the same key. */
    bool predSnapshot = predSnapshotDefault();
    /** Persistent prediction-stream store (--pred-snapshot-store;
     *  overrides PERCON_PRED_SNAPSHOT_STORE). Empty = env var only. */
    std::string predSnapshotStore;

    /** Sampled simulation (core/timing_sim.hh): functional warm +
     *  alternating detailed windows instead of end-to-end detailed
     *  simulation. */
    bool sampled = false;
    Count sampleWarm = 80'000;
    Count sampleMeasure = 20'000;
    /** Share warmed state through the process-wide checkpoint cache
     *  (sampled sweeps only). */
    bool checkpoint = warmCheckpointDefault();
    std::string smtWith;  ///< co-runner benchmark; empty = single-thread

    unsigned jobs = 1;    ///< sweep-mode worker threads
    std::string jsonl;    ///< sweep-mode JSONL output path
    /** Cross-product sweep axes: (key, values). */
    std::vector<std::pair<std::string, std::vector<std::string>>> sweeps;

    /** Persistent snapshot store directory (--snapshot-store;
     *  overrides PERCON_SNAPSHOT_STORE). Empty = env var only. */
    std::string snapshotStore;
    /** Sweep worker PROCESSES (--workers; 0 = in-process). */
    unsigned workers = 0;
    /** Deterministic sweep partition --shard I/N. */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: percon_sim [options]\n"
        "  --bench NAME        calibrated workload (default gcc)\n"
        "  --trace FILE        replay a .pctr trace instead\n"
        "  --predictor NAME    branch predictor (default "
        "bimodal-gshare)\n"
        "  --estimator NAME    confidence estimator (default none);\n"
        "                      'perceptron-cic' honours --lambda and\n"
        "                      --reverse\n"
        "  --machine M         deep40x4 | base20x4 | wide20x8\n"
        "  --uops N            measured uops (default 1M)\n"
        "  --warmup N          warmup uops (default uops/3);\n"
        "                      warmup-heavy shapes are where the\n"
        "                      snapshot store pays off\n"
        "  --gate N            gate threshold PLn (default off)\n"
        "  --lambda L          perceptron gating threshold\n"
        "  --reverse L         enable reversal above output L\n"
        "  --latency N         estimator latency in cycles\n"
        "  --throttle W        throttle fetch to width W when gated\n"
        "  --oracle            oracle gating bound (no estimator)\n"
        "  --audit             run the invariant auditor alongside\n"
        "                      (single runs print its verdict; sweep\n"
        "                      JSONL rows carry an audit field)\n"
        "  --oracle-diff       differential check: run the naive\n"
        "                      reference core on the same inputs and\n"
        "                      diff every statistic (exit 1 on any\n"
        "                      divergence or audit violation)\n"
        "  --energy            print the energy report too\n"
        "  --trace-snapshot on|off\n"
        "                      replay the correct path from a shared\n"
        "                      immutable snapshot (default on; also\n"
        "                      PERCON_TRACE_SNAPSHOT). Bit-identical\n"
        "                      stats either way; on is faster and\n"
        "                      lets sweep points share one trace\n"
        "  --sim-mode exact|sampled\n"
        "                      exact = detailed simulation end to end\n"
        "                      (default); sampled = functional-warm\n"
        "                      fast-forward + detailed measurement\n"
        "                      windows with per-window error bars\n"
        "  --sample-warm N     sampled: functionally-warmed uops\n"
        "                      between windows (default 80000)\n"
        "  --sample-measure N  sampled: detailed uops per window\n"
        "                      (default 20000)\n"
        "  --checkpoint on|off sampled: share warmed state between\n"
        "                      sweep points through the checkpoint\n"
        "                      cache (default off; also\n"
        "                      PERCON_WARM_CHECKPOINT)\n"
        "  --smt BENCH         co-run BENCH on a 2nd SMT thread\n"
        "  --sweep K=A,B,...   sweep option K over the listed values\n"
        "                      (repeatable; cross product; keys:\n"
        "                      bench predictor estimator machine\n"
        "                      lambda gate latency throttle uops)\n"
        "  --jobs N            sweep worker threads (default 1)\n"
        "  --workers K         sweep: fork K worker processes, each\n"
        "                      running --jobs threads; merged rows\n"
        "                      are byte-identical to the in-process\n"
        "                      runner (default 0 = in-process)\n"
        "  --shard I/N         sweep: run only shard I of the\n"
        "                      deterministic N-way partition of the\n"
        "                      design points (I in 0..N-1); rows\n"
        "                      carry a shard field\n"
        "  --snapshot-store DIR\n"
        "                      persist built trace snapshots to DIR\n"
        "                      and mmap them back read-only in later\n"
        "                      runs/processes (also\n"
        "                      PERCON_SNAPSHOT_STORE)\n"
        "  --pred-snapshot on|off\n"
        "                      record the branch-predictor/BTB\n"
        "                      outcome stream once per prediction key\n"
        "                      and replay it on every later run of\n"
        "                      the same key, skipping live predictor\n"
        "                      work (default off; also\n"
        "                      PERCON_PRED_SNAPSHOT). Bit-identical\n"
        "                      stats either way\n"
        "  --pred-snapshot-store DIR\n"
        "                      persist recorded prediction streams to\n"
        "                      DIR and mmap them back in later\n"
        "                      runs/processes (also\n"
        "                      PERCON_PRED_SNAPSHOT_STORE)\n"
        "  --jsonl FILE        append per-run JSON lines to FILE\n");
    std::fprintf(stderr, "\npredictors:");
    for (const auto &n : predictorNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, " perceptron-hN");
    std::fprintf(stderr, "\nestimators:");
    for (const auto &n : estimatorNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\nbenchmarks:");
    for (const auto &n : benchmarkNames())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(1);
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--bench")
            o.bench = value();
        else if (arg == "--trace")
            o.trace = value();
        else if (arg == "--predictor")
            o.predictor = value();
        else if (arg == "--estimator")
            o.estimator = value();
        else if (arg == "--machine")
            o.machine = value();
        else if (arg == "--uops")
            o.uops = std::strtoull(value(), nullptr, 10);
        else if (arg == "--warmup")
            o.warmup = std::strtoull(value(), nullptr, 10);
        else if (arg == "--gate")
            o.gate = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--lambda")
            o.lambda = std::atoi(value());
        else if (arg == "--reverse") {
            o.reverse = true;
            o.reverseLambda = std::atoi(value());
        } else if (arg == "--latency")
            o.latency = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--throttle")
            o.throttle = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--oracle")
            o.oracle = true;
        else if (arg == "--audit")
            o.audit = true;
        else if (arg == "--oracle-diff")
            o.oracleDiff = true;
        else if (arg == "--trace-snapshot") {
            std::string v = value();
            if (v == "on")
                o.traceSnapshot = true;
            else if (v == "off")
                o.traceSnapshot = false;
            else
                usage();
        }
        else if (arg == "--sim-mode") {
            std::string v = value();
            if (v == "exact")
                o.sampled = false;
            else if (v == "sampled")
                o.sampled = true;
            else
                usage();
        } else if (arg == "--sample-warm")
            o.sampleWarm = std::strtoull(value(), nullptr, 10);
        else if (arg == "--sample-measure")
            o.sampleMeasure = std::strtoull(value(), nullptr, 10);
        else if (arg == "--checkpoint") {
            std::string v = value();
            if (v == "on")
                o.checkpoint = true;
            else if (v == "off")
                o.checkpoint = false;
            else
                usage();
        }
        else if (arg == "--smt")
            o.smtWith = value();
        else if (arg == "--energy")
            o.energy = true;
        else if (arg == "--jobs")
            o.jobs = static_cast<unsigned>(
                std::max(1, std::atoi(value())));
        else if (arg == "--workers")
            o.workers = static_cast<unsigned>(
                std::max(0, std::atoi(value())));
        else if (arg == "--shard") {
            std::string v = value();
            std::size_t slash = v.find('/');
            if (slash == std::string::npos || slash == 0 ||
                slash + 1 >= v.size())
                usage();
            o.shardIndex = static_cast<unsigned>(
                std::atoi(v.substr(0, slash).c_str()));
            o.shardCount = static_cast<unsigned>(
                std::atoi(v.substr(slash + 1).c_str()));
            if (o.shardCount == 0 || o.shardIndex >= o.shardCount)
                usage();
        } else if (arg == "--snapshot-store")
            o.snapshotStore = value();
        else if (arg == "--pred-snapshot") {
            std::string v = value();
            if (v == "on")
                o.predSnapshot = true;
            else if (v == "off")
                o.predSnapshot = false;
            else
                usage();
        } else if (arg == "--pred-snapshot-store")
            o.predSnapshotStore = value();
        else if (arg == "--jsonl")
            o.jsonl = value();
        else if (arg == "--sweep") {
            std::string spec = value();
            std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= spec.size())
                usage();
            std::vector<std::string> values;
            std::string rest = spec.substr(eq + 1);
            std::size_t pos = 0;
            while (pos <= rest.size()) {
                std::size_t comma = rest.find(',', pos);
                if (comma == std::string::npos)
                    comma = rest.size();
                if (comma > pos)
                    values.push_back(rest.substr(pos, comma - pos));
                pos = comma + 1;
            }
            if (values.empty())
                usage();
            o.sweeps.emplace_back(spec.substr(0, eq),
                                  std::move(values));
        } else
            usage();
    }
    return o;
}

PipelineConfig
machineFor(const std::string &name)
{
    if (name == "deep40x4")
        return PipelineConfig::deep40x4();
    if (name == "base20x4")
        return PipelineConfig::base20x4();
    if (name == "wide20x8")
        return PipelineConfig::wide20x8();
    fatal("unknown machine '%s'", name.c_str());
}

EstimatorFactory
estimatorFactory(const Options &o)
{
    if (o.estimator.empty())
        return nullptr;
    Options copy = o;
    return [copy] {
        if (copy.estimator == "perceptron-cic") {
            PerceptronConfParams p;
            p.lambda = copy.lambda;
            if (copy.reverse)
                p.reverseLambda = copy.reverseLambda;
            return std::unique_ptr<ConfidenceEstimator>(
                std::make_unique<PerceptronConfidence>(p));
        }
        return makeEstimator(copy.estimator);
    };
}

/** Apply one swept (key, value) pair to a design point's options. */
void
applyOverride(Options &o, const std::string &key,
              const std::string &value)
{
    if (key == "bench")
        o.bench = value;
    else if (key == "predictor")
        o.predictor = value;
    else if (key == "estimator")
        o.estimator = value;
    else if (key == "machine")
        o.machine = value;
    else if (key == "lambda")
        o.lambda = std::atoi(value.c_str());
    else if (key == "gate")
        o.gate = static_cast<unsigned>(std::atoi(value.c_str()));
    else if (key == "latency")
        o.latency = static_cast<unsigned>(std::atoi(value.c_str()));
    else if (key == "throttle")
        o.throttle = static_cast<unsigned>(std::atoi(value.c_str()));
    else if (key == "uops")
        o.uops = std::strtoull(value.c_str(), nullptr, 10);
    else
        fatal("cannot sweep '%s' (see --help for sweepable keys)",
              key.c_str());
}

int
runSweep(const Options &base)
{
    if (!base.trace.empty() || !base.smtWith.empty())
        fatal("--sweep supports calibrated benchmarks only "
              "(not --trace/--smt)");

    // Odometer over the sweep axes: one design point per combo.
    std::vector<std::size_t> idx(base.sweeps.size(), 0);
    std::vector<SweepPoint> points;
    std::vector<std::vector<std::string>> combo_values;
    for (;;) {
        Options o = base;
        std::vector<std::string> values;
        for (std::size_t a = 0; a < base.sweeps.size(); ++a) {
            const auto &axis = base.sweeps[a];
            applyOverride(o, axis.first, axis.second[idx[a]]);
            values.push_back(axis.second[idx[a]]);
        }
        combo_values.push_back(values);

        RunKey key;
        key.benchmark = o.bench;
        key.machine = o.machine;
        key.predictor = o.predictor;
        key.estimator = o.estimator;
        if (!o.estimator.empty()) {
            key.set("lambda", std::to_string(o.lambda));
            if (o.reverse)
                key.set("reverse", std::to_string(o.reverseLambda));
        }
        key.set("gate", std::to_string(o.gate));
        if (o.latency)
            key.set("latency", std::to_string(o.latency));
        if (o.throttle)
            key.set("throttle", std::to_string(o.throttle));

        SpeculationControl sc;
        sc.gateThreshold = o.gate;
        sc.reversalEnabled = o.reverse;
        sc.confidenceLatency = o.latency;
        sc.oracleGating = o.oracle;
        sc.throttleWidth = o.throttle;

        TimingConfig t;
        t.measureUops = o.uops;
        t.warmupUops = o.warmup ? o.warmup : o.uops / 3;
        t.audit = o.audit;
        t.traceSnapshot = o.traceSnapshot;
        t.predSnapshot = o.predSnapshot;
        if (o.sampled) {
            t.simMode = SimMode::Sampled;
            t.sampleWarmUops = o.sampleWarm;
            t.sampleMeasureUops = o.sampleMeasure;
            t.checkpointWarm = o.checkpoint;
        }
        points.push_back(timingPoint(std::move(key),
                                     machineFor(o.machine),
                                     estimatorFactory(o), sc, t));

        std::size_t a = base.sweeps.size();
        while (a > 0) {
            --a;
            if (++idx[a] < base.sweeps[a].second.size())
                break;
            idx[a] = 0;
            if (a == 0)
                goto done;
        }
        if (base.sweeps.empty())
            break;
    }
done:;

    // Deterministic N-way partition: keep only this process's shard.
    // shardOf hashes the run key, so every invocation given the same
    // sweep spec agrees on the split without coordination. Labels are
    // derived over the FULL sweep first and baked into the points:
    // within a shard, a workload's locally-first point may well be
    // "hit" in the full input order, and rows must match the
    // unsharded run's byte for byte.
    if (base.shardCount > 1) {
        SweepLabels full = deriveSweepLabels(points);
        for (std::size_t i = 0; i < points.size(); ++i) {
            points[i].snapshotLabel = full.snapshot[i];
            points[i].checkpointLabel = full.checkpoint[i];
            points[i].storeLabel = full.store[i];
            points[i].predLabel = full.pred[i];
        }
        std::vector<SweepPoint> kept;
        std::vector<std::vector<std::string>> kept_values;
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (shardOf(points[i].key, base.shardCount) !=
                base.shardIndex)
                continue;
            kept.push_back(std::move(points[i]));
            kept_values.push_back(std::move(combo_values[i]));
        }
        points = std::move(kept);
        combo_values = std::move(kept_values);
    }

    std::printf("sweep: %zu design points, %u jobs%s%s\n\n",
                points.size(), base.jobs,
                base.sampled ? " (sampled)" : "",
                base.workers > 0 ? ", forked workers" : "");
    if (base.shardCount > 1)
        std::printf("shard: %u/%u\n\n", base.shardIndex,
                    base.shardCount);
    SnapshotCache::Counters snap_before =
        SnapshotCache::global().counters();
    CheckpointCache::Counters ckpt_before =
        CheckpointCache::global().counters();
    PredictionCache::Counters pred_before =
        PredictionCache::global().counters();

    std::vector<RunRecord> recs;
    WorkerSums worker_sums;
    if (base.workers > 0) {
        WorkerPoolResult wr =
            runSweepWorkers(points, base.workers, base.jobs);
        recs = std::move(wr.records);
        worker_sums = wr.sums;
        std::printf("workers: %u processes\n\n", wr.workersUsed);
    } else {
        SweepRunner runner(base.jobs);
        recs = runner.run(points);
    }
    for (RunRecord &rec : recs)
        rec.shard = base.shardCount > 1 ? base.shardIndex : 0;

    if (base.traceSnapshot && base.workers > 0) {
        // The parent ran nothing itself; report the workers'
        // aggregated cache/store activity instead. (The per-row
        // hit/miss labels were derived by the parent over the full
        // input order, so they do not sum to these counters — each
        // worker resolves its own share of the workloads.)
        const auto &c = worker_sums.snapshot;
        std::printf("trace snapshots (workers): %llu built "
                    "(%.1f Muops, %.1f MiB, %.2f s), %llu memo "
                    "hits, %llu store maps\n\n",
                    static_cast<unsigned long long>(
                        c.misses - c.storeHits),
                    static_cast<double>(c.builtUops) / 1e6,
                    static_cast<double>(c.builtBytes) /
                        (1024.0 * 1024.0),
                    c.buildSeconds,
                    static_cast<unsigned long long>(c.hits),
                    static_cast<unsigned long long>(c.storeHits));
        const auto &st = worker_sums.store;
        if (st.mapHits + st.mapMisses + st.persisted > 0)
            std::printf("snapshot store (workers): %llu mapped "
                        "(%.1f MiB), %llu persisted (%.1f MiB), "
                        "%llu rejected\n\n",
                        static_cast<unsigned long long>(st.mapHits),
                        static_cast<double>(st.mappedBytes) /
                            (1024.0 * 1024.0),
                        static_cast<unsigned long long>(st.persisted),
                        static_cast<double>(st.persistedBytes) /
                            (1024.0 * 1024.0),
                        static_cast<unsigned long long>(st.rejected));
    } else if (base.traceSnapshot) {
        // Every JSONL row carries a deterministic hit/miss label
        // derived from the sweep's input order; the shared cache
        // counted the actual run-time lookups. In a fresh process
        // running one sweep the two views must agree exactly — a
        // mismatch means the cache built a snapshot twice or a run
        // bypassed it.
        SnapshotCache::Counters c = SnapshotCache::global().counters();
        Count row_hits = 0, row_misses = 0;
        for (const RunRecord &rec : recs) {
            if (rec.snapshot == "hit")
                ++row_hits;
            else if (rec.snapshot == "miss")
                ++row_misses;
        }
        // Sharded runs carry full-sweep labels, so their rows do not
        // sum to this process's cache activity by design.
        if (base.shardCount == 1) {
            PERCON_ASSERT(
                c.hits - snap_before.hits == row_hits &&
                    c.misses - snap_before.misses == row_misses,
                "snapshot cache accounting: rows say "
                "%llu hits + %llu misses, cache counted "
                "%llu + %llu",
                static_cast<unsigned long long>(row_hits),
                static_cast<unsigned long long>(row_misses),
                static_cast<unsigned long long>(
                    c.hits - snap_before.hits),
                static_cast<unsigned long long>(
                    c.misses - snap_before.misses));
        }
        Count store_maps = c.storeHits - snap_before.storeHits;
        std::printf("trace snapshots: %llu built "
                    "(%.1f Muops, %.1f MiB, %.2f s), %llu replay "
                    "hits, %llu store maps\n\n",
                    static_cast<unsigned long long>(
                        c.misses - snap_before.misses - store_maps),
                    static_cast<double>(c.builtUops -
                                        snap_before.builtUops) /
                        1e6,
                    static_cast<double>(c.builtBytes -
                                        snap_before.builtBytes) /
                        (1024.0 * 1024.0),
                    c.buildSeconds - snap_before.buildSeconds,
                    static_cast<unsigned long long>(row_hits),
                    static_cast<unsigned long long>(store_maps));
        if (SnapshotStore *st = SnapshotCache::global().store()) {
            SnapshotStore::Counters sc = st->counters();
            std::printf("snapshot store: %llu mapped (%.1f MiB), "
                        "%llu persisted (%.1f MiB), %llu "
                        "rejected\n\n",
                        static_cast<unsigned long long>(sc.mapHits),
                        static_cast<double>(sc.mappedBytes) /
                            (1024.0 * 1024.0),
                        static_cast<unsigned long long>(sc.persisted),
                        static_cast<double>(sc.persistedBytes) /
                            (1024.0 * 1024.0),
                        static_cast<unsigned long long>(sc.rejected));
        }
    }

    if (base.sampled && base.checkpoint && base.workers > 0) {
        const auto &c = worker_sums.checkpoint;
        std::printf("warm checkpoints (workers): %llu built "
                    "(%.1f KiB, %.2f s warm), %llu restore hits\n\n",
                    static_cast<unsigned long long>(c.misses),
                    static_cast<double>(c.builtBytes) / 1024.0,
                    c.buildSeconds,
                    static_cast<unsigned long long>(c.hits));
    } else if (base.sampled && base.checkpoint) {
        CheckpointCache::Counters c =
            CheckpointCache::global().counters();
        Count row_hits = 0, row_misses = 0;
        for (const RunRecord &rec : recs) {
            if (rec.checkpoint == "hit")
                ++row_hits;
            else if (rec.checkpoint == "miss")
                ++row_misses;
        }
        std::printf("warm checkpoints: %llu built "
                    "(%.1f KiB, %.2f s warm), %llu restore hits\n\n",
                    static_cast<unsigned long long>(
                        c.misses - ckpt_before.misses),
                    static_cast<double>(c.builtBytes -
                                        ckpt_before.builtBytes) /
                        1024.0,
                    c.buildSeconds - ckpt_before.buildSeconds,
                    static_cast<unsigned long long>(row_hits));
    }

    if (base.predSnapshot && base.workers > 0) {
        const auto &c = worker_sums.pred;
        std::printf("prediction streams (workers): %llu recorded "
                    "(%.1f MiB), %llu replay hits, %llu store maps, "
                    "%llu abandoned\n\n",
                    static_cast<unsigned long long>(c.recorded),
                    static_cast<double>(c.recordedBytes) /
                        (1024.0 * 1024.0),
                    static_cast<unsigned long long>(c.hits),
                    static_cast<unsigned long long>(c.storeHits),
                    static_cast<unsigned long long>(c.abandoned));
        const auto &ps = worker_sums.predStore;
        if (ps.mapHits + ps.mapMisses + ps.persisted > 0)
            std::printf("prediction store (workers): %llu mapped "
                        "(%.1f MiB), %llu persisted (%.1f MiB), "
                        "%llu rejected\n\n",
                        static_cast<unsigned long long>(ps.mapHits),
                        static_cast<double>(ps.mappedBytes) /
                            (1024.0 * 1024.0),
                        static_cast<unsigned long long>(ps.persisted),
                        static_cast<double>(ps.persistedBytes) /
                            (1024.0 * 1024.0),
                        static_cast<unsigned long long>(ps.rejected));
    } else if (base.predSnapshot) {
        // Rows carry deterministic input-order labels; the cache
        // counted actual acquires. The per-row hit/miss SPLIT can
        // differ from run-time racing (whichever point acquires
        // first records), but the TOTALS must agree exactly in a
        // fresh unsharded process: one miss per distinct key, a hit
        // for every other point.
        PredictionCache::Counters c =
            PredictionCache::global().counters();
        Count row_hits = 0, row_misses = 0;
        for (const RunRecord &rec : recs) {
            if (rec.predSnapshot == "hit")
                ++row_hits;
            else if (rec.predSnapshot == "miss")
                ++row_misses;
        }
        if (base.shardCount == 1) {
            PERCON_ASSERT(
                c.hits - pred_before.hits == row_hits &&
                    c.misses - pred_before.misses == row_misses,
                "prediction cache accounting: rows say "
                "%llu hits + %llu misses, cache counted "
                "%llu + %llu",
                static_cast<unsigned long long>(row_hits),
                static_cast<unsigned long long>(row_misses),
                static_cast<unsigned long long>(
                    c.hits - pred_before.hits),
                static_cast<unsigned long long>(
                    c.misses - pred_before.misses));
        }
        std::printf("prediction streams: %llu recorded (%.1f MiB), "
                    "%llu replay hits, %llu store maps\n\n",
                    static_cast<unsigned long long>(
                        c.recorded - pred_before.recorded),
                    static_cast<double>(c.recordedBytes -
                                        pred_before.recordedBytes) /
                        (1024.0 * 1024.0),
                    static_cast<unsigned long long>(row_hits),
                    static_cast<unsigned long long>(
                        c.storeHits - pred_before.storeHits));
        if (PredictionStore *st = PredictionCache::global().store()) {
            PredictionStore::Counters ps = st->counters();
            std::printf("prediction store: %llu mapped (%.1f MiB), "
                        "%llu persisted (%.1f MiB), %llu "
                        "rejected\n\n",
                        static_cast<unsigned long long>(ps.mapHits),
                        static_cast<double>(ps.mappedBytes) /
                            (1024.0 * 1024.0),
                        static_cast<unsigned long long>(ps.persisted),
                        static_cast<double>(ps.persistedBytes) /
                            (1024.0 * 1024.0),
                        static_cast<unsigned long long>(ps.rejected));
        }
    }

    if (!base.jsonl.empty()) {
        JsonlWriter writer(base.jsonl);
        writer.writeAll(recs);
    }

    std::vector<std::string> header;
    for (const auto &axis : base.sweeps)
        header.push_back(axis.first);
    header.insert(header.end(),
                  {"IPC", "misp/Kuop", "exec +%", "gated %", "PVN %",
                   "wall s"});
    AsciiTable table(header);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const CoreStats &s = recs[i].stats;
        std::vector<std::string> row = combo_values[i];
        row.push_back(fmtFixed(s.ipc(), 3));
        row.push_back(fmtFixed(s.mispredictsPerKuop(), 1));
        row.push_back(fmtFixed(s.executionIncreasePct(), 1));
        row.push_back(fmtFixed(
            s.cycles ? 100.0 * static_cast<double>(s.gatedCycles) /
                           static_cast<double>(s.cycles)
                     : 0.0,
            1));
        row.push_back(fmtFixed(100.0 * s.confidence.pvn(), 1));
        row.push_back(fmtFixed(recs[i].wallSeconds, 2));
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);
    if (!o.snapshotStore.empty()) {
        // Flag overrides PERCON_SNAPSHOT_STORE (which global()
        // attaches on first use). Static: the cache holds a bare
        // pointer for the life of the process.
        static SnapshotStore store(o.snapshotStore);
        SnapshotCache::global().setStore(&store);
    }
    if (!o.predSnapshotStore.empty()) {
        // Same idiom for the prediction-stream tier.
        static PredictionStore pred_store(o.predSnapshotStore);
        PredictionCache::global().setStore(&pred_store);
    }
    if (!o.sweeps.empty())
        return runSweep(o);
    if (o.workers > 0 || o.shardCount > 1)
        fatal("--workers/--shard apply to sweep mode only");
    PipelineConfig machine = machineFor(o.machine);

    SpeculationControl sc;
    sc.gateThreshold = o.gate;
    sc.reversalEnabled = o.reverse;
    sc.confidenceLatency = o.latency;
    sc.oracleGating = o.oracle;
    sc.throttleWidth = o.throttle;

    std::unique_ptr<ConfidenceEstimator> estimator;
    if (!o.estimator.empty()) {
        if (o.estimator == "perceptron-cic") {
            PerceptronConfParams p;
            p.lambda = o.lambda;
            if (o.reverse)
                p.reverseLambda = o.reverseLambda;
            estimator = std::make_unique<PerceptronConfidence>(p);
        } else {
            estimator = makeEstimator(o.estimator);
        }
    }

    const BenchmarkSpec &spec = benchmarkSpec(o.bench);

    if (o.oracleDiff) {
        if (!o.trace.empty() || !o.smtWith.empty())
            fatal("--oracle-diff supports calibrated single-thread "
                  "benchmarks only (not --trace/--smt)");
        DiffCase dc;
        dc.name = o.bench;
        dc.program = spec.program;
        dc.config = machine;
        dc.spec = sc;
        dc.predictor = o.predictor;
        dc.estimator = o.estimator;
        dc.makeEstimator = estimatorFactory(o);
        dc.warmupUops = o.warmup ? o.warmup : o.uops / 3;
        dc.measureUops = o.uops;
        dc.wrongPathSeed = spec.program.seed ^ 0xdead;
        dc.traceSnapshot = o.traceSnapshot;
        dc.predSnapshot = o.predSnapshot;
        DiffResult r = runDifferential(dc);
        std::printf("oracle-diff %s (%s, %llu uops): %s\n",
                    o.bench.c_str(), o.machine.c_str(),
                    static_cast<unsigned long long>(o.uops),
                    r.summary().c_str());
        return r.clean() ? 0 : 1;
    }

    if (o.sampled) {
        if (!o.trace.empty() || !o.smtWith.empty())
            fatal("--sim-mode sampled supports calibrated "
                  "single-thread benchmarks only (not --trace/--smt)");
        TimingConfig t;
        t.measureUops = o.uops;
        t.warmupUops = o.warmup ? o.warmup : o.uops / 3;
        t.audit = o.audit;
        t.traceSnapshot = o.traceSnapshot;
        t.simMode = SimMode::Sampled;
        t.sampleWarmUops = o.sampleWarm;
        t.sampleMeasureUops = o.sampleMeasure;
        t.checkpointWarm = o.checkpoint;
        if (t.checkpointWarm)
            t.checkpointStore = &CheckpointCache::global();
        t.predSnapshot = o.predSnapshot;
        if (t.predSnapshot)
            t.predictionProvider = &PredictionCache::global();
        TimingResult r = runTiming(spec, machine, o.predictor,
                                   estimatorFactory(o), sc, t);
        const CoreStats &s = r.stats;
        std::printf("workload            : %s\n", o.bench.c_str());
        std::printf("machine             : %s (width %u, %u+%u "
                    "stages)\n",
                    o.machine.c_str(), machine.width,
                    machine.frontEndDepth, machine.backEndDepth);
        std::printf("predictor           : %s\n", o.predictor.c_str());
        std::printf("estimator           : %s\n",
                    estimator ? estimator->name()
                              : (o.oracle ? "oracle" : "none"));
        std::printf("sim mode            : sampled (%llu windows of "
                    "%llu uops, %llu warm between)\n",
                    static_cast<unsigned long long>(r.sampledWindows),
                    static_cast<unsigned long long>(o.sampleMeasure),
                    static_cast<unsigned long long>(o.sampleWarm));
        if (r.snapshot == "on")
            std::printf("trace snapshot      : on (build %.3f s%s)\n",
                        r.snapshotBuildSeconds,
                        r.snapshotTailUops ? ", tail fallback hit"
                                           : "");
        std::printf("time split          : warm %.3f s, detailed "
                    "%.3f s\n",
                    r.warmSeconds, r.detailSeconds);
        std::printf("checkpoint          : %s\n",
                    r.checkpoint.c_str());
        std::printf("pred snapshot       : %s\n",
                    r.predSnapshot.c_str());
        std::printf("cycles              : %llu (measured windows)\n",
                    static_cast<unsigned long long>(s.cycles));
        std::printf("IPC                 : %.3f +/- %.4f\n", s.ipc(),
                    r.ipcErr);
        std::printf("retired uops        : %llu\n",
                    static_cast<unsigned long long>(s.retiredUops));
        std::printf("executed uops       : %llu (+%.1f%% over "
                    "retired)\n",
                    static_cast<unsigned long long>(s.executedUops),
                    s.executionIncreasePct());
        std::printf("branches            : %llu retired, %.2f%% "
                    "mispredicted (%.1f/Kuop)\n",
                    static_cast<unsigned long long>(
                        s.retiredBranches),
                    100.0 * s.mispredictRate(),
                    s.mispredictsPerKuop());
        if (estimator || !o.estimator.empty()) {
            std::printf("confidence          : PVN %.1f%% +/- %.2f  "
                        "Spec %.1f%% +/- %.2f\n",
                        100.0 * s.confidence.pvn(), 100.0 * r.pvnErr,
                        100.0 * s.confidence.spec(),
                        100.0 * r.specErr);
        }
        if (o.audit) {
            std::printf("audit               : %s\n",
                        r.audit.c_str());
            if (r.audit != "clean" && r.audit != "off")
                return 1;
        }
        return 0;
    }

    auto predictor = makePredictor(o.predictor);
    WrongPathSynthesizer wrong_path(spec.program,
                                    spec.program.seed ^ 0xdead);

    if (!o.smtWith.empty()) {
        const BenchmarkSpec &spec_b = benchmarkSpec(o.smtWith);
        WrongPathSynthesizer wp_b(spec_b.program,
                                  spec_b.program.seed ^ 0xbeef);
        // Snapshot replay: both threads pull from the shared cache,
        // so co-running a benchmark with itself shares one trace.
        // SmtCore runs until the *slower* thread reaches its goal, so
        // the faster thread can overshoot well past the single-core
        // slack; size for a 2x imbalance and let the cursor's
        // live-tail fallback absorb anything beyond that.
        std::unique_ptr<WorkloadSource> src_a, src_b;
        if (o.traceSnapshot) {
            TimingConfig snap_t;
            snap_t.measureUops = o.uops * 2;
            snap_t.warmupUops = o.warmup ? o.warmup : o.uops / 3;
            Count len = snapshotLengthFor(machine, snap_t);
            SnapshotCache &cache = SnapshotCache::global();
            src_a = std::make_unique<SnapshotCursor>(
                cache.get(spec.program, len));
            src_b = std::make_unique<SnapshotCursor>(
                cache.get(spec_b.program, len));
        } else {
            src_a = std::make_unique<ProgramModel>(spec.program);
            src_b = std::make_unique<ProgramModel>(spec_b.program);
        }
        SmtCore core(machine, {{{src_a.get(), &wrong_path},
                                {src_b.get(), &wp_b}}},
                     *predictor, estimator.get(), sc);
        std::array<InvariantAuditor, SmtCore::kThreads> auditors;
        if (o.audit)
            for (unsigned t = 0; t < SmtCore::kThreads; ++t)
                core.setAuditor(t, &auditors[t]);
        core.warmup(o.warmup ? o.warmup : o.uops / 3);
        core.run(o.uops);
        for (unsigned t = 0; t < SmtCore::kThreads; ++t) {
            const CoreStats &ts = core.stats(t);
            const char *name =
                t == 0 ? o.bench.c_str() : o.smtWith.c_str();
            std::printf("thread %u (%s): IPC %.3f  retired %llu  "
                        "wrong-path %llu  misp/Kuop %.1f\n",
                        t, name,
                        static_cast<double>(ts.retiredUops) /
                            static_cast<double>(ts.cycles),
                        static_cast<unsigned long long>(
                            ts.retiredUops),
                        static_cast<unsigned long long>(
                            ts.wrongPathExecuted),
                        ts.mispredictsPerKuop());
        }
        std::printf("combined IPC        : %.3f\n", core.combinedIpc());
        if (o.audit) {
            for (unsigned t = 0; t < SmtCore::kThreads; ++t)
                std::printf("audit thread %u      : %s\n", t,
                            auditors[t].report().summary().c_str());
            for (unsigned t = 0; t < SmtCore::kThreads; ++t)
                if (!auditors[t].report().clean())
                    return 1;
        }
        return 0;
    }

    std::unique_ptr<WorkloadSource> source;
    SnapshotCursor *cursor = nullptr;
    double snap_build_s = 0.0;
    if (!o.trace.empty()) {
        // A .pctr file is already a replayed trace; the snapshot
        // layer only applies to calibrated generator workloads.
        source = std::make_unique<TraceReader>(o.trace);
    } else if (o.traceSnapshot) {
        TimingConfig snap_t;
        snap_t.measureUops = o.uops;
        snap_t.warmupUops = o.warmup ? o.warmup : o.uops / 3;
        auto t0 = std::chrono::steady_clock::now();
        auto snap = TraceSnapshot::build(
            spec.program, snapshotLengthFor(machine, snap_t));
        snap_build_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        auto c = std::make_unique<SnapshotCursor>(std::move(snap));
        cursor = c.get();
        source = std::move(c);
    } else {
        source = std::make_unique<ProgramModel>(spec.program);
    }

    Core core(machine, *source, wrong_path, *predictor,
              estimator.get(), sc);
    InvariantAuditor auditor;
    if (o.audit)
        core.setAuditor(&auditor);

    // Prediction-stream tier for the exact single-run path. Within
    // one process the first run records; with a persistent store
    // attached, a later invocation of the same design point replays
    // the stored stream and skips all live predictor work.
    PredictionTraceBuilder pred_builder;
    bool pred_recording = false;
    std::string pred_key;
    std::string pred_label = "off";
    if (o.predSnapshot && o.trace.empty()) {
        PredictionRunShape shape;
        shape.wrongPathSeed = spec.program.seed ^ 0xdead;
        shape.warmupUops = o.warmup ? o.warmup : o.uops / 3;
        shape.measureUops = o.uops;
        pred_key = predictionKey(
            spec.program, machine, o.predictor, shape, sc,
            estimator ? estimator->stateKey() : std::string());
        PredictionProvider::Lease lease =
            PredictionCache::global().acquire(pred_key);
        if (lease.trace) {
            core.setPredictionReplay(std::move(lease.trace));
            pred_label = "hit";
        } else if (lease.recording) {
            core.setPredictionRecorder(&pred_builder);
            pred_recording = true;
            pred_label = "miss";
        }
    }

    auto sim0 = std::chrono::steady_clock::now();
    core.warmup(o.warmup ? o.warmup : o.uops / 3);
    core.run(o.uops);
    double sim_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - sim0)
                       .count();
    if (pred_recording)
        PredictionCache::global().publish(pred_key,
                                          pred_builder.finish(pred_key));

    const CoreStats &s = core.stats();
    std::printf("workload            : %s\n",
                o.trace.empty() ? o.bench.c_str() : o.trace.c_str());
    std::printf("machine             : %s (width %u, %u+%u stages)\n",
                o.machine.c_str(), machine.width,
                machine.frontEndDepth, machine.backEndDepth);
    std::printf("predictor           : %s\n", o.predictor.c_str());
    std::printf("estimator           : %s\n",
                estimator ? estimator->name()
                          : (o.oracle ? "oracle" : "none"));
    if (cursor) {
        std::printf("trace snapshot      : on (build %.3f s, replay "
                    "%.3f s, %.1f MiB packed%s)\n",
                    snap_build_s, sim_s,
                    static_cast<double>(
                        cursor->snapshot().memoryBytes()) /
                        (1024.0 * 1024.0),
                    cursor->tailUops() ? ", tail fallback hit" : "");
    } else if (o.trace.empty()) {
        std::printf("trace snapshot      : off (live generation, "
                    "%.3f s)\n", sim_s);
    }
    if (pred_label != "off")
        std::printf("pred snapshot       : %s (%.3f s run)\n",
                    pred_label.c_str(), sim_s);
    std::printf("cycles              : %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("IPC                 : %.3f\n", s.ipc());
    std::printf("retired uops        : %llu\n",
                static_cast<unsigned long long>(s.retiredUops));
    std::printf("executed uops       : %llu (+%.1f%% over retired)\n",
                static_cast<unsigned long long>(s.executedUops),
                s.executionIncreasePct());
    std::printf("wrong-path executed : %llu\n",
                static_cast<unsigned long long>(s.wrongPathExecuted));
    std::printf("branches            : %llu retired, %.2f%% "
                "mispredicted (%.1f/Kuop)\n",
                static_cast<unsigned long long>(s.retiredBranches),
                100.0 * s.mispredictRate(), s.mispredictsPerKuop());
    if (s.reversals) {
        std::printf("reversals           : %llu (%.0f%% fixed a "
                    "mispredict)\n",
                    static_cast<unsigned long long>(s.reversals),
                    100.0 * static_cast<double>(s.reversalsGood) /
                        static_cast<double>(s.reversals));
    }
    if (sc.gateThreshold > 0) {
        std::printf("gated cycles        : %llu (%.1f%% of run)\n",
                    static_cast<unsigned long long>(s.gatedCycles),
                    100.0 * static_cast<double>(s.gatedCycles) /
                        static_cast<double>(s.cycles));
    }
    if (estimator) {
        std::printf("confidence          : PVN %.1f%%  Spec %.1f%%\n",
                    100.0 * s.confidence.pvn(),
                    100.0 * s.confidence.spec());
    }
    std::printf("trace cache         : %llu misses, %llu stall "
                "cycles\n",
                static_cast<unsigned long long>(s.traceCacheMisses),
                static_cast<unsigned long long>(
                    s.traceCacheStallCycles));
    std::printf("BTB                 : %llu misses, %llu stall "
                "cycles\n",
                static_cast<unsigned long long>(s.btbMisses),
                static_cast<unsigned long long>(s.btbStallCycles));

    if (o.energy) {
        EnergyReport e = computeEnergy(s);
        std::printf("energy (proxy)      : total %.0f  EPI %.3f  "
                    "EDP %.3g\n",
                    e.total, e.epi, e.edp);
    }
    if (o.audit) {
        std::printf("audit               : %s\n",
                    auditor.report().summary().c_str());
        if (!auditor.report().clean())
            return 1;
    }
    return 0;
}
