#!/bin/sh
# Simulator speed baseline: run the core-simulation, perceptron-
# kernel, and front-end microbenchmarks and distill them into
# BENCH_core_speed.json, the checked-in items/sec trajectory seed
# that check.sh schema-diffs.
#
#   scripts/bench_speed.sh [build-dir] [min-time]
#
#   build-dir  where bench/microbench lives   (default: build)
#   min-time   --benchmark_min_time per case, plain seconds
#              (default: 1). Use a small value like 0.05 for a
#              smoke run that only validates the schema.
#
# Output goes to BENCH_core_speed.json in the repo root unless
# BENCH_OUT is set. Numbers are machine-dependent: regenerate the
# checked-in file only when deliberately re-baselining, and compare
# ratios, not absolute values, across machines.
set -eu
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
MIN_TIME="${2:-1}"
OUT="${BENCH_OUT:-BENCH_core_speed.json}"
BIN="$BUILD/bench/microbench"

if [ ! -x "$BIN" ]; then
    echo "bench_speed.sh: $BIN not found; build the 'microbench'" \
         "target first" >&2
    exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Google Benchmark's --benchmark_min_time here takes a plain float
# (seconds), not a duration suffix.
"$BIN" --benchmark_filter='^BM_(CoreSimulation|PerceptronOutput/|PerceptronTrain/|FrontEndPerceptron|TraceGen|SnapshotReplay|FunctionalWarm|SampledTiming/|Sweep16|Prediction)' \
       --benchmark_min_time="$MIN_TIME" \
       --benchmark_format=json > "$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Map benchmark names to stable config keys, item units, and workload
# mode ("live" = ProgramModel generation on the fetch path, "replay" =
# snapshot cursor, "none" = no workload in the loop): the bare
# BM_CoreSimulation is the canonical deep40x4 no-policy case; the
# BM_CoreSimulationPolicy captures already carry their config name;
# the kernel and front-end benches get explicit keys. (The
# BM_LegacyPerceptron* yardsticks are intentionally not tracked.)
def config_entry(name):
    if name == "BM_CoreSimulation":
        return "deep40x4_nopolicy", "uops", "live"
    if name == "BM_CoreSimulationReplay":
        return "replay_deep40x4_nopolicy", "uops", "replay"
    if name == "BM_TraceGen":
        return "trace_gen", "uops", "live"
    if name == "BM_SnapshotReplay":
        return "snapshot_replay", "uops", "replay"
    if name == "BM_FunctionalWarm":
        return "functional_warm_deep40x4_gate2", "uops", "replay"
    if name == "BM_SampledTiming/exact":
        return "timing_exact_deep40x4_gate2", "uops", "replay"
    if name == "BM_SampledTiming/sampled":
        return "timing_sampled_deep40x4_gate2", "uops", "replay"
    if name == "BM_Sweep16ColdStore":
        return "sweep16_cold_store", "uops", "replay"
    if name == "BM_Sweep16WarmStore":
        return "sweep16_warm_store", "uops", "replay"
    if name == "BM_CoreSimulationPredReplay":
        return "pred_replay_deep40x4_nopolicy", "uops", "replay"
    if name == "BM_PredictionLive":
        return "pred_sampled_live_perceptron", "uops", "replay"
    if name == "BM_PredictionRecord":
        return "pred_sampled_record_perceptron", "uops", "replay"
    if name == "BM_PredictionReplay":
        return "pred_sampled_replay_perceptron", "uops", "replay"
    if name == "BM_Sweep16PredLive":
        return "sweep16_pred_live", "uops", "replay"
    if name == "BM_Sweep16PredReplay":
        return "sweep16_pred_replay", "uops", "replay"
    if name == "BM_FrontEndPerceptron":
        return "frontend_perceptron_cic", "preds", "live"
    prefix = "BM_CoreSimulationPolicy/"
    if name.startswith(prefix):
        return name[len(prefix):], "uops", "live"
    prefix = "BM_PerceptronOutput/"
    if name.startswith(prefix):
        return "kernel_output_" + name[len(prefix):], "preds", "none"
    prefix = "BM_PerceptronTrain/"
    if name.startswith(prefix):
        return "kernel_train_" + name[len(prefix):], "preds", "none"
    raise SystemExit(f"bench_speed.sh: unexpected benchmark {name!r}")

configs = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    key, unit, mode = config_entry(b["name"])
    configs[key] = {
        "items_per_sec": round(b["items_per_second"], 1),
        "unit": unit,
        "mode": mode,
    }

if not configs:
    raise SystemExit("bench_speed.sh: no benchmark results")

doc = {
    "schema_version": 6,
    "metric": "items_per_sec",
    "configs": dict(sorted(configs.items())),
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench_speed.sh: wrote {out_path} ({len(configs)} configs)")
EOF
