#!/bin/sh
# Strict verification gate: configure a fresh build directory with
# -Werror and a sanitizer preset, build everything, and run ctest.
# This is the entry point a CI workflow calls.
#
#   scripts/check.sh [asan|tsan|none|audit|engine|sampling|store|predsnap]
#
# Presets:
#   asan  (default)  AddressSanitizer + UndefinedBehaviorSanitizer
#   tsan             ThreadSanitizer (for the sweep driver)
#   none             -Werror only, no sanitizer
#   audit            ASan build, then ONLY the verification suite
#                    (ctest -L verify: differential oracle + invariant
#                    auditor); skips the bench gate and scalar pass.
#                    The fast gate to run after touching the core.
#   engine           ASan build, then the pipeline-unification gate:
#                    both golden-stats matrices (single-thread + SMT)
#                    and the engine parity tests, plus the
#                    verification suite with snapshot replay on and
#                    off. The gate to run after touching
#                    PipelineEngine or its Core/SmtCore shells.
#   sampling         ASan build, then the sampled-simulation gate:
#                    the sampling label (checkpoint round-trip
#                    bit-identity across the golden matrix,
#                    exact-vs-sampled calibration, warm-accounting
#                    negative test) plus the verification suite with
#                    warm checkpoints forced on and off
#                    (PERCON_WARM_CHECKPOINT). The gate to run after
#                    touching functionalWarm, the sampled driver, or
#                    the checkpoint wire formats.
#   store            ASan build, then the persistent-store gate: the
#                    on-disk format rejection matrix, the store and
#                    worker-pool suites, and the JSONL byte-stability
#                    locks, followed by an end-to-end percon_sim
#                    sweep with forked workers against one store
#                    directory — cold (generate + persist), then warm
#                    (every snapshot replayed from an mmap'd file:
#                    the mapping-lifetime pass ASan watches), with
#                    the two JSONL outputs asserted byte-identical
#                    modulo the snapshot_store and wall fields — and
#                    the verification suite. The gate to run after
#                    touching snapshot_file, snapshot_store, the
#                    snapshot cache tiers, or the worker pool.
#   predsnap         ASan build, then the prediction-stream gate: the
#                    PCPRED01 rejection matrix, the prediction cache
#                    suite, both golden matrices' record/replay
#                    bit-identity tests and the JSONL stability locks,
#                    the verification suite with the prediction tier
#                    forced on and off (PERCON_PRED_SNAPSHOT), and a
#                    cold-then-warm percon_sim sweep against one
#                    prediction store directory with the two JSONL
#                    outputs asserted byte-identical modulo store and
#                    wall fields. The gate to run after touching the
#                    engine's architectural prediction helpers, the
#                    prediction trace/file/cache/store, or the replay
#                    plumbing in runTiming.
#
# The build directory is build-check-<preset>; override with
# BUILD_DIR. Extra ctest arguments can be passed via CTEST_ARGS.
set -eu
cd "$(dirname "$0")/.."

PRESET="${1:-asan}"
case "$PRESET" in
  asan|audit|engine|sampling|store|predsnap)
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    ;;
  tsan)
    SAN_FLAGS="-fsanitize=thread"
    ;;
  none)
    SAN_FLAGS=""
    ;;
  *)
    echo "usage: scripts/check.sh" \
         "[asan|tsan|none|audit|engine|sampling|store|predsnap]" >&2
    exit 1
    ;;
esac

BUILD="${BUILD_DIR:-build-check-$PRESET}"

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-Werror $SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$BUILD" -j "$(nproc)"

if [ "$PRESET" = "audit" ]; then
    # Verification suite only: the 200-point differential oracle run
    # and the invariant-auditor matrix, under ASan — once with the
    # default snapshot replay, once forced to live generation.
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        -L verify ${CTEST_ARGS:-}
    PERCON_TRACE_SNAPSHOT=off \
        ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        -L verify ${CTEST_ARGS:-}
    echo "check.sh: audit preset passed (verify label under asan," \
         "snapshots on + off)"
    exit 0
fi

if [ "$PRESET" = "engine" ]; then
    # Pipeline-unification gate: the bit-identity locks (both
    # golden-stats matrices) and the Core/engine parity + cursor
    # detection tests, then the verification suite with snapshot
    # replay on and off. The golden tests build their workloads
    # directly, so PERCON_TRACE_SNAPSHOT only matters for the verify
    # label. Tests are registered per gtest case, so the gate matches
    # suite names (and --no-tests=error guards against the patterns
    # rotting).
    GATE_RE='GoldenStats|EngineCoreParity|EngineSmtCoverage'
    GATE_RE="$GATE_RE|EngineCursorDetection"
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -R "$GATE_RE" ${CTEST_ARGS:-}
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -L verify ${CTEST_ARGS:-}
    PERCON_TRACE_SNAPSHOT=off \
        ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -L verify ${CTEST_ARGS:-}
    echo "check.sh: engine preset passed (golden matrices + parity" \
         "tests, verify label with snapshots on + off)"
    exit 0
fi

if [ "$PRESET" = "sampling" ]; then
    # Sampled-simulation gate: the sampling label pins checkpoint
    # round-trip bit-identity across the 18-config golden matrix, the
    # exact-vs-sampled calibration tolerances, and the
    # warm-accounting negative test. The verification suite then runs
    # with warm checkpoints forced on and off: the differential
    # oracle and auditor must not care how warm state was produced.
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -L sampling ${CTEST_ARGS:-}
    PERCON_WARM_CHECKPOINT=on \
        ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -L verify ${CTEST_ARGS:-}
    PERCON_WARM_CHECKPOINT=off \
        ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -L verify ${CTEST_ARGS:-}
    echo "check.sh: sampling preset passed (sampling label, verify" \
         "label with warm checkpoints on + off)"
    exit 0
fi

if [ "$PRESET" = "store" ]; then
    # Persistent-store gate: the format/store/worker suites by name,
    # then an end-to-end sweep against one store directory — the
    # cold pass generates and persists every snapshot, the warm pass
    # serves them all from mmap'd files (borrowed lanes under ASan:
    # any mapping-lifetime bug dies here) and must reproduce the
    # cold rows byte-for-byte modulo the snapshot_store label.
    GATE_RE='SnapshotFile|SnapshotStore|WorkerPool|ShardPartition'
    GATE_RE="$GATE_RE|JsonlStability|SnapshotCache|CheckpointCache"
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -R "$GATE_RE" ${CTEST_ARGS:-}
    STORE_DIR="$(mktemp -d)"
    trap 'rm -rf "$STORE_DIR"' EXIT
    for pass in cold warm; do
        echo "check.sh: store sweep ($pass)"
        ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
            "$BUILD/tools/percon_sim" \
            --sweep bench=gzip,mcf --sweep gate=1,2 \
            --estimator perceptron-cic --machine deep40x4 \
            --uops 20000 --sim-mode sampled --checkpoint on \
            --workers 2 --snapshot-store "$STORE_DIR" \
            --jsonl "$STORE_DIR/rows-$pass.jsonl" > /dev/null
    done
    python3 - "$STORE_DIR/rows-cold.jsonl" \
        "$STORE_DIR/rows-warm.jsonl" <<'EOF'
import re
import sys

def rows(path):
    with open(path) as f:
        return [re.sub(r'"(snapshot_store|wall_seconds)":[^,}]*',
                       '', line)
                for line in f]

cold, warm = rows(sys.argv[1]), rows(sys.argv[2])
if not cold or cold != warm:
    raise SystemExit("check.sh: warm-store rows differ from cold")
print(f"check.sh: store rows identical cold vs warm "
      f"({len(cold)} rows)")
EOF
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -L verify ${CTEST_ARGS:-}
    echo "check.sh: store preset passed (format/store/worker gate," \
         "cold + warm store sweeps, verify label)"
    exit 0
fi

if [ "$PRESET" = "predsnap" ]; then
    # Prediction-stream gate: the on-disk rejection matrix, the cache
    # lease protocol, the engine-level record/replay bit-identity
    # locks on both golden matrices, and the JSONL stability locks
    # (pred_snapshot labels included), all by name.
    GATE_RE='PredictionFile|PredictionCache|PredReplay|JsonlStability'
    GATE_RE="$GATE_RE|WorkerPool|WarmCheckpoint"
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -R "$GATE_RE" ${CTEST_ARGS:-}
    # The 200-point differential oracle with the prediction tier
    # forced on (record + replay inside every case) and off.
    PERCON_PRED_SNAPSHOT=on \
        ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -L verify ${CTEST_ARGS:-}
    PERCON_PRED_SNAPSHOT=off \
        ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
        ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
        --no-tests=error -L verify ${CTEST_ARGS:-}
    # End-to-end: a predictor-fixed sweep against one prediction
    # store directory — the cold pass records and persists every
    # stream, the warm pass replays them all from mmap'd files
    # (borrowed lanes under ASan) and must reproduce the cold rows
    # byte-for-byte; pred_snapshot labels are input-order-derived, so
    # only wall time may differ.
    STORE_DIR="$(mktemp -d)"
    trap 'rm -rf "$STORE_DIR"' EXIT
    for pass in cold warm; do
        echo "check.sh: prediction-store sweep ($pass)"
        ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
            "$BUILD/tools/percon_sim" \
            --sweep bench=gzip,mcf \
            --sweep estimator=jrs,perceptron-cic \
            --machine deep40x4 --predictor perceptron \
            --uops 20000 \
            --pred-snapshot on --pred-snapshot-store "$STORE_DIR" \
            --jsonl "$STORE_DIR/rows-$pass.jsonl" > /dev/null
    done
    python3 - "$STORE_DIR/rows-cold.jsonl" \
        "$STORE_DIR/rows-warm.jsonl" <<'EOF'
import re
import sys

def rows(path):
    with open(path) as f:
        return [re.sub(r'"wall_seconds":[^,}]*', '', line)
                for line in f]

cold, warm = rows(sys.argv[1]), rows(sys.argv[2])
if not cold or cold != warm:
    raise SystemExit(
        "check.sh: warm prediction-store rows differ from cold")
print(f"check.sh: prediction rows identical cold vs warm "
      f"({len(cold)} rows)")
EOF
    echo "check.sh: predsnap preset passed (format/cache/replay gate," \
         "verify label with prediction tier on + off, cold + warm" \
         "prediction-store sweeps)"
    exit 0
fi

# Death tests fork under sanitizers; keep them enabled but quiet leak
# checking noise from intentionally-aborted children.
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
    ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
    ${CTEST_ARGS:-}

# The verification suite defaults to snapshot replay (DiffCase
# follows PERCON_TRACE_SNAPSHOT); one more pass pinned to live
# generation keeps the trace-snapshot=off path differentially
# verified too.
PERCON_TRACE_SNAPSHOT=off \
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
    ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
    -L verify ${CTEST_ARGS:-}

# Perf-regression harness: smoke-run the core-speed benchmarks (a
# few ms per case — this validates that they still run and emit the
# expected config set, not their absolute speed, which is machine-
# and sanitizer-dependent) and schema-diff the result against the
# checked-in BENCH_core_speed.json trajectory seed.
BENCH_OUT="$BUILD/BENCH_core_speed.json" \
    scripts/bench_speed.sh "$BUILD" 0.05
python3 - "$BUILD/BENCH_core_speed.json" BENCH_core_speed.json <<'EOF'
import json
import sys

fresh_path, seed_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    fresh = json.load(f)
with open(seed_path) as f:
    seed = json.load(f)

errors = []
for field in ("schema_version", "metric"):
    if fresh.get(field) != seed.get(field):
        errors.append(f"{field}: checked-in {seed.get(field)!r} "
                      f"vs fresh {fresh.get(field)!r}")
fresh_cfgs = set(fresh.get("configs", {}))
seed_cfgs = set(seed.get("configs", {}))
if missing := seed_cfgs - fresh_cfgs:
    errors.append(f"configs no longer produced: {sorted(missing)}")
if new := fresh_cfgs - seed_cfgs:
    errors.append(f"configs missing from the checked-in baseline "
                  f"(re-run scripts/bench_speed.sh): {sorted(new)}")
for name, entry in fresh.get("configs", {}).items():
    if "items_per_sec" not in entry:
        errors.append(f"{name}: no items_per_sec field")
    seed_entry = seed.get("configs", {}).get(name)
    if seed_entry and entry.get("unit") != seed_entry.get("unit"):
        errors.append(f"{name}: unit changed "
                      f"{seed_entry.get('unit')!r} -> "
                      f"{entry.get('unit')!r}")
    if seed_entry and entry.get("mode") != seed_entry.get("mode"):
        errors.append(f"{name}: mode changed "
                      f"{seed_entry.get('mode')!r} -> "
                      f"{entry.get('mode')!r}")

if errors:
    print("check.sh: BENCH_core_speed.json schema drift:")
    for e in errors:
        print(f"  - {e}")
    sys.exit(1)
print(f"check.sh: bench schema OK ({len(fresh_cfgs)} configs)")
EOF

# Second pass with the scalar perceptron-kernel default: the SIMD
# kernels claim bit-identity with the scalar path, so the whole test
# suite (golden stats included) must pass either way. Same -Werror
# and sanitizer flags; the option only flips the dispatch default.
SCALAR_BUILD="${BUILD}-scalar"
cmake -B "$SCALAR_BUILD" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPERCON_FORCE_SCALAR=ON \
    -DCMAKE_CXX_FLAGS="-Werror $SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$SCALAR_BUILD" -j "$(nproc)"
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
    ctest --test-dir "$SCALAR_BUILD" --output-on-failure -j "$(nproc)" \
    ${CTEST_ARGS:-}

echo "check.sh: $PRESET preset passed (simd + forced-scalar)"
