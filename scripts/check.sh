#!/bin/sh
# Strict verification gate: configure a fresh build directory with
# -Werror and a sanitizer preset, build everything, and run ctest.
# This is the entry point a CI workflow calls.
#
#   scripts/check.sh [asan|tsan|none]
#
# Presets:
#   asan  (default)  AddressSanitizer + UndefinedBehaviorSanitizer
#   tsan             ThreadSanitizer (for the sweep driver)
#   none             -Werror only, no sanitizer
#
# The build directory is build-check-<preset>; override with
# BUILD_DIR. Extra ctest arguments can be passed via CTEST_ARGS.
set -eu
cd "$(dirname "$0")/.."

PRESET="${1:-asan}"
case "$PRESET" in
  asan)
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    ;;
  tsan)
    SAN_FLAGS="-fsanitize=thread"
    ;;
  none)
    SAN_FLAGS=""
    ;;
  *)
    echo "usage: scripts/check.sh [asan|tsan|none]" >&2
    exit 1
    ;;
esac

BUILD="${BUILD_DIR:-build-check-$PRESET}"

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-Werror $SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build "$BUILD" -j "$(nproc)"
# Death tests fork under sanitizers; keep them enabled but quiet leak
# checking noise from intentionally-aborted children.
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=0}" \
    ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
    ${CTEST_ARGS:-}
echo "check.sh: $PRESET preset passed"
