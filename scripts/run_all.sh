#!/bin/sh
# Build, test and regenerate every paper table/figure.
#
#   scripts/run_all.sh [uops-per-run]
#
# Results land in test_output.txt and bench_output.txt at the repo
# root (the files EXPERIMENTS.md refers to).
set -e
cd "$(dirname "$0")/.."

UOPS="${1:-600000}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
    case "$b" in
      *CMakeFiles*|*cmake*|*CTest*) continue ;;
    esac
    [ -x "$b" ] || continue
    echo "===== $(basename "$b")" | tee -a bench_output.txt
    PERCON_UOPS="$UOPS" "$b" 2>&1 | tee -a bench_output.txt
done
