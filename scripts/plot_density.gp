# gnuplot script for the Figure 4-7 density functions.
#
# Usage:
#   ./build/bench/fig4_5_density_cic | awk '/^ *-?[0-9]/ {print}' > cic.dat
#   gnuplot -e "datafile='cic.dat'; outfile='fig4.png'" scripts/plot_density.gp
#
# Column 1: perceptron output (bucket center)
# Column 2: correctly predicted branches (CB)
# Column 3: mispredicted branches (MB)

if (!exists("datafile")) datafile = "cic.dat"
if (!exists("outfile")) outfile = "density.png"

set terminal pngcairo size 1000,600 font "sans,11"
set output outfile

set xlabel "perceptron output"
set ylabel "CB density"
set y2label "MB density"
set ytics nomirror
set y2tics
set grid x
set key top left

plot datafile using 1:2 axes x1y1 with lines lw 2 title "CB (correct)", \
     datafile using 1:3 axes x1y2 with lines lw 2 dashtype 2 title "MB (mispredicted)"
