/**
 * @file
 * Unit tests for confidence metrics and running statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

using namespace percon;

TEST(ConfidenceMatrix, PaperMetricDefinitions)
{
    // 100 branches: 20 mispredicted (15 flagged low), 80 correct
    // (10 flagged low).
    ConfidenceMatrix m;
    for (int i = 0; i < 15; ++i)
        m.record(true, true);
    for (int i = 0; i < 5; ++i)
        m.record(true, false);
    for (int i = 0; i < 10; ++i)
        m.record(false, true);
    for (int i = 0; i < 70; ++i)
        m.record(false, false);

    EXPECT_EQ(m.total(), 100u);
    EXPECT_EQ(m.mispredicted(), 20u);
    EXPECT_EQ(m.lowConfidence(), 25u);
    // Spec: fraction of mispredicted branches flagged low.
    EXPECT_DOUBLE_EQ(m.spec(), 15.0 / 20.0);
    // PVN: probability a low-confidence flag is a real mispredict.
    EXPECT_DOUBLE_EQ(m.pvn(), 15.0 / 25.0);
    // Sens: fraction of correct branches kept high confidence.
    EXPECT_DOUBLE_EQ(m.sens(), 70.0 / 80.0);
    // PVP: probability a high-confidence estimate is correct.
    EXPECT_DOUBLE_EQ(m.pvp(), 70.0 / 75.0);
    EXPECT_DOUBLE_EQ(m.mispredictRate(), 0.2);
}

TEST(ConfidenceMatrix, EmptyIsZeroNotNan)
{
    ConfidenceMatrix m;
    EXPECT_DOUBLE_EQ(m.spec(), 0.0);
    EXPECT_DOUBLE_EQ(m.pvn(), 0.0);
    EXPECT_DOUBLE_EQ(m.sens(), 0.0);
    EXPECT_DOUBLE_EQ(m.pvp(), 0.0);
}

TEST(ConfidenceMatrix, MergeAddsCounts)
{
    ConfidenceMatrix a, b;
    a.record(true, true);
    b.record(false, false);
    b.record(true, false);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.mispredicted(), 2u);
    EXPECT_EQ(a.correctHigh(), 1u);
}

TEST(RunningStat, MatchesClosedForm)
{
    RunningStat s;
    double samples[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : samples)
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Pct, Basics)
{
    EXPECT_DOUBLE_EQ(pct(1.0, 4.0), 25.0);
    EXPECT_DOUBLE_EQ(pct(1.0, 0.0), 0.0);
}

TEST(FmtFixed, Decimals)
{
    EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmtFixed(3.14159, 0), "3");
    EXPECT_EQ(fmtFixed(-1.05, 1), "-1.1");
}
