/**
 * @file
 * Unit and property tests for saturating/resetting counters.
 */

#include <gtest/gtest.h>

#include "common/sat_counter.hh"

using namespace percon;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, MsbSplitsRange)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.msb());  // 0
    c.increment();
    EXPECT_FALSE(c.msb());  // 1
    c.increment();
    EXPECT_TRUE(c.msb());   // 2
    c.increment();
    EXPECT_TRUE(c.msb());   // 3
}

TEST(SatCounter, RailDistance)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.railDistance(), 0u);
    c.increment();
    EXPECT_EQ(c.railDistance(), 1u);
    c.increment();
    EXPECT_EQ(c.railDistance(), 1u);
    c.increment();
    EXPECT_EQ(c.railDistance(), 0u);
}

TEST(SatCounter, SaturateAndReset)
{
    SatCounter c(3, 1);
    c.saturate();
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

class SatCounterWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidths, MaxMatchesWidth)
{
    unsigned bits = GetParam();
    SatCounter c(bits);
    EXPECT_EQ(c.max(), (1u << bits) - 1);
}

TEST_P(SatCounterWidths, IncrementsReachMaxExactly)
{
    unsigned bits = GetParam();
    SatCounter c(bits, 0);
    for (unsigned i = 0; i < c.max(); ++i)
        c.increment();
    EXPECT_EQ(c.value(), c.max());
    c.increment();
    EXPECT_EQ(c.value(), c.max());
}

TEST_P(SatCounterWidths, RailDistanceSymmetric)
{
    unsigned bits = GetParam();
    SatCounter lo(bits, 0), hi(bits);
    hi.saturate();
    for (unsigned step = 0; step <= lo.max(); ++step) {
        EXPECT_EQ(lo.railDistance(), hi.railDistance());
        lo.increment();
        hi.decrement();
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidths,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 12u));

TEST(ResettingCounter, CountsMissDistance)
{
    ResettingCounter c(4);
    for (int i = 0; i < 5; ++i)
        c.recordCorrect();
    EXPECT_EQ(c.value(), 5u);
    c.recordMispredict();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ResettingCounter, SaturatesAtWidthMax)
{
    ResettingCounter c(4);
    for (int i = 0; i < 100; ++i)
        c.recordCorrect();
    EXPECT_EQ(c.value(), 15u);
    EXPECT_EQ(c.max(), 15u);
}
