/**
 * @file
 * Differential tests for the shared vectorized perceptron kernels:
 * every implementation path must produce byte-identical results over
 * randomized geometries, histories and weights, including the
 * clamp-saturation edges the SIMD paths handle with saturating adds.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/perceptron_kernel.hh"
#include "common/rng.hh"

using namespace percon;

namespace {

struct PathGuard
{
    ~PathGuard() { kernel::resetPath(); }
};

std::vector<std::int16_t>
randomRow(Rng &rng, unsigned hist, int wmin, int wmax)
{
    std::vector<std::int16_t> row(kernel::rowStride(hist), 0);
    for (unsigned i = 0; i <= hist; ++i) {
        // Bias a quarter of the draws onto the saturation edges so
        // clamping is exercised constantly, not just by luck.
        switch (rng.next() & 7) {
          case 0:
            row[i] = static_cast<std::int16_t>(wmin);
            break;
          case 1:
            row[i] = static_cast<std::int16_t>(wmax);
            break;
          default:
            row[i] = static_cast<std::int16_t>(rng.nextRange(wmin, wmax));
        }
    }
    return row;
}

} // namespace

TEST(PerceptronKernel, RowStrideCoversWholeChunks)
{
    for (unsigned h = 1; h <= 63; ++h) {
        std::size_t s = kernel::rowStride(h);
        EXPECT_GE(s, h + 1) << h;
        EXPECT_EQ((s - 1) % kernel::kRowLanes, 0u) << h;
    }
    EXPECT_EQ(kernel::rowStride(1), 17u);
    EXPECT_EQ(kernel::rowStride(16), 17u);
    EXPECT_EQ(kernel::rowStride(17), 33u);
    EXPECT_EQ(kernel::rowStride(32), 33u);
    EXPECT_EQ(kernel::rowStride(63), 65u);
}

TEST(PerceptronKernel, ScalarMatchesHandComputedDotProduct)
{
    std::vector<std::int16_t> row(kernel::rowStride(4), 0);
    row[0] = 3;                        // bias
    row[1] = 5;                        // bit 0
    row[2] = -7;                       // bit 1
    row[3] = 11;                       // bit 2
    row[4] = -13;                      // bit 3
    // ghr = 0b0101: bits 0,2 taken; bits 1,3 not taken.
    std::int32_t expected = 3 + 5 - (-7) + 11 - (-13);
    EXPECT_EQ(kernel::dotProductScalar(row.data(), 0x5, 4), expected);
}

TEST(PerceptronKernel, DifferentialDotProduct)
{
    Rng rng(0xd07);
    const bool sse2 = kernel::pathAvailable(kernel::Path::Sse2);
    const bool avx2 = kernel::pathAvailable(kernel::Path::Avx2);
    for (int trial = 0; trial < 20000; ++trial) {
        unsigned hist = 1 + static_cast<unsigned>(rng.nextBelow(63));
        unsigned wbits = 2 + static_cast<unsigned>(rng.nextBelow(15));
        int wmax = (1 << (wbits - 1)) - 1;
        int wmin = -(1 << (wbits - 1));
        auto row = randomRow(rng, hist, wmin, wmax);
        std::uint64_t ghr = rng.next();

        std::int32_t ref =
            kernel::dotProductScalar(row.data(), ghr, hist);
        if (sse2) {
            ASSERT_EQ(kernel::dotProductSse2(row.data(), ghr, hist), ref)
                << "hist=" << hist << " wbits=" << wbits;
        }
        if (avx2) {
            ASSERT_EQ(kernel::dotProductAvx2(row.data(), ghr, hist), ref)
                << "hist=" << hist << " wbits=" << wbits;
        }
        ASSERT_EQ(kernel::dotProduct(row.data(), ghr, hist), ref);
    }
}

TEST(PerceptronKernel, DifferentialTrainRow)
{
    Rng rng(0x7e41);
    const bool sse2 = kernel::pathAvailable(kernel::Path::Sse2);
    const bool avx2 = kernel::pathAvailable(kernel::Path::Avx2);
    for (int trial = 0; trial < 20000; ++trial) {
        unsigned hist = 1 + static_cast<unsigned>(rng.nextBelow(63));
        unsigned wbits = 2 + static_cast<unsigned>(rng.nextBelow(15));
        int wmax = (1 << (wbits - 1)) - 1;
        int wmin = -(1 << (wbits - 1));
        auto row = randomRow(rng, hist, wmin, wmax);
        std::uint64_t ghr = rng.next();
        std::int32_t dir = (rng.next() & 1) ? 1 : -1;

        auto ref = row;
        kernel::trainRowScalar(ref.data(), ghr, hist, dir, wmin, wmax);
        if (sse2) {
            auto got = row;
            kernel::trainRowSse2(got.data(), ghr, hist, dir, wmin, wmax);
            ASSERT_EQ(got, ref)
                << "sse2 hist=" << hist << " wbits=" << wbits;
        }
        if (avx2) {
            auto got = row;
            kernel::trainRowAvx2(got.data(), ghr, hist, dir, wmin, wmax);
            ASSERT_EQ(got, ref)
                << "avx2 hist=" << hist << " wbits=" << wbits;
        }
        auto got = row;
        kernel::trainRow(got.data(), ghr, hist, dir, wmin, wmax);
        ASSERT_EQ(got, ref);
    }
}

TEST(PerceptronKernel, TrainPreservesZeroPadding)
{
    // The dotProduct no-tail trick relies on padding lanes staying
    // zero; trainRow must mask them out on every path.
    Rng rng(0xbad);
    for (unsigned hist : {1u, 7u, 15u, 16u, 17u, 31u, 33u, 63u}) {
        std::vector<std::int16_t> row(kernel::rowStride(hist), 0);
        for (int iter = 0; iter < 200; ++iter) {
            std::uint64_t ghr = rng.next();
            std::int32_t dir = (rng.next() & 1) ? 1 : -1;
            kernel::trainRowScalar(row.data(), ghr, hist, dir, -128, 127);
            if (kernel::pathAvailable(kernel::Path::Sse2))
                kernel::trainRowSse2(row.data(), ghr, hist, dir, -128,
                                     127);
            if (kernel::pathAvailable(kernel::Path::Avx2))
                kernel::trainRowAvx2(row.data(), ghr, hist, dir, -128,
                                     127);
        }
        for (std::size_t i = hist + 1; i < row.size(); ++i)
            ASSERT_EQ(row[i], 0) << "hist=" << hist << " lane=" << i;
    }
}

TEST(PerceptronKernel, SaturatesAtInt16Limits)
{
    // weightBits = 16 is the edge where the scalar int32 clamp and
    // the SIMD saturating add must agree: wmin - 1 = -32769 does not
    // fit in int16.
    const int wmin = -32768, wmax = 32767;
    const unsigned hist = 35;
    for (kernel::Path p : {kernel::Path::Scalar, kernel::Path::Sse2,
                           kernel::Path::Avx2}) {
        if (!kernel::pathAvailable(p))
            continue;
        PathGuard guard;
        kernel::forcePath(p);

        // All weights at wmin; ghr all-ones + dir -1 pushes every
        // history weight (and the bias) further down: all stick.
        std::vector<std::int16_t> row(kernel::rowStride(hist),
                                      static_cast<std::int16_t>(wmin));
        for (std::size_t i = hist + 1; i < row.size(); ++i)
            row[i] = 0;
        kernel::trainRow(row.data(), ~0ULL, hist, -1, wmin, wmax);
        for (unsigned i = 0; i <= hist; ++i)
            ASSERT_EQ(row[i], wmin) << kernel::pathName(p) << " " << i;

        // All weights at wmax; ghr all-ones + dir +1: all stick.
        row.assign(kernel::rowStride(hist),
                   static_cast<std::int16_t>(wmax));
        for (std::size_t i = hist + 1; i < row.size(); ++i)
            row[i] = 0;
        kernel::trainRow(row.data(), ~0ULL, hist, 1, wmin, wmax);
        for (unsigned i = 0; i <= hist; ++i)
            ASSERT_EQ(row[i], wmax) << kernel::pathName(p) << " " << i;
    }
}

TEST(PerceptronKernel, ForcePathSwitchesDispatch)
{
    PathGuard guard;
    kernel::forcePath(kernel::Path::Scalar);
    EXPECT_EQ(kernel::activePath(), kernel::Path::Scalar);
    if (kernel::pathAvailable(kernel::Path::Sse2)) {
        kernel::forcePath(kernel::Path::Sse2);
        EXPECT_EQ(kernel::activePath(), kernel::Path::Sse2);
    }
    kernel::resetPath();
    EXPECT_TRUE(kernel::pathAvailable(kernel::activePath()));
}

TEST(PerceptronKernel, PathNamesResolve)
{
    EXPECT_STREQ(kernel::pathName(kernel::Path::Scalar), "scalar");
    EXPECT_STREQ(kernel::pathName(kernel::Path::Sse2), "sse2");
    EXPECT_STREQ(kernel::pathName(kernel::Path::Avx2), "avx2");
}
