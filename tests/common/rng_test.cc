/**
 * @file
 * Unit tests for the deterministic RNG (common/rng.hh).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

using namespace percon;

TEST(Rng, SameSeedSameStream)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NamedStreamsAreIndependent)
{
    Rng a(7, "walk"), b(7, "fill");
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, SameNamedStreamReproduces)
{
    Rng a(7, "walk"), b(7, "walk");
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowStaysBelow)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.nextBernoulli(0.0));
        EXPECT_TRUE(rng.nextBernoulli(1.0));
        EXPECT_FALSE(rng.nextBernoulli(-0.5));
        EXPECT_TRUE(rng.nextBernoulli(1.5));
    }
}

TEST(Rng, BernoulliRateRoughlyMatches)
{
    Rng rng(42);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(8);
    double sum = 0, sum2 = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian(5.0, 2.0);
        sum += g;
        sum2 += g * g;
    }
    double mean = sum / n;
    double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, GeometricMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(0.25));
    // mean of failures-before-success = (1-p)/p = 3
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometriccertainSuccessIsZero)
{
    Rng rng(13);
    EXPECT_EQ(rng.nextGeometric(1.0), 0u);
}

TEST(Rng, Mix64IsStateless)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
    EXPECT_NE(mix64(12345), mix64(12346));
}
