/**
 * @file
 * Unit tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/csv.hh"

using namespace percon;

namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(Csv, WritesHeaderOnceAndRows)
{
    std::string path = tempPath("basic.csv");
    std::remove(path.c_str());
    {
        CsvWriter w(path, {"a", "b"});
        w.addRow({"1", "2"});
    }
    {
        CsvWriter w(path, {"a", "b"});  // append: no second header
        w.addRow({"3", "4"});
    }
    EXPECT_EQ(slurp(path), "a,b\n1,2\n3,4\n");
}

TEST(Csv, EscapesCommasAndQuotes)
{
    std::string path = tempPath("escape.csv");
    std::remove(path.c_str());
    {
        CsvWriter w(path, {"x"});
        w.addRow({"hello, world"});
        w.addRow({"say \"hi\""});
    }
    EXPECT_EQ(slurp(path), "x\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Csv, FromEnvDisabledReturnsNull)
{
    ::unsetenv("PERCON_CSV_DIR");
    EXPECT_EQ(CsvWriter::fromEnv("t", {"a"}), nullptr);
}

TEST(Csv, FromEnvWritesIntoDirectory)
{
    std::string dir = ::testing::TempDir();
    ::setenv("PERCON_CSV_DIR", dir.c_str(), 1);
    std::string path = dir + "/envtest.csv";
    std::remove(path.c_str());
    {
        auto w = CsvWriter::fromEnv("envtest", {"c"});
        ASSERT_NE(w, nullptr);
        w->addRow({"v"});
    }
    EXPECT_EQ(slurp(path), "c\nv\n");
    ::unsetenv("PERCON_CSV_DIR");
}

TEST(CsvDeath, RowWidthMismatchPanics)
{
    std::string path = tempPath("width.csv");
    std::remove(path.c_str());
    CsvWriter w(path, {"a", "b"});
    EXPECT_DEATH(w.addRow({"only"}), "CSV row width");
}
