/**
 * @file
 * Unit tests for branch history registers.
 */

#include <gtest/gtest.h>

#include "common/history.hh"

using namespace percon;

TEST(HistoryRegister, PushShiftsInAtBitZero)
{
    HistoryRegister h(8);
    h.push(true);
    EXPECT_EQ(h.bits(), 0b1ULL);
    h.push(false);
    EXPECT_EQ(h.bits(), 0b10ULL);
    h.push(true);
    EXPECT_EQ(h.bits(), 0b101ULL);
    EXPECT_TRUE(h.bit(0));
    EXPECT_FALSE(h.bit(1));
    EXPECT_TRUE(h.bit(2));
}

TEST(HistoryRegister, MaskDropsOldBits)
{
    HistoryRegister h(4);
    for (int i = 0; i < 10; ++i)
        h.push(true);
    EXPECT_EQ(h.bits(), 0xfULL);
    h.push(false);
    EXPECT_EQ(h.bits(), 0b1110ULL);
}

TEST(HistoryRegister, RestoreRoundTrip)
{
    HistoryRegister h(16);
    h.push(true);
    h.push(false);
    std::uint64_t snap = h.bits();
    h.push(true);
    h.push(true);
    h.restore(snap);
    EXPECT_EQ(h.bits(), snap);
}

TEST(HistoryRegister, SignedBitBipolar)
{
    HistoryRegister h(8);
    h.push(true);
    h.push(false);
    EXPECT_EQ(h.signedBit(0), -1);
    EXPECT_EQ(h.signedBit(1), 1);
}

TEST(HistoryRegister, ClearZeroes)
{
    HistoryRegister h(8);
    h.push(true);
    h.clear();
    EXPECT_EQ(h.bits(), 0u);
}

TEST(HistoryRegister, FullWidth64)
{
    HistoryRegister h(64);
    for (int i = 0; i < 64; ++i)
        h.push(true);
    EXPECT_EQ(h.bits(), ~0ULL);
}

class HistoryLengths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HistoryLengths, OnlyLengthBitsSurvive)
{
    unsigned len = GetParam();
    HistoryRegister h(len);
    for (int i = 0; i < 100; ++i)
        h.push(true);
    if (len >= 64) {
        EXPECT_EQ(h.bits(), ~0ULL);
    } else {
        EXPECT_EQ(h.bits(), (1ULL << len) - 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, HistoryLengths,
                         ::testing::Values(1u, 4u, 16u, 32u, 63u, 64u));

TEST(SpecHistoryLike, ReplayAfterRestoreMatchesFreshRun)
{
    // Property: restoring a checkpoint and replaying the same pushes
    // yields the same final state as a register that never diverged.
    HistoryRegister a(32), b(32);
    bool prefix[] = {true, false, false, true, true};
    for (bool t : prefix) {
        a.push(t);
        b.push(t);
    }
    std::uint64_t snap = a.bits();
    a.push(true);
    a.push(true);
    a.restore(snap);
    bool suffix[] = {false, true, false};
    for (bool t : suffix) {
        a.push(t);
        b.push(t);
    }
    EXPECT_EQ(a.bits(), b.bits());
}
