/**
 * @file
 * Unit tests for the density-function histogram.
 */

#include <gtest/gtest.h>

#include "common/histogram.hh"

using namespace percon;

TEST(Histogram, BucketsCoverRange)
{
    Histogram h(-10, 10, 5);
    EXPECT_EQ(h.numBuckets(), 5u);  // [-10..-6][-5..-1][0..4][5..9][10..]
    EXPECT_EQ(h.bucketLo(0), -10);
    EXPECT_EQ(h.bucketLo(1), -5);
}

TEST(Histogram, AddCountsInRightBucket)
{
    Histogram h(0, 9, 5);
    h.add(0);
    h.add(4);
    h.add(5);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges)
{
    Histogram h(0, 9, 5);
    h.add(-100);
    h.add(100);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(h.numBuckets() - 1), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, MassInRange)
{
    Histogram h(-20, 20, 10);
    h.add(-15);
    h.add(-5);
    h.add(5);
    h.add(15);
    EXPECT_EQ(h.massInRange(-20, 20), 4u);
    EXPECT_EQ(h.massInRange(0, 20), 2u);
    EXPECT_EQ(h.massInRange(-9, -1), 1u);
}

TEST(Histogram, MeanTracksSamples)
{
    Histogram h(-100, 100, 1);
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, ModeIsBusiestBucketCenter)
{
    Histogram h(0, 99, 10);
    h.add(5);
    h.add(57);
    h.add(52);
    EXPECT_NEAR(h.mode(), 54.5, 1e-9);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h(0, 10, 1);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.mode(), 0.0);
}

TEST(Histogram, DumpRestrictsRange)
{
    Histogram h(0, 99, 10);
    h.add(5);
    h.add(95);
    std::string all = h.dump(0, 99);
    std::string low = h.dump(0, 9);
    EXPECT_NE(all.find("94.5"), std::string::npos);
    EXPECT_EQ(low.find("94.5"), std::string::npos);
    EXPECT_NE(low.find("4.5"), std::string::npos);
}

TEST(Histogram, DefaultConstructedIsEmpty)
{
    Histogram h;
    EXPECT_EQ(h.numBuckets(), 0u);
    EXPECT_EQ(h.total(), 0u);
}
