/**
 * @file
 * Unit tests for the ASCII table renderer.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace percon;

TEST(AsciiTable, RendersHeaderAndRows)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("| name "), std::string::npos);
    EXPECT_NE(out.find("| alpha "), std::string::npos);
    EXPECT_NE(out.find("| 22 "), std::string::npos);
}

TEST(AsciiTable, ColumnsAlignToWidestCell)
{
    AsciiTable t({"x"});
    t.addRow({"longest-cell"});
    t.addRow({"s"});
    std::string out = t.render();
    // Every line should have equal length.
    std::size_t first_len = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        std::size_t eol = out.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        EXPECT_EQ(eol - pos, first_len);
        pos = eol + 1;
    }
}

TEST(AsciiTable, SeparatorRendersRule)
{
    AsciiTable t({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string out = t.render();
    // header rule + top + separator + bottom = 4 rules
    int rules = 0;
    std::size_t pos = 0;
    while ((pos = out.find("+-", pos)) != std::string::npos) {
        ++rules;
        pos += 2;
    }
    EXPECT_EQ(rules, 4);
}

TEST(AsciiTableDeath, RowWidthMismatchPanics)
{
    AsciiTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}
