/**
 * @file
 * Tests for strict environment-variable parsing. The old
 * std::atoll-based parsing silently accepted garbage as 0 and
 * trailing junk ("50000abc" -> 50000); envInt64 must reject both.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

using namespace percon;

namespace {

class EnvTest : public ::testing::Test
{
  protected:
    void TearDown() override { ::unsetenv("PERCON_ENV_TEST"); }

    void
    setVar(const char *value)
    {
        ::setenv("PERCON_ENV_TEST", value, 1);
    }
};

} // namespace

TEST_F(EnvTest, UnsetReturnsNullopt)
{
    ::unsetenv("PERCON_ENV_TEST");
    EXPECT_FALSE(envInt64("PERCON_ENV_TEST").has_value());
}

TEST_F(EnvTest, ParsesPlainIntegers)
{
    setVar("600000");
    EXPECT_EQ(envInt64("PERCON_ENV_TEST"), 600000);
    setVar("-25");
    EXPECT_EQ(envInt64("PERCON_ENV_TEST"), -25);
}

TEST_F(EnvTest, RejectsTrailingJunk)
{
    setVar("50000abc");
    EXPECT_FALSE(envInt64("PERCON_ENV_TEST").has_value());
    setVar("1e6");
    EXPECT_FALSE(envInt64("PERCON_ENV_TEST").has_value());
    setVar("12 ");
    EXPECT_FALSE(envInt64("PERCON_ENV_TEST").has_value());
}

TEST_F(EnvTest, RejectsNonNumbers)
{
    setVar("lots");
    EXPECT_FALSE(envInt64("PERCON_ENV_TEST").has_value());
    setVar("");
    EXPECT_FALSE(envInt64("PERCON_ENV_TEST").has_value());
}

TEST_F(EnvTest, RejectsOutOfRange)
{
    setVar("99999999999999999999999999");
    EXPECT_FALSE(envInt64("PERCON_ENV_TEST").has_value());
}

TEST_F(EnvTest, AtLeastEnforcesMinimum)
{
    setVar("9999");
    EXPECT_FALSE(
        envInt64AtLeast("PERCON_ENV_TEST", 10'000).has_value());
    setVar("10000");
    EXPECT_EQ(envInt64AtLeast("PERCON_ENV_TEST", 10'000), 10'000);
}
