/**
 * @file
 * Unit tests for the TAGE-lite predictor.
 */

#include <gtest/gtest.h>

#include "bpred/tage.hh"
#include "common/rng.hh"

using namespace percon;

TEST(Tage, HistoryLengthsAreGeometric)
{
    TagePredictor p(1024, 256, 4, 4, 64);
    EXPECT_EQ(p.historyLength(0), 4u);
    EXPECT_EQ(p.historyLength(3), 64u);
    for (unsigned t = 1; t < 4; ++t)
        EXPECT_GT(p.historyLength(t), p.historyLength(t - 1));
}

TEST(Tage, LearnsBiasViaBase)
{
    TagePredictor p(1024, 256, 4, 4, 64);
    PredMeta m;
    for (int i = 0; i < 10; ++i)
        p.update(0x1000, 0, true, m);
    EXPECT_TRUE(p.predict(0x1000, 0, m));
}

TEST(Tage, LearnsShortHistoryCorrelation)
{
    // Outcome = history bit 0: the shortest tagged table captures it.
    TagePredictor p(1024, 512, 4, 4, 64);
    PredMeta m;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t h = i % 2;
        p.update(0x2000, h, h & 1, m);
    }
    EXPECT_TRUE(p.predict(0x2000, 1, m));
    EXPECT_FALSE(p.predict(0x2000, 0, m));
}

TEST(Tage, LearnsLongPeriodPattern)
{
    // A period-24 outcome pattern: each instance's 24-bit history
    // context uniquely identifies the phase, which is beyond a
    // 16-bit gshare but within TAGE's longer tagged tables. TAGE is
    // a *caching* predictor: it learns because the contexts repeat.
    TagePredictor p(1024, 1024, 4, 4, 64);
    PredMeta m;
    Rng shape(5);
    bool pattern[24];
    for (bool &b : pattern)
        b = shape.nextBernoulli(0.5);

    std::uint64_t ghr = 0;
    int correct = 0, total = 0;
    const int iters = 20000;
    for (int i = 0; i < iters; ++i) {
        bool outcome = pattern[i % 24];
        bool pred = p.predict(0x3000, ghr, m);
        if (i > iters / 2) {
            ++total;
            correct += pred == outcome;
        }
        p.update(0x3000, ghr, outcome, m);
        ghr = (ghr << 1) | (outcome ? 1u : 0u);
    }
    EXPECT_GT(correct / static_cast<double>(total), 0.95);
}

TEST(Tage, BeatsBimodalOnAlternation)
{
    TagePredictor p(1024, 512, 4, 4, 64);
    PredMeta m;
    std::uint64_t ghr = 0;
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        bool outcome = i % 2 == 0;
        correct += p.predict(0x4000, ghr, m) == outcome;
        p.update(0x4000, ghr, outcome, m);
        ghr = (ghr << 1) | (outcome ? 1u : 0u);
    }
    EXPECT_GT(correct / static_cast<double>(n), 0.9);
}

TEST(Tage, StorageBitsPositiveAndScales)
{
    TagePredictor small(1024, 256, 2, 4, 32);
    TagePredictor big(1024, 1024, 4, 4, 64);
    EXPECT_GT(big.storageBits(), small.storageBits());
}

TEST(TageDeath, BadGeometryPanics)
{
    EXPECT_DEATH({ TagePredictor p(1000, 256, 4, 4, 64); },
                 "power of two");
    EXPECT_DEATH({ TagePredictor p(1024, 256, 4, 32, 16); },
                 "history range");
}
