/**
 * @file
 * Unit tests for the PAs local-history predictor.
 */

#include <gtest/gtest.h>

#include "bpred/pas.hh"

using namespace percon;

TEST(PAs, LearnsLocalAlternation)
{
    // A strict alternator is invisible to global predictors but
    // trivial for a local-history scheme.
    PAsPredictor p(256, 8, 4);
    PredMeta m;
    bool outcome = false;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        p.update(0x1000, 0, outcome, m);
    }
    // After training, prediction must continue the alternation.
    int correct = 0;
    for (int i = 0; i < 20; ++i) {
        outcome = !outcome;
        correct += p.predict(0x1000, 0, m) == outcome;
        p.update(0x1000, 0, outcome, m);
    }
    EXPECT_GE(correct, 18);
}

TEST(PAs, LearnsShortRepeatingPattern)
{
    PAsPredictor p(256, 10, 4);
    PredMeta m;
    const bool pattern[] = {true, true, false, true, false};
    for (int i = 0; i < 1000; ++i)
        p.update(0x2000, 0, pattern[i % 5], m);
    int correct = 0;
    for (int i = 0; i < 25; ++i) {
        bool outcome = pattern[i % 5];
        correct += p.predict(0x2000, 0, m) == outcome;
        p.update(0x2000, 0, outcome, m);
    }
    EXPECT_GE(correct, 23);
}

TEST(PAs, PatternRegisterShifts)
{
    PAsPredictor p(256, 4, 4);
    PredMeta m;
    p.update(0x3000, 0, true, m);
    p.update(0x3000, 0, false, m);
    p.update(0x3000, 0, true, m);
    EXPECT_EQ(p.patternFor(0x3000), 0b101u);
}

TEST(PAs, PatternMaskedToLocalBits)
{
    PAsPredictor p(256, 3, 4);
    PredMeta m;
    for (int i = 0; i < 10; ++i)
        p.update(0x3000, 0, true, m);
    EXPECT_EQ(p.patternFor(0x3000), 0b111u);
}

TEST(PAs, StorageBits)
{
    PAsPredictor p(4096, 10, 16);
    EXPECT_EQ(p.storageBits(), 4096u * 10 + 16u * 1024 * 2);
}

TEST(PAsDeath, BadGeometryPanics)
{
    EXPECT_DEATH({ PAsPredictor p(1000, 10, 16); }, "power of two");
}
