/**
 * @file
 * Unit tests for the branch target buffer.
 */

#include <gtest/gtest.h>

#include "bpred/btb.hh"

using namespace percon;

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(256, 4);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    auto t = btb.lookup(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x2000u);
    EXPECT_EQ(btb.misses(), 1u);
    EXPECT_EQ(btb.hits(), 1u);
}

TEST(Btb, UpdateRefreshesTarget)
{
    Btb btb(256, 4);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    Btb btb(8, 2);  // 4 sets x 2 ways
    // Three PCs in the same set (stride 4 sets * 4B = 16B).
    btb.update(0x1000, 0xa);
    btb.update(0x1010, 0xb);
    btb.lookup(0x1000);            // refresh first
    btb.update(0x1020, 0xc);       // evicts 0x1010
    EXPECT_TRUE(btb.lookup(0x1000).has_value());
    EXPECT_FALSE(btb.lookup(0x1010).has_value());
    EXPECT_TRUE(btb.lookup(0x1020).has_value());
}

TEST(Btb, DistinctPcsIndependent)
{
    Btb btb(256, 4);
    btb.update(0x1000, 0xa);
    btb.update(0x2000, 0xb);
    EXPECT_EQ(*btb.lookup(0x1000), 0xau);
    EXPECT_EQ(*btb.lookup(0x2000), 0xbu);
}

TEST(Btb, StorageBitsScaleWithEntries)
{
    Btb small(256, 4), big(4096, 4);
    EXPECT_EQ(big.storageBits(), small.storageBits() * 16);
}

TEST(BtbDeath, BadGeometryPanics)
{
    EXPECT_DEATH({ Btb b(100, 4); }, "power of two");
}
