/**
 * @file
 * Unit tests for the bimodal predictor.
 */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"

using namespace percon;

TEST(Bimodal, LearnsAlwaysTaken)
{
    BimodalPredictor p(1024);
    PredMeta m;
    for (int i = 0; i < 4; ++i) {
        p.predict(0x1000, 0, m);
        p.update(0x1000, 0, true, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 0, m));
}

TEST(Bimodal, LearnsAlwaysNotTaken)
{
    BimodalPredictor p(1024);
    PredMeta m;
    for (int i = 0; i < 4; ++i) {
        p.predict(0x1000, 0, m);
        p.update(0x1000, 0, false, m);
    }
    EXPECT_FALSE(p.predict(0x1000, 0, m));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor p(1024);
    PredMeta m;
    for (int i = 0; i < 4; ++i)
        p.update(0x1000, 0, true, m);
    p.update(0x1000, 0, false, m);
    EXPECT_TRUE(p.predict(0x1000, 0, m));  // still taken
    p.update(0x1000, 0, false, m);
    EXPECT_FALSE(p.predict(0x1000, 0, m)); // now flipped
}

TEST(Bimodal, IgnoresHistory)
{
    BimodalPredictor p(1024);
    PredMeta m;
    for (int i = 0; i < 4; ++i)
        p.update(0x2000, 0, true, m);
    EXPECT_EQ(p.predict(0x2000, 0x0, m), p.predict(0x2000, ~0ULL, m));
}

TEST(Bimodal, DistinctPcsIndependent)
{
    BimodalPredictor p(1024);
    PredMeta m;
    for (int i = 0; i < 4; ++i) {
        p.update(0x1000, 0, true, m);
        p.update(0x1004, 0, false, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 0, m));
    EXPECT_FALSE(p.predict(0x1004, 0, m));
}

TEST(Bimodal, AliasingWrapsAtTableSize)
{
    BimodalPredictor p(16);
    PredMeta m;
    // PCs 16*4 = 64 bytes apart alias in a 16-entry table.
    for (int i = 0; i < 4; ++i)
        p.update(0x1000, 0, true, m);
    EXPECT_TRUE(p.predict(0x1000 + 16 * 4, 0, m));
}

TEST(Bimodal, StorageBits)
{
    BimodalPredictor p(16 * 1024, 2);
    EXPECT_EQ(p.storageBits(), 32u * 1024);
}

TEST(Bimodal, CounterForExposesState)
{
    BimodalPredictor p(1024);
    PredMeta m;
    for (int i = 0; i < 4; ++i)
        p.update(0x3000, 0, true, m);
    EXPECT_EQ(p.counterFor(0x3000).value(), 3u);
}

TEST(BimodalDeath, NonPowerOfTwoPanics)
{
    EXPECT_DEATH({ BimodalPredictor p(1000); }, "power of two");
}
