/**
 * @file
 * Unit tests for the McFarling combined predictor.
 */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"
#include "bpred/factory.hh"
#include "bpred/gshare.hh"
#include "bpred/hybrid.hh"
#include "common/rng.hh"

using namespace percon;

namespace {

std::unique_ptr<HybridPredictor>
smallHybrid()
{
    return std::make_unique<HybridPredictor>(
        std::make_unique<BimodalPredictor>(1024),
        std::make_unique<GsharePredictor>(1024, 10), 1024, "test");
}

} // namespace

TEST(Hybrid, ChoosesBimodalWhenGshareCold)
{
    // A biased-not-taken branch: bimodal learns it; gshare keeps
    // seeing fresh histories (cold counters predict taken). The
    // chooser must migrate to bimodal.
    auto h = smallHybrid();
    PredMeta m;
    Rng rng(1);
    int correct = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t hist = rng.next();
        bool pred = h->predict(0x1000, hist, m);
        correct += pred == false;
        h->update(0x1000, hist, false, m);
    }
    EXPECT_GT(correct / static_cast<double>(n), 0.95);
}

TEST(Hybrid, ChoosesGshareForHistoryPattern)
{
    // Outcome = history bit 0; bimodal can only get ~50%, gshare
    // learns it exactly. The chooser must migrate to gshare.
    auto h = smallHybrid();
    PredMeta m;
    int correct = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t hist = (i / 3) % 2;  // slow alternation
        bool outcome = hist & 1;
        bool pred = h->predict(0x2000, hist, m);
        if (i > n / 2)
            correct += pred == outcome;
        h->update(0x2000, hist, outcome, m);
    }
    EXPECT_GT(correct / static_cast<double>(n / 2), 0.95);
}

TEST(Hybrid, StorageSumsComponents)
{
    auto h = std::make_unique<HybridPredictor>(
        std::make_unique<BimodalPredictor>(1024),
        std::make_unique<GsharePredictor>(2048, 11), 512, "test");
    EXPECT_EQ(h->storageBits(), 1024u * 2 + 2048u * 2 + 512u * 2);
}

TEST(Hybrid, BaselineMatchesPaperTable1)
{
    auto h = makeBaselineHybrid();
    EXPECT_STREQ(h->name(), "bimodal-gshare");
    // 16K bimodal (2b) + 64K gshare (2b) + 64K meta (2b)
    EXPECT_EQ(h->storageBits(),
              16u * 1024 * 2 + 64u * 1024 * 2 + 64u * 1024 * 2);
}

TEST(Hybrid, GsharePerceptronBuilds)
{
    auto h = makeGsharePerceptronHybrid();
    EXPECT_STREQ(h->name(), "gshare-perceptron");
    PredMeta m;
    h->predict(0x1234, 0x56, m);
}

TEST(Factory, AllNamesConstruct)
{
    for (const auto &name : predictorNames()) {
        auto p = makePredictor(name);
        ASSERT_NE(p, nullptr) << name;
        PredMeta m;
        p->predict(0x1000, 0x2, m);
        p->update(0x1000, 0x2, true, m);
    }
}

TEST(FactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT({ auto p = makePredictor("oracle9000"); },
                ::testing::ExitedWithCode(1), "unknown predictor");
}
