/**
 * @file
 * Unit tests for the Jimenez-Lin perceptron direction predictor.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bpred/factory.hh"
#include "bpred/perceptron_pred.hh"
#include "common/rng.hh"

using namespace percon;

TEST(PerceptronPred, LearnsBias)
{
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    for (int i = 0; i < 100; ++i) {
        p.predict(0x1000, 0, m);
        p.update(0x1000, 0, true, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 0, m));
    EXPECT_GT(p.output(0x1000, 0), 0);
}

TEST(PerceptronPred, LearnsSingleHistoryBit)
{
    // Outcome follows history bit 3.
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t h = rng.next() & 0xffff;
        bool outcome = (h >> 3) & 1;
        p.predict(0x2000, h, m);
        p.update(0x2000, h, outcome, m);
    }
    int correct = 0;
    Rng check(2);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t h = check.next() & 0xffff;
        bool outcome = (h >> 3) & 1;
        correct += p.predict(0x2000, h, m) == outcome;
    }
    EXPECT_GE(correct, 195);
}

TEST(PerceptronPred, CannotLearnParity)
{
    // XOR of two bits is not linearly separable: accuracy stays
    // near chance.
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    Rng rng(3);
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t h = rng.next() & 0xffff;
        bool outcome = ((h >> 1) & 1) ^ ((h >> 5) & 1);
        correct += p.predict(0x3000, h, m) == outcome;
        p.update(0x3000, h, outcome, m);
    }
    EXPECT_NEAR(correct / static_cast<double>(n), 0.5, 0.08);
}

TEST(PerceptronPred, ThetaDefaultsToJimenezLin)
{
    PerceptronPredictor p(64, 32, 8);
    EXPECT_EQ(p.theta(), static_cast<int>(1.93 * 32 + 14));
}

TEST(PerceptronPred, NoTrainingBeyondTheta)
{
    PerceptronPredictor p(64, 8, 8, 10);
    PredMeta m;
    // Saturate the bias well beyond theta.
    for (int i = 0; i < 60; ++i) {
        p.predict(0x4000, 0, m);
        p.update(0x4000, 0, true, m);
    }
    std::int32_t before = p.output(0x4000, 0);
    EXPECT_GT(before, 10);
    // A correct prediction with |y| > theta must not change weights.
    p.predict(0x4000, 0, m);
    p.update(0x4000, 0, true, m);
    EXPECT_EQ(p.output(0x4000, 0), before);
}

TEST(PerceptronPred, WeightsSaturate)
{
    PerceptronPredictor p(64, 4, 4, 1000000);
    PredMeta m;
    for (int i = 0; i < 200; ++i) {
        p.predict(0x5000, 0xf, m);
        p.update(0x5000, 0xf, true, m);
    }
    // 4-bit weights: max 7 each; |y| <= (4+1)*7
    EXPECT_LE(p.output(0x5000, 0xf), 5 * 7);
}

TEST(PerceptronPred, MetaCarriesOutput)
{
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    p.predict(0x6000, 0x12, m);
    EXPECT_EQ(m.perceptronOut, p.output(0x6000, 0x12));
}

TEST(PerceptronPred, FactoryParsesExplicitHistoryLength)
{
    // "perceptron-hN" selects the history length; bare "perceptron"
    // stays the paper's h=32 default.
    auto h32 = makePredictor("perceptron");
    auto h48 = makePredictor("perceptron-h48");
    auto h63 = makePredictor("perceptron-h63");
    EXPECT_EQ(dynamic_cast<PerceptronPredictor &>(*h32).historyBits(),
              32u);
    EXPECT_EQ(dynamic_cast<PerceptronPredictor &>(*h48).historyBits(),
              48u);
    EXPECT_EQ(dynamic_cast<PerceptronPredictor &>(*h63).historyBits(),
              63u);
}

TEST(PerceptronPred, StorageReportsConfiguredWeightBits)
{
    // Regression: storageBits used to report weightBits + 1 per
    // weight instead of the configured width.
    PerceptronPredictor p(128, 32, 8);
    EXPECT_EQ(p.storageBits(), 128u * 33u * 8u);
    PerceptronPredictor q(64, 16, 6);
    EXPECT_EQ(q.storageBits(), 64u * 17u * 6u);
}

TEST(PerceptronPred, WeightsRoundTripThroughStream)
{
    PerceptronPredictor trained(64, 24, 8);
    PredMeta m;
    Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        Addr pc = 0x8000 + (rng.next() & 0xff) * 4;
        std::uint64_t h = rng.next();
        trained.predict(pc, h, m);
        trained.update(pc, h, rng.nextBernoulli(0.6), m);
    }

    std::stringstream ss;
    trained.saveWeights(ss);

    PerceptronPredictor restored(64, 24, 8);
    ASSERT_TRUE(restored.loadWeights(ss));

    Rng check(43);
    for (int i = 0; i < 1000; ++i) {
        Addr pc = 0x8000 + (check.next() & 0xff) * 4;
        std::uint64_t h = check.next();
        ASSERT_EQ(restored.output(pc, h), trained.output(pc, h));
    }

    // Byte-identical re-serialization.
    std::stringstream again;
    restored.saveWeights(again);
    EXPECT_EQ(again.str(), ss.str());
}

TEST(PerceptronPred, LoadRejectsGeometryMismatch)
{
    PerceptronPredictor a(64, 24, 8);
    std::stringstream ss;
    a.saveWeights(ss);

    PerceptronPredictor wrongEntries(128, 24, 8);
    EXPECT_FALSE(wrongEntries.loadWeights(ss));
    ss.clear();
    ss.seekg(0);
    PerceptronPredictor wrongHistory(64, 16, 8);
    EXPECT_FALSE(wrongHistory.loadWeights(ss));
    ss.clear();
    ss.seekg(0);
    PerceptronPredictor wrongWidth(64, 24, 6);
    EXPECT_FALSE(wrongWidth.loadWeights(ss));
}

TEST(PerceptronPred, LoadRejectsGarbage)
{
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    p.predict(0x9000, 0x3, m);
    p.update(0x9000, 0x3, true, m);
    std::int32_t before = p.output(0x9000, 0x3);

    std::stringstream garbage("definitely not a weight table");
    EXPECT_FALSE(p.loadWeights(garbage));
    std::stringstream empty;
    EXPECT_FALSE(p.loadWeights(empty));
    // Failed loads leave the state untouched.
    EXPECT_EQ(p.output(0x9000, 0x3), before);
}

class PerceptronGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PerceptronGeometry, OutputBounded)
{
    auto [hist, wbits] = GetParam();
    PerceptronPredictor p(64, hist, wbits);
    PredMeta m;
    Rng rng(9);
    std::int32_t bound = (hist + 1) * ((1 << (wbits - 1)) - 1);
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t h = rng.next();
        p.predict(0x7000, h, m);
        p.update(0x7000, h, rng.nextBernoulli(0.5), m);
        EXPECT_LE(std::abs(p.output(0x7000, h)), bound);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PerceptronGeometry,
    ::testing::Combine(::testing::Values(8, 16, 32),
                       ::testing::Values(4, 6, 8)));
