/**
 * @file
 * Unit tests for the Jimenez-Lin perceptron direction predictor.
 */

#include <gtest/gtest.h>

#include "bpred/perceptron_pred.hh"
#include "common/rng.hh"

using namespace percon;

TEST(PerceptronPred, LearnsBias)
{
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    for (int i = 0; i < 100; ++i) {
        p.predict(0x1000, 0, m);
        p.update(0x1000, 0, true, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 0, m));
    EXPECT_GT(p.output(0x1000, 0), 0);
}

TEST(PerceptronPred, LearnsSingleHistoryBit)
{
    // Outcome follows history bit 3.
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t h = rng.next() & 0xffff;
        bool outcome = (h >> 3) & 1;
        p.predict(0x2000, h, m);
        p.update(0x2000, h, outcome, m);
    }
    int correct = 0;
    Rng check(2);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t h = check.next() & 0xffff;
        bool outcome = (h >> 3) & 1;
        correct += p.predict(0x2000, h, m) == outcome;
    }
    EXPECT_GE(correct, 195);
}

TEST(PerceptronPred, CannotLearnParity)
{
    // XOR of two bits is not linearly separable: accuracy stays
    // near chance.
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    Rng rng(3);
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t h = rng.next() & 0xffff;
        bool outcome = ((h >> 1) & 1) ^ ((h >> 5) & 1);
        correct += p.predict(0x3000, h, m) == outcome;
        p.update(0x3000, h, outcome, m);
    }
    EXPECT_NEAR(correct / static_cast<double>(n), 0.5, 0.08);
}

TEST(PerceptronPred, ThetaDefaultsToJimenezLin)
{
    PerceptronPredictor p(64, 32, 8);
    EXPECT_EQ(p.theta(), static_cast<int>(1.93 * 32 + 14));
}

TEST(PerceptronPred, NoTrainingBeyondTheta)
{
    PerceptronPredictor p(64, 8, 8, 10);
    PredMeta m;
    // Saturate the bias well beyond theta.
    for (int i = 0; i < 60; ++i) {
        p.predict(0x4000, 0, m);
        p.update(0x4000, 0, true, m);
    }
    std::int32_t before = p.output(0x4000, 0);
    EXPECT_GT(before, 10);
    // A correct prediction with |y| > theta must not change weights.
    p.predict(0x4000, 0, m);
    p.update(0x4000, 0, true, m);
    EXPECT_EQ(p.output(0x4000, 0), before);
}

TEST(PerceptronPred, WeightsSaturate)
{
    PerceptronPredictor p(64, 4, 4, 1000000);
    PredMeta m;
    for (int i = 0; i < 200; ++i) {
        p.predict(0x5000, 0xf, m);
        p.update(0x5000, 0xf, true, m);
    }
    // 4-bit weights: max 7 each; |y| <= (4+1)*7
    EXPECT_LE(p.output(0x5000, 0xf), 5 * 7);
}

TEST(PerceptronPred, MetaCarriesOutput)
{
    PerceptronPredictor p(64, 16, 8);
    PredMeta m;
    p.predict(0x6000, 0x12, m);
    EXPECT_EQ(m.perceptronOut, p.output(0x6000, 0x12));
}

class PerceptronGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PerceptronGeometry, OutputBounded)
{
    auto [hist, wbits] = GetParam();
    PerceptronPredictor p(64, hist, wbits);
    PredMeta m;
    Rng rng(9);
    std::int32_t bound = (hist + 1) * ((1 << (wbits - 1)) - 1);
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t h = rng.next();
        p.predict(0x7000, h, m);
        p.update(0x7000, h, rng.nextBernoulli(0.5), m);
        EXPECT_LE(std::abs(p.output(0x7000, h)), bound);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PerceptronGeometry,
    ::testing::Combine(::testing::Values(8, 16, 32),
                       ::testing::Values(4, 6, 8)));
