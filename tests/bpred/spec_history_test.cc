/**
 * @file
 * Tests for the speculative-history manager shared by predictors and
 * estimators.
 */

#include <gtest/gtest.h>

#include "bpred/branch_predictor.hh"

using namespace percon;

TEST(SpecHistory, PushShiftsPredictions)
{
    SpecHistory h;
    h.push(true);
    h.push(false);
    h.push(true);
    EXPECT_EQ(h.bits() & 0x7, 0b101u);
}

TEST(SpecHistory, RecoverRewindsAndAppliesTruth)
{
    SpecHistory h;
    h.push(true);
    std::uint64_t snap = h.checkpoint();
    // Mispredicted branch was predicted not-taken; wrong path pushed
    // garbage afterwards.
    h.push(false);
    h.push(true);
    h.push(true);
    // Recovery: rewind to the snapshot, apply the actual outcome.
    h.recover(snap, true);
    EXPECT_EQ(h.bits() & 0x3, 0b11u);
}

TEST(SpecHistory, RecoveryMatchesNonSpeculativeRun)
{
    // Property: a machine that mispredicts and recovers must end up
    // with the same history as one that never speculated.
    SpecHistory spec, arch;
    bool outcomes[] = {true, false, true, true, false, true};
    for (bool actual : outcomes) {
        bool predicted = !actual;  // always mispredicted
        std::uint64_t snap = spec.checkpoint();
        spec.push(predicted);
        spec.push(true);   // wrong-path pollution
        spec.push(false);
        spec.recover(snap, actual);
        arch.push(actual);
    }
    EXPECT_EQ(spec.bits(), arch.bits());
}

TEST(SpecHistory, ClearZeroes)
{
    SpecHistory h;
    h.push(true);
    h.clear();
    EXPECT_EQ(h.bits(), 0u);
}
