/**
 * @file
 * Unit tests for the gshare predictor.
 */

#include <gtest/gtest.h>

#include "bpred/gshare.hh"

using namespace percon;

TEST(Gshare, LearnsHistoryDependentPattern)
{
    // Branch taken iff previous branch was taken (history bit 0).
    GsharePredictor p(4096, 12);
    PredMeta m;
    for (int i = 0; i < 200; ++i) {
        std::uint64_t h = i % 2;
        bool outcome = h & 1;
        p.update(0x1000, h, outcome, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 1, m));
    EXPECT_FALSE(p.predict(0x1000, 0, m));
}

TEST(Gshare, DistinctHistoriesDistinctCounters)
{
    GsharePredictor p(4096, 12);
    PredMeta m;
    for (int i = 0; i < 4; ++i) {
        p.update(0x1000, 0x5, true, m);
        p.update(0x1000, 0xa, false, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 0x5, m));
    EXPECT_FALSE(p.predict(0x1000, 0xa, m));
}

TEST(Gshare, HistoryMaskLimitsReach)
{
    // With 4 history bits, histories differing only above bit 3
    // share a counter.
    GsharePredictor p(4096, 4);
    PredMeta m;
    for (int i = 0; i < 4; ++i)
        p.update(0x1000, 0x3, true, m);
    EXPECT_EQ(p.predict(0x1000, 0x3, m),
              p.predict(0x1000, 0xf3, m));
}

TEST(Gshare, ColdCounterWeaklyTaken)
{
    GsharePredictor p(4096, 12);
    PredMeta m;
    EXPECT_TRUE(p.predict(0x9999, 0x123, m));
}

TEST(Gshare, StorageBits)
{
    GsharePredictor p(64 * 1024, 16);
    EXPECT_EQ(p.storageBits(), 128u * 1024);
    EXPECT_EQ(p.historyBits(), 16u);
}

TEST(Gshare, MetaFieldsFilled)
{
    GsharePredictor p(4096, 12);
    PredMeta m;
    bool taken = p.predict(0x1000, 0, m);
    EXPECT_EQ(m.taken, taken);
    EXPECT_EQ(m.gsharePred, taken);
}

TEST(GshareDeath, BadHistoryLengthPanics)
{
    EXPECT_DEATH({ GsharePredictor p(4096, 0); }, "history");
}
