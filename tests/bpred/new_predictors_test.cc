/**
 * @file
 * Unit tests for the gselect, agree and YAGS predictors.
 */

#include <gtest/gtest.h>

#include "bpred/agree.hh"
#include "bpred/factory.hh"
#include "bpred/gselect.hh"
#include "bpred/yags.hh"
#include "common/rng.hh"

using namespace percon;

TEST(Gselect, LearnsHistoryDependentPattern)
{
    GselectPredictor p(4096, 4);
    PredMeta m;
    for (int i = 0; i < 200; ++i) {
        std::uint64_t h = i % 2;
        p.update(0x1000, h, h & 1, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 1, m));
    EXPECT_FALSE(p.predict(0x1000, 0, m));
}

TEST(Gselect, ConcatenationSeparatesPcAndHistory)
{
    // Unlike gshare's XOR, gselect keeps (pc, hist) pairs distinct
    // for nearby PCs and histories within its bit budget.
    GselectPredictor p(4096, 4);
    PredMeta m;
    for (int i = 0; i < 4; ++i) {
        p.update(0x1000, 0x3, true, m);
        p.update(0x1004, 0x3, false, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 0x3, m));
    EXPECT_FALSE(p.predict(0x1004, 0x3, m));
}

TEST(GselectDeath, HistoryMustLeavePcBits)
{
    EXPECT_DEATH({ GselectPredictor p(16, 4); }, "room for PC");
}

TEST(Agree, FirstOutcomeSetsBias)
{
    AgreePredictor p(1024, 8, 256);
    PredMeta m;
    p.update(0x1000, 0, true, m);
    EXPECT_TRUE(p.biasFor(0x1000));
    p.update(0x1004, 0, false, m);
    EXPECT_FALSE(p.biasFor(0x1004));
}

TEST(Agree, PredictsBiasWhenAgreeing)
{
    AgreePredictor p(1024, 8, 256);
    PredMeta m;
    for (int i = 0; i < 10; ++i)
        p.update(0x1000, 0x5, true, m);
    EXPECT_TRUE(p.predict(0x1000, 0x5, m));
}

TEST(Agree, LearnsDisagreementContexts)
{
    AgreePredictor p(1024, 8, 256);
    PredMeta m;
    // Bias set taken; in history context 0xA the branch goes
    // not-taken.
    p.update(0x1000, 0x5, true, m);
    for (int i = 0; i < 10; ++i) {
        p.update(0x1000, 0x5, true, m);
        p.update(0x1000, 0xa, false, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 0x5, m));
    EXPECT_FALSE(p.predict(0x1000, 0xa, m));
}

TEST(Agree, AliasedCountersMostlyHarmless)
{
    // Two opposite-biased branches forced onto the same agree
    // counter still predict correctly — the agree transform's
    // selling point.
    AgreePredictor p(2, 1, 256);  // tiny agree table: full aliasing
    PredMeta m;
    for (int i = 0; i < 20; ++i) {
        p.update(0x1000, 0, true, m);   // always taken
        p.update(0x1004, 0, false, m);  // always not-taken
    }
    EXPECT_TRUE(p.predict(0x1000, 0, m));
    EXPECT_FALSE(p.predict(0x1004, 0, m));
}

TEST(Yags, FollowsBiasWithoutExceptions)
{
    YagsPredictor p(1024, 512, 8, 8);
    PredMeta m;
    for (int i = 0; i < 8; ++i)
        p.update(0x1000, i, true, m);
    EXPECT_TRUE(p.predict(0x1000, 0x55, m));
}

TEST(Yags, ExceptionCacheOverridesBias)
{
    YagsPredictor p(1024, 512, 8, 8);
    PredMeta m;
    // Mostly taken; in context 0xC always not-taken.
    for (int i = 0; i < 30; ++i) {
        p.update(0x1000, 0x3, true, m);
        p.update(0x1000, 0xc, false, m);
    }
    EXPECT_TRUE(p.predict(0x1000, 0x3, m));
    EXPECT_FALSE(p.predict(0x1000, 0xc, m));
}

TEST(Yags, TagMismatchFallsBackToBias)
{
    YagsPredictor p(1024, 512, 8, 8);
    PredMeta m;
    for (int i = 0; i < 10; ++i)
        p.update(0x1000, 0x3, true, m);
    // A different PC mapping to the same cache set but different tag
    // must not pick up 0x1000's exceptions.
    EXPECT_TRUE(p.predict(0x1000, 0x3, m));
}

TEST(NewPredictors, FactoryAndAccuracySanity)
{
    // Each new predictor must beat always-taken on a simple biased
    // stream and come from the factory intact.
    for (const char *name : {"gselect", "agree", "yags"}) {
        auto p = makePredictor(name);
        PredMeta m;
        Rng rng(7);
        int correct = 0;
        const int n = 4000;
        for (int i = 0; i < n; ++i) {
            Addr pc = 0x1000 + (i % 16) * 4;
            bool outcome = (i % 16) < 12;  // per-PC constant
            std::uint64_t ghr = static_cast<std::uint64_t>(i);
            correct += p->predict(pc, ghr, m) == outcome;
            p->update(pc, ghr, outcome, m);
        }
        EXPECT_GT(correct / static_cast<double>(n), 0.9) << name;
    }
}
