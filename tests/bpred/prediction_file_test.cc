/**
 * @file
 * On-disk prediction-stream format tests: lossless roundtrip between
 * built and mmap'd (borrowed-lane) traces, and the rejection matrix —
 * a corrupt, truncated, version-bumped, foreign-endian file, or one
 * recorded under different predictor parameters (a different
 * canonical key), must be refused so the caller re-records, never
 * crash or silently replay a wrong stream.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bpred/prediction_file.hh"
#include "bpred/prediction_trace.hh"
#include "common/rng.hh"

namespace percon {
namespace {

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/percon-predfile-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

/** A deterministic pseudo-random stream shaped like a real run's:
 *  more predict calls than BTB probes, non-multiple-of-64 counts so
 *  the trailing partial words are exercised. */
std::shared_ptr<const PredictionTrace>
buildTrace(const std::string &key, Count preds = 1'237,
           Count btbs = 519, std::uint64_t seed = 0x9e3779b9)
{
    PredictionTraceBuilder b;
    Rng rng(seed);
    for (Count i = 0; i < preds; ++i)
        b.recordPred(rng.nextBernoulli(0.6));
    for (Count i = 0; i < btbs; ++i)
        b.recordBtb(rng.nextBernoulli(0.8));
    return b.finish(key);
}

void
expectBitExact(const PredictionTrace &a, const PredictionTrace &b)
{
    ASSERT_EQ(a.numPredCalls(), b.numPredCalls());
    ASSERT_EQ(a.numBtbProbes(), b.numBtbProbes());
    EXPECT_EQ(a.key(), b.key());
    for (Count i = 0; i < a.numPredCalls(); ++i)
        ASSERT_EQ(a.predTaken(i), b.predTaken(i)) << "pred bit " << i;
    for (Count i = 0; i < a.numBtbProbes(); ++i)
        ASSERT_EQ(a.btbHit(i), b.btbHit(i)) << "btb bit " << i;
    EXPECT_EQ(serializePredictionTrace(a), serializePredictionTrace(b));
}

TEST(PredictionFile, RoundTripIsBitExact)
{
    std::string key = "prog=gcc/machine=m1/pred=perceptron-h32";
    auto built = buildTrace(key);
    std::string path = makeTempDir() + "/gcc.pred";
    writeFile(path, serializePredictionTrace(*built));

    std::string why;
    auto mapped = openPredictionFile(path, key, &why);
    ASSERT_TRUE(mapped) << why;
    EXPECT_TRUE(mapped->borrowed());
    EXPECT_FALSE(built->borrowed());
    expectBitExact(*built, *mapped);
}

TEST(PredictionFile, EmptyStreamRoundTrips)
{
    // A run with zero branches records empty lanes; the file must
    // still publish and reopen cleanly (geometry words 0/0).
    std::string key = "prog=empty";
    PredictionTraceBuilder b;
    auto built = b.finish(key);
    std::string path = makeTempDir() + "/empty.pred";
    writeFile(path, serializePredictionTrace(*built));
    std::string why;
    auto mapped = openPredictionFile(path, key, &why);
    ASSERT_TRUE(mapped) << why;
    EXPECT_EQ(mapped->numPredCalls(), 0u);
    EXPECT_EQ(mapped->numBtbProbes(), 0u);
}

class PredictionFileReject : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        key_ = "prog=mcf,len=4096/machine=base/pred=perceptron-h32/"
               "shape=w2000,m8000/policy=pure";
        trace_ = buildTrace(key_);
        image_ = serializePredictionTrace(*trace_);
        dir_ = makeTempDir();
        path_ = dir_ + "/mcf.pred";
    }

    /** Write @p image and expect open to refuse it, returning a
     *  reason containing @p why_contains. */
    void expectRejected(const std::string &image,
                        const char *why_contains)
    {
        writeFile(path_, image);
        std::string why;
        auto trace = openPredictionFile(path_, key_, &why);
        EXPECT_EQ(trace, nullptr) << "accepted: " << why_contains;
        EXPECT_NE(why.find(why_contains), std::string::npos)
            << "got reason: " << why;
    }

    std::string key_;
    std::shared_ptr<const PredictionTrace> trace_;
    std::string image_;
    std::string dir_;
    std::string path_;
};

TEST_F(PredictionFileReject, IntactImageIsAccepted)
{
    writeFile(path_, image_);
    std::string why;
    EXPECT_NE(openPredictionFile(path_, key_, &why), nullptr) << why;
    EXPECT_TRUE(probePredictionFile(path_, key_));
}

TEST_F(PredictionFileReject, MissingFile)
{
    std::string why;
    EXPECT_EQ(openPredictionFile(dir_ + "/absent.pred", key_, &why),
              nullptr);
    EXPECT_FALSE(why.empty());
    EXPECT_FALSE(probePredictionFile(dir_ + "/absent.pred", key_));
}

TEST_F(PredictionFileReject, TruncatedFile)
{
    expectRejected(image_.substr(0, image_.size() - 64),
                   "truncated");
}

TEST_F(PredictionFileReject, ShorterThanHeader)
{
    expectRejected(image_.substr(0, 16), "shorter than");
}

TEST_F(PredictionFileReject, VersionBump)
{
    std::string bumped = image_;
    bumped[7] = '2';  // "PCPRED01" -> "PCPRED02"
    expectRejected(bumped, "magic");
}

TEST_F(PredictionFileReject, ForeignEndianness)
{
    // Byte-swap the endian tag in place: what a same-version writer
    // on an opposite-endian host would have produced.
    std::string foreign = image_;
    for (int i = 0; i < 4; ++i)
        std::swap(foreign[8 + i], foreign[15 - i]);
    expectRejected(foreign, "byte order");
}

TEST_F(PredictionFileReject, CorruptPayload)
{
    std::string corrupt = image_;
    corrupt[image_.size() - 7] ^= 0x40;
    expectRejected(corrupt, "payload hash");
}

TEST_F(PredictionFileReject, WrongPredictorParams)
{
    // A stream recorded under different predictor/BTB parameters has
    // a different canonical key; asking for the new key against the
    // old file must refuse (the hash check catches it first, the key
    // text check backstops hash collisions).
    writeFile(path_, image_);
    std::string other = key_;
    other.replace(other.find("h32"), 3, "h63");
    std::string why;
    EXPECT_EQ(openPredictionFile(path_, other, &why), nullptr);
    EXPECT_NE(why.find("key"), std::string::npos) << why;
    EXPECT_FALSE(probePredictionFile(path_, other));
}

TEST_F(PredictionFileReject, ProbeIsHeaderOnly)
{
    // A payload flip passes the header-only probe (by design: the
    // probe exists for cheap pre-sweep labels) but the full open
    // still refuses to serve the corrupt lanes.
    std::string corrupt = image_;
    corrupt[image_.size() - 7] ^= 0x40;
    writeFile(path_, corrupt);
    EXPECT_TRUE(probePredictionFile(path_, key_));
    EXPECT_EQ(openPredictionFile(path_, key_), nullptr);

    // ...while a header-level lie fails both.
    std::string other = key_ + "/different";
    EXPECT_FALSE(probePredictionFile(path_, other));
}

TEST(PredictionFile, MappedTraceOutlivesTheFile)
{
    // The mapping must stay valid for as long as the trace lives,
    // even after the file is unlinked (POSIX keeps mapped pages).
    std::string key = "prog=gzip/outlive";
    auto built = buildTrace(key, 777, 301, 0x1234);
    std::string path = makeTempDir() + "/gzip.pred";
    writeFile(path, serializePredictionTrace(*built));
    auto mapped = openPredictionFile(path, key);
    ASSERT_TRUE(mapped);
    ASSERT_EQ(std::remove(path.c_str()), 0);
    for (Count i = 0; i < built->numPredCalls(); ++i)
        ASSERT_EQ(built->predTaken(i), mapped->predTaken(i));
    EXPECT_EQ(serializePredictionTrace(*built),
              serializePredictionTrace(*mapped));
}

} // namespace
} // namespace percon
