/**
 * @file
 * Cross-product determinism: every (predictor, estimator) pair must
 * produce bit-identical classification results across repeated runs,
 * and estimator state must never be mutated by estimate() on wrong
 * paths (modelled here as interleaved un-trained estimates).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "bpred/factory.hh"
#include "confidence/factory.hh"
#include "core/front_end_sim.hh"
#include "trace/benchmarks.hh"

using namespace percon;

namespace {

struct RunOutcome
{
    Count mispredicted;
    Count lowConfidence;
    Count mbLow;
};

RunOutcome
runPair(const std::string &predictor_name,
        const std::string &estimator_name, bool interleave_probes)
{
    ProgramParams params = benchmarkSpec("gcc").program;
    params.numStaticBranches = 256;
    ProgramModel program(params);
    auto predictor = makePredictor(predictor_name);
    auto estimator = makeEstimator(estimator_name);

    std::uint64_t ghr = 0;
    RunOutcome out{0, 0, 0};
    for (int i = 0; i < 60'000; ++i) {
        unsigned skipped = 0;
        MicroOp br = program.nextBranch(skipped);
        PredMeta meta;
        bool pred = predictor->predict(br.pc, ghr, meta);
        if (interleave_probes) {
            // Wrong-path-style probes: must not perturb anything.
            estimator->estimate(br.pc ^ 0x40, ghr ^ 1, !pred);
            estimator->estimate(br.pc, ghr, pred);
        }
        ConfidenceInfo info = estimator->estimate(br.pc, ghr, pred);
        bool misp = pred != br.taken;
        out.mispredicted += misp;
        out.lowConfidence += info.low;
        out.mbLow += misp && info.low;
        predictor->update(br.pc, ghr, br.taken, meta);
        estimator->train(br.pc, ghr, pred, misp, info);
        ghr = (ghr << 1) | (br.taken ? 1u : 0u);
    }
    return out;
}

} // namespace

class PairDeterminism
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(PairDeterminism, RepeatedRunsIdentical)
{
    auto [pred, est] = GetParam();
    RunOutcome a = runPair(pred, est, false);
    RunOutcome b = runPair(pred, est, false);
    EXPECT_EQ(a.mispredicted, b.mispredicted);
    EXPECT_EQ(a.lowConfidence, b.lowConfidence);
    EXPECT_EQ(a.mbLow, b.mbLow);
}

TEST_P(PairDeterminism, ProbesDoNotPerturb)
{
    auto [pred, est] = GetParam();
    RunOutcome a = runPair(pred, est, false);
    RunOutcome b = runPair(pred, est, true);
    EXPECT_EQ(a.mispredicted, b.mispredicted);
    EXPECT_EQ(a.lowConfidence, b.lowConfidence);
    EXPECT_EQ(a.mbLow, b.mbLow);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, PairDeterminism,
    ::testing::Combine(
        ::testing::Values("bimodal-gshare", "gshare-perceptron",
                          "yags"),
        ::testing::Values("jrs-enhanced", "perceptron-cic",
                          "perceptron-tnt", "composite",
                          "ones-counting")));

/** Regression band: the headline Table 3 point must not silently
 *  drift as the code evolves. Measured 2026-07: PVN ~49%, Spec ~18%
 *  (aggregate over the 12 workloads, lambda=0). */
TEST(RegressionBand, PerceptronCicLambda0)
{
    ConfidenceMatrix all;
    FrontEndConfig cfg;
    cfg.warmupBranches = 50'000;
    cfg.measureBranches = 150'000;
    for (const auto &spec : allBenchmarks()) {
        ProgramModel program(spec.program);
        auto predictor = makePredictor("bimodal-gshare");
        auto est = makeEstimator("perceptron-cic");
        all.merge(
            runFrontEnd(program, *predictor, est.get(), cfg).matrix);
    }
    EXPECT_GT(all.pvn(), 0.40);
    EXPECT_LT(all.pvn(), 0.60);
    EXPECT_GT(all.spec(), 0.10);
    EXPECT_LT(all.spec(), 0.30);
}
