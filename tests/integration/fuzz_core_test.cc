/**
 * @file
 * Randomized robustness tests: drive the full core across random
 * machine geometries, policies and workloads, asserting the global
 * invariants hold everywhere (no panics, consistent accounting).
 */

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "confidence/factory.hh"
#include "common/rng.hh"
#include "core/timing_sim.hh"

using namespace percon;

namespace {

PipelineConfig
randomConfig(Rng &rng)
{
    PipelineConfig c;
    c.width = 1u << rng.nextRange(1, 3);           // 2..8
    c.frontEndDepth = static_cast<unsigned>(rng.nextRange(4, 30));
    c.backEndDepth = static_cast<unsigned>(rng.nextRange(2, 30));
    c.robSize = static_cast<unsigned>(rng.nextRange(32, 256));
    c.loadBuffers = static_cast<unsigned>(rng.nextRange(8, 64));
    c.storeBuffers = static_cast<unsigned>(rng.nextRange(8, 48));
    c.schedInt = static_cast<unsigned>(rng.nextRange(8, 64));
    c.schedMem = static_cast<unsigned>(rng.nextRange(8, 48));
    c.schedFp = static_cast<unsigned>(rng.nextRange(8, 64));
    c.unitsInt = static_cast<unsigned>(rng.nextRange(1, 6));
    c.unitsMem = static_cast<unsigned>(rng.nextRange(1, 4));
    c.unitsFp = static_cast<unsigned>(rng.nextRange(1, 2));
    c.traceCacheEnabled = rng.nextBernoulli(0.7);
    c.btbEnabled = rng.nextBernoulli(0.7);
    return c;
}

SpeculationControl
randomPolicy(Rng &rng)
{
    SpeculationControl sc;
    sc.gateThreshold = static_cast<unsigned>(rng.nextRange(0, 3));
    sc.reversalEnabled = rng.nextBernoulli(0.4);
    sc.confidenceLatency = static_cast<unsigned>(rng.nextRange(0, 12));
    if (sc.gateThreshold > 0)
        sc.oracleGating = rng.nextBernoulli(0.2);
    return sc;
}

} // namespace

class FuzzCore : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzCore, InvariantsHoldOnRandomMachines)
{
    Rng rng(0xf00d + static_cast<std::uint64_t>(GetParam()));
    const auto &names = benchmarkNames();
    std::string bench = names[rng.nextBelow(names.size())];
    const auto &estimators = estimatorNames();
    std::string est = estimators[rng.nextBelow(estimators.size())];

    PipelineConfig cfg = randomConfig(rng);
    SpeculationControl sc = randomPolicy(rng);
    bool needs_estimator =
        (sc.gateThreshold > 0 && !sc.oracleGating) || sc.reversalEnabled;

    TimingConfig t;
    t.warmupUops = 10'000;
    t.measureUops = 40'000;

    TimingResult r = runTiming(
        benchmarkSpec(bench), cfg, "bimodal-gshare",
        needs_estimator
            ? EstimatorFactory([&] { return makeEstimator(est); })
            : EstimatorFactory(),
        sc, t);

    const CoreStats &s = r.stats;
    EXPECT_GE(s.retiredUops, t.measureUops);
    // (fetched >= executed does not hold across the warmup stats
    // reset: uops fetched before the reset retire after it.)
    EXPECT_GE(s.executedUops, s.retiredUops);
    EXPECT_EQ(s.executedUops - s.retiredUops, s.wrongPathExecuted);
    EXPECT_GE(s.wrongPathFetched, s.wrongPathExecuted);
    EXPECT_GT(s.ipc(), 0.0);
    EXPECT_LE(s.mispredictsFinal, s.retiredBranches);
    EXPECT_EQ(s.reversalsGood + s.reversalsBad, s.reversals);
    if (sc.gateThreshold == 0) {
        EXPECT_EQ(s.gatedCycles, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCore, ::testing::Range(0, 24));
