/**
 * @file
 * Integration tests asserting the paper's headline claims hold
 * end-to-end on the calibrated workloads (scaled-down runs).
 */

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "confidence/jrs.hh"
#include "confidence/perceptron_conf.hh"
#include "confidence/perceptron_tnt.hh"
#include "core/front_end_sim.hh"
#include "core/timing_sim.hh"

using namespace percon;

namespace {

FrontEndConfig
frontCfg()
{
    FrontEndConfig cfg;
    cfg.warmupBranches = 60'000;
    cfg.measureBranches = 200'000;
    return cfg;
}

ConfidenceMatrix
runEstimator(const std::string &bench, ConfidenceEstimator &est)
{
    ProgramModel program(benchmarkSpec(bench).program);
    auto pred = makePredictor("bimodal-gshare");
    return runFrontEnd(program, *pred, &est, frontCfg()).matrix;
}

const char *kBenches[] = {"gzip", "mcf", "gcc", "twolf"};

} // namespace

/** §5.1 / Table 3: the perceptron estimator is at least twice as
 *  accurate (PVN) as enhanced JRS at comparable thresholds. */
TEST(PaperClaims, PerceptronTwiceAsAccurateAsJrs)
{
    ConfidenceMatrix jrs_all, perc_all;
    for (const char *b : kBenches) {
        JrsEstimator jrs(8192, 4, 15, true);
        jrs_all.merge(runEstimator(b, jrs));
        PerceptronConfParams p;
        p.lambda = 0;
        PerceptronConfidence perc(p);
        perc_all.merge(runEstimator(b, perc));
    }
    EXPECT_GT(perc_all.pvn(), 2.0 * jrs_all.pvn());
}

/** §5.1: JRS has higher coverage (Spec), the perceptron higher
 *  accuracy — the two estimators sit on opposite ends. */
TEST(PaperClaims, JrsCoversMorePerceptronIsMoreAccurate)
{
    ConfidenceMatrix jrs_all, perc_all;
    for (const char *b : kBenches) {
        JrsEstimator jrs(8192, 4, 15, true);
        jrs_all.merge(runEstimator(b, jrs));
        PerceptronConfParams p;
        p.lambda = 0;
        PerceptronConfidence perc(p);
        perc_all.merge(runEstimator(b, perc));
    }
    EXPECT_GT(jrs_all.spec(), perc_all.spec());
    EXPECT_GT(perc_all.pvn(), jrs_all.pvn());
}

/** Table 3 internal structure: lowering the perceptron threshold
 *  trades accuracy for coverage, monotonically. */
TEST(PaperClaims, PerceptronThresholdMonotonicity)
{
    double prev_pvn = 1.1, prev_spec = -0.1;
    for (int lambda : {25, 0, -25, -50}) {
        ConfidenceMatrix all;
        for (const char *b : kBenches) {
            PerceptronConfParams p;
            p.lambda = lambda;
            PerceptronConfidence perc(p);
            all.merge(runEstimator(b, perc));
        }
        EXPECT_LT(all.pvn(), prev_pvn) << "lambda " << lambda;
        EXPECT_GT(all.spec(), prev_spec) << "lambda " << lambda;
        prev_pvn = all.pvn();
        prev_spec = all.spec();
    }
}

/** §5.3: training with correct/incorrect outcomes beats training
 *  with taken/not-taken directions at matched coverage. */
TEST(PaperClaims, CicTrainingBeatsTntTraining)
{
    ConfidenceMatrix cic_all, tnt_all;
    for (const char *b : kBenches) {
        PerceptronConfParams p;
        p.lambda = -50;  // wide coverage point
        PerceptronConfidence cic(p);
        cic_all.merge(runEstimator(b, cic));
        PerceptronTntConfidence tnt(128, 32, 8, 30);
        tnt_all.merge(runEstimator(b, tnt));
    }
    // At comparable (or higher) coverage, cic is more accurate.
    EXPECT_GT(cic_all.pvn(), tnt_all.pvn());
}

/** §5.1 / Table 4 direction: perceptron-gated pipelines cut executed
 *  uops with small performance loss on the deep machine. */
TEST(PaperClaims, PerceptronGatingCutsWasteCheaply)
{
    TimingConfig t;
    t.warmupUops = 60'000;
    t.measureUops = 150'000;
    double u_sum = 0, p_sum = 0;
    for (const char *b : {"gzip", "mcf"}) {
        auto base = runTiming(benchmarkSpec(b),
                              PipelineConfig::deep40x4(),
                              "bimodal-gshare", nullptr, {}, t);
        SpeculationControl sc;
        sc.gateThreshold = 1;
        auto gated = runTiming(
            benchmarkSpec(b), PipelineConfig::deep40x4(),
            "bimodal-gshare",
            [] {
                PerceptronConfParams p;
                p.lambda = 0;
                return std::make_unique<PerceptronConfidence>(p);
            },
            sc, t);
        GatingMetrics m = gatingMetrics(base.stats, gated.stats);
        u_sum += m.uopReductionPct;
        p_sum += m.perfLossPct;
    }
    EXPECT_GT(u_sum / 2, 5.0);   // meaningful reduction
    EXPECT_LT(p_sum / 2, 6.0);   // small loss
}

/** Table 2 direction: wasted execution grows with pipeline depth
 *  and width. */
TEST(PaperClaims, WasteGrowsWithDepthAndWidth)
{
    TimingConfig t;
    t.warmupUops = 50'000;
    t.measureUops = 120'000;
    const auto &spec = benchmarkSpec("gzip");
    auto waste = [&](const PipelineConfig &cfg) {
        return runTiming(spec, cfg, "bimodal-gshare", nullptr, {}, t)
            .stats.executionIncreasePct();
    };
    double base = waste(PipelineConfig::base20x4());
    double deep = waste(PipelineConfig::deep40x4());
    double wide = waste(PipelineConfig::wide20x8());
    EXPECT_GT(deep, base * 1.2);
    EXPECT_GT(wide, base * 1.2);
}
