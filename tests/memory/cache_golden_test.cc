/**
 * @file
 * Golden-model test: the set-associative cache against a naive
 * reference implementation (per-set std::vector with explicit LRU
 * ordering), across random access streams and geometries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "memory/cache.hh"

using namespace percon;

namespace {

/** Obviously-correct reference: per-set MRU-ordered tag lists. */
class ReferenceCache
{
  public:
    ReferenceCache(std::size_t sets, unsigned ways, unsigned line_bytes)
        : sets_(sets), ways_(ways), lineBytes_(line_bytes)
    {
    }

    bool
    access(Addr addr)
    {
        Addr line = addr / lineBytes_;
        std::size_t set = line % sets_;
        auto &lru = sets_lru_[set];
        auto it = std::find(lru.begin(), lru.end(), line);
        if (it != lru.end()) {
            lru.erase(it);
            lru.insert(lru.begin(), line);  // MRU first
            return true;
        }
        lru.insert(lru.begin(), line);
        if (lru.size() > ways_)
            lru.pop_back();
        return false;
    }

  private:
    std::size_t sets_;
    unsigned ways_;
    unsigned lineBytes_;
    std::map<std::size_t, std::vector<Addr>> sets_lru_;
};

} // namespace

class CacheGolden
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGolden, MatchesReferenceOnRandomStream)
{
    auto [ways, footprint_lines] = GetParam();
    const unsigned line = 64;
    const std::size_t sets = 16;
    CacheParams params{"dut", sets * static_cast<unsigned>(ways) * line,
                       static_cast<unsigned>(ways), line};
    Cache dut(params);
    ReferenceCache ref(sets, static_cast<unsigned>(ways), line);

    Rng rng(0xcafe + ways * 131 + footprint_lines);
    for (int i = 0; i < 20000; ++i) {
        Addr addr =
            rng.nextBelow(static_cast<std::uint64_t>(footprint_lines)) *
                line +
            rng.nextBelow(line);
        ASSERT_EQ(dut.access(addr), ref.access(addr))
            << "divergence at op " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGolden,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(8, 64, 256)));

TEST(CacheGolden, ProbeAndFillAgreeWithAccess)
{
    CacheParams params{"dut", 4096, 4, 64};
    Cache dut(params);
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.nextBelow(512) * 64;
        bool present = dut.probe(addr);
        bool hit = dut.access(addr);
        EXPECT_EQ(present, hit);
    }
}
