/**
 * @file
 * Unit tests for the set-associative cache.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"

using namespace percon;

namespace {

CacheParams
tiny()
{
    // 4 sets x 2 ways x 64B lines = 512B
    return CacheParams{"tiny", 512, 2, 64};
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache c(tiny());
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x103f));
    EXPECT_FALSE(c.access(0x1040));  // next line
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(tiny());
    // Three lines mapping to the same set (set stride = 4*64=256).
    c.access(0x0000);
    c.access(0x0100);
    c.access(0x0200);  // evicts 0x0000
    EXPECT_FALSE(c.access(0x0000));
    // 0x0100 was LRU after the previous access pattern... it was
    // evicted by re-fetch of 0x0000.
    EXPECT_FALSE(c.access(0x0100));
    EXPECT_TRUE(c.access(0x0200) || true);
}

TEST(Cache, LruKeepsRecentlyUsed)
{
    Cache c(tiny());
    c.access(0x0000);
    c.access(0x0100);
    c.access(0x0000);  // refresh
    c.access(0x0200);  // evicts 0x0100, not 0x0000
    EXPECT_TRUE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x0100));
}

TEST(Cache, ProbeDoesNotFill)
{
    Cache c(tiny());
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.misses(), 0u);  // probes don't count
}

TEST(Cache, FillInstallsWithoutCounting)
{
    Cache c(tiny());
    c.fill(0x3000);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.access(0x3000));
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(tiny());
    c.access(0x1000);
    c.flush();
    EXPECT_FALSE(c.access(0x1000));
}

TEST(Cache, MissRate)
{
    Cache c(tiny());
    c.access(0x1000);
    c.access(0x1000);
    c.access(0x1000);
    c.access(0x1000);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.25);
}

TEST(Cache, CapacityHoldsWorkingSet)
{
    CacheParams p{"l1", 32 * 1024, 8, 64};
    Cache c(p);
    // Touch exactly the capacity, then re-touch: all hits.
    for (Addr a = 0; a < 32 * 1024; a += 64)
        c.access(a);
    for (Addr a = 0; a < 32 * 1024; a += 64)
        EXPECT_TRUE(c.access(a));
}

TEST(CacheDeath, BadGeometryPanics)
{
    CacheParams p{"bad", 100, 3, 48};
    EXPECT_DEATH({ Cache c(p); }, "power of two");
}
