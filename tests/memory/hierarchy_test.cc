/**
 * @file
 * Unit tests for the memory hierarchy timing model.
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

using namespace percon;

namespace {

HierarchyParams
small()
{
    HierarchyParams p;
    p.l1 = {"l1", 1024, 2, 64};
    p.l2 = {"l2", 8 * 1024, 4, 64};
    p.l1Latency = 3;
    p.l2Latency = 18;
    p.memLatency = 200;
    p.busCyclesPerLine = 4;
    p.prefetchEnabled = false;
    return p;
}

} // namespace

TEST(Hierarchy, L1HitLatency)
{
    MemoryHierarchy m(small());
    m.access(0x1000, 0, false);  // warm
    MemAccessResult r = m.access(0x1000, 10, false);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 3u);
}

TEST(Hierarchy, L2HitLatency)
{
    MemoryHierarchy m(small());
    m.access(0x1000, 0, false);  // fills both
    // Evict from tiny L1 with conflicting lines (same L1 set).
    m.access(0x1000 + 512, 1, false);
    m.access(0x1000 + 1024, 2, false);
    MemAccessResult r = m.access(0x1000, 100, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.latency, 3u + 18u);
}

TEST(Hierarchy, MemoryMissLatency)
{
    MemoryHierarchy m(small());
    MemAccessResult r = m.access(0x9000, 1000, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    EXPECT_EQ(r.latency, 3u + 18u + 200u);  // no queueing when idle
}

TEST(Hierarchy, BusContentionQueues)
{
    MemoryHierarchy m(small());
    // Two simultaneous misses: the second waits one transfer slot.
    MemAccessResult a = m.access(0x10000, 50, false);
    MemAccessResult b = m.access(0x20000, 50, false);
    EXPECT_EQ(a.latency, 3u + 18u + 200u);
    EXPECT_EQ(b.latency, 3u + 18u + 4u + 200u);
    EXPECT_EQ(m.totalBusWait(), 4u);
    EXPECT_EQ(m.memAccesses(), 2u);
}

TEST(Hierarchy, BusFreesOverTime)
{
    MemoryHierarchy m(small());
    m.access(0x10000, 50, false);
    // Far in the future: no queueing.
    MemAccessResult r = m.access(0x20000, 500, false);
    EXPECT_EQ(r.latency, 3u + 18u + 200u);
}

TEST(Hierarchy, PrefetchCoversStream)
{
    HierarchyParams p = small();
    p.prefetchEnabled = true;
    p.prefetchDegree = 4;
    MemoryHierarchy m(p);
    // Walk a stream at line granularity; after the detector locks
    // on, L2 misses stop.
    Count mem_before = 0;
    for (int i = 0; i < 32; ++i) {
        m.access(0x40000 + i * 64, i * 10, false);
        if (i == 4)
            mem_before = m.memAccesses();
    }
    // Most of the remaining lines were prefetched, not fetched from
    // memory on demand.
    EXPECT_LE(m.memAccesses() - mem_before, 6u);
}

TEST(Hierarchy, StoresDoNotTriggerPrefetch)
{
    HierarchyParams p = small();
    p.prefetchEnabled = true;
    MemoryHierarchy m(p);
    for (int i = 0; i < 8; ++i)
        m.access(0x80000 + i * 64, i, true);
    EXPECT_EQ(m.prefetcher().issued(), 0u);
}
