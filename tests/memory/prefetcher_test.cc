/**
 * @file
 * Unit tests for the stream prefetcher.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"
#include "memory/prefetcher.hh"

using namespace percon;

namespace {

CacheParams
l2ish()
{
    return CacheParams{"l2", 64 * 1024, 8, 64};
}

} // namespace

TEST(Prefetcher, DetectsAscendingStream)
{
    Cache target(l2ish());
    StreamPrefetcher pf(4, 2, 64);
    // Lines 0,1,2: by the third sequential line, confidence reaches
    // the issue threshold and lines ahead get filled.
    pf.observe(0 * 64, target);
    pf.observe(1 * 64, target);
    unsigned fetched = pf.observe(2 * 64, target);
    EXPECT_GT(fetched, 0u);
    EXPECT_TRUE(target.probe(3 * 64));
    EXPECT_TRUE(target.probe(4 * 64));
}

TEST(Prefetcher, IgnoresRandomAccesses)
{
    Cache target(l2ish());
    StreamPrefetcher pf(4, 2, 64);
    Count before = pf.issued();
    pf.observe(0x10000, target);
    pf.observe(0x50000, target);
    pf.observe(0x90000, target);
    pf.observe(0x20000, target);
    EXPECT_EQ(pf.issued(), before);
}

TEST(Prefetcher, TracksMultipleStreams)
{
    Cache target(l2ish());
    StreamPrefetcher pf(4, 2, 64);
    Addr base_a = 0x100000, base_b = 0x800000;
    for (int i = 0; i < 4; ++i) {
        pf.observe(base_a + i * 64, target);
        pf.observe(base_b + i * 64, target);
    }
    EXPECT_TRUE(target.probe(base_a + 4 * 64));
    EXPECT_TRUE(target.probe(base_b + 4 * 64));
}

TEST(Prefetcher, SameLineDoesNotAdvance)
{
    Cache target(l2ish());
    StreamPrefetcher pf(4, 2, 64);
    pf.observe(0, target);
    pf.observe(0, target);
    pf.observe(0, target);
    EXPECT_EQ(pf.issued(), 0u);
}

TEST(Prefetcher, LruStreamReplacement)
{
    Cache target(l2ish());
    StreamPrefetcher pf(2, 2, 64);  // only two stream slots
    // Start three streams; the first gets evicted.
    pf.observe(0x100000, target);
    pf.observe(0x200000, target);
    pf.observe(0x300000, target);
    // Continue stream 1: treated as new (confidence reset), so the
    // second access does not yet prefetch.
    pf.observe(0x100000 + 64, target);
    EXPECT_FALSE(target.probe(0x100000 + 2 * 64));
}

TEST(Prefetcher, DegreeControlsLookahead)
{
    Cache target(l2ish());
    StreamPrefetcher pf(4, 4, 64);
    for (int i = 0; i < 3; ++i)
        pf.observe(i * 64, target);
    EXPECT_TRUE(target.probe(3 * 64));
    EXPECT_TRUE(target.probe(6 * 64));
    EXPECT_FALSE(target.probe(8 * 64));
}
