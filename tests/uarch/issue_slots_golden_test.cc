/**
 * @file
 * Golden-model test for the issue-slot ledger: booked slots must
 * match a naive per-cycle counting reference for random ready times,
 * and global bandwidth invariants must hold.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "uarch/exec_model.hh"

using namespace percon;

namespace {

/** Naive reference: a map from cycle to issued count. */
class ReferenceSlots
{
  public:
    explicit ReferenceSlots(unsigned units) : units_(units) {}

    Cycle
    book(Cycle ready)
    {
        Cycle c = ready;
        while (counts_[c] >= units_)
            ++c;
        ++counts_[c];
        return c;
    }

  private:
    unsigned units_;
    std::map<Cycle, unsigned> counts_;
};

} // namespace

class IssueSlotsGolden : public ::testing::TestWithParam<int>
{
};

TEST_P(IssueSlotsGolden, MatchesReferenceOnRandomBookings)
{
    unsigned units = static_cast<unsigned>(GetParam());
    IssueSlots dut(units);
    ReferenceSlots ref(units);
    Rng rng(99 + units);

    // Stay within the ledger's documented contention envelope (the
    // ROB bounds real backlogs to a few hundred cycles; the ledger
    // deliberately degrades beyond kHorizon/2 of backlog).
    Cycle now = 10;
    for (int i = 0; i < 20000; ++i) {
        // Mostly near-term ready times with occasional far futures,
        // drifting forward like a real run.
        Cycle ready = now + rng.nextBelow(8);
        if (rng.nextBernoulli(0.05))
            ready += 200 + rng.nextBelow(300);
        ASSERT_EQ(dut.book(ready), ref.book(ready))
            << "divergence at booking " << i;
        // Advance time fast enough that the backlog stays bounded.
        now += 1 + rng.nextBelow(2);
    }
}

INSTANTIATE_TEST_SUITE_P(Units, IssueSlotsGolden,
                         ::testing::Values(1, 2, 3, 6));

TEST(IssueSlotsGolden, BandwidthNeverExceededWithinEnvelope)
{
    const unsigned units = 3;
    IssueSlots dut(units);
    Rng rng(5);
    std::map<Cycle, unsigned> per_cycle;
    // 6000 bookings over a 64-cycle ready window back up ~2000
    // cycles — far below the ledger's kHorizon/2 degradation point.
    for (int i = 0; i < 6000; ++i) {
        Cycle ready = 100 + rng.nextBelow(64);
        Cycle got = dut.book(ready);
        EXPECT_GE(got, ready);
        ++per_cycle[got];
    }
    for (auto [cycle, count] : per_cycle)
        EXPECT_LE(count, units) << "cycle " << cycle;
}

TEST(IssueSlotsGolden, DegradesGracefullyBeyondHorizon)
{
    // Pathological pressure (backlog beyond kHorizon/2) must still
    // return monotonically sane slots rather than looping forever —
    // the documented approximation.
    IssueSlots dut(1);
    Cycle last = 0;
    for (int i = 0; i < 20000; ++i) {
        Cycle got = dut.book(100);
        EXPECT_GE(got, 100u);
        EXPECT_GE(got + 1, last);  // never runs far backwards
        last = got;
    }
}
