/**
 * @file
 * Bit-identical regression lock on the core's CoreStats.
 *
 * The golden rows below were captured from the pre-optimization
 * (deque + cycle-stepped) implementation at the seed commit, across
 * both paper machines, gating thresholds 1-3, reversal, and delayed
 * confidence. The event-driven / ring-buffer core must reproduce
 * every counter exactly. The only intentional delta is the split of
 * the old combined traceCacheStallCycles into traceCacheStallCycles
 * + btbStallCycles, whose SUM must equal the golden value.
 *
 * A second set of checks runs each configuration with cycle skipping
 * disabled and requires byte-identical stats, pinning the
 * fast-forward accounting to the cycle-stepped loop.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bpred/factory.hh"
#include "bpred/prediction_trace.hh"
#include "common/perceptron_kernel.hh"
#include "confidence/factory.hh"
#include "trace/benchmarks.hh"
#include "trace/program_model.hh"
#include "trace/trace_snapshot.hh"
#include "trace/wrongpath.hh"
#include "uarch/core.hh"

namespace percon {
namespace {

struct GoldenRow
{
    const char *bench;
    const char *machine;
    const char *policy;
    Count v[29];
};

// Captured from the seed implementation (see file comment); field
// order matches CoreStats declaration order with the confidence
// matrix flattened at the end.
const GoldenRow kGolden[] = {
    {"gcc", "deep40x4", "none",
     {176880ull, 118837ull, 89867ull, 60001ull, 58969ull, 29866ull,
      8566ull, 670ull, 670ull, 0ull, 0ull, 0ull,
      0ull, 672ull, 1636ull, 20079ull, 4533ull, 123818ull,
      133185ull, 460ull, 0ull, 22103ull, 2635399ull, 1697919ull,
      22742ull, 0ull, 0ull, 0ull, 0ull}},
    {"mcf", "deep40x4", "none",
     {357579ull, 195909ull, 125724ull, 60002ull, 135923ull, 65722ull,
      8600ull, 1396ull, 1396ull, 0ull, 0ull, 0ull,
      0ull, 1392ull, 2443ull, 33029ull, 8375ull, 269522ull,
      280605ull, 9433ull, 6ull, 37870ull, 8785413ull, 6625712ull,
      32663ull, 0ull, 0ull, 0ull, 0ull}},
    {"gcc", "deep40x4", "gate1",
     {184274ull, 73770ull, 70996ull, 60000ull, 13849ull, 10996ull,
      8566ull, 667ull, 667ull, 0ull, 0ull, 0ull,
      101736ull, 668ull, 958ull, 9798ull, 1633ull, 52898ull,
      83695ull, 0ull, 0ull, 84089ull, 1678674ull, 1021092ull,
      17463ull, 212ull, 455ull, 734ull, 7165ull}},
    {"gcc", "deep40x4", "gate2",
     {172882ull, 87262ull, 78982ull, 60001ull, 27395ull, 18981ull,
      8566ull, 675ull, 675ull, 0ull, 0ull, 0ull,
      60166ull, 676ull, 1235ull, 13576ull, 2579ull, 75311ull,
      109664ull, 0ull, 0ull, 44881ull, 2016208ull, 1232598ull,
      19635ull, 225ull, 450ull, 739ull, 7152ull}},
    {"mcf", "deep40x4", "gate2",
     {314929ull, 123317ull, 104152ull, 60000ull, 63310ull, 44152ull,
      8599ull, 1393ull, 1393ull, 0ull, 0ull, 0ull,
      165807ull, 1390ull, 1797ull, 21785ull, 4781ull, 93335ull,
      188688ull, 887ull, 0ull, 101217ull, 5748312ull, 4193187ull,
      26083ull, 515ull, 878ull, 1012ull, 6194ull}},
    {"gcc", "deep40x4", "gate3",
     {171348ull, 96265ull, 82605ull, 60000ull, 36400ull, 22605ull,
      8567ull, 671ull, 671ull, 0ull, 0ull, 0ull,
      35928ull, 672ull, 1377ull, 15637ull, 3162ull, 93331ull,
      120760ull, 102ull, 0ull, 31263ull, 2211014ull, 1359204ull,
      20650ull, 216ull, 455ull, 746ull, 7150ull}},
    {"gcc", "deep40x4", "reversal",
     {176880ull, 118837ull, 89867ull, 60001ull, 58969ull, 29866ull,
      8566ull, 670ull, 670ull, 0ull, 0ull, 0ull,
      0ull, 672ull, 1636ull, 20079ull, 4533ull, 123818ull,
      133185ull, 460ull, 0ull, 22103ull, 2635399ull, 1697919ull,
      22742ull, 215ull, 455ull, 746ull, 7150ull}},
    {"gcc", "deep40x4", "gate2lat4",
     {171177ull, 89367ull, 79860ull, 60001ull, 29494ull, 19859ull,
      8566ull, 670ull, 670ull, 0ull, 0ull, 0ull,
      54177ull, 672ull, 1262ull, 14050ull, 2714ull, 78511ull,
      111987ull, 0ull, 0ull, 40662ull, 2054940ull, 1270603ull,
      19863ull, 216ull, 454ull, 720ull, 7176ull}},
    {"gcc", "deep40x4", "gate2revlat4",
     {171177ull, 89367ull, 79860ull, 60001ull, 29494ull, 19859ull,
      8566ull, 670ull, 670ull, 0ull, 0ull, 0ull,
      54177ull, 672ull, 1262ull, 14050ull, 2714ull, 78511ull,
      111987ull, 0ull, 0ull, 40662ull, 2054940ull, 1270603ull,
      19863ull, 216ull, 454ull, 720ull, 7176ull}},
    {"gcc", "wide20x8", "none",
     {161815ull, 114698ull, 83371ull, 60000ull, 54852ull, 23371ull,
      8567ull, 678ull, 678ull, 0ull, 0ull, 0ull,
      0ull, 680ull, 1564ull, 18732ull, 4080ull, 124655ull,
      136142ull, 1039ull, 0ull, 16076ull, 2459727ull, 1539879ull,
      21063ull, 0ull, 0ull, 0ull, 0ull}},
    {"mcf", "wide20x8", "none",
     {333673ull, 191958ull, 113678ull, 60004ull, 131972ull, 53674ull,
      8600ull, 1381ull, 1381ull, 0ull, 0ull, 0ull,
      0ull, 1377ull, 2383ull, 31344ull, 7760ull, 270603ull,
      286828ull, 8287ull, 0ull, 27420ull, 8342340ull, 6033344ull,
      29544ull, 0ull, 0ull, 0ull, 0ull}},
    {"gcc", "wide20x8", "gate1",
     {162719ull, 73501ull, 69697ull, 60003ull, 13640ull, 9694ull,
      8568ull, 663ull, 663ull, 0ull, 0ull, 0ull,
      94084ull, 663ull, 995ull, 10035ull, 1614ull, 47597ull,
      96871ull, 0ull, 0ull, 58780ull, 1714278ull, 1009726ull,
      17172ull, 210ull, 453ull, 749ull, 7156ull}},
    {"gcc", "wide20x8", "gate2",
     {159949ull, 85745ull, 75598ull, 60006ull, 25901ull, 15592ull,
      8568ull, 673ull, 673ull, 0ull, 0ull, 0ull,
      59329ull, 674ull, 1193ull, 13053ull, 2467ull, 74249ull,
      123601ull, 17ull, 0ull, 28731ull, 2148368ull, 1248826ull,
      18798ull, 212ull, 461ull, 741ull, 7154ull}},
    {"mcf", "wide20x8", "gate2",
     {302268ull, 121570ull, 99895ull, 60004ull, 61584ull, 39891ull,
      8600ull, 1391ull, 1391ull, 0ull, 0ull, 0ull,
      180924ull, 1387ull, 1759ull, 21031ull, 4533ull, 81064ull,
      224503ull, 2665ull, 0ull, 65491ull, 6033089ull, 4327352ull,
      25277ull, 498ull, 893ull, 1011ull, 6198ull}},
    {"gcc", "wide20x8", "gate3",
     {159980ull, 95311ull, 79203ull, 60001ull, 35432ull, 19202ull,
      8567ull, 671ull, 671ull, 0ull, 0ull, 0ull,
      36831ull, 673ull, 1349ull, 15384ull, 3120ull, 92680ull,
      131340ull, 82ull, 0ull, 20574ull, 2250835ull, 1364472ull,
      19830ull, 211ull, 460ull, 749ull, 7147ull}},
    {"gcc", "wide20x8", "reversal",
     {161815ull, 114698ull, 83371ull, 60000ull, 54852ull, 23371ull,
      8567ull, 678ull, 678ull, 0ull, 0ull, 0ull,
      0ull, 680ull, 1564ull, 18732ull, 4080ull, 124655ull,
      136142ull, 1039ull, 0ull, 16076ull, 2459727ull, 1539879ull,
      21063ull, 209ull, 469ull, 766ull, 7123ull}},
    {"gcc", "wide20x8", "gate2lat4",
     {157159ull, 88671ull, 77304ull, 60001ull, 28792ull, 17303ull,
      8567ull, 664ull, 664ull, 0ull, 0ull, 0ull,
      53454ull, 666ull, 1247ull, 13711ull, 2590ull, 76225ull,
      124877ull, 0ull, 0ull, 24508ull, 2090035ull, 1252643ull,
      19313ull, 220ull, 444ull, 731ull, 7172ull}},
    {"gcc", "wide20x8", "gate2revlat4",
     {157159ull, 88671ull, 77304ull, 60001ull, 28792ull, 17303ull,
      8567ull, 664ull, 664ull, 0ull, 0ull, 0ull,
      53454ull, 666ull, 1247ull, 13711ull, 2590ull, 76225ull,
      124877ull, 0ull, 0ull, 24508ull, 2090035ull, 1252643ull,
      19313ull, 220ull, 444ull, 731ull, 7172ull}},
};

SpeculationControl
policyFor(const std::string &name)
{
    SpeculationControl sc;
    if (name == "gate1") {
        sc.gateThreshold = 1;
    } else if (name == "gate2") {
        sc.gateThreshold = 2;
    } else if (name == "gate3") {
        sc.gateThreshold = 3;
    } else if (name == "reversal") {
        sc.reversalEnabled = true;
    } else if (name == "gate2lat4") {
        sc.gateThreshold = 2;
        sc.confidenceLatency = 4;
    } else if (name == "gate2revlat4") {
        sc.gateThreshold = 2;
        sc.reversalEnabled = true;
        sc.confidenceLatency = 4;
    } else {
        EXPECT_EQ(name, "none");
    }
    return sc;
}

CoreStats
runConfig(const GoldenRow &row, bool skip, bool replay = false,
          PredictionTraceBuilder *pred_rec = nullptr,
          std::shared_ptr<const PredictionTrace> pred_replay = nullptr)
{
    const BenchmarkSpec &spec = benchmarkSpec(row.bench);
    PipelineConfig cfg = std::string(row.machine) == "deep40x4"
                             ? PipelineConfig::deep40x4()
                             : PipelineConfig::wide20x8();
    std::unique_ptr<WorkloadSource> source;
    if (replay) {
        Count slack = cfg.robSize +
                      static_cast<Count>(cfg.frontEndDepth + 2) *
                          cfg.width;
        source = std::make_unique<SnapshotCursor>(
            TraceSnapshot::build(spec.program,
                                 20'000 + 60'000 + slack));
    } else {
        source = std::make_unique<ProgramModel>(spec.program);
    }
    WrongPathSynthesizer wp(spec.program, spec.program.seed ^ 0xdead);
    auto pred = makePredictor("bimodal-gshare");
    SpeculationControl sc = policyFor(row.policy);
    std::unique_ptr<ConfidenceEstimator> est;
    if (sc.gateThreshold > 0 || sc.reversalEnabled)
        est = makeEstimator("perceptron-cic");
    Core core(cfg, *source, wp, *pred, est.get(), sc);
    if (pred_rec)
        core.setPredictionRecorder(pred_rec);
    if (pred_replay)
        core.setPredictionReplay(std::move(pred_replay));
    core.setCycleSkipping(skip);
    core.warmup(20'000);
    core.run(60'000);
    return core.stats();
}

void
expectMatchesGolden(const CoreStats &s, const GoldenRow &r)
{
    const Count *v = r.v;
    EXPECT_EQ(s.cycles, v[0]);
    EXPECT_EQ(s.fetchedUops, v[1]);
    EXPECT_EQ(s.executedUops, v[2]);
    EXPECT_EQ(s.retiredUops, v[3]);
    EXPECT_EQ(s.wrongPathFetched, v[4]);
    EXPECT_EQ(s.wrongPathExecuted, v[5]);
    EXPECT_EQ(s.retiredBranches, v[6]);
    EXPECT_EQ(s.mispredictsOriginal, v[7]);
    EXPECT_EQ(s.mispredictsFinal, v[8]);
    EXPECT_EQ(s.reversals, v[9]);
    EXPECT_EQ(s.reversalsGood, v[10]);
    EXPECT_EQ(s.reversalsBad, v[11]);
    EXPECT_EQ(s.gatedCycles, v[12]);
    EXPECT_EQ(s.flushes, v[13]);
    EXPECT_EQ(s.traceCacheMisses, v[14]);
    // The golden capture predates the stall-cause split: its
    // traceCacheStallCycles covered BTB bubbles too.
    EXPECT_EQ(s.traceCacheStallCycles + s.btbStallCycles, v[15]);
    EXPECT_EQ(s.btbMisses, v[16]);
    EXPECT_EQ(s.fetchStallPipeFull, v[17]);
    EXPECT_EQ(s.dispatchStallRob, v[18]);
    EXPECT_EQ(s.dispatchStallWindow, v[19]);
    EXPECT_EQ(s.dispatchStallBuffers, v[20]);
    EXPECT_EQ(s.dispatchStallEmpty, v[21]);
    EXPECT_EQ(s.issueWaitSum, v[22]);
    EXPECT_EQ(s.loadLatencySum, v[23]);
    EXPECT_EQ(s.loadCount, v[24]);
    EXPECT_EQ(s.confidence.mispredictedLow(), v[25]);
    EXPECT_EQ(s.confidence.mispredictedHigh(), v[26]);
    EXPECT_EQ(s.confidence.correctLow(), v[27]);
    EXPECT_EQ(s.confidence.correctHigh(), v[28]);
}

void
expectStatsEqual(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fetchedUops, b.fetchedUops);
    EXPECT_EQ(a.executedUops, b.executedUops);
    EXPECT_EQ(a.retiredUops, b.retiredUops);
    EXPECT_EQ(a.wrongPathFetched, b.wrongPathFetched);
    EXPECT_EQ(a.wrongPathExecuted, b.wrongPathExecuted);
    EXPECT_EQ(a.retiredBranches, b.retiredBranches);
    EXPECT_EQ(a.mispredictsOriginal, b.mispredictsOriginal);
    EXPECT_EQ(a.mispredictsFinal, b.mispredictsFinal);
    EXPECT_EQ(a.reversals, b.reversals);
    EXPECT_EQ(a.reversalsGood, b.reversalsGood);
    EXPECT_EQ(a.reversalsBad, b.reversalsBad);
    EXPECT_EQ(a.gatedCycles, b.gatedCycles);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.traceCacheMisses, b.traceCacheMisses);
    EXPECT_EQ(a.traceCacheStallCycles, b.traceCacheStallCycles);
    EXPECT_EQ(a.btbMisses, b.btbMisses);
    EXPECT_EQ(a.btbStallCycles, b.btbStallCycles);
    EXPECT_EQ(a.fetchStallPipeFull, b.fetchStallPipeFull);
    EXPECT_EQ(a.dispatchStallRob, b.dispatchStallRob);
    EXPECT_EQ(a.dispatchStallWindow, b.dispatchStallWindow);
    EXPECT_EQ(a.dispatchStallBuffers, b.dispatchStallBuffers);
    EXPECT_EQ(a.dispatchStallEmpty, b.dispatchStallEmpty);
    EXPECT_EQ(a.issueWaitSum, b.issueWaitSum);
    EXPECT_EQ(a.loadLatencySum, b.loadLatencySum);
    EXPECT_EQ(a.loadCount, b.loadCount);
    EXPECT_EQ(a.confidence.mispredictedLow(),
              b.confidence.mispredictedLow());
    EXPECT_EQ(a.confidence.mispredictedHigh(),
              b.confidence.mispredictedHigh());
    EXPECT_EQ(a.confidence.correctLow(), b.confidence.correctLow());
    EXPECT_EQ(a.confidence.correctHigh(), b.confidence.correctHigh());
}

class GoldenStats : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(GoldenStats, MatchesSeedImplementation)
{
    const GoldenRow &row = GetParam();
    expectMatchesGolden(runConfig(row, /*skip=*/true), row);
}

TEST_P(GoldenStats, ScalarKernelMatchesSeedImplementation)
{
    // The vectorized perceptron kernels claim bit-identity with the
    // scalar path; force scalar dispatch and require the exact same
    // pinned counters.
    const GoldenRow &row = GetParam();
    kernel::forcePath(kernel::Path::Scalar);
    CoreStats s = runConfig(row, /*skip=*/true);
    kernel::resetPath();
    expectMatchesGolden(s, row);
}

TEST_P(GoldenStats, SnapshotReplayMatchesSeedImplementation)
{
    // Same golden counters with the core fed from a SnapshotCursor
    // instead of the live generator: replay is bit-identical to
    // generation across the full 18-config matrix.
    const GoldenRow &row = GetParam();
    expectMatchesGolden(runConfig(row, /*skip=*/true, /*replay=*/true),
                        row);
}

TEST_P(GoldenStats, PredReplayMatchesSeedImplementation)
{
    // Record the predictor/BTB outcome stream from a live run (which
    // itself must still match golden — recording is pure
    // observation), then rebuild the whole stack and replay the
    // stream with the live predictor bypassed. Both runs must pin
    // the exact golden counters across the full 18-config matrix.
    const GoldenRow &row = GetParam();
    PredictionTraceBuilder rec;
    CoreStats live = runConfig(row, /*skip=*/true, /*replay=*/false,
                               &rec);
    expectMatchesGolden(live, row);
    auto trace = rec.finish("golden-matrix");
    CoreStats replayed = runConfig(row, /*skip=*/true,
                                   /*replay=*/false, nullptr, trace);
    expectMatchesGolden(replayed, row);
    expectStatsEqual(live, replayed);
}

TEST_P(GoldenStats, SkippingIsBitIdenticalToCycleStepping)
{
    const GoldenRow &row = GetParam();
    CoreStats stepped = runConfig(row, /*skip=*/false);
    CoreStats skipped = runConfig(row, /*skip=*/true);
    expectStatsEqual(stepped, skipped);
    // The stepped run must itself match golden, pinning the
    // cycle-stepped path (incl. the stall-cause split) too.
    expectMatchesGolden(stepped, row);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, GoldenStats, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenRow> &info) {
        return std::string(info.param.bench) + "_" +
               info.param.machine + "_" + info.param.policy;
    });

} // namespace
} // namespace percon
