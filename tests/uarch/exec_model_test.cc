/**
 * @file
 * Unit tests for the execution-resource model.
 */

#include <gtest/gtest.h>

#include "uarch/exec_model.hh"

using namespace percon;

namespace {

PipelineConfig
cfg()
{
    PipelineConfig c = PipelineConfig::base20x4();
    c.mem.prefetchEnabled = false;
    return c;
}

InflightUop
uopOf(UopClass cls, std::uint64_t idx)
{
    InflightUop u;
    u.cls = cls;
    u.streamIdx = idx;
    u.seq = idx + 1;
    return u;
}

} // namespace

TEST(ExecModel, SchedClassMapping)
{
    EXPECT_EQ(schedClassFor(UopClass::IntAlu), SchedClass::Int);
    EXPECT_EQ(schedClassFor(UopClass::IntMul), SchedClass::Int);
    EXPECT_EQ(schedClassFor(UopClass::Branch), SchedClass::Int);
    EXPECT_EQ(schedClassFor(UopClass::Load), SchedClass::Mem);
    EXPECT_EQ(schedClassFor(UopClass::Store), SchedClass::Mem);
    EXPECT_EQ(schedClassFor(UopClass::FpAlu), SchedClass::Fp);
}

TEST(ExecModel, ReadyUopIssuesNextCycle)
{
    PipelineConfig c = cfg();
    MemoryHierarchy mem(c.mem);
    ExecModel e(c, mem);
    InflightUop u = uopOf(UopClass::IntAlu, 0);
    e.dispatch(u, 10, 0);
    EXPECT_EQ(u.issueAt, 11u);
    EXPECT_EQ(u.completeAt, 11u + c.intAluLatency);
}

TEST(ExecModel, WaitsForSources)
{
    PipelineConfig c = cfg();
    MemoryHierarchy mem(c.mem);
    ExecModel e(c, mem);
    InflightUop u = uopOf(UopClass::IntAlu, 0);
    e.dispatch(u, 10, 50);
    EXPECT_EQ(u.issueAt, 50u);
}

TEST(ExecModel, IssueBandwidthIsPerCycle)
{
    PipelineConfig c = cfg();  // 3 int units
    MemoryHierarchy mem(c.mem);
    ExecModel e(c, mem);
    Cycle issues[5];
    for (int i = 0; i < 5; ++i) {
        InflightUop u = uopOf(UopClass::IntAlu, i);
        e.dispatch(u, 10, 0);
        issues[i] = u.issueAt;
    }
    // 3 in the first cycle, 2 in the next.
    EXPECT_EQ(issues[0], 11u);
    EXPECT_EQ(issues[1], 11u);
    EXPECT_EQ(issues[2], 11u);
    EXPECT_EQ(issues[3], 12u);
    EXPECT_EQ(issues[4], 12u);
}

TEST(ExecModel, WaitingUopDoesNotBlockItsClass)
{
    // The regression that motivated the bandwidth design: a uop
    // stuck on a far-future source must not reserve a unit.
    PipelineConfig c = cfg();
    MemoryHierarchy mem(c.mem);
    ExecModel e(c, mem);
    for (int i = 0; i < 3; ++i) {
        InflightUop blocked = uopOf(UopClass::IntAlu, i);
        e.dispatch(blocked, 10, 1000);
    }
    InflightUop ready = uopOf(UopClass::IntAlu, 3);
    e.dispatch(ready, 10, 0);
    EXPECT_EQ(ready.issueAt, 11u);
}

TEST(ExecModel, WindowFillsAndReleasesAtIssue)
{
    PipelineConfig c = cfg();
    c.schedInt = 4;
    MemoryHierarchy mem(c.mem);
    ExecModel e(c, mem);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(e.windowAvailable(SchedClass::Int));
        InflightUop u = uopOf(UopClass::IntAlu, i);
        e.dispatch(u, 10, 100);  // all waiting until 100
    }
    EXPECT_FALSE(e.windowAvailable(SchedClass::Int));
    e.tick(99);
    EXPECT_FALSE(e.windowAvailable(SchedClass::Int));
    e.tick(101);
    EXPECT_TRUE(e.windowAvailable(SchedClass::Int));
}

TEST(ExecModel, ClassesAreIndependent)
{
    PipelineConfig c = cfg();
    c.schedInt = 1;
    MemoryHierarchy mem(c.mem);
    ExecModel e(c, mem);
    InflightUop i0 = uopOf(UopClass::IntAlu, 0);
    e.dispatch(i0, 10, 500);
    EXPECT_FALSE(e.windowAvailable(SchedClass::Int));
    EXPECT_TRUE(e.windowAvailable(SchedClass::Mem));
    EXPECT_TRUE(e.windowAvailable(SchedClass::Fp));
}

TEST(ExecModel, LatenciesByClass)
{
    PipelineConfig c = cfg();
    MemoryHierarchy mem(c.mem);
    ExecModel e(c, mem);

    InflightUop mul = uopOf(UopClass::IntMul, 0);
    e.dispatch(mul, 10, 0);
    EXPECT_EQ(mul.completeAt - mul.issueAt, c.intMulLatency);

    InflightUop fp = uopOf(UopClass::FpAlu, 1);
    e.dispatch(fp, 10, 0);
    EXPECT_EQ(fp.completeAt - fp.issueAt, c.fpAluLatency);

    InflightUop st = uopOf(UopClass::Store, 2);
    st.memAddr = 0x4000;
    e.dispatch(st, 10, 0);
    EXPECT_EQ(st.completeAt - st.issueAt, 1u);
}

TEST(ExecModel, LoadLatencyComesFromHierarchy)
{
    PipelineConfig c = cfg();
    MemoryHierarchy mem(c.mem);
    ExecModel e(c, mem);
    InflightUop miss = uopOf(UopClass::Load, 0);
    miss.memAddr = 0x12340;
    e.dispatch(miss, 10, 0);
    EXPECT_GE(miss.completeAt - miss.issueAt,
              c.mem.l1Latency + c.mem.l2Latency + c.mem.memLatency);

    InflightUop hit = uopOf(UopClass::Load, 1);
    hit.memAddr = 0x12340;
    e.dispatch(hit, 400, 0);
    EXPECT_EQ(hit.completeAt - hit.issueAt, c.mem.l1Latency);
}

TEST(IssueSlots, BandwidthExactlyUnits)
{
    IssueSlots slots(2);
    EXPECT_EQ(slots.book(100), 100u);
    EXPECT_EQ(slots.book(100), 100u);
    EXPECT_EQ(slots.book(100), 101u);
    EXPECT_EQ(slots.book(100), 101u);
    EXPECT_EQ(slots.book(100), 102u);
}

TEST(IssueSlots, EarlierReadyKeepsEarlierSlot)
{
    IssueSlots slots(1);
    EXPECT_EQ(slots.book(200), 200u);
    EXPECT_EQ(slots.book(100), 100u);  // unaffected by the far slot
}
