/**
 * @file
 * Test helper: a WorkloadSource that cycles through a scripted uop
 * sequence, for driving the core model with exact inputs.
 */

#ifndef PERCON_TESTS_UARCH_SCRIPTED_SOURCE_HH
#define PERCON_TESTS_UARCH_SCRIPTED_SOURCE_HH

#include <vector>

#include "trace/uop.hh"

namespace percon {

class ScriptedSource : public WorkloadSource
{
  public:
    explicit ScriptedSource(std::vector<MicroOp> script)
        : script_(std::move(script))
    {
    }

    MicroOp
    next() override
    {
        MicroOp u = script_[pos_];
        pos_ = (pos_ + 1) % script_.size();
        return u;
    }

    const char *name() const override { return "scripted"; }

    /** Simple builders. */
    static MicroOp
    alu(Addr pc)
    {
        MicroOp u;
        u.pc = pc;
        u.cls = UopClass::IntAlu;
        return u;
    }

    static MicroOp
    load(Addr pc, Addr addr)
    {
        MicroOp u;
        u.pc = pc;
        u.cls = UopClass::Load;
        u.memAddr = addr;
        return u;
    }

    static MicroOp
    branch(Addr pc, bool taken, Addr target)
    {
        MicroOp u;
        u.pc = pc;
        u.cls = UopClass::Branch;
        u.taken = taken;
        u.target = target;
        return u;
    }

  private:
    std::vector<MicroOp> script_;
    std::size_t pos_ = 0;
};

} // namespace percon

#endif // PERCON_TESTS_UARCH_SCRIPTED_SOURCE_HH
