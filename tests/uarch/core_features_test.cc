/**
 * @file
 * Tests for core-model extensions: oracle gating and the trace-cache
 * front end.
 */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"
#include "scripted_source.hh"
#include "uarch/core.hh"

using namespace percon;

namespace {

std::vector<MicroOp>
alternatingBranchScript()
{
    using S = ScriptedSource;
    std::vector<MicroOp> v;
    for (int block = 0; block < 2; ++block) {
        for (int i = 0; i < 6; ++i)
            v.push_back(S::alu(0x200 + i * 4));
        v.push_back(S::branch(0x218, block == 0, 0x900));
    }
    return v;
}

ProgramParams
wrongPathParams()
{
    return ProgramParams{};
}

} // namespace

TEST(OracleGating, RequiresNoEstimator)
{
    ScriptedSource src(alternatingBranchScript());
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    SpeculationControl sc;
    sc.gateThreshold = 1;
    sc.oracleGating = true;
    Core core(PipelineConfig::base20x4(), src, wp, pred, nullptr, sc);
    core.run(20000);  // must not panic
    EXPECT_GT(core.stats().gatedCycles, 0u);
}

TEST(OracleGating, EliminatesMostWrongPathExecution)
{
    auto run = [](bool oracle) {
        ScriptedSource src(alternatingBranchScript());
        WrongPathSynthesizer wp(wrongPathParams(), 1);
        BimodalPredictor pred(1024);
        SpeculationControl sc;
        if (oracle) {
            sc.gateThreshold = 1;
            sc.oracleGating = true;
        }
        Core core(PipelineConfig::base20x4(), src, wp, pred, nullptr,
                  sc);
        core.warmup(5000);
        core.run(40000);
        return core.stats();
    };
    CoreStats base = run(false);
    CoreStats oracle = run(true);
    ASSERT_GT(base.wrongPathExecuted, 0u);
    EXPECT_LT(oracle.wrongPathExecuted, base.wrongPathExecuted / 4);
    // Perfect confidence never delays useful work much: IPC within
    // a few percent of baseline.
    EXPECT_GT(oracle.ipc(), base.ipc() * 0.9);
}

TEST(Throttling, ReducedWidthInsteadOfStall)
{
    auto run = [](unsigned throttle) {
        ScriptedSource src(alternatingBranchScript());
        WrongPathSynthesizer wp(wrongPathParams(), 1);
        BimodalPredictor pred(1024);
        SpeculationControl sc;
        sc.gateThreshold = 1;
        sc.oracleGating = true;
        sc.throttleWidth = throttle;
        Core core(PipelineConfig::base20x4(), src, wp, pred, nullptr,
                  sc);
        core.warmup(5000);
        core.run(40000);
        return core.stats();
    };
    CoreStats stall = run(0);
    CoreStats throttled = run(1);
    // Throttling still fetches while gated: more wrong-path work
    // than a full stall, but less than ungated.
    EXPECT_GT(throttled.wrongPathFetched, stall.wrongPathFetched);
    EXPECT_GT(throttled.gatedCycles, 0u);
}

TEST(TraceCache, MissesStallFetch)
{
    // A footprint much larger than the trace cache: every block is
    // cold on (re)visit.
    using S = ScriptedSource;
    std::vector<MicroOp> v;
    for (int b = 0; b < 4096; ++b)
        v.push_back(S::alu(0x100000 + b * 64));
    ScriptedSource src(v);
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    PipelineConfig cfg = PipelineConfig::base20x4();
    cfg.traceCache.sizeBytes = 16 * 1024;
    cfg.traceCache.ways = 8;
    Core core(cfg, src, wp, pred, nullptr, {});
    core.run(20000);
    EXPECT_GT(core.stats().traceCacheMisses, 1000u);
    EXPECT_GT(core.stats().traceCacheStallCycles, 1000u);
}

TEST(TraceCache, HotLoopHitsAfterWarmup)
{
    ScriptedSource src(alternatingBranchScript());
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    Core core(PipelineConfig::base20x4(), src, wp, pred, nullptr, {});
    core.warmup(2000);
    core.run(20000);
    // The hot loop itself always hits; an occasional wrong-path
    // episode may touch one new line.
    EXPECT_LE(core.stats().traceCacheMisses, 4u);
}

TEST(TraceCache, DisableRemovesStalls)
{
    using S = ScriptedSource;
    std::vector<MicroOp> v;
    for (int b = 0; b < 4096; ++b)
        v.push_back(S::alu(0x100000 + b * 64));
    ScriptedSource src(v);
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    PipelineConfig cfg = PipelineConfig::base20x4();
    cfg.traceCacheEnabled = false;
    Core core(cfg, src, wp, pred, nullptr, {});
    core.run(20000);
    EXPECT_EQ(core.stats().traceCacheMisses, 0u);
    EXPECT_EQ(core.stats().traceCacheStallCycles, 0u);
}
