#include <gtest/gtest.h>

#include "common/ring_buffer.hh"
#include "uarch/inflight_window.hh"

namespace percon {
namespace {

TEST(RingBufferTest, RoundsCapacityToPowerOfTwo)
{
    RingBuffer<int> rb(5);
    EXPECT_EQ(rb.capacity(), 8u);
    RingBuffer<int> exact(16);
    EXPECT_EQ(exact.capacity(), 16u);
    RingBuffer<int> one(1);
    EXPECT_EQ(one.capacity(), 1u);
}

TEST(RingBufferTest, FifoOrderAcrossWraparound)
{
    RingBuffer<int> rb(4);
    // Cycle through more elements than the capacity so head wraps.
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 5; ++round) {
        while (!rb.full())
            rb.pushBack(next_in++);
        EXPECT_EQ(rb.size(), 4u);
        EXPECT_EQ(rb.front(), next_out);
        EXPECT_EQ(rb.back(), next_in - 1);
        rb.popFront();
        ++next_out;
        rb.popFront();
        ++next_out;
    }
    for (std::size_t i = 0; i < rb.size(); ++i)
        EXPECT_EQ(rb.at(i), next_out + static_cast<int>(i));
}

TEST(RingBufferTest, SlotsAreStableForResidentElements)
{
    RingBuffer<int> rb(8);
    std::size_t slot = rb.pushBack(42);
    for (int i = 0; i < 5; ++i)
        rb.pushBack(i);
    rb.popBack();
    EXPECT_EQ(rb.atSlot(slot), 42);
    rb.popFront();  // 42 leaves; slot may be reused afterwards
    std::size_t reused = 0;
    while ((reused = rb.pushBack(7)) != slot) {
        rb.popFront();
    }
    EXPECT_EQ(rb.atSlot(slot), 7);
}

InflightUop
uopWithSeq(SeqNum seq)
{
    InflightUop u;
    u.seq = seq;
    return u;
}

TEST(InflightWindowTest, DispatchMovesPipeRobBoundary)
{
    InflightWindow w(4, 4);
    EXPECT_TRUE(w.pipeEmpty());
    EXPECT_TRUE(w.robEmpty());

    w.pushFetched(uopWithSeq(1));
    w.pushFetched(uopWithSeq(2));
    EXPECT_EQ(w.pipeSize(), 2u);
    EXPECT_EQ(w.robSize(), 0u);
    EXPECT_EQ(w.pipeFront().seq, 1u);

    InflightUop &d = w.dispatchPipeFront();
    EXPECT_EQ(d.seq, 1u);
    EXPECT_EQ(w.pipeSize(), 1u);
    EXPECT_EQ(w.robSize(), 1u);
    EXPECT_EQ(w.robFront().seq, 1u);
    EXPECT_EQ(w.pipeFront().seq, 2u);
}

TEST(InflightWindowTest, PipeFullRespectsPipeCapacity)
{
    InflightWindow w(8, 2);
    w.pushFetched(uopWithSeq(1));
    EXPECT_FALSE(w.pipeFull());
    w.pushFetched(uopWithSeq(2));
    EXPECT_TRUE(w.pipeFull());
    w.dispatchPipeFront();
    EXPECT_FALSE(w.pipeFull());  // ROB occupancy doesn't fill the pipe
    EXPECT_EQ(w.robSize(), 1u);
}

TEST(InflightWindowTest, HandleSurvivesDispatchDiesAtRetire)
{
    InflightWindow w(4, 4);
    UopHandle h = w.pushFetched(uopWithSeq(1));
    ASSERT_NE(w.lookup(h), nullptr);
    EXPECT_EQ(w.lookup(h)->seq, 1u);

    UopHandle front = w.pipeFrontHandle();
    EXPECT_EQ(front.slot, h.slot);
    EXPECT_EQ(front.gen, h.gen);

    w.dispatchPipeFront();
    ASSERT_NE(w.lookup(h), nullptr);  // dispatch is a boundary move
    EXPECT_EQ(w.lookup(h)->seq, 1u);

    w.popRetired();
    EXPECT_EQ(w.lookup(h), nullptr);  // retire invalidates the handle
}

TEST(InflightWindowTest, StaleHandleDoesNotAliasSlotReuse)
{
    InflightWindow w(1, 1);  // ring capacity 2: slots recycle fast
    UopHandle h1 = w.pushFetched(uopWithSeq(1));
    w.dispatchPipeFront();
    w.popRetired();
    // Push until the same physical slot is reoccupied.
    SeqNum seq = 2;
    UopHandle h2{};
    do {
        h2 = w.pushFetched(uopWithSeq(seq++));
        if (h2.slot != h1.slot) {
            w.dispatchPipeFront();
            w.popRetired();
        }
    } while (h2.slot != h1.slot);
    EXPECT_EQ(w.lookup(h1), nullptr);  // old handle must stay dead
    ASSERT_NE(w.lookup(h2), nullptr);
    EXPECT_EQ(w.lookup(h2)->seq, seq - 1);
}

TEST(InflightWindowTest, FlushDropsYoungSuffixAndInvalidates)
{
    InflightWindow w(8, 4);
    UopHandle h[6];
    // Seqs 1-3 go through the pipe into the ROB; 4-6 stay fetched.
    for (SeqNum s = 1; s <= 3; ++s) {
        h[s - 1] = w.pushFetched(uopWithSeq(s));
        w.dispatchPipeFront().dispatched = true;
    }
    for (SeqNum s = 4; s <= 6; ++s)
        h[s - 1] = w.pushFetched(uopWithSeq(s));

    std::vector<SeqNum> dropped;
    w.flushYoungerThan(2, [&](InflightUop &u) {
        dropped.push_back(u.seq);
    });

    // Youngest-first: whole pipe (6,5,4), then the ROB suffix (3).
    ASSERT_EQ(dropped.size(), 4u);
    EXPECT_EQ(dropped[0], 6u);
    EXPECT_EQ(dropped[1], 5u);
    EXPECT_EQ(dropped[2], 4u);
    EXPECT_EQ(dropped[3], 3u);

    EXPECT_EQ(w.robSize(), 2u);
    EXPECT_TRUE(w.pipeEmpty());
    EXPECT_EQ(w.robFront().seq, 1u);

    EXPECT_NE(w.lookup(h[0]), nullptr);
    EXPECT_NE(w.lookup(h[1]), nullptr);
    for (int i = 2; i < 6; ++i)
        EXPECT_EQ(w.lookup(h[i]), nullptr) << "seq " << i + 1;
}

TEST(InflightWindowTest, FlushKeepingWholeRobClampsOnlyPipe)
{
    InflightWindow w(8, 4);
    for (SeqNum s = 1; s <= 4; ++s)
        w.pushFetched(uopWithSeq(s));
    w.dispatchPipeFront();
    w.dispatchPipeFront();

    int drops = 0;
    w.flushYoungerThan(2, [&](InflightUop &) { ++drops; });
    EXPECT_EQ(drops, 2);
    EXPECT_EQ(w.robSize(), 2u);
    EXPECT_TRUE(w.pipeEmpty());
}

} // namespace
} // namespace percon
