/**
 * @file
 * Tests for the activity-based energy proxy.
 */

#include <gtest/gtest.h>

#include "uarch/energy.hh"

using namespace percon;

namespace {

CoreStats
sampleStats()
{
    CoreStats s;
    s.cycles = 1000;
    s.fetchedUops = 5000;
    s.executedUops = 4200;
    s.retiredUops = 4000;
    s.wrongPathExecuted = 200;
    s.flushes = 10;
    s.gatedCycles = 50;
    return s;
}

} // namespace

TEST(Energy, ComponentsAddUp)
{
    EnergyParams p;
    EnergyReport r = computeEnergy(sampleStats(), p);
    double expect_dyn = 0.4 * 5000 + 1.0 * 4200 + 0.2 * 4000 +
                        8.0 * 10 + 0.02 * 50;
    double expect_static = 0.6 * 1000;
    EXPECT_DOUBLE_EQ(r.dynamicPart, expect_dyn);
    EXPECT_DOUBLE_EQ(r.staticPart, expect_static);
    EXPECT_DOUBLE_EQ(r.total, expect_dyn + expect_static);
}

TEST(Energy, EpiAndEdp)
{
    EnergyReport r = computeEnergy(sampleStats());
    EXPECT_DOUBLE_EQ(r.epi, r.total / 4000.0);
    EXPECT_DOUBLE_EQ(r.edp, r.total * 1000.0);
}

TEST(Energy, EmptyStatsAreSafe)
{
    CoreStats s;
    EnergyReport r = computeEnergy(s);
    EXPECT_DOUBLE_EQ(r.total, 0.0);
    EXPECT_DOUBLE_EQ(r.epi, 0.0);
}

TEST(Energy, LessWrongPathMeansLessEnergy)
{
    CoreStats gated = sampleStats();
    CoreStats ungated = sampleStats();
    ungated.fetchedUops += 2000;
    ungated.executedUops += 1500;
    ungated.wrongPathExecuted += 1500;
    EnergyReport g = computeEnergy(gated);
    EnergyReport u = computeEnergy(ungated);
    EXPECT_LT(g.total, u.total);
}

TEST(Energy, CustomWeights)
{
    EnergyParams p;
    p.fetchPerUop = 0.0;
    p.executePerUop = 0.0;
    p.retirePerUop = 0.0;
    p.flushFixed = 0.0;
    p.gatePerCycle = 0.0;
    p.staticPerCycle = 2.0;
    EnergyReport r = computeEnergy(sampleStats(), p);
    EXPECT_DOUBLE_EQ(r.total, 2000.0);
}
