/**
 * @file
 * Pipeline-model tests: throughput, misprediction penalties,
 * wrong-path accounting, gating and reversal mechanics.
 */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"
#include "scripted_source.hh"
#include "uarch/core.hh"

using namespace percon;

namespace {

/** Test estimator with a fixed classification. */
class FixedConfidence : public ConfidenceEstimator
{
  public:
    explicit FixedConfidence(ConfidenceBand band) : band_(band) {}

    ConfidenceInfo
    estimate(Addr, std::uint64_t, bool) const override
    {
        ConfidenceInfo info;
        info.band = band_;
        info.low = band_ != ConfidenceBand::High;
        info.raw = info.low ? 100 : -100;
        return info;
    }

    void train(Addr, std::uint64_t, bool, bool,
               const ConfidenceInfo &) override
    {
    }

    const char *name() const override { return "fixed"; }
    std::size_t storageBits() const override { return 0; }

  private:
    ConfidenceBand band_;
};

PipelineConfig
quickConfig()
{
    PipelineConfig c = PipelineConfig::base20x4();
    return c;
}

std::vector<MicroOp>
computeScript()
{
    using S = ScriptedSource;
    return {S::alu(0x100), S::alu(0x104), S::load(0x108, 0x4000),
            S::alu(0x10c), S::alu(0x110), S::load(0x114, 0x4040),
            S::alu(0x118), S::alu(0x11c)};
}

std::vector<MicroOp>
branchyScript(bool alternating_outcome)
{
    // One static branch; with alternation its outcome flips on
    // every dynamic instance, which a 2-bit counter cannot track.
    using S = ScriptedSource;
    std::vector<MicroOp> v;
    for (int block = 0; block < 2; ++block) {
        for (int i = 0; i < 6; ++i)
            v.push_back(S::alu(0x200 + i * 4));
        bool taken = alternating_outcome ? block == 0 : true;
        v.push_back(S::branch(0x218, taken, 0x900));
    }
    return v;
}

ProgramParams
wrongPathParams()
{
    ProgramParams p;  // only used by the synthesizer
    return p;
}

} // namespace

TEST(Core, ThroughputApproachesIssueWidth)
{
    ScriptedSource src(computeScript());
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    Core core(quickConfig(), src, wp, pred, nullptr, {});
    core.run(100000);
    // 6 alu per 8 uops needs 1.5 int slots/cycle; loads hit L1.
    EXPECT_GT(core.stats().ipc(), 2.5);
}

TEST(Core, NoBranchesMeansNoWaste)
{
    ScriptedSource src(computeScript());
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    Core core(quickConfig(), src, wp, pred, nullptr, {});
    core.run(50000);
    EXPECT_EQ(core.stats().wrongPathFetched, 0u);
    EXPECT_EQ(core.stats().wrongPathExecuted, 0u);
    EXPECT_EQ(core.stats().flushes, 0u);
}

TEST(Core, PredictableBranchesRetireCleanly)
{
    ScriptedSource src(branchyScript(false));  // always taken
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    Core core(quickConfig(), src, wp, pred, nullptr, {});
    core.warmup(5000);
    core.run(50000);
    EXPECT_EQ(core.stats().mispredictsFinal, 0u);
    EXPECT_EQ(core.stats().flushes, 0u);
    EXPECT_GT(core.stats().retiredBranches, 5000u);
}

TEST(Core, MispredictsCauseFlushesAndWaste)
{
    ScriptedSource src(branchyScript(true));  // alternating
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    Core core(quickConfig(), src, wp, pred, nullptr, {});
    core.warmup(5000);
    core.run(50000);
    const CoreStats &s = core.stats();
    EXPECT_GT(s.mispredictsFinal, 0u);
    EXPECT_EQ(s.flushes, s.mispredictsFinal);
    EXPECT_GT(s.wrongPathExecuted, 0u);
    EXPECT_GT(s.executedUops, s.retiredUops);
}

TEST(Core, DeeperBackEndWastesMore)
{
    auto waste_at = [](unsigned front, unsigned back) {
        ScriptedSource src(branchyScript(true));
        WrongPathSynthesizer wp(wrongPathParams(), 1);
        BimodalPredictor pred(1024);
        PipelineConfig c = quickConfig();
        c.frontEndDepth = front;
        c.backEndDepth = back;
        Core core(c, src, wp, pred, nullptr, {});
        core.warmup(5000);
        core.run(50000);
        return core.stats().executionIncreasePct();
    };
    double shallow = waste_at(10, 10);
    double deep = waste_at(20, 20);
    EXPECT_GT(deep, shallow * 1.3);
}

TEST(Core, MispredictionPenaltyAtLeastPipelineLength)
{
    // With one mispredict per 14-uop loop iteration, IPC is bounded
    // by uops-per-mispredict / pipeline length.
    ScriptedSource src(branchyScript(true));
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    PipelineConfig c = quickConfig();
    Core core(c, src, wp, pred, nullptr, {});
    core.warmup(5000);
    core.run(50000);
    const CoreStats &s = core.stats();
    double cycles_per_misp =
        static_cast<double>(s.cycles) /
        static_cast<double>(s.mispredictsFinal);
    EXPECT_GE(cycles_per_misp,
              static_cast<double>(c.pipelineLength()) * 0.8);
}

TEST(Core, GatingStopsWrongPathFetch)
{
    auto wrong_path_fetched = [](unsigned gate_threshold) {
        ScriptedSource src(branchyScript(true));
        WrongPathSynthesizer wp(wrongPathParams(), 1);
        BimodalPredictor pred(1024);
        FixedConfidence conf(ConfidenceBand::WeakLow);
        SpeculationControl sc;
        sc.gateThreshold = gate_threshold;
        Core core(quickConfig(), src, wp, pred,
                  gate_threshold ? &conf : nullptr, sc);
        core.warmup(5000);
        core.run(50000);
        return core.stats();
    };
    CoreStats ungated = wrong_path_fetched(0);
    CoreStats gated = wrong_path_fetched(1);
    EXPECT_LT(gated.wrongPathFetched, ungated.wrongPathFetched / 2);
    EXPECT_GT(gated.gatedCycles, 0u);
}

TEST(Core, HighConfidenceNeverGates)
{
    ScriptedSource src(branchyScript(true));
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    FixedConfidence conf(ConfidenceBand::High);
    SpeculationControl sc;
    sc.gateThreshold = 1;
    Core core(quickConfig(), src, wp, pred, &conf, sc);
    core.run(30000);
    EXPECT_EQ(core.stats().gatedCycles, 0u);
}

TEST(Core, ReversalFlipsPredictions)
{
    // Always-taken branches, predictor learns them; forced reversal
    // turns every prediction into a mispredict. The accounting must
    // show reversals == retired branches, all "bad".
    ScriptedSource src(branchyScript(false));
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    FixedConfidence conf(ConfidenceBand::StrongLow);
    SpeculationControl sc;
    sc.reversalEnabled = true;
    Core core(quickConfig(), src, wp, pred, &conf, sc);
    core.warmup(2000);
    core.run(20000);
    const CoreStats &s = core.stats();
    EXPECT_EQ(s.reversals, s.retiredBranches);
    EXPECT_EQ(s.reversalsBad + s.reversalsGood, s.reversals);
    EXPECT_GT(s.reversalsBad, s.reversals / 2);
    EXPECT_GT(s.mispredictsFinal, s.mispredictsOriginal);
}

TEST(Core, ConfidenceLatencyDelaysGating)
{
    auto gated_cycles = [](unsigned latency) {
        ScriptedSource src(branchyScript(true));
        WrongPathSynthesizer wp(wrongPathParams(), 1);
        BimodalPredictor pred(1024);
        FixedConfidence conf(ConfidenceBand::WeakLow);
        SpeculationControl sc;
        sc.gateThreshold = 1;
        sc.confidenceLatency = latency;
        Core core(quickConfig(), src, wp, pred, &conf, sc);
        core.warmup(5000);
        core.run(30000);
        return core.stats().gatedCycles;
    };
    Count immediate = gated_cycles(0);
    Count delayed = gated_cycles(9);
    EXPECT_GT(immediate, 0u);
    EXPECT_GT(delayed, 0u);
    EXPECT_LE(delayed, immediate);
}

TEST(Core, WarmupResetsStatistics)
{
    ScriptedSource src(computeScript());
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    Core core(quickConfig(), src, wp, pred, nullptr, {});
    core.warmup(10000);
    EXPECT_EQ(core.stats().retiredUops, 0u);
    EXPECT_EQ(core.stats().cycles, 0u);
    core.run(1000);
    EXPECT_GE(core.stats().retiredUops, 1000u);
}

TEST(Core, StatsInvariants)
{
    ScriptedSource src(branchyScript(true));
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    Core core(quickConfig(), src, wp, pred, nullptr, {});
    core.run(40000);
    const CoreStats &s = core.stats();
    EXPECT_GE(s.fetchedUops, s.executedUops);
    EXPECT_GE(s.executedUops, s.retiredUops);
    EXPECT_EQ(s.executedUops - s.retiredUops, s.wrongPathExecuted);
    EXPECT_GE(s.wrongPathFetched, s.wrongPathExecuted);
    EXPECT_GE(s.mispredictsOriginal + s.reversalsGood,
              s.mispredictsFinal);
}

TEST(Core, DeterministicAcrossRuns)
{
    auto run_once = [] {
        ScriptedSource src(branchyScript(true));
        WrongPathSynthesizer wp(wrongPathParams(), 7);
        BimodalPredictor pred(1024);
        Core core(quickConfig(), src, wp, pred, nullptr, {});
        core.run(30000);
        return core.stats();
    };
    CoreStats a = run_once();
    CoreStats b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.executedUops, b.executedUops);
    EXPECT_EQ(a.mispredictsFinal, b.mispredictsFinal);
}

TEST(CoreDeath, GatingWithoutEstimatorPanics)
{
    ScriptedSource src(computeScript());
    WrongPathSynthesizer wp(wrongPathParams(), 1);
    BimodalPredictor pred(1024);
    SpeculationControl sc;
    sc.gateThreshold = 1;
    EXPECT_DEATH(
        { Core core(quickConfig(), src, wp, pred, nullptr, sc); },
        "confidence estimator");
}
