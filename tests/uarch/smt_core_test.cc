/**
 * @file
 * Tests for the two-thread SMT core.
 */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"
#include "scripted_source.hh"
#include "trace/benchmarks.hh"
#include "uarch/core.hh"
#include "uarch/smt_core.hh"

using namespace percon;

namespace {

std::vector<MicroOp>
computeScript(Addr base)
{
    using S = ScriptedSource;
    return {S::alu(base), S::alu(base + 4), S::alu(base + 8),
            S::alu(base + 12)};
}

std::vector<MicroOp>
branchyScript(Addr base)
{
    using S = ScriptedSource;
    std::vector<MicroOp> v;
    for (int block = 0; block < 2; ++block) {
        for (int i = 0; i < 6; ++i)
            v.push_back(S::alu(base + i * 4));
        v.push_back(S::branch(base + 24, block == 0, base + 0x700));
    }
    return v;
}

PipelineConfig
quick()
{
    return PipelineConfig::base20x4();
}

} // namespace

TEST(SmtCore, BothThreadsMakeProgress)
{
    ScriptedSource a(computeScript(0x1000)), b(computeScript(0x8000));
    ProgramParams pp;
    WrongPathSynthesizer wa(pp, 1), wb(pp, 2);
    BimodalPredictor pred(1024);
    SmtCore core(quick(), {{{&a, &wa}, {&b, &wb}}}, pred, nullptr, {});
    core.run(20000);
    EXPECT_GE(core.stats(0).retiredUops, 20000u);
    EXPECT_GE(core.stats(1).retiredUops, 20000u);
    EXPECT_GT(core.combinedIpc(), 1.0);
}

TEST(SmtCore, ThreadsShareExecutionBandwidth)
{
    // Two compute-bound threads on one core: combined throughput
    // exceeds either thread's share but is below 2x a solo run.
    auto solo_ipc = [] {
        ScriptedSource a(computeScript(0x1000));
        ProgramParams pp;
        WrongPathSynthesizer wa(pp, 1);
        BimodalPredictor pred(1024);
        PipelineConfig cfg = quick();
        Core core(cfg, a, wa, pred, nullptr, {});
        core.run(30000);
        return core.stats().ipc();
    }();
    ScriptedSource a(computeScript(0x1000)), b(computeScript(0x8000));
    ProgramParams pp;
    WrongPathSynthesizer wa(pp, 1), wb(pp, 2);
    BimodalPredictor pred(1024);
    SmtCore core(quick(), {{{&a, &wa}, {&b, &wb}}}, pred, nullptr, {});
    core.run(30000);
    EXPECT_GT(core.combinedIpc(), solo_ipc * 0.8);
    EXPECT_LT(core.combinedIpc(), solo_ipc * 2.0 + 0.1);
}

TEST(SmtCore, GatingOneThreadHelpsTheOther)
{
    // Thread A mispredicts constantly; thread B is clean. With
    // oracle gating, A's wrong-path fetch is suppressed and B gets
    // those slots: B's throughput must improve.
    auto run = [](bool gate) {
        ScriptedSource a(branchyScript(0x1000));
        ScriptedSource b(computeScript(0x8000));
        ProgramParams pp;
        WrongPathSynthesizer wa(pp, 1), wb(pp, 2);
        BimodalPredictor pred(1024);
        SpeculationControl sc;
        if (gate) {
            sc.gateThreshold = 1;
            sc.oracleGating = true;
        }
        SmtCore core(quick(), {{{&a, &wa}, {&b, &wb}}}, pred, nullptr,
                     sc);
        core.warmup(4000);
        core.run(25000);
        double b_ipc =
            static_cast<double>(core.stats(1).retiredUops) /
            static_cast<double>(core.stats(1).cycles);
        return std::pair<double, Count>(
            b_ipc, core.stats(0).wrongPathFetched);
    };
    auto [b_ungated, wp_ungated] = run(false);
    auto [b_gated, wp_gated] = run(true);
    EXPECT_LT(wp_gated, wp_ungated / 2);
    EXPECT_GT(b_gated, b_ungated);
}

TEST(SmtCore, PerThreadStatsIsolated)
{
    ScriptedSource a(branchyScript(0x1000)), b(computeScript(0x8000));
    ProgramParams pp;
    WrongPathSynthesizer wa(pp, 1), wb(pp, 2);
    BimodalPredictor pred(1024);
    SmtCore core(quick(), {{{&a, &wa}, {&b, &wb}}}, pred, nullptr, {});
    core.warmup(3000);
    core.run(20000);
    EXPECT_GT(core.stats(0).mispredictsFinal, 0u);
    EXPECT_EQ(core.stats(1).mispredictsFinal, 0u);
    EXPECT_EQ(core.stats(1).wrongPathFetched, 0u);
}

TEST(SmtCore, CalibratedWorkloadsRun)
{
    ProgramModel a(benchmarkSpec("gzip").program);
    ProgramModel b(benchmarkSpec("gcc").program);
    WrongPathSynthesizer wa(benchmarkSpec("gzip").program, 0xa);
    WrongPathSynthesizer wb(benchmarkSpec("gcc").program, 0xb);
    BimodalPredictor pred(16 * 1024);
    SmtCore core(PipelineConfig::deep40x4(), {{{&a, &wa}, {&b, &wb}}},
                 pred, nullptr, {});
    core.run(30000);
    EXPECT_GE(core.stats(0).retiredUops, 30000u);
    EXPECT_GE(core.stats(1).retiredUops, 30000u);
}
