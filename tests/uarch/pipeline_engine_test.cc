/**
 * @file
 * PipelineEngine unification tests.
 *
 * Three properties the Core/SmtCore merge must hold:
 *
 *  1. A one-thread PipelineEngine is the single-thread Core, on
 *     EVERY CoreStats counter — not just the eleven the SMT golden
 *     lock pins. This is the regression test for the stats-coverage
 *     drift this refactor fixes: before unification the SMT path
 *     never updated issueWaitSum, loadCount/loadLatencySum, the
 *     dispatchStall* family or fetchStallPipeFull, so "one thread on
 *     the SMT core" and "the Core" silently disagreed.
 *
 *  2. The formerly-dead counters now actually update under SMT.
 *
 *  3. SnapshotCursor detection is a property of thread-context
 *     setup: re-attaching a workload re-runs the detection, so a
 *     replay source can never silently fall back to the slow virtual
 *     next() path (and a non-replay source can never be mistaken for
 *     one).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bpred/factory.hh"
#include "confidence/factory.hh"
#include "trace/benchmarks.hh"
#include "trace/program_model.hh"
#include "trace/trace_snapshot.hh"
#include "trace/wrongpath.hh"
#include "uarch/core.hh"
#include "uarch/pipeline_engine.hh"
#include "uarch/smt_core.hh"

namespace percon {
namespace {

SpeculationControl
policyFor(const std::string &name)
{
    SpeculationControl sc;
    if (name == "gate2") {
        sc.gateThreshold = 2;
    } else if (name == "reversal") {
        sc.reversalEnabled = true;
    } else if (name == "gate2lat4") {
        sc.gateThreshold = 2;
        sc.confidenceLatency = 4;
    } else {
        EXPECT_EQ(name, "none");
    }
    return sc;
}

/** Every counter in CoreStats plus the full confusion matrix. */
void
expectAllStatsEqual(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fetchedUops, b.fetchedUops);
    EXPECT_EQ(a.executedUops, b.executedUops);
    EXPECT_EQ(a.retiredUops, b.retiredUops);
    EXPECT_EQ(a.wrongPathFetched, b.wrongPathFetched);
    EXPECT_EQ(a.wrongPathExecuted, b.wrongPathExecuted);
    EXPECT_EQ(a.retiredBranches, b.retiredBranches);
    EXPECT_EQ(a.mispredictsOriginal, b.mispredictsOriginal);
    EXPECT_EQ(a.mispredictsFinal, b.mispredictsFinal);
    EXPECT_EQ(a.reversals, b.reversals);
    EXPECT_EQ(a.reversalsGood, b.reversalsGood);
    EXPECT_EQ(a.reversalsBad, b.reversalsBad);
    EXPECT_EQ(a.gatedCycles, b.gatedCycles);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.traceCacheMisses, b.traceCacheMisses);
    EXPECT_EQ(a.traceCacheStallCycles, b.traceCacheStallCycles);
    EXPECT_EQ(a.btbMisses, b.btbMisses);
    EXPECT_EQ(a.btbStallCycles, b.btbStallCycles);
    EXPECT_EQ(a.fetchStallPipeFull, b.fetchStallPipeFull);
    EXPECT_EQ(a.dispatchStallRob, b.dispatchStallRob);
    EXPECT_EQ(a.dispatchStallWindow, b.dispatchStallWindow);
    EXPECT_EQ(a.dispatchStallBuffers, b.dispatchStallBuffers);
    EXPECT_EQ(a.dispatchStallEmpty, b.dispatchStallEmpty);
    EXPECT_EQ(a.issueWaitSum, b.issueWaitSum);
    EXPECT_EQ(a.loadLatencySum, b.loadLatencySum);
    EXPECT_EQ(a.loadCount, b.loadCount);
    EXPECT_EQ(a.confidence.mispredictedLow(),
              b.confidence.mispredictedLow());
    EXPECT_EQ(a.confidence.mispredictedHigh(),
              b.confidence.mispredictedHigh());
    EXPECT_EQ(a.confidence.correctLow(), b.confidence.correctLow());
    EXPECT_EQ(a.confidence.correctHigh(), b.confidence.correctHigh());
}

class EngineCoreParity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EngineCoreParity, OneThreadEngineMatchesCoreAllCounters)
{
    const std::string policy = GetParam();
    const BenchmarkSpec &spec = benchmarkSpec("gcc");
    SpeculationControl sc = policyFor(policy);
    PipelineConfig cfg = PipelineConfig::deep40x4();

    ProgramModel prog_core(spec.program);
    WrongPathSynthesizer wp_core(spec.program,
                                 spec.program.seed ^ 0xdead);
    auto pred_core = makePredictor("bimodal-gshare");
    std::unique_ptr<ConfidenceEstimator> est_core;
    if (sc.gateThreshold > 0 || sc.reversalEnabled)
        est_core = makeEstimator("perceptron-cic");
    Core core(cfg, prog_core, wp_core, *pred_core, est_core.get(), sc);
    core.warmup(10'000);
    core.run(30'000);

    // The engine side uses the other fetch policy: arbitration must
    // be irrelevant with one thread.
    ProgramModel prog_eng(spec.program);
    WrongPathSynthesizer wp_eng(spec.program,
                                spec.program.seed ^ 0xdead);
    auto pred_eng = makePredictor("bimodal-gshare");
    std::unique_ptr<ConfidenceEstimator> est_eng;
    if (sc.gateThreshold > 0 || sc.reversalEnabled)
        est_eng = makeEstimator("perceptron-cic");
    PipelineEngine engine(cfg, {{&prog_eng, &wp_eng}}, *pred_eng,
                          est_eng.get(), sc, FetchPolicy::Icount);
    ASSERT_EQ(engine.numThreads(), 1u);
    engine.warmup(10'000);
    engine.run(30'000);

    expectAllStatsEqual(core.stats(), engine.stats(0));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EngineCoreParity,
    ::testing::Values("none", "gate2", "reversal", "gate2lat4"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(EngineSmtCoverage, FormerlyDeadCountersUpdatePerThread)
{
    const BenchmarkSpec &spec_a = benchmarkSpec("gcc");
    const BenchmarkSpec &spec_b = benchmarkSpec("mcf");
    ProgramModel prog_a(spec_a.program);
    ProgramModel prog_b(spec_b.program);
    WrongPathSynthesizer wp_a(spec_a.program,
                              spec_a.program.seed ^ 0xdead);
    WrongPathSynthesizer wp_b(spec_b.program,
                              spec_b.program.seed ^ 0xbeef);
    auto pred = makePredictor("bimodal-gshare");
    SpeculationControl sc;
    sc.gateThreshold = 2;
    auto est = makeEstimator("perceptron-cic");
    SmtCore core(PipelineConfig::deep40x4(),
                 {{{&prog_a, &wp_a}, {&prog_b, &wp_b}}}, *pred,
                 est.get(), sc);
    core.warmup(10'000);
    core.run(30'000);

    for (unsigned t = 0; t < SmtCore::kThreads; ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        const CoreStats &s = core.stats(t);
        // Before unification none of these ever left zero under SMT.
        EXPECT_GT(s.issueWaitSum, 0u);
        EXPECT_GT(s.loadCount, 0u);
        EXPECT_GT(s.loadLatencySum, 0u);
        EXPECT_GT(s.dispatchStallEmpty + s.dispatchStallRob +
                      s.dispatchStallWindow + s.dispatchStallBuffers,
                  0u);
    }
}

TEST(EngineCursorDetection, RebindReRunsDetection)
{
    const BenchmarkSpec &spec = benchmarkSpec("gcc");
    PipelineConfig cfg = PipelineConfig::deep40x4();
    Count slack =
        cfg.robSize +
        static_cast<Count>(cfg.frontEndDepth + 2) * cfg.width;
    Count need = 10'000 + 30'000 + slack;

    ProgramModel program(spec.program);
    WrongPathSynthesizer wp(spec.program, spec.program.seed ^ 0xdead);
    auto pred = makePredictor("bimodal-gshare");
    SpeculationControl sc;
    PipelineEngine engine(cfg, {{&program, &wp}}, *pred, nullptr, sc);
    EXPECT_FALSE(engine.usesSnapshotReplay(0));

    // Attaching a replay cursor must engage the devirtualized path.
    SnapshotCursor cursor(TraceSnapshot::build(spec.program, need));
    engine.rebindWorkload(0, cursor);
    EXPECT_TRUE(engine.usesSnapshotReplay(0));

    // ... and back: a non-replay source must drop it again (a stale
    // cursor pointer here would read the wrong workload).
    engine.rebindWorkload(0, program);
    EXPECT_FALSE(engine.usesSnapshotReplay(0));

    // Re-attaching a fresh cursor after a run keeps the detection
    // current.
    engine.warmup(10'000);
    engine.run(30'000);
    SnapshotCursor cursor2(TraceSnapshot::build(spec.program, need));
    engine.rebindWorkload(0, cursor2);
    EXPECT_TRUE(engine.usesSnapshotReplay(0));
}

TEST(EngineCursorDetection, ReboundCursorMatchesDirectConstruction)
{
    const BenchmarkSpec &spec = benchmarkSpec("gcc");
    PipelineConfig cfg = PipelineConfig::deep40x4();
    Count slack =
        cfg.robSize +
        static_cast<Count>(cfg.frontEndDepth + 2) * cfg.width;
    Count need = 10'000 + 30'000 + slack;
    SpeculationControl sc;
    sc.gateThreshold = 2;

    // Reference: a Core built directly on a replay cursor.
    SnapshotCursor cursor_direct(
        TraceSnapshot::build(spec.program, need));
    WrongPathSynthesizer wp_direct(spec.program,
                                   spec.program.seed ^ 0xdead);
    auto pred_direct = makePredictor("bimodal-gshare");
    auto est_direct = makeEstimator("perceptron-cic");
    Core direct(cfg, cursor_direct, wp_direct, *pred_direct,
                est_direct.get(), sc);
    direct.warmup(10'000);
    direct.run(30'000);

    // Same machine, but the cursor is attached by rebinding after
    // construction on a ProgramModel.
    ProgramModel program(spec.program);
    SnapshotCursor cursor_rebound(
        TraceSnapshot::build(spec.program, need));
    WrongPathSynthesizer wp_rebound(spec.program,
                                    spec.program.seed ^ 0xdead);
    auto pred_rebound = makePredictor("bimodal-gshare");
    auto est_rebound = makeEstimator("perceptron-cic");
    PipelineEngine rebound(cfg, {{&program, &wp_rebound}},
                           *pred_rebound, est_rebound.get(), sc,
                           FetchPolicy::RoundRobin);
    rebound.rebindWorkload(0, cursor_rebound);
    ASSERT_TRUE(rebound.usesSnapshotReplay(0));
    rebound.warmup(10'000);
    rebound.run(30'000);

    expectAllStatsEqual(direct.stats(), rebound.stats(0));
    EXPECT_EQ(cursor_direct.consumed(), cursor_rebound.consumed());
}

} // namespace
} // namespace percon
