/**
 * @file
 * Golden-stats lock for the SMT core, mirroring the single-thread
 * lock in core_golden_stats_test.cc across the same machine axis
 * (deep40x4 + wide20x8) and policy breadth (ungated, gating
 * thresholds, reversal, delayed confidence).
 *
 * Multi-thread runs have no event-skipping fast path (every cycle is
 * stepped), so the equivalent of the Core lock's skip-on == skip-off
 * check is (a) pinned absolute counters per thread against the
 * values below, and (b) a repeat-run byte-identity check, which is
 * what protects future engine refactors the same way the Core
 * goldens protected the event-driven rewrite. Each run also carries
 * per-thread invariant auditors that must come back clean.
 *
 * Provenance: the none/gate1/gate2/reversal rows were captured from
 * the pre-unification SmtCore and reproduce bit-identically through
 * the shared PipelineEngine. The gate2lat4 rows are the one
 * intentional delta of the unification: the old SmtCore silently
 * ignored SpeculationControl::confidenceLatency (gate marks applied
 * immediately), so their values are captured from the unified engine,
 * which honors the latency per thread exactly like Core.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bpred/factory.hh"
#include "bpred/prediction_trace.hh"
#include "confidence/factory.hh"
#include "trace/benchmarks.hh"
#include "trace/program_model.hh"
#include "trace/wrongpath.hh"
#include "uarch/smt_core.hh"
#include "verify/invariant_auditor.hh"

namespace percon {
namespace {

struct SmtGoldenRow
{
    const char *machine;
    const char *policy;
    /** Per-thread: cycles, fetched, executed, retired, wrongPathFetched,
     *  wrongPathExecuted, retiredBranches, mispredictsOriginal,
     *  mispredictsFinal, gatedCycles, flushes. */
    Count v[2][11];
};

// Captured as described in the file comment; any change to these
// counters must be intentional and re-captured.
const SmtGoldenRow kGolden[] = {
    {"deep40x4", "none",
     {{212634ull, 72555ull, 50577ull, 38288ull, 34291ull, 12289ull,
       5460ull, 460ull, 460ull, 0ull, 462ull},
      {212634ull, 86967ull, 48529ull, 30001ull, 56914ull, 18528ull,
       4308ull, 729ull, 729ull, 0ull, 723ull}}},
    {"deep40x4", "gate1",
     {{207124ull, 47476ull, 44666ull, 39786ull, 7663ull, 4880ull,
       5679ull, 458ull, 458ull, 120583ull, 458ull},
      {207124ull, 42216ull, 37767ull, 30001ull, 12144ull, 7766ull,
       4308ull, 738ull, 738ull, 146932ull, 733ull}}},
    {"deep40x4", "gate2",
     {{197797ull, 54459ull, 47073ull, 38500ull, 15933ull, 8573ull,
       5493ull, 455ull, 455ull, 69686ull, 455ull},
      {197797ull, 57868ull, 43968ull, 30001ull, 27815ull, 13967ull,
       4308ull, 739ull, 739ull, 101869ull, 733ull}}},
    {"deep40x4", "reversal",
     {{212634ull, 72555ull, 50577ull, 38288ull, 34291ull, 12289ull,
       5460ull, 460ull, 460ull, 0ull, 462ull},
      {212634ull, 86967ull, 48529ull, 30001ull, 56914ull, 18528ull,
       4308ull, 729ull, 729ull, 0ull, 723ull}}},
    {"deep40x4", "gate2lat4",
     {{197856ull, 55776ull, 47353ull, 38051ull, 17735ull, 9302ull,
       5427ull, 452ull, 452ull, 59266ull, 453ull},
      {197856ull, 60724ull, 45232ull, 30001ull, 30653ull, 15231ull,
       4308ull, 733ull, 733ull, 91686ull, 728ull}}},
    {"wide20x8", "none",
     {{201494ull, 71778ull, 48123ull, 38442ull, 33336ull, 9681ull,
       5483ull, 454ull, 454ull, 0ull, 454ull},
      {201494ull, 92537ull, 46164ull, 30007ull, 62460ull, 16157ull,
       4309ull, 749ull, 749ull, 0ull, 743ull}}},
    {"wide20x8", "gate1",
     {{191792ull, 46707ull, 43890ull, 39512ull, 7167ull, 4378ull,
       5639ull, 457ull, 457ull, 120070ull, 457ull},
      {191792ull, 42736ull, 37107ull, 30007ull, 12669ull, 7100ull,
       4309ull, 736ull, 736ull, 143481ull, 730ull}}},
    {"wide20x8", "gate2",
     {{191377ull, 53674ull, 45811ull, 38373ull, 15340ull, 7438ull,
       5474ull, 454ull, 454ull, 80671ull, 454ull},
      {191377ull, 57580ull, 42500ull, 30007ull, 27503ull, 12493ull,
       4309ull, 734ull, 734ull, 112401ull, 728ull}}},
    {"wide20x8", "reversal",
     {{201494ull, 71778ull, 48123ull, 38442ull, 33336ull, 9681ull,
       5483ull, 454ull, 454ull, 0ull, 454ull},
      {201494ull, 92537ull, 46164ull, 30007ull, 62460ull, 16157ull,
       4309ull, 749ull, 749ull, 0ull, 743ull}}},
    {"wide20x8", "gate2lat4",
     {{194889ull, 56364ull, 47233ull, 39110ull, 17251ull, 8123ull,
       5583ull, 459ull, 459ull, 75777ull, 459ull},
      {194889ull, 63284ull, 44272ull, 30007ull, 33207ull, 14265ull,
       4309ull, 743ull, 743ull, 110329ull, 737ull}}},
};

SpeculationControl
policyFor(const std::string &name)
{
    SpeculationControl sc;
    if (name == "gate1") {
        sc.gateThreshold = 1;
    } else if (name == "gate2") {
        sc.gateThreshold = 2;
    } else if (name == "reversal") {
        sc.reversalEnabled = true;
    } else if (name == "gate2lat4") {
        sc.gateThreshold = 2;
        sc.confidenceLatency = 4;
    } else {
        EXPECT_EQ(name, "none");
    }
    return sc;
}

struct SmtRun
{
    CoreStats stats[2];
    AuditReport audits[2];
};

SmtRun
runConfig(const std::string &machine, const std::string &policy,
          PredictionTraceBuilder *pred_rec = nullptr,
          std::shared_ptr<const PredictionTrace> pred_replay = nullptr)
{
    const BenchmarkSpec &spec_a = benchmarkSpec("gcc");
    const BenchmarkSpec &spec_b = benchmarkSpec("mcf");
    ProgramModel prog_a(spec_a.program);
    ProgramModel prog_b(spec_b.program);
    WrongPathSynthesizer wp_a(spec_a.program,
                              spec_a.program.seed ^ 0xdead);
    WrongPathSynthesizer wp_b(spec_b.program,
                              spec_b.program.seed ^ 0xbeef);
    auto pred = makePredictor("bimodal-gshare");
    SpeculationControl sc = policyFor(policy);
    std::unique_ptr<ConfidenceEstimator> est;
    if (sc.gateThreshold > 0 || sc.reversalEnabled)
        est = makeEstimator("perceptron-cic");

    PipelineConfig cfg = machine == "deep40x4"
                             ? PipelineConfig::deep40x4()
                             : PipelineConfig::wide20x8();
    SmtCore core(cfg, {{{&prog_a, &wp_a}, {&prog_b, &wp_b}}}, *pred,
                 est.get(), sc);
    if (pred_rec)
        core.setPredictionRecorder(pred_rec);
    if (pred_replay)
        core.setPredictionReplay(std::move(pred_replay));
    InvariantAuditor auditors[2];
    core.setAuditor(0, &auditors[0]);
    core.setAuditor(1, &auditors[1]);
    core.warmup(10'000);
    core.run(30'000);

    SmtRun r;
    for (unsigned t = 0; t < 2; ++t) {
        r.stats[t] = core.stats(t);
        r.audits[t] = auditors[t].report();
    }
    return r;
}

void
expectMatchesGolden(const CoreStats &s, const Count *v)
{
    EXPECT_EQ(s.cycles, v[0]);
    EXPECT_EQ(s.fetchedUops, v[1]);
    EXPECT_EQ(s.executedUops, v[2]);
    EXPECT_EQ(s.retiredUops, v[3]);
    EXPECT_EQ(s.wrongPathFetched, v[4]);
    EXPECT_EQ(s.wrongPathExecuted, v[5]);
    EXPECT_EQ(s.retiredBranches, v[6]);
    EXPECT_EQ(s.mispredictsOriginal, v[7]);
    EXPECT_EQ(s.mispredictsFinal, v[8]);
    EXPECT_EQ(s.gatedCycles, v[9]);
    EXPECT_EQ(s.flushes, v[10]);
}

void
expectStatsEqual(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fetchedUops, b.fetchedUops);
    EXPECT_EQ(a.executedUops, b.executedUops);
    EXPECT_EQ(a.retiredUops, b.retiredUops);
    EXPECT_EQ(a.wrongPathFetched, b.wrongPathFetched);
    EXPECT_EQ(a.wrongPathExecuted, b.wrongPathExecuted);
    EXPECT_EQ(a.retiredBranches, b.retiredBranches);
    EXPECT_EQ(a.mispredictsOriginal, b.mispredictsOriginal);
    EXPECT_EQ(a.mispredictsFinal, b.mispredictsFinal);
    EXPECT_EQ(a.gatedCycles, b.gatedCycles);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.dispatchStallEmpty, b.dispatchStallEmpty);
    EXPECT_EQ(a.dispatchStallRob, b.dispatchStallRob);
    EXPECT_EQ(a.issueWaitSum, b.issueWaitSum);
    EXPECT_EQ(a.confidence.mispredictedLow(),
              b.confidence.mispredictedLow());
    EXPECT_EQ(a.confidence.correctLow(), b.confidence.correctLow());
}

class SmtGoldenStats : public ::testing::TestWithParam<SmtGoldenRow>
{
};

TEST_P(SmtGoldenStats, MatchesGoldenAndAuditsClean)
{
    const SmtGoldenRow &row = GetParam();
    SmtRun r = runConfig(row.machine, row.policy);
    for (unsigned t = 0; t < 2; ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        expectMatchesGolden(r.stats[t], row.v[t]);
        EXPECT_TRUE(r.audits[t].clean()) << r.audits[t].summary();
        EXPECT_GT(r.audits[t].checksRun, 0u);
    }
}

TEST_P(SmtGoldenStats, RepeatRunsAreByteIdentical)
{
    const SmtGoldenRow &row = GetParam();
    SmtRun a = runConfig(row.machine, row.policy);
    SmtRun b = runConfig(row.machine, row.policy);
    for (unsigned t = 0; t < 2; ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        expectStatsEqual(a.stats[t], b.stats[t]);
    }
}

TEST_P(SmtGoldenStats, PredReplayMatchesGolden)
{
    // SMT sharing serializes both threads' predictor calls into one
    // engine-global stream; replaying it must pin the same per-thread
    // golden counters (and clean audits) as the live run.
    const SmtGoldenRow &row = GetParam();
    PredictionTraceBuilder rec;
    SmtRun live = runConfig(row.machine, row.policy, &rec);
    auto trace = rec.finish("smt-golden");
    SmtRun replayed =
        runConfig(row.machine, row.policy, nullptr, trace);
    for (unsigned t = 0; t < 2; ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        expectMatchesGolden(replayed.stats[t], row.v[t]);
        expectStatsEqual(live.stats[t], replayed.stats[t]);
        EXPECT_TRUE(replayed.audits[t].clean())
            << replayed.audits[t].summary();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SmtGoldenStats, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<SmtGoldenRow> &info) {
        return std::string(info.param.machine) + "_" +
               info.param.policy;
    });

} // namespace
} // namespace percon
