/**
 * @file
 * Golden-stats lock for the SMT core, mirroring the single-thread
 * lock in core_golden_stats_test.cc.
 *
 * SmtCore has no event-skipping fast path (every cycle is stepped),
 * so the equivalent of the Core lock's skip-on == skip-off check is
 * (a) pinned absolute counters per thread against the values below,
 * and (b) a repeat-run byte-identity check, which is what protects
 * future SMT refactors the same way the Core goldens protected the
 * event-driven rewrite. Each run also carries per-thread invariant
 * auditors that must come back clean.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bpred/factory.hh"
#include "confidence/factory.hh"
#include "trace/benchmarks.hh"
#include "trace/program_model.hh"
#include "trace/wrongpath.hh"
#include "uarch/smt_core.hh"
#include "verify/invariant_auditor.hh"

namespace percon {
namespace {

struct SmtGoldenRow
{
    const char *policy;
    /** Per-thread: cycles, fetched, executed, retired, wrongPathFetched,
     *  wrongPathExecuted, retiredBranches, mispredictsOriginal,
     *  mispredictsFinal, gatedCycles, flushes. */
    Count v[2][11];
};

// Captured from this implementation at introduction time; any change
// to these counters must be intentional and re-captured.
const SmtGoldenRow kGolden[] = {
    {"none",
     {{212634ull, 72555ull, 50577ull, 38288ull, 34291ull, 12289ull,
       5460ull, 460ull, 460ull, 0ull, 462ull},
      {212634ull, 86967ull, 48529ull, 30001ull, 56914ull, 18528ull,
       4308ull, 729ull, 729ull, 0ull, 723ull}}},
    {"gate2",
     {{197797ull, 54459ull, 47073ull, 38500ull, 15933ull, 8573ull,
       5493ull, 455ull, 455ull, 69686ull, 455ull},
      {197797ull, 57868ull, 43968ull, 30001ull, 27815ull, 13967ull,
       4308ull, 739ull, 739ull, 101869ull, 733ull}}},
};

SpeculationControl
policyFor(const std::string &name)
{
    SpeculationControl sc;
    if (name == "gate2") {
        sc.gateThreshold = 2;
    } else {
        EXPECT_EQ(name, "none");
    }
    return sc;
}

struct SmtRun
{
    CoreStats stats[2];
    AuditReport audits[2];
};

SmtRun
runConfig(const std::string &policy)
{
    const BenchmarkSpec &spec_a = benchmarkSpec("gcc");
    const BenchmarkSpec &spec_b = benchmarkSpec("mcf");
    ProgramModel prog_a(spec_a.program);
    ProgramModel prog_b(spec_b.program);
    WrongPathSynthesizer wp_a(spec_a.program,
                              spec_a.program.seed ^ 0xdead);
    WrongPathSynthesizer wp_b(spec_b.program,
                              spec_b.program.seed ^ 0xbeef);
    auto pred = makePredictor("bimodal-gshare");
    SpeculationControl sc = policyFor(policy);
    std::unique_ptr<ConfidenceEstimator> est;
    if (sc.gateThreshold > 0)
        est = makeEstimator("perceptron-cic");

    SmtCore core(PipelineConfig::deep40x4(),
                 {{{&prog_a, &wp_a}, {&prog_b, &wp_b}}}, *pred,
                 est.get(), sc);
    InvariantAuditor auditors[2];
    core.setAuditor(0, &auditors[0]);
    core.setAuditor(1, &auditors[1]);
    core.warmup(10'000);
    core.run(30'000);

    SmtRun r;
    for (unsigned t = 0; t < 2; ++t) {
        r.stats[t] = core.stats(t);
        r.audits[t] = auditors[t].report();
    }
    return r;
}

void
expectMatchesGolden(const CoreStats &s, const Count *v)
{
    EXPECT_EQ(s.cycles, v[0]);
    EXPECT_EQ(s.fetchedUops, v[1]);
    EXPECT_EQ(s.executedUops, v[2]);
    EXPECT_EQ(s.retiredUops, v[3]);
    EXPECT_EQ(s.wrongPathFetched, v[4]);
    EXPECT_EQ(s.wrongPathExecuted, v[5]);
    EXPECT_EQ(s.retiredBranches, v[6]);
    EXPECT_EQ(s.mispredictsOriginal, v[7]);
    EXPECT_EQ(s.mispredictsFinal, v[8]);
    EXPECT_EQ(s.gatedCycles, v[9]);
    EXPECT_EQ(s.flushes, v[10]);
}

void
expectStatsEqual(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fetchedUops, b.fetchedUops);
    EXPECT_EQ(a.executedUops, b.executedUops);
    EXPECT_EQ(a.retiredUops, b.retiredUops);
    EXPECT_EQ(a.wrongPathFetched, b.wrongPathFetched);
    EXPECT_EQ(a.wrongPathExecuted, b.wrongPathExecuted);
    EXPECT_EQ(a.retiredBranches, b.retiredBranches);
    EXPECT_EQ(a.mispredictsOriginal, b.mispredictsOriginal);
    EXPECT_EQ(a.mispredictsFinal, b.mispredictsFinal);
    EXPECT_EQ(a.gatedCycles, b.gatedCycles);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.dispatchStallEmpty, b.dispatchStallEmpty);
    EXPECT_EQ(a.dispatchStallRob, b.dispatchStallRob);
    EXPECT_EQ(a.issueWaitSum, b.issueWaitSum);
    EXPECT_EQ(a.confidence.mispredictedLow(),
              b.confidence.mispredictedLow());
    EXPECT_EQ(a.confidence.correctLow(), b.confidence.correctLow());
}

class SmtGoldenStats : public ::testing::TestWithParam<SmtGoldenRow>
{
};

TEST_P(SmtGoldenStats, MatchesGoldenAndAuditsClean)
{
    const SmtGoldenRow &row = GetParam();
    SmtRun r = runConfig(row.policy);
    for (unsigned t = 0; t < 2; ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        expectMatchesGolden(r.stats[t], row.v[t]);
        EXPECT_TRUE(r.audits[t].clean()) << r.audits[t].summary();
        EXPECT_GT(r.audits[t].checksRun, 0u);
    }
}

TEST_P(SmtGoldenStats, RepeatRunsAreByteIdentical)
{
    const SmtGoldenRow &row = GetParam();
    SmtRun a = runConfig(row.policy);
    SmtRun b = runConfig(row.policy);
    for (unsigned t = 0; t < 2; ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        expectStatsEqual(a.stats[t], b.stats[t]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SmtGoldenStats, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<SmtGoldenRow> &info) {
        return std::string(info.param.policy);
    });

} // namespace
} // namespace percon
