/**
 * @file
 * On-disk snapshot format tests: lossless roundtrip for every
 * calibrated benchmark, field-exact equality between mmap'd
 * (borrowed-lane) and arena snapshots, and the rejection matrix — a
 * corrupt, truncated, version-bumped, foreign-endian or mismatched
 * file must be refused (so the caller regenerates), never crash or
 * silently replay wrong data.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/file_util.hh"
#include "trace/benchmarks.hh"
#include "trace/snapshot_file.hh"
#include "trace/trace_snapshot.hh"

namespace percon {
namespace {

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/percon-snapfile-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

/** Serialize both and compare: equal images mean every lane byte,
 *  every geometry field and the identity key match exactly. */
void
expectFieldExact(const TraceSnapshot &a, const TraceSnapshot &b)
{
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a.memOps(), b.memOps());
    EXPECT_EQ(a.branches(), b.branches());
    EXPECT_EQ(a.memoryBytes(), b.memoryBytes());
    EXPECT_EQ(programKey(a.params()), programKey(b.params()));
    EXPECT_EQ(serializeSnapshot(a), serializeSnapshot(b));
}

TEST(SnapshotFile, RoundTripIsFieldExactForEveryBenchmark)
{
    std::string dir = makeTempDir();
    for (const std::string &name : benchmarkNames()) {
        const ProgramParams &prog = benchmarkSpec(name).program;
        auto built = TraceSnapshot::build(prog, 6'000);
        std::string path = dir + "/" + name + ".snap";
        writeFile(path, serializeSnapshot(*built));

        std::string why;
        auto mapped = openSnapshotFile(path, prog, 6'000, &why);
        ASSERT_TRUE(mapped) << name << ": " << why;
        EXPECT_TRUE(mapped->borrowed()) << name;
        EXPECT_FALSE(built->borrowed()) << name;
        expectFieldExact(*built, *mapped);
    }
}

TEST(SnapshotFile, MappedReplayEqualsArenaReplay)
{
    const ProgramParams &prog = benchmarkSpec("gcc").program;
    auto built = TraceSnapshot::build(prog, 8'192);
    std::string path = makeTempDir() + "/gcc.snap";
    writeFile(path, serializeSnapshot(*built));
    auto mapped = openSnapshotFile(path, prog, 8'192);
    ASSERT_TRUE(mapped);

    // Walk both streams uop by uop, tracking ordinals the way the
    // cursor does; every reconstructed field must match.
    Count mem = 0, br = 0;
    for (Count i = 0; i < built->size(); ++i) {
        MicroOp a = built->at(i, mem, br);
        MicroOp b = mapped->at(i, mem, br);
        ASSERT_EQ(a.pc, b.pc) << "uop " << i;
        ASSERT_EQ(a.cls, b.cls) << "uop " << i;
        ASSERT_EQ(a.memAddr, b.memAddr) << "uop " << i;
        ASSERT_EQ(a.target, b.target) << "uop " << i;
        ASSERT_EQ(a.taken, b.taken) << "uop " << i;
        ASSERT_EQ(a.srcDist[0], b.srcDist[0]) << "uop " << i;
        ASSERT_EQ(a.srcDist[1], b.srcDist[1]) << "uop " << i;
        if (a.cls == UopClass::Load || a.cls == UopClass::Store)
            ++mem;
        if (a.cls == UopClass::Branch)
            ++br;
    }
}

class SnapshotFileReject : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        prog_ = benchmarkSpec("mcf").program;
        snap_ = TraceSnapshot::build(prog_, 4'096);
        image_ = serializeSnapshot(*snap_);
        dir_ = makeTempDir();
        path_ = dir_ + "/mcf.snap";
    }

    /** Write @p image and expect open to refuse it, returning a
     *  reason containing @p why_contains. */
    void expectRejected(const std::string &image,
                        const char *why_contains)
    {
        writeFile(path_, image);
        std::string why;
        auto snap = openSnapshotFile(path_, prog_, 4'096, &why);
        EXPECT_EQ(snap, nullptr) << "accepted: " << why_contains;
        EXPECT_NE(why.find(why_contains), std::string::npos)
            << "got reason: " << why;
    }

    ProgramParams prog_;
    std::shared_ptr<const TraceSnapshot> snap_;
    std::string image_;
    std::string dir_;
    std::string path_;
};

TEST_F(SnapshotFileReject, IntactImageIsAccepted)
{
    writeFile(path_, image_);
    std::string why;
    EXPECT_NE(openSnapshotFile(path_, prog_, 4'096, &why), nullptr)
        << why;
    EXPECT_TRUE(probeSnapshotFile(path_, prog_, 4'096));
}

TEST_F(SnapshotFileReject, MissingFile)
{
    std::string why;
    EXPECT_EQ(openSnapshotFile(dir_ + "/absent.snap", prog_, 4'096,
                               &why),
              nullptr);
    EXPECT_FALSE(why.empty());
    EXPECT_FALSE(probeSnapshotFile(dir_ + "/absent.snap", prog_,
                                   4'096));
}

TEST_F(SnapshotFileReject, TruncatedFile)
{
    expectRejected(image_.substr(0, image_.size() - 100),
                   "truncated");
}

TEST_F(SnapshotFileReject, ShorterThanHeader)
{
    expectRejected(image_.substr(0, 16), "shorter than");
}

TEST_F(SnapshotFileReject, VersionBump)
{
    std::string bumped = image_;
    bumped[7] = '2';  // "PCSNAP01" -> "PCSNAP02"
    expectRejected(bumped, "magic");
}

TEST_F(SnapshotFileReject, ForeignEndianness)
{
    // Byte-swap the endian tag in place: what a same-version writer
    // on an opposite-endian host would have produced.
    std::string foreign = image_;
    for (int i = 0; i < 4; ++i)
        std::swap(foreign[8 + i], foreign[15 - i]);
    expectRejected(foreign, "byte order");
}

TEST_F(SnapshotFileReject, CorruptPayload)
{
    std::string corrupt = image_;
    corrupt[image_.size() - 7] ^= 0x40;
    expectRejected(corrupt, "payload hash");
}

TEST_F(SnapshotFileReject, WrongWorkloadParams)
{
    writeFile(path_, image_);
    ProgramParams other = prog_;
    other.seed ^= 0x1234;
    std::string why;
    EXPECT_EQ(openSnapshotFile(path_, other, 4'096, &why), nullptr);
    EXPECT_NE(why.find("key"), std::string::npos) << why;
    EXPECT_FALSE(probeSnapshotFile(path_, other, 4'096));
}

TEST_F(SnapshotFileReject, WrongLength)
{
    writeFile(path_, image_);
    std::string why;
    EXPECT_EQ(openSnapshotFile(path_, prog_, 8'192, &why), nullptr);
    EXPECT_NE(why.find("uop count"), std::string::npos) << why;
}

TEST_F(SnapshotFileReject, ProbeIsHeaderOnly)
{
    // A payload flip passes the header-only probe (by design: the
    // probe exists for cheap pre-sweep labels) but the full open
    // still refuses to serve the corrupt lanes.
    std::string corrupt = image_;
    corrupt[image_.size() - 7] ^= 0x40;
    writeFile(path_, corrupt);
    EXPECT_TRUE(probeSnapshotFile(path_, prog_, 4'096));
    EXPECT_EQ(openSnapshotFile(path_, prog_, 4'096), nullptr);

    // ...while a header-level lie fails both.
    EXPECT_FALSE(probeSnapshotFile(path_, prog_, 8'192));
}

TEST(SnapshotFile, MappedSnapshotOutlivesTheStoreObject)
{
    // The mapping must stay valid for as long as the snapshot lives,
    // even after the file is unlinked (POSIX keeps mapped pages).
    const ProgramParams &prog = benchmarkSpec("gzip").program;
    auto built = TraceSnapshot::build(prog, 2'048);
    std::string path = makeTempDir() + "/gzip.snap";
    writeFile(path, serializeSnapshot(*built));
    auto mapped = openSnapshotFile(path, prog, 2'048);
    ASSERT_TRUE(mapped);
    ASSERT_EQ(std::remove(path.c_str()), 0);
    Count mem = 0, br = 0;
    MicroOp a = built->at(0, mem, br);
    MicroOp b = mapped->at(0, mem, br);
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(serializeSnapshot(*built), serializeSnapshot(*mapped));
}

} // namespace
} // namespace percon
