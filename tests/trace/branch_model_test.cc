/**
 * @file
 * Behavioural tests for the static-branch models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/branch_model.hh"

using namespace percon;

namespace {

/** Run a behaviour n times against a fixed history, count takens. */
Count
countTaken(BranchBehavior &b, int n, HistoryRegister &ghr, Rng &rng,
           bool push_outcomes = true)
{
    Count taken = 0;
    for (int i = 0; i < n; ++i) {
        bool t = b.nextOutcome(ghr, rng);
        taken += t;
        if (push_outcomes)
            ghr.push(t);
    }
    return taken;
}

} // namespace

TEST(BiasedBranch, IidRateMatchesP)
{
    BiasedBranch b(0.9);
    HistoryRegister ghr(32);
    Rng rng(1);
    Count taken = countTaken(b, 50000, ghr, rng);
    EXPECT_NEAR(taken / 50000.0, 0.9, 0.01);
}

TEST(BiasedBranch, BurstyPreservesDeviationRate)
{
    BiasedBranch b(0.95, "biased", 8.0);
    HistoryRegister ghr(32);
    Rng rng(2);
    Count taken = countTaken(b, 200000, ghr, rng);
    EXPECT_NEAR(taken / 200000.0, 0.95, 0.01);
}

TEST(BiasedBranch, BurstyDeviationsAreClustered)
{
    // Compare the number of majority->deviation transitions: bursty
    // deviations must come in far fewer runs than IID ones.
    HistoryRegister ghr(32);
    Rng rng_a(3), rng_b(3);
    BiasedBranch iid(0.95, "biased", 1.0);
    BiasedBranch bursty(0.95, "biased", 10.0);
    auto count_runs = [&](BiasedBranch &b, Rng &rng) {
        int runs = 0;
        bool prev = true;
        for (int i = 0; i < 100000; ++i) {
            bool t = b.nextOutcome(ghr, rng);
            if (!t && prev)
                ++runs;
            prev = t;
        }
        return runs;
    };
    int iid_runs = count_runs(iid, rng_a);
    int bursty_runs = count_runs(bursty, rng_b);
    EXPECT_LT(bursty_runs * 3, iid_runs);
}

TEST(BiasedBranch, KindLabelPropagates)
{
    BiasedBranch easy(0.99), hard(0.6, "hard");
    EXPECT_STREQ(easy.kind(), "biased");
    EXPECT_STREQ(hard.kind(), "hard");
}

TEST(LoopBranch, FixedTripPattern)
{
    LoopBranch b(4, false);
    HistoryRegister ghr(32);
    Rng rng(4);
    // Expect repeating T T T N
    for (int rep = 0; rep < 5; ++rep) {
        EXPECT_TRUE(b.nextOutcome(ghr, rng));
        EXPECT_TRUE(b.nextOutcome(ghr, rng));
        EXPECT_TRUE(b.nextOutcome(ghr, rng));
        EXPECT_FALSE(b.nextOutcome(ghr, rng));
    }
}

TEST(LoopBranch, VariableTripMeanRoughlyMatches)
{
    LoopBranch b(10, true);
    HistoryRegister ghr(32);
    Rng rng(5);
    Count not_taken = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        not_taken += !b.nextOutcome(ghr, rng);
    double mean_trip = static_cast<double>(n) / not_taken;
    EXPECT_NEAR(mean_trip, 10.0, 1.5);
}

TEST(CorrelatedBranch, DeterministicGivenHistoryWithoutNoise)
{
    CorrelatedBranch a(8, 0.0, 77), b(8, 0.0, 77);
    HistoryRegister ghr(32);
    Rng rng_a(6), rng_b(6);
    for (int i = 0; i < 1000; ++i) {
        ghr.push(i % 3 == 0);
        EXPECT_EQ(a.nextOutcome(ghr, rng_a), b.nextOutcome(ghr, rng_b));
    }
}

TEST(CorrelatedBranch, NoiseFlipsAtRate)
{
    CorrelatedBranch clean(6, 0.0, 99), noisy(6, 0.2, 99);
    HistoryRegister ghr(32);
    Rng rng_a(7), rng_b(7);
    int diff = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        ghr.push((i * 7) % 5 < 2);
        bool c = clean.nextOutcome(ghr, rng_a);
        bool d = noisy.nextOutcome(ghr, rng_b);
        diff += c != d;
    }
    EXPECT_NEAR(diff / static_cast<double>(n), 0.2, 0.02);
}

TEST(CorrelatedBranch, TapOffsetIgnoresRecentBits)
{
    // With taps at [8, 16), flipping only bits 0..7 cannot change
    // the outcome.
    CorrelatedBranch b(8, 0.0, 55, 8);
    HistoryRegister lo(32), hi(32);
    Rng rng(8);
    for (int i = 0; i < 32; ++i) {
        bool bit = (i * 13) % 3 == 0;
        lo.push(bit);
        hi.push(bit);
    }
    // Perturb the low 8 bits of one register only.
    HistoryRegister perturbed(32);
    perturbed.restore(lo.bits() ^ 0xff);
    Rng r1(9), r2(9);
    EXPECT_EQ(b.nextOutcome(lo, r1), b.nextOutcome(perturbed, r2));
}

TEST(ParityBranch, ParityOfTaps)
{
    ParityBranch b(2, 0.0, 123);
    HistoryRegister ghr(32);
    Rng rng(10);
    // Outcome equals parity of the tapped bits; verify consistency:
    // same history -> same outcome.
    ghr.push(true);
    ghr.push(false);
    ghr.push(true);
    bool first = b.nextOutcome(ghr, rng);
    bool second = b.nextOutcome(ghr, rng);
    EXPECT_EQ(first, second);
}

TEST(DeepPatternBranch, TriggerSemantics)
{
    // Tap 20 with explicit trigger: outcome must flip exactly when
    // the tapped bit matches.
    DeepPatternBranch b({20}, {true}, 0.0, 42);
    Rng rng(11);
    HistoryRegister match(32), nomatch(32);
    match.restore(1ULL << 20);
    nomatch.restore(0);
    bool on_match = b.nextOutcome(match, rng);
    bool off_match = b.nextOutcome(nomatch, rng);
    EXPECT_NE(on_match, off_match);
}

TEST(DeepPatternBranch, ConjunctionRequiresAllTaps)
{
    DeepPatternBranch b({18, 22}, {true, true}, 0.0, 43);
    Rng rng(12);
    HistoryRegister both(32), one(32), none(32);
    both.restore((1ULL << 18) | (1ULL << 22));
    one.restore(1ULL << 18);
    none.restore(0);
    bool o_both = b.nextOutcome(both, rng);
    bool o_one = b.nextOutcome(one, rng);
    bool o_none = b.nextOutcome(none, rng);
    EXPECT_EQ(o_one, o_none);
    EXPECT_NE(o_both, o_none);
}

TEST(DeepPatternBranch, MixedTriggerValues)
{
    DeepPatternBranch b({18, 22}, {true, false}, 0.0, 44);
    Rng rng(13);
    HistoryRegister trig(32), other(32);
    trig.restore(1ULL << 18);                      // bit18=1, bit22=0
    other.restore((1ULL << 18) | (1ULL << 22));    // bit22 wrong
    EXPECT_NE(b.nextOutcome(trig, rng), b.nextOutcome(other, rng));
}

TEST(LocalPatternBranch, PeriodicWithoutNoise)
{
    LocalPatternBranch b(5, 0.0, 77);
    HistoryRegister ghr(32);
    Rng rng(14);
    bool first_period[5];
    for (int i = 0; i < 5; ++i)
        first_period[i] = b.nextOutcome(ghr, rng);
    for (int rep = 0; rep < 4; ++rep) {
        for (int i = 0; i < 5; ++i)
            EXPECT_EQ(b.nextOutcome(ghr, rng), first_period[i]);
    }
}

TEST(PhasedBranch, RateBetweenRegimes)
{
    PhasedBranch b(0.9, 0.1, 0.01);
    HistoryRegister ghr(32);
    Rng rng(15);
    Count taken = countTaken(b, 100000, ghr, rng);
    double rate = taken / 100000.0;
    EXPECT_GT(rate, 0.2);
    EXPECT_LT(rate, 0.8);
}

TEST(BehaviorKinds, AllDistinct)
{
    BiasedBranch a(0.9);
    LoopBranch l(4, false);
    CorrelatedBranch c(4, 0.0, 1);
    ParityBranch p(2, 0.0, 1);
    DeepPatternBranch d({20}, {true}, 0.0, 1);
    LocalPatternBranch lp(4, 0.0, 1);
    PhasedBranch ph(0.8, 0.2, 0.01);
    EXPECT_STREQ(a.kind(), "biased");
    EXPECT_STREQ(l.kind(), "loop");
    EXPECT_STREQ(c.kind(), "correlated");
    EXPECT_STREQ(p.kind(), "parity");
    EXPECT_STREQ(d.kind(), "deep");
    EXPECT_STREQ(lp.kind(), "local");
    EXPECT_STREQ(ph.kind(), "phased");
}
