/**
 * @file
 * Tests for the wrong-path uop synthesizer, including a fuzz lock of
 * the block-buffered implementation against a straight-line per-uop
 * reference: redirect() at arbitrary block offsets must rewind the
 * generator state exactly, so both emit bit-identical streams.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "trace/address_model.hh"
#include "trace/wrongpath.hh"

using namespace percon;

namespace {

/**
 * The pre-arena algorithm, reimplemented independently: one uop per
 * call, every RNG draw made at consumption time. The production
 * synthesizer pre-generates blocks into scratch and rewinds on
 * redirect; equality with this reference proves the buffering is
 * unobservable.
 */
class ReferenceWrongPath
{
  public:
    ReferenceWrongPath(const ProgramParams &params, std::uint64_t seed)
        : params_(params), rng_(seed, "wrongpath"),
          addrModel_(params.addr, seed ^ 0x77ff),
          addrRng_(seed, "wp-addr")
    {
    }

    void
    redirect(Addr wrong_target)
    {
        pc_ = wrong_target;
        sinceBranch_ = 0;
    }

    MicroOp
    next()
    {
        MicroOp u;
        u.pc = pc_;
        pc_ += 4;
        ++sinceBranch_;

        double branch_prob = 1.0 / params_.uopsPerBranch;
        if (sinceBranch_ >= 2 && rng_.nextBernoulli(branch_prob)) {
            u.cls = UopClass::Branch;
            u.taken = rng_.nextBernoulli(0.5);
            u.target = u.pc + 64 + (rng_.nextBelow(16) << 6);
            sinceBranch_ = 0;
            return u;
        }

        double r = rng_.nextDouble();
        const UopMix &m = params_.uopMix;
        if (r < m.load)
            u.cls = UopClass::Load;
        else if (r < m.load + m.store)
            u.cls = UopClass::Store;
        else if (r < m.load + m.store + m.intAlu)
            u.cls = UopClass::IntAlu;
        else if (r < m.load + m.store + m.intAlu + m.intMul)
            u.cls = UopClass::IntMul;
        else
            u.cls = UopClass::FpAlu;

        for (int s = 0; s < 2; ++s) {
            if (rng_.nextBernoulli(params_.depProb)) {
                double p = 1.0 / params_.depMeanDist;
                std::uint64_t d = 1 + rng_.nextGeometric(p);
                u.srcDist[s] = static_cast<std::uint16_t>(
                    std::min<std::uint64_t>(d, 64));
            }
        }
        if (u.cls == UopClass::Load || u.cls == UopClass::Store)
            u.memAddr = addrModel_.next(addrRng_);
        return u;
    }

  private:
    ProgramParams params_;
    Rng rng_;
    AddressModel addrModel_;
    Rng addrRng_;
    Addr pc_ = 0;
    unsigned sinceBranch_ = 0;
};

} // namespace

TEST(WrongPath, Deterministic)
{
    ProgramParams p;
    WrongPathSynthesizer a(p, 7), b(p, 7);
    a.redirect(0x5000);
    b.redirect(0x5000);
    for (int i = 0; i < 2000; ++i) {
        MicroOp ua = a.next(), ub = b.next();
        EXPECT_EQ(ua.pc, ub.pc);
        EXPECT_EQ(ua.cls, ub.cls);
        EXPECT_EQ(ua.memAddr, ub.memAddr);
    }
}

TEST(WrongPath, RedirectSetsPc)
{
    ProgramParams p;
    WrongPathSynthesizer w(p, 9);
    w.redirect(0xabc0);
    EXPECT_EQ(w.next().pc, 0xabc0u);
    EXPECT_EQ(w.next().pc, 0xabc4u);
}

TEST(WrongPath, BranchDensityNearProgram)
{
    ProgramParams p;
    p.uopsPerBranch = 7.0;
    WrongPathSynthesizer w(p, 11);
    w.redirect(0x1000);
    Count branches = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        branches += w.next().isBranch();
    double density = n / static_cast<double>(branches);
    EXPECT_NEAR(density, 7.0, 2.0);
}

TEST(WrongPath, MemOpsHaveAddresses)
{
    ProgramParams p;
    WrongPathSynthesizer w(p, 13);
    w.redirect(0x1000);
    int mem_ops = 0;
    for (int i = 0; i < 10000; ++i) {
        MicroOp u = w.next();
        if (u.isMem()) {
            ++mem_ops;
            EXPECT_NE(u.memAddr, 0u);
        }
    }
    EXPECT_GT(mem_ops, 2000);
}

TEST(WrongPath, BlockSynthesisMatchesPerUopReference)
{
    // Fuzz redirects at arbitrary offsets into the 32-uop scratch
    // block (including 0, mid-block, and exact multiples) and demand
    // bit-identical streams from the buffered and per-uop paths.
    ProgramParams variants[3];
    variants[1].uopsPerBranch = 3.0;
    variants[1].depProb = 0.8;
    variants[2].uopsPerBranch = 23.0;
    variants[2].depProb = 0.05;

    for (int v = 0; v < 3; ++v) {
        const ProgramParams &p = variants[v];
        WrongPathSynthesizer block(p, 0xf00d + v);
        ReferenceWrongPath ref(p, 0xf00d + v);
        Rng fuzz(0x5eed + v, "wp-fuzz");
        Addr target = 0x4000;
        for (int round = 0; round < 500; ++round) {
            block.redirect(target);
            ref.redirect(target);
            unsigned run = static_cast<unsigned>(fuzz.nextBelow(100));
            for (unsigned i = 0; i < run; ++i) {
                MicroOp a = block.next(), b = ref.next();
                ASSERT_EQ(a.pc, b.pc) << "v" << v << " r" << round;
                ASSERT_EQ(a.cls, b.cls) << "v" << v << " r" << round;
                ASSERT_EQ(a.taken, b.taken)
                    << "v" << v << " r" << round;
                ASSERT_EQ(a.target, b.target)
                    << "v" << v << " r" << round;
                ASSERT_EQ(a.memAddr, b.memAddr)
                    << "v" << v << " r" << round;
                ASSERT_EQ(a.srcDist[0], b.srcDist[0])
                    << "v" << v << " r" << round;
                ASSERT_EQ(a.srcDist[1], b.srcDist[1])
                    << "v" << v << " r" << round;
            }
            target += 0x40 + fuzz.nextBelow(1u << 12) * 4;
        }
    }
}

TEST(WrongPath, SeparateFromProgramAddresses)
{
    // The wrong path uses its own address model seed so its working
    // set perturbs rather than mirrors the program's stream heads.
    ProgramParams p;
    WrongPathSynthesizer w(p, 15);
    w.redirect(0x1000);
    WrongPathSynthesizer v(p, 16);
    v.redirect(0x1000);
    int same = 0, mem = 0;
    for (int i = 0; i < 5000; ++i) {
        MicroOp a = w.next(), b = v.next();
        if (a.isMem() && b.isMem()) {
            ++mem;
            same += a.memAddr == b.memAddr;
        }
    }
    EXPECT_LT(same, mem / 2);
}
